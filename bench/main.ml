(* Benchmark and experiment harness.

   The paper's evaluation (Section 5) is qualitative: two case studies
   presented as figures.  Part 1 regenerates each figure's artifact and
   prints the measurable shape next to what the paper reports.  Part 2
   runs the ablation the paper argues for in §4.2.3 (linear clustering
   vs. naive allocations) over synthetic workloads.  Part 3 runs
   Bechamel micro-benchmarks of the tool chain itself (one Test.make
   per benched pipeline stage).  Part 4 runs the case-study flows under
   the Umlfront_obs instrumentation layer and writes BENCH_obs.json
   (per-phase ms, blocks/s parsed, actor firings/s) so later PRs have a
   perf trajectory to regress against, plus the instrumentation
   overhead on the synthetic flow.  Part 5 runs the multicore scaling
   study — DSE sweeps and level-parallel SDF execution across 1/2/4
   domains on random pipeline models — and writes BENCH_parallel.json.
   Part 6 load-tests `umlfront serve` over loopback — 1/4/16 client
   domains against an in-process server — and writes BENCH_serve.json
   (req/s, p50/p95 latency, cache hit ratio per client count).

   Flags: -v/--verbose (Logs to stderr), --smoke (small models/rounds,
   skip the Bechamel micro-benchmarks — what CI's bench-smoke job
   runs), -o/--output-dir DIR (where the BENCH_*.json files land,
   default "."). *)

module U = Umlfront_uml
module Core = Umlfront_core
module Model = Umlfront_simulink.Model
module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Caam = Umlfront_simulink.Caam
module Parser = Umlfront_simulink.Mdl_parser
module G = Umlfront_taskgraph.Graph
module C = Umlfront_taskgraph.Clustering
module Lc = Umlfront_taskgraph.Linear_clustering
module Dsc = Umlfront_taskgraph.Dsc
module Ez = Umlfront_taskgraph.Edge_zeroing
module Baselines = Umlfront_taskgraph.Baselines
module Gen = Umlfront_taskgraph.Generator
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module Compiled = Umlfront_dataflow.Compiled
module Timing = Umlfront_dataflow.Timing
module Cs = Umlfront_casestudies
module Serve = Umlfront_serve
module Obs = Umlfront_obs
module Json = Umlfront_obs.Json
module Pool = Umlfront_parallel.Pool

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row fmt = Printf.printf fmt

let expect label ~paper ~measured ok =
  Printf.printf "  %-46s paper: %-22s measured: %-22s %s\n" label paper measured
    (if ok then "[ok]" else "[MISMATCH]")

(* ------------------------------------------------------------------ *)
(* Part 1: figure reproductions                                       *)
(* ------------------------------------------------------------------ *)

let count_type (m : Model.t) path ty =
  let rec descend sys = function
    | [] -> List.length (S.blocks_of_type sys ty)
    | p :: rest -> (
        match (S.find_block_exn sys p).S.blk_system with
        | Some inner -> descend inner rest
        | None -> 0)
  in
  descend m.Model.root path

let fig3_didactic () =
  section "Fig. 3 — didactic mapping example";
  let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (Cs.Didactic.model ()) in
  let m = out.Core.Flow.caam in
  expect "CPU subsystems at top level" ~paper:"2 (CPU1, CPU2)"
    ~measured:(string_of_int (List.length (Caam.cpus m)))
    (List.length (Caam.cpus m) = 2);
  expect "Product block in T1 (Platform.mult)" ~paper:"1"
    ~measured:(string_of_int (count_type m [ "CPU1"; "T1" ] B.Product))
    (count_type m [ "CPU1"; "T1" ] B.Product = 1);
  expect "S-functions in T1 (calc, dec)" ~paper:"2"
    ~measured:(string_of_int (count_type m [ "CPU1"; "T1" ] B.S_function))
    (count_type m [ "CPU1"; "T1" ] B.S_function = 2);
  expect "inter-CPU channels (GFIFO)" ~paper:"1"
    ~measured:(string_of_int out.Core.Flow.inter_channels)
    (out.Core.Flow.inter_channels = 1);
  expect "intra-CPU channels (SWFIFO)" ~paper:"1"
    ~measured:(string_of_int out.Core.Flow.intra_channels)
    (out.Core.Flow.intra_channels = 1);
  expect "system-level IO ports" ~paper:"in + out"
    ~measured:
      (Printf.sprintf "%d in, %d out"
         (List.length (S.blocks_of_type m.Model.root B.Inport))
         (List.length (S.blocks_of_type m.Model.root B.Outport)))
    (List.length (S.blocks_of_type m.Model.root B.Inport) = 1
    && List.length (S.blocks_of_type m.Model.root B.Outport) = 1)

let fig5_crane () =
  section "Fig. 4/5 — crane control system (temporal-barrier insertion)";
  let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (Cs.Crane_system.model ()) in
  let m = out.Core.Flow.caam in
  expect "threads on one processor" ~paper:"3 on 1 CPU"
    ~measured:
      (Printf.sprintf "%d on %d CPU"
         (List.length (Caam.thread_names m))
         (List.length (Caam.cpus m)))
    (List.length (Caam.thread_names m) = 3 && List.length (Caam.cpus m) = 1);
  expect "automatically inserted Delay" ~paper:"1 (in Tcontrol)"
    ~measured:
      (Printf.sprintf "%d (in Tcontrol: %d)" out.Core.Flow.delays_inserted
         (count_type m [ "CPU1"; "Tcontrol" ] B.Unit_delay))
    (out.Core.Flow.delays_inserted = 1
    && count_type m [ "CPU1"; "Tcontrol" ] B.Unit_delay = 1);
  expect "Tcontrol: one S-function + two library blocks" ~paper:"1 S-fn + 2 subsystems"
    ~measured:
      (Printf.sprintf "%d S-fn + %d library blocks"
         (count_type m [ "CPU1"; "Tcontrol" ] B.S_function)
         (count_type m [ "CPU1"; "Tcontrol" ] B.Sum
         + count_type m [ "CPU1"; "Tcontrol" ] B.Saturation))
    (count_type m [ "CPU1"; "Tcontrol" ] B.S_function = 1);
  let sdf = Sdf.of_model m in
  let outcome = Exec.run ~rounds:8 sdf in
  expect "generated model executes (rounds)" ~paper:"simulates in Simulink"
    ~measured:(string_of_int outcome.Exec.rounds)
    (outcome.Exec.rounds = 8)

let fig7_clustering () =
  section "Fig. 6/7 — synthetic example, automatic thread allocation";
  let uml = Cs.Synthetic_system.model () in
  let g = Core.Allocation.task_graph uml in
  let clustering = Lc.run g in
  print_string (Core.Report.clustering_table g clustering);
  let groups = List.map (List.sort compare) (C.groups clustering) in
  expect "number of clusters (CPUs)" ~paper:"4"
    ~measured:(string_of_int (List.length groups))
    (List.length groups = 4);
  expect "main chain A,B,C,D,F,J on one CPU" ~paper:"{A,B,C,D,F,J}"
    ~measured:(String.concat "," (List.nth groups 0))
    (List.nth groups 0 = [ "A"; "B"; "C"; "D"; "F"; "J" ]);
  expect "G and M share a CPU" ~paper:"{G,M}"
    ~measured:(if C.same_cluster clustering "G" "M" then "together" else "apart")
    (C.same_cluster clustering "G" "M");
  expect "critical path on a single CPU" ~paper:"yes (§4.2.3)"
    ~measured:(string_of_bool (C.critical_path_cluster g clustering))
    (C.critical_path_cluster g clustering)

let fig8_caam () =
  section "Fig. 8 — synthetic example, generated CAAM top level";
  let out = Core.Flow.run ~strategy:Core.Flow.Infer_linear (Cs.Synthetic_system.model ()) in
  let m = out.Core.Flow.caam in
  expect "CPU-SS at top level" ~paper:"4"
    ~measured:(string_of_int (List.length (Caam.cpus m)))
    (List.length (Caam.cpus m) = 4);
  expect "inter-CPU channels inferred" ~paper:"present, GFIFO"
    ~measured:(Printf.sprintf "%d GFIFO" out.Core.Flow.inter_channels)
    (out.Core.Flow.inter_channels > 0);
  expect "CAAM checker" ~paper:"synthesizable input to the MPSoC flow"
    ~measured:
      (match Caam.check m with [] -> "passes" | l -> string_of_int (List.length l) ^ " gripes")
    (Caam.check m = []);
  expect "mdl regenerates and reparses" ~paper:".mdl for Simulink GUI"
    ~measured:"round-trips"
    (Model.stats (Parser.parse_string out.Core.Flow.mdl) = Model.stats m)

(* ------------------------------------------------------------------ *)
(* Part 2: ablations                                                  *)
(* ------------------------------------------------------------------ *)

let allocation_ablation () =
  section "Ablation §4.2.3 — allocation quality on random task graphs";
  row "  %-8s %-6s | %-16s | %-14s | %-14s | %-14s | %-14s\n" "nodes" "ccr" "metric"
    "linear" "dsc" "edge-zero" "round-robin-4";
  let configs = [ (12, 0.5); (12, 5.0); (60, 0.5); (60, 5.0); (150, 2.0) ] in
  List.iter
    (fun (size, ccr) ->
      let g =
        Gen.layered ~seed:(size + int_of_float (ccr *. 10.0)) ~layers:(max 3 (size / 8))
          ~width:8 ~edge_probability:0.35 ~ccr ()
      in
      let algos =
        [
          Lc.run g; Dsc.run g; Ez.run g; Baselines.round_robin ~cpus:4 g;
        ]
      in
      row "  %-8d %-6.1f | %-16s |" (G.node_count g) ccr "inter-volume";
      List.iter (fun c -> row " %-14.1f |" (C.inter_cluster_volume g c)) algos;
      row "\n  %-8s %-6s | %-16s |" "" "" "parallel time";
      List.iter (fun c -> row " %-14.1f |" (C.parallel_time g c)) algos;
      row "\n  %-8s %-6s | %-16s |" "" "" "clusters";
      List.iter (fun c -> row " %-14d |" (C.cluster_count c)) algos;
      row "\n")
    configs;
  print_endline
    "  shape check: linear clustering cuts inter-CPU volume vs. round-robin and\n\
    \  never exceeds the one-per-node parallel time (the paper's motivation)."

let timing_ablation () =
  section "Ablation — intra vs. inter CPU communication cost on the synthetic CAAM";
  let uml = Cs.Synthetic_system.model () in
  let run strategy label =
    let out = Core.Flow.run ~strategy uml in
    let sdf = Sdf.of_model out.Core.Flow.caam in
    let r = Timing.evaluate sdf in
    row "  %-22s cpus %-3d intra %-3d inter %-3d comm-cost %-8.1f makespan %-8.1f\n"
      label
      (List.length (Caam.cpus out.Core.Flow.caam))
      r.Timing.intra_tokens r.Timing.inter_tokens r.Timing.comm_cost r.Timing.makespan
  in
  run Core.Flow.Infer_linear "linear clustering";
  run (Core.Flow.Infer_bounded 2) "folded to 2 CPUs";
  run (Core.Flow.Infer_bounded 1) "single CPU";
  print_endline
    "  shape check: fewer CPUs trade inter-CPU (GFIFO) tokens for intra-CPU\n\
    \  (SWFIFO) ones; the single-CPU fold has zero GFIFO traffic."

let bounded_platform_ablation () =
  section "Ablation - clustering vs direct list scheduling on fixed platforms";
  row "  %-8s %-6s | %-10s | %-16s | %-16s | %-16s\n" "nodes" "procs" "ccr"
    "hlfet" "linear+fold" "round-robin";
  List.iter
    (fun (size, procs, ccr) ->
      let g =
        Gen.layered ~seed:(size * 7 + procs) ~layers:(max 3 (size / 8)) ~width:8
          ~edge_probability:0.35 ~ccr ()
      in
      let hlfet = (Umlfront_taskgraph.Schedule.hlfet ~processors:procs g).Umlfront_taskgraph.Schedule.makespan in
      let folded =
        (Umlfront_taskgraph.Schedule.of_clustering ~processors:procs g (Lc.run g))
          .Umlfront_taskgraph.Schedule.makespan
      in
      let rr = C.parallel_time g (Baselines.round_robin ~cpus:procs g) in
      row "  %-8d %-6d | %-10.1f | %-16.1f | %-16.1f | %-16.1f\n" (G.node_count g) procs
        ccr hlfet folded rr)
    [ (24, 2, 1.0); (24, 4, 1.0); (60, 4, 0.5); (60, 4, 5.0); (120, 8, 2.0) ];
  print_endline
    "  shape check: every informed mapper beats round-robin; task-level HLFET\n\
    \  outperforms the cruder fold-clusters-to-platform mapping, which is why\n\
    \  the paper leaves platform-bounded mapping to an estimation step (s6)."

let dse_sweep () =
  section "Extension (paper future work, DSE) - design-space exploration sweeps";
  let run name uml =
    Printf.printf "  %s:\n" name;
    print_string (Core.Dse.summary (Core.Dse.explore uml))
  in
  run "synthetic (12 threads)" (Cs.Synthetic_system.model ());
  run "mjpeg (4 threads)" (Cs.Mjpeg_system.model ());
  run "elevator (3 threads)" (Cs.Elevator_system.model ());
  print_endline
    "  shape check: makespan is monotone from over-folding to the platform the\n\
    \  clustering picks; the Pareto set exposes the CPU/latency trade-off."

(* ------------------------------------------------------------------ *)
(* Part 3: Bechamel micro-benchmarks                                  *)
(* ------------------------------------------------------------------ *)

let microbenchmarks () =
  section "Tool-chain micro-benchmarks (Bechamel, OLS ns/run)";
  let open Bechamel in
  let flow_test name uml_fn strategy =
    Test.make ~name (Staged.stage (fun () -> ignore (Core.Flow.run ~strategy (uml_fn ()))))
  in
  let synth n = Cs.Synthetic_system.scaled ~threads:n in
  let dag n = Gen.layered ~seed:n ~layers:(n / 8) ~width:8 ~edge_probability:0.35 ~ccr:1.0 () in
  let crane_caam =
    (Core.Flow.run ~strategy:Core.Flow.Use_deployment (Cs.Crane_system.model ())).Core.Flow.caam
  in
  let synthetic_caam =
    (Core.Flow.run ~strategy:Core.Flow.Infer_linear (Cs.Synthetic_system.model ())).Core.Flow.caam
  in
  let synthetic_mdl = Umlfront_simulink.Mdl_writer.to_string synthetic_caam in
  let hier_chart =
    U.Statechart.make "bench"
      (U.Statechart.state ~kind:U.Statechart.Initial "i"
      :: List.init 6 (fun k ->
             U.Statechart.state
               (Printf.sprintf "s%d" k)
               ~children:
                 [
                   U.Statechart.state (Printf.sprintf "s%d_a" k);
                   U.Statechart.state (Printf.sprintf "s%d_b" k);
                 ]))
      (U.Statechart.transition ~source:"i" ~target:"s0" ()
      :: List.concat
           (List.init 6 (fun k ->
                [
                  U.Statechart.transition ~trigger:"next" ~source:(Printf.sprintf "s%d" k)
                    ~target:(Printf.sprintf "s%d" ((k + 1) mod 6))
                    ();
                  U.Statechart.transition ~trigger:"flip"
                    ~source:(Printf.sprintf "s%d_a" k)
                    ~target:(Printf.sprintf "s%d_b" k)
                    ();
                ])))
  in
  let tests =
    [
      flow_test "flow:didactic" Cs.Didactic.model Core.Flow.Use_deployment;
      flow_test "flow:crane" Cs.Crane_system.model Core.Flow.Use_deployment;
      flow_test "flow:synthetic12" Cs.Synthetic_system.model Core.Flow.Infer_linear;
      flow_test "flow:synthetic64" (fun () -> synth 64) Core.Flow.Infer_linear;
      flow_test "flow:synthetic128" (fun () -> synth 128) Core.Flow.Infer_linear;
      Test.make ~name:"cluster:linear-n64"
        (let g = dag 64 in
         Staged.stage (fun () -> ignore (Lc.run g)));
      Test.make ~name:"cluster:linear-n160"
        (let g = dag 160 in
         Staged.stage (fun () -> ignore (Lc.run g)));
      Test.make ~name:"cluster:dsc-n64"
        (let g = dag 64 in
         Staged.stage (fun () -> ignore (Dsc.run g)));
      Test.make ~name:"mdl:write"
        (Staged.stage (fun () ->
             ignore (Umlfront_simulink.Mdl_writer.to_string synthetic_caam)));
      Test.make ~name:"mdl:parse"
        (Staged.stage (fun () -> ignore (Parser.parse_string synthetic_mdl)));
      Test.make ~name:"sdf:flatten+order"
        (Staged.stage (fun () -> ignore (Exec.firing_order (Sdf.of_model synthetic_caam))));
      Test.make ~name:"sdf:execute-100-rounds"
        (let sdf = Sdf.of_model crane_caam in
         Staged.stage (fun () -> ignore (Exec.run ~rounds:100 sdf)));
      Test.make ~name:"fsm:flatten+minimize"
        (Staged.stage (fun () ->
             ignore (Umlfront_fsm.Minimize.run (Umlfront_fsm.Flatten.run hier_chart))));
      Test.make ~name:"codegen:c-from-caam"
        (Staged.stage (fun () ->
             ignore (Umlfront_codegen.Gen_threads.generate ~rounds:8 synthetic_caam)));
      Test.make ~name:"dse:synthetic12"
        (Staged.stage (fun () -> ignore (Core.Dse.explore (Cs.Synthetic_system.model ()))));
      Test.make ~name:"capture:synthetic"
        (Staged.stage (fun () -> ignore (Core.Capture.run synthetic_caam)));
      Test.make ~name:"audit:synthetic"
        (let uml = Cs.Synthetic_system.model () in
         let out = Core.Flow.run ~strategy:Core.Flow.Infer_linear uml in
         Staged.stage (fun () -> ignore (Core.Consistency.audit uml out)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | Some [] | None -> nan
          in
          let pretty =
            if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
            else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
            else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
            else Printf.sprintf "%8.0f ns" ns
          in
          row "  %-28s %s/run   (r2 %s)\n" name pretty
            (match Analyze.OLS.r_square ols_result with
            | Some r2 -> Printf.sprintf "%.3f" r2
            | None -> "n/a"))
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* Part 4: observability — instrumented flows and BENCH_obs.json      *)
(* ------------------------------------------------------------------ *)

let flow_phases =
  [
    "flow.validate"; "flow.allocate"; "flow.map"; "flow.channels"; "flow.barriers";
    "flow.layout"; "flow.emit"; "flow.fsm";
  ]

let instrumented_case ~smoke name uml_fn strategy =
  Obs.Metrics.reset ();
  Obs.Trace.enable ();
  let rounds = if smoke then 20 else 100 in
  let t0 = Unix.gettimeofday () in
  let out = Core.Flow.run ~strategy (uml_fn ()) in
  let sdf = Sdf.of_model out.Core.Flow.caam in
  let outcome = Exec.run ~rounds sdf in
  let reparsed = Parser.parse_string out.Core.Flow.mdl in
  let total_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  let phases_ms =
    List.filter_map
      (fun p ->
        Option.map (fun us -> (p, us /. 1e3)) (Obs.Trace.last_dur_us p))
      flow_phases
  in
  let blocks = S.total_blocks reparsed.Model.root in
  let parse_s =
    Option.value (Obs.Trace.last_dur_us "mdl.parse") ~default:Float.nan /. 1e6
  in
  let exec_s =
    Option.value (Obs.Trace.last_dur_us "exec.run") ~default:Float.nan /. 1e6
  in
  let firings = List.fold_left (fun acc (_, n) -> acc + n) 0 outcome.Exec.firings in
  let blocks_per_s = float_of_int blocks /. parse_s in
  let firings_per_s = float_of_int firings /. exec_s in
  row "  %-10s total %8.2f ms | parse %8.0f blocks/s | exec %10.0f firings/s\n" name
    total_ms blocks_per_s firings_per_s;
  List.iter (fun (p, ms) -> row "    %-16s %8.3f ms\n" p ms) phases_ms;
  Json.Obj
    [
      ("name", Json.String name);
      ("total_ms", Json.Float total_ms);
      ("phases_ms", Json.Obj (List.map (fun (p, ms) -> (p, Json.Float ms)) phases_ms));
      ("blocks", Json.Int blocks);
      ("blocks_per_s_parsed", Json.Float blocks_per_s);
      ("rounds", Json.Int rounds);
      ("firings", Json.Int firings);
      ("actor_firings_per_s", Json.Float firings_per_s);
    ]

(* Mean wall-clock of the synthetic 12-thread flow with the span sink
   on vs. off — the acceptance bar for leaving instrumentation in hot
   paths permanently is < 5% overhead. *)
let instrumentation_overhead ~smoke () =
  let reps = if smoke then 5 else 30 in
  let measure enabled =
    if enabled then Obs.Trace.enable () else Obs.Trace.disable ();
    for _ = 1 to 3 do
      ignore (Core.Flow.run ~strategy:Core.Flow.Infer_linear (Cs.Synthetic_system.model ()))
    done;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Core.Flow.run ~strategy:Core.Flow.Infer_linear (Cs.Synthetic_system.model ()))
    done;
    (Unix.gettimeofday () -. t0) *. 1e3 /. float_of_int reps
  in
  let off = measure false in
  let on = measure true in
  Obs.Trace.disable ();
  let percent = (on -. off) /. off *. 100.0 in
  row "  sink disabled %8.3f ms/flow | enabled %8.3f ms/flow | overhead %+.2f%%\n" off
    on percent;
  Json.Obj
    [
      ("flow", Json.String "synthetic12");
      ("reps", Json.Int reps);
      ("disabled_ms", Json.Float off);
      ("enabled_ms", Json.Float on);
      ("percent", Json.Float percent);
    ]

(* Context plumbing overhead: the same flow run through an explicit,
   fully-armed telemetry context vs. plain ambient (?ctx:None, global
   sinks off).  Reported as a ratio (ctx_ms / baseline_ms, ~1.0 when
   plumbing is free) so the bench gate can diff it robustly across
   machines — percent deltas explode when the baseline is microseconds. *)
let context_overhead ~smoke () =
  let reps = if smoke then 5 else 30 in
  let measure mk_ctx =
    for _ = 1 to 3 do
      ignore
        (Core.Flow.run ~strategy:Core.Flow.Infer_linear ?ctx:(mk_ctx ())
           (Cs.Synthetic_system.model ()))
    done;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore
        (Core.Flow.run ~strategy:Core.Flow.Infer_linear ?ctx:(mk_ctx ())
           (Cs.Synthetic_system.model ()))
    done;
    (Unix.gettimeofday () -. t0) *. 1e3 /. float_of_int reps
  in
  Obs.Trace.disable ();
  let baseline = measure (fun () -> None) in
  let ctx_ms =
    measure (fun () -> Some (Obs.Context.create ~trace:true ~telemetry:true ()))
  in
  let factor = ctx_ms /. baseline in
  row "  ?ctx:None %8.3f ms/flow | explicit ctx %8.3f ms/flow | factor %.3f\n"
    baseline ctx_ms factor;
  Json.Obj
    [
      ("flow", Json.String "synthetic12");
      ("reps", Json.Int reps);
      ("baseline_ms", Json.Float baseline);
      ("ctx_ms", Json.Float ctx_ms);
      ("factor", Json.Float factor);
    ]

let write_json ~outdir file doc =
  let path = Filename.concat outdir file in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" path

let observability_bench ~smoke ~outdir () =
  section "Part 4 — observability: instrumented flows (BENCH_obs.json)";
  let crane =
    instrumented_case ~smoke "crane" Cs.Crane_system.model Core.Flow.Use_deployment
  in
  let synthetic =
    instrumented_case ~smoke "synthetic" Cs.Synthetic_system.model Core.Flow.Infer_linear
  in
  let mjpeg =
    instrumented_case ~smoke "mjpeg" Cs.Mjpeg_system.model Core.Flow.Prefer_deployment
  in
  let cases = [ crane; synthetic; mjpeg ] in
  let overhead = instrumentation_overhead ~smoke () in
  let ctx_overhead = context_overhead ~smoke () in
  write_json ~outdir "BENCH_obs.json"
    (Json.Obj
       [
         ("schema", Json.String "umlfront-bench-obs/1");
         ("cases", Json.List cases);
         ("overhead", overhead);
         ("context_overhead", ctx_overhead);
       ])

(* ------------------------------------------------------------------ *)
(* Part 5: multicore scaling — BENCH_parallel.json                    *)
(* ------------------------------------------------------------------ *)

(* Wall-clock of [f], best of [reps] runs (first run doubles as
   warm-up on the repeated configurations). *)
let best_of reps f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    result := Some r;
    if ms < !best then best := ms
  done;
  (Option.get !result, !best)

let parallel_scaling ~smoke ~outdir () =
  section "Part 5 — multicore scaling study (BENCH_parallel.json)";
  Obs.Metrics.reset ();
  Obs.Trace.disable ();
  let reps = if smoke then 1 else 3 in
  let domain_counts = [ 1; 2; 4 ] in
  Printf.printf "  hardware domains available: %d\n" (Pool.cpu_count ());
  (* A sweep: run [run pool] at each domain count, sequential first as
     the baseline, and check the results stay bit-identical
     (polymorphic equality over the result — floats and all).

     [speedup] is always relative to the {e same} executor at 1 domain
     (self-scaling); [speedup_vs_seq] is relative to the reference
     result in [cmp] — by default the sweep's own sequential run (so
     the two coincide), but a sweep of an alternative executor passes
     the sequential [Exec.run] baseline there, which is the honest
     "beats sequential" number.  With [cmp] the identity check also
     compares every row — including 1 domain — against the reference
     result instead of the sweep's own baseline. *)
  let sweep ?cmp (run : ?pool:Pool.t -> unit -> _) =
    let baseline, base_ms = best_of reps (fun () -> run ()) in
    let expected, ref_ms =
      match cmp with Some (e, m) -> (e, m) | None -> (baseline, base_ms)
    in
    let rows =
      List.map
        (fun domains ->
          if domains <= 1 then
            (domains, base_ms, 1.0, ref_ms /. base_ms, baseline = expected)
          else
            Pool.with_pool ~domains (fun pool ->
                let r, ms = best_of reps (fun () -> run ~pool ()) in
                (domains, ms, base_ms /. ms, ref_ms /. ms, r = expected)))
        domain_counts
    in
    (rows, baseline, base_ms)
  in
  let print_rows label rows =
    List.iter
      (fun (domains, ms, speedup, vs_seq, identical) ->
        row "  %-10s %d domains: %8.2f ms  speedup %5.2fx  vs-seq %5.2fx  %s\n" label
          domains ms speedup vs_seq
          (if identical then "[identical]" else "[DIVERGED]"))
      rows
  in
  let rows_json rows =
    Json.List
      (List.map
         (fun (domains, ms, speedup, vs_seq, identical) ->
           Json.Obj
             [
               ("domains", Json.Int domains);
               ("ms", Json.Float ms);
               ("speedup", Json.Float speedup);
               ("speedup_vs_seq", Json.Float vs_seq);
               ("identical", Json.Bool identical);
             ])
         rows)
  in
  (* DSE: every CPU-count candidate runs the full synthesis + timing
     pipeline, independently per candidate — the embarrassingly
     parallel sweep the paper's §6 estimation step implies. *)
  let threads = if smoke then 8 else 16 in
  let seeds = if smoke then [ 11 ] else [ 11; 23; 37 ] in
  let models =
    List.map
      (fun seed -> Cs.Random_models.pipeline ~seed ~threads ~extra_edges:(threads / 2))
      seeds
  in
  let dse_rows, _, _ =
    sweep (fun ?pool () -> List.map (fun m -> Core.Dse.explore ?pool m) models)
  in
  print_rows "dse" dse_rows;
  (* Level-parallel SDF execution on a wide scatter/gather model —
     the level width (= branches) is what the executor scales with. *)
  let branches = if smoke then 6 else 16 in
  let depth = if smoke then 3 else 6 in
  let rounds = if smoke then 50 else 200 in
  let caam =
    (Core.Flow.run ~strategy:Core.Flow.Infer_linear
       (Cs.Random_models.wide ~seed:42 ~branches ~depth))
      .Core.Flow.caam
  in
  let sdf = Sdf.of_model caam in
  let lvls = Exec.levels sdf in
  let widest = List.fold_left (fun acc l -> max acc (List.length l)) 0 lvls in
  row "  exec model: %d actors in %d levels (widest %d), %d rounds\n"
    (List.length sdf.Sdf.actors) (List.length lvls) widest rounds;
  let exec_rows, exec_outcome, exec_seq_ms =
    sweep (fun ?pool () -> Exec.run ?pool ~rounds sdf)
  in
  print_rows "exec" exec_rows;
  (* The compiled flat-schedule executor on the same model, diffed
     against the [Exec.run] baseline: [identical] now means
     bit-identical to the reference interpreter, and [speedup_vs_seq]
     is the compiled-over-sequential-reference ratio — the number the
     bench gate watches. *)
  let compiled_rows, _, _ =
    sweep
      ~cmp:(exec_outcome, exec_seq_ms)
      (fun ?pool () -> Compiled.run ?pool ~rounds sdf)
  in
  print_rows "compiled" compiled_rows;
  let all_identical =
    List.for_all (fun (_, _, _, _, id) -> id) (dse_rows @ exec_rows @ compiled_rows)
  in
  row "  determinism: parallel results %s sequential baselines\n"
    (if all_identical then "bit-identical to" else "DIVERGED from");
  write_json ~outdir "BENCH_parallel.json"
    (Json.Obj
       [
         ("schema", Json.String "umlfront-bench-parallel/1");
         ("hardware_domains", Json.Int (Pool.cpu_count ()));
         ("smoke", Json.Bool smoke);
         ( "dse",
           Json.Obj
             [
               ("models", Json.Int (List.length models));
               ("threads_per_model", Json.Int threads);
               ("sweeps", rows_json dse_rows);
             ] );
         ( "exec",
           Json.Obj
             [
               ("actors", Json.Int (List.length sdf.Sdf.actors));
               ("levels", Json.Int (List.length lvls));
               ("widest_level", Json.Int widest);
               ("rounds", Json.Int rounds);
               ("sweeps", rows_json exec_rows);
             ] );
         ("identical", Json.Bool all_identical);
       ]);
  write_json ~outdir "BENCH_exec_compiled.json"
    (Json.Obj
       [
         ("schema", Json.String "umlfront-bench-exec-compiled/1");
         ("hardware_domains", Json.Int (Pool.cpu_count ()));
         ("smoke", Json.Bool smoke);
         ( "model",
           Json.Obj
             [
               ("actors", Json.Int (List.length sdf.Sdf.actors));
               ("levels", Json.Int (List.length lvls));
               ("widest_level", Json.Int widest);
               ("rounds", Json.Int rounds);
             ] );
         ("exec_seq_ms", Json.Float exec_seq_ms);
         ("compiled", Json.Obj [ ("sweeps", rows_json compiled_rows) ]);
       ])

(* ------------------------------------------------------------------ *)
(* Part 6: serving under load — BENCH_serve.json                       *)
(* ------------------------------------------------------------------ *)

(* Loopback load test of `umlfront serve`: N client domains hammer a
   fresh in-process server with a fixed mix of lint/transform/simulate
   requests over the two case-study models.  Each row restarts the
   server (cold cache), so the hit ratio is a property of the request
   mix, not of what an earlier row left behind. *)

let percentile p sorted =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
      let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) rank))

let serve_bench ~smoke ~outdir () =
  section "Part 6 — serving under load (BENCH_serve.json)";
  (* Always more requests than the 6-element mix, so even the 1-client
     smoke row repeats targets and exercises the cache. *)
  let requests_per_client = if smoke then 12 else 24 in
  let client_counts = [ 1; 4; 16 ] in
  let didactic = U.Xmi.to_string (Cs.Didactic.model ()) in
  let crane = U.Xmi.to_string (Cs.Crane_system.model ()) in
  (* Six distinct (target, body) pairs: every repetition beyond the
     first six requests of a client mix is a cache hit candidate. *)
  let mix =
    List.concat_map
      (fun target -> [ (target, didactic); (target, crane) ])
      [ "/api/lint"; "/api/transform"; "/api/simulate?rounds=16" ]
  in
  let bench_row ?(access_log = None) ?(trace_sample = 0.0) ?(extra = []) clients =
    let config =
      {
        Serve.Server.default_config with
        Serve.Server.pool = min 4 (Pool.cpu_count ());
        max_inflight = 64;
        access_log;
        trace_sample;
      }
    in
    let server = Serve.Server.start ~config () in
    Fun.protect ~finally:(fun () -> Serve.Server.stop server)
    @@ fun () ->
    let port = Serve.Server.port server in
    (* Warm nothing: the first pass over the mix is the miss phase. *)
    let client _i =
      let lat = ref [] in
      for r = 0 to requests_per_client - 1 do
        let target, body = List.nth mix (r mod List.length mix) in
        let t0 = Unix.gettimeofday () in
        let resp = Serve.Serve_client.post ~port target body in
        let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
        if resp.Serve.Serve_client.status = 200 then lat := ms :: !lat
        else
          Printf.eprintf "  serve bench: %s answered %d\n%!" target
            resp.Serve.Serve_client.status
      done;
      !lat
    in
    let t0 = Unix.gettimeofday () in
    let latencies =
      if clients = 1 then client 0
      else
        List.init clients (fun i -> Domain.spawn (fun () -> client i))
        |> List.concat_map Domain.join
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    let stats = Serve.Server.cache_stats server in
    let total = clients * requests_per_client in
    let sorted = Array.of_list latencies in
    Array.sort compare sorted;
    let p50 = percentile 50.0 sorted and p95 = percentile 95.0 sorted in
    let req_per_s = if wall_s > 0.0 then float_of_int total /. wall_s else 0.0 in
    let hit_ratio =
      let h = stats.Serve.Cache.hits and m = stats.Serve.Cache.misses in
      if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
    in
    row
      "  %2d client(s): %4d requests  %8.1f req/s  p50 %6.2f ms  p95 %6.2f ms  \
       hit ratio %.2f\n"
      clients total req_per_s p50 p95 hit_ratio;
    Json.Obj
      ([
         ("clients", Json.Int clients);
         ("requests", Json.Int total);
         ("ok", Json.Int (Array.length sorted));
         ("req_per_s", Json.Float req_per_s);
         ("p50_ms", Json.Float p50);
         ("p95_ms", Json.Float p95);
         ("hit_ratio", Json.Float hit_ratio);
       ]
      @ extra)
  in
  let rows = List.map (fun c -> bench_row c) client_counts in
  (* The cost of watching: the same 4-client row with the full
     observability pipeline on — JSONL access log plus 100% span
     retention — against the plain row above.  Both series land in the
     document so bench-diff gates the overhead like any other
     regression. *)
  let obs_rows =
    List.map
      (fun (mode, on) ->
        let log = Filename.temp_file "umlfront_bench_access" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove log with Sys_error _ -> ())
        @@ fun () ->
        row "  observability %-3s:" mode;
        bench_row 4
          ~access_log:(if on then Some log else None)
          ~trace_sample:(if on then 1.0 else 0.0)
          ~extra:[ ("mode", Json.String mode) ])
      [ ("off", false); ("on", true) ]
  in
  write_json ~outdir "BENCH_serve.json"
    (Json.Obj
       [
         ("schema", Json.String "umlfront-bench-serve/1");
         ("hardware_domains", Json.Int (Pool.cpu_count ()));
         ("smoke", Json.Bool smoke);
         ("requests_per_client", Json.Int requests_per_client);
         ("mix", Json.List (List.map (fun (t, _) -> Json.String t) mix));
         ("rows", Json.List rows);
         ("observability", Json.List obs_rows);
       ])

let () =
  (* -v/--verbose as in bin/umlfront; --smoke for the reduced CI run;
     -o/--output-dir DIR for where the BENCH_*.json files land. *)
  let rec parse (verbosity, smoke, outdir) = function
    | [] -> (verbosity, smoke, outdir)
    | ("-v" | "--verbose") :: rest -> parse (verbosity + 1, smoke, outdir) rest
    | "--smoke" :: rest -> parse (verbosity, true, outdir) rest
    | ("-o" | "--output-dir") :: dir :: rest -> parse (verbosity, smoke, dir) rest
    | arg :: rest when String.starts_with ~prefix:"--output-dir=" arg ->
        let dir =
          String.sub arg (String.length "--output-dir=")
            (String.length arg - String.length "--output-dir=")
        in
        parse (verbosity, smoke, dir) rest
    | arg :: _ ->
        Printf.eprintf "bench: unknown argument %S\n%!" arg;
        exit 2
  in
  let verbosity, smoke, outdir =
    parse (0, false, ".") (List.tl (Array.to_list Sys.argv))
  in
  if verbosity > 0 then (
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some (if verbosity > 1 then Logs.Debug else Logs.Info)));
  if not (Sys.file_exists outdir) then Sys.mkdir outdir 0o755;
  print_endline "umlfront experiment harness — paper figures, ablations, benchmarks";
  fig3_didactic ();
  fig5_crane ();
  fig7_clustering ();
  fig8_caam ();
  allocation_ablation ();
  timing_ablation ();
  bounded_platform_ablation ();
  dse_sweep ();
  if not smoke then microbenchmarks ();
  observability_bench ~smoke ~outdir ();
  parallel_scaling ~smoke ~outdir ();
  serve_bench ~smoke ~outdir ();
  print_endline "\ndone."
