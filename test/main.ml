let () =
  Alcotest.run "umlfront"
    (Test_xml.suite @ Test_metamodel.suite @ Test_uml.suite @ Test_taskgraph.suite
   @ Test_simulink.suite @ Test_fsm.suite @ Test_schedule_compose.suite @ Test_guards.suite @ Test_cosim.suite @ Test_transform.suite @ Test_dataflow.suite
   @ Test_codegen.suite @ Test_blocks.suite @ Test_core.suite @ Test_extensions.suite @ Test_roundtrip.suite @ Test_robustness.suite @ Test_coverage.suite
   @ Test_integration.suite @ Test_obs.suite @ Test_telemetry.suite
   @ Test_trace_export.suite
   @ Test_parallel.suite @ Test_compiled.suite @ Test_context.suite @ Test_analysis.suite
   @ Test_conformance.suite @ Test_serve.suite)
