(* Telemetry contexts: the reentrancy invariants the Obs.Context
   tentpole promises.

   - Isolation: two flows run concurrently on the domain pool with
     distinct contexts never observe each other's counters, spans or
     journal entries (the qcheck property drives the pair repeatedly —
     racing schedules is the point).
   - Merge determinism: Context.merge of per-domain children is
     independent of the order the children are listed in.
   - Tree shape: a context-scoped flow exports one rooted span tree
     whose root covers every flow phase, and pool batches fold worker
     metrics back into the submitting context. *)

module Obs = Umlfront_obs
module Core = Umlfront_core
module Dataflow = Umlfront_dataflow
module Pool = Umlfront_parallel.Pool
module CS = Umlfront_casestudies

let check = Alcotest.check
let checkb name = Alcotest.check Alcotest.bool name true

(* --- isolation ------------------------------------------------------ *)

let snapshot_in ctx = Obs.Context.with_current ctx Obs.Metrics.snapshot

let counter_in ctx name =
  List.fold_left
    (fun acc (s : Obs.Metrics.stat) ->
      if String.equal s.Obs.Metrics.s_name name then s.Obs.Metrics.s_count else acc)
    0 (snapshot_in ctx)

let events_in ctx = Obs.Context.with_current ctx (fun () -> Obs.Trace.events ())

let journal_in ctx = Obs.Context.with_current ctx (fun () -> Obs.Journal.entries ())

let span_model ev =
  match List.assoc_opt "model" ev.Obs.Trace.ev_args with
  | Some (Obs.Json.String m) -> Some m
  | _ -> None

(* Run crane and synthetic concurrently on one pool, each inside its
   own context, and require fully disjoint telemetry. *)
let isolated_once () =
  Pool.with_pool ~domains:2 @@ fun pool ->
  let cases =
    [
      (CS.Crane_system.model (), Obs.Context.create ~trace:true ());
      (CS.Synthetic_system.model (), Obs.Context.create ~trace:true ());
    ]
  in
  ignore (Pool.map pool (fun (uml, ctx) -> Core.Flow.run ~ctx uml) cases);
  List.for_all
    (fun (uml, ctx) ->
      let own_name = uml.Umlfront_uml.Model.model_name in
      let events = events_in ctx in
      let runs =
        List.filter (fun e -> e.Obs.Trace.ev_name = "flow.run") events
      in
      counter_in ctx "flow.runs" = 1
      && List.length runs = 1
      && List.for_all (fun e -> span_model e = Some own_name) runs
      && List.length
           (Obs.Journal.filter ~kind:"flow.run" (journal_in ctx))
         = 1)
    cases
  &&
  (* span ids are globally unique, so disjoint buffers share none *)
  let ids ctx =
    List.map (fun e -> e.Obs.Trace.ev_id) (events_in (snd ctx))
  in
  let a = ids (List.nth cases 0) and b = ids (List.nth cases 1) in
  List.for_all (fun i -> not (List.mem i b)) a

let contexts_isolated_on_pool =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"concurrent contexts observe only their own telemetry"
       ~count:15
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1000))
       (fun _ -> isolated_once ()))

(* --- merge determinism ---------------------------------------------- *)

(* Deterministically populate a forked child with counters, a gauge,
   histogram samples and one span. *)
let populate child i =
  Obs.Context.with_current child @@ fun () ->
  Obs.Metrics.incr "merged.counter" ~by:(i + 1);
  Obs.Metrics.set_gauge "merged.gauge" (float_of_int (10 - i));
  Obs.Metrics.observe "merged.hist" (float_of_int (i * 3));
  Obs.Metrics.observe "merged.hist" (float_of_int (i * 3 + 1));
  Obs.Trace.with_span ~cat:"test" (Printf.sprintf "child.%d" i) (fun () -> ())

let rec insert_at x i = function
  | rest when i <= 0 -> x :: rest
  | [] -> [ x ]
  | y :: rest -> y :: insert_at x (i - 1) rest

let permutation_of seed xs =
  let st = Random.State.make [| seed; 0xC0FFEE |] in
  List.fold_left
    (fun acc x -> insert_at x (Random.State.int st (List.length acc + 1)) acc)
    [] xs

let merged_view order =
  let parent = Obs.Context.create ~trace:true () in
  Obs.Context.merge ~into:parent order;
  let om = Obs.Openmetrics.render (snapshot_in parent) in
  let evs =
    List.map
      (fun e -> (e.Obs.Trace.ev_id, e.Obs.Trace.ev_parent, e.Obs.Trace.ev_name))
      (events_in parent)
  in
  (om, evs)

let merge_is_order_independent =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"Context.merge of per-domain children is order-independent"
       ~count:25
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000))
       (fun seed ->
         let base = Obs.Context.create ~trace:true () in
         let children = List.init 4 (fun _ -> Obs.Context.fork base) in
         List.iteri (fun i c -> populate c i) children;
         let reference = merged_view children in
         let shuffled = merged_view (permutation_of seed children) in
         reference = shuffled))

(* --- tree shape and pool fold-back ---------------------------------- *)

let flow_phases =
  [ "flow.validate"; "flow.allocate"; "flow.map"; "flow.channels";
    "flow.barriers"; "flow.layout"; "flow.emit"; "flow.fsm" ]

let span_tree_roots_cover_phases () =
  let ctx = Obs.Context.create ~trace:true () in
  ignore (Core.Flow.run ~ctx (CS.Crane_system.model ()));
  let events = events_in ctx in
  let root =
    match List.filter (fun e -> e.Obs.Trace.ev_name = "flow.run") events with
    | [ r ] -> r
    | l -> Alcotest.failf "expected exactly one flow.run span, got %d" (List.length l)
  in
  check Alcotest.int "flow.run is a root" (-1) root.Obs.Trace.ev_parent;
  List.iter
    (fun phase ->
      match List.find_opt (fun e -> e.Obs.Trace.ev_name = phase) events with
      | None -> Alcotest.failf "missing phase span %s" phase
      | Some e ->
          check Alcotest.int (phase ^ " parented under flow.run")
            root.Obs.Trace.ev_id e.Obs.Trace.ev_parent)
    flow_phases;
  (* the rendered tree shows the root exactly once, unindented *)
  let rendered = Obs.Span_tree.render ~timings:false events in
  checkb "root first in rendering"
    (String.length rendered > 8 && String.sub rendered 0 8 = "flow.run")

let sum_counters prefix stats =
  List.fold_left
    (fun acc (s : Obs.Metrics.stat) ->
      if String.starts_with ~prefix s.Obs.Metrics.s_name then
        acc + s.Obs.Metrics.s_count
      else acc)
    0 stats

(* exec.firings.d<i>: one increment per firing, on whichever domain ran
   it — only the level-parallel executor emits them, so a d-digit
   prefix filter keeps actor-name counters (exec.firings.<actor>) out. *)
let domain_firings stats =
  List.fold_left
    (fun acc (s : Obs.Metrics.stat) ->
      let n = String.length "exec.firings.d" in
      if
        String.starts_with ~prefix:"exec.firings.d" s.Obs.Metrics.s_name
        && String.length s.Obs.Metrics.s_name > n
        && (match s.Obs.Metrics.s_name.[n] with '0' .. '9' -> true | _ -> false)
      then acc + s.Obs.Metrics.s_count
      else acc)
    0 stats

let pool_folds_workers_back () =
  Pool.with_pool ~domains:3 @@ fun pool ->
  let global_before = domain_firings (snapshot_in Obs.Context.default) in
  let ctx = Obs.Context.create ~trace:true () in
  let output = Core.Flow.run ~ctx (CS.Crane_system.model ()) in
  let sdf = Dataflow.Sdf.of_model output.Core.Flow.caam in
  let rounds = 8 in
  let outcome = Dataflow.Exec.run ~pool ~ctx ~rounds sdf in
  let total_firings =
    List.fold_left (fun acc (_, n) -> acc + n) 0 outcome.Dataflow.Exec.firings
  in
  let stats = snapshot_in ctx in
  (* per-domain worker counters merged back equal the total firings *)
  check Alcotest.int "per-domain firings sum to the total" total_firings
    (domain_firings stats);
  checkb "pool task counters folded into the context"
    (sum_counters "pool.tasks" stats > 0);
  (* and none of it leaked into the global default context *)
  check Alcotest.int "no firings leaked to the default registry" global_before
    (domain_firings (snapshot_in Obs.Context.default))

let suite =
  [
    ( "context",
      [
        contexts_isolated_on_pool;
        merge_is_order_independent;
        Alcotest.test_case "flow span tree is rooted and covers all phases" `Quick
          span_tree_roots_cover_phases;
        Alcotest.test_case "pool merges per-domain children into the context" `Quick
          pool_folds_workers_back;
      ] );
  ]
