(* Co-simulation of an FSM controller with a dataflow plant: the
   thermostat closed loop (heater -> first-order plant -> temperature
   watchers -> mode FSM -> heater). *)

module B = Umlfront_simulink.Block
module S = Umlfront_simulink.System
module Model = Umlfront_simulink.Model
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module F = Umlfront_fsm.Fsm
module Cosim = Umlfront_cosim.Cosim

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let pr block port = { S.block; S.port }

(* Temp' = 0.8*Temp + 0.2*heat : first-order lag toward the heater
   command, exposed as Outport "Temp", driven by Inport "heat". *)
let plant () =
  let root = S.empty "plant" in
  let root = S.add_block ~params:[ ("Port", B.P_int 1) ] root B.Inport "heat" in
  let root = S.add_block ~params:[ ("Gain", B.P_float 0.2) ] root B.Gain "inject" in
  let root = S.add_block ~params:[ ("Gain", B.P_float 0.8) ] root B.Gain "retain" in
  let root = S.add_block ~params:[ ("Inputs", B.P_string "++") ] root B.Sum "mix" in
  let root = S.add_block ~params:[ ("InitialCondition", B.P_float 0.0) ] root B.Unit_delay "state" in
  let root = S.add_block ~params:[ ("Port", B.P_int 1) ] root B.Outport "Temp" in
  let root = S.add_line root ~src:(pr "heat" 1) ~dst:(pr "inject" 1) in
  let root = S.add_line root ~src:(pr "inject" 1) ~dst:(pr "mix" 1) in
  let root = S.add_line root ~src:(pr "state" 1) ~dst:(pr "retain" 1) in
  let root = S.add_line root ~src:(pr "retain" 1) ~dst:(pr "mix" 2) in
  let root = S.add_line root ~src:(pr "mix" 1) ~dst:(pr "state" 1) in
  let root = S.add_line root ~src:(pr "mix" 1) ~dst:(pr "Temp" 1) in
  Sdf.of_model (Model.make ~name:"plant" root)

let tr ?guard ?(actions = []) src event dst =
  { F.t_src = src; t_event = event; t_guard = guard; t_actions = actions; t_dst = dst }

let thermostat =
  F.make ~name:"thermostat" ~initial:"heating" ~states:[ "heating"; "cooling" ]
    [
      tr "heating" "hot" "cooling" ~actions:[ "heater_off" ];
      tr "cooling" "cold" "heating" ~actions:[ "heater_on" ];
    ]

let config =
  {
    Cosim.controller = thermostat;
    watchers =
      [ Cosim.watcher ~event:"hot" "Temp > 0.8"; Cosim.watcher ~event:"cold" "Temp < 0.2" ];
    setters =
      [
        Cosim.setter ~action:"heater_off" ~var:"heat" "0";
        Cosim.setter ~action:"heater_on" ~var:"heat" "1";
      ];
    updates = [];
    initial_store = [ ("heat", 1.0) ];
  }

let run rounds = Cosim.run ~rounds (plant ()) config

let session_tests =
  [
    test "stepping equals batch execution" (fun () ->
        let sdf = plant () in
        let stimulus _ _ = 1.0 in
        let batch = Exec.run ~stimulus ~rounds:5 sdf in
        let session = Exec.start sdf in
        let stepped =
          List.init 5 (fun _ -> List.assoc "Temp" (Exec.step session ~stimulus:(fun _ -> 1.0)))
        in
        check Alcotest.int "rounds" 5 (Exec.rounds_executed session);
        List.iteri
          (fun i v ->
            check (Alcotest.float 1e-12) (Printf.sprintf "round %d" i)
              (List.assoc "Temp" batch.Exec.traces).(i) v)
          stepped);
    test "plant converges toward the heater command" (fun () ->
        let sdf = plant () in
        let outcome = Exec.run ~stimulus:(fun _ _ -> 1.0) ~rounds:30 sdf in
        let temp = List.assoc "Temp" outcome.Exec.traces in
        check Alcotest.bool "close to 1" true (Float.abs (temp.(29) -. 1.0) < 0.01));
  ]

let cosim_tests =
  [
    test "thermostat oscillates between modes" (fun () ->
        let outcome = run 60 in
        let transitions =
          List.filter (fun (s : Cosim.step) -> s.Cosim.events <> []) outcome.Cosim.steps
        in
        check Alcotest.bool ">= 3 mode changes" true (List.length transitions >= 3);
        (* temperature stays inside the hysteresis band once regulated *)
        List.iter
          (fun (s : Cosim.step) ->
            if s.Cosim.round > 10 then
              let t = List.assoc "Temp" s.Cosim.outputs in
              check Alcotest.bool "bounded" true (t > 0.05 && t < 0.95))
          outcome.Cosim.steps);
    test "watchers are edge-triggered" (fun () ->
        let outcome = run 60 in
        (* hot fires only on crossings, never on consecutive rounds *)
        let rec no_repeat = function
          | (a : Cosim.step) :: (b : Cosim.step) :: rest ->
              check Alcotest.bool "no double fire" false
                (List.mem "hot" a.Cosim.events && List.mem "hot" b.Cosim.events);
              no_repeat (b :: rest)
          | [ _ ] | [] -> ()
        in
        no_repeat outcome.Cosim.steps);
    test "actions drive the store" (fun () ->
        let outcome = run 60 in
        let after_hot =
          List.find
            (fun (s : Cosim.step) -> List.mem "heater_off" s.Cosim.actions)
            outcome.Cosim.steps
        in
        check Alcotest.(option (float 1e-9)) "heat off" (Some 0.0)
          (List.assoc_opt "heat" after_hot.Cosim.store_after));
    test "fsm guards read the co-simulation environment" (fun () ->
        (* Guard blocks the hot transition unless enabled > 0. *)
        let guarded =
          F.make ~name:"g" ~initial:"heating" ~states:[ "heating"; "cooling" ]
            [
              {
                F.t_src = "heating";
                t_event = "hot";
                t_guard = Some "enabled > 0";
                t_actions = [ "heater_off" ];
                t_dst = "cooling";
              };
            ]
        in
        let run_with enabled =
          Cosim.run ~rounds:30 (plant ())
            {
              config with
              Cosim.controller = guarded;
              initial_store = [ ("heat", 1.0); ("enabled", enabled) ];
            }
        in
        check Alcotest.string "blocked" "heating" (run_with 0.0).Cosim.final_state;
        check Alcotest.string "allowed" "cooling" (run_with 1.0).Cosim.final_state);
    test "environment updates integrate every round" (fun () ->
        let outcome =
          Cosim.run ~rounds:5 (plant ())
            {
              config with
              Cosim.updates = [ Cosim.update ~var:"clock" "clock + 1" ];
              initial_store = [ ("heat", 1.0); ("clock", 0.0) ];
            }
        in
        check Alcotest.(option (float 1e-9)) "clock" (Some 5.0)
          (List.assoc_opt "clock" outcome.Cosim.final_store));
    test "bad watcher expression rejected at construction" (fun () ->
        match Cosim.watcher ~event:"e" "Temp >" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

module Script = Umlfront_cosim.Script

let script_text =
  "# glue\n\
   fsm thermostat\n\
   rounds 12\n\
   init heat = 1\n\
   watch hot when Temp > 0.8\n\
   watch cold when Temp < 0.2\n\
   on heater_off set heat = 0\n\
   on heater_on set heat = 1\n\
   update clock = clock + 1\n"

let script_tests =
  [
    test "script parses every directive" (fun () ->
        let s = Script.parse_exn script_text in
        check Alcotest.(option string) "chart" (Some "thermostat") s.Script.chart;
        check Alcotest.(option int) "rounds" (Some 12) s.Script.rounds;
        check Alcotest.int "watchers" 2 (List.length s.Script.watchers);
        check Alcotest.int "setters" 2 (List.length s.Script.setters);
        check Alcotest.int "updates" 1 (List.length s.Script.updates);
        check Alcotest.(list (pair string (float 1e-9))) "init" [ ("heat", 1.0) ]
          s.Script.initial_store);
    test "scripted run equals programmatic config" (fun () ->
        let s = Script.parse_exn script_text in
        let scripted =
          Cosim.run ~rounds:30 (plant ()) (Script.configure thermostat s)
        in
        let programmatic =
          Cosim.run ~rounds:30 (plant ())
            { config with Cosim.updates = (Script.configure thermostat s).Cosim.updates;
              initial_store = [ ("heat", 1.0) ] }
        in
        check Alcotest.string "same final state" programmatic.Cosim.final_state
          scripted.Cosim.final_state);
    test "error reports the line" (fun () ->
        match Script.parse "watch broken expression" with
        | Error msg ->
            check Alcotest.bool "line 1" true (Astring_contains.contains msg "line 1")
        | Ok _ -> Alcotest.fail "expected error");
    test "unknown directive rejected" (fun () ->
        match Script.parse "frobnicate x" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    test "comments and blanks ignored" (fun () ->
        match Script.parse "\n# only a comment\n\n" with
        | Ok s -> check Alcotest.int "empty" 0 (List.length s.Script.watchers)
        | Error msg -> Alcotest.fail msg);
    test "print of a parsed script re-parses identically" (fun () ->
        let s = Script.parse_exn script_text in
        match Script.parse (Script.print s) with
        | Ok s' -> check Alcotest.string "fixpoint" (Script.print s) (Script.print s')
        | Error msg -> Alcotest.fail msg);
    test "errors name the offending line in a long script" (fun () ->
        List.iter
          (fun (script, expected) ->
            match Script.parse script with
            | Error msg ->
                check Alcotest.bool
                  (Printf.sprintf "%S in %S" expected msg)
                  true
                  (Astring_contains.contains msg expected)
            | Ok _ -> Alcotest.fail "expected error")
          [
            ("fsm ok\nrounds 5\nwatch broken\ninit x = 1", "line 3");
            ("fsm ok\nrounds nope", "line 2");
            ("init x = forty-two", "line 1");
            ("fsm ok\n\n# fine\non oops missing", "line 4");
            ("update x = ((1 + ", "line 1");
          ]);
  ]

(* --- property tests: Script.print / Script.parse round-trip ---------- *)

module G = Umlfront_fsm.Guard_expr

(* Identifiers from a fixed pool: anything the line-oriented grammar
   treats as a bare word (no spaces, no '#', not a directive keyword). *)
let ident_gen = QCheck.Gen.oneofl [ "heat"; "temp"; "clock"; "mode"; "press_2"; "x" ]

(* Integer-valued Num literals so the %.12g / %g printers reproduce the
   parsed float exactly; non-negative because the guard grammar has no
   unary minus. *)
let expr_gen =
  QCheck.Gen.(
    sized_size (int_bound 5) @@ fix (fun self n ->
        let leaf =
          oneof
            [
              map (fun i -> G.Num (float_of_int i)) (int_bound 99);
              map (fun v -> G.Var v) ident_gen;
            ]
        in
        if n <= 0 then leaf
        else
          let sub = self (n / 2) in
          oneof
            [
              leaf;
              map (fun e -> G.Not e) sub;
              map2 (fun a b -> G.And (a, b)) sub sub;
              map2 (fun a b -> G.Or (a, b)) sub sub;
              map3
                (fun op a b -> G.Cmp (op, a, b))
                (oneofl [ G.Eq; G.Ne; G.Lt; G.Le; G.Gt; G.Ge ])
                sub sub;
              map3
                (fun op a b -> G.Arith (op, a, b))
                (oneofl [ G.Add; G.Sub; G.Mul; G.Div ])
                sub sub;
            ]))

let script_gen =
  QCheck.Gen.(
    let watcher =
      map2 (fun e w -> { Cosim.watch_event = e; watch_when = w }) ident_gen expr_gen
    in
    let setter =
      map3
        (fun a v e -> { Cosim.set_action = a; set_var = v; set_to = e })
        ident_gen ident_gen expr_gen
    in
    let update =
      map2 (fun v e -> { Cosim.update_var = v; update_to = e }) ident_gen expr_gen
    in
    let init = map2 (fun v i -> (v, float_of_int i)) ident_gen (int_bound 999) in
    map2
      (fun (chart, rounds, initial_store) (watchers, setters, updates) ->
        { Script.chart; rounds; watchers; setters; updates; initial_store })
      (triple (opt ident_gen) (opt (int_range 1 500)) (small_list init))
      (triple (small_list watcher) (small_list setter) (small_list update)))

let script_property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"print/parse round-trips structurally" ~count:300
         (QCheck.make ~print:Script.print script_gen)
         (fun s ->
           match Script.parse (Script.print s) with
           | Ok s' -> s' = s
           | Error msg -> QCheck.Test.fail_report msg));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"print is a fixpoint" ~count:300
         (QCheck.make ~print:Script.print script_gen)
         (fun s ->
           let printed = Script.print s in
           String.equal printed (Script.print (Script.parse_exn printed))));
  ]

let suite =
  [
    ("cosim:session", session_tests);
    ("cosim:loop", cosim_tests);
    ("cosim:script", script_tests);
    ("cosim:script-properties", script_property_tests);
  ]
