(* Seeded-defect ("mutation") helpers shared by the alcotest suite and
   the golden-report generator: each injects exactly one defect into a
   clean crane model so one lint rule fires.  Lives in its own little
   library because dune modules belong to a single stanza, and both the
   test runner and golden_gen.exe need these. *)

module U = Umlfront_uml
module A = Umlfront_analysis
module D = Umlfront_analysis.Diagnostic
module Core = Umlfront_core
module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Caam = Umlfront_simulink.Caam
module Model = Umlfront_simulink.Model
module CS = Umlfront_casestudies
module Obs = Umlfront_obs

let crane () = CS.Crane_system.model ()
let crane_caam () = (Core.Flow.run (crane ())).Core.Flow.caam

(* --- UML-level mutation helpers ------------------------------------ *)

let add_messages uml msgs =
  {
    uml with
    U.Model.sequences = uml.U.Model.sequences @ [ U.Sequence.make "mutant_sd" msgs ];
  }

(* Declare the operation on the callee class so an injected message
   only trips the rule under test, not UF001 as well. *)
let declare_op uml cls_name op =
  {
    uml with
    U.Model.classes =
      List.map
        (fun (c : U.Classifier.cls) ->
          if String.equal c.U.Classifier.cls_name cls_name then
            { c with U.Classifier.cls_operations = c.U.Classifier.cls_operations @ [ op ] }
          else c)
        uml.U.Model.classes;
  }

let map_deployments uml f =
  { uml with U.Model.deployments = List.map f uml.U.Model.deployments }

let farg = U.Sequence.arg "v" U.Datatype.D_float

let op_with_input name =
  U.Operation.make ~params:[ U.Operation.param "v" U.Datatype.D_float ] name

let op_with_return name =
  U.Operation.make
    ~params:[ U.Operation.param ~dir:U.Operation.Return "r" U.Datatype.D_float ]
    name

(* One mutant per UML rule. *)
let mut_undeclared_operation uml =
  add_messages uml [ U.Sequence.message ~from:"Tsensor" ~target:"sensorProc" "bogus" ]

let mut_unknown_callee uml =
  add_messages uml [ U.Sequence.message ~from:"Tsensor" ~target:"ghostObj" "poke" ]

let mut_unconsumed_set uml =
  let uml = declare_op uml "Tactuator_cls" (op_with_input "SetOrphan") in
  add_messages uml
    [
      U.Sequence.message ~from:"Tcontrol" ~target:"Tactuator" "SetOrphan"
        ~args:[ U.Sequence.arg "orphan" U.Datatype.D_float ];
    ]

let mut_unproduced_get uml =
  let uml = declare_op uml "Tsensor_cls" (op_with_return "GetGhost") in
  add_messages uml
    [
      U.Sequence.message ~from:"Tactuator" ~target:"Tsensor" "GetGhost"
        ~result:(U.Sequence.arg "ghost" U.Datatype.D_float);
    ]

let mut_io_misuse uml =
  let uml = declare_op uml "IODevice_cls" (op_with_input "pokeDevice") in
  add_messages uml
    [ U.Sequence.message ~from:"Tactuator" ~target:"IODevice" "pokeDevice" ~args:[ farg ] ]

let mut_undeployed_thread uml =
  map_deployments uml (fun dep ->
      {
        dep with
        U.Deployment.dep_allocation =
          List.filter
            (fun (t, _) -> not (String.equal t "Tactuator"))
            dep.U.Deployment.dep_allocation;
      })

let mut_node_without_saengine uml =
  map_deployments uml (fun dep ->
      {
        dep with
        U.Deployment.dep_nodes =
          List.map
            (fun (n : U.Deployment.node) -> { n with U.Deployment.node_stereotypes = [] })
            dep.U.Deployment.dep_nodes;
      })

(* The only UML defects that survive the synthesizer (Mapping rejects
   anything Validate flags) are the ones Validate does not police:
   a node missing its <<SAengine>> stereotype and an IO read whose
   result the mapping silently drops.  The gate and CLI tests use
   these two. *)
let mut_io_read_no_result uml =
  let uml = declare_op uml "IODevice_cls" (U.Operation.make "getDangling") in
  add_messages uml [ U.Sequence.message ~from:"Tsensor" ~target:"IODevice" "getDangling" ]

(* --- CAAM-level mutation helpers ----------------------------------- *)

let with_root (m : Model.t) root = { m with Model.root }

let map_system_at (m : Model.t) path f =
  with_root m (S.map_systems (fun p sys -> if p = path then f sys else sys) m.Model.root)

let first_channel (m : Model.t) =
  match Caam.channels m with
  | ch :: _ -> ch
  | [] -> failwith "model has no channels"

let mut_dangle_port m =
  let cpu = List.hd (Caam.cpus m) in
  map_system_at m [ cpu.S.blk_name ] (fun sys ->
      match S.lines sys with
      | l :: _ -> S.remove_line sys ~src:l.S.src ~dst:l.S.dst
      | [] -> failwith "CPU-SS has no lines")

let mut_unconnected_sink m = with_root m (S.add_block m.Model.root B.Terminator "mut_sink")
let mut_unconnected_source m = with_root m (S.add_block m.Model.root B.Constant "mut_src")

let mut_duplicate_name m =
  let cpu = List.hd (Caam.cpus m) in
  map_system_at m [ cpu.S.blk_name ] (fun sys ->
      { sys with S.sys_blocks = sys.S.sys_blocks @ [ List.hd sys.S.sys_blocks ] })

let mut_flip_protocol m =
  let path, ch = first_channel m in
  map_system_at m path (fun sys ->
      S.set_param sys ch.S.blk_name Caam.protocol_param (B.P_string "GFIFO"))

let mut_strip_cpu_role m =
  let cpu = List.hd (Caam.cpus m) in
  with_root m (S.set_param m.Model.root cpu.S.blk_name Caam.role_param (B.P_string "none"))

let mut_channel_fanout m =
  let path, ch = first_channel m in
  map_system_at m path (fun sys ->
      let sys = S.add_block sys B.Terminator "mut_tap" in
      S.add_line sys
        ~src:{ S.block = ch.S.blk_name; port = 1 }
        ~dst:{ S.block = "mut_tap"; port = 1 })

(* The issue's "drop a UnitDelay": turn every temporal barrier into a
   plain Gain (same port shape, no state) so the feedback loop becomes
   a zero-delay cycle again. *)
let mut_drop_unit_delay m =
  with_root m
    (S.map_systems
       (fun _ sys ->
         List.fold_left
           (fun sys (b : S.block) ->
             if b.S.blk_type = B.Unit_delay then
               S.replace_block sys { b with S.blk_type = B.Gain }
             else sys)
           sys (S.blocks sys))
       m.Model.root)

(* Re-number one nested Inport so its subsystem's boundary port has no
   matching block: the model keeps its structure but no longer flattens
   to a dataflow graph (UF190). *)
let mut_unflattenable m =
  let mutated = ref false in
  with_root m
    (S.map_systems
       (fun path sys ->
         if !mutated || path = [] then sys
         else
           match S.blocks_of_type sys B.Inport with
           | b :: _ ->
               mutated := true;
               S.set_param sys b.S.blk_name "Port" (B.P_int 99)
           | [] -> sys)
       m.Model.root)

let mut_zero_capacity m =
  let path, ch = first_channel m in
  map_system_at m path (fun sys -> S.set_param sys ch.S.blk_name "Capacity" (B.P_int 0))

(* --- golden report contents ----------------------------------------- *)

(* A deterministic multi-defect mutant exercising every report shape:
   errors, warnings, hints, and both renderers. *)
let defect_report () =
  let uml = mut_undeployed_thread (crane ()) in
  let caam = mut_unconnected_sink (mut_zero_capacity (mut_flip_protocol (crane_caam ()))) in
  A.Lint.check ~uml caam

let clean_report model =
  let uml = model () in
  A.Lint.check ~uml (Core.Flow.run uml).Core.Flow.caam

let json_report ~file ds = Obs.Json.to_string (D.list_to_json ~file ds) ^ "\n"

(* The crane schedule as Chrome trace JSON, including the flow-event
   arrows for every token hand-off: all of it comes from the static
   timing model, so the bytes are pinnable. *)
let crane_trace () =
  Umlfront_dataflow.Trace_export.chrome_json
    (Umlfront_dataflow.Sdf.of_model (crane_caam ()))
  ^ "\n"

(* The crane flow's span tree with timings scrubbed: the tree *shape*
   (span names, categories, nesting under flow.run) is deterministic
   for a given model even though the measured numbers never are, so the
   structure is pinnable byte-for-byte.  Runs inside its own telemetry
   context so generating goldens never perturbs the global sinks. *)
let crane_spans () =
  let ctx = Obs.Context.create ~trace:true () in
  ignore (Core.Flow.run ~ctx (crane ()));
  Obs.Context.with_current ctx (fun () ->
      Obs.Span_tree.render ~timings:false (Obs.Trace.events ()))

(* A deterministic registry exercising every OpenMetrics shape —
   counter, gauge, histogram summary — and, under [~labels:true], the
   same families again with label blocks interleaved.  The unlabeled
   rendering must stay byte-identical whether or not labeled series
   coexist, so both goldens share one builder. *)
let openmetrics_golden ~labels () =
  let r = Obs.Metrics.create () in
  let registry = r in
  Obs.Metrics.incr ~registry ~by:5 "serve.requests";
  Obs.Metrics.set_gauge ~registry "serve.inflight" 2.0;
  List.iter
    (Obs.Metrics.observe ~registry "serve.request_us")
    [ 100.0; 200.0; 300.0; 400.0 ];
  if labels then begin
    let lab = Obs.Openmetrics.labeled in
    Obs.Metrics.incr ~registry ~by:3
      (lab "serve.requests" [ ("endpoint", "/api/lint"); ("status", "200") ]);
    Obs.Metrics.incr ~registry ~by:2
      (lab "serve.requests" [ ("endpoint", "/api/lint"); ("status", "422") ]);
    Obs.Metrics.set_gauge ~registry
      (lab "serve.rolling.p95_us" [ ("endpoint", "/api/lint"); ("window", "60s") ])
      1500.0;
    List.iter
      (Obs.Metrics.observe ~registry
         (lab "serve.request_us" [ ("endpoint", "/api/lint") ]))
      [ 110.0; 220.0 ];
    (* Values needing escaping: backslash, quote, newline. *)
    Obs.Metrics.incr ~registry
      (lab "serve.odd" [ ("path", "a\\b\"c\nd") ])
  end;
  Obs.Openmetrics.render (Obs.Metrics.snapshot ~registry ())

(* The renderable golden files, keyed by file name under test/golden/;
   golden_gen.exe prints one of these, the dune diff rules pin each
   byte-for-byte. *)
let goldens =
  [
    ("crane.lint.txt", fun () -> D.render (clean_report CS.Crane_system.model));
    ( "crane.lint.json",
      fun () -> json_report ~file:"crane" (clean_report CS.Crane_system.model) );
    ("synthetic.lint.txt", fun () -> D.render (clean_report CS.Synthetic_system.model));
    ( "synthetic.lint.json",
      fun () -> json_report ~file:"synthetic" (clean_report CS.Synthetic_system.model) );
    ("crane_defects.lint.txt", fun () -> D.render (defect_report ()));
    ( "crane_defects.lint.json",
      fun () -> json_report ~file:"crane_defects" (defect_report ()) );
    ("crane.trace.json", crane_trace);
    ("crane.spans.txt", crane_spans);
    (* A full serialized HTTP response with the only nondeterministic
       header (Date) pinned: freezes the serving wire format — header
       order, casing, CRLF framing — byte-for-byte. *)
    ( "http.response.txt",
      fun () ->
        Umlfront_serve.Http.response
          ~headers:[ ("X-Cache", "hit") ]
          ~date:"Sun, 09 Aug 2026 12:00:00 GMT" ~status:200 "{\"ok\":true}\n" );
    (* The OpenMetrics exposition format, pinned twice: once without
       labels (the wire format every scraper has depended on since the
       first /metrics), once with label blocks — proving labels change
       only the lines that carry them. *)
    ("openmetrics.unlabeled.txt", fun () -> openmetrics_golden ~labels:false ());
    ("openmetrics.labeled.txt", fun () -> openmetrics_golden ~labels:true ());
  ]

let golden_names = List.map fst goldens

let render_golden name =
  match List.assoc_opt name goldens with
  | Some f -> f ()
  | None -> failwith (Printf.sprintf "unknown golden file %S" name)
