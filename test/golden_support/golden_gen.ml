(* Prints one golden report to stdout; the dune rules in test/dune pipe
   it into a .gen file and (diff) it against the committed golden, so a
   drift shows up as a promotable diff: dune promote refreshes it. *)
let () =
  match Sys.argv with
  | [| _; name |] -> print_string (Lint_mutants.render_golden name)
  | _ ->
      prerr_endline "usage: golden_gen <golden-file-name>";
      exit 2
