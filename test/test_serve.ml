(* The serving tentpole: umlfront serve as a long-lived, cache-keyed
   compilation service.

   Layers under test, inside out:
   - Sha256: FIPS 180-4 vectors (the cache key depends on it);
   - Http: the incremental codec — torn 1-byte reads, pipelining,
     missing/duplicate Content-Length, header case-insensitivity, and
     the response serializer pinned byte-for-byte against a golden;
   - Cache: LRU semantics — recency, eviction order, byte bound,
     hit/miss/eviction counters;
   - Api: query-option decoding and the content-hash cache key;
   - JSON round-trips: Diagnostic and Conform reports decode back to
     what was encoded, so the wire format the server shares with the
     CLI is invertible;
   - the live server over the loopback: every endpoint end to end,
     byte-parity with the CLI's --format json output, the failure
     paths (404/405/413/422/400), overload 503, raw-socket pipelining;
   - the hammer: 200 concurrent mixed requests over random lint-clean
     models (all six Random_models shapes) must produce byte-identical
     bodies to a sequential replay, zero cross-request telemetry bleed
     (X-Request-Spans stable, flow runs == cache misses) and a warm
     cache (hit ratio > 0 in /metrics). *)

module Http = Umlfront_serve.Http
module Sha256 = Umlfront_serve.Sha256
module Cache = Umlfront_serve.Cache
module Api = Umlfront_serve.Api
module Server = Umlfront_serve.Server
module Client = Umlfront_serve.Serve_client
module Sse = Umlfront_serve.Sse
module Traceparent = Umlfront_serve.Traceparent
module Events_hub = Umlfront_serve.Events_hub
module A = Umlfront_analysis
module Conf = Umlfront_conformance.Conform
module R = Umlfront_casestudies.Random_models
module CS = Umlfront_casestudies
module Core = Umlfront_core
module U = Umlfront_uml
module Obs = Umlfront_obs
module Json = Umlfront_obs.Json

let check = Alcotest.check
let checkb name = Alcotest.check Alcotest.bool name true
let test name f = Alcotest.test_case name `Quick f
let read_file path = In_channel.with_open_bin path In_channel.input_all

let didactic_xmi = lazy (U.Xmi.to_string (CS.Didactic.model ()))
let crane_xmi = lazy (U.Xmi.to_string (CS.Crane_system.model ()))

(* --- sha256 ---------------------------------------------------------- *)

let sha256_tests =
  [
    test "FIPS 180-4 vectors" (fun () ->
        check Alcotest.string "empty"
          "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
          (Sha256.hex "");
        check Alcotest.string "abc"
          "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
          (Sha256.hex "abc");
        check Alcotest.string "448-bit"
          "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
          (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
        check Alcotest.string "quick brown fox"
          "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
          (Sha256.hex "The quick brown fox jumps over the lazy dog"));
    test "million a's (multi-block, padding straddles blocks)" (fun () ->
        check Alcotest.string "1e6 x 'a'"
          "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
          (Sha256.hex (String.make 1_000_000 'a')));
    test "length landing exactly on the padding boundary" (fun () ->
        (* 55 and 56 bytes: the 56-byte message forces a second block
           for the length word. *)
        checkb "55 <> 56 digests"
          (Sha256.hex (String.make 55 'x') <> Sha256.hex (String.make 56 'x'));
        check Alcotest.int "hex length" 64 (String.length (Sha256.hex "x")));
  ]

(* --- http codec ------------------------------------------------------ *)

let simple_post ?(cl = true) body =
  Printf.sprintf "POST /api/lint?file=m.xml HTTP/1.1\r\nHost: x\r\n%sX-Thing: v\r\n\r\n%s"
    (if cl then Printf.sprintf "Content-Length: %d\r\n" (String.length body) else "")
    body

let decode_all s =
  let d = Http.decoder () in
  Http.feed d s;
  let rec drain acc =
    match Http.next d with
    | `Request r -> drain (r :: acc)
    | `Await -> List.rev acc
    | `Error e -> failwith ("decode error: " ^ Http.error_message e)
  in
  drain []

let http_tests =
  [
    test "request line, path, query and headers decode" (fun () ->
        match decode_all (simple_post "hello") with
        | [ r ] ->
            check Alcotest.string "meth" "POST" r.Http.meth;
            check Alcotest.string "path" "/api/lint" r.Http.path;
            check
              Alcotest.(list (pair string string))
              "query"
              [ ("file", "m.xml") ]
              r.Http.query;
            check Alcotest.string "body" "hello" r.Http.body;
            check Alcotest.(option string) "header" (Some "v") (Http.header r "x-thing")
        | rs -> Alcotest.failf "expected 1 request, got %d" (List.length rs));
    test "header lookup is case-insensitive" (fun () ->
        match decode_all "GET / HTTP/1.1\r\nX-MiXeD-CaSe: yes\r\n\r\n" with
        | [ r ] ->
            check Alcotest.(option string) "upper" (Some "yes")
              (Http.header r "X-MIXED-CASE");
            check Alcotest.(option string) "lower" (Some "yes")
              (Http.header r "x-mixed-case")
        | _ -> Alcotest.fail "one request expected");
    test "torn 1-byte reads still yield the same request" (fun () ->
        let raw = simple_post "torn body bytes" in
        let d = Http.decoder () in
        let got = ref [] in
        String.iter
          (fun c ->
            Http.feed d (String.make 1 c);
            match Http.next d with
            | `Request r -> got := r :: !got
            | `Await -> ()
            | `Error e -> failwith (Http.error_message e))
          raw;
        match (!got, decode_all raw) with
        | [ torn ], [ whole ] ->
            checkb "identical requests" (torn = whole);
            check Alcotest.string "body" "torn body bytes" torn.Http.body
        | _ -> Alcotest.fail "exactly one request expected from each decode");
    test "pipelined requests surface one at a time, in order" (fun () ->
        let raw = simple_post "first" ^ simple_post "second" ^ "GET /healthz HTTP/1.1\r\n\r\n" in
        match decode_all raw with
        | [ a; b; c ] ->
            check Alcotest.string "1st body" "first" a.Http.body;
            check Alcotest.string "2nd body" "second" b.Http.body;
            check Alcotest.string "3rd path" "/healthz" c.Http.path;
            check Alcotest.string "3rd meth" "GET" c.Http.meth
        | rs -> Alcotest.failf "expected 3 requests, got %d" (List.length rs));
    test "POST without Content-Length is 411" (fun () ->
        let d = Http.decoder () in
        Http.feed d (simple_post ~cl:false "body");
        (match Http.next d with
        | `Error `Length_required -> ()
        | _ -> Alcotest.fail "expected Length_required");
        check Alcotest.int "status" 411 (Http.error_status `Length_required));
    test "duplicate Content-Length is rejected (smuggling guard)" (fun () ->
        let d = Http.decoder () in
        Http.feed d
          "POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nbody!";
        match Http.next d with
        | `Error (`Bad_request m) -> checkb "names the header" (m = "duplicate Content-Length")
        | _ -> Alcotest.fail "expected Bad_request");
    test "declared body beyond max_body is 413 before buffering" (fun () ->
        let d = Http.decoder ~max_body:10 () in
        Http.feed d "POST /x HTTP/1.1\r\nContent-Length: 11\r\n\r\n";
        match Http.next d with
        | `Error (`Payload_too_large 11) -> ()
        | _ -> Alcotest.fail "expected Payload_too_large 11");
    test "errors are sticky" (fun () ->
        let d = Http.decoder () in
        Http.feed d "NONSENSE\r\n\r\n";
        (match Http.next d with `Error _ -> () | _ -> Alcotest.fail "error expected");
        Http.feed d "GET / HTTP/1.1\r\n\r\n";
        match Http.next d with
        | `Error _ -> ()
        | _ -> Alcotest.fail "decoder must stay failed");
    test "oversized head is rejected" (fun () ->
        let d = Http.decoder ~max_header:64 () in
        Http.feed d ("GET /" ^ String.make 100 'x' ^ " HTTP/1.1\r\n");
        match Http.next d with
        | `Error (`Bad_request _) -> ()
        | _ -> Alcotest.fail "expected Bad_request on oversized head");
    test "keep_alive: HTTP/1.1 persistent unless Connection: close" (fun () ->
        let r s = List.hd (decode_all s) in
        checkb "default persistent" (Http.keep_alive (r "GET / HTTP/1.1\r\n\r\n"));
        checkb "close honored"
          (not (Http.keep_alive (r "GET / HTTP/1.1\r\nConnection: close\r\n\r\n")));
        checkb "case-insensitive value"
          (not (Http.keep_alive (r "GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n"))));
    test "percent and + decoding in path and query" (fun () ->
        match decode_all "GET /a%20b?k=v%2Fw&plus=a+b HTTP/1.1\r\n\r\n" with
        | [ r ] ->
            check Alcotest.string "path" "/a b" r.Http.path;
            check Alcotest.(option string) "slash" (Some "v/w") (Http.query_param r "k");
            check Alcotest.(option string) "plus" (Some "a b") (Http.query_param r "plus")
        | _ -> Alcotest.fail "one request expected");
    test "response serialization is pinned (golden)" (fun () ->
        let got =
          Http.response
            ~headers:[ ("X-Cache", "hit") ]
            ~date:"Sun, 09 Aug 2026 12:00:00 GMT" ~status:200 "{\"ok\":true}\n"
        in
        check Alcotest.string "golden bytes" (read_file "golden/http.response.txt") got);
  ]

(* --- cache ----------------------------------------------------------- *)

let v body = { Cache.status = 200; content_type = "application/json"; body }

let cache_tests =
  [
    test "hit and miss counters" (fun () ->
        let c = Cache.create ~max_bytes:4096 in
        checkb "initial miss" (Cache.find c "k" = None);
        Cache.add c "k" (v "body");
        checkb "then hit" (Cache.find c "k" = Some (v "body"));
        let s = Cache.stats c in
        check Alcotest.int "hits" 1 s.Cache.hits;
        check Alcotest.int "misses" 1 s.Cache.misses;
        check Alcotest.int "entries" 1 s.Cache.entries);
    test "LRU eviction order respects recency" (fun () ->
        (* Each entry costs body + 2*key + 64 = 100+2+64 = 166; bound to
           two entries. *)
        let c = Cache.create ~max_bytes:340 in
        Cache.add c "a" (v (String.make 100 'a'));
        Cache.add c "b" (v (String.make 100 'b'));
        ignore (Cache.find c "a");
        (* "b" is now least recently used: adding "c" evicts it. *)
        Cache.add c "c" (v (String.make 100 'c'));
        checkb "a survives (recently used)" (Cache.find c "a" <> None);
        checkb "b evicted" (Cache.find c "b" = None);
        checkb "c present" (Cache.find c "c" <> None);
        check Alcotest.int "evictions" 1 (Cache.stats c).Cache.evictions);
    test "oversized value is skipped, replacement reuses the slot" (fun () ->
        let c = Cache.create ~max_bytes:200 in
        Cache.add c "big" (v (String.make 400 'x'));
        checkb "not stored" (Cache.find c "big" = None);
        Cache.add c "k" (v "one");
        Cache.add c "k" (v "two");
        checkb "replaced" (Cache.find c "k" = Some (v "two"));
        check Alcotest.int "one entry" 1 (Cache.stats c).Cache.entries);
    test "max_bytes <= 0 disables storage" (fun () ->
        let c = Cache.create ~max_bytes:0 in
        Cache.add c "k" (v "body");
        checkb "nothing stored" (Cache.find c "k" = None));
  ]

(* --- api options and cache key --------------------------------------- *)

let api_tests =
  [
    test "options_of_query: defaults and the CLI vocabulary" (fun () ->
        checkb "empty = defaults" (Api.options_of_query [] = Ok Api.default_options);
        (match Api.options_of_query [ ("strategy", "linear"); ("rounds", "42") ] with
        | Ok o ->
            checkb "linear" (o.Api.strategy = Core.Flow.Infer_linear);
            check Alcotest.int "rounds" 42 o.Api.rounds
        | Error e -> Alcotest.fail e);
        (match Api.options_of_query [ ("strategy", "linear"); ("cpus", "3") ] with
        | Ok o -> checkb "cpus wins" (o.Api.strategy = Core.Flow.Infer_bounded 3)
        | Error e -> Alcotest.fail e);
        (match Api.options_of_query [ ("engine", "compiled") ] with
        | Ok o -> checkb "compiled" (o.Api.engine = `Compiled)
        | Error e -> Alcotest.fail e);
        checkb "rounds 0 rejected" (Result.is_error (Api.options_of_query [ ("rounds", "0") ]));
        checkb "rounds huge rejected"
          (Result.is_error (Api.options_of_query [ ("rounds", "1000000") ]));
        checkb "unknown key rejected"
          (Result.is_error (Api.options_of_query [ ("typo", "1") ])));
    test "endpoint_of_path covers exactly the published routes" (fun () ->
        checkb "lint" (Api.endpoint_of_path "/api/lint" = Some Api.Lint);
        checkb "generate/c" (Api.endpoint_of_path "/api/generate/c" = Some (Api.Generate `C));
        checkb "unknown" (Api.endpoint_of_path "/api/nope" = None);
        check Alcotest.int "route count" 7 (List.length Api.all_endpoints));
    test "cache key: whitespace-insensitive in the model, sensitive to options"
      (fun () ->
        let xmi = Lazy.force didactic_xmi in
        let reparsed =
          U.Xmi.to_string (U.Xmi.of_string xmi)
          (* identical canonical bytes *)
        in
        let m1 = U.Xmi.of_string xmi and m2 = U.Xmi.of_string reparsed in
        let o = Api.default_options in
        check Alcotest.string "same model, same key"
          (Api.cache_key Api.Lint o m1)
          (Api.cache_key Api.Lint o m2);
        checkb "endpoint changes the key"
          (Api.cache_key Api.Lint o m1 <> Api.cache_key Api.Transform o m1);
        checkb "rounds change the key"
          (Api.cache_key Api.Simulate o m1
          <> Api.cache_key Api.Simulate { o with Api.rounds = 11 } m1);
        checkb "strategy changes the key"
          (Api.cache_key Api.Lint o m1
          <> Api.cache_key Api.Lint { o with Api.strategy = Core.Flow.Infer_linear } m1);
        checkb "different models differ"
          (Api.cache_key Api.Lint o m1
          <> Api.cache_key Api.Lint o (U.Xmi.of_string (Lazy.force crane_xmi))));
  ]

(* --- JSON round-trips ------------------------------------------------ *)

let roundtrip_tests =
  [
    test "Diagnostic.of_json inverts to_json" (fun () ->
        let ds =
          [
            A.Diagnostic.error ~code:"UF901" ~path:[ "request"; "body" ]
              ~hint:"POST XMI" "malformed";
            A.Diagnostic.warning ~code:"UF104" ~path:[ "top"; "ch" ] "protocol";
            A.Diagnostic.make A.Diagnostic.Info ~code:"UF001" ~path:[] "note";
          ]
        in
        List.iter
          (fun d ->
            match A.Diagnostic.of_json (A.Diagnostic.to_json d) with
            | Ok d' -> checkb "round-trips" (d = d')
            | Error e -> Alcotest.fail e)
          ds;
        match A.Diagnostic.list_of_json (A.Diagnostic.list_to_json ~file:"m.xml" ds) with
        | Ok (file, ds') ->
            check Alcotest.(option string) "file" (Some "m.xml") file;
            checkb "list round-trips" (ds = ds')
        | Error e -> Alcotest.fail e);
    test "Diagnostic round-trips through printed bytes" (fun () ->
        let ds = [ A.Diagnostic.error ~code:"UF902" ~path:[ "flow" ] "rejected" ] in
        let bytes = Json.to_string (A.Diagnostic.list_to_json ds) in
        match Json.parse bytes with
        | Error e -> Alcotest.fail e
        | Ok json -> (
            match A.Diagnostic.list_of_json json with
            | Ok (None, ds') -> checkb "same diagnostics" (ds = ds')
            | Ok (Some _, _) -> Alcotest.fail "no file expected"
            | Error e -> Alcotest.fail e));
    test "Conform.report_of_json inverts to_json (synthetic verdicts)" (fun () ->
        let report =
          {
            Conf.model_name = "m";
            rounds = 7;
            outputs = [ "Out1"; "Out2" ];
            verdicts =
              [
                (Conf.Seq, Conf.Agree);
                ( Conf.Compiled_exec,
                  Conf.Disagree
                    (Conf.Trace
                       {
                         round = 3;
                         port = "Out1";
                         expected = 1.5;
                         actual = 2.25;
                         provenance =
                           Some
                             {
                               Conf.prov_block = "B";
                               prov_firing = 4;
                               prov_channel = "A/o->B/i";
                               prov_protocols = [ "HSFIFO" ];
                             };
                       }) );
                (Conf.Kpn, Conf.Disagree (Conf.Crash "deadlock"));
                (Conf.Kpn_src, Conf.Disagree (Conf.Structure "missing filter"));
                (Conf.C, Conf.Backend_unavailable "no cc");
              ];
          }
        in
        let bytes = Json.to_string (Conf.to_json report) in
        match Json.parse bytes with
        | Error e -> Alcotest.fail e
        | Ok json -> (
            match Conf.report_of_json json with
            | Ok r -> checkb "report round-trips" (r = report)
            | Error e -> Alcotest.fail e));
    test "Conform round-trip on a real check" (fun () ->
        let caam = (Core.Flow.run (CS.Didactic.model ())).Core.Flow.caam in
        let report =
          Conf.check ~backends:[ Conf.Seq; Conf.Compiled_exec ] ~rounds:5 caam
        in
        match Json.parse (Json.to_string (Conf.to_json report)) with
        | Error e -> Alcotest.fail e
        | Ok json -> (
            match Conf.report_of_json json with
            | Ok r -> checkb "round-trips" (r = report)
            | Error e -> Alcotest.fail e));
  ]

(* --- live server helpers --------------------------------------------- *)

let with_server ?(config = Server.default_config) f =
  let server = Server.start ~config:{ config with Server.port = 0 } () in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let post server target body = Client.post ~port:(Server.port server) target body
let get server target = Client.get ~port:(Server.port server) target

let exe = Filename.concat ".." (Filename.concat "bin" "umlfront.exe")

let run_cli args =
  let out = Filename.temp_file "umlfront_serve" ".out" in
  let code = Sys.command (Printf.sprintf "%s %s >%s 2>/dev/null" exe args out) in
  let s = read_file out in
  Sys.remove out;
  (code, s)

let save_xmi xmi =
  let file = Filename.temp_file "umlfront_serve" ".xml" in
  Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc xmi);
  file

(* --- e2e: endpoints, parity, failure paths --------------------------- *)

let e2e_tests =
  [
    test "healthz, metrics and journal answer" (fun () ->
        with_server @@ fun s ->
        let h = get s "/healthz" in
        check Alcotest.int "healthz 200" 200 h.Client.status;
        checkb "says ok" (Astring_contains.contains h.Client.body "\"status\":\"ok\"");
        let m = get s "/metrics" in
        check Alcotest.int "metrics 200" 200 m.Client.status;
        checkb "openmetrics ends with EOF"
          (Astring_contains.contains m.Client.body "# EOF");
        let j = get s "/journal" in
        check Alcotest.int "journal 200" 200 j.Client.status;
        checkb "journal is JSON" (Result.is_ok (Json.parse j.Client.body)));
    test "every compute endpoint answers 200 with the promised members" (fun () ->
        with_server @@ fun s ->
        let xmi = Lazy.force didactic_xmi in
        let expect target members =
          let r = post s target xmi in
          check Alcotest.int (target ^ " status") 200 r.Client.status;
          List.iter
            (fun m ->
              checkb (target ^ " has " ^ m) (Astring_contains.contains r.Client.body m))
            members
        in
        expect "/api/lint" [ "\"diagnostics\"" ];
        expect "/api/transform"
          [ "\"allocation\""; "\"intra_channels\""; "\"mdl\""; "\"broken_cycles\"" ];
        expect "/api/simulate?rounds=5" [ "\"traces\""; "\"firings\""; "\"rounds\":5" ];
        expect "/api/simulate?rounds=5&engine=compiled" [ "\"engine\":\"compiled\"" ];
        expect "/api/conform?backends=seq,compiled&rounds=5"
          [ "\"verdicts\""; "\"agree\"" ];
        expect "/api/generate/c" [ "\"language\":\"c\""; "\"files\"" ];
        expect "/api/generate/java" [ "\"language\":\"java\""; "GeneratedModel.java" ];
        expect "/api/generate/kpn" [ "\"language\":\"kpn\""; "model_kpn.ml" ]);
    test "lint body is byte-identical to `umlfront lint --format json`" (fun () ->
        with_server @@ fun s ->
        List.iter
          (fun xmi ->
            let file = save_xmi xmi in
            let code, cli = run_cli ("lint --format json " ^ Filename.quote file) in
            check Alcotest.int "cli exits 0" 0 code;
            let r = post s ("/api/lint?file=" ^ file) xmi in
            Sys.remove file;
            check Alcotest.int "200" 200 r.Client.status;
            check Alcotest.string "identical bytes" cli r.Client.body)
          [ Lazy.force didactic_xmi; Lazy.force crane_xmi ]);
    test "conform body is byte-identical to `umlfront conform --format json`"
      (fun () ->
        with_server @@ fun s ->
        let xmi = Lazy.force didactic_xmi in
        let file = save_xmi xmi in
        let code, cli =
          run_cli
            ("conform --format json --backends seq,compiled --rounds 5 "
           ^ Filename.quote file)
        in
        Sys.remove file;
        check Alcotest.int "cli exits 0" 0 code;
        let r = post s "/api/conform?backends=seq,compiled&rounds=5" xmi in
        check Alcotest.int "200" 200 r.Client.status;
        check Alcotest.string "identical bytes" cli r.Client.body);
    test "malformed XMI is 422 with a UF901 diagnostic body" (fun () ->
        with_server @@ fun s ->
        let r = post s "/api/lint" "<uml:Model" in
        check Alcotest.int "422" 422 r.Client.status;
        match Json.parse r.Client.body with
        | Error e -> Alcotest.fail e
        | Ok (Json.List [ entry ]) -> (
            match A.Diagnostic.list_of_json entry with
            | Ok (None, [ d ]) ->
                check Alcotest.string "code" "UF901" d.A.Diagnostic.code;
                checkb "severity error" (d.A.Diagnostic.severity = A.Diagnostic.Error);
                checkb "hint present" (d.A.Diagnostic.hint <> None)
            | Ok _ -> Alcotest.fail "exactly one diagnostic expected"
            | Error e -> Alcotest.fail e)
        | Ok _ -> Alcotest.fail "a one-element JSON list expected");
    test "a model the flow rejects is 422 with a UF902 diagnostic" (fun () ->
        with_server @@ fun s ->
        (* Use_deployment on a model with no deployment diagram. *)
        let xmi = U.Xmi.to_string (CS.Mjpeg_system.model ()) in
        let r = post s "/api/transform?strategy=deployment" xmi in
        check Alcotest.int "422" 422 r.Client.status;
        checkb "UF902" (Astring_contains.contains r.Client.body "UF902"));
    test "unknown routes are 404, wrong methods 405 with Allow" (fun () ->
        with_server @@ fun s ->
        check Alcotest.int "404" 404 (get s "/api/nope").Client.status;
        check Alcotest.int "404 root" 404 (get s "/").Client.status;
        let r = get s "/api/lint" in
        check Alcotest.int "405" 405 r.Client.status;
        check Alcotest.(option string) "Allow" (Some "POST") (Client.header r "allow");
        let r = post s "/healthz" "x" in
        check Alcotest.int "405 healthz" 405 r.Client.status);
    test "bad query parameters are 400" (fun () ->
        with_server @@ fun s ->
        let xmi = Lazy.force didactic_xmi in
        check Alcotest.int "unknown key" 400 (post s "/api/lint?typo=1" xmi).Client.status;
        check Alcotest.int "bad rounds" 400
          (post s "/api/simulate?rounds=zero" xmi).Client.status;
        check Alcotest.int "bad engine" 400
          (post s "/api/simulate?engine=warp" xmi).Client.status);
    test "oversized request body is 413" (fun () ->
        with_server
          ~config:{ Server.default_config with Server.max_body = 1024 }
        @@ fun s ->
        let r = post s "/api/lint" (String.make 2048 'x') in
        check Alcotest.int "413" 413 r.Client.status);
    test "identical requests hit the cache; options changes miss" (fun () ->
        with_server @@ fun s ->
        let xmi = Lazy.force didactic_xmi in
        let a = post s "/api/simulate?rounds=5" xmi in
        check Alcotest.(option string) "first is a miss" (Some "miss")
          (Client.header a "x-cache");
        let b = post s "/api/simulate?rounds=5" xmi in
        check Alcotest.(option string) "second is a hit" (Some "hit")
          (Client.header b "x-cache");
        check Alcotest.string "identical bytes" a.Client.body b.Client.body;
        let c = post s "/api/simulate?rounds=6" xmi in
        check Alcotest.(option string) "changed rounds misses" (Some "miss")
          (Client.header c "x-cache");
        let m = (get s "/metrics").Client.body in
        checkb "hit counted in /metrics"
          (Astring_contains.contains m "umlfront_serve_cache_hit_total 1"));
    test "overload answers 503 with Retry-After, then recovers" (fun () ->
        with_server
          ~config:
            {
              Server.default_config with
              Server.pool = 1;
              max_inflight = 2;
              timeout_s = 5.;
            }
        @@ fun s ->
        let open_conn () =
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port s));
          fd
        in
        let held = [ open_conn (); open_conn () ] in
        (* Wait until the acceptor has admitted both idle connections. *)
        let rec wait n =
          if Server.inflight s < 2 && n > 0 then (
            Unix.sleepf 0.01;
            wait (n - 1))
        in
        wait 500;
        check Alcotest.int "both admitted" 2 (Server.inflight s);
        let r = get s "/healthz" in
        check Alcotest.int "503" 503 r.Client.status;
        check Alcotest.(option string) "Retry-After" (Some "1")
          (Client.header r "retry-after");
        List.iter Unix.close held;
        let rec drain n =
          if Server.inflight s > 0 && n > 0 then (
            Unix.sleepf 0.01;
            drain (n - 1))
        in
        drain 500;
        check Alcotest.int "recovered" 200 (get s "/healthz").Client.status);
    test "pipelined requests on one raw socket are answered in order" (fun () ->
        with_server @@ fun s ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        @@ fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port s));
        let xmi = Lazy.force didactic_xmi in
        let one target ~last =
          Printf.sprintf "POST %s HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n%s\r\n%s"
            target (String.length xmi)
            (if last then "Connection: close\r\n" else "")
            xmi
        in
        let raw = one "/api/lint" ~last:false ^ one "/api/transform" ~last:true in
        let rec send off =
          if off < String.length raw then
            send (off + Unix.write_substring fd raw off (String.length raw - off))
        in
        send 0;
        let buf = Bytes.create 65536 in
        let acc = Buffer.create 65536 in
        let rec read_all () =
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes acc buf 0 n;
              read_all ()
        in
        read_all ();
        let all = Buffer.contents acc in
        let first_at = Astring_contains.find all "\"diagnostics\"" in
        let second_at = Astring_contains.find all "\"allocation\"" in
        checkb "both responses present" (first_at >= 0 && second_at >= 0);
        checkb "lint answered before transform" (first_at < second_at);
        checkb "two status lines"
          (Astring_contains.count all "HTTP/1.1 200 OK" = 2));
  ]

(* --- the hammer ------------------------------------------------------ *)

(* Deterministic request vocabulary: every endpoint flavor over a set
   of lint-clean random models drawn from all six generator shapes. *)
let hammer_models seed =
  let shapes =
    [
      ("pipeline", fun s -> R.pipeline ~seed:s ~threads:3 ~extra_edges:1);
      ("wide", fun s -> R.wide ~seed:s ~branches:3 ~depth:2);
      ("monolithic", fun s -> R.monolithic ~seed:s ~calls:5);
      ("cyclic", fun s -> R.cyclic ~seed:s ~stages:2);
      ("multi-cpu", fun s -> R.multi_cpu ~seed:s ~threads:4 ~cpus:2 ~extra_edges:1);
      ("chatty", fun s -> R.chatty ~seed:s ~threads:3 ~width:2);
    ]
  in
  List.filter_map
    (fun (shape, gen) ->
      (* Find a lint-clean instance within a few seed probes so every
         request in the hammer is a 200. *)
      let rec probe k =
        if k >= 10 then None
        else
          let uml = gen (seed + k) in
          match Core.Flow.run uml with
          | output when A.Lint.check ~uml output.Core.Flow.caam = [] ->
              Some (shape, U.Xmi.to_string uml)
          | _ -> probe (k + 1)
          | exception Invalid_argument _ -> probe (k + 1)
      in
      probe 0)
    shapes

let hammer_targets =
  [
    "/api/lint";
    "/api/transform";
    "/api/simulate?rounds=5";
    "/api/simulate?rounds=5&engine=compiled";
    "/api/generate/c?rounds=4";
    "/api/generate/java";
    "/api/generate/kpn";
    "/api/conform?backends=seq&rounds=5";
  ]

let metrics_counter body name =
  let needle = name ^ " " in
  let rec scan = function
    | [] -> None
    | line :: rest ->
        if String.length line > String.length needle
           && String.sub line 0 (String.length needle) = needle
        then
          int_of_string_opt
            (String.trim
               (String.sub line (String.length needle)
                  (String.length line - String.length needle)))
        else scan rest
  in
  scan (String.split_on_char '\n' body)

(* Sequential replay on a private server: the reference bodies and
   per-request span counts every concurrent run must reproduce. *)
let sequential_reference requests =
  with_server ~config:{ Server.default_config with Server.pool = 1 } @@ fun s ->
  List.map
    (fun (target, xmi) ->
      let r = post s target xmi in
      if r.Client.status <> 200 then
        Alcotest.failf "reference %s: status %d (%s)" target r.Client.status
          r.Client.body;
      let spans =
        match Client.header r "x-request-spans" with
        | Some n -> int_of_string n
        | None -> -1
      in
      ((target, xmi), (r.Client.body, spans)))
    requests

let run_hammer ~seed ~total ~clients =
  let models = hammer_models seed in
  checkb "generators produced models" (List.length models >= 4);
  let unique =
    List.concat_map
      (fun (_, xmi) -> List.map (fun t -> (t, xmi)) hammer_targets)
      models
  in
  let reference = sequential_reference unique in
  (* The concurrent run: [total] requests (unique vocabulary cycled, so
     duplicates exercise the cache) split across [clients] domains
     against one shared server. *)
  let requests =
    Array.init total (fun i -> List.nth unique (i mod List.length unique))
  in
  (* Deterministic shuffle so neighbours in time are mixed endpoints. *)
  let st = Random.State.make [| seed; 0xbeef |] in
  for i = Array.length requests - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = requests.(i) in
    requests.(i) <- requests.(j);
    requests.(j) <- tmp
  done;
  with_server
    ~config:{ Server.default_config with Server.pool = 4; max_inflight = 64 }
  @@ fun s ->
  let port = Server.port s in
  let slice c =
    let rec go i acc =
      if i >= Array.length requests then List.rev acc
      else go (i + clients) (requests.(i) :: acc)
    in
    go c []
  in
  let worker c () =
    List.map
      (fun (target, xmi) ->
        let r = Client.post ~port target xmi in
        ( (target, xmi),
          r.Client.status,
          r.Client.body,
          Client.header r "x-cache",
          Client.header r "x-request-spans" ))
      (slice c)
  in
  let domains = List.init clients (fun c -> Domain.spawn (worker c)) in
  let results = List.concat_map Domain.join domains in
  check Alcotest.int "all requests answered" total (List.length results);
  let hits = ref 0 and misses = ref 0 in
  List.iter
    (fun (key, status, body, cache, spans) ->
      let target = fst key in
      check Alcotest.int (target ^ " status") 200 status;
      let ref_body, ref_spans = List.assoc key reference in
      check Alcotest.string (target ^ " deterministic body") ref_body body;
      match cache with
      | Some "hit" -> incr hits
      | Some "miss" ->
          incr misses;
          (* Telemetry isolation: a computed request records exactly
             the spans the sequential replay recorded — a context bled
             into by a concurrent request would count extra events. *)
          check
            Alcotest.(option string)
            (target ^ " span count stable")
            (Some (string_of_int ref_spans))
            spans
      | _ -> Alcotest.failf "%s: missing X-Cache header" target)
    results;
  checkb "cache hits observed" (!hits > 0);
  check Alcotest.int "hits + misses = total" total (!hits + !misses);
  (* The server-side view agrees: hit ratio > 0, and every miss ran the
     flow exactly once (no double work, no lost merges). *)
  let m = (get s "/metrics").Client.body in
  (match metrics_counter m "umlfront_serve_cache_hit_total" with
  | Some n -> check Alcotest.int "server-side hits" !hits n
  | None -> Alcotest.fail "umlfront_serve_cache_hit_total missing");
  match
    ( metrics_counter m "umlfront_flow_runs_total",
      metrics_counter m "umlfront_serve_cache_miss_total" )
  with
  | Some flows, Some miss -> check Alcotest.int "flow runs == cache misses" miss flows
  | _ -> Alcotest.fail "flow/miss counters missing from /metrics"

let hammer_tests =
  [
    Alcotest.test_case
      "200 concurrent mixed requests = sequential replay (8 clients)" `Slow
      (fun () -> run_hammer ~seed:7 ~total:200 ~clients:8);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:2
         ~name:"concurrent serving is deterministic across seeds"
         (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1000))
         (fun seed ->
           run_hammer ~seed:(seed + 11) ~total:64 ~clients:4;
           true));
  ]

(* --- observability: SSE framing, traceparent, the events hub --------- *)

let sse_framing () =
  check Alcotest.string "named frame" "event: request\nid: 7\ndata: {}\n\n"
    (Sse.frame ~name:"request" ~id:"7" "{}");
  check Alcotest.string "multi-line data becomes multiple data lines"
    "data: a\ndata: b\n\n" (Sse.frame "a\nb");
  check Alcotest.string "comment keep-alive" ": hb\n\n" (Sse.comment "hb")

let sse_parser_torn_input () =
  let p = Sse.parser () in
  (* One frame delivered a byte at a time must parse identically. *)
  let frame = Sse.frame ~name:"window" ~id:"3" "x\ny" in
  let got = ref [] in
  String.iter
    (fun c -> got := !got @ Sse.feed p (String.make 1 c))
    (Sse.comment "noise" ^ frame);
  (match !got with
  | [ e ] ->
      check Alcotest.(option string) "name" (Some "window") e.Sse.name;
      check Alcotest.(option string) "id" (Some "3") e.Sse.id;
      check Alcotest.string "multi-line data rejoined" "x\ny" e.Sse.data
  | es -> Alcotest.failf "expected one event, got %d" (List.length es));
  (* CRLF line endings and the optional space after the colon are both
     tolerated; a frame without a blank line stays pending. *)
  let p = Sse.parser () in
  check Alcotest.int "no dispatch before the blank line" 0
    (List.length (Sse.feed p "event:request\r\ndata:body\r\n"));
  match Sse.feed p "\r\n" with
  | [ e ] ->
      check Alcotest.(option string) "name without space" (Some "request") e.Sse.name;
      check Alcotest.string "data without space" "body" e.Sse.data
  | es -> Alcotest.failf "expected one event after blank line, got %d" (List.length es)

let traceparent_parse_strictness () =
  let ok = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01" in
  (match Traceparent.parse ok with
  | Some t ->
      checkb "sampled bit" (Traceparent.sampled t);
      check Alcotest.string "round-trip" ok (Traceparent.to_string t)
  | None -> Alcotest.fail "valid traceparent rejected");
  List.iter
    (fun bad -> checkb ("rejects " ^ bad) (Traceparent.parse bad = None))
    [
      "";
      "00-short-b7ad6b7169203331-01";
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331";
      "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
      "00-00000000000000000000000000000000-b7ad6b7169203331-01";
      "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01";
      "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01";
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333g-01";
    ];
  (* Minted ids parse, and a child stays in the parent's trace under a
     fresh span id. *)
  let t = Traceparent.generate () in
  checkb "generated id parses"
    (Traceparent.parse (Traceparent.to_string t) = Some t);
  let c = Traceparent.child t in
  check Alcotest.string "child keeps the trace id" t.Traceparent.trace_id
    c.Traceparent.trace_id;
  checkb "child gets a fresh parent id"
    (c.Traceparent.parent_id <> t.Traceparent.parent_id)

let traceparent_roundtrip_prop =
  let hex n =
    QCheck.Gen.(
      string_size ~gen:(map (fun i -> "0123456789abcdef".[i]) (int_bound 15))
        (return n))
  in
  let fix_zero s =
    if String.for_all (( = ) '0') s then
      "1" ^ String.sub s 1 (String.length s - 1)
    else s
  in
  let gen =
    QCheck.make
      ~print:(fun t -> Traceparent.to_string t)
      QCheck.Gen.(
        map3
          (fun tid pid flags ->
            {
              Traceparent.trace_id = fix_zero tid;
              parent_id = fix_zero pid;
              flags;
            })
          (hex 32) (hex 16) (int_bound 255))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"traceparent to_string/parse round-trips" ~count:200 gen
       (fun t -> Traceparent.parse (Traceparent.to_string t) = Some t))

(* The hub in isolation, over a socketpair: frames reach a reading
   subscriber, an outbox too small for the frame drops it (and counts
   it) instead of blocking, and the subscriber cap holds. *)
let events_hub_delivery_and_drops () =
  let hub =
    Events_hub.create ~max_subs:1 ~max_outbox:48 ~heartbeat_s:60.0
      ~heartbeat:(fun () -> Sse.comment "hb")
      ()
  in
  Fun.protect ~finally:(fun () -> Events_hub.stop hub)
  @@ fun () ->
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  checkb "subscribed" (Events_hub.subscribe hub a ~greeting:"hello\n\n");
  check Alcotest.int "one subscriber" 1 (Events_hub.subscribers hub);
  let c, d = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  checkb "cap refuses a second subscriber"
    (not (Events_hub.subscribe hub c ~greeting:""));
  Unix.close c;
  Unix.close d;
  check Alcotest.int "small frame delivered to every outbox" 0
    (Events_hub.publish hub (Sse.frame "ping"));
  (* Read until both greeting and frame came through the pump. *)
  (try Unix.setsockopt_float b Unix.SO_RCVTIMEO 2.0 with Unix.Unix_error _ -> ());
  let buf = Bytes.create 1024 in
  let acc = Buffer.create 64 in
  let rec drain () =
    if not (Astring_contains.contains (Buffer.contents acc) "data: ping") then (
      let n = Unix.read b buf 0 (Bytes.length buf) in
      if n > 0 then (
        Buffer.add_subbytes acc buf 0 n;
        drain ()))
  in
  (try drain () with Unix.Unix_error _ -> ());
  let got = Buffer.contents acc in
  checkb "greeting written first" (Astring_contains.contains got "hello");
  checkb "published frame pumped out" (Astring_contains.contains got "data: ping");
  (* A frame bigger than the whole outbox can never be queued: dropped
     and counted, publish does not block. *)
  check Alcotest.int "oversized frame dropped for the one subscriber" 1
    (Events_hub.publish hub (Sse.frame (String.make 100 'x')));
  check Alcotest.int "drop counted" 1 (Events_hub.dropped hub)

let obs_unit_tests =
  [
    test "sse framing" sse_framing;
    test "sse parser handles torn chunks, CRLF and comments" sse_parser_torn_input;
    test "traceparent parse is strict" traceparent_parse_strictness;
    traceparent_roundtrip_prop;
    test "events hub delivers and drops without blocking" events_hub_delivery_and_drops;
  ]

(* --- observability end to end ---------------------------------------- *)

let obs_e2e_tests =
  [
    test "every response carries a parseable traceparent; inbound is joined"
      (fun () ->
        with_server @@ fun s ->
        let r = get s "/healthz" in
        let minted =
          match Client.traceparent r with
          | Some tp -> tp
          | None -> Alcotest.fail "no traceparent on the response"
        in
        checkb "minted traceparent parses" (Traceparent.parse minted <> None);
        let inbound = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01" in
        let r2 =
          Client.request
            ~headers:[ ("traceparent", inbound) ]
            ~port:(Server.port s) ~meth:"GET" "/healthz"
        in
        match Option.bind (Client.traceparent r2) Traceparent.parse with
        | Some t ->
            check Alcotest.string "same trace id"
              "0af7651916cd43dd8448eb211c80319c" t.Traceparent.trace_id;
            checkb "fresh span id" (t.Traceparent.parent_id <> "b7ad6b7169203331")
        | None -> Alcotest.fail "echoed traceparent missing or malformed");
    test "?trace=1 retains the span tree as Chrome trace JSON" (fun () ->
        with_server @@ fun s ->
        let xmi = Lazy.force didactic_xmi in
        let r = post s "/api/lint?trace=1" xmi in
        check Alcotest.int "200" 200 r.Client.status;
        let id =
          match Client.request_id r with
          | Some id -> id
          | None -> Alcotest.fail "no X-Request-Id"
        in
        let tr = Client.trace ~port:(Server.port s) id in
        check Alcotest.int "trace retrievable" 200 tr.Client.status;
        check Alcotest.(option string) "trace is JSON" (Some "application/json")
          (Client.header tr "content-type");
        let doc = Json.parse_exn tr.Client.body in
        let events = Json.items (Option.get (Json.member "traceEvents" doc)) in
        checkb "span events present" (List.length events > 0);
        List.iter
          (fun e ->
            List.iter
              (fun key -> checkb (key ^ " present") (Json.member key e <> None))
              [ "name"; "ph"; "ts" ])
          events;
        let other = Option.get (Json.member "otherData" doc) in
        checkb "endpoint recorded"
          (Json.member "endpoint" other = Some (Json.String "lint"));
        (* A cache hit with ?trace=1 still retains a (one-span) tree
           under its own request id. *)
        let r2 = post s "/api/lint?trace=1" xmi in
        check Alcotest.(option string) "second request hits" (Some "hit")
          (Client.header r2 "x-cache");
        let id2 = Option.get (Client.request_id r2) in
        checkb "distinct request ids" (id <> id2);
        let tr2 = Client.trace ~port:(Server.port s) id2 in
        check Alcotest.int "hit trace retrievable" 200 tr2.Client.status;
        checkb "hit trace marks the cache"
          (Astring_contains.contains tr2.Client.body "serve.cache.hit"));
    test "unsampled requests retain nothing; trace_sample 1.0 retains all"
      (fun () ->
        (with_server @@ fun s ->
         let r = post s "/api/lint" (Lazy.force didactic_xmi) in
         let id = Option.get (Client.request_id r) in
         check Alcotest.int "no trace kept" 404
           (Client.trace ~port:(Server.port s) id).Client.status);
        with_server
          ~config:{ Server.default_config with Server.trace_sample = 1.0 }
        @@ fun s ->
        let r = post s "/api/lint" (Lazy.force didactic_xmi) in
        let id = Option.get (Client.request_id r) in
        check Alcotest.int "sampled trace kept" 200
          (Client.trace ~port:(Server.port s) id).Client.status);
    test "/api/windows and the labeled rolling series reflect traffic"
      (fun () ->
        with_server @@ fun s ->
        let xmi = Lazy.force didactic_xmi in
        check Alcotest.int "lint" 200 (post s "/api/lint" xmi).Client.status;
        check Alcotest.int "lint again" 200 (post s "/api/lint" xmi).Client.status;
        let w = Client.windows ~port:(Server.port s) in
        check Alcotest.int "windows endpoint" 200 w.Client.status;
        let doc = Json.parse_exn w.Client.body in
        let windows = Json.items (Option.get (Json.member "windows" doc)) in
        check Alcotest.int "three windows" 3 (List.length windows);
        let ten = List.hd windows in
        let series = Option.get (Json.member "series" ten) in
        (match Json.member "/api/lint" series with
        | Some ep ->
            checkb "both requests counted"
              (Json.member "count" ep = Some (Json.Int 2));
            checkb "latency quantiles present" (Json.member "p95" ep <> None)
        | None -> Alcotest.fail "no /api/lint series in the 10s window");
        let m = (get s "/metrics").Client.body in
        checkb "labeled request counter"
          (Astring_contains.contains m
             "umlfront_serve_requests_total{endpoint=\"/api/lint\",status=\"200\"} 2");
        checkb "rolling p95 gauge, labeled by endpoint and window"
          (Astring_contains.contains m
             "umlfront_serve_rolling_p95_us{endpoint=\"/api/lint\",window=\"60s\"}"));
    test "dashboard is a self-contained live page over /events" (fun () ->
        with_server @@ fun s ->
        let r = Client.dashboard ~port:(Server.port s) in
        check Alcotest.int "200" 200 r.Client.status;
        check Alcotest.(option string) "html"
          (Some "text/html; charset=utf-8")
          (Client.header r "content-type");
        checkb "subscribes to /events"
          (Astring_contains.contains r.Client.body "new EventSource(\"/events\")");
        checkb "no external resources"
          (not (Astring_contains.contains r.Client.body "http://")
          && not (Astring_contains.contains r.Client.body "https://")));
    test "/events greets, then streams request frames" (fun () ->
        with_server @@ fun s ->
        let port = Server.port s in
        let consumer =
          Domain.spawn (fun () ->
              Client.events ~max_events:3 ~timeout_s:8.0 ~port ())
        in
        (* Let the subscriber land, then generate traffic it will see. *)
        let rec wait n =
          if Server.subscribers s = 0 && n > 0 then (
            Unix.sleepf 0.01;
            wait (n - 1))
        in
        wait 500;
        check Alcotest.int "subscriber registered" 1 (Server.subscribers s);
        for _ = 1 to 3 do
          ignore (get s "/healthz")
        done;
        let events = Domain.join consumer in
        check Alcotest.int "three frames collected" 3 (List.length events);
        (match events with
        | hello :: _ ->
            check Alcotest.(option string) "hello first" (Some "hello")
              hello.Sse.name;
            checkb "hello is JSON with the port"
              (Json.member "port"
                 (Json.parse_exn hello.Sse.data)
              = Some (Json.Int port))
        | [] -> Alcotest.fail "no events");
        checkb "request or window frames follow"
          (List.exists
             (fun e -> e.Sse.name = Some "request" || e.Sse.name = Some "window")
             (List.tl events)));
    test "access log is parseable JSONL written off the request path"
      (fun () ->
        let path = Filename.temp_file "umlfront_access" ".jsonl" in
        Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        @@ fun () ->
        (with_server
           ~config:{ Server.default_config with Server.access_log = Some path }
        @@ fun s ->
         let xmi = Lazy.force didactic_xmi in
         check Alcotest.int "lint" 200 (post s "/api/lint" xmi).Client.status;
         check Alcotest.int "healthz" 200 (get s "/healthz").Client.status;
         check Alcotest.int "no lines dropped" 0 (Server.access_log_dropped s));
        (* stop joined the writer domain, so the file is complete. *)
        let lines =
          read_file path |> String.split_on_char '\n'
          |> List.filter (fun l -> l <> "")
        in
        check Alcotest.int "one line per request" 2 (List.length lines);
        List.iter
          (fun line ->
            let doc = Json.parse_exn line in
            List.iter
              (fun key -> checkb (key ^ " present") (Json.member key doc <> None))
              [ "ts"; "id"; "endpoint"; "status"; "cache"; "latency_us"; "trace_id" ])
          lines;
        checkb "endpoints recorded"
          (Astring_contains.contains (read_file path) "\"/api/lint\""));
    test "a slow /events consumer cannot stall the request path" (fun () ->
        with_server @@ fun s ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        @@ fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port s));
        let head = "GET /events HTTP/1.1\r\nHost: x\r\n\r\n" in
        ignore (Unix.write_substring fd head 0 (String.length head));
        let rec wait n =
          if Server.subscribers s = 0 && n > 0 then (
            Unix.sleepf 0.01;
            wait (n - 1))
        in
        wait 500;
        check Alcotest.int "subscribed but never reading" 1 (Server.subscribers s);
        (* The stalled subscriber must not slow the serving path: every
           request still answers promptly. *)
        let t0 = Unix.gettimeofday () in
        for _ = 1 to 30 do
          check Alcotest.int "request unaffected" 200 (get s "/healthz").Client.status
        done;
        checkb "30 requests finish promptly despite the dead subscriber"
          (Unix.gettimeofday () -. t0 < 20.0));
  ]

let suite =
  [
    ("serve:sha256", sha256_tests);
    ("serve:http", http_tests);
    ("serve:cache", cache_tests);
    ("serve:api", api_tests);
    ("serve:json", roundtrip_tests);
    ("serve:obs", obs_unit_tests);
    ("serve:e2e", e2e_tests);
    ("serve:obs-e2e", obs_e2e_tests);
    ("serve:hammer", hammer_tests);
  ]
