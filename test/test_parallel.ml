(* Umlfront_parallel: pool semantics (order preservation, chunking,
   exception propagation, sequential fallback) and the determinism
   guarantees of the parallel DSE sweep and the level-parallel SDF
   executor — the parallel paths must be bit-identical to their
   sequential counterparts. *)

module Pool = Umlfront_parallel.Pool
module Core = Umlfront_core
module B = Umlfront_simulink.Block
module S = Umlfront_simulink.System
module Model = Umlfront_simulink.Model
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module Cs = Umlfront_casestudies

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let pr block port = { S.block; S.port }

(* --- pool basics --------------------------------------------------- *)

let pool_map_matches_list_map () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 100 (fun i -> i) in
      let f x = (x * x) + 1 in
      check Alcotest.(list int) "chunk 1" (List.map f xs) (Pool.map pool f xs);
      check Alcotest.(list int) "chunk 7" (List.map f xs) (Pool.map ~chunk:7 pool f xs);
      check Alcotest.(list int) "chunk > n" (List.map f xs)
        (Pool.map ~chunk:1000 pool f xs);
      check Alcotest.(list int) "empty" [] (Pool.map pool f []);
      check Alcotest.(list int) "singleton" [ f 9 ] (Pool.map pool f [ 9 ]))

let pool_preserves_order () =
  Pool.with_pool ~domains:3 (fun pool ->
      let xs = List.init 50 (fun i -> Printf.sprintf "s%02d" i) in
      check Alcotest.(list string) "order" xs (Pool.map pool Fun.id xs))

let sequential_pool_never_spawns () =
  let pool = Pool.create ~domains:1 () in
  check Alcotest.int "size" 1 (Pool.size pool);
  check Alcotest.(list int) "map still works" [ 2; 4 ]
    (Pool.map pool (fun x -> 2 * x) [ 1; 2 ]);
  Pool.shutdown pool;
  (* shutdown is idempotent and the pool degrades to sequential *)
  Pool.shutdown pool;
  check Alcotest.(list int) "after shutdown" [ 3 ] (Pool.map pool (fun x -> x + 1) [ 2 ])

let pool_reuse_across_batches () =
  Pool.with_pool ~domains:3 (fun pool ->
      for k = 1 to 5 do
        let xs = List.init (10 * k) (fun i -> i) in
        check Alcotest.(list int) "batch" (List.map succ xs) (Pool.map pool succ xs)
      done)

let exception_propagates_earliest () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "earliest failing input wins" (Failure "boom3") (fun () ->
          ignore
            (Pool.map pool
               (fun x -> if x = 3 || x = 7 then failwith (Printf.sprintf "boom%d" x) else x)
               (List.init 10 (fun i -> i))));
      (* the pool survives a failed batch *)
      check Alcotest.(list int) "pool still alive" [ 1; 2; 3 ]
        (Pool.map pool succ [ 0; 1; 2 ]))

let parallel_for_covers_all_indices () =
  Pool.with_pool ~domains:4 (fun pool ->
      let n = 200 in
      let hits = Array.make n 0 in
      Pool.parallel_for ~chunk:9 pool n (fun i -> hits.(i) <- hits.(i) + 1);
      check Alcotest.(array int) "each index exactly once" (Array.make n 1) hits;
      Alcotest.check_raises "exceptions propagate" (Failure "pf") (fun () ->
          Pool.parallel_for pool 5 (fun i -> if i = 2 then failwith "pf")))

let nested_map_degrades_to_sequential () =
  Pool.with_pool ~domains:3 (fun pool ->
      let result =
        Pool.map pool
          (fun i ->
            (* reentrant use from a task must not deadlock *)
            List.fold_left ( + ) 0 (Pool.map pool Fun.id (List.init i succ)))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ]
      in
      check Alcotest.(list int) "gauss" [ 1; 3; 6; 10; 15; 21; 28; 36 ] result)

let map_array_matches () =
  Pool.with_pool ~domains:4 (fun pool ->
      let arr = Array.init 64 (fun i -> float_of_int i) in
      check Alcotest.(array (float 0.0)) "map_array" (Array.map sqrt arr)
        (Pool.map_array ~chunk:5 pool sqrt arr))

(* qcheck: for arbitrary inputs, chunkings and pool sizes, map is
   exactly List.map — order preserved, nothing lost or duplicated. *)
let qcheck_map_is_list_map =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"map preserves order for arbitrary chunkings" ~count:50
       (QCheck.make
          ~print:(fun (xs, chunk, domains) ->
            Printf.sprintf "(%s, chunk %d, domains %d)"
              (String.concat ";" (List.map string_of_int xs))
              chunk domains)
          QCheck.Gen.(
            triple (list_size (0 -- 40) (int_bound 1000)) (1 -- 8) (1 -- 4)))
       (fun (xs, chunk, domains) ->
         Pool.with_pool ~domains (fun pool ->
             Pool.map ~chunk pool (fun x -> (2 * x) - 7) xs
             = List.map (fun x -> (2 * x) - 7) xs)))

(* --- dependency levels --------------------------------------------- *)

(* Accumulator with a UnitDelay on the feedback edge (same shape as
   test_dataflow's counter). *)
let counter ?(with_delay = true) () =
  let root = S.empty "m" in
  let root = S.add_block ~params:[ ("Value", B.P_float 1.0) ] root B.Constant "one" in
  let root = S.add_block ~params:[ ("Inputs", B.P_string "++") ] root B.Sum "acc" in
  let root = S.add_block ~params:[ ("Port", B.P_int 1) ] root B.Outport "out" in
  let root = S.add_line root ~src:(pr "one" 1) ~dst:(pr "acc" 1) in
  let root =
    if with_delay then (
      let root =
        S.add_block ~params:[ ("InitialCondition", B.P_float 0.0) ] root B.Unit_delay "z"
      in
      let root = S.add_line root ~src:(pr "acc" 1) ~dst:(pr "z" 1) in
      S.add_line root ~src:(pr "z" 1) ~dst:(pr "acc" 2))
    else
      let root = S.add_block ~params:[ ("Gain", B.P_float 1.0) ] root B.Gain "idg" in
      let root = S.add_line root ~src:(pr "acc" 1) ~dst:(pr "idg" 1) in
      S.add_line root ~src:(pr "idg" 1) ~dst:(pr "acc" 2)
  in
  let root = S.add_line root ~src:(pr "acc" 1) ~dst:(pr "out" 1) in
  Model.make ~name:"counter" root

let levels_partition_firing_order () =
  let caam =
    (Core.Flow.run ~strategy:Core.Flow.Infer_linear (Cs.Synthetic_system.model ()))
      .Core.Flow.caam
  in
  let sdf = Sdf.of_model caam in
  let order = Exec.firing_order sdf in
  let lvls = Exec.levels sdf in
  check Alcotest.(list string) "concat levels is a permutation of the firing order"
    (List.sort compare order)
    (List.sort compare (List.concat lvls));
  (* every non-delay predecessor sits in a strictly earlier level *)
  let level_of =
    let tbl = Hashtbl.create 64 in
    List.iteri (fun l names -> List.iter (fun n -> Hashtbl.replace tbl n l) names) lvls;
    Hashtbl.find tbl
  in
  List.iter
    (fun (a : Sdf.actor) ->
      List.iter
        (fun (e : Sdf.edge) ->
          let src = Option.get (Sdf.find_actor sdf e.Sdf.edge_src) in
          if src.Sdf.actor_block.S.blk_type <> B.Unit_delay then
            check Alcotest.bool
              (Printf.sprintf "%s before %s" e.Sdf.edge_src a.Sdf.actor_name)
              true
              (level_of e.Sdf.edge_src < level_of a.Sdf.actor_name))
        (Sdf.preds sdf a.Sdf.actor_name))
    sdf.Sdf.actors

let levels_deadlock_on_zero_delay_cycle () =
  let sdf = Sdf.of_model (counter ~with_delay:false ()) in
  match Exec.levels sdf with
  | exception Exec.Deadlock cycle ->
      check Alcotest.bool "mentions acc" true (List.mem "acc" cycle)
  | _ -> Alcotest.fail "expected Deadlock"

(* --- determinism: parallel == sequential, bit for bit -------------- *)

let outcomes_equal name (a : Exec.outcome) (b : Exec.outcome) =
  check Alcotest.int (name ^ " rounds") a.Exec.rounds b.Exec.rounds;
  check
    Alcotest.(list (pair string (array (float 0.0))))
    (name ^ " traces (bit-identical)") a.Exec.traces b.Exec.traces;
  check
    Alcotest.(list (pair string int))
    (name ^ " firings") a.Exec.firings b.Exec.firings

let exec_level_parallel_is_deterministic () =
  let cases =
    [
      ("crane", (Core.Flow.run ~strategy:Core.Flow.Use_deployment (Cs.Crane_system.model ())).Core.Flow.caam);
      ("synthetic", (Core.Flow.run ~strategy:Core.Flow.Infer_linear (Cs.Synthetic_system.model ())).Core.Flow.caam);
      ("wide-random", (Core.Flow.run ~strategy:Core.Flow.Infer_linear (Cs.Random_models.wide ~seed:5 ~branches:4 ~depth:3)).Core.Flow.caam);
      ("counter", counter ());
    ]
  in
  List.iter
    (fun (name, caam) ->
      let sdf = Sdf.of_model caam in
      let seq = Exec.run ~rounds:25 sdf in
      Pool.with_pool ~domains:4 (fun pool ->
          outcomes_equal name seq (Exec.run ~pool ~rounds:25 sdf));
      (* a sequential pool takes the plain path and matches too *)
      Pool.with_pool ~domains:1 (fun pool ->
          outcomes_equal (name ^ " seq-pool") seq (Exec.run ~pool ~rounds:25 sdf)))
    cases

let candidates_equal name (a : Core.Dse.result) (b : Core.Dse.result) =
  check Alcotest.bool (name ^ " candidates bit-identical") true
    (a.Core.Dse.candidates = b.Core.Dse.candidates);
  check Alcotest.bool (name ^ " best") true (a.Core.Dse.best = b.Core.Dse.best);
  check Alcotest.bool (name ^ " pareto") true (a.Core.Dse.pareto = b.Core.Dse.pareto)

let dse_parallel_sweep_is_deterministic () =
  let cases =
    [
      ("crane", Cs.Crane_system.model ());
      ("synthetic", Cs.Synthetic_system.model ());
      ("random-pipeline", Cs.Random_models.pipeline ~seed:13 ~threads:9 ~extra_edges:6);
    ]
  in
  List.iter
    (fun (name, uml) ->
      let seq = Core.Dse.explore uml in
      Pool.with_pool ~domains:4 (fun pool ->
          candidates_equal name seq (Core.Dse.explore ~pool uml)))
    cases

let wide_random_model_is_well_formed () =
  let uml = Cs.Random_models.wide ~seed:2 ~branches:3 ~depth:2 in
  check Alcotest.int "threads" (2 + (3 * 2))
    (List.length (Umlfront_uml.Model.threads uml));
  check Alcotest.(list string) "validates" []
    (List.map
       (fun (i : Umlfront_uml.Validate.issue) -> i.Umlfront_uml.Validate.what)
       (Umlfront_uml.Validate.check uml));
  (* the SDF level structure is as wide as the branch count *)
  let caam = (Core.Flow.run ~strategy:Core.Flow.Infer_linear uml).Core.Flow.caam in
  let lvls = Exec.levels (Sdf.of_model caam) in
  let widest = List.fold_left (fun acc l -> max acc (List.length l)) 0 lvls in
  check Alcotest.bool "widest level >= branches" true (widest >= 3)

let suite =
  [
    ( "parallel",
      [
        test "pool map matches List.map across chunkings" pool_map_matches_list_map;
        test "pool map preserves order" pool_preserves_order;
        test "sequential pool never spawns" sequential_pool_never_spawns;
        test "pool reuse across batches" pool_reuse_across_batches;
        test "exception from a worker propagates (earliest input)"
          exception_propagates_earliest;
        test "parallel_for covers all indices exactly once"
          parallel_for_covers_all_indices;
        test "nested map degrades to sequential" nested_map_degrades_to_sequential;
        test "map_array matches Array.map" map_array_matches;
        qcheck_map_is_list_map;
        test "levels partition the firing order" levels_partition_firing_order;
        test "levels raise Deadlock on zero-delay cycles"
          levels_deadlock_on_zero_delay_cycle;
        test "level-parallel exec is bit-identical to sequential"
          exec_level_parallel_is_deterministic;
        test "parallel DSE sweep is bit-identical to sequential"
          dse_parallel_sweep_is_deterministic;
        test "wide random model is well-formed and wide"
          wide_random_model_is_well_formed;
      ] );
  ]
