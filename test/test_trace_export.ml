(* Dataflow.Trace_export: CSV column order, schedule rows, gantt width
   clamping, and the Chrome-trace schedule export — previously only
   exercised indirectly through the CLI. *)

module Core = Umlfront_core
module Cs = Umlfront_casestudies
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module Trace_export = Umlfront_dataflow.Trace_export

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let crane_sdf =
  lazy
    (let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (Cs.Crane_system.model ()) in
     Sdf.of_model out.Core.Flow.caam)

let lines s = String.split_on_char '\n' (String.trim s)

let traces_csv_columns () =
  let sdf = Lazy.force crane_sdf in
  let outcome = Exec.run ~rounds:5 sdf in
  let csv = Trace_export.traces_csv outcome in
  let rows = lines csv in
  let header = List.hd rows in
  check Alcotest.string "header is round + ports in trace order"
    ("round," ^ String.concat "," (List.map fst outcome.Exec.traces))
    header;
  check Alcotest.int "one row per round" 5 (List.length (List.tl rows));
  List.iteri
    (fun i row ->
      let cells = String.split_on_char ',' row in
      check Alcotest.int "cells per row"
        (1 + List.length outcome.Exec.traces)
        (List.length cells);
      check Alcotest.string "round column counts up" (string_of_int i) (List.hd cells);
      List.iter
        (fun cell ->
          check Alcotest.bool "numeric cell" true (float_of_string_opt cell <> None))
        (List.tl cells))
    (List.tl rows)

let schedule_csv_shape () =
  let sdf = Lazy.force crane_sdf in
  let csv = Trace_export.schedule_csv sdf in
  let rows = lines csv in
  check Alcotest.string "header" "actor,cpu,thread,start,finish" (List.hd rows);
  check Alcotest.bool "has scheduled actors" true (List.length rows > 1);
  List.iter
    (fun row ->
      match String.split_on_char ',' row with
      | [ _actor; cpu; _thread; start; finish ] ->
          check Alcotest.bool "cpu nonempty" true (cpu <> "");
          let s = float_of_string start and f = float_of_string finish in
          check Alcotest.bool "start <= finish" true (s <= f)
      | cells -> Alcotest.failf "expected 5 columns, got %d" (List.length cells))
    (List.tl rows)

let gantt_width_clamped () =
  let sdf = Lazy.force crane_sdf in
  List.iter
    (fun width ->
      let chart = Trace_export.gantt ~width sdf in
      check Alcotest.bool "nonempty" true (chart <> "");
      List.iter
        (fun line ->
          match (String.index_opt line '|', String.rindex_opt line '|') with
          | Some first, Some last when last > first ->
              check Alcotest.int
                (Printf.sprintf "lane width is exactly %d" width)
                width (last - first - 1)
          | _ -> Alcotest.fail "gantt line has no |lane|")
        (lines chart))
    [ 1; 20; 60 ]

let gantt_lanes_are_cpus () =
  let sdf = Lazy.force crane_sdf in
  let chart = Trace_export.gantt ~width:30 sdf in
  (* Crane: 3 threads on 1 CPU — one lane. *)
  check Alcotest.int "one lane per cpu" 1 (List.length (lines chart));
  check Alcotest.bool "lane labelled with cpu" true
    (Astring_contains.contains chart "CPU1")

let chrome_schedule_export () =
  let sdf = Lazy.force crane_sdf in
  let json = Trace_export.chrome_json sdf in
  check Alcotest.bool "has traceEvents" true
    (Astring_contains.contains json "\"traceEvents\"");
  check Alcotest.bool "complete events" true
    (Astring_contains.contains json "\"ph\":\"X\"");
  check Alcotest.bool "args carry the cpu" true
    (Astring_contains.contains json "\"cpu\":\"CPU1\"")

let suite =
  [
    ( "trace_export",
      [
        test "traces_csv column order" traces_csv_columns;
        test "schedule_csv shape" schedule_csv_shape;
        test "gantt width clamping" gantt_width_clamped;
        test "gantt lanes are cpus" gantt_lanes_are_cpus;
        test "chrome schedule export" chrome_schedule_export;
      ] );
  ]
