(* The compiled flat-schedule executor: ring-buffer FIFO discipline,
   bit-identity with the reference interpreter in both the sequential
   and the batched work-stealing mode, telemetry parity, and the
   property over every random model shape at several domain counts. *)

module Pool = Umlfront_parallel.Pool
module Wsdeque = Umlfront_parallel.Wsdeque
module Core = Umlfront_core
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module Compiled = Umlfront_dataflow.Compiled
module Fifo = Umlfront_dataflow.Compiled.Fifo
module Cs = Umlfront_casestudies
module R = Umlfront_casestudies.Random_models
module T = Umlfront_obs.Telemetry

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

(* --- the FIFO ------------------------------------------------------- *)

let fifo_basics () =
  let f = Fifo.create ~capacity:2 in
  check Alcotest.int "capacity" 2 (Fifo.capacity f);
  check Alcotest.bool "fresh is empty" true (Fifo.is_empty f);
  Fifo.push f 1.0;
  Fifo.push f 2.0;
  check Alcotest.bool "at capacity" true (Fifo.is_full f);
  check Alcotest.int "length" 2 (Fifo.length f);
  check (Alcotest.float 0.0) "FIFO order" 1.0 (Fifo.pop f);
  check (Alcotest.float 0.0) "FIFO order" 2.0 (Fifo.pop f);
  check Alcotest.bool "drained" true (Fifo.is_empty f)

let fifo_full_and_empty_raise () =
  let f = Fifo.create ~capacity:1 in
  (match Fifo.pop f with
  | exception Fifo.Empty -> ()
  | _ -> Alcotest.fail "expected Empty");
  Fifo.push f 7.0;
  (match Fifo.push f 8.0 with
  | exception Fifo.Full -> ()
  | () -> Alcotest.fail "expected Full");
  check (Alcotest.float 0.0) "survivor" 7.0 (Fifo.pop f);
  match Fifo.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* The delay-edge pattern: occupancy oscillates 1 <-> 2 forever, so the
   head index crosses the ring boundary every round.  Pin that the
   wrapped slots still come back in order. *)
let fifo_wraparound () =
  let f = Fifo.create ~capacity:2 in
  Fifo.push f 0.0 (* the initial token *);
  for round = 1 to 100 do
    Fifo.push f (float_of_int round);
    let v = Fifo.pop f in
    check (Alcotest.float 0.0)
      (Printf.sprintf "round %d pops the older token" round)
      (float_of_int (round - 1))
      v;
    check Alcotest.int "steady occupancy" 1 (Fifo.length f)
  done

(* A capacity that is not a power of two: the logical capacity is still
   enforced even though the backing ring is rounded up. *)
let fifo_non_pow2_capacity () =
  let f = Fifo.create ~capacity:3 in
  Fifo.push f 1.0;
  Fifo.push f 2.0;
  Fifo.push f 3.0;
  (match Fifo.push f 4.0 with
  | exception Fifo.Full -> ()
  | () -> Alcotest.fail "expected Full at logical capacity");
  check (Alcotest.float 0.0) "order kept" 1.0 (Fifo.pop f)

let fifo_slot_view () =
  let f = Fifo.create ~capacity:4 in
  (* slots address the ring positionally, mod its (pow2) size *)
  Fifo.set_slot f 2 9.0;
  check (Alcotest.float 0.0) "slot read" 9.0 (Fifo.get_slot f 2);
  check (Alcotest.float 0.0) "slot wraps" 9.0 (Fifo.get_slot f 6)

(* --- the deque ------------------------------------------------------ *)

let wsdeque_lifo_owner_fifo_thief () =
  let q = Wsdeque.create ~capacity:8 in
  Wsdeque.push q 1;
  Wsdeque.push q 2;
  Wsdeque.push q 3;
  check (Alcotest.option Alcotest.int) "steal takes oldest" (Some 1) (Wsdeque.steal q);
  check (Alcotest.option Alcotest.int) "pop takes newest" (Some 3) (Wsdeque.pop q);
  check (Alcotest.option Alcotest.int) "last item" (Some 2) (Wsdeque.pop q);
  check (Alcotest.option Alcotest.int) "empty pop" None (Wsdeque.pop q);
  check (Alcotest.option Alcotest.int) "empty steal" None (Wsdeque.steal q);
  Wsdeque.push q 4;
  Wsdeque.reset q;
  check (Alcotest.option Alcotest.int) "reset empties" None (Wsdeque.pop q)

(* --- bit-identity with the reference -------------------------------- *)

let outcomes_equal name (a : Exec.outcome) (b : Exec.outcome) =
  check Alcotest.int (name ^ " rounds") a.Exec.rounds b.Exec.rounds;
  check
    Alcotest.(list (pair string (array (float 0.0))))
    (name ^ " traces (bit-identical)") a.Exec.traces b.Exec.traces;
  check
    Alcotest.(list (pair string int))
    (name ^ " firings") a.Exec.firings b.Exec.firings

let case_studies () =
  List.map
    (fun (name, model) -> (name, (Core.Flow.run (model ())).Core.Flow.caam))
    [
      ("crane", Cs.Crane_system.model);
      ("synthetic", Cs.Synthetic_system.model);
      ("elevator", Cs.Elevator_system.model);
      ("mjpeg", Cs.Mjpeg_system.model);
      ("didactic", Cs.Didactic.model);
    ]

let compiled_sequential_matches_reference () =
  List.iter
    (fun (name, caam) ->
      let sdf = Sdf.of_model caam in
      let seq = Exec.run ~rounds:25 sdf in
      outcomes_equal name seq (Compiled.run ~rounds:25 sdf);
      (* a 1-domain pool takes the sequential flat path too *)
      Pool.with_pool ~domains:1 (fun pool ->
          outcomes_equal (name ^ " seq-pool") seq (Compiled.run ~pool ~rounds:25 sdf)))
    (case_studies ())

let compiled_parallel_matches_reference () =
  List.iter
    (fun (name, caam) ->
      let sdf = Sdf.of_model caam in
      let seq = Exec.run ~rounds:25 sdf in
      Pool.with_pool ~domains:4 (fun pool ->
          outcomes_equal (name ^ " @4") seq (Compiled.run ~pool ~rounds:25 sdf)))
    (case_studies ())

(* The batch size only affects scheduling, never the outcome — in
   particular when rounds is not a multiple of the batch. *)
let compiled_batch_size_is_invisible () =
  let sdf =
    Sdf.of_model (Core.Flow.run (Cs.Crane_system.model ())).Core.Flow.caam
  in
  let seq = Exec.run ~rounds:25 sdf in
  Pool.with_pool ~domains:2 (fun pool ->
      List.iter
        (fun batch ->
          outcomes_equal
            (Printf.sprintf "batch %d" batch)
            seq
            (Compiled.run ~pool ~batch ~rounds:25 sdf))
        [ 1; 3; 25; 32; 100 ])

let compiled_honours_stimulus_and_sfunctions () =
  let sdf =
    Sdf.of_model (Core.Flow.run (Cs.Synthetic_system.model ())).Core.Flow.caam
  in
  let stimulus name round = float_of_int (String.length name * round) in
  let sfunctions _ = Some (fun ins -> [| Array.fold_left ( +. ) 2.0 ins |]) in
  let seq = Exec.run ~sfunctions ~stimulus ~rounds:12 sdf in
  outcomes_equal "custom hooks" seq (Compiled.run ~sfunctions ~stimulus ~rounds:12 sdf);
  Pool.with_pool ~domains:2 (fun pool ->
      outcomes_equal "custom hooks @2" seq
        (Compiled.run ~sfunctions ~stimulus ~pool ~rounds:12 sdf))

let compile_deadlocks_like_the_reference () =
  (* a zero-delay cycle; the crane model with its UnitDelay removed is
     built in test_parallel — here a minimal two-actor loop suffices *)
  let uml = R.cyclic ~seed:3 ~stages:1 in
  let caam = (Core.Flow.run uml).Core.Flow.caam in
  let sdf = Sdf.of_model caam in
  (* sanity: the delay-broken loop compiles and runs *)
  outcomes_equal "cyclic runs" (Exec.run ~rounds:8 sdf) (Compiled.run ~rounds:8 sdf)

let token_stream pool_opt sdf rounds run =
  T.enable ();
  Fun.protect
    ~finally:(fun () ->
      T.disable ();
      T.reset ())
    (fun () ->
      ignore (run ?pool:pool_opt ~rounds sdf : Exec.outcome);
      List.map (fun (t : T.token) -> t.T.prov) (T.tokens ()))

(* Token provenance must be the exact stream the reference records:
   same channels, same producers, same firing indices, same order. *)
let compiled_telemetry_matches_reference () =
  let sdf =
    Sdf.of_model (Core.Flow.run (Cs.Crane_system.model ())).Core.Flow.caam
  in
  let rounds = 6 in
  let reference =
    token_stream None sdf rounds (fun ?pool ~rounds sdf -> Exec.run ?pool ~rounds sdf)
  in
  check Alcotest.bool "reference saw tokens" true (reference <> []);
  let compiled_seq =
    token_stream None sdf rounds (fun ?pool ~rounds sdf ->
        Compiled.run ?pool ~rounds sdf)
  in
  check Alcotest.bool "sequential telemetry identical" true
    (reference = compiled_seq);
  Pool.with_pool ~domains:2 (fun pool ->
      let compiled_par =
        token_stream (Some pool) sdf rounds (fun ?pool ~rounds sdf ->
            Compiled.run ?pool ~batch:4 ~rounds sdf)
      in
      check Alcotest.bool "parallel telemetry identical" true
        (reference = compiled_par))

(* --- the property: every shape, several domain counts --------------- *)

let shapes =
  [|
    ( "pipeline",
      fun st seed ->
        R.pipeline ~seed
          ~threads:(3 + Random.State.int st 3)
          ~extra_edges:(Random.State.int st 3) );
    ( "wide",
      fun st seed ->
        R.wide ~seed
          ~branches:(2 + Random.State.int st 3)
          ~depth:(1 + Random.State.int st 2) );
    ("monolithic", fun st seed -> R.monolithic ~seed ~calls:(3 + Random.State.int st 6));
    ("cyclic", fun st seed -> R.cyclic ~seed ~stages:(Random.State.int st 4));
    ( "multi-cpu",
      fun st seed ->
        R.multi_cpu ~seed
          ~threads:(3 + Random.State.int st 3)
          ~cpus:(2 + Random.State.int st 2)
          ~extra_edges:(Random.State.int st 2) );
    ( "chatty",
      fun st seed ->
        R.chatty ~seed
          ~threads:(2 + Random.State.int st 3)
          ~width:(1 + Random.State.int st 3) );
  |]

let qcheck_compiled_matches_reference_on_random_models =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"compiled == Exec.run on every shape at 1, 2 and 4 domains" ~count:30
       (QCheck.make
          ~print:(fun (shape, seed) -> Printf.sprintf "%d:%s" seed (fst shapes.(shape)))
          QCheck.Gen.(pair (int_bound (Array.length shapes - 1)) (int_bound 99_999)))
       (fun (shape, seed) ->
         let _, gen = shapes.(shape) in
         let uml = gen (Random.State.make [| seed |]) seed in
         match Sdf.of_model (Core.Flow.run uml).Core.Flow.caam with
         | exception Invalid_argument _ -> true (* ill-formed reject, not a failure *)
         | sdf ->
             let rounds = 11 in
             let seq = Exec.run ~rounds sdf in
             let same (o : Exec.outcome) =
               o.Exec.traces = seq.Exec.traces && o.Exec.firings = seq.Exec.firings
             in
             same (Compiled.run ~rounds sdf)
             && List.for_all
                  (fun domains ->
                    Pool.with_pool ~domains (fun pool ->
                        same (Compiled.run ~pool ~batch:4 ~rounds sdf)))
                  [ 1; 2; 4 ]))

let suite =
  [
    ( "compiled",
      [
        test "fifo: push/pop order and occupancy" fifo_basics;
        test "fifo: Full and Empty are enforced" fifo_full_and_empty_raise;
        test "fifo: wraparound keeps FIFO order" fifo_wraparound;
        test "fifo: non-power-of-two logical capacity" fifo_non_pow2_capacity;
        test "fifo: positional slot view wraps" fifo_slot_view;
        test "wsdeque: owner LIFO, thief FIFO" wsdeque_lifo_owner_fifo_thief;
        test "sequential compiled == reference on the case studies"
          compiled_sequential_matches_reference;
        test "work-stealing compiled == reference on the case studies"
          compiled_parallel_matches_reference;
        test "batch size never changes the outcome" compiled_batch_size_is_invisible;
        test "custom stimulus and s-functions are honoured"
          compiled_honours_stimulus_and_sfunctions;
        test "delay-broken cycles execute" compile_deadlocks_like_the_reference;
        test "token telemetry replays the reference stream"
          compiled_telemetry_matches_reference;
        qcheck_compiled_matches_reference_on_random_models;
      ] );
  ]
