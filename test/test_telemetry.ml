(* Causal token tracing end to end: the Telemetry sink itself, the SDF
   executor and KPN scheduler reporting into it, the stall watchdog,
   and the CLI surface (stats formats, journal, bench-diff). *)

module Obs = Umlfront_obs
module Json = Umlfront_obs.Json
module T = Umlfront_obs.Telemetry
module D = Umlfront_dataflow
module Kpn = Umlfront_dataflow.Kpn

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let contains = Astring_contains.contains
let crane_sdf () = D.Sdf.of_model (Lint_mutants.crane_caam ())

(* Every test owns the process-global sink for its duration. *)
let with_telemetry f =
  T.enable ();
  Fun.protect
    ~finally:(fun () ->
      T.disable ();
      T.reset ())
    f

(* --- the sink -------------------------------------------------------- *)

let sink_fifo_and_stats () =
  with_telemetry @@ fun () ->
  let ch = "A/1->B/1" in
  let id0 = T.produce ~protocols:[ "SHM" ] ~round:0 ~src:"A" ~firing:1 ch in
  let _ = T.produce ~round:0 ~src:"A" ~firing:2 ch in
  (match T.consume ~by:"B" ch with
  | Some p ->
      check Alcotest.int "FIFO: oldest token first" id0 p.T.token_id;
      check Alcotest.string "consumer patches unknown dst" "B" p.T.token_dst;
      check Alcotest.int "producer firing" 1 p.T.token_src_firing;
      check Alcotest.int "round" 0 p.T.token_round
  | None -> Alcotest.fail "expected a provenance");
  (match T.channels () with
  | [ s ] ->
      check Alcotest.int "produced" 2 s.T.chan_produced;
      check Alcotest.int "consumed" 1 s.T.chan_consumed;
      check Alcotest.int "occupancy" 1 s.T.chan_occupancy;
      check Alcotest.int "high-water mark" 2 s.T.chan_hwm;
      check Alcotest.int "hwm round" 0 s.T.chan_hwm_round;
      check Alcotest.(list string) "protocols" [ "SHM" ] s.T.chan_protocols
  | l -> Alcotest.failf "expected 1 channel, got %d" (List.length l));
  check Alcotest.(list int) "occupancy timeline" [ 1; 2; 1 ]
    (List.map snd (T.occupancy_timeline ch))

let sink_exports () =
  with_telemetry @@ fun () ->
  let ch = "A/1->B/1" in
  let id0 = T.produce ~protocols:[ "SHM" ] ~round:0 ~dst:"B" ~src:"A" ~firing:1 ch in
  ignore (T.consume ~by:"B" ch);
  ignore (T.produce ~round:1 ~src:"A" ~firing:2 ch);
  (* One consumed token (s+f pair bound by id), one dangling (s only). *)
  let events = T.flow_events () in
  check Alcotest.int "three flow events" 3 (List.length events);
  let phases_of id =
    List.filter_map
      (fun e ->
        match (Json.member "id" e, Json.member "ph" e) with
        | Some (Json.Int i), Some (Json.String ph) when i = id -> Some ph
        | _ -> None)
      events
  in
  check Alcotest.(list string) "consumed token has s+f" [ "s"; "f" ] (phases_of id0);
  let finish =
    List.find
      (fun e -> Json.member "ph" e = Some (Json.String "f"))
      events
  in
  check Alcotest.bool "finish binds to enclosing slice" true
    (Json.member "bp" finish = Some (Json.String "e"));
  (* token_at answers "which token crossed ch in round 1". *)
  (match T.token_at ~channel:ch ~round:1 with
  | Some p -> check Alcotest.int "round-1 token is the second firing" 2 p.T.token_src_firing
  | None -> Alcotest.fail "token_at found nothing for round 1");
  (* The DOT causal graph: consumed edge A->B, dangling edge A->"?". *)
  let dot = T.flow_dot () in
  check Alcotest.bool "consumed edge" true (contains dot "\"A\" -> \"B\"");
  check Alcotest.bool "dangling edge flows to ?" true (contains dot "\"A\" -> \"?\"");
  check Alcotest.bool "edge label counts tokens" true (contains dot "\195\1511");
  let doc = T.to_json () in
  List.iter
    (fun key -> check Alcotest.bool (key ^ " in to_json") true (Json.member key doc <> None))
    [ "channels"; "timelines"; "flowEvents"; "droppedTokens" ]

(* --- the SDF executor reports in ------------------------------------- *)

let exec_traces_crane_tokens () =
  let sdf = crane_sdf () in
  Obs.Journal.reset ();
  with_telemetry @@ fun () ->
  let rounds = 3 in
  let _ = D.Exec.run ~rounds sdf in
  let chans = T.channels () in
  check Alcotest.int "one traced channel per SDF edge"
    (List.length sdf.D.Sdf.edges) (List.length chans);
  List.iter
    (fun s ->
      check Alcotest.int (s.T.chan_name ^ " produced once per round") rounds
        s.T.chan_produced;
      check Alcotest.int (s.T.chan_name ^ " consumed once per round") rounds
        s.T.chan_consumed;
      check Alcotest.bool (s.T.chan_name ^ " hwm reached") true (s.T.chan_hwm >= 1))
    chans;
  (* Provenance of a round-1 token: producing actor, second firing. *)
  let ch = (List.hd chans).T.chan_name in
  (match T.token_at ~channel:ch ~round:1 with
  | Some p ->
      check Alcotest.int "firing index tracks rounds" 2 p.T.token_src_firing;
      check Alcotest.bool "src is a real actor" true
        (D.Sdf.find_actor sdf p.T.token_src <> None)
  | None -> Alcotest.failf "no token recorded on %s in round 1" ch);
  (* The journal carries the run envelope and the per-channel HWMs. *)
  let es = Obs.Journal.entries () in
  check Alcotest.bool "exec.run journaled" true
    (Obs.Journal.filter ~kind:"exec.run" es <> []);
  check Alcotest.bool "exec.done journaled" true
    (Obs.Journal.filter ~kind:"exec.done" es <> []);
  check Alcotest.int "one channel.hwm entry per channel" (List.length chans)
    (List.length (Obs.Journal.filter ~kind:"channel.hwm" es))

let exec_parallel_tokens_match_sequential () =
  let sdf = crane_sdf () in
  let stats pool =
    with_telemetry @@ fun () ->
    let _ = D.Exec.run ?pool ~rounds:4 sdf in
    T.channels ()
  in
  let seq = stats None in
  Umlfront_parallel.Pool.with_pool ~domains:2 (fun pool ->
      let par = stats (Some pool) in
      check Alcotest.int "same channel count" (List.length seq) (List.length par);
      List.iter2
        (fun a b ->
          check Alcotest.string "same channel" a.T.chan_name b.T.chan_name;
          check Alcotest.int (a.T.chan_name ^ " same produced") a.T.chan_produced
            b.T.chan_produced;
          check Alcotest.int (a.T.chan_name ^ " same consumed") a.T.chan_consumed
            b.T.chan_consumed;
          check Alcotest.int (a.T.chan_name ^ " same hwm") a.T.chan_hwm b.T.chan_hwm)
        seq par)

(* --- the KPN scheduler reports in ------------------------------------ *)

let kpn_traces_tokens () =
  with_telemetry @@ fun () ->
  let _ =
    Kpn.run
      [
        ("prod", Kpn.producer ~out:"ch" [ 1.0; 2.0; 3.0 ]);
        ("cons", Kpn.consumer ~inp:"ch" ~n:3);
      ]
  in
  (match T.channels () with
  | [ s ] ->
      check Alcotest.string "channel" "ch" s.T.chan_name;
      check Alcotest.int "produced" 3 s.T.chan_produced;
      check Alcotest.int "consumed" 3 s.T.chan_consumed
  | l -> Alcotest.failf "expected 1 channel, got %d" (List.length l));
  let provs = List.map (fun t -> t.T.prov) (T.tokens ()) in
  check Alcotest.(list int) "write indices are per-process firings" [ 1; 2; 3 ]
    (List.map (fun p -> p.T.token_src_firing) provs);
  List.iter
    (fun p ->
      check Alcotest.string "producer" "prod" p.T.token_src;
      check Alcotest.string "consumer patched in" "cons" p.T.token_dst)
    provs

(* --- the stall watchdog ---------------------------------------------- *)

let watchdog_names_blocked_actors () =
  (* Two processes reading channels nobody writes: a true deadlock. *)
  let net =
    [
      ("pa", Kpn.Read ("x", fun _ -> Kpn.Done 0.0));
      ("pb", Kpn.Read ("y", fun _ -> Kpn.Done 0.0));
    ]
  in
  match Kpn.run ~watchdog:1000 net with
  | _ -> Alcotest.fail "expected the watchdog to trip"
  | exception Kpn.Stalled st ->
      (match st.Kpn.stall_reason with
      | `Deadlock -> ()
      | _ -> Alcotest.fail "expected a deadlock stall");
      check Alcotest.(list string) "blocked actors named, sorted" [ "pa"; "pb" ]
        (List.map (fun b -> b.Kpn.b_actor) st.Kpn.stall_blocked);
      List.iter
        (fun b ->
          check Alcotest.bool "blocked on a read" true (b.Kpn.b_op = `Read))
        st.Kpn.stall_blocked;
      check Alcotest.(list string) "blocking channels" [ "x"; "y" ]
        (List.map (fun b -> b.Kpn.b_channel) st.Kpn.stall_blocked);
      let report = Kpn.stall_to_string st in
      List.iter
        (fun needle ->
          check Alcotest.bool ("report mentions " ^ needle) true (contains report needle))
        [ "deadlock"; "pa"; "pb"; "blocked on read x" ]

let watchdog_catches_livelock () =
  (* A ping-pong pair that always makes progress but never completes:
     invisible to deadlock detection, caught by the progress budget. *)
  let rec ping () = Kpn.Write ("x", 1.0, fun () -> Kpn.Read ("y", fun _ -> ping ()))
  and pong () = Kpn.Read ("x", fun _ -> Kpn.Write ("y", 0.0, fun () -> pong ())) in
  Obs.Journal.reset ();
  (match Kpn.run ~watchdog:50 [ ("ping", ping ()); ("pong", pong ()) ] with
  | _ -> Alcotest.fail "expected the watchdog to trip"
  | exception Kpn.Stalled st ->
      (match st.Kpn.stall_reason with
      | `No_completion budget -> check Alcotest.int "budget echoed" 50 budget
      | _ -> Alcotest.fail "expected a no-completion stall");
      check Alcotest.bool "past the budget" true (st.Kpn.stall_steps > 50);
      check Alcotest.(list string) "both livelock suspects listed" [ "ping"; "pong" ]
        (List.map (fun b -> b.Kpn.b_actor) st.Kpn.stall_blocked));
  check Alcotest.bool "stall journaled" true
    (Obs.Journal.filter ~kind:"kpn.stall" (Obs.Journal.entries ()) <> [])

let watchdog_wraps_fuel_exhaustion () =
  let rec ping () = Kpn.Write ("x", 1.0, fun () -> Kpn.Read ("y", fun _ -> ping ()))
  and pong () = Kpn.Read ("x", fun _ -> Kpn.Write ("y", 0.0, fun () -> pong ())) in
  let net () = [ ("ping", ping ()); ("pong", pong ()) ] in
  (match Kpn.run ~fuel:10 ~watchdog:1000 (net ()) with
  | _ -> Alcotest.fail "expected a stall"
  | exception Kpn.Stalled st -> (
      match st.Kpn.stall_reason with
      | `Out_of_fuel -> ()
      | _ -> Alcotest.fail "expected an out-of-fuel stall"));
  (* Without the watchdog, the classic exception is unchanged. *)
  match Kpn.run ~fuel:10 (net ()) with
  | _ -> Alcotest.fail "expected Out_of_fuel"
  | exception Kpn.Out_of_fuel -> ()

let deadlock_victims_journaled () =
  Obs.Journal.reset ();
  (match Kpn.run [ ("pa", Kpn.Read ("x", fun _ -> Kpn.Done 0.0)) ] with
  | _ -> Alcotest.fail "expected Deadlock"
  | exception Kpn.Deadlock [ "pa" ] -> ()
  | exception Kpn.Deadlock l ->
      Alcotest.failf "unexpected victims: %s" (String.concat "," l));
  match Obs.Journal.filter ~kind:"kpn.deadlock" (Obs.Journal.entries ()) with
  | [ e ] ->
      let doc = Obs.Journal.entry_json e in
      check Alcotest.bool "victims recorded" true
        (contains (Json.to_string doc) "pa")
  | l -> Alcotest.failf "expected 1 kpn.deadlock entry, got %d" (List.length l)

(* --- the CLI surface ------------------------------------------------- *)

let exe = Filename.concat ".." (Filename.concat "bin" "umlfront.exe")

let read_file f =
  let ic = open_in_bin f in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let run_cli args =
  let out = Filename.temp_file "umlfront_tel" ".out" in
  let err = Filename.temp_file "umlfront_tel" ".err" in
  let code = Sys.command (Printf.sprintf "%s %s >%s 2>%s" exe args out err) in
  let slurp f =
    let s = read_file f in
    Sys.remove f;
    s
  in
  (code, slurp out, slurp err)

let save_model () =
  let file = Filename.temp_file "umlfront_tel" ".xml" in
  Umlfront_uml.Xmi.save (Lint_mutants.crane ()) file;
  file

let with_model f =
  let file = save_model () in
  Fun.protect ~finally:(fun () -> Sys.remove file) (fun () -> f file)

let cli_stats_json_roundtrips () =
  with_model @@ fun file ->
  let code, out, _ = run_cli ("stats --format json " ^ Filename.quote file) in
  check Alcotest.int "exit" 0 code;
  let doc =
    match Json.parse out with Ok d -> d | Error e -> Alcotest.fail e
  in
  let stats = Json.items doc in
  check Alcotest.bool "some stats" true (stats <> []);
  let names =
    List.map
      (fun s ->
        check Alcotest.bool "kind present" true (Json.member "kind" s <> None);
        match Json.member "name" s with
        | Some (Json.String n) -> n
        | _ -> Alcotest.fail "stat without a name")
      stats
  in
  check Alcotest.bool "flow counters exported" true
    (List.exists (fun n -> String.starts_with ~prefix:"flow." n) names);
  (* Round-trip: serialize and re-parse, key names survive. *)
  match Json.parse (Json.to_string doc) with
  | Ok doc' ->
      let names' =
        List.filter_map
          (fun s ->
            match Json.member "name" s with
            | Some (Json.String n) -> Some n
            | _ -> None)
          (Json.items doc')
      in
      check Alcotest.(list string) "names round-trip" names names'
  | Error e -> Alcotest.fail e

let cli_stats_openmetrics () =
  with_model @@ fun file ->
  let mout = Filename.temp_file "umlfront_tel" ".prom" in
  Fun.protect ~finally:(fun () -> Sys.remove mout) @@ fun () ->
  let code, out, _ =
    run_cli
      (Printf.sprintf "stats --format openmetrics --metrics-out %s %s"
         (Filename.quote mout) (Filename.quote file))
  in
  check Alcotest.int "exit" 0 code;
  check Alcotest.bool "umlfront_ prefix" true (contains out "umlfront_");
  check Alcotest.bool "EOF marker" true (contains out "# EOF");
  check Alcotest.string "--metrics-out mirrors stdout" out (read_file mout)

let cli_journal_replays () =
  with_model @@ fun file ->
  let code, out, _ =
    run_cli ("journal --kind exec --limit 3 " ^ Filename.quote file)
  in
  check Alcotest.int "exit" 0 code;
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' out) in
  check Alcotest.bool "some entries" true (lines <> []);
  check Alcotest.bool "--limit respected" true (List.length lines <= 3);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok doc -> (
          match Json.member "kind" doc with
          | Some (Json.String k) ->
              check Alcotest.bool ("exec-filtered kind: " ^ k) true
                (String.starts_with ~prefix:"exec" k)
          | _ -> Alcotest.fail "entry without a kind")
      | Error e -> Alcotest.fail e)
    lines

let cli_bench_diff_gate () =
  let write_doc blocks =
    let f = Filename.temp_file "umlfront_bench" ".json" in
    let oc = open_out f in
    output_string oc
      (Printf.sprintf
         "{\"schema\":\"umlfront-bench-obs/1\",\"cases\":[{\"name\":\"crane\",\
          \"blocks_per_s_parsed\":%f,\"actor_firings_per_s\":1000.0}]}"
         blocks);
    close_out oc;
    f
  in
  let base = write_doc 100.0 and slow = write_doc 60.0 and ok = write_doc 95.0 in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ base; slow; ok ])
  @@ fun () ->
  let q = Filename.quote in
  let code, out, _ = run_cli (Printf.sprintf "bench-diff %s %s" (q base) (q slow)) in
  check Alcotest.int "-40%% fails the gate" 1 code;
  check Alcotest.bool "verdict printed" true (contains out "REGRESSION");
  let code, _, _ = run_cli (Printf.sprintf "bench-diff %s %s" (q base) (q ok)) in
  check Alcotest.int "-5%% passes" 0 code;
  let code, _, _ =
    run_cli (Printf.sprintf "bench-diff --tolerance 50 %s %s" (q base) (q slow))
  in
  check Alcotest.int "-40%% passes a 50%% tolerance" 0 code

let cli_simulate_token_export () =
  with_model @@ fun file ->
  let toks = Filename.temp_file "umlfront_tel" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove toks) @@ fun () ->
  let code, _, _ =
    run_cli
      (Printf.sprintf "simulate --rounds 2 --tokens %s %s" (Filename.quote toks)
         (Filename.quote file))
  in
  check Alcotest.int "exit" 0 code;
  match Json.parse (read_file toks) with
  | Ok doc ->
      check Alcotest.bool "channels exported" true
        (Json.items (Option.get (Json.member "channels" doc)) <> []);
      check Alcotest.bool "flow events exported" true
        (Json.items (Option.get (Json.member "flowEvents" doc)) <> [])
  | Error e -> Alcotest.fail e

let suite =
  [
    ( "telemetry",
      [
        test "sink: FIFO matching and channel stats" sink_fifo_and_stats;
        test "sink: flow events, token_at, DOT export" sink_exports;
        test "exec: crane tokens traced per round" exec_traces_crane_tokens;
        test "exec: parallel run traces the same tokens"
          exec_parallel_tokens_match_sequential;
        test "kpn: tokens traced with write indices" kpn_traces_tokens;
        test "watchdog: deadlock names blocked actors" watchdog_names_blocked_actors;
        test "watchdog: livelock trips the progress budget" watchdog_catches_livelock;
        test "watchdog: fuel exhaustion wrapped" watchdog_wraps_fuel_exhaustion;
        test "deadlock victims reach the journal" deadlock_victims_journaled;
        test "cli: stats --format json round-trips" cli_stats_json_roundtrips;
        test "cli: stats --format openmetrics" cli_stats_openmetrics;
        test "cli: journal replays as JSONL" cli_journal_replays;
        test "cli: bench-diff gates regressions" cli_bench_diff_gate;
        test "cli: simulate --tokens exports telemetry" cli_simulate_token_export;
      ] );
  ]
