module U = Umlfront_uml
open U

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let datatype_tests =
  [
    test "size of scalars" (fun () ->
        check Alcotest.int "int" 4 (Datatype.size_bytes Datatype.D_int);
        check Alcotest.int "float" 8 (Datatype.size_bytes Datatype.D_float);
        check Alcotest.int "bool" 1 (Datatype.size_bytes Datatype.D_bool);
        check Alcotest.int "void" 0 (Datatype.size_bytes Datatype.D_void));
    test "size of arrays and named" (fun () ->
        check Alcotest.int "arr" 32
          (Datatype.size_bytes (Datatype.D_array (Datatype.D_float, 4)));
        check Alcotest.int "named" 64
          (Datatype.size_bytes (Datatype.D_named ("block", 64))));
    test "of_string inverse of to_string" (fun () ->
        List.iter
          (fun t ->
            check Alcotest.bool (Datatype.to_string t) true
              (Datatype.equal t (Datatype.of_string (Datatype.to_string t))))
          [
            Datatype.D_void;
            Datatype.D_int;
            Datatype.D_array (Datatype.D_int, 16);
            Datatype.D_array (Datatype.D_array (Datatype.D_bool, 2), 3);
            Datatype.D_named ("buf", 128);
          ]);
    test "of_string rejects junk" (fun () ->
        match Datatype.of_string "whatever" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

let operation_tests =
  let op =
    Operation.make "f"
      ~params:
        [
          Operation.param "a" Datatype.D_int;
          Operation.param ~dir:Operation.Out "b" Datatype.D_float;
          Operation.param ~dir:Operation.Inout "c" Datatype.D_bool;
          Operation.param ~dir:Operation.Return "r" Datatype.D_float;
        ]
  in
  [
    test "inputs are in and inout" (fun () ->
        check Alcotest.(list string) "inputs" [ "a"; "c" ]
          (List.map (fun p -> p.Operation.param_name) (Operation.inputs op)));
    test "outputs are out inout return" (fun () ->
        check Alcotest.(list string) "outputs" [ "b"; "c"; "r" ]
          (List.map (fun p -> p.Operation.param_name) (Operation.outputs op)));
    test "return type" (fun () ->
        check Alcotest.bool "float" true
          (Operation.return_type op = Some Datatype.D_float));
    test "direction round trip" (fun () ->
        List.iter
          (fun d ->
            check Alcotest.bool "dir" true
              (Operation.direction_of_string (Operation.direction_to_string d) = d))
          [ Operation.In; Operation.Out; Operation.Inout; Operation.Return ]);
  ]

let sequence_tests =
  let msg = Sequence.message ~from:"A" ~target:"B" in
  [
    test "prefix classification" (fun () ->
        check Alcotest.bool "send" true (Sequence.is_send (msg "SetValue"));
        check Alcotest.bool "recv" true (Sequence.is_receive (msg "GetValue"));
        check Alcotest.bool "io read" true (Sequence.is_io_read (msg "getValue"));
        check Alcotest.bool "io write" true (Sequence.is_io_write (msg "setValue"));
        check Alcotest.bool "not send" false (Sequence.is_send (msg "setValue"));
        check Alcotest.bool "not recv" false (Sequence.is_receive (msg "getValue")));
    test "transferred bytes sums args and result" (fun () ->
        let m =
          Sequence.message ~from:"A" ~target:"B" "f"
            ~args:[ Sequence.arg "x" Datatype.D_int; Sequence.arg "y" Datatype.D_float ]
            ~result:(Sequence.arg "r" Datatype.D_bool)
        in
        check Alcotest.int "bytes" 13 (Sequence.transferred_bytes m));
    test "lifelines in first-appearance order" (fun () ->
        let sd =
          Sequence.make "sd"
            [
              Sequence.message ~from:"B" ~target:"C" "f";
              Sequence.message ~from:"A" ~target:"B" "g";
            ]
        in
        check Alcotest.(list string) "order" [ "B"; "C"; "A" ] (Sequence.lifelines sd));
    test "messages_from filters by caller" (fun () ->
        let sd =
          Sequence.make "sd"
            [
              Sequence.message ~from:"A" ~target:"B" "f";
              Sequence.message ~from:"B" ~target:"A" "g";
              Sequence.message ~from:"A" ~target:"C" "h";
            ]
        in
        check Alcotest.int "two" 2 (List.length (Sequence.messages_from sd "A")));
  ]

let deployment_tests =
  let dep =
    Deployment.make ~bus:"amba" ~name:"d"
      ~nodes:[ Deployment.node "CPU1"; Deployment.node "CPU2" ]
      ~allocation:[ ("T1", "CPU1"); ("T2", "CPU1"); ("T3", "CPU2") ]
      ()
  in
  [
    test "node_of_thread" (fun () ->
        check Alcotest.(option string) "T3" (Some "CPU2") (Deployment.node_of_thread dep "T3"));
    test "threads_on" (fun () ->
        check Alcotest.(list string) "CPU1" [ "T1"; "T2" ] (Deployment.threads_on dep "CPU1"));
    test "node carries SAengine stereotype" (fun () ->
        let n = Deployment.node "x" in
        check Alcotest.bool "stereo" true
          (List.mem Stereotype.Sa_engine n.Deployment.node_stereotypes));
  ]

let sample_uml () =
  let b = Builder.create "sample" in
  Builder.thread b "T1";
  Builder.thread b "T2";
  Builder.platform b "Platform";
  Builder.io_device b "IO";
  Builder.passive_object b ~cls:"Worker" "w";
  Builder.cpu b "CPU1";
  Builder.allocate b ~thread:"T1" ~cpu:"CPU1";
  Builder.allocate b ~thread:"T2" ~cpu:"CPU1";
  let arg = Sequence.arg in
  Builder.call b ~from:"T1" ~target:"IO" "getIn" ~result:(arg "x" Datatype.D_float);
  Builder.call b ~from:"T1" ~target:"w" "work" ~args:[ arg "x" Datatype.D_float ]
    ~result:(arg "y" Datatype.D_float);
  Builder.call b ~from:"T1" ~target:"T2" "SetY" ~args:[ arg "y" Datatype.D_float ];
  Builder.call b ~from:"T2" ~target:"IO" "setOut" ~args:[ arg "y" Datatype.D_float ];
  Builder.finish b

let builder_tests =
  [
    test "threads discovered" (fun () ->
        check Alcotest.(list string) "threads" [ "T1"; "T2" ] (Model.threads (sample_uml ())));
    test "builder infers operations on callee classes" (fun () ->
        let m = sample_uml () in
        match Model.class_of_instance m "w" with
        | Some c -> check Alcotest.bool "work declared" true (Classifier.find_operation c "work" <> None)
        | None -> Alcotest.fail "class not found");
    test "duplicate object rejected" (fun () ->
        let b = Builder.create "x" in
        Builder.thread b "T";
        match Builder.thread b "T" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "allocation to unknown cpu rejected" (fun () ->
        let b = Builder.create "x" in
        Builder.thread b "T";
        match Builder.allocate b ~thread:"T" ~cpu:"CPU9" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "no deployment when no cpus declared" (fun () ->
        let b = Builder.create "x" in
        Builder.thread b "T";
        check Alcotest.bool "none" true (Model.deployment (Builder.finish b) = None));
    test "kind_of_instance" (fun () ->
        let m = sample_uml () in
        check Alcotest.bool "thread" true
          (Model.kind_of_instance m "T1" = Some Classifier.Thread);
        check Alcotest.bool "platform" true
          (Model.kind_of_instance m "Platform" = Some Classifier.Platform);
        check Alcotest.bool "io" true
          (Model.kind_of_instance m "IO" = Some Classifier.Io_device));
    test "stats count messages" (fun () ->
        let m = sample_uml () in
        check Alcotest.(option int) "msgs" (Some 4) (List.assoc_opt "messages" (Model.stats m)));
  ]

let validate_tests =
  let well_formed = sample_uml () in
  [
    test "well-formed model passes" (fun () ->
        check Alcotest.int "no issues" 0 (List.length (Validate.check well_formed)));
    test "unknown callee flagged" (fun () ->
        let b = Builder.create "x" in
        Builder.thread b "T";
        Builder.cpu b "CPU";
        Builder.allocate b ~thread:"T" ~cpu:"CPU";
        let m = Builder.finish b in
        let m =
          {
            m with
            Model.sequences =
              [ Sequence.make "sd" [ Sequence.message ~from:"T" ~target:"ghost" "f" ] ];
          }
        in
        check Alcotest.bool "flagged" true (Validate.check m <> []));
    test "thread-to-thread without Set/Get flagged" (fun () ->
        let b = Builder.create "x" in
        Builder.thread b "T1";
        Builder.thread b "T2";
        Builder.cpu b "CPU";
        Builder.allocate b ~thread:"T1" ~cpu:"CPU";
        Builder.allocate b ~thread:"T2" ~cpu:"CPU";
        Builder.call b ~from:"T1" ~target:"T2" "compute";
        check Alcotest.bool "flagged" true (Validate.check (Builder.finish b) <> []));
    test "io call without get/set flagged" (fun () ->
        let b = Builder.create "x" in
        Builder.thread b "T";
        Builder.io_device b "IO";
        Builder.cpu b "CPU";
        Builder.allocate b ~thread:"T" ~cpu:"CPU";
        Builder.call b ~from:"T" ~target:"IO" "read";
        check Alcotest.bool "flagged" true (Validate.check (Builder.finish b) <> []));
    test "unallocated thread flagged" (fun () ->
        let b = Builder.create "x" in
        Builder.thread b "T1";
        Builder.thread b "T2";
        Builder.cpu b "CPU";
        Builder.allocate b ~thread:"T1" ~cpu:"CPU";
        check Alcotest.bool "flagged" true (Validate.check (Builder.finish b) <> []));
    test "doubly allocated thread flagged" (fun () ->
        let b = Builder.create "x" in
        Builder.thread b "T";
        Builder.cpu b "CPU";
        Builder.allocate b ~thread:"T" ~cpu:"CPU";
        Builder.allocate b ~thread:"T" ~cpu:"CPU";
        check Alcotest.bool "flagged" true (Validate.check (Builder.finish b) <> []));
    test "never-produced token flagged" (fun () ->
        let b = Builder.create "x" in
        Builder.thread b "T";
        Builder.passive_object b ~cls:"W" "w";
        Builder.cpu b "CPU";
        Builder.allocate b ~thread:"T" ~cpu:"CPU";
        Builder.call b ~from:"T" ~target:"w" "f"
          ~args:[ Sequence.arg "phantom" Datatype.D_int ];
        check Alcotest.bool "flagged" true (Validate.check (Builder.finish b) <> []));
    test "feedback token is allowed (order independent)" (fun () ->
        (* u consumed before it is produced later in the diagram. *)
        let b = Builder.create "x" in
        Builder.thread b "T";
        Builder.platform b "P";
        Builder.cpu b "CPU";
        Builder.allocate b ~thread:"T" ~cpu:"CPU";
        let arg = Sequence.arg in
        Builder.call b ~from:"T" ~target:"P" "sub"
          ~args:[ arg "u" Datatype.D_float; arg "u" Datatype.D_float ]
          ~result:(arg "e" Datatype.D_float);
        Builder.call b ~from:"T" ~target:"P" "gain" ~args:[ arg "e" Datatype.D_float ]
          ~result:(arg "u" Datatype.D_float);
        check Alcotest.int "ok" 0 (List.length (Validate.check (Builder.finish b))));
    test "token not available in consuming thread flagged" (fun () ->
        (* T2 consumes a token only T1 can produce, with no Set/Get. *)
        let b = Builder.create "x" in
        Builder.thread b "T1";
        Builder.thread b "T2";
        Builder.passive_object b ~cls:"W" "w";
        Builder.cpu b "CPU";
        Builder.allocate b ~thread:"T1" ~cpu:"CPU";
        Builder.allocate b ~thread:"T2" ~cpu:"CPU";
        let arg = Sequence.arg in
        Builder.call b ~from:"T1" ~target:"w" "make" ~result:(arg "t" Datatype.D_float);
        Builder.call b ~from:"T2" ~target:"w" "use" ~args:[ arg "t" Datatype.D_float ];
        check Alcotest.bool "flagged" true
          (List.exists
             (fun (i : Validate.issue) ->
               Astring_contains.contains i.Validate.what "not available in this thread")
             (Validate.check (Builder.finish b))));
    test "argument count mismatch flagged" (fun () ->
        let b = Builder.create "x" in
        Builder.thread b "T";
        Builder.cpu b "CPU";
        Builder.allocate b ~thread:"T" ~cpu:"CPU";
        Builder.passive_object b "w" ~cls:"W"
          ~operations:
            [
              Operation.make "f"
                ~params:
                  [
                    Operation.param "a" Datatype.D_int;
                    Operation.param "b" Datatype.D_int;
                  ];
            ];
        let m = Builder.finish b in
        let m =
          {
            m with
            Model.sequences =
              [
                Sequence.make "sd"
                  [
                    Sequence.message ~from:"T" ~target:"w" "f"
                      ~args:[ Sequence.arg "a" Datatype.D_int ];
                  ];
              ];
          }
        in
        check Alcotest.bool "flagged" true
          (List.exists
             (fun (i : Validate.issue) ->
               String.length i.Validate.what >= 8
               && String.sub i.Validate.what 0 8 = "argument")
             (Validate.check m)));
  ]

let statechart_sample =
  Statechart.make "door"
    [
      Statechart.state ~kind:Statechart.Initial "init";
      Statechart.state ~entry:"lock" "closed";
      Statechart.state "open_";
    ]
    [
      Statechart.transition ~source:"init" ~target:"closed" ();
      Statechart.transition ~trigger:"open" ~source:"closed" ~target:"open_" ();
      Statechart.transition ~trigger:"close" ~source:"open_" ~target:"closed" ();
    ]

let xmi_tests =
  [
    test "round-trip is a fixpoint" (fun () ->
        let m = sample_uml () in
        let m = { m with Model.statecharts = [ statechart_sample ] } in
        let once = Xmi.to_string (Xmi.of_string (Xmi.to_string m)) in
        let twice = Xmi.to_string (Xmi.of_string once) in
        check Alcotest.string "fixpoint" once twice);
    test "round-trip preserves structure" (fun () ->
        let m = sample_uml () in
        let m' = Xmi.of_string (Xmi.to_string m) in
        check Alcotest.(list (pair string int)) "stats" (Model.stats m) (Model.stats m'));
    test "round-trip preserves deployment" (fun () ->
        let m = sample_uml () in
        let m' = Xmi.of_string (Xmi.to_string m) in
        match Model.deployment m' with
        | Some d ->
            check Alcotest.(option string) "alloc" (Some "CPU1")
              (Deployment.node_of_thread d "T2")
        | None -> Alcotest.fail "deployment lost");
    test "round-trip preserves node stereotypes, even stripped ones" (fun () ->
        let strip (n : Deployment.node) = { n with Deployment.node_stereotypes = [] } in
        let m = sample_uml () in
        let m =
          {
            m with
            Model.deployments =
              List.map
                (fun d ->
                  { d with Deployment.dep_nodes = List.map strip d.Deployment.dep_nodes })
                m.Model.deployments;
          }
        in
        match Model.deployment (Xmi.of_string (Xmi.to_string m)) with
        | Some d ->
            List.iter
              (fun (n : Deployment.node) ->
                check Alcotest.bool "stays stripped" true (n.Deployment.node_stereotypes = []))
              d.Deployment.dep_nodes
        | None -> Alcotest.fail "deployment lost");
    test "round-trip preserves statechart shape" (fun () ->
        let m = Model.make ~statecharts:[ statechart_sample ] "sc" in
        let m' = Xmi.of_string (Xmi.to_string m) in
        match m'.Model.statecharts with
        | [ sc ] ->
            check Alcotest.int "states" 3 (List.length (Statechart.all_states sc));
            check Alcotest.int "transitions" 3 (List.length sc.Statechart.sc_transitions);
            check Alcotest.(option string) "entry preserved" (Some "lock")
              (Option.bind (Statechart.find_state sc "closed") (fun s ->
                   s.Statechart.st_entry))
        | _ -> Alcotest.fail "statechart lost");
    test "bad root rejected" (fun () ->
        match Xmi.of_string "<wrong name=\"x\"/>" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "validation survives round-trip" (fun () ->
        let m = sample_uml () in
        let m' = Xmi.of_string (Xmi.to_string m) in
        check Alcotest.int "still well-formed" 0 (List.length (Validate.check m')));
  ]

let statechart_tests =
  [
    test "all_states pre-order" (fun () ->
        let sc =
          Statechart.make "h"
            [
              Statechart.state "a"
                ~children:[ Statechart.state "a1"; Statechart.state "a2" ];
              Statechart.state "b";
            ]
            []
        in
        check Alcotest.(list string) "order" [ "a"; "a1"; "a2"; "b" ]
          (List.map (fun s -> s.Statechart.st_name) (Statechart.all_states sc)));
    test "children imply composite kind" (fun () ->
        let s = Statechart.state "x" ~children:[ Statechart.state "y" ] in
        check Alcotest.bool "composite" true (s.Statechart.st_kind = Statechart.Composite));
    test "events sorted distinct" (fun () ->
        check Alcotest.(list string) "events" [ "close"; "open" ]
          (Statechart.events statechart_sample));
    test "initial_state found" (fun () ->
        check Alcotest.(option string) "init" (Some "init")
          (Option.map (fun s -> s.Statechart.st_name)
             (Statechart.initial_state statechart_sample)));
  ]

let suite =
  [
    ("uml:datatype", datatype_tests);
    ("uml:operation", operation_tests);
    ("uml:sequence", sequence_tests);
    ("uml:deployment", deployment_tests);
    ("uml:builder", builder_tests);
    ("uml:validate", validate_tests);
    ("uml:xmi", xmi_tests);
    ("uml:statechart", statechart_tests);
  ]
