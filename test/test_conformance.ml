(* Differential conformance harness: every backend against the SDF
   reference executor, plus the shrinker and the fuzz loop.  The broken
   backend is simulated with the test-only [corrupt] hook so the suite
   can prove disagreements are caught and minimized without actually
   breaking a generator. *)

module Conform = Umlfront_conformance.Conform
module Shrink = Umlfront_conformance.Shrink
module Fuzz = Umlfront_conformance.Fuzz
module Core = Umlfront_core
module CS = Umlfront_casestudies
module Model = Umlfront_simulink.Model
module S = Umlfront_simulink.System
module Obs = Umlfront_obs

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let contains = Astring_contains.contains

let case_studies =
  [
    ("crane", CS.Crane_system.model);
    ("synthetic", CS.Synthetic_system.model);
    ("elevator", CS.Elevator_system.model);
    ("mjpeg", CS.Mjpeg_system.model);
    ("didactic", CS.Didactic.model);
  ]

let caam_of model = (Core.Flow.run (model ())).Core.Flow.caam
let crane_caam () = caam_of CS.Crane_system.model

(* Adding 1.0 to every sample diverges immediately under every
   tolerance the engine uses. *)
let break_kpn = (Conform.Kpn, fun v -> v +. 1.0)

let counter name =
  match
    List.find_opt
      (fun (s : Obs.Metrics.stat) -> String.equal s.Obs.Metrics.s_name name)
      (Obs.Metrics.snapshot ())
  with
  | Some s -> s.Obs.Metrics.s_count
  | None -> 0

let engine_tests =
  [
    test "every bundled case study agrees on every backend" (fun () ->
        List.iter
          (fun (name, model) ->
            let report = Conform.check ~rounds:6 (caam_of model) in
            check Alcotest.bool (name ^ " agrees") true (Conform.agree report);
            check Alcotest.int
              (name ^ " verdict per backend")
              (List.length Conform.all_backends)
              (List.length report.Conform.verdicts);
            (* In-process backends must genuinely agree, not merely be
               unavailable; only C may bail out (no compiler). *)
            List.iter
              (fun b ->
                match List.assoc b report.Conform.verdicts with
                | Conform.Agree -> ()
                | Conform.Disagree _ | Conform.Backend_unavailable _ ->
                    Alcotest.fail
                      (Printf.sprintf "%s: backend %s did not agree" name
                         (Conform.backend_name b)))
              [
                Conform.Seq;
                Conform.Par;
                Conform.Compiled_exec;
                Conform.Kpn;
                Conform.Kpn_src;
              ])
          case_studies);
    test "a corrupted backend is caught with round and port" (fun () ->
        let report =
          Conform.check
            ~backends:[ Conform.Seq; Conform.Kpn ]
            ~rounds:4 ~corrupt:break_kpn (crane_caam ())
        in
        check Alcotest.bool "not agree" false (Conform.agree report);
        check Alcotest.bool "seq unaffected" true
          (List.assoc Conform.Seq report.Conform.verdicts = Conform.Agree);
        match Conform.disagreements report with
        | [ (Conform.Kpn, Conform.Trace { round; port; expected; actual; provenance }) ]
          -> (
            check Alcotest.int "earliest round" 0 round;
            check Alcotest.bool "a real output port" true
              (List.mem port report.Conform.outputs);
            check (Alcotest.float 1e-9) "offset visible" 1.0 (actual -. expected);
            (* The divergent token's causal identity: producing block,
               firing index, channel — the tentpole acceptance check. *)
            match provenance with
            | None -> Alcotest.fail "expected token provenance on the divergence"
            | Some p ->
                check Alcotest.bool "provenance names a block" true
                  (p.Conform.prov_block <> "");
                check Alcotest.int "firing = round + 1" (round + 1)
                  p.Conform.prov_firing;
                check Alcotest.bool "channel names the port" true
                  (let ch = p.Conform.prov_channel in
                   String.length ch > String.length port
                   &&
                   let tail =
                     String.sub ch
                       (String.length ch - String.length port - 2)
                       (String.length port)
                   in
                   String.equal tail port))
        | _ -> Alcotest.fail "expected exactly one Kpn trace disagreement");
    test "corrupting only one backend leaves the others green" (fun () ->
        let report = Conform.check ~rounds:4 ~corrupt:break_kpn (crane_caam ()) in
        List.iter
          (fun (b, v) ->
            match (b, v) with
            | Conform.Kpn, Conform.Disagree _ -> ()
            | Conform.Kpn, _ -> Alcotest.fail "kpn should disagree"
            | _, Conform.Disagree _ ->
                Alcotest.fail (Conform.backend_name b ^ " should not disagree")
            | _, (Conform.Agree | Conform.Backend_unavailable _) -> ())
          report.Conform.verdicts);
    test "backend_of_string round-trips every backend" (fun () ->
        List.iter
          (fun b ->
            match Conform.backend_of_string (Conform.backend_name b) with
            | Ok b' -> check Alcotest.bool (Conform.backend_name b) true (b = b')
            | Error msg -> Alcotest.fail msg)
          Conform.all_backends;
        check Alcotest.bool "underscore alias" true
          (Conform.backend_of_string "kpn_src" = Ok Conform.Kpn_src);
        match Conform.backend_of_string "llvm" with
        | Error msg -> check Alcotest.bool "names culprit" true (contains msg "llvm")
        | Ok _ -> Alcotest.fail "expected error");
    test "render and json carry the verdicts" (fun () ->
        let report =
          Conform.check
            ~backends:[ Conform.Seq; Conform.Kpn ]
            ~rounds:4 ~corrupt:break_kpn (crane_caam ())
        in
        let text = Conform.render report in
        check Alcotest.bool "model name" true (contains text "crane");
        check Alcotest.bool "agree line" true (contains text "seq      agree");
        check Alcotest.bool "disagree line" true (contains text "DISAGREE");
        check Alcotest.bool "divergence detail" true (contains text "first divergence");
        let json = Obs.Json.to_string (Conform.to_json report) in
        List.iter
          (fun needle -> check Alcotest.bool needle true (contains json needle))
          [
            "\"model\"";
            "\"rounds\"";
            "\"kpn\"";
            "\"disagree\"";
            "\"trace\"";
            "\"round\"";
          ]);
    test "conform metrics count checks and verdicts" (fun () ->
        let before = counter "conform.checks" in
        let disagree_before = counter "conform.disagree" in
        ignore
          (Conform.check
             ~backends:[ Conform.Seq; Conform.Kpn ]
             ~rounds:3 ~corrupt:break_kpn (crane_caam ()));
        check Alcotest.int "one more check" (before + 1) (counter "conform.checks");
        check Alcotest.int "one more disagree" (disagree_before + 1)
          (counter "conform.disagree"));
  ]

(* The disagreement used by the shrinker tests: the corrupt hook makes
   the Kpn backend wrong on *any* model that still has an output, so
   the shrinker is free to delete almost everything. *)
let kpn_repro m =
  not
    (Conform.agree
       (Conform.check ~backends:[ Conform.Kpn ] ~rounds:3 ~corrupt:break_kpn m))

let shrink_tests =
  [
    test "shrinker reduces a crane counterexample to <= 5 blocks" (fun () ->
        let caam = crane_caam () in
        check Alcotest.bool "caam starts big" true (S.total_blocks caam.Model.root > 5);
        check Alcotest.bool "disagreement reproduces" true (kpn_repro caam);
        let minimized, stats = Shrink.minimize ~repro:kpn_repro caam in
        check Alcotest.bool "still reproduces" true (kpn_repro minimized);
        check Alcotest.int "initial blocks recorded"
          (S.total_blocks caam.Model.root)
          stats.Shrink.initial_blocks;
        check Alcotest.int "final blocks recorded"
          (S.total_blocks minimized.Model.root)
          stats.Shrink.final_blocks;
        check Alcotest.bool
          (Printf.sprintf "minimal counterexample has %d <= 5 blocks"
             stats.Shrink.final_blocks)
          true
          (stats.Shrink.final_blocks <= 5);
        check Alcotest.bool "accepted within attempts" true
          (stats.Shrink.accepted <= stats.Shrink.attempts));
    test "shrinker keeps a non-reproducing model intact" (fun () ->
        let caam = crane_caam () in
        let same, stats = Shrink.minimize ~repro:(fun _ -> false) caam in
        check Alcotest.int "no deletion kept" 0 stats.Shrink.accepted;
        check Alcotest.int "untouched"
          (S.total_blocks caam.Model.root)
          (S.total_blocks same.Model.root));
    test "attempt budget bounds the repro calls" (fun () ->
        let calls = ref 0 in
        let repro m =
          incr calls;
          kpn_repro m
        in
        let _, stats = Shrink.minimize ~max_attempts:7 ~repro (crane_caam ()) in
        check Alcotest.int "stats count the calls" !calls stats.Shrink.attempts;
        check Alcotest.bool "budget respected" true (stats.Shrink.attempts <= 7));
  ]

let temp_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

let rec rm_rf path =
  if Sys.is_directory path then (
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path)
  else Sys.remove path

let fast_backends =
  [ Conform.Seq; Conform.Par; Conform.Compiled_exec; Conform.Kpn; Conform.Kpn_src ]

let fuzz_tests =
  [
    test "seeded fuzzing is green and deterministic" (fun () ->
        let run () =
          Fuzz.run ~backends:fast_backends ~rounds:4 ~shrink:false ~seed:11 ~count:8 ()
        in
        let a = run () in
        check Alcotest.int "all generated" 8 (a.Fuzz.checked + a.Fuzz.skipped);
        check Alcotest.int "no disagreement" 0 (List.length a.Fuzz.failures);
        check Alcotest.bool "most cases survive the lint gate" true
          (a.Fuzz.checked >= a.Fuzz.skipped);
        let b = run () in
        check Alcotest.int "checked is reproducible" a.Fuzz.checked b.Fuzz.checked;
        check Alcotest.int "skipped is reproducible" a.Fuzz.skipped b.Fuzz.skipped);
    test "fuzzing a corrupted backend shrinks and writes the corpus" (fun () ->
        let corpus = temp_dir "umlfront_fuzz_corpus" in
        Fun.protect ~finally:(fun () -> rm_rf corpus) @@ fun () ->
        let outcome =
          Fuzz.run
            ~backends:[ Conform.Seq; Conform.Kpn ]
            ~rounds:3 ~corrupt:break_kpn ~corpus ~seed:11 ~count:2 ()
        in
        check Alcotest.bool "failures found" true (outcome.Fuzz.failures <> []);
        check Alcotest.int "every checked case fails" outcome.Fuzz.checked
          (List.length outcome.Fuzz.failures);
        List.iter
          (fun (cx : Fuzz.counterexample) ->
            (match cx.Fuzz.shrink_stats with
            | None -> Alcotest.fail "expected shrink stats"
            | Some st ->
                check Alcotest.bool "shrunk to <= 5 blocks" true
                  (st.Shrink.final_blocks <= 5);
                check Alcotest.bool "not grown" true
                  (st.Shrink.final_blocks <= st.Shrink.initial_blocks));
            match cx.Fuzz.corpus_dir with
            | None -> Alcotest.fail "expected a corpus directory"
            | Some dir ->
                List.iter
                  (fun f ->
                    check Alcotest.bool
                      (Filename.concat dir f)
                      true
                      (Sys.file_exists (Filename.concat dir f)))
                  [ "original.xmi"; "minimized.mdl"; "repro.txt" ];
                (* repro.txt names the exact commands. *)
                let repro =
                  In_channel.with_open_bin (Filename.concat dir "repro.txt")
                    In_channel.input_all
                in
                check Alcotest.bool "conform command" true
                  (contains repro "umlfront conform");
                check Alcotest.bool "fuzz command" true (contains repro "umlfront fuzz");
                check Alcotest.bool "seed recorded" true (contains repro "--seed 11"))
          outcome.Fuzz.failures);
    test "minimized counterexample re-parses and still disagrees" (fun () ->
        let corpus = temp_dir "umlfront_fuzz_corpus2" in
        Fun.protect ~finally:(fun () -> rm_rf corpus) @@ fun () ->
        let outcome =
          Fuzz.run
            ~backends:[ Conform.Seq; Conform.Kpn ]
            ~rounds:3 ~corrupt:break_kpn ~corpus ~seed:5 ~count:1 ()
        in
        match outcome.Fuzz.failures with
        | { Fuzz.corpus_dir = Some dir; _ } :: _ ->
            let reparsed =
              Umlfront_simulink.Mdl_parser.parse_file (Filename.concat dir "minimized.mdl")
            in
            check Alcotest.bool "reproduces from disk" true (kpn_repro reparsed)
        | _ -> Alcotest.fail "expected a failure with a corpus directory");
  ]

let suite =
  [
    ("conformance:engine", engine_tests);
    ("conformance:shrink", shrink_tests);
    ("conformance:fuzz", fuzz_tests);
  ]
