(* The static-analysis subsystem, exercised the adversarial way: for
   every lint rule, a seeded-defect ("mutation") helper injects exactly
   one defect into a clean case-study model and the rule must fire on
   the mutant while the whole catalog stays silent on the original.
   Plus: a qcheck property that the synthesizer only ever emits
   lint-clean CAAMs, golden-file tests pinning the text/JSON report
   formats byte-for-byte, and CLI tests driving the installed binary
   through the lint/stats failure paths. *)

module U = Umlfront_uml
module A = Umlfront_analysis
module D = Umlfront_analysis.Diagnostic
module Core = Umlfront_core
module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Caam = Umlfront_simulink.Caam
module Model = Umlfront_simulink.Model
module Sdf = Umlfront_dataflow.Sdf
module CS = Umlfront_casestudies
module Obs = Umlfront_obs

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let contains = Astring_contains.contains

let crane () = CS.Crane_system.model ()
let crane_caam () = (Core.Flow.run (crane ())).Core.Flow.caam

let codes ds = List.sort_uniq String.compare (List.map (fun (d : D.t) -> d.D.code) ds)
let fires code ds = check Alcotest.bool (code ^ " fires") true (List.mem code (codes ds))

let silent_on name ds =
  check Alcotest.(list string) (name ^ " is lint-clean") [] (codes ds)

(* --- UML-level mutation helpers ------------------------------------ *)

let add_messages uml msgs =
  {
    uml with
    U.Model.sequences = uml.U.Model.sequences @ [ U.Sequence.make "mutant_sd" msgs ];
  }

(* Declare the operation on the callee class so an injected message
   only trips the rule under test, not UF001 as well. *)
let declare_op uml cls_name op =
  {
    uml with
    U.Model.classes =
      List.map
        (fun (c : U.Classifier.cls) ->
          if String.equal c.U.Classifier.cls_name cls_name then
            { c with U.Classifier.cls_operations = c.U.Classifier.cls_operations @ [ op ] }
          else c)
        uml.U.Model.classes;
  }

let map_deployments uml f =
  { uml with U.Model.deployments = List.map f uml.U.Model.deployments }

let farg = U.Sequence.arg "v" U.Datatype.D_float

let op_with_input name =
  U.Operation.make ~params:[ U.Operation.param "v" U.Datatype.D_float ] name

let op_with_return name =
  U.Operation.make
    ~params:[ U.Operation.param ~dir:U.Operation.Return "r" U.Datatype.D_float ]
    name

(* One mutant per UML rule. *)
let mut_undeclared_operation uml =
  add_messages uml [ U.Sequence.message ~from:"Tsensor" ~target:"sensorProc" "bogus" ]

let mut_unknown_callee uml =
  add_messages uml [ U.Sequence.message ~from:"Tsensor" ~target:"ghostObj" "poke" ]

let mut_unconsumed_set uml =
  let uml = declare_op uml "Tactuator_cls" (op_with_input "SetOrphan") in
  add_messages uml
    [
      U.Sequence.message ~from:"Tcontrol" ~target:"Tactuator" "SetOrphan"
        ~args:[ U.Sequence.arg "orphan" U.Datatype.D_float ];
    ]

let mut_unproduced_get uml =
  let uml = declare_op uml "Tsensor_cls" (op_with_return "GetGhost") in
  add_messages uml
    [
      U.Sequence.message ~from:"Tactuator" ~target:"Tsensor" "GetGhost"
        ~result:(U.Sequence.arg "ghost" U.Datatype.D_float);
    ]

let mut_io_misuse uml =
  let uml = declare_op uml "IODevice_cls" (op_with_input "pokeDevice") in
  add_messages uml
    [ U.Sequence.message ~from:"Tactuator" ~target:"IODevice" "pokeDevice" ~args:[ farg ] ]

let mut_undeployed_thread uml =
  map_deployments uml (fun dep ->
      {
        dep with
        U.Deployment.dep_allocation =
          List.filter
            (fun (t, _) -> not (String.equal t "Tactuator"))
            dep.U.Deployment.dep_allocation;
      })

let mut_node_without_saengine uml =
  map_deployments uml (fun dep ->
      {
        dep with
        U.Deployment.dep_nodes =
          List.map
            (fun (n : U.Deployment.node) -> { n with U.Deployment.node_stereotypes = [] })
            dep.U.Deployment.dep_nodes;
      })

(* The only UML defects that survive the synthesizer (Mapping rejects
   anything Validate flags) are the ones Validate does not police:
   a node missing its <<SAengine>> stereotype and an IO read whose
   result the mapping silently drops.  The gate and CLI tests use
   these two. *)
let mut_io_read_no_result uml =
  let uml = declare_op uml "IODevice_cls" (U.Operation.make "getDangling") in
  add_messages uml [ U.Sequence.message ~from:"Tsensor" ~target:"IODevice" "getDangling" ]

(* --- CAAM-level mutation helpers ----------------------------------- *)

let with_root (m : Model.t) root = { m with Model.root }

let map_system_at (m : Model.t) path f =
  with_root m (S.map_systems (fun p sys -> if p = path then f sys else sys) m.Model.root)

let first_channel (m : Model.t) =
  match Caam.channels m with
  | ch :: _ -> ch
  | [] -> Alcotest.fail "model has no channels"

let mut_dangle_port m =
  let cpu = List.hd (Caam.cpus m) in
  map_system_at m [ cpu.S.blk_name ] (fun sys ->
      match S.lines sys with
      | l :: _ -> S.remove_line sys ~src:l.S.src ~dst:l.S.dst
      | [] -> Alcotest.fail "CPU-SS has no lines")

let mut_unconnected_sink m = with_root m (S.add_block m.Model.root B.Terminator "mut_sink")
let mut_unconnected_source m = with_root m (S.add_block m.Model.root B.Constant "mut_src")

let mut_duplicate_name m =
  let cpu = List.hd (Caam.cpus m) in
  map_system_at m [ cpu.S.blk_name ] (fun sys ->
      { sys with S.sys_blocks = sys.S.sys_blocks @ [ List.hd sys.S.sys_blocks ] })

let mut_flip_protocol m =
  let path, ch = first_channel m in
  map_system_at m path (fun sys ->
      S.set_param sys ch.S.blk_name Caam.protocol_param (B.P_string "GFIFO"))

let mut_strip_cpu_role m =
  let cpu = List.hd (Caam.cpus m) in
  with_root m (S.set_param m.Model.root cpu.S.blk_name Caam.role_param (B.P_string "none"))

let mut_channel_fanout m =
  let path, ch = first_channel m in
  map_system_at m path (fun sys ->
      let sys = S.add_block sys B.Terminator "mut_tap" in
      S.add_line sys
        ~src:{ S.block = ch.S.blk_name; port = 1 }
        ~dst:{ S.block = "mut_tap"; port = 1 })

(* The issue's "drop a UnitDelay": turn every temporal barrier into a
   plain Gain (same port shape, no state) so the feedback loop becomes
   a zero-delay cycle again. *)
let mut_drop_unit_delay m =
  with_root m
    (S.map_systems
       (fun _ sys ->
         List.fold_left
           (fun sys (b : S.block) ->
             if b.S.blk_type = B.Unit_delay then
               S.replace_block sys { b with S.blk_type = B.Gain }
             else sys)
           sys (S.blocks sys))
       m.Model.root)

(* Re-number one nested Inport so its subsystem's boundary port has no
   matching block: the model keeps its structure but no longer flattens
   to a dataflow graph (UF190). *)
let mut_unflattenable m =
  let mutated = ref false in
  with_root m
    (S.map_systems
       (fun path sys ->
         if !mutated || path = [] then sys
         else
           match S.blocks_of_type sys B.Inport with
           | b :: _ ->
               mutated := true;
               S.set_param sys b.S.blk_name "Port" (B.P_int 99)
           | [] -> sys)
       m.Model.root)

let mut_zero_capacity m =
  let path, ch = first_channel m in
  map_system_at m path (fun sys -> S.set_param sys ch.S.blk_name "Capacity" (B.P_int 0))

(* --- rule-by-rule: mutant fires, original stays silent -------------- *)

let uml_mutation_tests =
  let positive code mutate =
    test (code ^ " fires on its mutant") (fun () ->
        fires code (A.Lint.check_uml (mutate (crane ()))))
  in
  [
    positive "UF001" mut_undeclared_operation;
    positive "UF001" mut_unknown_callee;
    positive "UF002" mut_unconsumed_set;
    positive "UF003" mut_unproduced_get;
    positive "UF004" mut_io_misuse;
    positive "UF004" mut_io_read_no_result;
    positive "UF005" mut_undeployed_thread;
    positive "UF005" mut_node_without_saengine;
    test "UML rules silent on the clean crane model" (fun () ->
        silent_on "crane (uml)" (A.Lint.check_uml (crane ())));
    test "UF002 severity is warning, UF001 error" (fun () ->
        let ds = A.Lint.check_uml (mut_unconsumed_set (crane ())) in
        check Alcotest.bool "warning" true (D.errors ds = [] && D.warnings ds <> []);
        let ds = A.Lint.check_uml (mut_undeclared_operation (crane ())) in
        check Alcotest.bool "error" true (D.errors ds <> []));
  ]

let caam_mutation_tests =
  let positive code mutate =
    test (code ^ " fires on its mutant") (fun () ->
        fires code (A.Lint.check_caam (mutate (crane_caam ()))))
  in
  [
    positive "UF101" mut_dangle_port;
    positive "UF101" mut_unconnected_sink;
    positive "UF102" mut_unconnected_source;
    positive "UF103" mut_duplicate_name;
    positive "UF104" mut_flip_protocol;
    positive "UF105" mut_strip_cpu_role;
    positive "UF106" mut_channel_fanout;
    positive "UF202" mut_drop_unit_delay;
    positive "UF203" mut_zero_capacity;
    test "UF190 fires when the mutant cannot be flattened" (fun () ->
        fires "UF190" (A.Lint.check_caam (mut_unflattenable (crane_caam ()))));
    test "CAAM rules silent on the clean crane CAAM" (fun () ->
        silent_on "crane (caam)" (A.Lint.check_caam (crane_caam ())));
    test "UF102/UF203 are warnings, UF104 an error" (fun () ->
        let ds = A.Lint.check_caam (mut_unconnected_source (crane_caam ())) in
        check Alcotest.bool "UF102 warning" true (D.errors ds = []);
        let ds = A.Lint.check_caam (mut_zero_capacity (crane_caam ())) in
        check Alcotest.bool "UF203 warning" true (D.errors ds = []);
        let ds = A.Lint.check_caam (mut_flip_protocol (crane_caam ())) in
        check Alcotest.bool "UF104 error" true (D.errors ds <> []));
  ]

(* --- SDF rules: repetition vector and deadlock ---------------------- *)

let crane_sdf () = Sdf.of_model (crane_caam ())

let delay_actor sdf =
  List.find
    (fun (a : Sdf.actor) -> a.Sdf.actor_block.S.blk_type = B.Unit_delay)
    sdf.Sdf.actors

let sdf_tests =
  [
    test "repetition vector of a single-rate graph is all ones" (fun () ->
        let sdf = crane_sdf () in
        match A.Sdf_rules.repetition_vector sdf with
        | Ok counts ->
            check Alcotest.int "actors" (List.length sdf.Sdf.actors) (List.length counts);
            List.iter (fun (_, n) -> check Alcotest.int "count" 1 n) counts
        | Error _ -> Alcotest.fail "expected a repetition vector");
    test "UF201 fires on inconsistent rates around a cycle" (fun () ->
        let sdf = crane_sdf () in
        let delay = delay_actor sdf in
        let rates (e : Sdf.edge) =
          if String.equal e.Sdf.edge_src delay.Sdf.actor_name then (2, 1) else (1, 1)
        in
        match A.Sdf_rules.repetition_vector ~rates sdf with
        | Error ds -> fires "UF201" ds
        | Ok _ -> Alcotest.fail "expected inconsistent balance equations");
    test "consistent multirate graph scales to smallest integers" (fun () ->
        (* downsampler: b consumes 2 tokens per firing, so a fires twice *)
        let root = S.empty "m" in
        let root = S.add_block root B.Constant "a" in
        let root = S.add_block ~params:[ ("Port", B.P_int 1) ] root B.Outport "b" in
        let root = S.add_line root ~src:{ S.block = "a"; port = 1 } ~dst:{ S.block = "b"; port = 1 } in
        let sdf = Sdf.of_model (Model.make ~name:"m" root) in
        let rates _ = (1, 2) in
        match A.Sdf_rules.repetition_vector ~rates sdf with
        | Ok counts ->
            check Alcotest.(list (pair string int)) "vector"
              [ ("a", 2); ("b", 1) ]
              (List.sort compare counts)
        | Error _ -> Alcotest.fail "expected a repetition vector");
    test "UF202 names the zero-delay cycle" (fun () ->
        let ds = A.Lint.check_caam (mut_drop_unit_delay (crane_caam ())) in
        match List.filter (fun (d : D.t) -> String.equal d.D.code "UF202") ds with
        | d :: _ ->
            check Alcotest.bool "cycle named" true (contains d.D.message "->")
        | [] -> Alcotest.fail "expected UF202");
    test "buffer bounds: one slot per forward channel on crane" (fun () ->
        let sdf = crane_sdf () in
        let bounds = A.Sdf_rules.buffer_bounds sdf in
        check Alcotest.bool "has channels" true (bounds <> []);
        List.iter (fun (_, b) -> check Alcotest.bool "1 or 2 slots" true (b >= 1 && b <= 2)) bounds);
  ]

(* --- the synthesizer invariant: Flow output is always lint-clean ---- *)

let qcheck_flow_lint_clean =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"flow emits a lint-clean CAAM for 100 random workloads" ~count:100
       (QCheck.make
          ~print:(fun (wide, seed, a, b) ->
            Printf.sprintf "(%s, seed %d, %d, %d)"
              (if wide then "wide" else "pipeline")
              seed a b)
          QCheck.Gen.(quad bool (0 -- 1000) (2 -- 6) (0 -- 3)))
       (fun (wide, seed, a, b) ->
         let uml =
           if wide then CS.Random_models.wide ~seed ~branches:(1 + b) ~depth:(a - 1)
           else CS.Random_models.pipeline ~seed ~threads:a ~extra_edges:b
         in
         let out = Core.Flow.run uml in
         A.Lint.check ~uml out.Core.Flow.caam = []))

(* --- every bundled case study is lint-clean ------------------------- *)

let case_study_tests =
  let clean name model =
    test (name ^ " case study is lint-clean") (fun () ->
        let uml = model () in
        let out = Core.Flow.run uml in
        silent_on name (A.Lint.check ~uml out.Core.Flow.caam))
  in
  [
    clean "didactic" CS.Didactic.model;
    clean "crane" CS.Crane_system.model;
    clean "synthetic" CS.Synthetic_system.model;
    clean "elevator" CS.Elevator_system.model;
    clean "mjpeg" CS.Mjpeg_system.model;
  ]

(* --- the Flow gate phase -------------------------------------------- *)

let gate_tests =
  [
    test "gate passes on a clean model" (fun () ->
        ignore (Core.Flow.run ~gate:`Warnings (crane ())));
    test "gate rejects a lint error" (fun () ->
        match Core.Flow.run ~gate:`Errors (mut_node_without_saengine (crane ())) with
        | exception Invalid_argument msg ->
            check Alcotest.bool "names the gate" true (contains msg "lint gate failed");
            check Alcotest.bool "names the rule" true (contains msg "UF005")
        | _ -> Alcotest.fail "expected the gate to fail the run");
    test "gate with `Errors lets warnings through, `Warnings does not" (fun () ->
        let uml = mut_io_read_no_result (crane ()) in
        ignore (Core.Flow.run ~gate:`Errors uml);
        match Core.Flow.run ~gate:`Warnings uml with
        | exception Invalid_argument msg ->
            check Alcotest.bool "names UF004" true (contains msg "UF004")
        | _ -> Alcotest.fail "expected --deny warnings semantics to fail the run");
  ]

(* --- per-rule counters in the metrics registry ---------------------- *)

let counter_value name =
  match
    List.find_opt
      (fun (s : Obs.Metrics.stat) -> String.equal s.Obs.Metrics.s_name name)
      (Obs.Metrics.snapshot ())
  with
  | Some s -> s.Obs.Metrics.s_count
  | None -> 0

let metrics_tests =
  [
    test "lint bumps per-rule counters" (fun () ->
        let before = counter_value "lint.UF104" in
        let runs_before = counter_value "lint.runs" in
        ignore (A.Lint.check_caam (mut_flip_protocol (crane_caam ())));
        check Alcotest.bool "lint.UF104 counted" true (counter_value "lint.UF104" > before);
        check Alcotest.bool "lint.runs counted" true (counter_value "lint.runs" > runs_before));
  ]

(* --- golden files: report rendering pinned byte-for-byte ------------ *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let golden name content =
  check Alcotest.string name (read_file (Filename.concat "golden" name)) content

(* A deterministic multi-defect mutant exercising every report shape:
   errors, warnings, hints, and both renderers. *)
let defect_report () =
  let uml = mut_undeployed_thread (crane ()) in
  let caam = mut_unconnected_sink (mut_zero_capacity (mut_flip_protocol (crane_caam ()))) in
  A.Lint.check ~uml caam

let golden_tests =
  let clean_case name model =
    [
      test (name ^ " lint text report matches golden") (fun () ->
          let uml = model () in
          let ds = A.Lint.check ~uml (Core.Flow.run uml).Core.Flow.caam in
          golden (name ^ ".lint.txt") (D.render ds));
      test (name ^ " lint JSON report matches golden") (fun () ->
          let uml = model () in
          let ds = A.Lint.check ~uml (Core.Flow.run uml).Core.Flow.caam in
          golden (name ^ ".lint.json")
            (Obs.Json.to_string (D.list_to_json ~file:name ds) ^ "\n"));
    ]
  in
  clean_case "crane" CS.Crane_system.model
  @ clean_case "synthetic" CS.Synthetic_system.model
  @ [
      test "seeded-defect text report matches golden" (fun () ->
          golden "crane_defects.lint.txt" (D.render (defect_report ())));
      test "seeded-defect JSON report matches golden" (fun () ->
          golden "crane_defects.lint.json"
            (Obs.Json.to_string (D.list_to_json ~file:"crane_defects" (defect_report ()))
            ^ "\n"));
    ]

(* --- the CLI: lint/stats flag handling and exit codes ---------------- *)

let exe = Filename.concat ".." (Filename.concat "bin" "umlfront.exe")

let run_cli args =
  let out = Filename.temp_file "umlfront_cli" ".out" in
  let err = Filename.temp_file "umlfront_cli" ".err" in
  let code = Sys.command (Printf.sprintf "%s %s >%s 2>%s" exe args out err) in
  let slurp f =
    let s = read_file f in
    Sys.remove f;
    s
  in
  (code, slurp out, slurp err)

let save_model uml =
  let file = Filename.temp_file "umlfront_lint" ".xml" in
  U.Xmi.save uml file;
  file

let cli_tests =
  [
    test "lint: clean model exits 0" (fun () ->
        let file = save_model (crane ()) in
        let code, out, _ = run_cli ("lint " ^ Filename.quote file) in
        Sys.remove file;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "reports clean" true (contains out "clean"));
    test "lint: error model exits 1 and names the rule" (fun () ->
        let file = save_model (mut_node_without_saengine (crane ())) in
        let code, out, _ = run_cli ("lint " ^ Filename.quote file) in
        Sys.remove file;
        check Alcotest.int "exit" 1 code;
        check Alcotest.bool "names UF005" true (contains out "UF005"));
    test "lint: --deny warnings promotes warnings to failure" (fun () ->
        let file = save_model (mut_io_read_no_result (crane ())) in
        let lax, out, _ = run_cli ("lint " ^ Filename.quote file) in
        let strict, _, _ = run_cli ("lint --deny warnings " ^ Filename.quote file) in
        Sys.remove file;
        check Alcotest.int "without --deny" 0 lax;
        check Alcotest.bool "names UF004" true (contains out "UF004");
        check Alcotest.int "with --deny warnings" 1 strict);
    test "lint: --format json emits one object per file" (fun () ->
        let file = save_model (crane ()) in
        let code, out, _ = run_cli ("lint --format json " ^ Filename.quote file) in
        Sys.remove file;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "is a json list" true (String.length out > 0 && out.[0] = '[');
        check Alcotest.bool "has errors field" true (contains out "\"errors\":0"));
    test "lint and stats reject unknown flags the same way (exit 124)" (fun () ->
        let lint_code, _, lint_err = run_cli "lint --no-such-flag model.xml" in
        let stats_code, _, stats_err = run_cli "stats --no-such-flag model.xml" in
        check Alcotest.int "lint exit" 124 lint_code;
        check Alcotest.int "stats exit" 124 stats_code;
        check Alcotest.bool "lint message" true (contains lint_err "unknown option");
        check Alcotest.bool "stats message" true (contains stats_err "unknown option"));
    test "global --profile without an argument exits 124 with a hint" (fun () ->
        let code, _, err = run_cli "lint --profile" in
        check Alcotest.int "exit" 124 code;
        check Alcotest.bool "message" true (contains err "needs an argument");
        check Alcotest.bool "help pointer" true (contains err "--help"));
    test "lint: no models and no --rules is an error" (fun () ->
        let code, _, err = run_cli "lint" in
        check Alcotest.int "exit" 124 code;
        check Alcotest.bool "message" true (contains err "no MODEL.xml"));
    test "lint: --rules prints the catalog" (fun () ->
        let code, out, _ = run_cli "lint --rules" in
        check Alcotest.int "exit" 0 code;
        List.iter
          (fun (c, _, _) -> check Alcotest.bool c true (contains out c))
          A.Lint.rules);
  ]

let suite =
  [
    ("analysis: uml mutations", uml_mutation_tests);
    ("analysis: caam mutations", caam_mutation_tests);
    ("analysis: sdf rules", sdf_tests);
    ("analysis: case studies", case_study_tests @ [ qcheck_flow_lint_clean ]);
    ("analysis: flow gate", gate_tests);
    ("analysis: metrics", metrics_tests);
    ("analysis: golden reports", golden_tests);
    ("analysis: cli", cli_tests);
  ]
