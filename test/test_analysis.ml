(* The static-analysis subsystem, exercised the adversarial way: for
   every lint rule, a seeded-defect ("mutation") helper injects exactly
   one defect into a clean case-study model and the rule must fire on
   the mutant while the whole catalog stays silent on the original.
   Plus: a qcheck property that the synthesizer only ever emits
   lint-clean CAAMs, golden-file tests pinning the text/JSON report
   formats byte-for-byte, and CLI tests driving the installed binary
   through the lint/stats failure paths. *)

module U = Umlfront_uml
module A = Umlfront_analysis
module D = Umlfront_analysis.Diagnostic
module Core = Umlfront_core
module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Caam = Umlfront_simulink.Caam
module Model = Umlfront_simulink.Model
module Sdf = Umlfront_dataflow.Sdf
module CS = Umlfront_casestudies
module Obs = Umlfront_obs

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let contains = Astring_contains.contains

(* The seeded-defect mutation helpers (and the crane accessors) live in
   the shared lint_mutants library so golden_gen.exe can use them too. *)
open Lint_mutants

let codes ds = List.sort_uniq String.compare (List.map (fun (d : D.t) -> d.D.code) ds)
let fires code ds = check Alcotest.bool (code ^ " fires") true (List.mem code (codes ds))

let silent_on name ds =
  check Alcotest.(list string) (name ^ " is lint-clean") [] (codes ds)

(* --- rule-by-rule: mutant fires, original stays silent -------------- *)

let uml_mutation_tests =
  let positive code mutate =
    test (code ^ " fires on its mutant") (fun () ->
        fires code (A.Lint.check_uml (mutate (crane ()))))
  in
  [
    positive "UF001" mut_undeclared_operation;
    positive "UF001" mut_unknown_callee;
    positive "UF002" mut_unconsumed_set;
    positive "UF003" mut_unproduced_get;
    positive "UF004" mut_io_misuse;
    positive "UF004" mut_io_read_no_result;
    positive "UF005" mut_undeployed_thread;
    positive "UF005" mut_node_without_saengine;
    test "UML rules silent on the clean crane model" (fun () ->
        silent_on "crane (uml)" (A.Lint.check_uml (crane ())));
    test "UF002 severity is warning, UF001 error" (fun () ->
        let ds = A.Lint.check_uml (mut_unconsumed_set (crane ())) in
        check Alcotest.bool "warning" true (D.errors ds = [] && D.warnings ds <> []);
        let ds = A.Lint.check_uml (mut_undeclared_operation (crane ())) in
        check Alcotest.bool "error" true (D.errors ds <> []));
  ]

let caam_mutation_tests =
  let positive code mutate =
    test (code ^ " fires on its mutant") (fun () ->
        fires code (A.Lint.check_caam (mutate (crane_caam ()))))
  in
  [
    positive "UF101" mut_dangle_port;
    positive "UF101" mut_unconnected_sink;
    positive "UF102" mut_unconnected_source;
    positive "UF103" mut_duplicate_name;
    positive "UF104" mut_flip_protocol;
    positive "UF105" mut_strip_cpu_role;
    positive "UF106" mut_channel_fanout;
    positive "UF202" mut_drop_unit_delay;
    positive "UF203" mut_zero_capacity;
    test "UF190 fires when the mutant cannot be flattened" (fun () ->
        fires "UF190" (A.Lint.check_caam (mut_unflattenable (crane_caam ()))));
    test "CAAM rules silent on the clean crane CAAM" (fun () ->
        silent_on "crane (caam)" (A.Lint.check_caam (crane_caam ())));
    test "UF102/UF203 are warnings, UF104 an error" (fun () ->
        let ds = A.Lint.check_caam (mut_unconnected_source (crane_caam ())) in
        check Alcotest.bool "UF102 warning" true (D.errors ds = []);
        let ds = A.Lint.check_caam (mut_zero_capacity (crane_caam ())) in
        check Alcotest.bool "UF203 warning" true (D.errors ds = []);
        let ds = A.Lint.check_caam (mut_flip_protocol (crane_caam ())) in
        check Alcotest.bool "UF104 error" true (D.errors ds <> []));
  ]

(* --- SDF rules: repetition vector and deadlock ---------------------- *)

let crane_sdf () = Sdf.of_model (crane_caam ())

let delay_actor sdf =
  List.find
    (fun (a : Sdf.actor) -> a.Sdf.actor_block.S.blk_type = B.Unit_delay)
    sdf.Sdf.actors

let sdf_tests =
  [
    test "repetition vector of a single-rate graph is all ones" (fun () ->
        let sdf = crane_sdf () in
        match A.Sdf_rules.repetition_vector sdf with
        | Ok counts ->
            check Alcotest.int "actors" (List.length sdf.Sdf.actors) (List.length counts);
            List.iter (fun (_, n) -> check Alcotest.int "count" 1 n) counts
        | Error _ -> Alcotest.fail "expected a repetition vector");
    test "UF201 fires on inconsistent rates around a cycle" (fun () ->
        let sdf = crane_sdf () in
        let delay = delay_actor sdf in
        let rates (e : Sdf.edge) =
          if String.equal e.Sdf.edge_src delay.Sdf.actor_name then (2, 1) else (1, 1)
        in
        match A.Sdf_rules.repetition_vector ~rates sdf with
        | Error ds -> fires "UF201" ds
        | Ok _ -> Alcotest.fail "expected inconsistent balance equations");
    test "consistent multirate graph scales to smallest integers" (fun () ->
        (* downsampler: b consumes 2 tokens per firing, so a fires twice *)
        let root = S.empty "m" in
        let root = S.add_block root B.Constant "a" in
        let root = S.add_block ~params:[ ("Port", B.P_int 1) ] root B.Outport "b" in
        let root = S.add_line root ~src:{ S.block = "a"; port = 1 } ~dst:{ S.block = "b"; port = 1 } in
        let sdf = Sdf.of_model (Model.make ~name:"m" root) in
        let rates _ = (1, 2) in
        match A.Sdf_rules.repetition_vector ~rates sdf with
        | Ok counts ->
            check Alcotest.(list (pair string int)) "vector"
              [ ("a", 2); ("b", 1) ]
              (List.sort compare counts)
        | Error _ -> Alcotest.fail "expected a repetition vector");
    test "UF202 names the zero-delay cycle" (fun () ->
        let ds = A.Lint.check_caam (mut_drop_unit_delay (crane_caam ())) in
        match List.filter (fun (d : D.t) -> String.equal d.D.code "UF202") ds with
        | d :: _ ->
            check Alcotest.bool "cycle named" true (contains d.D.message "->")
        | [] -> Alcotest.fail "expected UF202");
    test "buffer bounds: one slot per forward channel on crane" (fun () ->
        let sdf = crane_sdf () in
        let bounds = A.Sdf_rules.buffer_bounds sdf in
        check Alcotest.bool "has channels" true (bounds <> []);
        List.iter (fun (_, b) -> check Alcotest.bool "1 or 2 slots" true (b >= 1 && b <= 2)) bounds);
  ]

(* --- the synthesizer invariant: Flow output is always lint-clean ---- *)

let qcheck_flow_lint_clean =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"flow emits a lint-clean CAAM for 100 random workloads" ~count:100
       (QCheck.make
          ~print:(fun (wide, seed, a, b) ->
            Printf.sprintf "(%s, seed %d, %d, %d)"
              (if wide then "wide" else "pipeline")
              seed a b)
          QCheck.Gen.(quad bool (0 -- 1000) (2 -- 6) (0 -- 3)))
       (fun (wide, seed, a, b) ->
         let uml =
           if wide then CS.Random_models.wide ~seed ~branches:(1 + b) ~depth:(a - 1)
           else CS.Random_models.pipeline ~seed ~threads:a ~extra_edges:b
         in
         let out = Core.Flow.run uml in
         A.Lint.check ~uml out.Core.Flow.caam = []))

(* --- every bundled case study is lint-clean ------------------------- *)

let case_study_tests =
  let clean name model =
    test (name ^ " case study is lint-clean") (fun () ->
        let uml = model () in
        let out = Core.Flow.run uml in
        silent_on name (A.Lint.check ~uml out.Core.Flow.caam))
  in
  [
    clean "didactic" CS.Didactic.model;
    clean "crane" CS.Crane_system.model;
    clean "synthetic" CS.Synthetic_system.model;
    clean "elevator" CS.Elevator_system.model;
    clean "mjpeg" CS.Mjpeg_system.model;
  ]

(* --- the Flow gate phase -------------------------------------------- *)

let gate_tests =
  [
    test "gate passes on a clean model" (fun () ->
        ignore (Core.Flow.run ~gate:`Warnings (crane ())));
    test "gate rejects a lint error" (fun () ->
        match Core.Flow.run ~gate:`Errors (mut_node_without_saengine (crane ())) with
        | exception Invalid_argument msg ->
            check Alcotest.bool "names the gate" true (contains msg "lint gate failed");
            check Alcotest.bool "names the rule" true (contains msg "UF005")
        | _ -> Alcotest.fail "expected the gate to fail the run");
    test "gate with `Errors lets warnings through, `Warnings does not" (fun () ->
        let uml = mut_io_read_no_result (crane ()) in
        ignore (Core.Flow.run ~gate:`Errors uml);
        match Core.Flow.run ~gate:`Warnings uml with
        | exception Invalid_argument msg ->
            check Alcotest.bool "names UF004" true (contains msg "UF004")
        | _ -> Alcotest.fail "expected --deny warnings semantics to fail the run");
  ]

(* --- per-rule counters in the metrics registry ---------------------- *)

let counter_value name =
  match
    List.find_opt
      (fun (s : Obs.Metrics.stat) -> String.equal s.Obs.Metrics.s_name name)
      (Obs.Metrics.snapshot ())
  with
  | Some s -> s.Obs.Metrics.s_count
  | None -> 0

let metrics_tests =
  [
    test "lint bumps per-rule counters" (fun () ->
        let before = counter_value "lint.UF104" in
        let runs_before = counter_value "lint.runs" in
        ignore (A.Lint.check_caam (mut_flip_protocol (crane_caam ())));
        check Alcotest.bool "lint.UF104 counted" true (counter_value "lint.UF104" > before);
        check Alcotest.bool "lint.runs counted" true (counter_value "lint.runs" > runs_before));
  ]

(* --- golden files: promoted via dune (action (diff ...)) ------------ *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* The byte-for-byte pinning itself moved to dune rules: test/dune
   regenerates every report with golden_gen.exe and (diff)s it against
   test/golden/, so an accepted format change is a `dune promote`, not
   a hand edit.  What stays here: the generator must know exactly the
   files dune pins (no orphaned goldens), and a stale golden must
   actually differ from fresh output so the diff has teeth. *)
let golden_tests =
  [
    test "every committed golden file has a generator (and vice versa)" (fun () ->
        let committed =
          Sys.readdir "golden" |> Array.to_list |> List.sort String.compare
        in
        check
          Alcotest.(list string)
          "golden_gen covers golden/"
          (List.sort String.compare Lint_mutants.golden_names)
          committed);
    test "golden reports are deterministic" (fun () ->
        List.iter
          (fun name ->
            check Alcotest.string name
              (Lint_mutants.render_golden name)
              (Lint_mutants.render_golden name))
          Lint_mutants.golden_names);
    test "a stale golden fails the comparison" (fun () ->
        (* Simulate drift: a tampered copy of each committed golden must
           differ from the freshly rendered report, which is precisely
           what makes the dune diff rules fail on staleness. *)
        List.iter
          (fun name ->
            let fresh = Lint_mutants.render_golden name in
            let committed = read_file (Filename.concat "golden" name) in
            check Alcotest.string (name ^ " is current") committed fresh;
            let tampered = committed ^ "tampered\n" in
            check Alcotest.bool
              (name ^ " tampering detected")
              false
              (String.equal fresh tampered))
          Lint_mutants.golden_names);
  ]

(* --- the CLI: lint/stats flag handling and exit codes ---------------- *)

let exe = Filename.concat ".." (Filename.concat "bin" "umlfront.exe")

let run_cli args =
  let out = Filename.temp_file "umlfront_cli" ".out" in
  let err = Filename.temp_file "umlfront_cli" ".err" in
  let code = Sys.command (Printf.sprintf "%s %s >%s 2>%s" exe args out err) in
  let slurp f =
    let s = read_file f in
    Sys.remove f;
    s
  in
  (code, slurp out, slurp err)

let save_model uml =
  let file = Filename.temp_file "umlfront_lint" ".xml" in
  U.Xmi.save uml file;
  file

let cli_tests =
  [
    test "lint: clean model exits 0" (fun () ->
        let file = save_model (crane ()) in
        let code, out, _ = run_cli ("lint " ^ Filename.quote file) in
        Sys.remove file;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "reports clean" true (contains out "clean"));
    test "lint: error model exits 1 and names the rule" (fun () ->
        let file = save_model (mut_node_without_saengine (crane ())) in
        let code, out, _ = run_cli ("lint " ^ Filename.quote file) in
        Sys.remove file;
        check Alcotest.int "exit" 1 code;
        check Alcotest.bool "names UF005" true (contains out "UF005"));
    test "lint: --deny warnings promotes warnings to failure" (fun () ->
        let file = save_model (mut_io_read_no_result (crane ())) in
        let lax, out, _ = run_cli ("lint " ^ Filename.quote file) in
        let strict, _, _ = run_cli ("lint --deny warnings " ^ Filename.quote file) in
        Sys.remove file;
        check Alcotest.int "without --deny" 0 lax;
        check Alcotest.bool "names UF004" true (contains out "UF004");
        check Alcotest.int "with --deny warnings" 1 strict);
    test "lint: --format json emits one object per file" (fun () ->
        let file = save_model (crane ()) in
        let code, out, _ = run_cli ("lint --format json " ^ Filename.quote file) in
        Sys.remove file;
        check Alcotest.int "exit" 0 code;
        check Alcotest.bool "is a json list" true (String.length out > 0 && out.[0] = '[');
        check Alcotest.bool "has errors field" true (contains out "\"errors\":0"));
    test "lint and stats reject unknown flags the same way (exit 124)" (fun () ->
        let lint_code, _, lint_err = run_cli "lint --no-such-flag model.xml" in
        let stats_code, _, stats_err = run_cli "stats --no-such-flag model.xml" in
        check Alcotest.int "lint exit" 124 lint_code;
        check Alcotest.int "stats exit" 124 stats_code;
        check Alcotest.bool "lint message" true (contains lint_err "unknown option");
        check Alcotest.bool "stats message" true (contains stats_err "unknown option"));
    test "global --profile without an argument exits 124 with a hint" (fun () ->
        let code, _, err = run_cli "lint --profile" in
        check Alcotest.int "exit" 124 code;
        check Alcotest.bool "message" true (contains err "needs an argument");
        check Alcotest.bool "help pointer" true (contains err "--help"));
    test "lint: no models and no --rules is an error" (fun () ->
        let code, _, err = run_cli "lint" in
        check Alcotest.int "exit" 124 code;
        check Alcotest.bool "message" true (contains err "no MODEL.xml"));
    test "lint: --rules prints the catalog" (fun () ->
        let code, out, _ = run_cli "lint --rules" in
        check Alcotest.int "exit" 0 code;
        List.iter
          (fun (c, _, _) -> check Alcotest.bool c true (contains out c))
          A.Lint.rules);
  ]

let suite =
  [
    ("analysis: uml mutations", uml_mutation_tests);
    ("analysis: caam mutations", caam_mutation_tests);
    ("analysis: sdf rules", sdf_tests);
    ("analysis: case studies", case_study_tests @ [ qcheck_flow_lint_clean ]);
    ("analysis: flow gate", gate_tests);
    ("analysis: metrics", metrics_tests);
    ("analysis: golden reports", golden_tests);
    ("analysis: cli", cli_tests);
  ]
