module Gen_threads = Umlfront_codegen.Gen_threads
module Gen_java = Umlfront_codegen.Gen_java
module Fifo = Umlfront_codegen.Fifo_runtime
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module Core = Umlfront_core
module U = Umlfront_uml

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let contains = Astring_contains.contains

(* A UML model whose CAAM has env input, env output, an inter-CPU and an
   intra-CPU FIFO, an S-function, a Product and a feedback delay. *)
let pipeline_uml () =
  let b = U.Builder.create "pipe" in
  U.Builder.thread b "Tin";
  U.Builder.thread b "Tmid";
  U.Builder.thread b "Tout";
  U.Builder.platform b "P";
  U.Builder.io_device b "IO";
  U.Builder.passive_object b ~cls:"Stage" "stage";
  U.Builder.cpu b "CPU1";
  U.Builder.cpu b "CPU2";
  U.Builder.allocate b ~thread:"Tin" ~cpu:"CPU1";
  U.Builder.allocate b ~thread:"Tmid" ~cpu:"CPU1";
  U.Builder.allocate b ~thread:"Tout" ~cpu:"CPU2";
  let arg = U.Sequence.arg in
  let f = U.Datatype.D_float in
  U.Builder.call b ~from:"Tin" ~target:"IO" "getIn" ~result:(arg "x" f);
  U.Builder.call b ~from:"Tin" ~target:"stage" "prep" ~args:[ arg "x" f ]
    ~result:(arg "p" f);
  U.Builder.call b ~from:"Tin" ~target:"Tmid" "SetP" ~args:[ arg "p" f ];
  (* feedback inside Tmid: u depends on itself through sub/gain *)
  U.Builder.call b ~from:"Tmid" ~target:"P" "sub" ~args:[ arg "p" f; arg "u" f ]
    ~result:(arg "e" f);
  U.Builder.call b ~from:"Tmid" ~target:"P" "gain" ~args:[ arg "e" f ]
    ~result:(arg "u" f);
  U.Builder.call b ~from:"Tmid" ~target:"Tout" "SetU" ~args:[ arg "u" f ];
  U.Builder.call b ~from:"Tout" ~target:"P" "mult" ~args:[ arg "u" f; arg "u" f ]
    ~result:(arg "y" f);
  U.Builder.call b ~from:"Tout" ~target:"IO" "setOut" ~args:[ arg "y" f ];
  U.Builder.finish b

let pipeline_caam () =
  (Core.Flow.run ~strategy:Core.Flow.Use_deployment (pipeline_uml ())).Core.Flow.caam

let generated () = Gen_threads.generate ~rounds:6 (pipeline_caam ())

let write_files dir files =
  List.iter
    (fun (name, content) ->
      let oc = open_out (Filename.concat dir name) in
      output_string oc content;
      close_out oc)
    files

let temp_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

let read_lines cmd =
  let ic = Unix.open_process_in cmd in
  let rec loop acc =
    match input_line ic with line -> loop (line :: acc) | exception End_of_file -> acc
  in
  let lines = List.rev (loop []) in
  ignore (Unix.close_process_in ic);
  lines

let structure_tests =
  [
    test "sanitize produces identifiers" (fun () ->
        check Alcotest.string "slashes" "CPU1_T1_calc" (Gen_threads.sanitize "CPU1/T1/calc");
        check Alcotest.string "leading digit" "x1abc" (Gen_threads.sanitize "1abc"));
    test "one thread function per Thread-SS" (fun () ->
        let { Gen_threads.files } = generated () in
        let model_c = List.assoc "model.c" files in
        check Alcotest.bool "Tin" true (contains model_c "run_CPU1_Tin");
        check Alcotest.bool "Tmid" true (contains model_c "run_CPU1_Tmid");
        check Alcotest.bool "Tout" true (contains model_c "run_CPU2_Tout"));
    test "fifo protocols preserved in init calls" (fun () ->
        let { Gen_threads.files } = generated () in
        let model_c = List.assoc "model.c" files in
        check Alcotest.bool "swfifo" true (contains model_c "swfifo_init");
        check Alcotest.bool "gfifo" true (contains model_c "gfifo_init"));
    test "delay state is static with initial condition" (fun () ->
        let { Gen_threads.files } = generated () in
        let model_c = List.assoc "model.c" files in
        check Alcotest.bool "state var" true (contains model_c "static double state_"));
    test "sfunctions header declares user hooks" (fun () ->
        let { Gen_threads.files } = generated () in
        let h = List.assoc "sfunctions.h" files in
        check Alcotest.bool "prep" true (contains h "void sfun_prep"));
    test "channel Depth parameter reaches the fifo init" (fun () ->
        let module Model = Umlfront_simulink.Model in
        let module S = Umlfront_simulink.System in
        let module B = Umlfront_simulink.Block in
        let caam = pipeline_caam () in
        let root =
          S.map_systems
            (fun _ sys ->
              List.fold_left
                (fun sys (b : S.block) ->
                  if b.S.blk_type = B.Channel then
                    S.set_param sys b.S.blk_name "Depth" (B.P_int 8)
                  else sys)
                sys (S.blocks sys))
            caam.Model.root
        in
        let deepened = Model.make ~name:caam.Model.model_name root in
        let { Gen_threads.files } = Gen_threads.generate ~rounds:4 deepened in
        let model_c = List.assoc "model.c" files in
        check Alcotest.bool "depth 8" true (contains model_c ", 8);"));
    test "fifo runtime shipped" (fun () ->
        let { Gen_threads.files } = generated () in
        check Alcotest.bool "header" true (List.mem_assoc "fifo.h" files);
        check Alcotest.bool "source" true (List.mem_assoc "fifo.c" files));
  ]

let compile_tests =
  [
    test "generated C compiles and matches the OCaml simulator" (fun () ->
        let caam = pipeline_caam () in
        let dir = temp_dir "umlfront_c" in
        write_files dir (Gen_threads.generate ~rounds:6 caam).Gen_threads.files;
        let bin = Filename.concat dir "model" in
        let cmd =
          Printf.sprintf
            "gcc -pthread -o %s %s/model.c %s/sfunctions.c %s/fifo.c -lm 2>&1" bin dir dir
            dir
        in
        check Alcotest.int "gcc exit 0" 0 (Sys.command cmd);
        let lines = read_lines (bin ^ " 2>/dev/null") in
        check Alcotest.int "6 output lines" 6 (List.length lines);
        (* Compare against the reference SDF executor sample by sample. *)
        let sdf = Sdf.of_model caam in
        let reference = Exec.run ~rounds:6 sdf in
        let trace = snd (List.hd reference.Exec.traces) in
        List.iteri
          (fun i line ->
            match String.split_on_char ' ' line with
            | [ _port; round; value ] ->
                check Alcotest.int "round" i (int_of_string round);
                check (Alcotest.float 1e-6) "value" trace.(i) (float_of_string value)
            | _ -> Alcotest.fail ("bad output line: " ^ line))
          lines);
    test "colliding block paths disambiguate and still compile" (fun () ->
        (* sanitize is lossy: "sub.x" and "sub_x" in the same thread map
           to the same C identifier.  The namer must give one of them a
           _2 suffix and the result must stay compilable and correct. *)
        let module Model = Umlfront_simulink.Model in
        let module S = Umlfront_simulink.System in
        let rename old_name new_name sys =
          let fix (p : S.port_ref) =
            if String.equal p.S.block old_name then { p with S.block = new_name } else p
          in
          {
            sys with
            S.sys_blocks =
              List.map
                (fun (b : S.block) ->
                  if String.equal b.S.blk_name old_name then { b with S.blk_name = new_name }
                  else b)
                sys.S.sys_blocks;
            S.sys_lines =
              List.map
                (fun (l : S.line) -> { S.src = fix l.S.src; S.dst = fix l.S.dst })
                sys.S.sys_lines;
          }
        in
        let caam = pipeline_caam () in
        let root =
          S.map_systems
            (fun path sys ->
              if path = [ "CPU1"; "Tmid" ] then rename "gain" "sub.x" (rename "sub" "sub_x" sys)
              else sys)
            caam.Model.root
        in
        let colliding = Model.make ~name:caam.Model.model_name root in
        let { Gen_threads.files } = Gen_threads.generate ~rounds:6 colliding in
        let model_c = List.assoc "model.c" files in
        check Alcotest.bool "base ident used" true (contains model_c "v_CPU1_Tmid_sub_x_1");
        check Alcotest.bool "collision suffixed" true (contains model_c "v_CPU1_Tmid_sub_x_2_1");
        let dir = temp_dir "umlfront_collide" in
        write_files dir files;
        let bin = Filename.concat dir "model" in
        let cmd =
          Printf.sprintf
            "gcc -pthread -o %s %s/model.c %s/sfunctions.c %s/fifo.c -lm 2>&1" bin dir dir
            dir
        in
        check Alcotest.int "gcc exit 0" 0 (Sys.command cmd);
        (* Behaviour is untouched by the renaming: diff against the SDF
           executor on the same colliding model. *)
        let reference = Exec.run ~rounds:6 (Sdf.of_model colliding) in
        let trace = snd (List.hd reference.Exec.traces) in
        let lines = read_lines (bin ^ " 2>/dev/null") in
        check Alcotest.int "6 output lines" 6 (List.length lines);
        List.iteri
          (fun i line ->
            match String.split_on_char ' ' line with
            | [ _port; _round; value ] ->
                check (Alcotest.float 1e-6) "value" trace.(i) (float_of_string value)
            | _ -> Alcotest.fail ("bad output line: " ^ line))
          lines);
    test "generated Java compiles under javac" (fun () ->
        if Sys.command "which javac >/dev/null 2>&1" <> 0 then ()
        else begin
          let caam = pipeline_caam () in
          let dir = temp_dir "umlfront_java" in
          let oc = open_out (Filename.concat dir "Pipe.java") in
          output_string oc (Gen_java.generate ~rounds:4 ~class_name:"Pipe" caam);
          close_out oc;
          check Alcotest.int "javac exit 0" 0
            (Sys.command (Printf.sprintf "javac -d %s %s/Pipe.java 2>&1" dir dir))
        end);
    test "java source is generated with queues and workers" (fun () ->
        let caam = pipeline_caam () in
        let java = Gen_java.generate ~rounds:6 ~class_name:"Pipe" caam in
        check Alcotest.bool "class" true (contains java "public final class Pipe");
        check Alcotest.bool "queue" true (contains java "ArrayBlockingQueue<Double>");
        check Alcotest.bool "worker" true (contains java "run_CPU1_Tmid");
        check Alcotest.bool "join" true (contains java "w.join()"));
  ]

let suite =
  [ ("codegen:structure", structure_tests); ("codegen:compile", compile_tests) ]
