(* Substring search helper shared by test modules. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else
    let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
    at 0

(* First index of [needle] in [haystack], or -1. *)
let find haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then 0
  else
    let rec at i =
      if i + n > h then -1
      else if String.sub haystack i n = needle then i
      else at (i + 1)
    in
    at 0

(* Non-overlapping occurrences of [needle]. *)
let count haystack needle =
  let n = String.length needle in
  if n = 0 then 0
  else
    let rec go i acc =
      let j = find (String.sub haystack i (String.length haystack - i)) needle in
      if j < 0 then acc else go (i + j + n) (acc + 1)
    in
    go 0 0
