module B = Umlfront_simulink.Block
module S = Umlfront_simulink.System
module Model = Umlfront_simulink.Model
module Caam = Umlfront_simulink.Caam
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module Timing = Umlfront_dataflow.Timing
module Kpn = Umlfront_dataflow.Kpn

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let pr block port = { S.block; S.port }

(* top: Const(3) -> sub[ gain*2 ] -> Gain*10 -> Out *)
let nested_pipeline () =
  let inner = S.empty "sub" in
  let inner = S.add_block ~params:[ ("Port", B.P_int 1) ] inner B.Inport "In1" in
  let inner = S.add_block ~params:[ ("Gain", B.P_float 2.0) ] inner B.Gain "g2" in
  let inner = S.add_block ~params:[ ("Port", B.P_int 1) ] inner B.Outport "Out1" in
  let inner = S.add_line inner ~src:(pr "In1" 1) ~dst:(pr "g2" 1) in
  let inner = S.add_line inner ~src:(pr "g2" 1) ~dst:(pr "Out1" 1) in
  let root = S.empty "m" in
  let root = S.add_block ~params:[ ("Value", B.P_float 3.0) ] root B.Constant "c" in
  let root = S.add_block ~system:inner root B.Subsystem "sub" in
  let root = S.add_block ~params:[ ("Gain", B.P_float 10.0) ] root B.Gain "g10" in
  let root = S.add_block ~params:[ ("Port", B.P_int 1) ] root B.Outport "out" in
  let root = S.add_line root ~src:(pr "c" 1) ~dst:(pr "sub" 1) in
  let root = S.add_line root ~src:(pr "sub" 1) ~dst:(pr "g10" 1) in
  let root = S.add_line root ~src:(pr "g10" 1) ~dst:(pr "out" 1) in
  Model.make ~name:"m" root

(* Accumulator: delay feeds a sum with constant 1; classic counter. *)
let counter ?(with_delay = true) () =
  let root = S.empty "m" in
  let root = S.add_block ~params:[ ("Value", B.P_float 1.0) ] root B.Constant "one" in
  let root = S.add_block ~params:[ ("Inputs", B.P_string "++") ] root B.Sum "acc" in
  let root = S.add_block ~params:[ ("Port", B.P_int 1) ] root B.Outport "out" in
  let root = S.add_line root ~src:(pr "one" 1) ~dst:(pr "acc" 1) in
  let root =
    if with_delay then (
      let root =
        S.add_block ~params:[ ("InitialCondition", B.P_float 0.0) ] root B.Unit_delay "z"
      in
      let root = S.add_line root ~src:(pr "acc" 1) ~dst:(pr "z" 1) in
      S.add_line root ~src:(pr "z" 1) ~dst:(pr "acc" 2))
    else
      (* direct feedback: zero-delay cycle *)
      let root = S.add_block ~params:[ ("Gain", B.P_float 1.0) ] root B.Gain "idg" in
      let root = S.add_line root ~src:(pr "acc" 1) ~dst:(pr "idg" 1) in
      S.add_line root ~src:(pr "idg" 1) ~dst:(pr "acc" 2)
  in
  let root = S.add_line root ~src:(pr "acc" 1) ~dst:(pr "out" 1) in
  Model.make ~name:"counter" root

let sdf_tests =
  [
    test "flattening dissolves subsystem boundaries" (fun () ->
        let sdf = Sdf.of_model (nested_pipeline ()) in
        let names = List.map (fun (a : Sdf.actor) -> a.Sdf.actor_name) sdf.Sdf.actors in
        check Alcotest.(list string) "actors" [ "c"; "g10"; "out"; "sub/g2" ]
          (List.sort compare names);
        check Alcotest.int "edges" 3 (List.length sdf.Sdf.edges));
    test "edge endpoints are leaves" (fun () ->
        let sdf = Sdf.of_model (nested_pipeline ()) in
        check Alcotest.bool "c feeds g2" true
          (List.exists
             (fun (e : Sdf.edge) -> e.Sdf.edge_src = "c" && e.Sdf.edge_dst = "sub/g2")
             sdf.Sdf.edges));
    test "graph outputs found" (fun () ->
        let sdf = Sdf.of_model (nested_pipeline ()) in
        check Alcotest.(list string) "outs" [ "out" ] sdf.Sdf.graph_outputs);
    test "channels recorded on crossing edges" (fun () ->
        let m = Test_simulink.sample_caam () in
        let sdf = Sdf.of_model m in
        let crossing =
          List.find
            (fun (e : Sdf.edge) -> e.Sdf.edge_channels <> [])
            sdf.Sdf.edges
        in
        check Alcotest.(list (pair string string)) "swfifo" [ ("ch1", "SWFIFO") ]
          crossing.Sdf.edge_channels);
    test "cpu and thread of actor" (fun () ->
        let m = Test_simulink.sample_caam () in
        let sdf = Sdf.of_model m in
        let a = Option.get (Sdf.find_actor sdf "CPU1/T1/c") in
        check Alcotest.(option string) "cpu" (Some "CPU1") (Sdf.cpu_of_actor a);
        check Alcotest.(option string) "thread" (Some "T1") (Sdf.thread_of_actor a));
    test "to_taskgraph drops delay out-edges" (fun () ->
        let sdf = Sdf.of_model (counter ()) in
        let g = Sdf.to_taskgraph sdf in
        check Alcotest.bool "acyclic" true (Umlfront_taskgraph.Algo.is_acyclic g));
    test "destinations_of_line traces through hierarchy" (fun () ->
        let m = nested_pipeline () in
        let line = List.hd (S.lines m.Model.root) in
        check Alcotest.(list (pair string int)) "dests" [ ("sub/g2", 1) ]
          (Sdf.destinations_of_line m ~path:[] line));
  ]

let exec_tests =
  [
    test "pipeline computes 3*2*10" (fun () ->
        let sdf = Sdf.of_model (nested_pipeline ()) in
        let outcome = Exec.run ~rounds:3 sdf in
        match List.assoc_opt "out" outcome.Exec.traces with
        | Some samples -> Array.iter (fun v -> check (Alcotest.float 1e-9) "60" 60.0 v) samples
        | None -> Alcotest.fail "no trace");
    test "counter counts with unit delay" (fun () ->
        let sdf = Sdf.of_model (counter ()) in
        let outcome = Exec.run ~rounds:5 sdf in
        match List.assoc_opt "out" outcome.Exec.traces with
        | Some samples ->
            check
              Alcotest.(array (float 1e-9))
              "1..5"
              [| 1.0; 2.0; 3.0; 4.0; 5.0 |]
              samples
        | None -> Alcotest.fail "no trace");
    test "zero-delay cycle deadlocks" (fun () ->
        let sdf = Sdf.of_model (counter ~with_delay:false ()) in
        match Exec.firing_order sdf with
        | exception Exec.Deadlock cycle ->
            check Alcotest.bool "mentions acc" true (List.mem "acc" cycle)
        | _ -> Alcotest.fail "expected Deadlock");
    test "every actor fires once per round" (fun () ->
        let sdf = Sdf.of_model (counter ()) in
        let outcome = Exec.run ~rounds:7 sdf in
        List.iter (fun (_, n) -> check Alcotest.int "7" 7 n) outcome.Exec.firings);
    test "sum signs" (fun () ->
        let root = S.empty "m" in
        let root = S.add_block ~params:[ ("Value", B.P_float 10.0) ] root B.Constant "a" in
        let root = S.add_block ~params:[ ("Value", B.P_float 4.0) ] root B.Constant "b" in
        let root = S.add_block ~params:[ ("Inputs", B.P_string "+-") ] root B.Sum "s" in
        let root = S.add_block ~params:[ ("Port", B.P_int 1) ] root B.Outport "out" in
        let root = S.add_line root ~src:(pr "a" 1) ~dst:(pr "s" 1) in
        let root = S.add_line root ~src:(pr "b" 1) ~dst:(pr "s" 2) in
        let root = S.add_line root ~src:(pr "s" 1) ~dst:(pr "out" 1) in
        let sdf = Sdf.of_model (Model.make ~name:"m" root) in
        let outcome = Exec.run ~rounds:1 sdf in
        check (Alcotest.float 1e-9) "6" 6.0 (List.assoc "out" outcome.Exec.traces).(0));
    test "saturation clamps" (fun () ->
        let root = S.empty "m" in
        let root = S.add_block ~params:[ ("Value", B.P_float 9.0) ] root B.Constant "c" in
        let root =
          S.add_block
            ~params:[ ("UpperLimit", B.P_float 2.0); ("LowerLimit", B.P_float (-2.0)) ]
            root B.Saturation "sat"
        in
        let root = S.add_block ~params:[ ("Port", B.P_int 1) ] root B.Outport "out" in
        let root = S.add_line root ~src:(pr "c" 1) ~dst:(pr "sat" 1) in
        let root = S.add_line root ~src:(pr "sat" 1) ~dst:(pr "out" 1) in
        let outcome = Exec.run ~rounds:1 (Sdf.of_model (Model.make ~name:"m" root)) in
        check (Alcotest.float 1e-9) "2" 2.0 (List.assoc "out" outcome.Exec.traces).(0));
    test "default s-function deterministic" (fun () ->
        let a = Exec.default_sfunction "calc" [| 1.0; 2.0 |] 2 in
        let b = Exec.default_sfunction "calc" [| 1.0; 2.0 |] 2 in
        check Alcotest.(array (float 1e-12)) "same" a b;
        check Alcotest.bool "ports differ" true (a.(0) <> a.(1)));
    test "custom s-function override used" (fun () ->
        let root = S.empty "m" in
        let root =
          S.add_block
            ~params:
              [
                ("FunctionName", B.P_string "boost");
                ("Inputs", B.P_int 0);
                ("Outputs", B.P_int 1);
              ]
            root B.S_function "sf"
        in
        let root = S.add_block ~params:[ ("Port", B.P_int 1) ] root B.Outport "out" in
        let root = S.add_line root ~src:(pr "sf" 1) ~dst:(pr "out" 1) in
        let sdf = Sdf.of_model (Model.make ~name:"m" root) in
        let outcome =
          Exec.run
            ~sfunctions:(fun name ->
              if name = "boost" then Some (fun _ -> [| 42.0 |]) else None)
            ~rounds:1 sdf
        in
        check (Alcotest.float 1e-9) "42" 42.0 (List.assoc "out" outcome.Exec.traces).(0));
    test "stimulus drives top inports" (fun () ->
        let root = S.empty "m" in
        let root = S.add_block ~params:[ ("Port", B.P_int 1) ] root B.Inport "sig" in
        let root = S.add_block ~params:[ ("Port", B.P_int 1) ] root B.Outport "out" in
        let root = S.add_line root ~src:(pr "sig" 1) ~dst:(pr "out" 1) in
        let sdf = Sdf.of_model (Model.make ~name:"m" root) in
        let outcome = Exec.run ~stimulus:(fun _ r -> float_of_int r) ~rounds:3 sdf in
        check
          Alcotest.(array (float 1e-9))
          "identity" [| 0.0; 1.0; 2.0 |]
          (List.assoc "out" outcome.Exec.traces));
  ]

let timing_tests =
  [
    test "single chain timing" (fun () ->
        (* CAAM with const->channel->sink across threads: both actors on
           CPU1, SWFIFO latency charged once. *)
        let m = Test_simulink.sample_caam () in
        let r = Timing.evaluate (Sdf.of_model m) in
        check Alcotest.int "intra" 1 r.Timing.intra_tokens;
        check Alcotest.int "inter" 0 r.Timing.inter_tokens;
        (* const at 0-1, comm 2, sink 3-4 on the same cpu *)
        check (Alcotest.float 1e-9) "makespan" 4.0 r.Timing.makespan;
        check (Alcotest.float 1e-9) "sequential" 2.0 r.Timing.sequential);
    test "custom cost model respected" (fun () ->
        let m = Test_simulink.sample_caam () in
        let model =
          {
            Timing.default_actor_cost = 1.0;
            wire_cost = 0.0;
            swfifo_cost = 100.0;
            gfifo_cost = 200.0;
            bus_serialized = true;
          }
        in
        let r = Timing.evaluate ~model (Sdf.of_model m) in
        check (Alcotest.float 1e-9) "comm cost" 100.0 r.Timing.comm_cost);
    test "cpu busy accounts every actor" (fun () ->
        let m = Test_simulink.sample_caam () in
        let r = Timing.evaluate (Sdf.of_model m) in
        check Alcotest.(list (pair string (float 1e-9))) "busy" [ ("CPU1", 2.0) ]
          r.Timing.cpu_busy);
  ]

let bus_tests =
  [
    test "bus contention serializes inter-CPU transfers" (fun () ->
        (* Two producer threads on CPU1/CPU2 both feed CPU3 over the
           bus: with contention the second transfer waits. *)
        let caam =
          let thread name blocks =
            List.fold_left (fun sys f -> f sys) (S.empty name) blocks
          in
          let producer name =
            thread name
              [
                (fun sys -> S.add_block ~params:[ ("Value", B.P_float 1.0) ] sys B.Constant "c");
                (fun sys -> S.add_block ~params:[ ("Port", B.P_int 1) ] sys B.Outport "Out1");
                (fun sys -> S.add_line sys ~src:(pr "c" 1) ~dst:(pr "Out1" 1));
              ]
          in
          let consumer =
            thread "T3"
              [
                (fun sys -> S.add_block ~params:[ ("Port", B.P_int 1) ] sys B.Inport "In1");
                (fun sys -> S.add_block ~params:[ ("Port", B.P_int 2) ] sys B.Inport "In2");
                (fun sys -> S.add_block ~params:[ ("Inputs", B.P_string "++") ] sys B.Sum "s");
                (fun sys -> S.add_block sys B.Terminator "t");
                (fun sys -> S.add_line sys ~src:(pr "In1" 1) ~dst:(pr "s" 1));
                (fun sys -> S.add_line sys ~src:(pr "In2" 1) ~dst:(pr "s" 2));
                (fun sys -> S.add_line sys ~src:(pr "s" 1) ~dst:(pr "t" 1));
              ]
          in
          let cpu name inner boundary =
            let sys = S.empty name in
            let sys = boundary sys in
            let sys = S.add_block ~system:inner sys B.Subsystem inner.S.sys_name in
            let sys = Caam.mark sys inner.S.sys_name Caam.Thread in
            sys
          in
          let cpu1 =
            let sys = cpu "CPU1" (producer "T1") Fun.id in
            let sys = S.add_block ~params:[ ("Port", B.P_int 1) ] sys B.Outport "Out1" in
            S.add_line sys ~src:(pr "T1" 1) ~dst:(pr "Out1" 1)
          in
          let cpu2 =
            let sys = cpu "CPU2" (producer "T2") Fun.id in
            let sys = S.add_block ~params:[ ("Port", B.P_int 1) ] sys B.Outport "Out1" in
            S.add_line sys ~src:(pr "T2" 1) ~dst:(pr "Out1" 1)
          in
          let cpu3 =
            let sys = cpu "CPU3" consumer Fun.id in
            let sys = S.add_block ~params:[ ("Port", B.P_int 1) ] sys B.Inport "In1" in
            let sys = S.add_block ~params:[ ("Port", B.P_int 2) ] sys B.Inport "In2" in
            let sys = S.add_line sys ~src:(pr "In1" 1) ~dst:(pr "T3" 1) in
            S.add_line sys ~src:(pr "In2" 1) ~dst:(pr "T3" 2)
          in
          let top = S.empty "bus" in
          let top = S.add_block ~system:cpu1 top B.Subsystem "CPU1" in
          let top = Caam.mark top "CPU1" Caam.Cpu in
          let top = S.add_block ~system:cpu2 top B.Subsystem "CPU2" in
          let top = Caam.mark top "CPU2" Caam.Cpu in
          let top = S.add_block ~system:cpu3 top B.Subsystem "CPU3" in
          let top = Caam.mark top "CPU3" Caam.Cpu in
          let splice top src dst_port name =
            let top =
              S.add_block
                ~params:
                  [ (Caam.protocol_param, B.P_string "GFIFO");
                    (Caam.role_param, B.P_string "comm") ]
                top B.Channel name
            in
            let top = S.add_line top ~src ~dst:(pr name 1) in
            S.add_line top ~src:(pr name 1) ~dst:{ S.block = "CPU3"; S.port = dst_port }
          in
          let top = splice top (pr "CPU1" 1) 1 "ch1" in
          let top = splice top (pr "CPU2" 1) 2 "ch2" in
          Model.make ~name:"bus" top
        in
        let sdf = Sdf.of_model caam in
        let contended = Timing.evaluate sdf in
        let free =
          Timing.evaluate
            ~model:{ Timing.default_cost_model with Timing.bus_serialized = false }
            sdf
        in
        (* two 10-cost transfers: serialized they take 20 on the bus *)
        check (Alcotest.float 1e-9) "bus busy" 20.0 contended.Timing.bus_busy;
        check Alcotest.bool "contention delays the consumer" true
          (contended.Timing.makespan > free.Timing.makespan +. 1e-9));
  ]

let kpn_tests =
  [
    test "producer/consumer" (fun () ->
        let outcome =
          Kpn.run
            [
              ("p", Kpn.producer ~out:"ch" [ 1.0; 2.0; 3.0 ]);
              ("c", Kpn.consumer ~inp:"ch" ~n:3);
            ]
        in
        check Alcotest.(option (float 1e-9)) "sum" (Some 6.0)
          (List.assoc_opt "c" outcome.Kpn.results);
        check Alcotest.(list (pair string int)) "drained" [] outcome.Kpn.channel_residue);
    test "map stage" (fun () ->
        let outcome =
          Kpn.run
            [
              ("p", Kpn.producer ~out:"a" [ 1.0; 2.0 ]);
              ("m", Kpn.map1 ~inp:"a" ~out:"b" ~n:2 (fun x -> x *. 10.0));
              ("c", Kpn.consumer ~inp:"b" ~n:2);
            ]
        in
        check Alcotest.(option (float 1e-9)) "sum" (Some 30.0)
          (List.assoc_opt "c" outcome.Kpn.results));
    test "zip_with joins two streams" (fun () ->
        let outcome =
          Kpn.run
            [
              ("p1", Kpn.producer ~out:"a" [ 1.0; 2.0 ]);
              ("p2", Kpn.producer ~out:"b" [ 10.0; 20.0 ]);
              ("z", Kpn.zip_with ~in1:"a" ~in2:"b" ~out:"c" ~n:2 ( +. ));
              ("c", Kpn.consumer ~inp:"c" ~n:2);
            ]
        in
        check Alcotest.(option (float 1e-9)) "sum" (Some 33.0)
          (List.assoc_opt "c" outcome.Kpn.results));
    test "deadlock detected" (fun () ->
        match Kpn.run [ ("starved", Kpn.consumer ~inp:"never" ~n:1) ] with
        | exception Kpn.Deadlock [ "starved" ] -> ()
        | exception Kpn.Deadlock _ -> Alcotest.fail "wrong processes"
        | _ -> Alcotest.fail "expected Deadlock");
    test "deadlock victims reported in sorted order" (fun () ->
        (* Three starved consumers, registered in reverse-alphabetical
           order: the blocked-process list must come back sorted, not in
           registration (or scheduling) order. *)
        let starving name = (name, Kpn.consumer ~inp:("never_" ^ name) ~n:1) in
        match Kpn.run [ starving "zeta"; starving "mid"; starving "alpha" ] with
        | exception Kpn.Deadlock victims ->
            check
              Alcotest.(list string)
              "sorted" [ "alpha"; "mid"; "zeta" ] victims
        | _ -> Alcotest.fail "expected Deadlock");
    test "bounded channels block writers (artificial deadlock)" (fun () ->
        (* With capacity 1 the producer cannot place its second token
           and nobody ever drains the channel. *)
        let stuck = Kpn.producer ~out:"narrow" [ 1.0; 2.0 ] in
        (match Kpn.run ~capacity:1 [ ("p", stuck) ] with
        | exception Kpn.Deadlock [ "p" ] -> ()
        | exception Kpn.Deadlock _ -> Alcotest.fail "wrong victim"
        | _ -> Alcotest.fail "expected Deadlock");
        (* The same network with enough capacity terminates. *)
        let outcome = Kpn.run ~capacity:2 [ ("p", Kpn.producer ~out:"narrow" [ 1.0; 2.0 ]) ] in
        check Alcotest.int "steps" 2 outcome.Kpn.steps);
    test "capacity 1 pipeline still flows" (fun () ->
        let outcome =
          Kpn.run ~capacity:1
            [
              ("p", Kpn.producer ~out:"a" [ 1.0; 2.0; 3.0 ]);
              ("m", Kpn.map1 ~inp:"a" ~out:"b" ~n:3 (fun x -> x +. 10.0));
              ("c", Kpn.consumer ~inp:"b" ~n:3);
            ]
        in
        check Alcotest.(option (float 1e-9)) "sum" (Some 36.0)
          (List.assoc_opt "c" outcome.Kpn.results));
    test "fuel exhausts on livelock" (fun () ->
        let rec ping () = Kpn.Write ("loop", 0.0, fun () -> drain ())
        and drain () = Kpn.Read ("loop", fun _ -> ping ()) in
        match Kpn.run ~fuel:100 [ ("spinner", ping ()) ] with
        | exception Kpn.Out_of_fuel -> ()
        | _ -> Alcotest.fail "expected Out_of_fuel");
    test "of_sdf matches the SDF executor" (fun () ->
        let m = counter () in
        let sdf = Sdf.of_model m in
        let rounds = 5 in
        let reference = Exec.run ~rounds sdf in
        let network = Kpn.of_sdf ~rounds sdf in
        let outcome = Kpn.run network in
        (* The sink process result is the last sample of the trace. *)
        let expected = (List.assoc "out" reference.Exec.traces).(rounds - 1) in
        check Alcotest.(option (float 1e-9)) "last sample" (Some expected)
          (List.assoc_opt "out" outcome.Kpn.results));
    test "of_sdf runs a cyclic CAAM thanks to delay priming" (fun () ->
        let sdf = Sdf.of_model (counter ()) in
        let outcome = Kpn.run (Kpn.of_sdf ~rounds:4 sdf) in
        check Alcotest.bool "completed" true (outcome.Kpn.steps > 0));
  ]

let suite =
  [
    ("dataflow:sdf", sdf_tests);
    ("dataflow:exec", exec_tests);
    ("dataflow:timing", timing_tests);
    ("dataflow:bus", bus_tests);
    ("dataflow:kpn", kpn_tests);
  ]
