(* Umlfront_obs: span nesting, metrics/histogram percentiles, and the
   Chrome trace-event JSON shape. *)

module Obs = Umlfront_obs
module Json = Umlfront_obs.Json
module Metrics = Umlfront_obs.Metrics
module Trace = Umlfront_obs.Trace

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let feq = Alcotest.float 1e-6

(* --- JSON serializer ------------------------------------------------ *)

let contains = Astring_contains.contains

let json_escaping () =
  check Alcotest.string "escapes" "{\"a\\\"b\":\"x\\ny\\tz\\\\\"}"
    (Json.to_string (Json.Obj [ ("a\"b", Json.String "x\ny\tz\\") ]));
  check Alcotest.string "scalars" "[null,true,42,-1,1.500000]"
    (Json.to_string
       (Json.List [ Json.Null; Json.Bool true; Json.Int 42; Json.Int (-1); Json.Float 1.5 ]));
  check Alcotest.string "integral floats printed as integers" "[3,null]"
    (Json.to_string (Json.List [ Json.Float 3.0; Json.Float Float.nan ]))

(* --- JSON parser ----------------------------------------------------- *)

let json_parse_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\"b\n\t\\");
        ("n", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool false);
        ("z", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Obj [ ("k", Json.String "v") ] ]);
      ]
  in
  (match Json.parse (Json.to_string doc) with
  | Ok v -> check Alcotest.string "serializer output parses back" (Json.to_string doc) (Json.to_string v)
  | Error e -> Alcotest.fail e);
  (match Json.parse "  { \"a\" : [ 1 , 2.5 , 1e2 , true ] } " with
  | Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float f1; Json.Float f2; Json.Bool true ]) ]) ->
      check feq "fraction" 2.5 f1;
      check feq "exponent" 100.0 f2
  | Ok v -> Alcotest.failf "unexpected shape: %s" (Json.to_string v)
  | Error e -> Alcotest.fail e);
  match Json.parse "\"A\\u0041B\"" with
  | Ok (Json.String s) -> check Alcotest.string "ascii \\u escape decoded" "AAB" s
  | _ -> Alcotest.fail "unicode escape did not parse"

let json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok v -> Alcotest.failf "%S should not parse, got %s" s (Json.to_string v)
      | Error e ->
          check Alcotest.bool (s ^ " error carries an offset") true (contains e "offset"))
    [ "{"; "[1,]"; "tru"; "1 x"; "\"unterminated"; ""; "{\"a\" 1}" ]

(* --- metrics registry ------------------------------------------------ *)

let fresh () = Metrics.create ()

let counters_and_gauges () =
  let r = fresh () in
  Metrics.incr ~registry:r "a";
  Metrics.incr ~registry:r ~by:4 "a";
  Metrics.set_gauge ~registry:r "g" 2.5;
  Metrics.set_gauge ~registry:r "g" 7.25;
  match Metrics.snapshot ~registry:r () with
  | [ a; g ] ->
      check Alcotest.string "counter name" "a" a.Metrics.s_name;
      check Alcotest.int "counter value" 5 a.Metrics.s_count;
      check Alcotest.string "gauge name" "g" g.Metrics.s_name;
      check feq "gauge keeps last value" 7.25 g.Metrics.s_value
  | l -> Alcotest.failf "expected 2 stats, got %d" (List.length l)

let histogram_percentiles () =
  let r = fresh () in
  (* 1..100 shuffled deterministically: percentiles must not depend on
     arrival order. *)
  List.iter
    (fun i -> Metrics.observe ~registry:r "h" (float_of_int (((i * 37) mod 100) + 1)))
    (List.init 100 (fun i -> i));
  match Metrics.snapshot ~registry:r () with
  | [ h ] ->
      check Alcotest.int "count" 100 h.Metrics.s_count;
      check feq "mean" 50.5 h.Metrics.s_value;
      check feq "min" 1.0 h.Metrics.s_min;
      check feq "max" 100.0 h.Metrics.s_max;
      check feq "p50" 50.5 h.Metrics.s_p50;
      check feq "p95" 95.05 h.Metrics.s_p95;
      check feq "p99" 99.01 h.Metrics.s_p99
  | l -> Alcotest.failf "expected 1 stat, got %d" (List.length l)

let percentile_edge_cases () =
  check feq "single sample" 7.0 (Metrics.percentile [| 7.0 |] 99.0);
  check feq "p0 is min" 1.0 (Metrics.percentile [| 1.0; 2.0; 3.0 |] 0.0);
  check feq "p100 is max" 3.0 (Metrics.percentile [| 1.0; 2.0; 3.0 |] 100.0);
  check feq "interpolates" 1.5 (Metrics.percentile [| 1.0; 2.0 |] 50.0);
  check Alcotest.bool "empty is nan" true (Float.is_nan (Metrics.percentile [||] 50.0))

(* Tiny sample counts and out-of-range ranks, pinned: the quantile code
   must clamp rather than index out of bounds or return garbage. *)
let percentile_tiny_counts_pinned () =
  let pins ~name ~values (p50, p95, p99) =
    let r = fresh () in
    List.iter (Metrics.observe ~registry:r "h") values;
    match Metrics.snapshot ~registry:r () with
    | [ h ] ->
        check feq (name ^ " p50") p50 h.Metrics.s_p50;
        check feq (name ^ " p95") p95 h.Metrics.s_p95;
        check feq (name ^ " p99") p99 h.Metrics.s_p99
    | l -> Alcotest.failf "expected 1 stat, got %d" (List.length l)
  in
  pins ~name:"one sample" ~values:[ 7.0 ] (7.0, 7.0, 7.0);
  pins ~name:"two samples" ~values:[ 3.0; 1.0 ] (2.0, 2.9, 2.98);
  pins ~name:"three samples" ~values:[ 2.0; 3.0; 1.0 ] (2.0, 2.9, 2.98);
  (* Rank clamping: out-of-range p must clamp to min/max, a NaN rank
     falls back to the median. *)
  check feq "p>100 clamps to max" 3.0 (Metrics.percentile [| 1.0; 2.0; 3.0 |] 150.0);
  check feq "p<0 clamps to min" 1.0 (Metrics.percentile [| 1.0; 2.0; 3.0 |] (-5.0));
  check feq "nan rank falls back to median" 2.0
    (Metrics.percentile [| 1.0; 2.0; 3.0 |] Float.nan)

let kind_mismatch () =
  let r = fresh () in
  Metrics.incr ~registry:r "x";
  Alcotest.check_raises "gauge on counter"
    (Invalid_argument "metrics: x is not a gauge") (fun () ->
      Metrics.set_gauge ~registry:r "x" 1.0)

(* --- spans ----------------------------------------------------------- *)

let span_nesting () =
  Trace.enable ();
  let r =
    Trace.with_span "outer" (fun () ->
        check Alcotest.int "depth inside outer" 1 (Trace.depth ());
        Trace.with_span "inner" (fun () ->
            check Alcotest.int "depth inside inner" 2 (Trace.depth ());
            17))
  in
  check Alcotest.int "return value" 17 r;
  check Alcotest.int "depth restored" 0 (Trace.depth ());
  let events = Trace.events () in
  check Alcotest.int "two complete events" 2 (List.length events);
  let find name = List.find (fun e -> e.Trace.ev_name = name) events in
  let outer = find "outer" and inner = find "inner" in
  check Alcotest.bool "inner starts after outer" true (inner.Trace.ev_ts >= outer.Trace.ev_ts);
  check Alcotest.bool "inner contained in outer" true
    (inner.Trace.ev_ts +. inner.Trace.ev_dur
    <= outer.Trace.ev_ts +. outer.Trace.ev_dur +. 1e-6);
  check Alcotest.bool "alloc arg recorded" true
    (List.mem_assoc "alloc_bytes" outer.Trace.ev_args);
  Trace.disable ()

let span_exception_safety () =
  Trace.enable ();
  (try Trace.with_span "boom" (fun () -> failwith "kaput") with Failure _ -> ());
  check Alcotest.int "depth restored after raise" 0 (Trace.depth ());
  let events = Trace.events () in
  check Alcotest.int "span still recorded" 1 (List.length events);
  check Alcotest.bool "error arg set" true
    (List.mem_assoc "error" (List.hd events).Trace.ev_args);
  Trace.disable ()

let disabled_sink_records_nothing () =
  Trace.disable ();
  Trace.reset ();
  Trace.with_span "ghost" (fun () -> Trace.instant "ghost-instant");
  check Alcotest.int "no events when disabled" 0 (List.length (Trace.events ()))

(* A flow phase that raises mid-pipeline must leave the trace sink
   well-formed: no dangling span depth, the raising span recorded with
   its error argument (the Fun.protect in Trace.with_span), and the
   journal still holding the phase-start entries. *)
let raising_flow_phase_is_exception_safe () =
  Trace.enable ();
  Obs.Journal.reset ();
  (match Umlfront_core.Flow.run (Lint_mutants.mut_unknown_callee (Lint_mutants.crane ())) with
  | _ -> Alcotest.fail "a model with an unknown callee must be rejected"
  | exception Invalid_argument _ -> ());
  check Alcotest.int "depth restored after raising phase" 0 (Trace.depth ());
  let errored =
    List.filter (fun e -> List.mem_assoc "error" e.Trace.ev_args) (Trace.events ())
  in
  check Alcotest.bool "raising phase recorded with an error arg" true (errored <> []);
  check Alcotest.bool "phase starts journaled up to the failure" true
    (Obs.Journal.filter ~kind:"flow" (Obs.Journal.entries ()) <> []);
  Trace.disable ()

(* --- Chrome trace JSON shape ----------------------------------------- *)

let chrome_trace_shape () =
  Trace.enable ();
  Trace.with_span ~cat:"flow" "phase" (fun () -> Trace.instant "tick");
  let r = fresh () in
  Metrics.incr ~registry:r "n";
  Metrics.observe ~registry:r "h" 1.0;
  let doc = Trace.to_json ~metrics:(Metrics.snapshot ~registry:r ()) () in
  Trace.disable ();
  let events = Json.items (Option.get (Json.member "traceEvents" doc)) in
  check Alcotest.int "two trace events" 2 (List.length events);
  let phases =
    List.filter_map
      (fun e -> match Json.member "ph" e with Some (Json.String s) -> Some s | _ -> None)
      events
  in
  check Alcotest.bool "has complete + instant phases" true
    (List.mem "X" phases && List.mem "i" phases);
  List.iter
    (fun e ->
      List.iter
        (fun key ->
          check Alcotest.bool (key ^ " present") true (Json.member key e <> None))
        [ "name"; "cat"; "ph"; "ts"; "pid"; "tid" ])
    events;
  (match Json.member "otherData" doc with
  | Some other ->
      let metrics = Json.items (Option.get (Json.member "metrics" other)) in
      check Alcotest.int "metrics snapshot embedded" 2 (List.length metrics);
      List.iter
        (fun m ->
          match Json.member "kind" m with
          | Some (Json.String ("counter" | "gauge" | "histogram")) -> ()
          | _ -> Alcotest.fail "metric kind missing")
        metrics
  | None -> Alcotest.fail "otherData missing");
  (* ts must be sorted ascending, as Perfetto expects for X events. *)
  let ts =
    List.filter_map
      (fun e -> match Json.member "ts" e with Some (Json.Float t) -> Some t | _ -> None)
      events
  in
  check Alcotest.bool "timestamps sorted" true (List.sort Float.compare ts = ts)

let events_api_logs_and_traces () =
  Trace.enable ();
  Obs.Events.emit ~fields:[ ("k", Json.Int 3) ] "something.happened";
  let events = Trace.events () in
  check Alcotest.int "instant event recorded" 1 (List.length events);
  check Alcotest.string "event name" "something.happened" (List.hd events).Trace.ev_name;
  Trace.disable ()

let metrics_table_renders () =
  let r = fresh () in
  Metrics.incr ~registry:r ~by:3 "flow.runs";
  Metrics.observe ~registry:r "lat" 1.0;
  Metrics.observe ~registry:r "lat" 3.0;
  let table = Metrics.table (Metrics.snapshot ~registry:r ()) in
  check Alcotest.bool "has counter row" true (Astring_contains.contains table "flow.runs");
  check Alcotest.bool "has histogram row" true (Astring_contains.contains table "histogram")

(* --- OpenMetrics exposition ------------------------------------------ *)

let openmetrics_rendering () =
  let r = fresh () in
  Metrics.incr ~registry:r ~by:5 "flow.runs";
  Metrics.set_gauge ~registry:r "queue len" 2.5;
  Metrics.observe ~registry:r "lat" 1.0;
  Metrics.observe ~registry:r "lat" 3.0;
  let out = Obs.Openmetrics.render (Metrics.snapshot ~registry:r ()) in
  check Alcotest.bool "counter TYPE line" true
    (contains out "# TYPE umlfront_flow_runs counter");
  check Alcotest.bool "counter sample has _total suffix" true
    (contains out "umlfront_flow_runs_total 5\n");
  check Alcotest.bool "gauge sanitizes spaces" true
    (contains out "umlfront_queue_len 2.5\n");
  check Alcotest.bool "histogram is a summary" true
    (contains out "# TYPE umlfront_lat summary");
  check Alcotest.bool "median quantile series" true
    (contains out "umlfront_lat{quantile=\"0.5\"} 2\n");
  check Alcotest.bool "summary count" true (contains out "umlfront_lat_count 2\n");
  check Alcotest.bool "sum is mean times count" true (contains out "umlfront_lat_sum 4\n");
  check Alcotest.bool "ends with EOF marker" true
    (String.length out >= 6 && String.sub out (String.length out - 6) 6 = "# EOF\n")

let openmetrics_labels () =
  let lab = Obs.Openmetrics.labeled in
  check Alcotest.string "no labels is the bare name" "serve.requests"
    (lab "serve.requests" []);
  check Alcotest.string "label block" "serve.requests{endpoint=\"/api/lint\",status=\"200\"}"
    (lab "serve.requests" [ ("endpoint", "/api/lint"); ("status", "200") ]);
  let r = fresh () in
  Metrics.incr ~registry:r ~by:5 "serve.requests";
  Metrics.incr ~registry:r ~by:3
    (lab "serve.requests" [ ("endpoint", "/api/lint"); ("status", "200") ]);
  Metrics.set_gauge ~registry:r (lab "serve.g" [ ("path", "a\\b\"c\nd") ]) 1.0;
  let out = Obs.Openmetrics.render (Metrics.snapshot ~registry:r ()) in
  check Alcotest.bool "family TYPE line emitted once" true
    (contains out "# TYPE umlfront_serve_requests counter"
    && not
         (contains out
            "# TYPE umlfront_serve_requests counter\n\
             umlfront_serve_requests_total 5\n\
             # TYPE"));
  check Alcotest.bool "_total lands before the label block" true
    (contains out "umlfront_serve_requests_total{endpoint=\"/api/lint\",status=\"200\"} 3\n");
  check Alcotest.bool "unlabeled line unchanged next to labeled ones" true
    (contains out "umlfront_serve_requests_total 5\n");
  check Alcotest.bool "label values escape backslash, quote, newline" true
    (contains out "umlfront_serve_g{path=\"a\\\\b\\\"c\\nd\"} 1\n")

(* --- rolling window -------------------------------------------------- *)

(* Deterministic rotation and expiry under an injected clock: data can
   only ever disappear by being outside the queried window or by being
   overwritten a full lap later — never by clock motion alone. *)
let window_rotation_and_expiry () =
  let now = ref 0.5 in
  let w = Obs.Window.create ~clock:(fun () -> !now) ~bucket_s:1.0 ~buckets:4 () in
  check feq "bucket_s" 1.0 (Obs.Window.bucket_s w);
  check Alcotest.int "buckets" 4 (Obs.Window.buckets w);
  check feq "max window" 4.0 (Obs.Window.max_window_s w);
  Obs.Window.add w "req";
  now := 1.5;
  Obs.Window.add ~by:2 w "req";
  Obs.Window.observe w "lat" 100.0;
  Obs.Window.observe w "lat" 300.0;
  check Alcotest.int "4s window sums both buckets" 3
    (Obs.Window.sum w ~window_s:4.0 "req");
  check Alcotest.int "1s window sees only the live bucket" 2
    (Obs.Window.sum w ~window_s:1.0 "req");
  check feq "rate divides by the window" 0.75 (Obs.Window.rate w ~window_s:4.0 "req");
  check (Alcotest.list Alcotest.string) "names are sorted and uniq"
    [ "lat"; "req" ]
    (Obs.Window.names w ~window_s:4.0);
  let q = Obs.Window.quantiles w ~window_s:4.0 "lat" in
  check Alcotest.int "quantile sample count" 2 q.Obs.Window.q_count;
  check feq "p50 interpolates" 200.0 q.Obs.Window.q_p50;
  (* Two empty buckets later the old data is out of short windows but
     still inside the full ring... *)
  now := 3.5;
  check Alcotest.int "2s window excludes the old buckets" 0
    (Obs.Window.sum w ~window_s:2.0 "req");
  check Alcotest.int "full window still sees everything" 3
    (Obs.Window.sum w ~window_s:4.0 "req");
  (* ...and one lap later the slot is recycled: the expired count can
     never resurface, even though it shares the ring slot. *)
  now := 4.5;
  Obs.Window.add ~by:5 w "req";
  check Alcotest.int "recycled slot holds only the new lap" 7
    (Obs.Window.sum w ~window_s:4.0 "req");
  now := 9.5;
  check Alcotest.int "fully idle ring reads as zero" 0
    (Obs.Window.sum w ~window_s:4.0 "req");
  check Alcotest.int "quantiles of an empty window count zero" 0
    (Obs.Window.quantiles w ~window_s:4.0 "lat").Obs.Window.q_count

let window_json_shape () =
  let now = ref 2.0 in
  let w = Obs.Window.create ~clock:(fun () -> !now) ~bucket_s:1.0 ~buckets:8 () in
  Obs.Window.add w "/api/lint";
  Obs.Window.observe w "/api/lint" 150.0;
  let j = Json.parse_exn (Json.to_string (Obs.Window.to_json ~windows:[ 4.0 ] w)) in
  let num doc key = Option.bind (Json.member key doc) Json.number in
  check (Alcotest.option feq) "bucket_s" (Some 1.0) (num j "bucket_s");
  match Json.items (Option.get (Json.member "windows" j)) with
  | [ win ] ->
      check (Alcotest.option feq) "window_s" (Some 4.0) (num win "window_s");
      let ep =
        Option.get
          (Json.member "/api/lint" (Option.get (Json.member "series" win)))
      in
      check (Alcotest.option feq) "count" (Some 1.0) (num ep "count");
      check (Alcotest.option feq) "rate" (Some 0.25) (num ep "rate");
      check (Alcotest.option feq) "p95 present with samples" (Some 150.0)
        (num ep "p95")
  | _ -> Alcotest.fail "expected exactly one window object"

(* The central window invariant, property-tested: for any event
   sequence and any query instant, [sum] equals the model count of
   events that are (a) within the queried window, (b) not overwritten
   by a later lap of the ring.  Never more, never less — an expired
   bucket can never leak back in. *)
let window_sum_matches_model =
  let bucket_s = 1.0 and buckets = 8 in
  let gen =
    QCheck.make
      ~print:(fun (events, q) ->
        Printf.sprintf "events=%s query=+%d"
          (String.concat ";" (List.map string_of_int events))
          q)
      QCheck.Gen.(pair (list_size (0 -- 40) (0 -- 30)) (0 -- 10))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"window sum = model of live in-window events" ~count:200 gen
       (fun (offsets, query_delta) ->
         (* Event times must ascend for the ring model to apply (a real
            clock is monotonic): sort the generated offsets. *)
         let offsets = List.sort compare offsets in
         let now = ref 0.0 in
         let w =
           Obs.Window.create ~clock:(fun () -> !now) ~bucket_s ~buckets ()
         in
         List.iter
           (fun o ->
             now := (float_of_int o +. 0.5);
             Obs.Window.add w "e")
           offsets;
         let t_query =
           (match List.rev offsets with [] -> 0 | last :: _ -> last) + query_delta
         in
         now := float_of_int t_query +. 0.5;
         let window_s = 4.0 in
         (* Model: bucket index = offset; a bucket survives if its ring
            slot was not claimed by a later bucket index. *)
         let slot_final = Hashtbl.create 16 in
         List.iter
           (fun o -> Hashtbl.replace slot_final (o mod buckets) o)
           offsets;
         let expected =
           List.length
             (List.filter
                (fun o ->
                  o > t_query - 4 && o <= t_query
                  && Hashtbl.find_opt slot_final (o mod buckets) = Some o)
                offsets)
         in
         Obs.Window.sum w ~window_s "e" = expected))

(* --- run journal ----------------------------------------------------- *)

let journal_records_and_filters () =
  Obs.Journal.reset ();
  Obs.Journal.record "alpha";
  Obs.Journal.record ~fields:[ ("rounds", Json.Int 3) ] "exec.run";
  Obs.Journal.record "exec.done";
  Obs.Journal.record "executioner";
  let es = Obs.Journal.entries () in
  check Alcotest.int "all four entries" 4 (List.length es);
  check Alcotest.bool "sequence numbers ascend" true
    (List.for_all2
       (fun e i -> e.Obs.Journal.j_seq = i)
       es
       (List.init 4 (fun i -> i)));
  let execs = Obs.Journal.filter ~kind:"exec" es in
  check Alcotest.int "prefix filter matches dotted kinds only" 2 (List.length execs);
  check Alcotest.int "exact filter" 1
    (List.length (Obs.Journal.filter ~kind:"alpha" es));
  let jsonl = Obs.Journal.to_jsonl es in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl) in
  check Alcotest.int "one JSONL line per entry" 4 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok doc ->
          check Alcotest.bool "line has a kind" true (Json.member "kind" doc <> None)
      | Error e -> Alcotest.fail e)
    lines

let journal_ring_wraps_and_counts_drops () =
  Obs.Journal.set_capacity 4;
  Fun.protect
    ~finally:(fun () -> Obs.Journal.set_capacity Obs.Journal.default_capacity)
    (fun () ->
      for i = 1 to 6 do
        Obs.Journal.record (Printf.sprintf "k%d" i)
      done;
      let es = Obs.Journal.entries () in
      check Alcotest.int "ring keeps the newest capacity entries" 4 (List.length es);
      check Alcotest.string "oldest surviving entry" "k3"
        (List.hd es).Obs.Journal.j_kind;
      check Alcotest.string "newest entry" "k6"
        (List.nth es 3).Obs.Journal.j_kind;
      check Alcotest.int "dropped entries counted" 2 (Obs.Journal.dropped ()))

(* --- bench regression gate ------------------------------------------- *)

let obs_bench_doc blocks =
  Json.Obj
    [
      ("schema", Json.String "umlfront-bench-obs/1");
      ( "cases",
        Json.List
          [
            Json.Obj
              [
                ("name", Json.String "crane");
                ("blocks_per_s_parsed", Json.Float blocks);
                ("actor_firings_per_s", Json.Float 1000.0);
              ];
          ] );
    ]

let bench_diff_flags_regressions () =
  let module BD = Obs.Bench_diff in
  let diff current =
    match BD.compare_docs ~base:(obs_bench_doc 100.0) ~current () with
    | Ok findings -> findings
    | Error e -> Alcotest.fail e
  in
  (* -30% throughput against the default 25% tolerance: regression. *)
  (match BD.regressions (diff (obs_bench_doc 70.0)) with
  | [ f ] ->
      check Alcotest.string "metric name" "crane.blocks_per_s" f.BD.f_metric;
      check feq "delta" (-30.0) f.BD.f_delta_pct
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  check Alcotest.int "-10%% is within tolerance" 0
    (List.length (BD.regressions (diff (obs_bench_doc 90.0))));
  check Alcotest.int "+40%% is an improvement, not a regression" 0
    (List.length (BD.regressions (diff (obs_bench_doc 140.0))));
  let rendered = BD.render ~tolerance:BD.default_tolerance (diff (obs_bench_doc 70.0)) in
  check Alcotest.bool "render names the verdict" true (contains rendered "REGRESSION")

let parallel_bench_doc ~ms ~identical =
  Json.Obj
    [
      ("schema", Json.String "umlfront-bench-parallel/1");
      ( "exec",
        Json.Obj
          [
            ( "sweeps",
              Json.List
                [
                  Json.Obj
                    [
                      ("domains", Json.Int 2);
                      ("ms", Json.Float ms);
                      ("identical", Json.Bool identical);
                    ];
                ] );
          ] );
    ]

let bench_diff_parallel_schema () =
  let module BD = Obs.Bench_diff in
  let diff current =
    match
      BD.compare_docs ~base:(parallel_bench_doc ~ms:100.0 ~identical:true) ~current ()
    with
    | Ok findings -> BD.regressions findings
    | Error e -> Alcotest.fail e
  in
  (* Wall-clock is lower-better: +40% ms regresses, -40% ms does not. *)
  (match diff (parallel_bench_doc ~ms:140.0 ~identical:true) with
  | [ f ] -> check Alcotest.string "metric" "exec.2d.ms" f.BD.f_metric
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  check Alcotest.int "faster is fine" 0
    (List.length (diff (parallel_bench_doc ~ms:60.0 ~identical:true)));
  (* Losing parallel determinism is always a regression. *)
  match diff (parallel_bench_doc ~ms:100.0 ~identical:false) with
  | [ f ] -> check Alcotest.string "metric" "exec.2d.identical" f.BD.f_metric
  | l -> Alcotest.failf "expected the identical-flag regression, got %d" (List.length l)

(* A parallel doc that records how many domains the runner had. *)
let parallel_bench_doc_hw ~hw ~ms ~identical =
  match parallel_bench_doc ~ms ~identical with
  | Json.Obj fields -> Json.Obj (("hardware_domains", Json.Int hw) :: fields)
  | _ -> assert false

(* Timing at 2 domains is only judged when both runners had 2 domains;
   the bit-identity flag is judged regardless.  An under-provisioned CI
   runner must leave the gate inert rather than failing it. *)
let bench_diff_skips_underprovisioned_sweeps () =
  let module BD = Obs.Bench_diff in
  let diff ~base ~current =
    match BD.compare_docs ~base ~current () with
    | Ok findings -> BD.regressions findings
    | Error e -> Alcotest.fail e
  in
  check Alcotest.int "1-core runner: 2-domain slowdown not judged" 0
    (List.length
       (diff
          ~base:(parallel_bench_doc_hw ~hw:1 ~ms:100.0 ~identical:true)
          ~current:(parallel_bench_doc_hw ~hw:1 ~ms:500.0 ~identical:true)));
  check Alcotest.int "either side under-provisioned skips too" 0
    (List.length
       (diff
          ~base:(parallel_bench_doc_hw ~hw:4 ~ms:100.0 ~identical:true)
          ~current:(parallel_bench_doc_hw ~hw:1 ~ms:500.0 ~identical:true)));
  (match
     diff
       ~base:(parallel_bench_doc_hw ~hw:4 ~ms:100.0 ~identical:true)
       ~current:(parallel_bench_doc_hw ~hw:4 ~ms:500.0 ~identical:true)
   with
  | [ f ] -> check Alcotest.string "provisioned runner is judged" "exec.2d.ms" f.BD.f_metric
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  match
    diff
      ~base:(parallel_bench_doc_hw ~hw:1 ~ms:100.0 ~identical:true)
      ~current:(parallel_bench_doc_hw ~hw:1 ~ms:100.0 ~identical:false)
  with
  | [ f ] ->
      check Alcotest.string "identity judged even under-provisioned"
        "exec.2d.identical" f.BD.f_metric
  | l -> Alcotest.failf "expected the identical-flag regression, got %d" (List.length l)

let exec_compiled_doc ~hw ~vs_seq_1d ~ms_2d ~identical =
  let sweep domains ms speedup vs_seq =
    Json.Obj
      [
        ("domains", Json.Int domains);
        ("ms", Json.Float ms);
        ("speedup", Json.Float speedup);
        ("speedup_vs_seq", Json.Float vs_seq);
        ("identical", Json.Bool identical);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "umlfront-bench-exec-compiled/1");
      ("hardware_domains", Json.Int hw);
      ("exec_seq_ms", Json.Float 100.0);
      ( "compiled",
        Json.Obj
          [
            ( "sweeps",
              Json.List
                [
                  sweep 1 (100.0 /. vs_seq_1d) 1.0 vs_seq_1d;
                  sweep 2 ms_2d ((100.0 /. vs_seq_1d) /. ms_2d) (100.0 /. ms_2d);
                ] );
          ] );
    ]

let bench_diff_exec_compiled_schema () =
  let module BD = Obs.Bench_diff in
  let base = exec_compiled_doc ~hw:1 ~vs_seq_1d:2.0 ~ms_2d:30.0 ~identical:true in
  let diff current =
    match BD.compare_docs ~base ~current () with
    | Ok findings -> BD.regressions findings
    | Error e -> Alcotest.fail e
  in
  check Alcotest.int "steady numbers pass" 0
    (List.length (diff (exec_compiled_doc ~hw:1 ~vs_seq_1d:2.0 ~ms_2d:30.0 ~identical:true)));
  (* The compiled-over-sequential ratio at 1 domain is two sequential
     runs on the same machine: judged even on a 1-core runner. *)
  (match diff (exec_compiled_doc ~hw:1 ~vs_seq_1d:0.9 ~ms_2d:30.0 ~identical:true) with
  | l ->
      check Alcotest.bool "collapsed 1d vs-seq ratio regresses" true
        (List.exists (fun f -> f.BD.f_metric = "compiled.1d.speedup_vs_seq") l));
  (* 2-domain timing is hardware-gated like the parallel schema... *)
  check Alcotest.int "1-core runner: 2-domain slowdown not judged" 0
    (List.length
       (List.filter
          (fun f -> f.BD.f_metric = "compiled.2d.ms")
          (diff (exec_compiled_doc ~hw:1 ~vs_seq_1d:2.0 ~ms_2d:300.0 ~identical:true))));
  (* ...but the bit-identity flag never is. *)
  match diff (exec_compiled_doc ~hw:1 ~vs_seq_1d:2.0 ~ms_2d:30.0 ~identical:false) with
  | l ->
      check Alcotest.bool "divergence regresses" true
        (List.exists (fun f -> f.BD.f_metric = "compiled.2d.identical") l)

(* The serve schema's observability A/B rows: matched by mode, judged
   only on a provisioned runner, absent from older baselines without
   error. *)
let serve_doc ~hw ~obs_on_rps =
  Json.Obj
    [
      ("schema", Json.String "umlfront-bench-serve/1");
      ("hardware_domains", Json.Int hw);
      ( "rows",
        Json.List
          [
            Json.Obj
              [
                ("clients", Json.Int 1);
                ("req_per_s", Json.Float 100.0);
                ("p50_ms", Json.Float 1.0);
                ("p95_ms", Json.Float 2.0);
                ("hit_ratio", Json.Float 0.5);
              ];
          ] );
      ( "observability",
        Json.List
          (List.map
             (fun (mode, rps) ->
               Json.Obj
                 [
                   ("mode", Json.String mode);
                   ("clients", Json.Int 4);
                   ("req_per_s", Json.Float rps);
                   ("p95_ms", Json.Float 5.0);
                 ])
             [ ("off", 100.0); ("on", obs_on_rps) ]) );
    ]

let bench_diff_serve_observability_rows () =
  let module BD = Obs.Bench_diff in
  let diff ~base ~current =
    match BD.compare_docs ~base ~current () with
    | Ok findings -> BD.regressions findings
    | Error e -> Alcotest.fail e
  in
  check Alcotest.int "steady numbers pass" 0
    (List.length
       (diff ~base:(serve_doc ~hw:8 ~obs_on_rps:95.0)
          ~current:(serve_doc ~hw:8 ~obs_on_rps:95.0)));
  (match
     diff ~base:(serve_doc ~hw:8 ~obs_on_rps:95.0)
       ~current:(serve_doc ~hw:8 ~obs_on_rps:1.0)
   with
  | l ->
      check Alcotest.bool "collapsed obs-on throughput regresses" true
        (List.exists (fun f -> f.BD.f_metric = "serve.obs.on.req_per_s") l));
  check Alcotest.int "1-core runner: 4-client A/B not judged" 0
    (List.length
       (diff ~base:(serve_doc ~hw:1 ~obs_on_rps:95.0)
          ~current:(serve_doc ~hw:1 ~obs_on_rps:1.0)));
  (* A baseline written before the A/B series existed gates nothing. *)
  let legacy =
    Json.Obj
      [
        ("schema", Json.String "umlfront-bench-serve/1");
        ("hardware_domains", Json.Int 8);
        ("rows", Json.List []);
      ]
  in
  check Alcotest.int "legacy baseline accepted" 0
    (List.length (diff ~base:legacy ~current:(serve_doc ~hw:8 ~obs_on_rps:1.0)))

let bench_diff_rejects_foreign_documents () =
  let module BD = Obs.Bench_diff in
  let expect_error ~base ~current hint =
    match BD.compare_docs ~base ~current () with
    | Ok _ -> Alcotest.fail "expected an error"
    | Error e -> check Alcotest.bool ("error mentions " ^ hint) true (contains e hint)
  in
  expect_error ~base:(Json.Obj []) ~current:(obs_bench_doc 1.0) "schema";
  expect_error
    ~base:(obs_bench_doc 1.0)
    ~current:(parallel_bench_doc ~ms:1.0 ~identical:true)
    "mismatch";
  expect_error
    ~base:(Json.Obj [ ("schema", Json.String "nope/9") ])
    ~current:(Json.Obj [ ("schema", Json.String "nope/9") ])
    "unknown"

let suite =
  [
    ( "obs",
      [
        test "json escaping" json_escaping;
        test "json parse round-trips" json_parse_roundtrip;
        test "json parse rejects malformed input" json_parse_errors;
        test "counters and gauges" counters_and_gauges;
        test "histogram percentiles" histogram_percentiles;
        test "percentile edge cases" percentile_edge_cases;
        test "percentile tiny counts pinned" percentile_tiny_counts_pinned;
        test "kind mismatch rejected" kind_mismatch;
        test "span nesting" span_nesting;
        test "span exception safety" span_exception_safety;
        test "raising flow phase is exception safe" raising_flow_phase_is_exception_safe;
        test "disabled sink records nothing" disabled_sink_records_nothing;
        test "chrome trace shape" chrome_trace_shape;
        test "structured events reach the sink" events_api_logs_and_traces;
        test "metrics table renders" metrics_table_renders;
        test "openmetrics rendering" openmetrics_rendering;
        test "openmetrics labels" openmetrics_labels;
        test "window rotation and expiry" window_rotation_and_expiry;
        test "window json shape" window_json_shape;
        window_sum_matches_model;
        test "journal records and filters" journal_records_and_filters;
        test "journal ring wraps" journal_ring_wraps_and_counts_drops;
        test "bench-diff flags regressions" bench_diff_flags_regressions;
        test "bench-diff parallel schema" bench_diff_parallel_schema;
        test "bench-diff skips under-provisioned sweeps"
          bench_diff_skips_underprovisioned_sweeps;
        test "bench-diff exec-compiled schema" bench_diff_exec_compiled_schema;
        test "bench-diff serve observability rows" bench_diff_serve_observability_rows;
        test "bench-diff rejects foreign documents" bench_diff_rejects_foreign_documents;
      ] );
  ]
