(* Umlfront_obs: span nesting, metrics/histogram percentiles, and the
   Chrome trace-event JSON shape. *)

module Obs = Umlfront_obs
module Json = Umlfront_obs.Json
module Metrics = Umlfront_obs.Metrics
module Trace = Umlfront_obs.Trace

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let feq = Alcotest.float 1e-6

(* --- JSON serializer ------------------------------------------------ *)

let json_escaping () =
  check Alcotest.string "escapes" "{\"a\\\"b\":\"x\\ny\\tz\\\\\"}"
    (Json.to_string (Json.Obj [ ("a\"b", Json.String "x\ny\tz\\") ]));
  check Alcotest.string "scalars" "[null,true,42,-1,1.500000]"
    (Json.to_string
       (Json.List [ Json.Null; Json.Bool true; Json.Int 42; Json.Int (-1); Json.Float 1.5 ]));
  check Alcotest.string "integral floats printed as integers" "[3,null]"
    (Json.to_string (Json.List [ Json.Float 3.0; Json.Float Float.nan ]))

(* --- metrics registry ------------------------------------------------ *)

let fresh () = Metrics.create ()

let counters_and_gauges () =
  let r = fresh () in
  Metrics.incr ~registry:r "a";
  Metrics.incr ~registry:r ~by:4 "a";
  Metrics.set_gauge ~registry:r "g" 2.5;
  Metrics.set_gauge ~registry:r "g" 7.25;
  match Metrics.snapshot ~registry:r () with
  | [ a; g ] ->
      check Alcotest.string "counter name" "a" a.Metrics.s_name;
      check Alcotest.int "counter value" 5 a.Metrics.s_count;
      check Alcotest.string "gauge name" "g" g.Metrics.s_name;
      check feq "gauge keeps last value" 7.25 g.Metrics.s_value
  | l -> Alcotest.failf "expected 2 stats, got %d" (List.length l)

let histogram_percentiles () =
  let r = fresh () in
  (* 1..100 shuffled deterministically: percentiles must not depend on
     arrival order. *)
  List.iter
    (fun i -> Metrics.observe ~registry:r "h" (float_of_int (((i * 37) mod 100) + 1)))
    (List.init 100 (fun i -> i));
  match Metrics.snapshot ~registry:r () with
  | [ h ] ->
      check Alcotest.int "count" 100 h.Metrics.s_count;
      check feq "mean" 50.5 h.Metrics.s_value;
      check feq "min" 1.0 h.Metrics.s_min;
      check feq "max" 100.0 h.Metrics.s_max;
      check feq "p50" 50.5 h.Metrics.s_p50;
      check feq "p95" 95.05 h.Metrics.s_p95;
      check feq "p99" 99.01 h.Metrics.s_p99
  | l -> Alcotest.failf "expected 1 stat, got %d" (List.length l)

let percentile_edge_cases () =
  check feq "single sample" 7.0 (Metrics.percentile [| 7.0 |] 99.0);
  check feq "p0 is min" 1.0 (Metrics.percentile [| 1.0; 2.0; 3.0 |] 0.0);
  check feq "p100 is max" 3.0 (Metrics.percentile [| 1.0; 2.0; 3.0 |] 100.0);
  check feq "interpolates" 1.5 (Metrics.percentile [| 1.0; 2.0 |] 50.0);
  check Alcotest.bool "empty is nan" true (Float.is_nan (Metrics.percentile [||] 50.0))

let kind_mismatch () =
  let r = fresh () in
  Metrics.incr ~registry:r "x";
  Alcotest.check_raises "gauge on counter"
    (Invalid_argument "metrics: x is not a gauge") (fun () ->
      Metrics.set_gauge ~registry:r "x" 1.0)

(* --- spans ----------------------------------------------------------- *)

let span_nesting () =
  Trace.enable ();
  let r =
    Trace.with_span "outer" (fun () ->
        check Alcotest.int "depth inside outer" 1 (Trace.depth ());
        Trace.with_span "inner" (fun () ->
            check Alcotest.int "depth inside inner" 2 (Trace.depth ());
            17))
  in
  check Alcotest.int "return value" 17 r;
  check Alcotest.int "depth restored" 0 (Trace.depth ());
  let events = Trace.events () in
  check Alcotest.int "two complete events" 2 (List.length events);
  let find name = List.find (fun e -> e.Trace.ev_name = name) events in
  let outer = find "outer" and inner = find "inner" in
  check Alcotest.bool "inner starts after outer" true (inner.Trace.ev_ts >= outer.Trace.ev_ts);
  check Alcotest.bool "inner contained in outer" true
    (inner.Trace.ev_ts +. inner.Trace.ev_dur
    <= outer.Trace.ev_ts +. outer.Trace.ev_dur +. 1e-6);
  check Alcotest.bool "alloc arg recorded" true
    (List.mem_assoc "alloc_bytes" outer.Trace.ev_args);
  Trace.disable ()

let span_exception_safety () =
  Trace.enable ();
  (try Trace.with_span "boom" (fun () -> failwith "kaput") with Failure _ -> ());
  check Alcotest.int "depth restored after raise" 0 (Trace.depth ());
  let events = Trace.events () in
  check Alcotest.int "span still recorded" 1 (List.length events);
  check Alcotest.bool "error arg set" true
    (List.mem_assoc "error" (List.hd events).Trace.ev_args);
  Trace.disable ()

let disabled_sink_records_nothing () =
  Trace.disable ();
  Trace.reset ();
  Trace.with_span "ghost" (fun () -> Trace.instant "ghost-instant");
  check Alcotest.int "no events when disabled" 0 (List.length (Trace.events ()))

(* --- Chrome trace JSON shape ----------------------------------------- *)

let chrome_trace_shape () =
  Trace.enable ();
  Trace.with_span ~cat:"flow" "phase" (fun () -> Trace.instant "tick");
  let r = fresh () in
  Metrics.incr ~registry:r "n";
  Metrics.observe ~registry:r "h" 1.0;
  let doc = Trace.to_json ~metrics:(Metrics.snapshot ~registry:r ()) () in
  Trace.disable ();
  let events = Json.items (Option.get (Json.member "traceEvents" doc)) in
  check Alcotest.int "two trace events" 2 (List.length events);
  let phases =
    List.filter_map
      (fun e -> match Json.member "ph" e with Some (Json.String s) -> Some s | _ -> None)
      events
  in
  check Alcotest.bool "has complete + instant phases" true
    (List.mem "X" phases && List.mem "i" phases);
  List.iter
    (fun e ->
      List.iter
        (fun key ->
          check Alcotest.bool (key ^ " present") true (Json.member key e <> None))
        [ "name"; "cat"; "ph"; "ts"; "pid"; "tid" ])
    events;
  (match Json.member "otherData" doc with
  | Some other ->
      let metrics = Json.items (Option.get (Json.member "metrics" other)) in
      check Alcotest.int "metrics snapshot embedded" 2 (List.length metrics);
      List.iter
        (fun m ->
          match Json.member "kind" m with
          | Some (Json.String ("counter" | "gauge" | "histogram")) -> ()
          | _ -> Alcotest.fail "metric kind missing")
        metrics
  | None -> Alcotest.fail "otherData missing");
  (* ts must be sorted ascending, as Perfetto expects for X events. *)
  let ts =
    List.filter_map
      (fun e -> match Json.member "ts" e with Some (Json.Float t) -> Some t | _ -> None)
      events
  in
  check Alcotest.bool "timestamps sorted" true (List.sort Float.compare ts = ts)

let events_api_logs_and_traces () =
  Trace.enable ();
  Obs.Events.emit ~fields:[ ("k", Json.Int 3) ] "something.happened";
  let events = Trace.events () in
  check Alcotest.int "instant event recorded" 1 (List.length events);
  check Alcotest.string "event name" "something.happened" (List.hd events).Trace.ev_name;
  Trace.disable ()

let metrics_table_renders () =
  let r = fresh () in
  Metrics.incr ~registry:r ~by:3 "flow.runs";
  Metrics.observe ~registry:r "lat" 1.0;
  Metrics.observe ~registry:r "lat" 3.0;
  let table = Metrics.table (Metrics.snapshot ~registry:r ()) in
  check Alcotest.bool "has counter row" true (Astring_contains.contains table "flow.runs");
  check Alcotest.bool "has histogram row" true (Astring_contains.contains table "histogram")

let suite =
  [
    ( "obs",
      [
        test "json escaping" json_escaping;
        test "counters and gauges" counters_and_gauges;
        test "histogram percentiles" histogram_percentiles;
        test "percentile edge cases" percentile_edge_cases;
        test "kind mismatch rejected" kind_mismatch;
        test "span nesting" span_nesting;
        test "span exception safety" span_exception_safety;
        test "disabled sink records nothing" disabled_sink_records_nothing;
        test "chrome trace shape" chrome_trace_shape;
        test "structured events reach the sink" events_api_logs_and_traces;
        test "metrics table renders" metrics_table_renders;
      ] );
  ]
