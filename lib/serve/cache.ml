(* LRU over a Hashtbl plus an intrusive doubly-linked recency list:
   O(1) find/add/evict.  All state is guarded by one mutex; the
   critical sections only move list pointers and update counters. *)

type value = { status : int; content_type : string; body : string }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
  capacity : int;
}

type node = {
  key : string;
  v : value;
  size : int;
  mutable prev : node option;  (** towards most-recently-used *)
  mutable next : node option;  (** towards least-recently-used *)
}

type t = {
  max_bytes : int;
  table : (string, node) Hashtbl.t;
  lock : Mutex.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~max_bytes =
  {
    max_bytes;
    table = Hashtbl.create 64;
    lock = Mutex.create ();
    mru = None;
    lru = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Entry cost: the payload plus the key stored twice (table + node)
   plus a fixed allowance for the node and table slot. *)
let cost key v = String.length v.body + (2 * String.length key) + 64

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.mru;
  n.prev <- None;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let drop t n =
  unlink t n;
  Hashtbl.remove t.table n.key;
  t.bytes <- t.bytes - n.size

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some n ->
      t.hits <- t.hits + 1;
      unlink t n;
      push_front t n;
      Some n.v
  | None ->
      t.misses <- t.misses + 1;
      None

let add t key v =
  let size = cost key v in
  if size <= t.max_bytes then
    locked t @@ fun () ->
    (match Hashtbl.find_opt t.table key with Some old -> drop t old | None -> ());
    let n = { key; v; size; prev = None; next = None } in
    Hashtbl.replace t.table key n;
    push_front t n;
    t.bytes <- t.bytes + size;
    while t.bytes > t.max_bytes do
      match t.lru with
      | Some victim ->
          drop t victim;
          t.evictions <- t.evictions + 1
      | None -> t.bytes <- 0 (* unreachable: entries account for all bytes *)
    done

let stats t =
  locked t @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
    bytes = t.bytes;
    capacity = t.max_bytes;
  }
