(** The serving API: pure endpoint logic, no sockets.

    Each compute endpoint takes a parsed UML model plus the options
    decoded from the query string and returns a complete response
    payload.  {!Server} wraps this with transport, admission control,
    caching and telemetry; the test suite and the bench call it (and
    the server) directly.

    JSON bodies reuse the CLI's encoders byte-for-byte:
    - [POST /api/lint] emits exactly what
      [umlfront lint --format json MODEL] prints (pass [?file=MODEL] to
      reproduce the [file] field);
    - [POST /api/conform] emits exactly what
      [umlfront conform --format json MODEL] prints.
    Both go through the single shared encoders
    ({!Umlfront_analysis.Diagnostic.list_to_json},
    {!Umlfront_conformance.Conform.to_json}), so server and CLI cannot
    drift. *)

exception Timeout
(** Raised between pipeline phases once the request deadline passed;
    the server maps it to [503] with [Retry-After]. *)

type endpoint =
  | Lint
  | Transform
  | Simulate
  | Conform
  | Generate of [ `C | `Java | `Kpn ]

val endpoint_name : endpoint -> string
(** ["lint"], ["transform"], …, ["generate/c"]. *)

val endpoint_of_path : string -> endpoint option
(** Recognizes ["/api/lint"], …, ["/api/generate/c"]. *)

val all_endpoints : endpoint list

type options = {
  strategy : Umlfront_core.Flow.allocation_strategy;
  rounds : int;  (** execution rounds (simulate/conform/generate) *)
  engine : Umlfront_conformance.Conform.engine;
  backends : Umlfront_conformance.Conform.backend list option;
      (** conform only; [None] = all *)
  file : string option;  (** echoed in the lint JSON, CLI-style *)
  trace : bool;
      (** retain this request's span tree ([?trace=1]).  Deliberately
          {e not} part of {!cache_key}: tracing a request must not
          change what it computes or where it caches. *)
}

val default_options : options
(** [Prefer_deployment], 10 rounds, [`Seq] engine, all backends. *)

val options_of_query : (string * string) list -> (options, string) result
(** Query vocabulary: [strategy=deployment|prefer-deployment|linear],
    [cpus=N] (bounded inference, wins over [strategy] as in the CLI),
    [rounds=N] (1..10000), [engine=seq|compiled], [backends=a,b,...],
    [file=PATH], [trace=0|1].  Unknown keys are rejected — a typo must
    not silently select a default. *)

val parse_model :
  string -> (Umlfront_uml.Model.t, Umlfront_analysis.Diagnostic.t) result
(** Parse request-body XMI.  Malformed input comes back as a
    [Diagnostic.t] with code [UF901] for a 422 response. *)

val cache_key : endpoint -> options -> Umlfront_uml.Model.t -> string
(** SHA-256 hex over endpoint + canonical options +
    {!Umlfront_core.Flow.cache_material} — equal keys guarantee equal
    response bodies. *)

type outcome = { status : int; content_type : string; body : string }

val run : ?deadline:float -> endpoint -> options -> Umlfront_uml.Model.t -> outcome
(** Execute one endpoint.  Flow/executor failures (unflattenable model,
    zero-delay deadlock, missing deployment diagram, …) return a 422
    outcome whose body is a [UF902] diagnostic in the same JSON shape
    the lint endpoint uses; only {!Timeout} escapes as an exception.

    @raise Timeout once [deadline] (absolute, [Unix.gettimeofday]
    clock) has passed at a phase boundary. *)
