(* Server-Sent Events framing: the wire format of [GET /events].

   A frame is `event:`/`id:`/`data:` field lines followed by one blank
   line; multi-line data renders as one `data:` line per payload line
   and is re-joined with '\n' on parse (per the WHATWG EventSource
   algorithm).  The serializer is used by the server's broadcast hub,
   the incremental parser by {!Serve_client.events} and the test
   suite — sharing them keeps both ends honest about the framing. *)

type event = {
  name : string option;  (** the [event:] field; None = default "message" *)
  id : string option;
  data : string;
}

let frame ?name ?id data =
  let buf = Buffer.create (64 + String.length data) in
  Option.iter (fun n -> Buffer.add_string buf ("event: " ^ n ^ "\n")) name;
  Option.iter (fun i -> Buffer.add_string buf ("id: " ^ i ^ "\n")) id;
  List.iter
    (fun line -> Buffer.add_string buf ("data: " ^ line ^ "\n"))
    (String.split_on_char '\n' data);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* A comment line (": ..."), legal filler that EventSource ignores —
   the hub sends one as a keep-alive when it has nothing to say. *)
let comment text = ": " ^ text ^ "\n\n"

(* --- incremental parser ---------------------------------------------- *)

type parser_state = {
  mutable pending : string;
  mutable cur_name : string option;
  mutable cur_id : string option;
  mutable cur_data : string list; (* reversed lines *)
}

let parser () = { pending = ""; cur_name = None; cur_id = None; cur_data = [] }

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let field_value line prefix_len =
  let v = String.sub line prefix_len (String.length line - prefix_len) in
  if String.length v > 0 && v.[0] = ' ' then String.sub v 1 (String.length v - 1)
  else v

(* Feed a chunk, return the frames completed by it (in order).  Partial
   trailing lines stay buffered for the next feed. *)
let feed p chunk =
  p.pending <- p.pending ^ chunk;
  let events = ref [] in
  let dispatch () =
    if p.cur_name <> None || p.cur_id <> None || p.cur_data <> [] then begin
      events :=
        {
          name = p.cur_name;
          id = p.cur_id;
          data = String.concat "\n" (List.rev p.cur_data);
        }
        :: !events;
      p.cur_name <- None;
      p.cur_id <- None;
      p.cur_data <- []
    end
  in
  let line l =
    let l = strip_cr l in
    if l = "" then dispatch ()
    else if String.length l > 0 && l.[0] = ':' then () (* comment *)
    else if String.starts_with ~prefix:"event:" l then
      p.cur_name <- Some (field_value l 6)
    else if String.starts_with ~prefix:"id:" l then
      p.cur_id <- Some (field_value l 3)
    else if String.starts_with ~prefix:"data:" l then
      p.cur_data <- field_value l 5 :: p.cur_data
    else () (* unknown field: ignored, per spec *)
  in
  let rec consume () =
    match String.index_opt p.pending '\n' with
    | None -> ()
    | Some i ->
        let l = String.sub p.pending 0 i in
        p.pending <-
          String.sub p.pending (i + 1) (String.length p.pending - i - 1);
        line l;
        consume ()
  in
  consume ();
  List.rev !events
