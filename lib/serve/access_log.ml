(* The structured JSONL access log, written off the request path.

   [append] is a bounded-queue push under a mutex — never a syscall, so
   a slow or full disk cannot extend a request's critical section.  A
   dedicated writer domain drains the queue in batches and does the
   actual [output_string]/[flush]; when the queue is full the line is
   dropped and counted ([dropped], exposed as
   umlfront_access_log_dropped_total), which is the correct failure
   mode for telemetry: lose a log line, never stall a request. *)

let default_queue_bound = 1024

type t = {
  queue : string Queue.t;
  bound : int;
  mutable dropped : int;
  mutable stopping : bool;
  lock : Mutex.t;
  cond : Condition.t;
  mutable writer : unit Domain.t option;
}

let writer_loop oc q =
  let rec drain () =
    Mutex.lock q.lock;
    while Queue.is_empty q.queue && not q.stopping do
      Condition.wait q.cond q.lock
    done;
    let batch = Queue.fold (fun acc l -> l :: acc) [] q.queue in
    Queue.clear q.queue;
    let stop = q.stopping in
    Mutex.unlock q.lock;
    List.iter (fun line -> output_string oc line) (List.rev batch);
    if batch <> [] then flush oc;
    if not stop then drain ()
  in
  drain ();
  close_out_noerr oc

let create ~path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  let t =
    {
      queue = Queue.create ();
      bound = default_queue_bound;
      dropped = 0;
      stopping = false;
      lock = Mutex.create ();
      cond = Condition.create ();
      writer = None;
    }
  in
  t.writer <- Some (Domain.spawn (fun () -> writer_loop oc t));
  t

(* Enqueue one line (the newline is added here).  Returns false when
   the queue was full and the line was dropped. *)
let append t line =
  Mutex.lock t.lock;
  let ok =
    if t.stopping || Queue.length t.queue >= t.bound then begin
      t.dropped <- t.dropped + 1;
      false
    end
    else begin
      Queue.add (line ^ "\n") t.queue;
      Condition.signal t.cond;
      true
    end
  in
  Mutex.unlock t.lock;
  ok

let dropped t =
  Mutex.lock t.lock;
  let n = t.dropped in
  Mutex.unlock t.lock;
  n

(* Flush what is queued and join the writer.  Idempotent-ish: a second
   close finds [stopping] already set and the domain already joined by
   the first caller, so guard at the call site (Server.stop is). *)
let close t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.signal t.cond;
  Mutex.unlock t.lock;
  match t.writer with
  | Some d ->
      t.writer <- None;
      Domain.join d
  | None -> ()
