(** The [umlfront serve] daemon: a long-lived, cache-keyed compilation
    service over the whole flow, on nothing but [Unix] sockets and
    domains.

    One acceptor domain owns the listening socket; every accepted
    connection is handed to the {!Umlfront_parallel.Pool} as a
    fire-and-forget task ({!Umlfront_parallel.Pool.submit}) and handled
    there end to end — keep-alive loop, pipelining, per-request
    telemetry.  Admission control happens at accept time: once
    [max_inflight] connections are in flight the server answers
    [503 Service Unavailable] with [Retry-After] and closes, so
    overload degrades to fast rejection, never to a hang.

    Endpoints:
    - [POST /api/lint], [/api/transform], [/api/simulate],
      [/api/conform], [/api/generate/{c,java,kpn}] — XMI in the body,
      options in the query string ({!Api.options_of_query}), JSON out;
    - [GET /healthz] — liveness, uptime, in-flight count;
    - [GET /metrics] — OpenMetrics exposition of the server's root
      telemetry context plus cache gauges;
    - [GET /journal] — the merged run journal as a JSON list.

    Each compute request runs in its own forked {!Umlfront_obs.Context}
    (so concurrent requests observe fully disjoint telemetry) whose
    metrics and journal are merged back into the server's root context
    afterwards; span buffers are deliberately {e not} absorbed — a
    daemon must not accumulate one span tree per request forever.  The
    response advertises the isolation: [X-Request-Id] numbers the
    request, [X-Request-Spans] counts the trace events its private
    context recorded (a bled-into context would show inflated counts),
    and [X-Cache: hit|miss] reports the content-hash cache. *)

type config = {
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  pool : int;  (** worker domains handling connections (>= 0) *)
  cache_mb : int;  (** response cache budget; [<= 0] disables *)
  max_inflight : int;  (** admission-control bound on open connections *)
  timeout_s : float;  (** per-request compute deadline, and socket read timeout *)
  max_body : int;  (** request-body bound (413 beyond it) *)
}

val default_config : config
(** Port 0, 2 workers, 32 MiB cache, 64 in flight, 30 s timeout,
    8 MiB bodies. *)

type t

val start : ?config:config -> unit -> t
(** Bind [127.0.0.1], spawn the pool and the acceptor domain, return
    once the socket is listening (so a client may connect
    immediately). *)

val port : t -> int
(** The bound port — the ephemeral one when [config.port = 0]. *)

val stop : t -> unit
(** Close the listener, join the acceptor, drain and join the pool.
    Idempotent.  In-flight requests finish; no new ones are accepted. *)

val root : t -> Umlfront_obs.Context.t
(** The server's root telemetry context — every request's metrics and
    journal entries end up here (what [/metrics] and [/journal]
    serve). *)

val cache_stats : t -> Cache.stats
val inflight : t -> int
