(** The [umlfront serve] daemon: a long-lived, cache-keyed compilation
    service over the whole flow, on nothing but [Unix] sockets and
    domains.

    One acceptor domain owns the listening socket; every accepted
    connection is handed to the {!Umlfront_parallel.Pool} as a
    fire-and-forget task ({!Umlfront_parallel.Pool.submit}) and handled
    there end to end — keep-alive loop, pipelining, per-request
    telemetry.  Admission control happens at accept time: once
    [max_inflight] connections are in flight the server answers
    [503 Service Unavailable] with [Retry-After] and closes, so
    overload degrades to fast rejection, never to a hang.

    Endpoints:
    - [POST /api/lint], [/api/transform], [/api/simulate],
      [/api/conform], [/api/generate/{c,java,kpn}] — XMI in the body,
      options in the query string ({!Api.options_of_query}), JSON out;
    - [GET /healthz] — liveness, uptime, in-flight count;
    - [GET /metrics] — OpenMetrics exposition of the server's root
      telemetry context, cache gauges and rolling per-endpoint
      req/s + latency quantiles as labeled series;
    - [GET /journal] — the merged run journal as a JSON list;
    - [GET /api/windows] — the rolling {!Umlfront_obs.Window} snapshot
      (10 s / 1 m / 5 m) as JSON;
    - [GET /api/trace/ID] — the retained Chrome-trace span tree of
      request ID (kept when the request said [?trace=1] or fell in
      [trace_sample]);
    - [GET /events] — an SSE stream of request events and window
      snapshots (the heartbeat), served by a dedicated pump domain;
    - [GET /dashboard] — a self-contained live HTML view over
      [/events].

    Every request is numbered ([X-Request-Id]), joins or starts a W3C
    trace ([traceparent] echoed in the response), lands in the rolling
    window and the root journal ([serve.access] entries), and — when
    [access_log] is set — is appended as one JSON line by a writer
    domain that never blocks the request path (full queue = dropped
    line + [umlfront_access_log_dropped_total]).

    Each compute request runs in its own forked {!Umlfront_obs.Context}
    (so concurrent requests observe fully disjoint telemetry) whose
    metrics and journal are merged back into the server's root context
    afterwards; span buffers are deliberately {e not} absorbed — a
    daemon must not accumulate one span tree per request forever.  The
    response advertises the isolation: [X-Request-Id] numbers the
    request, [X-Request-Spans] counts the trace events its private
    context recorded (a bled-into context would show inflated counts),
    and [X-Cache: hit|miss] reports the content-hash cache. *)

type config = {
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  pool : int;  (** worker domains handling connections (>= 0) *)
  cache_mb : int;  (** response cache budget; [<= 0] disables *)
  max_inflight : int;  (** admission-control bound on open connections *)
  timeout_s : float;  (** per-request compute deadline, and socket read timeout *)
  max_body : int;  (** request-body bound (413 beyond it) *)
  access_log : string option;  (** JSONL access-log path; [None] disables *)
  trace_sample : float;
      (** fraction of requests whose span tree is retained (0..1);
          [?trace=1] retains regardless *)
}

val default_config : config
(** Port 0, 2 workers, 32 MiB cache, 64 in flight, 30 s timeout,
    8 MiB bodies, no access log, no sampling. *)

type t

val start : ?config:config -> unit -> t
(** Bind [127.0.0.1], spawn the pool and the acceptor domain, return
    once the socket is listening (so a client may connect
    immediately). *)

val port : t -> int
(** The bound port — the ephemeral one when [config.port = 0]. *)

val stop : t -> unit
(** Close the listener, join the acceptor, drain and join the pool.
    Idempotent.  In-flight requests finish; no new ones are accepted. *)

val root : t -> Umlfront_obs.Context.t
(** The server's root telemetry context — every request's metrics and
    journal entries end up here (what [/metrics] and [/journal]
    serve). *)

val cache_stats : t -> Cache.stats
val inflight : t -> int

val window : t -> Umlfront_obs.Window.t
(** The rolling window every request is recorded into (per-endpoint
    counters and latency samples) — what [/api/windows], the SSE
    heartbeat and the [/metrics] rolling gauges read. *)

val subscribers : t -> int
(** Live [/events] subscribers. *)

val events_dropped : t -> int
(** SSE frames dropped on full subscriber outboxes (slow consumers). *)

val access_log_dropped : t -> int
(** Access-log lines dropped on a full writer queue; 0 without a log. *)
