(* The live dashboard: one self-contained HTML page (no external
   assets, same deal as {!Umlfront_obs.Html_report}) whose script opens
   an [EventSource] on [/events] and repaints two tables from what the
   stream carries — "window" frames (the rolling {!Umlfront_obs.Window}
   snapshot, also the heartbeat) and "request" frames (one per request
   served).  The CSS is the report's stylesheet, so the daemon's live
   view and the offline run report look like the same tool. *)

module Html_report = Umlfront_obs.Html_report

let script =
  {js|
  const fmt = (v, d) => v == null || isNaN(v) ? "-" : Number(v).toFixed(d);
  const esc = s => String(s).replace(/[&<>"]/g,
    c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
  const recent = [];
  function paintWindows(snap) {
    const windows = snap.windows || [];
    const names = new Set();
    windows.forEach(w => Object.keys(w.series || {}).forEach(n => names.add(n)));
    const byW = (name, i, f) => {
      const s = windows[i] && windows[i].series && windows[i].series[name];
      return s ? f(s) : null;
    };
    let html = "<tr><th>endpoint</th><th>req/s 10s</th><th>req/s 1m</th>" +
      "<th>req/s 5m</th><th>p50 ms 1m</th><th>p95 ms 1m</th><th>p99 ms 1m</th></tr>";
    [...names].sort().forEach(name => {
      html += "<tr><td>" + esc(name) + "</td>" +
        "<td>" + fmt(byW(name, 0, s => s.rate), 2) + "</td>" +
        "<td>" + fmt(byW(name, 1, s => s.rate), 2) + "</td>" +
        "<td>" + fmt(byW(name, 2, s => s.rate), 2) + "</td>" +
        "<td>" + fmt(byW(name, 1, s => s.p50 / 1000), 2) + "</td>" +
        "<td>" + fmt(byW(name, 1, s => s.p95 / 1000), 2) + "</td>" +
        "<td>" + fmt(byW(name, 1, s => s.p99 / 1000), 2) + "</td></tr>";
    });
    document.getElementById("windows").innerHTML = html;
  }
  function paintRequests() {
    let html = "<tr><th>id</th><th>endpoint</th><th>status</th><th>cache</th>" +
      "<th>ms</th><th>spans</th><th>trace</th></tr>";
    recent.forEach(r => {
      const trace = r.trace_stored
        ? '<a href="/api/trace/' + esc(r.id) + '">' + esc(r.trace_id || r.id) + "</a>"
        : esc(r.trace_id || "-");
      html += "<tr><td>" + esc(r.id) + "</td><td>" + esc(r.endpoint) +
        "</td><td>" + esc(r.status) + "</td><td>" + esc(r.cache || "-") +
        "</td><td>" + fmt(r.latency_us / 1000, 2) + "</td><td>" +
        esc(r.spans) + "</td><td>" + trace + "</td></tr>";
    });
    document.getElementById("requests").innerHTML = html;
  }
  const es = new EventSource("/events");
  es.addEventListener("hello", e => {
    document.getElementById("status").textContent =
      "connected - " + e.data;
  });
  es.addEventListener("window", e => paintWindows(JSON.parse(e.data)));
  es.addEventListener("request", e => {
    recent.unshift(JSON.parse(e.data));
    if (recent.length > 50) recent.pop();
    paintRequests();
  });
  es.onerror = () => {
    document.getElementById("status").textContent = "disconnected - retrying";
  };
  paintRequests();
|js}

let page () =
  let buf = Buffer.create 4096 in
  let out s = Buffer.add_string buf s in
  out "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n";
  out "<title>umlfront serve - live</title>\n";
  out "<style>";
  out Html_report.style;
  out "</style>\n</head>\n<body>\n";
  out "<h1>umlfront serve - live</h1>\n";
  out "<p id=\"status\">connecting to /events ...</p>\n";
  out "<h2>Rolling windows (10s / 1m / 5m)</h2>\n";
  out "<table id=\"windows\"><tr><th>endpoint</th></tr></table>\n";
  out "<h2>Recent requests</h2>\n";
  out "<table id=\"requests\"></table>\n";
  out "<script>\n";
  out script;
  out "</script>\n</body>\n</html>\n";
  Buffer.contents buf
