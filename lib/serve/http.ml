(* HTTP/1.1 request decoder and response serializer.  See the .mli for
   the contract; the implementation is a two-state machine (reading the
   head, reading the body) over a single growing buffer, with consumed
   prefixes compacted away so a long-lived keep-alive connection does
   not accumulate garbage. *)

type request = {
  meth : string;
  target : string;
  path : string;
  query : (string * string) list;
  version : string;
  headers : (string * string) list;
  body : string;
}

type error =
  [ `Bad_request of string | `Length_required | `Payload_too_large of int ]

let error_status = function
  | `Bad_request _ -> 400
  | `Length_required -> 411
  | `Payload_too_large _ -> 413

let error_message = function
  | `Bad_request m -> m
  | `Length_required -> "Content-Length required"
  | `Payload_too_large n -> Printf.sprintf "declared body of %d bytes too large" n

(* --- percent / query decoding --------------------------------------- *)

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Buffer.contents buf
    else
      match s.[i] with
      | '%' when i + 2 < n -> (
          match (hex_val s.[i + 1], hex_val s.[i + 2]) with
          | Some a, Some b ->
              Buffer.add_char buf (Char.chr ((a * 16) + b));
              go (i + 3)
          | _ ->
              Buffer.add_char buf '%';
              go (i + 1))
      | '+' ->
          Buffer.add_char buf ' ';
          go (i + 1)
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0

let split_target target =
  let raw_path, raw_query =
    match String.index_opt target '?' with
    | Some i ->
        ( String.sub target 0 i,
          String.sub target (i + 1) (String.length target - i - 1) )
    | None -> (target, "")
  in
  let query =
    if raw_query = "" then []
    else
      List.filter_map
        (fun pair ->
          if pair = "" then None
          else
            match String.index_opt pair '=' with
            | Some i ->
                Some
                  ( percent_decode (String.sub pair 0 i),
                    percent_decode
                      (String.sub pair (i + 1) (String.length pair - i - 1)) )
            | None -> Some (percent_decode pair, ""))
        (String.split_on_char '&' raw_query)
  in
  (percent_decode raw_path, query)

(* --- decoder -------------------------------------------------------- *)

type state =
  | Head  (** accumulating until the blank line *)
  | Body of { head : request; need : int }  (** [head] minus its body *)
  | Failed of error

type decoder = {
  mutable pending : string;  (** unconsumed bytes *)
  mutable state : state;
  max_body : int;
  max_header : int;
}

let decoder ?(max_body = 8 * 1024 * 1024) ?(max_header = 16 * 1024) () =
  { pending = ""; state = Head; max_body; max_header }

let feed d chunk = if chunk <> "" then d.pending <- d.pending ^ chunk

let buffered d = String.length d.pending

let consume d n =
  d.pending <- String.sub d.pending n (String.length d.pending - n)

let lowercase_ascii = String.lowercase_ascii

(* Find the end of the head: "\r\n\r\n" (CRLF) or "\n\n" (tolerated
   bare-LF, what a hand-typed netcat session produces).  Returns
   (head_text, bytes_consumed_incl_terminator). *)
let find_head_end s =
  let n = String.length s in
  let rec go i =
    if i >= n then None
    else if i + 3 < n && s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
            && s.[i + 3] = '\n' then Some (String.sub s 0 i, i + 4)
    else if i + 1 < n && s.[i] = '\n' && s.[i + 1] = '\n' then
      Some (String.sub s 0 i, i + 2)
    else go (i + 1)
  in
  go 0

let split_lines head =
  (* Head lines are CRLF- or LF-terminated; strip the trailing CR. *)
  List.map
    (fun line ->
      let l = String.length line in
      if l > 0 && line.[l - 1] = '\r' then String.sub line 0 (l - 1) else line)
    (String.split_on_char '\n' head)

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ]
    when meth <> "" && target <> ""
         && (version = "HTTP/1.1" || version = "HTTP/1.0") ->
      Ok (String.uppercase_ascii meth, target, version)
  | _ -> Error (`Bad_request (Printf.sprintf "malformed request line %S" line))

let parse_header_line line =
  match String.index_opt line ':' with
  | Some i when i > 0 ->
      let name = lowercase_ascii (String.trim (String.sub line 0 i)) in
      let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      if String.contains name ' ' then
        Error (`Bad_request (Printf.sprintf "whitespace in header name %S" name))
      else Ok (name, value)
  | _ -> Error (`Bad_request (Printf.sprintf "malformed header line %S" line))

(* A body is expected exactly when the request declares one; for the
   methods that conventionally carry one, a missing declaration is 411
   rather than a silently empty body. *)
let body_expected meth = meth = "POST" || meth = "PUT" || meth = "PATCH"

let content_length headers =
  match List.filter (fun (n, _) -> n = "content-length") headers with
  | [] -> Ok None
  | [ (_, v) ] -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 0 -> Ok (Some n)
      | _ -> Error (`Bad_request (Printf.sprintf "invalid Content-Length %S" v)))
  | _ :: _ :: _ -> Error (`Bad_request "duplicate Content-Length")

let parse_head d head =
  match split_lines head with
  | [] | [ "" ] -> Error (`Bad_request "empty request head")
  | request_line :: header_lines -> (
      match parse_request_line request_line with
      | Error _ as e -> e
      | Ok (meth, target, version) -> (
          let rec headers acc = function
            | [] -> Ok (List.rev acc)
            | "" :: rest -> headers acc rest
            | line :: rest -> (
                match parse_header_line line with
                | Ok h -> headers (h :: acc) rest
                | Error _ as e -> e)
          in
          match headers [] header_lines with
          | Error _ as e -> e
          | Ok headers -> (
              match content_length headers with
              | Error _ as e -> e
              | Ok None when body_expected meth -> Error `Length_required
              | Ok len -> (
                  let need = Option.value len ~default:0 in
                  if need > d.max_body then Error (`Payload_too_large need)
                  else
                    let path, query = split_target target in
                    Ok
                      ( {
                          meth;
                          target;
                          path;
                          query;
                          version;
                          headers;
                          body = "";
                        },
                        need )))))

let rec next d =
  match d.state with
  | Failed e -> `Error e
  | Head -> (
      match find_head_end d.pending with
      | None ->
          if String.length d.pending > d.max_header then (
            let e = `Bad_request "request head too large" in
            d.state <- Failed e;
            `Error e)
          else `Await
      | Some (head, used) -> (
          consume d used;
          match parse_head d head with
          | Error e ->
              d.state <- Failed e;
              `Error e
          | Ok (req, 0) -> `Request req
          | Ok (req, need) ->
              d.state <- Body { head = req; need };
              next d))
  | Body { head; need } ->
      if String.length d.pending < need then `Await
      else begin
        let body = String.sub d.pending 0 need in
        consume d need;
        d.state <- Head;
        `Request { head with body }
      end

let header req name =
  List.assoc_opt (lowercase_ascii name) req.headers

let query_param req name = List.assoc_opt name req.query

let keep_alive req =
  match header req "connection" with
  | Some v -> lowercase_ascii v <> "close"
  | None -> req.version <> "HTTP/1.0"

(* --- responses ------------------------------------------------------ *)

let status_reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 411 -> "Length Required"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let day_name = [| "Sun"; "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat" |]

let month_name =
  [| "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun"; "Jul"; "Aug"; "Sep"; "Oct"; "Nov"; "Dec" |]

let http_date t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%s, %02d %s %04d %02d:%02d:%02d GMT" day_name.(tm.Unix.tm_wday)
    tm.Unix.tm_mday month_name.(tm.Unix.tm_mon) (tm.Unix.tm_year + 1900)
    tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let response ?(headers = []) ?(content_type = "application/json") ?date
    ?(close = false) ~status body =
  let date = match date with Some d -> d | None -> http_date (Unix.time ()) in
  let buf = Buffer.create (256 + String.length body) in
  Printf.bprintf buf "HTTP/1.1 %d %s\r\n" status (status_reason status);
  Printf.bprintf buf "Server: umlfront/1.0\r\n";
  Printf.bprintf buf "Date: %s\r\n" date;
  Printf.bprintf buf "Content-Type: %s\r\n" content_type;
  Printf.bprintf buf "Content-Length: %d\r\n" (String.length body);
  List.iter (fun (n, v) -> Printf.bprintf buf "%s: %s\r\n" n v) headers;
  Printf.bprintf buf "Connection: %s\r\n" (if close then "close" else "keep-alive");
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  Buffer.contents buf
