(* The serving daemon.  Transport and scheduling only — everything a
   request *means* lives in {!Api} (pure), {!Http} (codec) and
   {!Cache} (memoization), which is what keeps this file small enough
   to audit: accept, admit, decode, dispatch, observe, reply.

   Threading model: the acceptor domain owns the listening socket and
   does admission control; each accepted connection becomes one
   fire-and-forget pool task that handles the whole keep-alive
   conversation.  The only cross-domain state is the cache (its own
   mutex), the in-flight counter (atomic) and the root telemetry
   context (merged into under [root_lock]). *)

module Obs = Umlfront_obs
module Json = Umlfront_obs.Json
module Pool = Umlfront_parallel.Pool

type config = {
  port : int;
  pool : int;
  cache_mb : int;
  max_inflight : int;
  timeout_s : float;
  max_body : int;
}

let default_config =
  {
    port = 0;
    pool = 2;
    cache_mb = 32;
    max_inflight = 64;
    timeout_s = 30.;
    max_body = 8 * 1024 * 1024;
  }

type t = {
  config : config;
  listener : Unix.file_descr;
  bound_port : int;
  root : Obs.Context.t;
  root_lock : Mutex.t;
  cache : Cache.t;
  workers : Pool.t;
  inflight_count : int Atomic.t;
  request_count : int Atomic.t;
  stopping : bool Atomic.t;
  started_at : float;
  mutable acceptor : unit Domain.t option;
}

let port t = t.bound_port
let root t = t.root
let cache_stats t = Cache.stats t.cache
let inflight t = Atomic.get t.inflight_count

(* --- socket plumbing -------------------------------------------------- *)

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

(* A dead peer (EPIPE/ECONNRESET) is not a server error: drop the
   bytes, the connection loop closes right after. *)
let send fd s =
  match write_all fd s 0 (String.length s) with
  | () -> ()
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

(* --- request handling ------------------------------------------------- *)

let json_error status message =
  (status, "application/json",
   Json.to_string (Json.Obj [ ("error", Json.String message) ]) ^ "\n")

let overload_body =
  Json.to_string
    (Json.Obj
       [
         ("error", Json.String "server overloaded");
         ("hint", Json.String "retry after the interval in Retry-After");
       ])
  ^ "\n"

let timeout_body =
  Json.to_string
    (Json.Obj
       [
         ("error", Json.String "request deadline exceeded");
         ("hint", Json.String "raise --timeout or simplify the model");
       ])
  ^ "\n"

let observe_request t ~endpoint ~status ~cache_state ~dur_us =
  let r = t.root.Obs.Context.metrics in
  Obs.Metrics.incr ~registry:r "serve.requests";
  Obs.Metrics.incr ~registry:r (Printf.sprintf "serve.status.%dxx" (status / 100));
  Obs.Metrics.incr ~registry:r ("serve.endpoint." ^ endpoint);
  (match cache_state with
  | Some true -> Obs.Metrics.incr ~registry:r "serve.cache.hit"
  | Some false -> Obs.Metrics.incr ~registry:r "serve.cache.miss"
  | None -> ());
  Obs.Metrics.observe ~registry:r "serve.request_us" dur_us

(* One compute request: private context, deadline, cache, merge-back.
   Returns (status, content_type, body, extra headers). *)
let compute t endpoint (req : Http.request) =
  let request_id = Atomic.fetch_and_add t.request_count 1 in
  match Api.options_of_query req.Http.query with
  | Error msg ->
      let status, ct, body = json_error 400 msg in
      (status, ct, body, [ ("X-Request-Id", string_of_int request_id) ], "-")
  | Ok opts -> (
      match Api.parse_model req.Http.body with
      | Error d ->
          ( 422,
            "application/json",
            Json.to_string
              (Json.List [ Umlfront_analysis.Diagnostic.list_to_json [ d ] ])
            ^ "\n",
            [ ("X-Request-Id", string_of_int request_id) ],
            "-" )
      | Ok uml -> (
          let key = Api.cache_key endpoint opts uml in
          match Cache.find t.cache key with
          | Some v ->
              ( v.Cache.status,
                v.Cache.content_type,
                v.Cache.body,
                [
                  ("X-Cache", "hit"); ("X-Request-Id", string_of_int request_id);
                ],
                "hit" )
          | None ->
              (* The private context: spans, counters and journal
                 entries of this request land here and nowhere else.
                 Only metrics and journal are merged back — absorbing
                 every request's span tree into a daemon-lifetime
                 buffer would grow without bound. *)
              let rctx = Obs.Context.create ~trace:true () in
              let deadline = Unix.gettimeofday () +. t.config.timeout_s in
              let outcome =
                Obs.Context.with_current rctx (fun () ->
                    Obs.Journal.record
                      ~fields:
                        [
                          ("endpoint", Json.String (Api.endpoint_name endpoint));
                          ("request", Json.Int request_id);
                        ]
                      "serve.request";
                    match Api.run ~deadline endpoint opts uml with
                    | o -> Ok o
                    | exception Api.Timeout -> Error `Timeout)
              in
              let spans = List.length (Obs.Trace.events_in rctx.Obs.Context.trace) in
              Mutex.lock t.root_lock;
              Obs.Metrics.merge ~into:t.root.Obs.Context.metrics
                rctx.Obs.Context.metrics;
              Obs.Journal.merge ~into:t.root.Obs.Context.journal
                rctx.Obs.Context.journal;
              Mutex.unlock t.root_lock;
              let headers =
                [
                  ("X-Cache", "miss");
                  ("X-Request-Id", string_of_int request_id);
                  ("X-Request-Spans", string_of_int spans);
                ]
              in
              (match outcome with
              | Ok o ->
                  if o.Api.status = 200 then
                    Cache.add t.cache key
                      {
                        Cache.status = o.Api.status;
                        content_type = o.Api.content_type;
                        body = o.Api.body;
                      };
                  (o.Api.status, o.Api.content_type, o.Api.body, headers, "miss")
              | Error `Timeout ->
                  ( 503,
                    "application/json",
                    timeout_body,
                    ("Retry-After", "1") :: headers,
                    "miss" ))))

let metrics_body t =
  let r = t.root.Obs.Context.metrics in
  let c = Cache.stats t.cache in
  Obs.Metrics.set_gauge ~registry:r "serve.cache.hits" (float_of_int c.Cache.hits);
  Obs.Metrics.set_gauge ~registry:r "serve.cache.misses"
    (float_of_int c.Cache.misses);
  Obs.Metrics.set_gauge ~registry:r "serve.cache.evictions"
    (float_of_int c.Cache.evictions);
  Obs.Metrics.set_gauge ~registry:r "serve.cache.entries"
    (float_of_int c.Cache.entries);
  Obs.Metrics.set_gauge ~registry:r "serve.cache.bytes" (float_of_int c.Cache.bytes);
  Obs.Metrics.set_gauge ~registry:r "serve.inflight"
    (float_of_int (Atomic.get t.inflight_count));
  Obs.Openmetrics.render (Obs.Metrics.snapshot ~registry:r ())

let journal_body t =
  Mutex.lock t.root_lock;
  let entries = Obs.Journal.entries_in t.root.Obs.Context.journal in
  Mutex.unlock t.root_lock;
  Json.to_string (Json.List (List.map Obs.Journal.entry_json entries)) ^ "\n"

let healthz_body t =
  Json.to_string
    (Json.Obj
       [
         ("status", Json.String "ok");
         ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
         ("inflight", Json.Int (Atomic.get t.inflight_count));
         ("requests", Json.Int (Atomic.get t.request_count));
         ("pool", Json.Int t.config.pool);
       ])
  ^ "\n"

let method_not_allowed allow =
  let status, ct, body = json_error 405 "method not allowed" in
  (status, ct, body, [ ("Allow", allow) ], "-")

(* Route one decoded request to (status, content_type, body, headers). *)
let handle t (req : Http.request) =
  match Api.endpoint_of_path req.Http.path with
  | Some endpoint ->
      if req.Http.meth = "POST" then compute t endpoint req
      else method_not_allowed "POST"
  | None -> (
      match (req.Http.meth, req.Http.path) with
      | "GET", "/healthz" ->
          (200, "application/json", healthz_body t, [], "-")
      | "GET", "/metrics" ->
          ( 200,
            "application/openmetrics-text; version=1.0.0; charset=utf-8",
            metrics_body t,
            [],
            "-" )
      | "GET", "/journal" -> (200, "application/json", journal_body t, [], "-")
      | _, ("/healthz" | "/metrics" | "/journal") -> method_not_allowed "GET"
      | ("GET" | "HEAD" | "POST"), _ ->
          let status, ct, body = json_error 404 "no such route" in
          (status, ct, body, [], "-")
      | _ ->
          let status, ct, body = json_error 405 "method not allowed" in
          (status, ct, body, [ ("Allow", "GET, POST") ], "-"))

(* The whole conversation on one accepted connection: decode (with
   pipelining — a second buffered request surfaces on the next [next]),
   dispatch, reply, loop while keep-alive.  A codec error is terminal
   for the connection: framing is lost, answer once and close. *)
let conversation t fd =
  let dec = Http.decoder ~max_body:t.config.max_body () in
  let buf = Bytes.create 8192 in
  let rec loop () =
    match Http.next dec with
    | `Request req ->
        let t0 = Unix.gettimeofday () in
        let status, content_type, body, headers, cache_state = handle t req in
        let close = Atomic.get t.stopping || not (Http.keep_alive req) in
        send fd (Http.response ~headers ~content_type ~close ~status body);
        observe_request t
          ~endpoint:
            (match Api.endpoint_of_path req.Http.path with
            | Some e -> Api.endpoint_name e
            | None -> "other")
          ~status
          ~cache_state:
            (match cache_state with
            | "hit" -> Some true
            | "miss" -> Some false
            | _ -> None)
          ~dur_us:((Unix.gettimeofday () -. t0) *. 1e6);
        if not close then loop ()
    | `Error e ->
        let status = Http.error_status e in
        let _, content_type, body = json_error status (Http.error_message e) in
        send fd (Http.response ~content_type ~close:true ~status body)
    | `Await -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> () (* peer closed *)
        | n ->
            Http.feed dec (Bytes.sub_string buf 0 n);
            loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            (* idle past the read timeout *)
            ())
  in
  loop ()

let handle_connection t fd =
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.decr t.inflight_count)
    (fun () ->
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.timeout_s
       with Unix.Unix_error _ -> ());
      try conversation t fd with
      | Unix.Unix_error _ -> () (* torn connection: nothing to answer *)
      | e ->
          (* Anything else is a server bug — but it must cost one 500,
             not a silently dead worker domain. *)
          Obs.Metrics.incr ~registry:t.root.Obs.Context.metrics
            "serve.internal_errors";
          let _, content_type, body =
            json_error 500 ("internal error: " ^ Printexc.to_string e)
          in
          send fd (Http.response ~content_type ~close:true ~status:500 body))

(* Admission control lives here, before any worker is involved: beyond
   [max_inflight] open connections the reply is an immediate 503 with
   Retry-After — overload must degrade to fast rejection, not to a
   growing queue. *)
let accept_loop t =
  let rec loop () =
    match Unix.accept ~cloexec:true t.listener with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        () (* listener closed: stop *)
    | exception Unix.Unix_error (_, _, _) ->
        if Atomic.get t.stopping then () else loop ()
    | fd, _addr ->
        if Atomic.get t.stopping then (
          (try Unix.close fd with Unix.Unix_error _ -> ());
          loop ())
        else if Atomic.get t.inflight_count >= t.config.max_inflight then begin
          Obs.Metrics.incr ~registry:t.root.Obs.Context.metrics "serve.rejected";
          send fd
            (Http.response
               ~headers:[ ("Retry-After", "1") ]
               ~close:true ~status:503 overload_body);
          (* Half-close and drain what the peer already sent: closing
             with unread request bytes in the receive buffer makes TCP
             answer with RST, which can destroy the 503 before the
             client reads it.  The drain is bounded by SO_RCVTIMEO. *)
          (try
             Unix.shutdown fd Unix.SHUTDOWN_SEND;
             Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.2;
             let junk = Bytes.create 4096 in
             while Unix.read fd junk 0 4096 > 0 do
               ()
             done
           with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ());
          loop ()
        end
        else begin
          Atomic.incr t.inflight_count;
          if not (Pool.submit t.workers (fun () -> handle_connection t fd)) then
            (* sequential pool (--pool 0): serve on the acceptor *)
            handle_connection t fd;
          loop ()
        end
  in
  loop ()

let start ?(config = default_config) () =
  (* A peer that disappears mid-reply must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listener = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port));
  Unix.listen listener 128;
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let t =
    {
      config;
      listener;
      bound_port;
      root = Obs.Context.create ~trace:false ();
      root_lock = Mutex.create ();
      cache = Cache.create ~max_bytes:(config.cache_mb * 1024 * 1024);
      (* +1: the owner (acceptor) never helps drain, so [pool] real
         worker domains require a pool of size [pool + 1]. *)
      workers = Pool.create ~domains:(config.pool + 1) ();
      inflight_count = Atomic.make 0;
      request_count = Atomic.make 0;
      stopping = Atomic.make false;
      started_at = Unix.gettimeofday ();
      acceptor = None;
    }
  in
  t.acceptor <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (match t.acceptor with Some d -> Domain.join d | None -> ());
    t.acceptor <- None;
    Pool.shutdown t.workers
  end
