(* The serving daemon.  Transport and scheduling only — everything a
   request *means* lives in {!Api} (pure), {!Http} (codec) and
   {!Cache} (memoization), which is what keeps this file small enough
   to audit: accept, admit, decode, dispatch, observe, reply.

   Threading model: the acceptor domain owns the listening socket and
   does admission control; each accepted connection becomes one
   fire-and-forget pool task that handles the whole keep-alive
   conversation.  The only cross-domain state is the cache (its own
   mutex), the in-flight counter (atomic), the root telemetry context
   (merged into under [root_lock]) and the observability fan-out —
   rolling window, trace store, access log and SSE hub, each behind its
   own lock, and the latter two doing their I/O on their own domains so
   the request path never waits on a disk or a slow stream consumer. *)

module Obs = Umlfront_obs
module Json = Umlfront_obs.Json
module Pool = Umlfront_parallel.Pool

type config = {
  port : int;
  pool : int;
  cache_mb : int;
  max_inflight : int;
  timeout_s : float;
  max_body : int;
  access_log : string option;
  trace_sample : float;
}

let default_config =
  {
    port = 0;
    pool = 2;
    cache_mb = 32;
    max_inflight = 64;
    timeout_s = 30.;
    max_body = 8 * 1024 * 1024;
    access_log = None;
    trace_sample = 0.;
  }

type t = {
  config : config;
  listener : Unix.file_descr;
  bound_port : int;
  root : Obs.Context.t;
  root_lock : Mutex.t;
  cache : Cache.t;
  workers : Pool.t;
  inflight_count : int Atomic.t;
  request_count : int Atomic.t;
  stopping : bool Atomic.t;
  started_at : float;
  window : Obs.Window.t;
  traces : Trace_store.t;
  hub : Events_hub.t;
  access : Access_log.t option;
  mutable acceptor : unit Domain.t option;
}

let port t = t.bound_port
let root t = t.root
let cache_stats t = Cache.stats t.cache
let inflight t = Atomic.get t.inflight_count
let window t = t.window
let subscribers t = Events_hub.subscribers t.hub
let events_dropped t = Events_hub.dropped t.hub
let access_log_dropped t =
  match t.access with Some log -> Access_log.dropped log | None -> 0

(* --- socket plumbing -------------------------------------------------- *)

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

(* A dead peer (EPIPE/ECONNRESET) is not a server error: drop the
   bytes, the connection loop closes right after. *)
let send fd s =
  match write_all fd s 0 (String.length s) with
  | () -> ()
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

(* --- request handling ------------------------------------------------- *)

let json_error status message =
  (status, "application/json",
   Json.to_string (Json.Obj [ ("error", Json.String message) ]) ^ "\n")

let overload_body =
  Json.to_string
    (Json.Obj
       [
         ("error", Json.String "server overloaded");
         ("hint", Json.String "retry after the interval in Retry-After");
       ])
  ^ "\n"

let timeout_body =
  Json.to_string
    (Json.Obj
       [
         ("error", Json.String "request deadline exceeded");
         ("hint", Json.String "raise --timeout or simplify the model");
       ])
  ^ "\n"

(* Everything the observability fan-out wants to know about one served
   request, next to the response itself. *)
type reply = {
  r_status : int;
  r_content_type : string;
  r_body : string;
  r_headers : (string * string) list;
  r_cache : string; (* "hit" | "miss" | "-" *)
  r_spans : int;
  r_model : string option; (* the content hash the cache keys on *)
  r_trace_stored : bool;
}

let reply ?(headers = []) ?(cache = "-") ?(spans = 0) ?model
    ?(trace_stored = false) status content_type body =
  {
    r_status = status;
    r_content_type = content_type;
    r_body = body;
    r_headers = headers;
    r_cache = cache;
    r_spans = spans;
    r_model = model;
    r_trace_stored = trace_stored;
  }

let reply_error status message =
  let status, ct, body = json_error status message in
  reply status ct body

let observe_request t ~endpoint ~status ~cache_state ~dur_us =
  let r = t.root.Obs.Context.metrics in
  Obs.Metrics.incr ~registry:r "serve.requests";
  Obs.Metrics.incr ~registry:r (Printf.sprintf "serve.status.%dxx" (status / 100));
  Obs.Metrics.incr ~registry:r ("serve.endpoint." ^ endpoint);
  (match cache_state with
  | Some true -> Obs.Metrics.incr ~registry:r "serve.cache.hit"
  | Some false -> Obs.Metrics.incr ~registry:r "serve.cache.miss"
  | None -> ());
  Obs.Metrics.observe ~registry:r "serve.request_us" dur_us

(* Deterministic sampling on the request counter: rate 0.25 keeps every
   request whose id falls in the first quarter of each block of 1000.
   Reproducible under test, and immune to RNG state races. *)
let sampled t request_id =
  t.config.trace_sample > 0.
  && float_of_int (request_id mod 1000) < t.config.trace_sample *. 1000.

(* The retained span tree, as a Chrome trace object (same shape as
   {!Obs.Trace.to_json}: traceEvents + displayTimeUnit + otherData). *)
let chrome_trace ~request_id ~endpoint ~trace_id events =
  let sorted = List.sort Obs.Trace.event_order events in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.map Obs.Trace.event_json sorted));
         ("displayTimeUnit", Json.String "ms");
         ( "otherData",
           Json.Obj
             [
               ("tool", Json.String "umlfront");
               ("request", Json.Int request_id);
               ("endpoint", Json.String endpoint);
               ("trace_id", Json.String trace_id);
             ] );
       ])

(* A cache hit computes nothing, so a traced hit retains a one-instant
   tree that says exactly that. *)
let hit_event =
  {
    Obs.Trace.ev_id = -1;
    ev_parent = -1;
    ev_name = "serve.cache.hit";
    ev_cat = "serve";
    ev_ph = 'i';
    ev_ts = 0.0;
    ev_dur = 0.0;
    ev_tid = 1;
    ev_args = [];
  }

(* One compute request: private context, deadline, cache, merge-back,
   optional span-tree retention. *)
let compute t ~request_id ~trace_id endpoint (req : Http.request) =
  match Api.options_of_query req.Http.query with
  | Error msg ->
      let status, ct, body = json_error 400 msg in
      reply status ct body
  | Ok opts -> (
      match Api.parse_model req.Http.body with
      | Error d ->
          reply 422 "application/json"
            (Json.to_string
               (Json.List [ Umlfront_analysis.Diagnostic.list_to_json [ d ] ])
            ^ "\n")
      | Ok uml -> (
          let key = Api.cache_key endpoint opts uml in
          let retain = opts.Api.trace || sampled t request_id in
          let ep = Api.endpoint_name endpoint in
          match Cache.find t.cache key with
          | Some v ->
              if retain then
                Trace_store.add t.traces ~id:(string_of_int request_id)
                  (chrome_trace ~request_id ~endpoint:ep ~trace_id
                     [ hit_event ]);
              reply
                ~headers:[ ("X-Cache", "hit") ]
                ~cache:"hit" ~model:key ~trace_stored:retain v.Cache.status
                v.Cache.content_type v.Cache.body
          | None ->
              (* The private context: spans, counters and journal
                 entries of this request land here and nowhere else.
                 Only metrics and journal are merged back — absorbing
                 every request's span tree into a daemon-lifetime
                 buffer would grow without bound; retained trees go to
                 the bounded {!Trace_store} instead. *)
              let rctx = Obs.Context.create ~trace:true () in
              let deadline = Unix.gettimeofday () +. t.config.timeout_s in
              let outcome =
                Obs.Context.with_current rctx (fun () ->
                    Obs.Journal.record
                      ~fields:
                        [
                          ("endpoint", Json.String ep);
                          ("request", Json.Int request_id);
                        ]
                      "serve.request";
                    match Api.run ~deadline endpoint opts uml with
                    | o -> Ok o
                    | exception Api.Timeout -> Error `Timeout)
              in
              let events = Obs.Trace.events_in rctx.Obs.Context.trace in
              let spans = List.length events in
              if retain then
                Trace_store.add t.traces ~id:(string_of_int request_id)
                  (chrome_trace ~request_id ~endpoint:ep ~trace_id events);
              Mutex.lock t.root_lock;
              Obs.Metrics.merge ~into:t.root.Obs.Context.metrics
                rctx.Obs.Context.metrics;
              Obs.Journal.merge ~into:t.root.Obs.Context.journal
                rctx.Obs.Context.journal;
              Mutex.unlock t.root_lock;
              let headers =
                [ ("X-Cache", "miss"); ("X-Request-Spans", string_of_int spans) ]
              in
              (match outcome with
              | Ok o ->
                  if o.Api.status = 200 then
                    Cache.add t.cache key
                      {
                        Cache.status = o.Api.status;
                        content_type = o.Api.content_type;
                        body = o.Api.body;
                      };
                  reply ~headers ~cache:"miss" ~spans ~model:key
                    ~trace_stored:retain o.Api.status o.Api.content_type
                    o.Api.body
              | Error `Timeout ->
                  reply
                    ~headers:(("Retry-After", "1") :: headers)
                    ~cache:"miss" ~spans ~model:key ~trace_stored:retain 503
                    "application/json" timeout_body)))

let metrics_body t =
  let r = t.root.Obs.Context.metrics in
  let c = Cache.stats t.cache in
  Obs.Metrics.set_gauge ~registry:r "serve.cache.hits" (float_of_int c.Cache.hits);
  Obs.Metrics.set_gauge ~registry:r "serve.cache.misses"
    (float_of_int c.Cache.misses);
  Obs.Metrics.set_gauge ~registry:r "serve.cache.evictions"
    (float_of_int c.Cache.evictions);
  Obs.Metrics.set_gauge ~registry:r "serve.cache.entries"
    (float_of_int c.Cache.entries);
  Obs.Metrics.set_gauge ~registry:r "serve.cache.bytes" (float_of_int c.Cache.bytes);
  Obs.Metrics.set_gauge ~registry:r "serve.inflight"
    (float_of_int (Atomic.get t.inflight_count));
  Obs.Metrics.set_gauge ~registry:r "serve.events.subscribers"
    (float_of_int (Events_hub.subscribers t.hub));
  (* The drop counters must exist from the first scrape, not from the
     first drop. *)
  Obs.Metrics.incr ~registry:r ~by:0 "access_log.dropped";
  Obs.Metrics.incr ~registry:r ~by:0 "serve.events.dropped";
  (* Rolling per-endpoint series out of the window, as labeled gauges:
     the "right now" view next to the lifetime counters. *)
  List.iter
    (fun window_s ->
      let wlabel = Printf.sprintf "%gs" window_s in
      List.iter
        (fun name ->
          let labels = [ ("endpoint", name); ("window", wlabel) ] in
          Obs.Metrics.set_gauge ~registry:r
            (Obs.Openmetrics.labeled "serve.rolling.req_per_s" labels)
            (Obs.Window.rate t.window ~window_s name);
          let q = Obs.Window.quantiles t.window ~window_s name in
          Obs.Metrics.set_gauge ~registry:r
            (Obs.Openmetrics.labeled "serve.rolling.p50_us" labels)
            q.Obs.Window.q_p50;
          Obs.Metrics.set_gauge ~registry:r
            (Obs.Openmetrics.labeled "serve.rolling.p95_us" labels)
            q.Obs.Window.q_p95;
          Obs.Metrics.set_gauge ~registry:r
            (Obs.Openmetrics.labeled "serve.rolling.p99_us" labels)
            q.Obs.Window.q_p99)
        (Obs.Window.names t.window ~window_s:(Obs.Window.max_window_s t.window)))
    Obs.Window.default_windows;
  Obs.Openmetrics.render (Obs.Metrics.snapshot ~registry:r ())

let journal_body t =
  Mutex.lock t.root_lock;
  let entries = Obs.Journal.entries_in t.root.Obs.Context.journal in
  Mutex.unlock t.root_lock;
  Json.to_string (Json.List (List.map Obs.Journal.entry_json entries)) ^ "\n"

let healthz_body t =
  Json.to_string
    (Json.Obj
       [
         ("status", Json.String "ok");
         ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
         ("inflight", Json.Int (Atomic.get t.inflight_count));
         ("requests", Json.Int (Atomic.get t.request_count));
         ("pool", Json.Int t.config.pool);
       ])
  ^ "\n"

let method_not_allowed allow =
  let status, ct, body = json_error 405 "method not allowed" in
  reply ~headers:[ ("Allow", allow) ] status ct body

let trace_route = "/api/trace/"

(* Route one decoded request to a reply.  [/events] never reaches this
   point — the conversation loop hands it to the hub. *)
let handle t ~request_id ~trace_id (req : Http.request) =
  match Api.endpoint_of_path req.Http.path with
  | Some endpoint ->
      if req.Http.meth = "POST" then compute t ~request_id ~trace_id endpoint req
      else method_not_allowed "POST"
  | None -> (
      match (req.Http.meth, req.Http.path) with
      | "GET", "/healthz" -> reply 200 "application/json" (healthz_body t)
      | "GET", "/metrics" ->
          reply 200 "application/openmetrics-text; version=1.0.0; charset=utf-8"
            (metrics_body t)
      | "GET", "/journal" -> reply 200 "application/json" (journal_body t)
      | "GET", "/dashboard" -> reply 200 "text/html; charset=utf-8" (Dashboard.page ())
      | "GET", "/api/windows" ->
          reply 200 "application/json"
            (Json.to_string (Obs.Window.to_json t.window) ^ "\n")
      | "GET", path when String.starts_with ~prefix:trace_route path -> (
          let id =
            String.sub path (String.length trace_route)
              (String.length path - String.length trace_route)
          in
          match Trace_store.find t.traces id with
          | Some payload -> reply 200 "application/json" (payload ^ "\n")
          | None -> reply_error 404 ("no retained trace for request " ^ id))
      | _, ("/healthz" | "/metrics" | "/journal" | "/dashboard" | "/api/windows")
        ->
          method_not_allowed "GET"
      | _, path when String.starts_with ~prefix:trace_route path ->
          method_not_allowed "GET"
      | ("GET" | "HEAD" | "POST"), _ -> reply_error 404 "no such route"
      | _ ->
          let status, ct, body = json_error 405 "method not allowed" in
          reply ~headers:[ ("Allow", "GET, POST") ] status ct body)

(* Endpoint label for window series, access entries and labeled
   counters: the request path for known routes, "other" for noise —
   labels must stay low-cardinality, so the raw path of a 404 never
   becomes one. *)
let endpoint_label (req : Http.request) =
  match Api.endpoint_of_path req.Http.path with
  | Some e -> "/api/" ^ Api.endpoint_name e
  | None -> (
      match req.Http.path with
      | ("/healthz" | "/metrics" | "/journal" | "/dashboard" | "/api/windows"
        | "/events") as p ->
          p
      | p when String.starts_with ~prefix:trace_route p -> "/api/trace"
      | _ -> "other")

(* The post-send fan-out: lifetime metrics, rolling window, root
   journal, access log, SSE.  Everything here is an in-memory append
   under a short lock — the two sinks that do real I/O (log file, SSE
   peers) run on their own domains and absorb or drop. *)
let record_access t (req : Http.request) (rep : reply) ~request_id ~tp ~dur_us =
  let r = t.root.Obs.Context.metrics in
  let ep = endpoint_label req in
  observe_request t
    ~endpoint:
      (match Api.endpoint_of_path req.Http.path with
      | Some e -> Api.endpoint_name e
      | None -> "other")
    ~status:rep.r_status
    ~cache_state:
      (match rep.r_cache with
      | "hit" -> Some true
      | "miss" -> Some false
      | _ -> None)
    ~dur_us;
  Obs.Metrics.incr ~registry:r
    (Obs.Openmetrics.labeled "serve.requests"
       [ ("endpoint", ep); ("status", string_of_int rep.r_status) ]);
  Obs.Window.add t.window ep;
  Obs.Window.observe t.window ep dur_us;
  let fields =
    [
      ("id", Json.Int request_id);
      ("method", Json.String req.Http.meth);
      ("path", Json.String req.Http.path);
      ("endpoint", Json.String ep);
      ("status", Json.Int rep.r_status);
      ("cache", Json.String rep.r_cache);
      ("latency_us", Json.Float dur_us);
      ("spans", Json.Int rep.r_spans);
      ("trace_id", Json.String tp.Traceparent.trace_id);
      ("trace_stored", Json.Bool rep.r_trace_stored);
    ]
    @
    match rep.r_model with
    | Some h -> [ ("model", Json.String h) ]
    | None -> []
  in
  Obs.Journal.record_in t.root.Obs.Context.journal ~fields "serve.access";
  (match t.access with
  | Some log ->
      let line =
        Json.to_string
          (Json.Obj (("ts", Json.Float (Unix.gettimeofday ())) :: fields))
      in
      if not (Access_log.append log line) then
        Obs.Metrics.incr ~registry:r "access_log.dropped"
  | None -> ());
  let drops =
    Events_hub.publish t.hub
      (Sse.frame ~name:"request" (Json.to_string (Json.Obj fields)))
  in
  if drops > 0 then Obs.Metrics.incr ~registry:r ~by:drops "serve.events.dropped"

(* [/events]: write the response head and hello frame into the hub's
   outbox and hand the socket over — the conversation (and its worker
   slot) ends here, the pump domain owns the fd from now on. *)
let sse_greeting t ~request_id =
  let head =
    String.concat "\r\n"
      [
        "HTTP/1.1 200 OK";
        "Server: umlfront/1.0";
        "Content-Type: text/event-stream";
        "Cache-Control: no-cache";
        "X-Request-Id: " ^ string_of_int request_id;
        "Connection: close";
        "";
        "";
      ]
  in
  let hello =
    Json.to_string
      (Json.Obj
         [
           ("server", Json.String "umlfront");
           ("port", Json.Int t.bound_port);
           ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
         ])
  in
  head ^ Sse.frame ~name:"hello" hello

(* The whole conversation on one accepted connection: decode (with
   pipelining — a second buffered request surfaces on the next [next]),
   dispatch, reply, loop while keep-alive.  A codec error is terminal
   for the connection: framing is lost, answer once and close.
   Returns [`Hijacked] when the fd now belongs to the events hub. *)
let conversation t fd =
  let dec = Http.decoder ~max_body:t.config.max_body () in
  let buf = Bytes.create 8192 in
  let rec loop () =
    match Http.next dec with
    | `Request req ->
        let t0 = Unix.gettimeofday () in
        let request_id = Atomic.fetch_and_add t.request_count 1 in
        (* Join the caller's trace or start one; either way the
           response carries this hop's own parent-id. *)
        let tp =
          match Option.bind (Http.header req "traceparent") Traceparent.parse with
          | Some inbound -> Traceparent.child inbound
          | None -> Traceparent.generate ()
        in
        if req.Http.meth = "GET" && req.Http.path = "/events" then
          if Events_hub.subscribe t.hub fd ~greeting:(sse_greeting t ~request_id)
          then `Hijacked
          else begin
            Obs.Metrics.incr ~registry:t.root.Obs.Context.metrics
              "serve.events.rejected";
            send fd
              (Http.response
                 ~headers:[ ("Retry-After", "1") ]
                 ~close:true ~status:503 overload_body);
            `Done
          end
        else begin
          let rep = handle t ~request_id ~trace_id:tp.Traceparent.trace_id req in
          let close = Atomic.get t.stopping || not (Http.keep_alive req) in
          send fd
            (Http.response
               ~headers:
                 (rep.r_headers
                 @ [
                     ("X-Request-Id", string_of_int request_id);
                     ("traceparent", Traceparent.to_string tp);
                   ])
               ~content_type:rep.r_content_type ~close ~status:rep.r_status
               rep.r_body);
          record_access t req rep ~request_id ~tp
            ~dur_us:((Unix.gettimeofday () -. t0) *. 1e6);
          if close then `Done else loop ()
        end
    | `Error e ->
        let status = Http.error_status e in
        let _, content_type, body = json_error status (Http.error_message e) in
        send fd (Http.response ~content_type ~close:true ~status body);
        `Done
    | `Await -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> `Done (* peer closed *)
        | n ->
            Http.feed dec (Bytes.sub_string buf 0 n);
            loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            (* idle past the read timeout *)
            `Done)
  in
  loop ()

let handle_connection t fd =
  let hijacked = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !hijacked then (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.decr t.inflight_count)
    (fun () ->
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.timeout_s
       with Unix.Unix_error _ -> ());
      match conversation t fd with
      | `Hijacked -> hijacked := true
      | `Done -> ()
      | exception Unix.Unix_error _ -> () (* torn connection: nothing to answer *)
      | exception e ->
          (* Anything else is a server bug — but it must cost one 500,
             not a silently dead worker domain. *)
          Obs.Metrics.incr ~registry:t.root.Obs.Context.metrics
            "serve.internal_errors";
          let _, content_type, body =
            json_error 500 ("internal error: " ^ Printexc.to_string e)
          in
          send fd (Http.response ~content_type ~close:true ~status:500 body))

(* Admission control lives here, before any worker is involved: beyond
   [max_inflight] open connections the reply is an immediate 503 with
   Retry-After — overload must degrade to fast rejection, not to a
   growing queue. *)
let accept_loop t =
  let rec loop () =
    match Unix.accept ~cloexec:true t.listener with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        () (* listener closed: stop *)
    | exception Unix.Unix_error (_, _, _) ->
        if Atomic.get t.stopping then () else loop ()
    | fd, _addr ->
        if Atomic.get t.stopping then (
          (try Unix.close fd with Unix.Unix_error _ -> ());
          loop ())
        else if Atomic.get t.inflight_count >= t.config.max_inflight then begin
          Obs.Metrics.incr ~registry:t.root.Obs.Context.metrics "serve.rejected";
          send fd
            (Http.response
               ~headers:[ ("Retry-After", "1") ]
               ~close:true ~status:503 overload_body);
          (* Half-close and drain what the peer already sent: closing
             with unread request bytes in the receive buffer makes TCP
             answer with RST, which can destroy the 503 before the
             client reads it.  The drain is bounded by SO_RCVTIMEO. *)
          (try
             Unix.shutdown fd Unix.SHUTDOWN_SEND;
             Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.2;
             let junk = Bytes.create 4096 in
             while Unix.read fd junk 0 4096 > 0 do
               ()
             done
           with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ());
          loop ()
        end
        else begin
          Atomic.incr t.inflight_count;
          if not (Pool.submit t.workers (fun () -> handle_connection t fd)) then
            (* sequential pool (--pool 0): serve on the acceptor *)
            handle_connection t fd;
          loop ()
        end
  in
  loop ()

let start ?(config = default_config) () =
  (* A peer that disappears mid-reply must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listener = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port));
  Unix.listen listener 128;
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let window = Obs.Window.create () in
  let hub =
    Events_hub.create
      ~heartbeat:(fun () ->
        Sse.frame ~name:"window" (Json.to_string (Obs.Window.to_json window)))
      ()
  in
  let t =
    {
      config;
      listener;
      bound_port;
      root = Obs.Context.create ~trace:false ();
      root_lock = Mutex.create ();
      cache = Cache.create ~max_bytes:(config.cache_mb * 1024 * 1024);
      (* +1: the owner (acceptor) never helps drain, so [pool] real
         worker domains require a pool of size [pool + 1]. *)
      workers = Pool.create ~domains:(config.pool + 1) ();
      inflight_count = Atomic.make 0;
      request_count = Atomic.make 0;
      stopping = Atomic.make false;
      started_at = Unix.gettimeofday ();
      window;
      traces = Trace_store.create ();
      hub;
      access = Option.map (fun path -> Access_log.create ~path) config.access_log;
      acceptor = None;
    }
  in
  t.acceptor <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (match t.acceptor with Some d -> Domain.join d | None -> ());
    t.acceptor <- None;
    Pool.shutdown t.workers;
    Events_hub.stop t.hub;
    Option.iter Access_log.close t.access
  end
