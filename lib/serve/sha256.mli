(** Pure-OCaml SHA-256 (FIPS 180-4), dependency-free.

    The serving layer keys its response cache on a cryptographic hash of
    the canonical model bytes plus the endpoint and its options
    ({!Umlfront_core.Flow.cache_material}); the stdlib only ships MD5
    ([Digest]), so the compression function lives here.  Performance is
    a non-goal — requests hash a few kilobytes of XMI — correctness is
    pinned against the FIPS test vectors in the test suite. *)

val digest : string -> string
(** Raw 32-byte digest. *)

val hex : string -> string
(** Lowercase hex digest (64 characters), the cache-key spelling. *)
