(** Content-addressed LRU response cache.

    Keys are SHA-256 hex strings over canonical model bytes + endpoint
    + options ({!Api.cache_key}); values are complete response payloads.
    The cache is bounded by total byte size (bodies + keys), evicting
    least-recently-used entries, and is safe to share across the server
    worker domains (one mutex — lookups are string hashing, not work).

    Hit/miss/eviction counts accumulate in {!stats}; the server mirrors
    them into its metrics registry so they surface on [/metrics]. *)

type value = { status : int; content_type : string; body : string }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;  (** currently held *)
  capacity : int;  (** the byte bound *)
}

type t

val create : max_bytes:int -> t
(** [max_bytes <= 0] disables caching: every lookup misses, nothing is
    stored. *)

val find : t -> string -> value option
(** Bumps the entry to most-recently-used and counts a hit; counts a
    miss when absent. *)

val add : t -> string -> value -> unit
(** Insert (or refresh) and evict LRU entries until the bound holds.  A
    value larger than the whole bound is not stored. *)

val stats : t -> stats
