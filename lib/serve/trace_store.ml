(* Bounded store of retained request traces: request id -> the
   Chrome-trace JSON of that request's private span buffer, kept for
   requests that asked ([?trace=1]) or were sampled ([--trace-sample]).
   A plain ring over insertion order — when the [capacity+1]-th trace
   arrives the oldest is evicted, so a daemon under full sampling holds
   at most [capacity] span trees, never one per request served. *)

type t = {
  capacity : int;
  table : (string, string) Hashtbl.t;
  order : string Queue.t; (* insertion order, front = oldest *)
  mutable evicted : int;
  lock : Mutex.t;
}

let create ?(capacity = 128) () =
  if capacity < 1 then invalid_arg "trace_store: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create 64;
    order = Queue.create ();
    evicted = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let add t ~id payload =
  locked t @@ fun () ->
  if not (Hashtbl.mem t.table id) then begin
    while Queue.length t.order >= t.capacity do
      let victim = Queue.pop t.order in
      Hashtbl.remove t.table victim;
      t.evicted <- t.evicted + 1
    done;
    Hashtbl.replace t.table id payload;
    Queue.add id t.order
  end

let find t id = locked t @@ fun () -> Hashtbl.find_opt t.table id

let ids t = locked t @@ fun () -> List.of_seq (Queue.to_seq t.order)

let size t = locked t @@ fun () -> Queue.length t.order
let evicted t = locked t @@ fun () -> t.evicted
