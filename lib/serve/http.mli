(** A minimal, transport-independent HTTP/1.1 codec.

    The decoder is incremental: bytes go in with {!feed} in whatever
    chunks the socket produced (a torn 1-byte-at-a-time read is fine),
    and {!next} yields complete requests one at a time — pipelined
    requests left in the buffer surface on the following {!next}.  The
    codec never touches a file descriptor, which is what lets the test
    suite fuzz it without a socket in sight.

    Deliberate strictness (each pinned by a unit test):
    - header names are case-insensitive and stored lowercased;
    - a request with a body must carry [Content-Length]
      ([`Length_required] — chunked encoding is not supported);
    - duplicate [Content-Length] headers are rejected ([`Bad_request]),
      per RFC 7230 §3.3.2's smuggling concern;
    - declared bodies larger than [max_body] are rejected
      ([`Payload_too_large]) before a single body byte is buffered. *)

type request = {
  meth : string;  (** uppercase, e.g. ["POST"] *)
  target : string;  (** the raw request target, e.g. ["/api/lint?file=x"] *)
  path : string;  (** target up to [?], percent-decoded *)
  query : (string * string) list;  (** decoded query pairs, in order *)
  version : string;  (** ["HTTP/1.1"] *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

type error =
  [ `Bad_request of string  (** unparseable request line / headers *)
  | `Length_required  (** body-bearing method without Content-Length *)
  | `Payload_too_large of int  (** declared Content-Length *) ]

val error_status : error -> int
(** 400, 411 or 413. *)

val error_message : error -> string

type decoder

val decoder : ?max_body:int -> ?max_header:int -> unit -> decoder
(** [max_body] (default 8 MiB) bounds the declared Content-Length;
    [max_header] (default 16 KiB) bounds the request head.  An error is
    sticky: once a decoder reports one, the connection is unparseable
    (framing is lost) and must be closed. *)

val feed : decoder -> string -> unit
(** Append raw bytes from the transport. *)

val next : decoder -> [ `Request of request | `Await | `Error of error ]
(** The next complete request, [`Await] when more bytes are needed. *)

val buffered : decoder -> int
(** Bytes fed but not yet consumed — pipelined requests in waiting. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query_param : request -> string -> string option

val keep_alive : request -> bool
(** False on [Connection: close] (HTTP/1.1 defaults to persistent). *)

(** {1 Responses} *)

val status_reason : int -> string
(** ["OK"], ["Not Found"], …; ["Unknown"] for unregistered codes. *)

val http_date : float -> string
(** IMF-fixdate, e.g. ["Sun, 09 Aug 2026 12:00:00 GMT"]. *)

val response :
  ?headers:(string * string) list ->
  ?content_type:string ->
  ?date:string ->
  ?close:bool ->
  status:int ->
  string ->
  string
(** Serialize a full response: status line, [Server]/[Date]/
    [Content-Type]/[Content-Length]/[Connection] headers, the extra
    [headers], a blank line, then the body.  [content_type] defaults to
    ["application/json"], [date] to {!http_date} of now (tests pass a
    fixed date so the bytes pin), [close] picks the [Connection]
    header. *)

(** {1 Percent / query encoding} *)

val percent_decode : string -> string
val split_target : string -> string * (string * string) list
