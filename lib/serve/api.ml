module U = Umlfront_uml
module Core = Umlfront_core
module Dataflow = Umlfront_dataflow
module Codegen = Umlfront_codegen
module A = Umlfront_analysis
module Conf = Umlfront_conformance.Conform
module Obs = Umlfront_obs
module Json = Umlfront_obs.Json

exception Timeout

type endpoint =
  | Lint
  | Transform
  | Simulate
  | Conform
  | Generate of [ `C | `Java | `Kpn ]

let endpoint_name = function
  | Lint -> "lint"
  | Transform -> "transform"
  | Simulate -> "simulate"
  | Conform -> "conform"
  | Generate `C -> "generate/c"
  | Generate `Java -> "generate/java"
  | Generate `Kpn -> "generate/kpn"

let all_endpoints =
  [ Lint; Transform; Simulate; Conform; Generate `C; Generate `Java; Generate `Kpn ]

let endpoint_of_path path =
  List.find_opt (fun e -> path = "/api/" ^ endpoint_name e) all_endpoints

type options = {
  strategy : Core.Flow.allocation_strategy;
  rounds : int;
  engine : Conf.engine;
  backends : Conf.backend list option;
  file : string option;
  trace : bool;
}

let default_options =
  {
    strategy = Core.Flow.Prefer_deployment;
    rounds = 10;
    engine = `Seq;
    backends = None;
    file = None;
    trace = false;
  }

let max_rounds = 10_000

(* The query string mirrors the CLI flag vocabulary; [cpus] wins over
   [strategy] exactly as `--cpus` does in bin/umlfront. *)
let options_of_query query =
  let ( let* ) = Result.bind in
  let rec fold opts cpus = function
    | [] -> Ok (opts, cpus)
    | (key, value) :: rest -> (
        match key with
        | "strategy" ->
            let* strategy =
              match value with
              | "deployment" -> Ok Core.Flow.Use_deployment
              | "prefer-deployment" -> Ok Core.Flow.Prefer_deployment
              | "linear" -> Ok Core.Flow.Infer_linear
              | other -> Error (Printf.sprintf "unknown strategy %S" other)
            in
            fold { opts with strategy } cpus rest
        | "cpus" -> (
            match int_of_string_opt value with
            | Some n when n >= 1 -> fold opts (Some n) rest
            | _ -> Error (Printf.sprintf "invalid cpus %S" value))
        | "rounds" -> (
            match int_of_string_opt value with
            | Some n when n >= 1 && n <= max_rounds ->
                fold { opts with rounds = n } cpus rest
            | _ ->
                Error
                  (Printf.sprintf "invalid rounds %S (expected 1..%d)" value
                     max_rounds))
        | "engine" ->
            let* engine = Conf.engine_of_string value in
            fold { opts with engine } cpus rest
        | "backends" ->
            let* backends =
              List.fold_left
                (fun acc name ->
                  let* acc = acc in
                  let* b = Conf.backend_of_string (String.trim name) in
                  Ok (b :: acc))
                (Ok [])
                (String.split_on_char ',' value)
            in
            fold { opts with backends = Some (List.rev backends) } cpus rest
        | "file" -> fold { opts with file = Some value } cpus rest
        | "trace" -> (
            match value with
            | "1" | "true" -> fold { opts with trace = true } cpus rest
            | "0" | "false" -> fold { opts with trace = false } cpus rest
            | other -> Error (Printf.sprintf "invalid trace %S" other))
        | other -> Error (Printf.sprintf "unknown query parameter %S" other))
  in
  match fold default_options None query with
  | Error _ as e -> e
  | Ok (opts, cpus) -> (
      match cpus with
      | Some n -> Ok { opts with strategy = Core.Flow.Infer_bounded n }
      | None -> Ok opts)

(* --- error bodies ---------------------------------------------------- *)

(* Errors wear the same JSON clothes as lint findings: a Diagnostic.t
   list rendered through the one shared encoder.  UF901 = the request
   body is not parseable XMI; UF902 = the model parsed but the flow (or
   an executor) rejected it.  Codes are stable, like the lint catalog
   (doc/serving.md). *)

let diagnostic_body d =
  Json.to_string (Json.List [ A.Diagnostic.list_to_json [ d ] ]) ^ "\n"

let parse_model body =
  match U.Xmi.of_string body with
  | model -> Ok model
  | exception Umlfront_xml.Xml.Parse_error { line; column; message } ->
      Error
        (A.Diagnostic.error ~code:"UF901" ~path:[ "request"; "body" ]
           ~hint:"POST the XMI text of a UML model, as written by `umlfront example`"
           (Printf.sprintf "malformed XMI at %d:%d: %s" line column message))
  | exception (Failure m | Invalid_argument m) ->
      Error
        (A.Diagnostic.error ~code:"UF901" ~path:[ "request"; "body" ]
           ~hint:"POST the XMI text of a UML model, as written by `umlfront example`"
           (Printf.sprintf "malformed XMI: %s" m))

(* --- cache identity -------------------------------------------------- *)

let canonical_options endpoint opts =
  String.concat "\n"
    [
      "endpoint=" ^ endpoint_name endpoint;
      "rounds=" ^ string_of_int opts.rounds;
      "engine=" ^ Conf.engine_name opts.engine;
      ( "backends="
      ^
      match opts.backends with
      | None -> "all"
      | Some bs -> String.concat "," (List.map Conf.backend_name bs) );
      ("file=" ^ match opts.file with None -> "" | Some f -> f);
    ]

let cache_key endpoint opts uml =
  Sha256.hex
    (canonical_options endpoint opts ^ "\n"
    ^ Core.Flow.cache_material ~strategy:opts.strategy uml)

(* --- endpoints ------------------------------------------------------- *)

type outcome = { status : int; content_type : string; body : string }

let json_outcome ?(status = 200) body =
  { status; content_type = "application/json"; body }

let check_deadline deadline =
  match deadline with
  | Some t when Unix.gettimeofday () > t -> raise Timeout
  | _ -> ()

let flow ?deadline opts uml =
  let output = Core.Flow.run ~strategy:opts.strategy uml in
  check_deadline deadline;
  output

(* Exactly the CLI's `lint --format json` bytes: a list with one entry
   per model (one, here), through the shared Diagnostic encoder. *)
let lint ?deadline opts uml =
  let output = flow ?deadline opts uml in
  let ds = A.Lint.check ~uml output.Core.Flow.caam in
  json_outcome
    (Json.to_string
       (Json.List [ A.Diagnostic.list_to_json ?file:opts.file ds ])
    ^ "\n")

let transform ?deadline opts uml =
  let output = flow ?deadline opts uml in
  json_outcome
    (Json.to_string
       (Json.Obj
          [
            ("model", Json.String uml.U.Model.model_name);
            ("strategy", Json.String (Core.Flow.strategy_name opts.strategy));
            ( "allocation",
              Json.List
                (List.map
                   (fun (thread, cpu) ->
                     Json.Obj
                       [
                         ("thread", Json.String thread); ("cpu", Json.String cpu);
                       ])
                   output.Core.Flow.allocation) );
            ("intra_channels", Json.Int output.Core.Flow.intra_channels);
            ("inter_channels", Json.Int output.Core.Flow.inter_channels);
            ("delays_inserted", Json.Int output.Core.Flow.delays_inserted);
            ( "broken_cycles",
              Json.List
                (List.map
                   (fun cycle ->
                     Json.List (List.map (fun b -> Json.String b) cycle))
                   output.Core.Flow.broken_cycles) );
            ( "fsms",
              Json.List
                (List.map
                   (fun (name, _) -> Json.String name)
                   output.Core.Flow.fsms) );
            ("mdl", Json.String output.Core.Flow.mdl);
          ])
    ^ "\n")

let simulate ?deadline opts uml =
  let output = flow ?deadline opts uml in
  let sdf = Dataflow.Sdf.of_model output.Core.Flow.caam in
  check_deadline deadline;
  let outcome =
    match opts.engine with
    | `Seq -> Dataflow.Exec.run ~rounds:opts.rounds sdf
    | `Compiled -> Dataflow.Compiled.run ~rounds:opts.rounds sdf
  in
  check_deadline deadline;
  json_outcome
    (Json.to_string
       (Json.Obj
          [
            ("model", Json.String uml.U.Model.model_name);
            ("rounds", Json.Int outcome.Dataflow.Exec.rounds);
            ("engine", Json.String (Conf.engine_name opts.engine));
            ( "traces",
              Json.List
                (List.map
                   (fun (port, samples) ->
                     Json.Obj
                       [
                         ("port", Json.String port);
                         ( "samples",
                           Json.List
                             (Array.to_list
                                (Array.map (fun v -> Json.Float v) samples)) );
                       ])
                   outcome.Dataflow.Exec.traces) );
            ( "firings",
              Json.Obj
                (List.map
                   (fun (actor, n) -> (actor, Json.Int n))
                   outcome.Dataflow.Exec.firings) );
          ])
    ^ "\n")

(* Exactly the CLI's `conform --format json` bytes. *)
let conform ?deadline opts uml =
  let output = flow ?deadline opts uml in
  let report =
    Conf.check ?backends:opts.backends ~engine:opts.engine ~rounds:opts.rounds
      output.Core.Flow.caam
  in
  check_deadline deadline;
  json_outcome (Json.to_string (Conf.to_json report) ^ "\n")

let generate ?deadline lang opts uml =
  let output = flow ?deadline opts uml in
  let caam = output.Core.Flow.caam in
  let diagnostics = A.Lint.check ~uml caam in
  check_deadline deadline;
  let language, files =
    match lang with
    | `C -> ("c", (Codegen.Gen_threads.generate ~rounds:opts.rounds caam).Codegen.Gen_threads.files)
    | `Java ->
        ("java", [ ("GeneratedModel.java", Codegen.Gen_java.generate ~rounds:opts.rounds caam) ])
    | `Kpn -> ("kpn", [ ("model_kpn.ml", Codegen.Gen_kpn.generate ~rounds:opts.rounds caam) ])
  in
  check_deadline deadline;
  json_outcome
    (Json.to_string
       (Json.Obj
          [
            ("model", Json.String uml.U.Model.model_name);
            ("language", Json.String language);
            ("rounds", Json.Int opts.rounds);
            ("diagnostics", A.Diagnostic.list_to_json diagnostics);
            ( "files",
              Json.Obj (List.map (fun (name, text) -> (name, Json.String text)) files)
            );
          ])
    ^ "\n")

let run ?deadline endpoint opts uml =
  let dispatch () =
    match endpoint with
    | Lint -> lint ?deadline opts uml
    | Transform -> transform ?deadline opts uml
    | Simulate -> simulate ?deadline opts uml
    | Conform -> conform ?deadline opts uml
    | Generate lang -> generate ?deadline lang opts uml
  in
  match dispatch () with
  | outcome -> outcome
  | exception (Failure m | Invalid_argument m) ->
      {
        status = 422;
        content_type = "application/json";
        body =
          diagnostic_body
            (A.Diagnostic.error ~code:"UF902" ~path:[ "flow" ]
               (Printf.sprintf "flow rejected the model: %s" m));
      }
  | exception Dataflow.Exec.Deadlock cycle ->
      {
        status = 422;
        content_type = "application/json";
        body =
          diagnostic_body
            (A.Diagnostic.error ~code:"UF902" ~path:[ "flow" ]
               ("deadlock (zero-delay cycle): " ^ String.concat " -> " cycle));
      }
