(* The [GET /events] broadcast hub: one pump domain owns every SSE
   subscriber socket, so the request path never writes to (or waits
   on) a streaming peer.

   [publish] appends a pre-rendered frame to each subscriber's bounded
   outbox under the hub mutex — string append, no syscall — and pokes
   the pump through a self-pipe.  The pump multiplexes with
   [Unix.select] (OCaml's [Condition] has no timed wait; the self-pipe
   gives wakeups, the select timeout gives the heartbeat): flushes
   outboxes through non-blocking writes ([EAGAIN] keeps the bytes for
   later, a torn peer is closed and dropped), reads subscriber sockets
   only to notice EOF, and on every heartbeat interval broadcasts the
   frame the [heartbeat] callback renders — a fresh window snapshot, so
   an idle server still streams state and a curl with a timeout always
   has something to read.

   A subscriber whose outbox is full (a consumer that stopped reading)
   loses frames, counted in [dropped] — same telemetry contract as the
   access log: lose an event, never stall a request. *)

type sub = {
  fd : Unix.file_descr;
  mutable outbox : string; (* bytes accepted but not yet written *)
}

type t = {
  max_subs : int;
  max_outbox : int;
  heartbeat_s : float;
  heartbeat : unit -> string;
  mutable subs : sub list;
  mutable dropped : int;
  mutable stopping : bool;
  lock : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable pump : unit Domain.t option;
}

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let wake t =
  match Unix.write_substring t.wake_w "w" 0 1 with
  | _ -> ()
  | exception Unix.Unix_error _ -> () (* pipe full: pump is awake anyway *)

let subscribers t = locked t (fun () -> List.length t.subs)
let dropped t = locked t (fun () -> t.dropped)

(* Claim [fd] for the hub (the connection handler must not close it
   afterwards); [greeting] is the first payload — response head plus
   hello frame.  Refuses past [max_subs]. *)
let subscribe t fd ~greeting =
  let accepted =
    locked t @@ fun () ->
    if t.stopping || List.length t.subs >= t.max_subs then false
    else begin
      t.subs <- { fd; outbox = greeting } :: t.subs;
      true
    end
  in
  if accepted then begin
    (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
    wake t
  end;
  accepted

(* Append [frame] to every outbox; full outboxes drop the frame (and
   count it).  Returns how many subscribers dropped it. *)
let publish t frame =
  let drops =
    locked t @@ fun () ->
    List.fold_left
      (fun drops sub ->
        if String.length sub.outbox + String.length frame > t.max_outbox then begin
          t.dropped <- t.dropped + 1;
          drops + 1
        end
        else begin
          sub.outbox <- sub.outbox ^ frame;
          drops
        end)
      0 t.subs
  in
  wake t;
  drops

(* --- the pump domain -------------------------------------------------- *)

let close_sub sub = try Unix.close sub.fd with Unix.Unix_error _ -> ()

let flush_sub t sub =
  let bytes = locked t (fun () -> sub.outbox) in
  if bytes = "" then true
  else
    match Unix.write_substring sub.fd bytes 0 (String.length bytes) with
    | n ->
        locked t (fun () ->
            (* Concurrent publishes only ever append, so dropping the
               written prefix is safe. *)
            sub.outbox <-
              String.sub sub.outbox n (String.length sub.outbox - n));
        true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        true
    | exception Unix.Unix_error (_, _, _) -> false

(* A readable SSE subscriber either closed (EOF) or sent bytes we have
   no use for; only EOF/errors matter. *)
let sub_gone sub =
  let junk = Bytes.create 512 in
  match Unix.read sub.fd junk 0 512 with
  | 0 -> true
  | _ -> false
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      false
  | exception Unix.Unix_error (_, _, _) -> true

let pump_loop t =
  let junk = Bytes.create 64 in
  let next_beat = ref (Unix.gettimeofday () +. t.heartbeat_s) in
  let rec loop () =
    let subs = locked t (fun () -> t.subs) in
    let want_write =
      List.filter_map
        (fun sub -> if sub.outbox = "" then None else Some sub.fd)
        subs
    in
    let all = List.map (fun sub -> sub.fd) subs in
    let timeout = Float.max 0.02 (!next_beat -. Unix.gettimeofday ()) in
    let readable, writable =
      match Unix.select (t.wake_r :: all) want_write [] timeout with
      | r, w, _ -> (r, w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ([], [])
    in
    if List.mem t.wake_r readable then (
      try ignore (Unix.read t.wake_r junk 0 64) with Unix.Unix_error _ -> ());
    let dead =
      List.filter
        (fun sub ->
          (List.mem sub.fd readable && sub_gone sub)
          || (List.mem sub.fd writable && not (flush_sub t sub)))
        subs
    in
    if dead <> [] then begin
      locked t (fun () ->
          t.subs <- List.filter (fun s -> not (List.memq s dead)) t.subs);
      List.iter close_sub dead
    end;
    let now = Unix.gettimeofday () in
    if now >= !next_beat then begin
      next_beat := now +. t.heartbeat_s;
      ignore (publish t (t.heartbeat ()))
    end;
    if not (locked t (fun () -> t.stopping)) then loop ()
  in
  loop ()

let create ?(max_subs = 32) ?(max_outbox = 256 * 1024) ?(heartbeat_s = 2.0)
    ~heartbeat () =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  (try Unix.set_nonblock wake_w with Unix.Unix_error _ -> ());
  (try Unix.set_nonblock wake_r with Unix.Unix_error _ -> ());
  let t =
    {
      max_subs;
      max_outbox;
      heartbeat_s;
      heartbeat;
      subs = [];
      dropped = 0;
      stopping = false;
      lock = Mutex.create ();
      wake_r;
      wake_w;
      pump = None;
    }
  in
  t.pump <- Some (Domain.spawn (fun () -> pump_loop t));
  t

let stop t =
  let had_pump =
    locked t @@ fun () ->
    if t.stopping then None
    else begin
      t.stopping <- true;
      let p = t.pump in
      t.pump <- None;
      Some p
    end
  in
  match had_pump with
  | None -> ()
  | Some pump ->
      wake t;
      (match pump with Some d -> Domain.join d | None -> ());
      let subs = locked t (fun () -> let s = t.subs in t.subs <- []; s) in
      List.iter close_sub subs;
      (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
      (try Unix.close t.wake_w with Unix.Unix_error _ -> ())
