(* W3C Trace Context `traceparent` header (version 00):

       00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>

   The server honors an inbound header (the request joins the caller's
   trace) and otherwise mints a fresh root; either way the response
   echoes a header whose parent-id is the server's own span for the
   request, so a polyglot caller can stitch the hop into its tree.
   Parsing follows the spec's strictness: exact lengths, lowercase hex,
   all-zero trace-id or parent-id rejected, version ff rejected
   (versions other than 00 are accepted and read as 00, as the spec
   demands of forward-compatible implementations). *)

type t = {
  trace_id : string; (* 32 lowercase hex chars, not all zero *)
  parent_id : string; (* 16 lowercase hex chars, not all zero *)
  flags : int; (* 0..255; bit 0 = sampled *)
}

let sampled t = t.flags land 1 = 1

let is_hex s =
  String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let all_zero s = String.for_all (( = ) '0') s

let parse s =
  match String.split_on_char '-' s with
  | [ version; trace_id; parent_id; flags ]
    when String.length version = 2
         && String.length trace_id = 32
         && String.length parent_id = 16
         && String.length flags = 2
         && is_hex version && is_hex trace_id && is_hex parent_id
         && is_hex flags
         && version <> "ff"
         && (not (all_zero trace_id))
         && not (all_zero parent_id) ->
      Some
        { trace_id; parent_id; flags = int_of_string ("0x" ^ flags) }
  | _ -> None

let to_string t = Printf.sprintf "00-%s-%s-%02x" t.trace_id t.parent_id t.flags

(* Process-local randomness for minted ids; seeded once per process.
   The lock makes id generation safe from worker domains. *)
let rng =
  lazy
    (Random.State.make
       [|
         int_of_float (Unix.gettimeofday () *. 1e6) land 0x3FFFFFFF;
         Unix.getpid ();
       |])

let rng_lock = Mutex.create ()

let hex_digits = "0123456789abcdef"

let random_hex n =
  Mutex.lock rng_lock;
  let st = Lazy.force rng in
  let s = String.init n (fun _ -> hex_digits.[Random.State.int st 16]) in
  Mutex.unlock rng_lock;
  s

let rec nonzero_hex n =
  let s = random_hex n in
  if all_zero s then nonzero_hex n else s

let generate ?(sampled = true) () =
  {
    trace_id = nonzero_hex 32;
    parent_id = nonzero_hex 16;
    flags = (if sampled then 1 else 0);
  }

(* The outbound header for a request that arrived inside [parent]'s
   trace: same trace-id and flags, this hop's own parent-id. *)
let child parent = { parent with parent_id = nonzero_hex 16 }
