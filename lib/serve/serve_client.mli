(** A minimal in-repo HTTP client for [umlfront serve] — the test
    suite's and the bench's view of the server, over the loopback.

    Deliberately boring: one request per connection ([Connection:
    close] is always sent), blocking reads to EOF, no TLS, no
    redirects.  Anything cleverer (keep-alive, pipelining, torn writes)
    the tests do on a raw socket so the failure modes stay visible. *)

type response = {
  status : int;
  reason : string;
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

val request :
  ?headers:(string * string) list ->
  ?body:string ->
  port:int ->
  meth:string ->
  string ->
  response
(** [request ~port ~meth target] against [127.0.0.1:port].  [target]
    is the raw request target (path plus optional query, already
    encoded).  A [body] adds [Content-Length].

    @raise Failure on connection failure or an unparseable response. *)

val get : port:int -> string -> response
val post : ?headers:(string * string) list -> port:int -> string -> string -> response
(** [post ~port target body]. *)

val header : response -> string -> string option
(** Case-insensitive lookup. *)

val request_id : response -> string option
(** The [X-Request-Id] header. *)

val traceparent : response -> string option
(** The W3C [traceparent] echoed by the server. *)

val metrics : port:int -> response
val windows : port:int -> response
val dashboard : port:int -> response
val healthz : port:int -> response

val trace : port:int -> string -> response
(** [trace ~port id] fetches [GET /api/trace/id] — the retained
    Chrome-trace JSON of a sampled or [?trace=1] request. *)

val events :
  ?max_events:int -> ?timeout_s:float -> port:int -> unit -> Sse.event list
(** Stream [GET /events] until [max_events] frames (default 3) arrived
    or [timeout_s] (default 5) elapsed — whichever is first.  Heartbeat
    "window" frames count, so an idle server still answers. *)
