type response = {
  status : int;
  reason : string;
  headers : (string * string) list;
  body : string;
}

let header r name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name r.headers

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let read_to_eof fd =
  let buf = Bytes.create 8192 in
  let acc = Buffer.create 8192 in
  let rec loop () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> Buffer.contents acc
    | n ->
        Buffer.add_subbytes acc buf 0 n;
        loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* Parse "HTTP/1.1 200 OK\r\nName: value\r\n...\r\n\r\nbody".  The body
   is everything after the head: the request always said [Connection:
   close], so EOF delimits it (Content-Length is cross-checked when
   present). *)
let parse_response raw =
  let head_end =
    let rec find i =
      if i + 3 >= String.length raw then
        failwith "serve_client: response head not terminated"
      else if String.sub raw i 4 = "\r\n\r\n" then i
      else find (i + 1)
    in
    find 0
  in
  let head = String.sub raw 0 head_end in
  let body = String.sub raw (head_end + 4) (String.length raw - head_end - 4) in
  match String.split_on_char '\n' head with
  | [] -> failwith "serve_client: empty response"
  | status_line :: header_lines ->
      let status_line = String.trim status_line in
      let status, reason =
        match String.split_on_char ' ' status_line with
        | _http :: code :: rest -> (
            match int_of_string_opt code with
            | Some c -> (c, String.concat " " rest)
            | None -> failwith ("serve_client: bad status line: " ^ status_line))
        | _ -> failwith ("serve_client: bad status line: " ^ status_line)
      in
      let headers =
        List.filter_map
          (fun line ->
            let line = String.trim line in
            if line = "" then None
            else
              match String.index_opt line ':' with
              | None -> None
              | Some i ->
                  Some
                    ( String.lowercase_ascii (String.sub line 0 i),
                      String.trim
                        (String.sub line (i + 1) (String.length line - i - 1))
                    ))
          header_lines
      in
      (match List.assoc_opt "content-length" headers with
      | Some n when int_of_string_opt n <> Some (String.length body) ->
          failwith
            (Printf.sprintf
               "serve_client: body length %d does not match Content-Length %s"
               (String.length body) n)
      | _ -> ());
      { status; reason; headers; body }

let request ?(headers = []) ?body ~port ~meth target =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try
         Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
       with Unix.Unix_error (e, _, _) ->
         failwith
           (Printf.sprintf "serve_client: connect to 127.0.0.1:%d failed: %s"
              port (Unix.error_message e)));
      let buf = Buffer.create 512 in
      Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
      Buffer.add_string buf "Host: 127.0.0.1\r\n";
      Buffer.add_string buf "Connection: close\r\n";
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
        headers;
      (match body with
      | Some b ->
          Buffer.add_string buf
            (Printf.sprintf "Content-Length: %d\r\n" (String.length b))
      | None -> ());
      Buffer.add_string buf "\r\n";
      Option.iter (Buffer.add_string buf) body;
      let bytes = Buffer.contents buf in
      write_all fd bytes 0 (String.length bytes);
      parse_response (read_to_eof fd))

let get ~port target = request ~port ~meth:"GET" target
let post ?headers ~port target body = request ?headers ~body ~port ~meth:"POST" target

(* --- typed views over the observability surface ---------------------- *)

let request_id r = header r "x-request-id"
let traceparent r = header r "traceparent"

let metrics ~port = get ~port "/metrics"
let windows ~port = get ~port "/api/windows"
let dashboard ~port = get ~port "/dashboard"
let trace ~port id = get ~port ("/api/trace/" ^ id)
let healthz ~port = get ~port "/healthz"

(* [/events] never ends on its own, so the one-shot [request] helper
   does not fit: stream on a raw socket with a receive timeout, feed
   the shared {!Sse} parser, and stop at [max_events] frames or
   [timeout_s] seconds, whichever comes first. *)
let events ?(max_events = 3) ?(timeout_s = 5.0) ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25
       with Unix.Unix_error _ -> ());
      let head =
        "GET /events HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n"
      in
      write_all fd head 0 (String.length head);
      let deadline = Unix.gettimeofday () +. timeout_s in
      let parser = Sse.parser () in
      let buf = Bytes.create 8192 in
      let collected = ref [] in
      let in_body = ref false in
      let pending_head = Buffer.create 256 in
      let rec loop () =
        if List.length !collected >= max_events then ()
        else if Unix.gettimeofday () > deadline then ()
        else
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> ()
          | n ->
              let chunk = Bytes.sub_string buf 0 n in
              let payload =
                if !in_body then chunk
                else begin
                  Buffer.add_string pending_head chunk;
                  let all = Buffer.contents pending_head in
                  match
                    let rec find i =
                      if i + 3 >= String.length all then None
                      else if String.sub all i 4 = "\r\n\r\n" then Some (i + 4)
                      else find (i + 1)
                    in
                    find 0
                  with
                  | Some body_start ->
                      in_body := true;
                      String.sub all body_start (String.length all - body_start)
                  | None -> ""
                end
              in
              collected := !collected @ Sse.feed parser payload;
              loop ()
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              loop ()
      in
      loop ();
      let events = !collected in
      if List.length events > max_events then
        List.filteri (fun i _ -> i < max_events) events
      else events)
