module U = Umlfront_uml

let arg = U.Sequence.arg
let payload n = U.Datatype.D_named ("buf", n)

let pipeline_gen ~cpus ~seed ~threads ~extra_edges =
  let state = Random.State.make [| seed |] in
  let prefix = if cpus > 0 then "cpu" else "rand" in
  let b = U.Builder.create (Printf.sprintf "%s%d" prefix seed) in
  let name i = Printf.sprintf "T%c" (Char.chr (Char.code 'A' + i)) in
  for i = 0 to threads - 1 do
    U.Builder.thread b (name i)
  done;
  if cpus > 0 then (
    for c = 1 to cpus do
      U.Builder.cpu b (Printf.sprintf "CPU%d" c)
    done;
    for i = 0 to threads - 1 do
      U.Builder.allocate b ~thread:(name i)
        ~cpu:(Printf.sprintf "CPU%d" ((i mod cpus) + 1))
    done);
  U.Builder.io_device b "IO";
  for i = 0 to threads - 1 do
    U.Builder.passive_object b ~cls:("W" ^ name i) ("w" ^ name i)
  done;
  let edges = ref [] in
  (* Spanning chain keeps everything connected; extra random forward
     edges add fan-out. *)
  for i = 0 to threads - 2 do
    edges := (i, i + 1) :: !edges
  done;
  for _ = 1 to extra_edges do
    let i = Random.State.int state (threads - 1) in
    let j = i + 1 + Random.State.int state (threads - i - 1) in
    if not (List.mem (i, j) !edges) then edges := (i, j) :: !edges
  done;
  let edges = List.rev !edges in
  let work_token i = arg ("w" ^ name i) (payload 4) in
  let edge_token (i, j) bytes = arg (Printf.sprintf "t%d_%d" i j) (payload bytes) in
  let inputs_of j =
    List.filter_map
      (fun (i, j2) -> if j2 = j then Some (edge_token (i, j) 4) else None)
      edges
  in
  U.Builder.call b ~from:(name 0) ~target:"IO" "getIn" ~result:(arg "x0" (payload 4));
  U.Builder.call b ~from:(name 0) ~target:("w" ^ name 0) "work"
    ~args:[ arg "x0" (payload 4) ]
    ~result:(work_token 0);
  for i = 1 to threads - 1 do
    U.Builder.call b ~from:(name i) ~target:("w" ^ name i) "work" ~args:(inputs_of i)
      ~result:(work_token i)
  done;
  List.iter
    (fun (i, j) ->
      let bytes = 1 + Random.State.int state 16 in
      U.Builder.call b ~from:(name i) ~target:("w" ^ name i)
        (Printf.sprintf "pack%d_%d" i j)
        ~args:[ work_token i ]
        ~result:(edge_token (i, j) bytes);
      U.Builder.call b ~from:(name i) ~target:(name j)
        (Printf.sprintf "Set%d_%d" i j)
        ~args:[ edge_token (i, j) bytes ])
    edges;
  U.Builder.call b
    ~from:(name (threads - 1))
    ~target:"IO" "setOut"
    ~args:[ work_token (threads - 1) ];
  U.Builder.finish b

let pipeline ~seed ~threads ~extra_edges =
  pipeline_gen ~cpus:0 ~seed ~threads ~extra_edges

let multi_cpu ~seed ~threads ~cpus ~extra_edges =
  pipeline_gen ~cpus:(max 1 cpus) ~seed ~threads ~extra_edges

let cyclic ~seed ~stages =
  let state = Random.State.make [| seed |] in
  let b = U.Builder.create (Printf.sprintf "cyc%d" seed) in
  let stage i = Printf.sprintf "S%d" i in
  U.Builder.thread b "Tsensor";
  U.Builder.thread b "Tctl";
  for i = 0 to stages - 1 do
    U.Builder.thread b (stage i)
  done;
  U.Builder.platform b "Platform";
  U.Builder.io_device b "IO";
  U.Builder.passive_object b ~cls:"Sense" "sense";
  let f = U.Datatype.D_float in
  U.Builder.call b ~from:"Tsensor" ~target:"IO" "getIn" ~result:(arg "s" f);
  U.Builder.call b ~from:"Tsensor" ~target:"sense" "cond" ~args:[ arg "s" f ]
    ~result:(arg "m" f);
  U.Builder.call b ~from:"Tctl" ~target:"Tsensor" "GetM" ~result:(arg "m" f);
  (* [u] is used before [sat] defines it — the crane-style cyclic data
     dependency the §4.2.2 loop breaker must cut with a UnitDelay. *)
  U.Builder.call b ~from:"Tctl" ~target:"Platform" "sub"
    ~args:[ arg "m" f; arg "u" f ]
    ~result:(arg "e" f);
  U.Builder.call b ~from:"Tctl" ~target:"Platform" "gain" ~args:[ arg "e" f ]
    ~result:(arg "c" f);
  U.Builder.call b ~from:"Tctl" ~target:"Platform" "sat" ~args:[ arg "c" f ]
    ~result:(arg "u" f);
  let prev = ref ("Tctl", "u") in
  for i = 0 to stages - 1 do
    let src, tok = !prev in
    let th = stage i in
    U.Builder.call b ~from:src ~target:th (Printf.sprintf "Set_%s" th)
      ~args:[ arg tok f ];
    let out = Printf.sprintf "y%d" i in
    (if Random.State.bool state then
       U.Builder.call b ~from:th ~target:"Platform" "gain" ~args:[ arg tok f ]
         ~result:(arg out f)
     else (
       U.Builder.passive_object b ~cls:("W" ^ th) ("w" ^ th);
       U.Builder.call b ~from:th ~target:("w" ^ th) "work" ~args:[ arg tok f ]
         ~result:(arg out f)));
    prev := (th, out)
  done;
  let last, tok = !prev in
  U.Builder.call b ~from:last ~target:"IO" "setOut" ~args:[ arg tok f ];
  U.Builder.finish b

let chatty ~seed ~threads ~width =
  let state = Random.State.make [| seed |] in
  let b = U.Builder.create (Printf.sprintf "chat%d" seed) in
  let name i = Printf.sprintf "C%d" i in
  let f = U.Datatype.D_float in
  for i = 0 to threads - 1 do
    U.Builder.thread b (name i)
  done;
  U.Builder.io_device b "IO";
  for i = 0 to threads - 1 do
    U.Builder.passive_object b ~cls:("W" ^ name i) ("w" ^ name i)
  done;
  U.Builder.call b ~from:(name 0) ~target:"IO" "getIn" ~result:(arg "x0" f);
  let inputs = ref [ arg "x0" f ] in
  for i = 0 to threads - 1 do
    let th = name i in
    let fused = arg ("m" ^ th) f in
    U.Builder.call b ~from:th ~target:("w" ^ th) "fuse" ~args:!inputs ~result:fused;
    if i < threads - 1 then (
      let next = name (i + 1) in
      let w = 1 + Random.State.int state (max 1 width) in
      inputs :=
        List.init w (fun k ->
            let t = arg (Printf.sprintf "t%d_%d" i k) f in
            U.Builder.call b ~from:th ~target:("w" ^ th)
              (Printf.sprintf "chan%d" k)
              ~args:[ fused ] ~result:t;
            U.Builder.call b ~from:th ~target:next
              (Printf.sprintf "Set%d_%d" i k)
              ~args:[ t ];
            t))
    else U.Builder.call b ~from:th ~target:"IO" "setOut" ~args:[ fused ]
  done;
  U.Builder.finish b

let wide ~seed ~branches ~depth =
  let state = Random.State.make [| seed |] in
  let b = U.Builder.create (Printf.sprintf "wide%d" seed) in
  let name bi d = Printf.sprintf "B%d_%d" bi d in
  let threads =
    ("SRC" :: List.concat_map
       (fun bi -> List.init depth (fun d -> name bi d))
       (List.init branches (fun bi -> bi)))
    @ [ "SNK" ]
  in
  List.iter (U.Builder.thread b) threads;
  U.Builder.io_device b "IO";
  List.iter (fun th -> U.Builder.passive_object b ~cls:("W" ^ th) ("w" ^ th)) threads;
  let bytes () = 1 + Random.State.int state 16 in
  let work_token th = arg ("w" ^ th) (payload 4) in
  let send ~src ~dst =
    let token = arg (Printf.sprintf "t_%s_%s" src dst) (payload (bytes ())) in
    U.Builder.call b ~from:src ~target:("w" ^ src)
      (Printf.sprintf "pack_%s_%s" src dst)
      ~args:[ work_token src ] ~result:token;
    U.Builder.call b ~from:src ~target:dst (Printf.sprintf "Set_%s_%s" src dst)
      ~args:[ token ];
    token
  in
  U.Builder.call b ~from:"SRC" ~target:"IO" "getIn" ~result:(arg "x0" (payload 4));
  U.Builder.call b ~from:"SRC" ~target:"wSRC" "work"
    ~args:[ arg "x0" (payload 4) ]
    ~result:(work_token "SRC");
  let gathered =
    List.map
      (fun bi ->
        List.fold_left
          (fun prev d ->
            let th = name bi d in
            let token = send ~src:prev ~dst:th in
            U.Builder.call b ~from:th ~target:("w" ^ th) "work" ~args:[ token ]
              ~result:(work_token th);
            th)
          "SRC"
          (List.init depth (fun d -> d)))
      (List.init branches (fun bi -> bi))
  in
  let inputs = List.map (fun last -> send ~src:last ~dst:"SNK") gathered in
  U.Builder.call b ~from:"SNK" ~target:"wSNK" "work" ~args:inputs
    ~result:(work_token "SNK");
  U.Builder.call b ~from:"SNK" ~target:"IO" "setOut" ~args:[ work_token "SNK" ];
  U.Builder.finish b

let monolithic ~seed ~calls =
  let state = Random.State.make [| seed |] in
  let b = U.Builder.create (Printf.sprintf "mono%d" seed) in
  U.Builder.thread b "T";
  U.Builder.io_device b "IO";
  U.Builder.passive_object b ~cls:"Work" "w";
  let f32 = U.Datatype.D_float in
  U.Builder.call b ~from:"T" ~target:"IO" "getIn" ~result:(arg "t0" f32);
  let tokens = ref [ "t0" ] in
  for i = 1 to calls do
    let n_args = 1 + Random.State.int state (min 3 (List.length !tokens)) in
    let args =
      List.init n_args (fun _ ->
          arg (List.nth !tokens (Random.State.int state (List.length !tokens))) f32)
      |> List.sort_uniq compare
    in
    let result = Printf.sprintf "t%d" i in
    U.Builder.call b ~from:"T" ~target:"w" (Printf.sprintf "f%d" i) ~args
      ~result:(arg result f32);
    tokens := result :: !tokens
  done;
  U.Builder.call b ~from:"T" ~target:"IO" "setOut" ~args:[ arg (List.hd !tokens) f32 ];
  U.Builder.finish b
