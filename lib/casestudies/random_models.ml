module U = Umlfront_uml

let arg = U.Sequence.arg
let payload n = U.Datatype.D_named ("buf", n)

let pipeline ~seed ~threads ~extra_edges =
  let state = Random.State.make [| seed |] in
  let b = U.Builder.create (Printf.sprintf "rand%d" seed) in
  let name i = Printf.sprintf "T%c" (Char.chr (Char.code 'A' + i)) in
  for i = 0 to threads - 1 do
    U.Builder.thread b (name i)
  done;
  U.Builder.io_device b "IO";
  for i = 0 to threads - 1 do
    U.Builder.passive_object b ~cls:("W" ^ name i) ("w" ^ name i)
  done;
  let edges = ref [] in
  (* Spanning chain keeps everything connected; extra random forward
     edges add fan-out. *)
  for i = 0 to threads - 2 do
    edges := (i, i + 1) :: !edges
  done;
  for _ = 1 to extra_edges do
    let i = Random.State.int state (threads - 1) in
    let j = i + 1 + Random.State.int state (threads - i - 1) in
    if not (List.mem (i, j) !edges) then edges := (i, j) :: !edges
  done;
  let edges = List.rev !edges in
  let work_token i = arg ("w" ^ name i) (payload 4) in
  let edge_token (i, j) bytes = arg (Printf.sprintf "t%d_%d" i j) (payload bytes) in
  let inputs_of j =
    List.filter_map
      (fun (i, j2) -> if j2 = j then Some (edge_token (i, j) 4) else None)
      edges
  in
  U.Builder.call b ~from:(name 0) ~target:"IO" "getIn" ~result:(arg "x0" (payload 4));
  U.Builder.call b ~from:(name 0) ~target:("w" ^ name 0) "work"
    ~args:[ arg "x0" (payload 4) ]
    ~result:(work_token 0);
  for i = 1 to threads - 1 do
    U.Builder.call b ~from:(name i) ~target:("w" ^ name i) "work" ~args:(inputs_of i)
      ~result:(work_token i)
  done;
  List.iter
    (fun (i, j) ->
      let bytes = 1 + Random.State.int state 16 in
      U.Builder.call b ~from:(name i) ~target:("w" ^ name i)
        (Printf.sprintf "pack%d_%d" i j)
        ~args:[ work_token i ]
        ~result:(edge_token (i, j) bytes);
      U.Builder.call b ~from:(name i) ~target:(name j)
        (Printf.sprintf "Set%d_%d" i j)
        ~args:[ edge_token (i, j) bytes ])
    edges;
  U.Builder.call b
    ~from:(name (threads - 1))
    ~target:"IO" "setOut"
    ~args:[ work_token (threads - 1) ];
  U.Builder.finish b

let wide ~seed ~branches ~depth =
  let state = Random.State.make [| seed |] in
  let b = U.Builder.create (Printf.sprintf "wide%d" seed) in
  let name bi d = Printf.sprintf "B%d_%d" bi d in
  let threads =
    ("SRC" :: List.concat_map
       (fun bi -> List.init depth (fun d -> name bi d))
       (List.init branches (fun bi -> bi)))
    @ [ "SNK" ]
  in
  List.iter (U.Builder.thread b) threads;
  U.Builder.io_device b "IO";
  List.iter (fun th -> U.Builder.passive_object b ~cls:("W" ^ th) ("w" ^ th)) threads;
  let bytes () = 1 + Random.State.int state 16 in
  let work_token th = arg ("w" ^ th) (payload 4) in
  let send ~src ~dst =
    let token = arg (Printf.sprintf "t_%s_%s" src dst) (payload (bytes ())) in
    U.Builder.call b ~from:src ~target:("w" ^ src)
      (Printf.sprintf "pack_%s_%s" src dst)
      ~args:[ work_token src ] ~result:token;
    U.Builder.call b ~from:src ~target:dst (Printf.sprintf "Set_%s_%s" src dst)
      ~args:[ token ];
    token
  in
  U.Builder.call b ~from:"SRC" ~target:"IO" "getIn" ~result:(arg "x0" (payload 4));
  U.Builder.call b ~from:"SRC" ~target:"wSRC" "work"
    ~args:[ arg "x0" (payload 4) ]
    ~result:(work_token "SRC");
  let gathered =
    List.map
      (fun bi ->
        List.fold_left
          (fun prev d ->
            let th = name bi d in
            let token = send ~src:prev ~dst:th in
            U.Builder.call b ~from:th ~target:("w" ^ th) "work" ~args:[ token ]
              ~result:(work_token th);
            th)
          "SRC"
          (List.init depth (fun d -> d)))
      (List.init branches (fun bi -> bi))
  in
  let inputs = List.map (fun last -> send ~src:last ~dst:"SNK") gathered in
  U.Builder.call b ~from:"SNK" ~target:"wSNK" "work" ~args:inputs
    ~result:(work_token "SNK");
  U.Builder.call b ~from:"SNK" ~target:"IO" "setOut" ~args:[ work_token "SNK" ];
  U.Builder.finish b

let monolithic ~seed ~calls =
  let state = Random.State.make [| seed |] in
  let b = U.Builder.create (Printf.sprintf "mono%d" seed) in
  U.Builder.thread b "T";
  U.Builder.io_device b "IO";
  U.Builder.passive_object b ~cls:"Work" "w";
  let f32 = U.Datatype.D_float in
  U.Builder.call b ~from:"T" ~target:"IO" "getIn" ~result:(arg "t0" f32);
  let tokens = ref [ "t0" ] in
  for i = 1 to calls do
    let n_args = 1 + Random.State.int state (min 3 (List.length !tokens)) in
    let args =
      List.init n_args (fun _ ->
          arg (List.nth !tokens (Random.State.int state (List.length !tokens))) f32)
      |> List.sort_uniq compare
    in
    let result = Printf.sprintf "t%d" i in
    U.Builder.call b ~from:"T" ~target:"w" (Printf.sprintf "f%d" i) ~args
      ~result:(arg result f32);
    tokens := result :: !tokens
  done;
  U.Builder.call b ~from:"T" ~target:"IO" "setOut" ~args:[ arg (List.hd !tokens) f32 ];
  U.Builder.finish b
