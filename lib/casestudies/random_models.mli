(** Random UML workloads, deterministic in their seed — used by the
    property tests and the benchmark sweeps, and available to users for
    fuzzing their own passes. *)

val pipeline : seed:int -> threads:int -> extra_edges:int -> Umlfront_uml.Model.t
(** A multi-threaded dataflow application in the synthetic-example
    style: a spanning chain of threads plus random forward edges, each
    thread doing local work, packing and [Set]-ting its products; one
    IO read at the source, one IO write at the sink.  Always
    well-formed ({!Umlfront_uml.Validate}). *)

val wide : seed:int -> branches:int -> depth:int -> Umlfront_uml.Model.t
(** A scatter/gather application: a source thread fans out to
    [branches] independent chains of [depth] threads each, gathered by
    a sink — [2 + branches * depth] threads total.  Its SDF dependency
    levels are [branches] wide, which is what the level-parallel
    executor scales with; the narrow {!pipeline} shape is the
    adversarial case.  Always well-formed. *)

val monolithic : seed:int -> calls:int -> Umlfront_uml.Model.t
(** A single-threaded model (one thread, a chain of functional calls
    with random fan-in over earlier tokens) — the input shape of the
    automatic partitioner. *)
