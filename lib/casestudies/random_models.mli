(** Random UML workloads, deterministic in their seed — used by the
    property tests and the benchmark sweeps, and available to users for
    fuzzing their own passes. *)

val pipeline : seed:int -> threads:int -> extra_edges:int -> Umlfront_uml.Model.t
(** A multi-threaded dataflow application in the synthetic-example
    style: a spanning chain of threads plus random forward edges, each
    thread doing local work, packing and [Set]-ting its products; one
    IO read at the source, one IO write at the sink.  Always
    well-formed ({!Umlfront_uml.Validate}). *)

val wide : seed:int -> branches:int -> depth:int -> Umlfront_uml.Model.t
(** A scatter/gather application: a source thread fans out to
    [branches] independent chains of [depth] threads each, gathered by
    a sink — [2 + branches * depth] threads total.  Its SDF dependency
    levels are [branches] wide, which is what the level-parallel
    executor scales with; the narrow {!pipeline} shape is the
    adversarial case.  Always well-formed. *)

val monolithic : seed:int -> calls:int -> Umlfront_uml.Model.t
(** A single-threaded model (one thread, a chain of functional calls
    with random fan-in over earlier tokens) — the input shape of the
    automatic partitioner. *)

val cyclic : seed:int -> stages:int -> Umlfront_uml.Model.t
(** A crane-style control loop: the controller thread subtracts the
    {e previous} command from the measurement (a use-before-def token),
    forcing the §4.2.2 loop breaker to insert a UnitDelay, followed by
    a randomized tail of [stages] post-controller threads.  Always
    well-formed. *)

val multi_cpu :
  seed:int -> threads:int -> cpus:int -> extra_edges:int -> Umlfront_uml.Model.t
(** {!pipeline} plus a deployment diagram: [cpus] CPUs with the threads
    allocated round-robin, so synthesis under [Use_deployment] (or the
    default) exercises the inter-CPU GFIFO channels. *)

val chatty : seed:int -> threads:int -> width:int -> Umlfront_uml.Model.t
(** A multi-rate chain: each consecutive thread pair exchanges a random
    number (1..[width]) of parallel tokens over separate [Set] channels,
    and the consumer fuses them all — multiple parallel SDF edges
    between the same pair of actors.  Always well-formed. *)
