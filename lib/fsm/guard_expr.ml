type t =
  | Num of float
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Cmp of cmp * t * t
  | Arith of arith * t * t

and cmp = Eq | Ne | Lt | Le | Gt | Ge
and arith = Add | Sub | Mul | Div

exception Syntax of string

type lexer = { input : string; mutable pos : int }

let peek lx = if lx.pos < String.length lx.input then Some lx.input.[lx.pos] else None

let skip_spaces lx =
  while
    match peek lx with
    | Some (' ' | '\t') ->
        lx.pos <- lx.pos + 1;
        true
    | Some _ | None -> false
  do
    ()
  done

let looking_at lx s =
  let n = String.length s in
  lx.pos + n <= String.length lx.input && String.sub lx.input lx.pos n = s

let eat lx s =
  if looking_at lx s then (
    lx.pos <- lx.pos + String.length s;
    true)
  else false

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_digit c = c >= '0' && c <= '9'

let rec parse_or lx =
  let left = parse_and lx in
  skip_spaces lx;
  if eat lx "||" then Or (left, parse_or lx) else left

and parse_and lx =
  let left = parse_not lx in
  skip_spaces lx;
  if eat lx "&&" then And (left, parse_and lx) else left

and parse_not lx =
  skip_spaces lx;
  if looking_at lx "!" && not (looking_at lx "!=") then (
    ignore (eat lx "!");
    Not (parse_not lx))
  else parse_cmp lx

and parse_cmp lx =
  let left = parse_arith lx in
  skip_spaces lx;
  let op =
    if eat lx "==" then Some Eq
    else if eat lx "!=" then Some Ne
    else if eat lx "<=" then Some Le
    else if eat lx ">=" then Some Ge
    else if looking_at lx "<" && not (looking_at lx "<<") && eat lx "<" then Some Lt
    else if looking_at lx ">" && eat lx ">" then Some Gt
    else None
  in
  match op with Some c -> Cmp (c, left, parse_arith lx) | None -> left

and parse_arith lx =
  let left = parse_term lx in
  let rec loop acc =
    skip_spaces lx;
    if eat lx "+" then loop (Arith (Add, acc, parse_term lx))
    else if looking_at lx "-" && not (looking_at lx "->") && eat lx "-" then
      loop (Arith (Sub, acc, parse_term lx))
    else acc
  in
  loop left

and parse_term lx =
  let left = parse_factor lx in
  let rec loop acc =
    skip_spaces lx;
    if eat lx "*" then loop (Arith (Mul, acc, parse_factor lx))
    else if eat lx "/" then loop (Arith (Div, acc, parse_factor lx))
    else acc
  in
  loop left

and parse_factor lx =
  skip_spaces lx;
  if eat lx "(" then (
    let e = parse_or lx in
    skip_spaces lx;
    if not (eat lx ")") then raise (Syntax "expected )");
    e)
  else if eat lx "-" then Arith (Sub, Num 0.0, parse_factor lx)
  else
    match peek lx with
    | Some c when is_digit c || c = '.' ->
        let start = lx.pos in
        while
          match peek lx with
          | Some c when is_digit c || c = '.' ->
              lx.pos <- lx.pos + 1;
              true
          | Some _ | None -> false
        do
          ()
        done;
        let text = String.sub lx.input start (lx.pos - start) in
        (try Num (float_of_string text)
         with Failure _ -> raise (Syntax ("bad number " ^ text)))
    | Some c when is_ident_char c && not (is_digit c) ->
        let start = lx.pos in
        while
          match peek lx with
          | Some c when is_ident_char c ->
              lx.pos <- lx.pos + 1;
              true
          | Some _ | None -> false
        do
          ()
        done;
        Var (String.sub lx.input start (lx.pos - start))
    | Some c -> raise (Syntax (Printf.sprintf "unexpected %C" c))
    | None -> raise (Syntax "unexpected end of guard")

let parse input =
  let lx = { input; pos = 0 } in
  match parse_or lx with
  | e ->
      skip_spaces lx;
      if lx.pos < String.length input then
        Error (Printf.sprintf "trailing input at %d in %S" lx.pos input)
      else Ok e
  | exception Syntax msg -> Error (Printf.sprintf "%s in %S" msg input)

let parse_exn input =
  match parse input with Ok e -> e | Error msg -> invalid_arg ("guard: " ^ msg)

let rec eval_float ~env = function
  | Num f -> f
  | Var v -> env v
  | Not e -> if eval ~env e then 0.0 else 1.0
  | And (a, b) -> if eval ~env a && eval ~env b then 1.0 else 0.0
  | Or (a, b) -> if eval ~env a || eval ~env b then 1.0 else 0.0
  | Cmp (op, a, b) ->
      let x = eval_float ~env a and y = eval_float ~env b in
      let holds =
        match op with
        | Eq -> x = y
        | Ne -> x <> y
        | Lt -> x < y
        | Le -> x <= y
        | Gt -> x > y
        | Ge -> x >= y
      in
      if holds then 1.0 else 0.0
  | Arith (op, a, b) -> (
      let x = eval_float ~env a and y = eval_float ~env b in
      match op with Add -> x +. y | Sub -> x -. y | Mul -> x *. y | Div -> x /. y)

and eval ~env e = eval_float ~env e <> 0.0

let variables e =
  let rec collect acc = function
    | Num _ -> acc
    | Var v -> v :: acc
    | Not e -> collect acc e
    | And (a, b) | Or (a, b) | Cmp (_, a, b) | Arith (_, a, b) -> collect (collect acc a) b
  in
  List.sort_uniq compare (collect [] e)

let cmp_symbol = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let arith_symbol = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec to_string = function
  | Num f -> Printf.sprintf "%g" f
  | Var v -> v
  (* The outer parens keep negation re-parseable in any position: '!'
     is only legal at the [not] level of the grammar, but a
     parenthesized expression is a [factor]. *)
  | Not e -> Printf.sprintf "(!(%s))" (to_string e)
  | And (a, b) -> Printf.sprintf "(%s && %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (to_string a) (to_string b)
  | Cmp (op, a, b) -> Printf.sprintf "(%s %s %s)" (to_string a) (cmp_symbol op) (to_string b)
  | Arith (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (to_string a) (arith_symbol op) (to_string b)

let to_c = to_string

let evaluator bindings =
  let cache = Hashtbl.create 8 in
  fun guard ->
    let parsed =
      match Hashtbl.find_opt cache guard with
      | Some p -> p
      | None ->
          let p = parse guard in
          Hashtbl.replace cache guard p;
          p
    in
    match parsed with
    | Ok e ->
        eval ~env:(fun v -> Option.value (List.assoc_opt v bindings) ~default:0.0) e
    | Error _ -> true
