(** Differential conformance checking: every backend against the SDF
    reference executor.

    The paper's central claim is that one UML model drives
    heterogeneous backends that all realize the same behaviour (§3–4);
    the generators promise trace-equivalence with
    {!Umlfront_dataflow.Exec} in their interfaces.  This engine makes
    the promise checkable for {e any} CAAM: it runs the model through
    every available backend and diffs the per-round output traces
    against the sequential reference executor.

    Backends:
    - [Seq]: {!Umlfront_dataflow.Exec.run}, sequential — the reference
      itself (diffing it against itself is the engine's self-test);
    - [Par]: level-parallel [Exec.run ?pool] on a domain pool;
    - [Compiled_exec]: the compiled flat-schedule interpreter
      ({!Umlfront_dataflow.Compiled.run}) on its batched work-stealing
      engine — expected bit-identical to the reference;
    - [Kpn]: the in-memory Kahn process network ({!Umlfront_dataflow.Kpn.of_sdf})
      with per-round collecting sinks spliced over the Outports;
    - [C]: the generated multithreaded C program, compiled with [cc]
      and executed ([Backend_unavailable] when no C compiler is on
      PATH);
    - [Kpn_src]: the emitted [model_kpn.ml] source, checked
      structurally (channel constants, embedded model round-trip,
      output filter) rather than executed. *)

type backend = Seq | Par | Compiled_exec | Kpn | C | Kpn_src

val all_backends : backend list
val backend_name : backend -> string

val backend_of_string : string -> (backend, string) result
(** Accepts [seq], [par], [compiled], [kpn], [c] and [kpn-src]. *)

type engine = [ `Seq | `Compiled ]
(** Which executor produces the reference traces: [`Seq] is
    {!Umlfront_dataflow.Exec.run}, [`Compiled] the compiled flat
    interpreter run sequentially.  Checking with [`Compiled] turns the
    whole differential harness — including the fuzzer — against the
    compiled executor. *)

val engine_name : engine -> string

val engine_of_string : string -> (engine, string) result
(** Accepts [seq] and [compiled]. *)

type token_provenance = {
  prov_block : string;  (** block that produced the divergent token *)
  prov_firing : int;  (** its 1-based firing index (= round + 1) *)
  prov_channel : string;  (** canonical ["src/p->dst/q"] channel *)
  prov_protocols : string list;  (** protocols the channel crosses *)
}
(** Causal identity of the first divergent token, resolved against the
    SDF graph — the same identity {!Umlfront_obs.Telemetry} stamps on
    tokens at runtime. *)

(** Why a backend disagreed with the reference. *)
type disagreement =
  | Trace of {
      round : int;
      port : string;
      expected : float;
      actual : float;
      provenance : token_provenance option;
    }
      (** First divergent sample: [expected] is the reference
          executor's value, [actual] the backend's; [provenance] names
          the token's producing block, firing and channel. *)
  | Crash of string  (** The backend raised (deadlock, parse error, …). *)
  | Structure of string
      (** A structural check failed (source-level backends). *)

type verdict =
  | Agree
  | Disagree of disagreement
  | Backend_unavailable of string
      (** The backend cannot run in this environment (e.g. no [cc]);
          never counted as a conformance failure. *)

type report = {
  model_name : string;
  rounds : int;
  outputs : string list;  (** top-level Outports diffed *)
  verdicts : (backend * verdict) list;  (** in the order requested *)
}

val check :
  ?backends:backend list ->
  ?engine:engine ->
  ?rounds:int ->
  ?pool:Umlfront_parallel.Pool.t ->
  ?corrupt:backend * (float -> float) ->
  ?ctx:Umlfront_obs.Context.t ->
  Umlfront_simulink.Model.t ->
  report
(** Run the model through [backends] (default {!all_backends}) for
    [rounds] (default 10) and diff each against the reference traces
    produced by [engine] (default [`Seq]).  [Par] and [Compiled_exec]
    use [pool] when given, else a temporary 2-domain pool.

    [corrupt] is the test-only defect hook: the given function is
    applied to every trace sample the named backend produces before
    diffing, so the test suite can prove a broken backend is caught
    (and shrunk) without actually breaking one.

    Instrumented: a [conform.check] span plus [conform.checks],
    [conform.agree], [conform.disagree] and [conform.unavailable]
    counters in {!Umlfront_obs.Metrics}.

    @raise Invalid_argument when the model does not flatten and
    @raise Umlfront_dataflow.Exec.Deadlock when the {e reference}
    itself cannot execute — a model the reference rejects has no
    behaviour to conform to. *)

val disagreements : report -> (backend * disagreement) list
val agree : report -> bool
(** No [Disagree] verdict ([Backend_unavailable] does not count). *)

val render : report -> string
(** Human-readable multi-line summary. *)

val to_json : report -> Umlfront_obs.Json.t

val provenance_of_json : Umlfront_obs.Json.t -> (token_provenance, string) result
val disagreement_of_json : Umlfront_obs.Json.t -> (disagreement, string) result
val verdict_of_json : Umlfront_obs.Json.t -> (verdict, string) result

val report_of_json : Umlfront_obs.Json.t -> (report, string) result
(** Inverse of {!to_json}, so the wire format of
    [umlfront conform --format json] — the same bytes [umlfront serve]
    answers on [/api/conform] — is provably round-trippable.  Strict on
    required members, tolerant of unknown ones. *)
