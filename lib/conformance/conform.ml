module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Model = Umlfront_simulink.Model
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module Compiled = Umlfront_dataflow.Compiled
module Kpn = Umlfront_dataflow.Kpn
module Gen_threads = Umlfront_codegen.Gen_threads
module Gen_kpn = Umlfront_codegen.Gen_kpn
module Pool = Umlfront_parallel.Pool
module Obs = Umlfront_obs

type backend = Seq | Par | Compiled_exec | Kpn | C | Kpn_src

let all_backends = [ Seq; Par; Compiled_exec; Kpn; C; Kpn_src ]

let backend_name = function
  | Seq -> "seq"
  | Par -> "par"
  | Compiled_exec -> "compiled"
  | Kpn -> "kpn"
  | C -> "c"
  | Kpn_src -> "kpn-src"

let backend_of_string = function
  | "seq" -> Ok Seq
  | "par" -> Ok Par
  | "compiled" -> Ok Compiled_exec
  | "kpn" -> Ok Kpn
  | "c" -> Ok C
  | "kpn-src" | "kpn_src" -> Ok Kpn_src
  | other ->
      Error
        (Printf.sprintf
           "unknown backend %S (expected seq, par, compiled, kpn, c or kpn-src)" other)

(* Which executor produces the reference traces every backend is
   diffed against.  [`Seq] is [Exec.run]; [`Compiled] is the compiled
   flat interpreter run sequentially — selecting it turns every
   conformance check (and the fuzzer) into a differential test of the
   compiled executor against all the other backends. *)
type engine = [ `Seq | `Compiled ]

let engine_name = function `Seq -> "seq" | `Compiled -> "compiled"

let engine_of_string = function
  | "seq" -> Ok `Seq
  | "compiled" -> Ok `Compiled
  | other -> Error (Printf.sprintf "unknown engine %S (expected seq or compiled)" other)

(* Where the first divergent token came from: the block that produced
   it, on which firing, over which channel.  Computed from the SDF
   graph (the pred edge of the divergent Outport), so it is available
   even for backends that run out of process — the same identity the
   runtime token tracer (Umlfront_obs.Telemetry) records. *)
type token_provenance = {
  prov_block : string;
  prov_firing : int; (* 1-based firing index of the producer *)
  prov_channel : string; (* canonical "src/p->dst/q" *)
  prov_protocols : string list;
}

type disagreement =
  | Trace of {
      round : int;
      port : string;
      expected : float;
      actual : float;
      provenance : token_provenance option;
    }
  | Crash of string
  | Structure of string

type verdict = Agree | Disagree of disagreement | Backend_unavailable of string

type report = {
  model_name : string;
  rounds : int;
  outputs : string list;
  verdicts : (backend * verdict) list;
}

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* --- trace diffing -------------------------------------------------- *)

let sample_equal ~tol a b =
  (Float.is_nan a && Float.is_nan b) || Float.abs (a -. b) <= tol

(* The token behind output [port]'s sample in [round]: in an SDF round
   each edge carries exactly one token, so it is the (round+1)-th token
   the Outport's producer pushed over its incoming edge. *)
let port_provenance sdf port round =
  match Sdf.preds sdf port with
  | (e : Sdf.edge) :: _ ->
      Some
        {
          prov_block = e.Sdf.edge_src;
          prov_firing = round + 1;
          prov_channel = Sdf.channel_name e;
          prov_protocols = Sdf.edge_protocols e;
        }
  | [] -> None

(* First divergence, scanning round-major then in Outport order, so
   the reported counterexample is the earliest observable one.
   [provenance] resolves (port, round) to the divergent token's origin
   when the caller has a graph to resolve against. *)
let diff_traces ?(provenance = fun _ _ -> None) ~tol ~rounds ~outputs ~reference
    actual =
  match
    List.find_opt (fun port -> not (List.mem_assoc port actual)) outputs
  with
  | Some port -> Some (Structure (Printf.sprintf "no trace for output port %s" port))
  | None ->
      let rec per_round r =
        if r >= rounds then None
        else
          match
            List.find_map
              (fun port ->
                let expected = (List.assoc port reference).(r) in
                let arr = List.assoc port actual in
                let actual_v = if r < Array.length arr then arr.(r) else Float.nan in
                if sample_equal ~tol expected actual_v then None
                else
                  Some
                    (Trace
                       {
                         round = r;
                         port;
                         expected;
                         actual = actual_v;
                         provenance = provenance port r;
                       }))
              outputs
          with
          | Some d -> Some d
          | None -> per_round (r + 1)
      in
      per_round 0

(* --- backends ------------------------------------------------------- *)

let seq_traces ~rounds sdf = (Exec.run ~rounds sdf).Exec.traces

let par_traces ?pool ~rounds sdf =
  match pool with
  | Some p -> (Exec.run ~pool:p ~rounds sdf).Exec.traces
  | None ->
      Pool.with_pool ~domains:2 (fun p -> (Exec.run ~pool:p ~rounds sdf).Exec.traces)

(* The compiled backend runs the batched work-stealing engine — the
   interesting path; the sequential flat interpreter is what [`Compiled]
   as the {e reference} engine exercises. *)
let compiled_traces ?pool ~rounds sdf =
  match pool with
  | Some p -> (Compiled.run ~pool:p ~rounds sdf).Exec.traces
  | None ->
      Pool.with_pool ~domains:2 (fun p ->
          (Compiled.run ~pool:p ~rounds sdf).Exec.traces)

(* The KPN network as emitted by [Kpn.of_sdf], but with every
   top-level Outport process replaced by a sink that records one
   sample per round instead of keeping only the last one — that is
   what makes the process network diffable against the reference. *)
let kpn_traces ~rounds sdf =
  let record = List.map (fun port -> (port, Array.make rounds 0.0)) sdf.Sdf.graph_outputs in
  let collecting_sink (a : Sdf.actor) arr =
    let ins = Sdf.preds sdf a.Sdf.actor_name in
    let n = max a.Sdf.actor_inputs 1 in
    let read_round k =
      let values = Array.make n 0.0 in
      let rec loop = function
        | [] -> k values
        | (e : Sdf.edge) :: rest ->
            Kpn.Read
              ( Kpn.channel_name e,
                fun v ->
                  if e.Sdf.edge_dst_port >= 1 && e.Sdf.edge_dst_port <= n then
                    values.(e.Sdf.edge_dst_port - 1) <- v;
                  loop rest )
      in
      loop ins
    in
    let rec go r =
      if r = rounds then Kpn.Done 0.0
      else
        read_round (fun values ->
            arr.(r) <- (if a.Sdf.actor_inputs > 0 then values.(0) else 0.0);
            go (r + 1))
    in
    go 0
  in
  let network =
    List.map
      (fun (name, p) ->
        match List.assoc_opt name record with
        | Some arr ->
            let a = Option.get (Sdf.find_actor sdf name) in
            (name, collecting_sink a arr)
        | None -> (name, p))
      (Kpn.of_sdf ~rounds sdf)
  in
  ignore (Kpn.run ~fuel:(max 100_000 (1000 * rounds * List.length sdf.Sdf.actors)) network);
  record

let have_cc () = Sys.command "command -v cc >/dev/null 2>&1" = 0

let temp_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

let read_process_lines cmd =
  let ic = Unix.open_process_in cmd in
  let rec loop acc =
    match input_line ic with line -> loop (line :: acc) | exception End_of_file -> acc
  in
  let lines = List.rev (loop []) in
  ignore (Unix.close_process_in ic);
  lines

let rm_rf dir =
  if Sys.file_exists dir then (
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ())

(* Compile the generated multithreaded C with cc, run it and collect
   its "<port> <round> <value>" stdout back into per-port traces.  The
   output lines are matched positionally: the generator prints the
   Outports in [graph_outputs] order every round. *)
let c_traces ~rounds m sdf =
  let outputs = sdf.Sdf.graph_outputs in
  let dir = temp_dir "umlfront_conform_c" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  Gen_threads.save ~rounds m ~dir;
  let bin = Filename.concat dir "model" in
  let log = Filename.concat dir "cc.log" in
  let cmd =
    Printf.sprintf "cc -pthread -o %s %s/model.c %s/sfunctions.c %s/fifo.c -lm >%s 2>&1"
      (Filename.quote bin) (Filename.quote dir) (Filename.quote dir) (Filename.quote dir)
      (Filename.quote log)
  in
  if Sys.command cmd <> 0 then
    failwith
      (Printf.sprintf "cc failed: %s"
         (try In_channel.with_open_bin log In_channel.input_all with Sys_error _ -> "?"));
  let lines = read_process_lines (Filename.quote bin ^ " 2>/dev/null") in
  let expected_lines = rounds * List.length outputs in
  if List.length lines <> expected_lines then
    failwith
      (Printf.sprintf "C program printed %d lines, expected %d" (List.length lines)
         expected_lines);
  let traces = List.map (fun port -> (port, Array.make rounds 0.0)) outputs in
  List.iteri
    (fun i line ->
      let round = i / List.length outputs in
      let port = List.nth outputs (i mod List.length outputs) in
      match String.split_on_char ' ' line with
      | [ _label; r; v ] when int_of_string_opt r = Some round ->
          (List.assoc port traces).(round) <- float_of_string v
      | _ -> failwith (Printf.sprintf "unparseable C output line %d: %s" (i + 1) line))
    lines;
  traces

(* Structural conformance of the emitted model_kpn.ml source: every
   channel constant is present, every output port is in the printed
   filter, and the embedded .mdl text round-trips to a flattened graph
   with the reference's actors and edges. *)
let kpn_src_verdict ~rounds m sdf =
  let src = Gen_kpn.generate ~rounds m in
  let missing_channel =
    List.find_opt
      (fun (e : Sdf.edge) -> not (contains_substring src (Kpn.channel_name e)))
      sdf.Sdf.edges
  in
  let missing_output =
    List.find_opt
      (fun port -> not (contains_substring src (Printf.sprintf "%S" port)))
      sdf.Sdf.graph_outputs
  in
  match (missing_channel, missing_output) with
  | Some e, _ ->
      Disagree
        (Structure
           (Printf.sprintf "emitted source misses channel %s" (Kpn.channel_name e)))
  | None, Some port ->
      Disagree (Structure (Printf.sprintf "emitted source misses output %s" port))
  | None, None -> (
      let embedded =
        let open_tag = "{mdl|" and close_tag = "|mdl}" in
        let find_from tag start =
          let n = String.length tag in
          let rec at i =
            if i + n > String.length src then None
            else if String.sub src i n = tag then Some i
            else at (i + 1)
          in
          at start
        in
        match find_from open_tag 0 with
        | None -> None
        | Some start ->
            let body_start = start + String.length open_tag in
            Option.map
              (fun stop -> String.sub src body_start (stop - body_start))
              (find_from close_tag body_start)
      in
      match embedded with
      | None -> Disagree (Structure "emitted source has no embedded {mdl|...|mdl} text")
      | Some mdl -> (
          match
            Sdf.of_model (Umlfront_simulink.Mdl_parser.parse_string mdl)
          with
          | exception e ->
              Disagree
                (Structure ("embedded model does not flatten: " ^ Printexc.to_string e))
          | sdf' ->
              let names (s : Sdf.t) =
                List.sort compare
                  (List.map (fun (a : Sdf.actor) -> a.Sdf.actor_name) s.Sdf.actors)
              in
              let links (s : Sdf.t) =
                List.sort compare
                  (List.map
                     (fun (e : Sdf.edge) ->
                       (e.Sdf.edge_src, e.Sdf.edge_src_port, e.Sdf.edge_dst,
                        e.Sdf.edge_dst_port))
                     s.Sdf.edges)
              in
              if names sdf' <> names sdf then
                Disagree (Structure "embedded model flattens to different actors")
              else if links sdf' <> links sdf then
                Disagree (Structure "embedded model flattens to different edges")
              else Agree))

(* --- the check ------------------------------------------------------ *)

let tolerance = function
  | Seq | Par -> 0.0 (* re-run of the same executor: bit-identical *)
  | Compiled_exec -> 0.0 (* compiled interpreter replicates Exec bit for bit *)
  | Kpn -> 1e-9
  | C -> 1e-6 (* the C program prints %.9f *)
  | Kpn_src -> 0.0

let apply_corrupt corrupt backend traces =
  match corrupt with
  | Some (b, f) when b = backend ->
      List.map (fun (port, arr) -> (port, Array.map f arr)) traces
  | _ -> traces

let check ?(backends = all_backends) ?(engine = `Seq) ?(rounds = 10) ?pool ?corrupt ?ctx
    (m : Model.t) =
  (match ctx with Some c -> Obs.Context.with_current c | None -> fun f -> f ())
  @@ fun () ->
  Obs.Trace.with_span ~cat:"conform" "conform.check"
    ~args:(fun () ->
      [
        ("model", Obs.Json.String m.Model.model_name);
        ("rounds", Obs.Json.Int rounds);
        ("engine", Obs.Json.String (engine_name engine));
      ])
  @@ fun () ->
  let sdf = Sdf.of_model m in
  (* The reference must execute; its exceptions propagate. *)
  let reference =
    match engine with
    | `Seq -> seq_traces ~rounds sdf
    | `Compiled -> (Compiled.run ~rounds sdf).Exec.traces
  in
  let outputs = sdf.Sdf.graph_outputs in
  let traced backend produce =
    match produce () with
    | traces -> (
        let traces = apply_corrupt corrupt backend traces in
        match
          diff_traces
            ~provenance:(port_provenance sdf)
            ~tol:(tolerance backend) ~rounds ~outputs ~reference traces
        with
        | Some d -> Disagree d
        | None -> Agree)
    | exception e -> Disagree (Crash (Printexc.to_string e))
  in
  let verdict backend =
    Obs.Trace.with_span ~cat:"conform" ("conform.backend." ^ backend_name backend)
    @@ fun () ->
    match backend with
    | Seq -> traced Seq (fun () -> seq_traces ~rounds sdf)
    | Par -> traced Par (fun () -> par_traces ?pool ~rounds sdf)
    | Compiled_exec -> traced Compiled_exec (fun () -> compiled_traces ?pool ~rounds sdf)
    | Kpn -> traced Kpn (fun () -> kpn_traces ~rounds sdf)
    | C ->
        if not (have_cc ()) then Backend_unavailable "no C compiler (cc) on PATH"
        else traced C (fun () -> c_traces ~rounds m sdf)
    | Kpn_src -> (
        try kpn_src_verdict ~rounds m sdf
        with e -> Disagree (Crash (Printexc.to_string e)))
  in
  let verdicts = List.map (fun b -> (b, verdict b)) backends in
  Obs.Metrics.incr "conform.checks";
  List.iter
    (fun (_, v) ->
      Obs.Metrics.incr
        (match v with
        | Agree -> "conform.agree"
        | Disagree _ -> "conform.disagree"
        | Backend_unavailable _ -> "conform.unavailable"))
    verdicts;
  { model_name = m.Model.model_name; rounds; outputs; verdicts }

let disagreements report =
  List.filter_map
    (fun (b, v) -> match v with Disagree d -> Some (b, d) | _ -> None)
    report.verdicts

let agree report = disagreements report = []

(* --- rendering ------------------------------------------------------ *)

let provenance_text p =
  Printf.sprintf "token from block %s, firing %d, channel %s%s" p.prov_block
    p.prov_firing p.prov_channel
    (match p.prov_protocols with
    | [] -> ""
    | l -> " [" ^ String.concat "," l ^ "]")

let disagreement_text = function
  | Trace { round; port; expected; actual; provenance } ->
      Printf.sprintf "first divergence at round %d, port %s: reference %.9g, backend %.9g%s"
        round port expected actual
        (match provenance with
        | Some p -> "; " ^ provenance_text p
        | None -> "")
  | Crash msg -> "backend crashed: " ^ msg
  | Structure msg -> "structural mismatch: " ^ msg

let verdict_text = function
  | Agree -> "agree"
  | Disagree d -> "DISAGREE — " ^ disagreement_text d
  | Backend_unavailable why -> "unavailable (" ^ why ^ ")"

let render report =
  let b = Buffer.create 256 in
  Printf.bprintf b "conformance of %s over %d rounds (%d output port%s)\n"
    report.model_name report.rounds (List.length report.outputs)
    (if List.length report.outputs = 1 then "" else "s");
  List.iter
    (fun (backend, v) ->
      Printf.bprintf b "  %-8s %s\n" (backend_name backend) (verdict_text v))
    report.verdicts;
  Buffer.contents b

let provenance_json p =
  Obs.Json.Obj
    [
      ("block", Obs.Json.String p.prov_block);
      ("firing", Obs.Json.Int p.prov_firing);
      ("channel", Obs.Json.String p.prov_channel);
      ( "protocols",
        Obs.Json.List (List.map (fun s -> Obs.Json.String s) p.prov_protocols) );
    ]

let disagreement_json = function
  | Trace { round; port; expected; actual; provenance } ->
      Obs.Json.Obj
        ([
           ("kind", Obs.Json.String "trace");
           ("round", Obs.Json.Int round);
           ("port", Obs.Json.String port);
           ("expected", Obs.Json.Float expected);
           ("actual", Obs.Json.Float actual);
         ]
        @
        match provenance with
        | Some p -> [ ("provenance", provenance_json p) ]
        | None -> [])
  | Crash msg ->
      Obs.Json.Obj [ ("kind", Obs.Json.String "crash"); ("message", Obs.Json.String msg) ]
  | Structure msg ->
      Obs.Json.Obj
        [ ("kind", Obs.Json.String "structure"); ("message", Obs.Json.String msg) ]

let to_json report =
  Obs.Json.Obj
    [
      ("model", Obs.Json.String report.model_name);
      ("rounds", Obs.Json.Int report.rounds);
      ("outputs", Obs.Json.List (List.map (fun p -> Obs.Json.String p) report.outputs));
      ( "verdicts",
        Obs.Json.Obj
          (List.map
             (fun (backend, v) ->
               ( backend_name backend,
                 match v with
                 | Agree -> Obs.Json.Obj [ ("verdict", Obs.Json.String "agree") ]
                 | Disagree d ->
                     Obs.Json.Obj
                       [
                         ("verdict", Obs.Json.String "disagree");
                         ("disagreement", disagreement_json d);
                       ]
                 | Backend_unavailable why ->
                     Obs.Json.Obj
                       [
                         ("verdict", Obs.Json.String "unavailable");
                         ("reason", Obs.Json.String why);
                       ] ))
             report.verdicts) );
    ]

(* --- decoding -------------------------------------------------------- *)

(* The inverses of {!to_json} and its helpers.  They exist so the wire
   format of `umlfront conform --format json` (and the serving layer's
   /api/conform, which emits the very same bytes) is provably
   round-trippable: encode, decode, compare.  Strict on required
   members, tolerant of unknown ones. *)

let json_str key json =
  match Obs.Json.member key json with
  | Some (Obs.Json.String s) -> Some s
  | _ -> None

let json_int key json =
  match Obs.Json.member key json with Some (Obs.Json.Int i) -> Some i | _ -> None

let json_num key json = Option.bind (Obs.Json.member key json) Obs.Json.number

let provenance_of_json json =
  match
    ( json_str "block" json,
      json_int "firing" json,
      json_str "channel" json,
      Obs.Json.member "protocols" json )
  with
  | Some prov_block, Some prov_firing, Some prov_channel, Some (Obs.Json.List ps) ->
      let protocols =
        List.filter_map
          (function Obs.Json.String s -> Some s | _ -> None)
          ps
      in
      Ok { prov_block; prov_firing; prov_channel; prov_protocols = protocols }
  | _ -> Error "provenance: missing block/firing/channel/protocols"

let disagreement_of_json json =
  match json_str "kind" json with
  | Some "trace" -> (
      match
        ( json_int "round" json,
          json_str "port" json,
          json_num "expected" json,
          json_num "actual" json )
      with
      | Some round, Some port, Some expected, Some actual -> (
          match Obs.Json.member "provenance" json with
          | None -> Ok (Trace { round; port; expected; actual; provenance = None })
          | Some p -> (
              match provenance_of_json p with
              | Ok prov ->
                  Ok (Trace { round; port; expected; actual; provenance = Some prov })
              | Error msg -> Error msg))
      | _ -> Error "trace disagreement: missing round/port/expected/actual")
  | Some "crash" -> (
      match json_str "message" json with
      | Some m -> Ok (Crash m)
      | None -> Error "crash disagreement: missing message")
  | Some "structure" -> (
      match json_str "message" json with
      | Some m -> Ok (Structure m)
      | None -> Error "structure disagreement: missing message")
  | Some other -> Error (Printf.sprintf "unknown disagreement kind %S" other)
  | None -> Error "disagreement: missing kind"

let verdict_of_json json =
  match json_str "verdict" json with
  | Some "agree" -> Ok Agree
  | Some "disagree" -> (
      match Obs.Json.member "disagreement" json with
      | Some d -> (
          match disagreement_of_json d with
          | Ok d -> Ok (Disagree d)
          | Error msg -> Error msg)
      | None -> Error "disagree verdict: missing disagreement")
  | Some "unavailable" -> (
      match json_str "reason" json with
      | Some why -> Ok (Backend_unavailable why)
      | None -> Error "unavailable verdict: missing reason")
  | Some other -> Error (Printf.sprintf "unknown verdict %S" other)
  | None -> Error "verdict: missing \"verdict\""

let report_of_json json =
  match (json_str "model" json, json_int "rounds" json) with
  | Some model_name, Some rounds -> (
      let outputs =
        match Obs.Json.member "outputs" json with
        | Some (Obs.Json.List os) ->
            List.filter_map
              (function Obs.Json.String s -> Some s | _ -> None)
              os
        | _ -> []
      in
      match Obs.Json.member "verdicts" json with
      | Some (Obs.Json.Obj fields) ->
          let rec decode acc = function
            | [] -> Ok { model_name; rounds; outputs; verdicts = List.rev acc }
            | (name, v) :: rest -> (
                match backend_of_string name with
                | Error msg -> Error msg
                | Ok backend -> (
                    match verdict_of_json v with
                    | Ok verdict -> decode ((backend, verdict) :: acc) rest
                    | Error msg ->
                        Error (Printf.sprintf "backend %s: %s" name msg)))
          in
          decode [] fields
      | _ -> Error "report: missing \"verdicts\" object")
  | _ -> Error "report: missing model/rounds"
