(** Greedy counterexample minimization for conformance failures.

    Given a CAAM on which some backend disagrees with the reference
    executor, the shrinker repeatedly tries to delete a line, a leaf
    block (with every line touching it) or a whole subsystem — thread,
    CPU, anything — keeping each deletion only when the disagreement
    still reproduces.  Candidates that leave the model unflattenable
    (or otherwise make [repro] raise) are rejected, so the result is
    always a model the conformance engine can still execute. *)

type stats = {
  initial_blocks : int;
  final_blocks : int;
  attempts : int;  (** candidate deletions tried (each runs [repro]) *)
  accepted : int;  (** deletions kept *)
}

val minimize :
  ?max_attempts:int ->
  repro:(Umlfront_simulink.Model.t -> bool) ->
  Umlfront_simulink.Model.t ->
  Umlfront_simulink.Model.t * stats
(** [minimize ~repro m] greedily deletes model elements while [repro]
    keeps returning [true] (exceptions from [repro] count as [false]).
    [max_attempts] (default 4000) bounds the total number of [repro]
    calls.  Instrumented with [conform.shrink.*] metrics. *)
