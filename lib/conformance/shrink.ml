module S = Umlfront_simulink.System
module Model = Umlfront_simulink.Model
module Obs = Umlfront_obs

type stats = {
  initial_blocks : int;
  final_blocks : int;
  attempts : int;
  accepted : int;
}

type candidate =
  | Remove_block of string list * string  (** system path, block name *)
  | Remove_line of string list * S.line

(* Root system first, so whole CPU/thread subsystems are offered for
   deletion before their contents — the big greedy steps come first.
   Lines go last: deleting a block already removes its lines. *)
let candidates (m : Model.t) =
  let blocks = ref [] and lines = ref [] in
  S.iter_systems
    (fun path sys ->
      List.iter
        (fun (b : S.block) -> blocks := Remove_block (path, b.S.blk_name) :: !blocks)
        (S.blocks sys);
      List.iter (fun l -> lines := Remove_line (path, l) :: !lines) (S.lines sys))
    m.Model.root;
  List.rev !blocks @ List.rev !lines

let apply (m : Model.t) candidate =
  let at path f =
    S.map_systems (fun p sys -> if p = path then f sys else sys) m.Model.root
  in
  let root =
    match candidate with
    | Remove_block (path, name) ->
        at path (fun sys ->
            {
              sys with
              S.sys_blocks =
                List.filter (fun (b : S.block) -> b.S.blk_name <> name) sys.S.sys_blocks;
              S.sys_lines =
                List.filter
                  (fun (l : S.line) ->
                    l.S.src.S.block <> name && l.S.dst.S.block <> name)
                  sys.S.sys_lines;
            })
    | Remove_line (path, line) ->
        at path (fun sys ->
            { sys with S.sys_lines = List.filter (fun l -> l <> line) sys.S.sys_lines })
  in
  { m with Model.root }

let weight (m : Model.t) = S.total_blocks m.Model.root + S.total_lines m.Model.root

let minimize ?(max_attempts = 4000) ~repro (m : Model.t) =
  Obs.Trace.with_span ~cat:"conform" "conform.shrink" @@ fun () ->
  let attempts = ref 0 and accepted = ref 0 in
  let holds m =
    incr attempts;
    match repro m with v -> v | exception _ -> false
  in
  let rec fixpoint m =
    let rec first_working = function
      | [] -> None
      | c :: rest ->
          if !attempts >= max_attempts then None
          else
            let m' = apply m c in
            (* Every candidate strictly shrinks the model, so the
               greedy loop terminates even without the budget. *)
            if weight m' < weight m && holds m' then Some m' else first_working rest
    in
    match first_working (candidates m) with
    | Some m' ->
        incr accepted;
        fixpoint m'
    | None -> m
  in
  let result = fixpoint m in
  Obs.Metrics.incr "conform.shrink.attempts" ~by:!attempts;
  Obs.Metrics.incr "conform.shrink.accepted" ~by:!accepted;
  ( result,
    {
      initial_blocks = S.total_blocks m.Model.root;
      final_blocks = S.total_blocks result.Model.root;
      attempts = !attempts;
      accepted = !accepted;
    } )
