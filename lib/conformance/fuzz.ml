module R = Umlfront_casestudies.Random_models
module Flow = Umlfront_core.Flow
module Capture = Umlfront_core.Capture
module Lint = Umlfront_analysis.Lint
module Xmi = Umlfront_uml.Xmi
module Mdl_writer = Umlfront_simulink.Mdl_writer
module Pool = Umlfront_parallel.Pool
module Obs = Umlfront_obs

type case = {
  index : int;
  case_seed : int;
  shape : string;
  uml : Umlfront_uml.Model.t;
  caam : Umlfront_simulink.Model.t;
  report : Conform.report;
}

type counterexample = {
  case : case;
  minimized : Umlfront_simulink.Model.t;
  shrink_stats : Shrink.stats option;
  corpus_dir : string option;
}

type outcome = {
  checked : int;
  skipped : int;
  failures : counterexample list;
}

(* Every generator takes a state seeded by the case seed for its size
   parameters, so (shape, case_seed) alone regenerates the model. *)
let shapes =
  [|
    ( "pipeline",
      fun st seed ->
        R.pipeline ~seed
          ~threads:(3 + Random.State.int st 3)
          ~extra_edges:(Random.State.int st 3) );
    ( "wide",
      fun st seed ->
        R.wide ~seed
          ~branches:(2 + Random.State.int st 3)
          ~depth:(1 + Random.State.int st 2) );
    ("monolithic", fun st seed -> R.monolithic ~seed ~calls:(3 + Random.State.int st 6));
    ("cyclic", fun st seed -> R.cyclic ~seed ~stages:(Random.State.int st 4));
    ( "multi-cpu",
      fun st seed ->
        R.multi_cpu ~seed
          ~threads:(3 + Random.State.int st 3)
          ~cpus:(2 + Random.State.int st 2)
          ~extra_edges:(Random.State.int st 2) );
    ( "chatty",
      fun st seed ->
        R.chatty ~seed
          ~threads:(2 + Random.State.int st 3)
          ~width:(1 + Random.State.int st 3) );
  |]

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then (
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_corpus ~corpus ~rounds ~seed ~count (case : case) minimized =
  let failing = List.map fst (Conform.disagreements case.report) in
  let backends = String.concat "," (List.map Conform.backend_name failing) in
  let dir =
    Filename.concat corpus
      (Printf.sprintf "%s-%s" case.report.Conform.model_name case.shape)
  in
  mkdir_p dir;
  Xmi.save case.uml (Filename.concat dir "original.xmi");
  Mdl_writer.save minimized (Filename.concat dir "minimized.mdl");
  (* The capture pass rejects some shrunk models (it needs the CPU-SS
     role markings); the .mdl is the authoritative repro either way. *)
  (try Xmi.save (Capture.run minimized) (Filename.concat dir "minimized.xmi")
   with _ -> ());
  write_file
    (Filename.concat dir "repro.txt")
    (Printf.sprintf
       "Conformance counterexample: backend(s) [%s] disagree with the reference \
        executor.\n\n\
        Reproduce on the minimized CAAM:\n\
       \  umlfront conform minimized.mdl --rounds %d --backends %s\n\n\
        Reproduce on the original UML model:\n\
       \  umlfront conform original.xmi --rounds %d --backends %s\n\n\
        Re-run the fuzz case that found it (case %d, shape %s, seed %d):\n\
       \  umlfront fuzz --seed %d --count %d --shrink\n"
       backends rounds backends rounds backends case.index case.shape
       case.case_seed seed count);
  dir

let run ?backends ?engine ?(rounds = 10) ?(shrink = true) ?corpus ?corrupt ?progress ?ctx
    ~seed ~count () =
  (match ctx with Some c -> Obs.Context.with_current c | None -> fun f -> f ())
  @@ fun () ->
  Obs.Trace.with_span ~cat:"conform" "conform.fuzz" @@ fun () ->
  let state = Random.State.make [| seed; 0x5eed |] in
  let checked = ref 0 and skipped = ref 0 in
  let failures = ref [] in
  Pool.with_pool ~domains:2 (fun pool ->
      for index = 0 to count - 1 do
        let shape, gen = shapes.(index mod Array.length shapes) in
        let case_seed = Random.State.int state 1_000_000 in
        let uml = gen (Random.State.make [| case_seed |]) case_seed in
        match
          let caam = (Flow.run uml).Flow.caam in
          if Lint.check ~uml caam = [] then Some caam else None
        with
        | None | (exception Invalid_argument _) -> incr skipped
        | Some caam ->
            let report = Conform.check ?backends ?engine ~rounds ~pool ?corrupt caam in
            incr checked;
            let case = { index; case_seed; shape; uml; caam; report } in
            (match progress with Some f -> f case | None -> ());
            if not (Conform.agree report) then (
              let failing = List.map fst (Conform.disagreements report) in
              let minimized, shrink_stats =
                if shrink then (
                  let repro m =
                    not
                      (Conform.agree
                         (Conform.check ~backends:failing ?engine ~rounds ~pool ?corrupt
                            m))
                  in
                  let m, stats = Shrink.minimize ~repro caam in
                  (m, Some stats))
                else (caam, None)
              in
              let corpus_dir =
                Option.map
                  (fun corpus ->
                    write_corpus ~corpus ~rounds ~seed ~count case minimized)
                  corpus
              in
              failures := { case; minimized; shrink_stats; corpus_dir } :: !failures)
      done);
  Obs.Metrics.incr "conform.fuzz.cases" ~by:!checked;
  Obs.Metrics.incr "conform.fuzz.skipped" ~by:!skipped;
  Obs.Metrics.incr "conform.fuzz.failures" ~by:(List.length !failures);
  { checked = !checked; skipped = !skipped; failures = List.rev !failures }
