(** Seeded conformance fuzzing: generate random UML models, synthesize
    them, run every backend against the reference executor, and shrink
    any disagreement to a minimal counterexample.

    Generation draws from all the {!Umlfront_casestudies.Random_models}
    shapes — linear pipelines, scatter/gather, monolithic,
    crane-style cyclic (UnitDelay insertion), multi-CPU (GFIFO
    channels) and multi-rate chatty chains — deterministically in the
    master seed.  A generated model must be lint-clean
    ({!Umlfront_analysis.Lint.check}) before it is checked; the rare
    rejects are counted, not failed. *)

type case = {
  index : int;  (** 0-based position in the run *)
  case_seed : int;  (** derived seed; regenerates this exact model *)
  shape : string;  (** generator name, e.g. ["cyclic"] *)
  uml : Umlfront_uml.Model.t;
  caam : Umlfront_simulink.Model.t;
  report : Conform.report;
}

type counterexample = {
  case : case;
  minimized : Umlfront_simulink.Model.t;
  shrink_stats : Shrink.stats option;  (** [None] when shrinking is off *)
  corpus_dir : string option;  (** where the artifacts were written *)
}

type outcome = {
  checked : int;
  skipped : int;  (** generated models rejected by the lint precondition *)
  failures : counterexample list;
}

val run :
  ?backends:Conform.backend list ->
  ?engine:Conform.engine ->
  ?rounds:int ->
  ?shrink:bool ->
  ?corpus:string ->
  ?corrupt:Conform.backend * (float -> float) ->
  ?progress:(case -> unit) ->
  ?ctx:Umlfront_obs.Context.t ->
  seed:int ->
  count:int ->
  unit ->
  outcome
(** Fuzz [count] models derived from [seed].  For every disagreement:
    when [shrink] (default [true]) the failing CAAM is minimized with
    {!Shrink.minimize} (the repro re-runs {!Conform.check} restricted
    to the disagreeing backends); when [corpus] is given, a directory
    [<corpus>/<model>-<shape>/] is created holding the original model
    as XMI, the minimized CAAM as [.mdl] (plus captured XMI when the
    capture pass accepts it) and a [repro.txt] with the exact
    [umlfront] commands that reproduce the failure.

    [corrupt] is forwarded to every {!Conform.check} (including the
    shrinker's repro), so the test suite can fuzz against a
    deliberately broken backend.  [engine] selects the reference
    executor the same way (default [`Seq]; [`Compiled] fuzzes the
    compiled flat interpreter as the reference).  [progress] is called
    after each checked case.

    Instrumented: a [conform.fuzz] span plus [conform.fuzz.cases],
    [conform.fuzz.skipped] and [conform.fuzz.failures] counters. *)
