let run g =
  let edges =
    List.sort (fun (_, _, w1) (_, _, w2) -> Float.compare w2 w1) (Graph.edges g)
  in
  List.fold_left
    (fun clustering (src, dst, _) ->
      let ci = Clustering.cluster_of clustering src in
      let cj = Clustering.cluster_of clustering dst in
      if ci = cj then clustering
      else
        let merged = Clustering.merge clustering ci cj in
        if
          Clustering.parallel_time g merged
          <= Clustering.parallel_time g clustering +. 1e-9
        then (
          Umlfront_obs.Metrics.incr "taskgraph.ez.zeroed_edges";
          merged)
        else clustering)
    (Clustering.singleton_per_node g)
    edges
