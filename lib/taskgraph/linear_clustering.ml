let induced g keep =
  let kept = Hashtbl.create 32 in
  List.iter (fun id -> Hashtbl.replace kept id ()) keep;
  Graph.of_lists
    ~nodes:(List.filter_map
              (fun id ->
                if Hashtbl.mem kept id then Some (id, Graph.node_weight g id) else None)
              (Graph.nodes g))
    ~edges:(List.filter
              (fun (s, d, _) -> Hashtbl.mem kept s && Hashtbl.mem kept d)
              (Graph.edges g))

let run g =
  Umlfront_obs.Trace.with_span ~cat:"taskgraph" "taskgraph.linear_clustering"
    ~args:(fun () -> [ ("nodes", Umlfront_obs.Json.Int (Graph.node_count g)) ])
  @@ fun () ->
  if not (Algo.is_acyclic g) then
    (match Algo.find_cycle g with
    | Some c -> raise (Algo.Cycle c)
    | None -> raise (Algo.Cycle []));
  let rec loop remaining clusters =
    match remaining with
    | [] -> List.rev clusters
    | _ :: _ ->
        Umlfront_obs.Metrics.incr "taskgraph.lc.iterations";
        let sub = induced g remaining in
        let path, _ = Algo.critical_path sub in
        let path = if path = [] then [ List.hd remaining ] else path in
        let rest = List.filter (fun id -> not (List.mem id path)) remaining in
        loop rest (path :: clusters)
  in
  let groups = loop (Graph.nodes g) [] in
  Umlfront_obs.Metrics.incr "taskgraph.lc.clusters" ~by:(List.length groups);
  Clustering.of_groups groups

let cluster_load g group =
  List.fold_left (fun acc id -> acc +. Graph.node_weight g id) 0.0 group

let run_bounded ~max_clusters g =
  if max_clusters < 1 then invalid_arg "linear_clustering: max_clusters < 1";
  let rec fold clustering =
    if Clustering.cluster_count clustering <= max_clusters then clustering
    else
      let loads =
        List.mapi (fun i group -> (i, cluster_load g group)) (Clustering.groups clustering)
      in
      let sorted = List.sort (fun (_, a) (_, b) -> Float.compare a b) loads in
      match sorted with
      | (i, _) :: (j, _) :: _ -> fold (Clustering.merge clustering i j)
      | [ _ ] | [] -> clustering
  in
  fold (run g)
