(* Simplified DSC.  We keep, per cluster, the ordered list of its tasks
   and the finish time of its last task; a node's tentative top level in
   a cluster is max(cluster finish, data-arrival times with the edge
   from in-cluster predecessors zeroed). *)

type cluster = { mutable members : Graph.node_id list; mutable finish : float }

let run g =
  Umlfront_obs.Trace.with_span ~cat:"taskgraph" "taskgraph.dsc"
    ~args:(fun () -> [ ("nodes", Umlfront_obs.Json.Int (Graph.node_count g)) ])
  @@ fun () ->
  let order = Algo.topological_sort g in
  let blevel = Algo.bottom_level g in
  let cluster_of : (Graph.node_id, cluster) Hashtbl.t = Hashtbl.create 32 in
  let node_finish : (Graph.node_id, float) Hashtbl.t = Hashtbl.create 32 in
  let tlevel_in cluster_opt id =
    let arrival p =
      let same =
        match (cluster_opt, Hashtbl.find_opt cluster_of p) with
        | Some c, Some cp -> c == cp
        | _, _ -> false
      in
      let comm = if same then 0.0 else Graph.edge_weight g p id in
      Hashtbl.find node_finish p +. comm
    in
    let data = List.fold_left (fun acc p -> Float.max acc (arrival p)) 0.0 (Graph.preds g id) in
    match cluster_opt with
    | Some c -> Float.max data c.finish
    | None -> data
  in
  (* Process in topological order refined by priority: among nodes whose
     predecessors are all placed, highest tlevel+blevel first.  Since we
     recompute tlevel as we go, a simple priority-refined topological
     sweep is enough for the baseline. *)
  let priority id = blevel id in
  let remaining = ref order in
  let ready placed id = List.for_all (fun p -> List.mem p placed) (Graph.preds g id) in
  let placed = ref [] in
  while !remaining <> [] do
    let free = List.filter (ready !placed) !remaining in
    let chosen =
      List.fold_left
        (fun best id ->
          match best with
          | None -> Some id
          | Some b -> if priority id > priority b then Some id else best)
        None free
    in
    match chosen with
    | None -> failwith "dsc: no free node (cycle?)"
    | Some id ->
        let alone = tlevel_in None id in
        let candidates =
          Graph.preds g id
          |> List.filter_map (fun p ->
                 let c = Hashtbl.find cluster_of p in
                 (* Only the current tail of a cluster may be extended,
                    keeping clusters linear. *)
                 match c.members with
                 | tail :: _ when String.equal tail p ->
                     Some (c, tlevel_in (Some c) id)
                 | _ -> None)
        in
        let best =
          List.fold_left
            (fun acc (c, t) ->
              match acc with
              | Some (_, bt) when bt <= t -> acc
              | Some _ | None -> Some (c, t))
            None candidates
        in
        Umlfront_obs.Metrics.incr "taskgraph.dsc.steps";
        let cluster, start =
          match best with
          | Some (c, t) when t <= alone ->
              (* Extending the predecessor's cluster zeroes the incoming
                 edge (the DSC move the paper's §4.2.3 relies on). *)
              Umlfront_obs.Metrics.incr "taskgraph.dsc.zeroed_edges";
              (c, t)
          | Some _ | None -> ({ members = []; finish = 0.0 }, alone)
        in
        cluster.members <- id :: cluster.members;
        let finish = start +. Graph.node_weight g id in
        cluster.finish <- finish;
        Hashtbl.replace node_finish id finish;
        Hashtbl.replace cluster_of id cluster;
        placed := id :: !placed;
        remaining := List.filter (fun n -> not (String.equal n id)) !remaining
  done;
  (* Collect distinct clusters preserving first-member order. *)
  let seen = ref [] in
  List.iter
    (fun id ->
      let c = Hashtbl.find cluster_of id in
      if not (List.memq c !seen) then seen := c :: !seen)
    order;
  Clustering.of_groups (List.rev_map (fun c -> List.rev c.members) !seen)
