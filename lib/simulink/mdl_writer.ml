let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let field buf indent key value =
  Buffer.add_string buf indent;
  Buffer.add_string buf key;
  Buffer.add_char buf '\t';
  Buffer.add_string buf value;
  Buffer.add_char buf '\n'

let param_value = function
  | Block.P_string s -> quote s
  | Block.P_int i -> string_of_int i
  | Block.P_float f -> Printf.sprintf "%.17g" f
  | Block.P_bool b -> if b then "on" else "off"

let rec write_system buf indent (sys : System.t) =
  let inner = indent ^ "  " in
  Buffer.add_string buf indent;
  Buffer.add_string buf "System {\n";
  field buf inner "Name" (quote sys.System.sys_name);
  List.iter (write_block buf inner) (System.blocks sys);
  List.iter (write_line buf inner) (System.lines sys);
  Buffer.add_string buf indent;
  Buffer.add_string buf "}\n"

and write_block buf indent (b : System.block) =
  let inner = indent ^ "  " in
  Buffer.add_string buf indent;
  Buffer.add_string buf "Block {\n";
  field buf inner "BlockType" (Block.to_string b.System.blk_type);
  field buf inner "Name" (quote b.System.blk_name);
  let inputs, outputs = System.port_counts b in
  field buf inner "Ports" (Printf.sprintf "[%d, %d]" inputs outputs);
  List.iter
    (fun (k, v) -> field buf inner k (param_value v))
    b.System.blk_params;
  (match b.System.blk_system with
  | Some nested -> write_system buf inner nested
  | None -> ());
  Buffer.add_string buf indent;
  Buffer.add_string buf "}\n"

and write_line buf indent (l : System.line) =
  let inner = indent ^ "  " in
  Buffer.add_string buf indent;
  Buffer.add_string buf "Line {\n";
  field buf inner "SrcBlock" (quote l.System.src.System.block);
  field buf inner "SrcPort" (string_of_int l.System.src.System.port);
  field buf inner "DstBlock" (quote l.System.dst.System.block);
  field buf inner "DstPort" (string_of_int l.System.dst.System.port);
  Buffer.add_string buf indent;
  Buffer.add_string buf "}\n"

let to_string (m : Model.t) =
  let size = ref 0 in
  Umlfront_obs.Trace.with_span ~cat:"mdl" "mdl.write"
    ~args:(fun () ->
      [
        ("bytes", Umlfront_obs.Json.Int !size);
        ("blocks", Umlfront_obs.Json.Int (System.total_blocks m.Model.root));
      ])
  @@ fun () ->
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "Model {\n";
  field buf "  " "Name" (quote m.Model.model_name);
  field buf "  " "Solver" (quote m.Model.solver);
  field buf "  " "StopTime" (quote (Printf.sprintf "%.17g" m.Model.stop_time));
  write_system buf "  " m.Model.root;
  Buffer.add_string buf "}\n";
  size := Buffer.length buf;
  Umlfront_obs.Metrics.incr "mdl.write.bytes" ~by:(Buffer.length buf);
  Buffer.contents buf

let save m path =
  let oc = open_out path in
  output_string oc (to_string m);
  close_out oc
