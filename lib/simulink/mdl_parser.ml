exception Error of { line : int; message : string }

type node = {
  section : string;
  fields : (string * string) list;
  children : node list;
}

type token = Ident of string | Value of string | Open_brace | Close_brace

let tokenize input =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length input in
  let fail message = raise (Error { line = !line; message }) in
  let i = ref 0 in
  let push t = tokens := (t, !line) :: !tokens in
  while !i < n do
    let c = input.[!i] in
    (match c with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | '{' ->
        push Open_brace;
        incr i
    | '}' ->
        push Close_brace;
        incr i
    | '"' ->
        let buf = Buffer.create 16 in
        incr i;
        let rec scan () =
          if !i >= n then fail "unterminated string"
          else
            match input.[!i] with
            | '"' -> incr i
            | '\\' when !i + 1 < n ->
                Buffer.add_char buf input.[!i + 1];
                i := !i + 2;
                scan ()
            | ch ->
                if ch = '\n' then incr line;
                Buffer.add_char buf ch;
                incr i;
                scan ()
        in
        scan ();
        push (Value (Buffer.contents buf))
    | '[' ->
        (* Port vectors: read through the matching bracket as one value. *)
        let buf = Buffer.create 8 in
        while !i < n && input.[!i] <> ']' do
          Buffer.add_char buf input.[!i];
          incr i
        done;
        if !i >= n then fail "unterminated [";
        Buffer.add_char buf ']';
        incr i;
        push (Value (Buffer.contents buf))
    | '#' ->
        while !i < n && input.[!i] <> '\n' do
          incr i
        done
    | _ ->
        let start = !i in
        let is_word ch =
          not
            (ch = ' ' || ch = '\t' || ch = '\n' || ch = '\r' || ch = '{' || ch = '}'
           || ch = '"')
        in
        while !i < n && is_word input.[!i] do
          incr i
        done;
        if !i = start then fail (Printf.sprintf "unexpected character %C" c);
        push (Ident (String.sub input start (!i - start))));
    ()
  done;
  List.rev !tokens

let parse_tree input =
  let tokens = ref (tokenize input) in
  let fail line message = raise (Error { line; message }) in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let advance () = match !tokens with [] -> () | _ :: rest -> tokens := rest in
  let rec parse_section name =
    (* After "<name> {". *)
    let fields = ref [] in
    let children = ref [] in
    let rec loop () =
      match peek () with
      | None -> fail 0 (Printf.sprintf "unterminated section %s" name)
      | Some (Close_brace, _) -> advance ()
      | Some (Ident key, line) -> (
          advance ();
          match peek () with
          | Some (Open_brace, _) ->
              advance ();
              children := parse_section key :: !children;
              loop ()
          | Some (Value v, _) ->
              advance ();
              fields := (key, v) :: !fields;
              loop ()
          | Some (Ident v, _) ->
              advance ();
              fields := (key, v) :: !fields;
              loop ()
          | Some (Close_brace, l) -> fail l (Printf.sprintf "dangling key %s" key)
          | None -> fail line "unexpected end of input")
      | Some ((Value _ | Open_brace), line) -> fail line "expected a key"
    in
    loop ();
    { section = name; fields = List.rev !fields; children = List.rev !children }
  in
  match peek () with
  | Some (Ident name, _) -> (
      advance ();
      match peek () with
      | Some (Open_brace, _) ->
          advance ();
          let root = parse_section name in
          (match peek () with
          | None -> root
          | Some (_, line) -> fail line "trailing content after root section")
      | Some (_, line) -> fail line "expected {"
      | None -> fail 0 "unexpected end of input")
  | Some (_, line) -> fail line "expected a section name"
  | None -> fail 0 "empty input"

let field_opt node key = List.assoc_opt key node.fields

let field node key =
  match field_opt node key with
  | Some v -> v
  | None ->
      raise (Error { line = 0; message = Printf.sprintf "%s missing %s" node.section key })

let structural_fields = [ "BlockType"; "Name"; "Ports" ]

let parse_param (key, raw) =
  if List.mem key structural_fields then None
  else
    (* mdl loses the OCaml-side type; recover ints and floats, keep the
       rest as strings.  Writer quotes all P_string values, but the raw
       token stream has already dropped quoting, so use numeric shape. *)
    let value =
      match int_of_string_opt raw with
      | Some i -> Block.P_int i
      | None -> (
          match float_of_string_opt raw with
          | Some f -> Block.P_float f
          | None -> Block.P_string raw)
    in
    Some (key, value)

let rec system_of_node node =
  let name = field node "Name" in
  let sys = System.empty name in
  let sys =
    List.fold_left
      (fun sys child ->
        match child.section with
        | "Block" -> add_block_of_node sys child
        | "Line" -> sys
        | other ->
            raise (Error { line = 0; message = Printf.sprintf "unexpected section %s" other }))
      sys node.children
  in
  List.fold_left
    (fun sys child ->
      if String.equal child.section "Line" then
        let port_ref bkey pkey =
          {
            System.block = field child bkey;
            System.port = int_of_string (field child pkey);
          }
        in
        System.add_line sys ~src:(port_ref "SrcBlock" "SrcPort")
          ~dst:(port_ref "DstBlock" "DstPort")
      else sys)
    sys node.children

and add_block_of_node sys node =
  let ty = Block.of_string (field node "BlockType") in
  let name = field node "Name" in
  let params = List.filter_map parse_param node.fields in
  match (ty, List.find_opt (fun c -> String.equal c.section "System") node.children) with
  | Block.Subsystem, Some sys_node ->
      System.add_block ~params ~system:(system_of_node sys_node) sys ty name
  | Block.Subsystem, None -> System.add_block ~params sys ty name
  | _, _ -> System.add_block ~params sys ty name

let parse_string input =
  let model = ref None in
  Umlfront_obs.Trace.with_span ~cat:"mdl" "mdl.parse"
    ~args:(fun () ->
      let blocks =
        match !model with
        | Some (m : Model.t) -> System.total_blocks m.Model.root
        | None -> 0
      in
      [
        ("bytes", Umlfront_obs.Json.Int (String.length input));
        ("blocks", Umlfront_obs.Json.Int blocks);
      ])
  @@ fun () ->
  let root = parse_tree input in
  if not (String.equal root.section "Model") then
    raise (Error { line = 0; message = "root section must be Model" });
  let sys_node =
    match List.find_opt (fun c -> String.equal c.section "System") root.children with
    | Some s -> s
    | None -> raise (Error { line = 0; message = "Model has no System" })
  in
  let solver = Option.value (field_opt root "Solver") ~default:"FixedStepDiscrete" in
  let stop_time =
    match field_opt root "StopTime" with Some s -> float_of_string s | None -> 10.0
  in
  let m =
    Model.make ~solver ~stop_time ~name:(field root "Name") (system_of_node sys_node)
  in
  model := Some m;
  Umlfront_obs.Metrics.incr "mdl.parse.models";
  Umlfront_obs.Metrics.incr "mdl.parse.bytes" ~by:(String.length input);
  Umlfront_obs.Metrics.incr "mdl.parse.blocks" ~by:(System.total_blocks m.Model.root);
  m

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse_string content
