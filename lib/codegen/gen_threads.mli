(** Multithreaded C code generation from a Simulink CAAM — the software
    side of the MPSoC backend the paper's flow feeds (and the fallback
    path of Fig. 1 "in case a Simulink compiler is not available").

    One POSIX thread per Thread-SS; every dataflow edge crossing a
    thread boundary becomes a FIFO of the protocol the channel
    inference chose (SWFIFO / GFIFO); UnitDelay blocks become static
    state pushed at round start, so cyclic models run without
    deadlock.  Unknown S-Functions get a generated default body with
    the {e same} affine behaviour the OCaml SDF executor uses, so the C
    program and {!Umlfront_dataflow.Exec} produce identical traces —
    the integration tests compile and diff them. *)

type generated = { files : (string * string) list }
(** (file name, content): [model.c], [sfunctions.h], [sfunctions.c],
    plus the FIFO runtime. *)

val generate : ?rounds:int -> Umlfront_simulink.Model.t -> generated
(** @raise Umlfront_dataflow.Exec.Deadlock on a zero-delay cycle. *)

val save : ?rounds:int -> Umlfront_simulink.Model.t -> dir:string -> unit

val sanitize : string -> string
(** Map an arbitrary block path to a C identifier.  The mapping alone
    is lossy (["a.b"] and ["a_b"] both yield ["a_b"]); {!generate}
    disambiguates colliding identifiers with [_2], [_3], … suffixes
    per namespace (actors, S-Functions, worker threads), so colliding
    block paths still produce compilable C. *)
