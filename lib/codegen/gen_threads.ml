module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Model = Umlfront_simulink.Model
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module M2t = Umlfront_transform.M2t

type generated = { files : (string * string) list }

let sanitize s =
  let mapped =
    String.map
      (fun c ->
        if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        then c
        else '_')
      s
  in
  if mapped = "" || (mapped.[0] >= '0' && mapped.[0] <= '9') then "x" ^ mapped
  else mapped

(* [sanitize] is lossy ("a.b" and "a_b" both map to "a_b"), so every
   generation scopes its identifiers through a memoized namer: the
   first name to claim an identifier keeps it, later claimants get a
   [_2], [_3], … suffix.  Deterministic, because emission order is. *)
let make_namer () =
  let assigned = Hashtbl.create 16 and taken = Hashtbl.create 16 in
  fun raw ->
    match Hashtbl.find_opt assigned raw with
    | Some ident -> ident
    | None ->
        let base = sanitize raw in
        let ident =
          if not (Hashtbl.mem taken base) then base
          else
            let rec next i =
              let candidate = Printf.sprintf "%s_%d" base i in
              if Hashtbl.mem taken candidate then next (i + 1) else candidate
            in
            next 2
        in
        Hashtbl.replace taken ident ();
        Hashtbl.replace assigned raw ident;
        ident

(* Thread grouping: functional actors live under cpu/thread; top-level
   ports belong to the environment (handled by main). *)
type owner = Env | Worker of string * string  (* cpu, thread *)

let owner_of (a : Sdf.actor) =
  match a.Sdf.actor_path with
  | [] -> Env
  | [ cpu ] -> Worker (cpu, "main")
  | cpu :: thread :: _ -> Worker (cpu, thread)

type fifo = { fifo_var : string; fifo_protocol : string; fifo_edge : Sdf.edge }

let is_delay (a : Sdf.actor) = a.Sdf.actor_block.S.blk_type = B.Unit_delay

let param_float (blk : S.block) key fallback =
  match List.assoc_opt key blk.S.blk_params with
  | Some (B.P_float f) -> f
  | Some (B.P_int i) -> float_of_int i
  | Some _ | None -> fallback

let sfunction_name (blk : S.block) =
  Option.value (S.param_string blk "FunctionName") ~default:blk.S.blk_name

(* Constants of the default pseudo-behaviour, kept in lockstep with
   Exec.default_sfunction so C and OCaml traces match. *)
let default_constants name =
  let h = Hashtbl.hash name in
  let a = 0.25 +. (float_of_int (h mod 7) /. 8.0) in
  let b = float_of_int (h mod 13) /. 13.0 in
  (a, b)

let collect_sfunctions sdf =
  sdf.Sdf.actors
  |> List.filter_map (fun (a : Sdf.actor) ->
         if a.Sdf.actor_block.S.blk_type = B.S_function then
           Some (sfunction_name a.Sdf.actor_block, a.Sdf.actor_outputs)
         else None)
  |> List.sort_uniq compare

let build_fifos sdf =
  let counter = ref 0 in
  sdf.Sdf.edges
  |> List.filter_map (fun (e : Sdf.edge) ->
         let src = Option.get (Sdf.find_actor sdf e.Sdf.edge_src) in
         let dst = Option.get (Sdf.find_actor sdf e.Sdf.edge_dst) in
         if owner_of src = owner_of dst then None
         else (
           incr counter;
           let protocol =
             let ps = List.map snd e.Sdf.edge_channels in
             if List.mem "GFIFO" ps then "GFIFO"
             else if List.mem "SWFIFO" ps then "SWFIFO"
             else "SWFIFO"
           in
           Some { fifo_var = Printf.sprintf "f%d" !counter; fifo_protocol = protocol; fifo_edge = e }))

let fifo_for fifos (e : Sdf.edge) =
  List.find_opt (fun f -> f.fifo_edge = e) fifos

let out_var ident a port = Printf.sprintf "v_%s_%d" (ident a.Sdf.actor_name) port
let state_var ident a = Printf.sprintf "state_%s" (ident a.Sdf.actor_name)
let snapshot_var ident a = Printf.sprintf "snap_%s" (ident a.Sdf.actor_name)

let sfunctions_header sfn sfuncs =
  let t = M2t.create () in
  M2t.line t "#ifndef UMLFRONT_SFUNCTIONS_H";
  M2t.line t "#define UMLFRONT_SFUNCTIONS_H";
  M2t.blank t;
  List.iter
    (fun (name, _) ->
      M2t.line t "void sfun_%s(const double *in, int n_in, double *out, int n_out);"
        (sfn name))
    sfuncs;
  M2t.blank t;
  M2t.line t "#endif";
  M2t.contents t

let sfunctions_source sfn sfuncs =
  let t = M2t.create () in
  M2t.line t "#include \"sfunctions.h\"";
  M2t.blank t;
  M2t.line t "/* Default affine behaviours; replace with the real algorithm";
  M2t.line t "   implementations.  Constants mirror the reference simulator. */";
  List.iter
    (fun (name, _) ->
      let a, b = default_constants name in
      M2t.blank t;
      M2t.line t "void sfun_%s(const double *in, int n_in, double *out, int n_out) {"
        (sfn name);
      M2t.indented t (fun () ->
          M2t.line t "double total = 0.0;";
          M2t.line t "for (int i = 0; i < n_in; ++i) total += in[i];";
          M2t.line t "for (int j = 0; j < n_out; ++j)";
          M2t.line t "  out[j] = %.17g * total + %.17g + 0.1 * j;" a b);
      M2t.line t "}")
    sfuncs;
  M2t.contents t

(* Input expression of one actor input port inside its thread body. *)
let input_expr ident sdf fifos popped (a : Sdf.actor) port =
  let feeding =
    Sdf.preds sdf a.Sdf.actor_name
    |> List.find_opt (fun (e : Sdf.edge) -> e.Sdf.edge_dst_port = port)
  in
  match feeding with
  | None -> "0.0"
  | Some e -> (
      match fifo_for fifos e with
      | Some f -> (
          match List.assoc_opt f.fifo_var popped with
          | Some tmp -> tmp
          | None -> Printf.sprintf "fifo_pop(&%s)" f.fifo_var)
      | None ->
          let src = Option.get (Sdf.find_actor sdf e.Sdf.edge_src) in
          if is_delay src then snapshot_var ident src
          else out_var ident src e.Sdf.edge_src_port)

let emit_actor t ident sfn sdf fifos (a : Sdf.actor) =
  let blk = a.Sdf.actor_block in
  (* Pop every cross-thread input exactly once, in edge order. *)
  let popped =
    Sdf.preds sdf a.Sdf.actor_name
    |> List.filter_map (fun (e : Sdf.edge) ->
           match fifo_for fifos e with
           | Some f ->
               let tmp = Printf.sprintf "p_%s_%d" (ident a.Sdf.actor_name) e.Sdf.edge_dst_port in
               M2t.line t "double %s = fifo_pop(&%s);" tmp f.fifo_var;
               Some (f.fifo_var, tmp)
           | None -> None)
  in
  let input port = input_expr ident sdf fifos popped a port in
  let simple_out expr = M2t.line t "double %s = %s;" (out_var ident a 1) expr in
  (match blk.S.blk_type with
  | B.Constant -> simple_out (Printf.sprintf "%.17g" (param_float blk "Value" 0.0))
  | B.Ground -> simple_out "0.0"
  | B.Gain -> simple_out (Printf.sprintf "%.17g * %s" (param_float blk "Gain" 1.0) (input 1))
  | B.Product ->
      if a.Sdf.actor_inputs = 0 then simple_out "1.0"
      else
        simple_out
          (String.concat " * " (List.init a.Sdf.actor_inputs (fun i -> input (i + 1))))
  | B.Sum ->
      let signs =
        match S.param_string blk "Inputs" with
        | Some s when String.length s = a.Sdf.actor_inputs ->
            List.init a.Sdf.actor_inputs (fun i -> s.[i])
        | Some _ | None -> List.init a.Sdf.actor_inputs (fun _ -> '+')
      in
      let terms =
        List.mapi
          (fun i sign -> Printf.sprintf "%c (%s)" (if sign = '-' then '-' else '+') (input (i + 1)))
          signs
      in
      simple_out (if terms = [] then "0.0" else "0.0 " ^ String.concat " " terms)
  | B.Saturation ->
      let hi = param_float blk "UpperLimit" 1.0 in
      let lo = param_float blk "LowerLimit" (-1.0) in
      let x = input 1 in
      simple_out
        (Printf.sprintf "(%s) > %.17g ? %.17g : ((%s) < %.17g ? %.17g : (%s))" x hi hi x lo
           lo x)
  | B.Switch ->
      let threshold = param_float blk "Threshold" 0.0 in
      simple_out
        (Printf.sprintf "(%s) >= %.17g ? (%s) : (%s)" (input 2) threshold (input 1)
           (input 3))
  | B.Abs -> simple_out (Printf.sprintf "fabs(%s)" (input 1))
  | B.Sqrt -> simple_out (Printf.sprintf "sqrt(%s)" (input 1))
  | B.Trig ->
      let fn =
        match S.param_string blk "Function" with
        | Some ("cos" | "tan") as f -> Option.get f
        | Some _ | None -> "sin"
      in
      simple_out (Printf.sprintf "%s(%s)" fn (input 1))
  | B.Min_max ->
      let fn = if S.param_string blk "Function" = Some "min" then "fmin" else "fmax" in
      let rec fold i acc =
        if i > a.Sdf.actor_inputs then acc
        else fold (i + 1) (Printf.sprintf "%s(%s, %s)" fn acc (input i))
      in
      simple_out (if a.Sdf.actor_inputs = 0 then "0.0" else fold 2 (input 1))
  | B.Math ->
      let fn = if S.param_string blk "Function" = Some "log" then "log" else "exp" in
      simple_out (Printf.sprintf "%s(%s)" fn (input 1))
  | B.Mux -> simple_out (input 1)
  | B.Demux ->
      for p = 1 to a.Sdf.actor_outputs do
        M2t.line t "double %s = %s;" (out_var ident a p) (input 1)
      done
  | B.Terminator -> M2t.line t "(void)(%s);" (input 1)
  | B.Unit_delay -> M2t.line t "%s = %s;" (state_var ident a) (input 1)
  | B.S_function ->
      let fn = sfunction_name blk in
      let n_in = a.Sdf.actor_inputs in
      M2t.line t "double in_%s[%d];" (ident a.Sdf.actor_name) (max n_in 1);
      List.iteri
        (fun i _ ->
          M2t.line t "in_%s[%d] = %s;" (ident a.Sdf.actor_name) i (input (i + 1)))
        (List.init n_in (fun i -> i));
      M2t.line t "double out_%s[%d];" (ident a.Sdf.actor_name) (max a.Sdf.actor_outputs 1);
      M2t.line t "sfun_%s(in_%s, %d, out_%s, %d);" (sfn fn)
        (ident a.Sdf.actor_name) n_in (ident a.Sdf.actor_name) a.Sdf.actor_outputs;
      for p = 1 to a.Sdf.actor_outputs do
        M2t.line t "double %s = out_%s[%d];" (out_var ident a p) (ident a.Sdf.actor_name) (p - 1)
      done
  | B.Inport | B.Outport | B.Subsystem | B.Channel ->
      invalid_arg "gen_threads: structural block in a thread body");
  (* Push cross-thread outputs (delays pushed their snapshot already). *)
  if not (is_delay a) then
    Sdf.succs sdf a.Sdf.actor_name
    |> List.iter (fun (e : Sdf.edge) ->
           match fifo_for fifos e with
           | Some f -> M2t.line t "fifo_push(&%s, %s);" f.fifo_var (out_var ident a e.Sdf.edge_src_port)
           | None -> ())

let model_source ~rounds ident sfn (m : Model.t) sdf fifos order =
  (* Worker functions have their own namespace: run_<cpu>_<thread>. *)
  let worker_ident =
    let namer = make_namer () in
    fun (cpu, thread) -> namer (cpu ^ "/" ^ thread)
  in
  let t = M2t.create () in
  let actor name = Option.get (Sdf.find_actor sdf name) in
  M2t.line t "/* Generated from CAAM model %s.  One POSIX thread per Thread-SS;" m.Model.model_name;
  M2t.line t "   FIFOs carry the protocols chosen by channel inference. */";
  M2t.line t "#include <pthread.h>";
  M2t.line t "#include <stdio.h>";
  M2t.line t "#include \"fifo.h\"";
  M2t.line t "#include \"sfunctions.h\"";
  M2t.blank t;
  M2t.line t "#define ROUNDS %d" rounds;
  M2t.blank t;
  List.iter
    (fun f ->
      let e = f.fifo_edge in
      M2t.line t "static fifo_t %s; /* %s -> %s (%s) */" f.fifo_var e.Sdf.edge_src
        e.Sdf.edge_dst f.fifo_protocol)
    fifos;
  M2t.blank t;
  (* Delay state. *)
  List.iter
    (fun (a : Sdf.actor) ->
      if is_delay a then
        M2t.line t "static double %s = %.17g;" (state_var ident a)
          (param_float a.Sdf.actor_block "InitialCondition" 0.0))
    sdf.Sdf.actors;
  (* Workers. *)
  let workers =
    List.filter_map
      (fun name ->
        match owner_of (actor name) with Worker (c, th) -> Some (c, th) | Env -> None)
      order
    |> List.fold_left (fun acc o -> if List.mem o acc then acc else o :: acc) []
    |> List.rev
  in
  List.iter
    (fun (cpu, thread) ->
      let mine =
        List.filter
          (fun name -> owner_of (actor name) = Worker (cpu, thread))
          order
      in
      M2t.blank t;
      M2t.line t "/* Thread-SS %s on CPU-SS %s */" thread cpu;
      M2t.line t "static void *run_%s(void *arg) {" (worker_ident (cpu, thread));
      M2t.indented t (fun () ->
          M2t.line t "(void)arg;";
          M2t.line t "for (int round = 0; round < ROUNDS; ++round) {";
          M2t.indented t (fun () ->
              (* Phase 0: expose delay snapshots before anything blocks. *)
              List.iter
                (fun name ->
                  let a = actor name in
                  if is_delay a then (
                    M2t.line t "double %s = %s;" (snapshot_var ident a) (state_var ident a);
                    Sdf.succs sdf a.Sdf.actor_name
                    |> List.iter (fun (e : Sdf.edge) ->
                           match fifo_for fifos e with
                           | Some f ->
                               M2t.line t "fifo_push(&%s, %s);" f.fifo_var (snapshot_var ident a)
                           | None -> ())))
                mine;
              List.iter (fun name -> emit_actor t ident sfn sdf fifos (actor name)) mine);
          M2t.line t "}";
          M2t.line t "return 0;");
      M2t.line t "}")
    workers;
  (* main: environment + thread management. *)
  let env_inputs =
    List.filter (fun name -> (actor name).Sdf.actor_block.S.blk_type = B.Inport
                             && (actor name).Sdf.actor_path = []) order
  in
  let env_outputs = sdf.Sdf.graph_outputs in
  M2t.blank t;
  M2t.line t "int main(void) {";
  M2t.indented t (fun () ->
      List.iter
        (fun f ->
          let init = if f.fifo_protocol = "GFIFO" then "gfifo_init" else "swfifo_init" in
          (* The Depth parameter of the outermost crossed channel. *)
          let depth =
            f.fifo_edge.Sdf.edge_channels
            |> List.find_map (fun (name, _) ->
                   let rec find_block sys =
                     match S.find_block sys name with
                     | Some b -> Some b
                     | None ->
                         List.find_map
                           (fun (blk : S.block) ->
                             Option.bind blk.S.blk_system find_block)
                           (S.blocks sys)
                   in
                   Option.bind (find_block m.Model.root) (fun b -> S.param_int b "Depth"))
            |> Option.value ~default:64
          in
          M2t.line t "%s(&%s, %d);" init f.fifo_var depth)
        fifos;
      M2t.line t "pthread_t workers[%d];" (max 1 (List.length workers));
      List.iteri
        (fun i (cpu, thread) ->
          M2t.line t "pthread_create(&workers[%d], 0, run_%s, 0);" i
            (worker_ident (cpu, thread)))
        workers;
      M2t.line t "for (int round = 0; round < ROUNDS; ++round) {";
      M2t.indented t (fun () ->
          List.iter
            (fun name ->
              let a = actor name in
              (* Same stimulus as the reference simulator. *)
              let h = Hashtbl.hash a.Sdf.actor_name mod 10 in
              M2t.line t "double %s = sin((round + %d.0) / 5.0);" (out_var ident a 1) h;
              Sdf.succs sdf a.Sdf.actor_name
              |> List.iter (fun (e : Sdf.edge) ->
                     match fifo_for fifos e with
                     | Some f -> M2t.line t "fifo_push(&%s, %s);" f.fifo_var (out_var ident a 1)
                     | None -> ()))
            env_inputs;
          List.iter
            (fun name ->
              let a = actor name in
              let feeding = Sdf.preds sdf a.Sdf.actor_name in
              let expr =
                match feeding with
                | e :: _ -> (
                    match fifo_for fifos e with
                    | Some f -> Printf.sprintf "fifo_pop(&%s)" f.fifo_var
                    | None -> "0.0")
                | [] -> "0.0"
              in
              M2t.line t "printf(\"%s %%d %%.9f\\n\", round, %s);" (ident a.Sdf.actor_name)
                expr)
            env_outputs);
      M2t.line t "}";
      List.iteri (fun i _ -> M2t.line t "pthread_join(workers[%d], 0);" i) workers;
      M2t.line t "return 0;");
  M2t.line t "}";
  M2t.contents t

let generate ?(rounds = 10) (m : Model.t) =
  let sdf = Sdf.of_model m in
  let order = Exec.firing_order sdf in
  let fifos = build_fifos sdf in
  let sfuncs = collect_sfunctions sdf in
  (* One namer per namespace, shared by every emitted file, so actor
     and S-Function identifiers stay collision-free and consistent. *)
  let ident = make_namer () and sfn = make_namer () in
  let model_c = "#include <math.h>\n" ^ model_source ~rounds ident sfn m sdf fifos order in
  {
    files =
      [
        ("model.c", model_c);
        ("sfunctions.h", sfunctions_header sfn sfuncs);
        ("sfunctions.c", sfunctions_source sfn sfuncs);
        ("fifo.h", Fifo_runtime.header);
        ("fifo.c", Fifo_runtime.source);
      ];
  }

let save ?rounds m ~dir =
  let { files } = generate ?rounds m in
  List.iter
    (fun (name, content) ->
      let oc = open_out (Filename.concat dir name) in
      output_string oc content;
      close_out oc)
    files
