(** Export of simulation results for downstream plotting/inspection. *)

val traces_csv : Exec.outcome -> string
(** One row per round, one column per top-level output port:
    [round,portA,portB,...]. *)

val schedule_csv : Sdf.t -> string
(** The timing model's per-actor schedule:
    [actor,cpu,thread,start,finish]. *)

val chrome_json : Sdf.t -> string
(** The timing model's schedule as Chrome trace-event JSON (one pid
    per CPU, actors as Complete events, plus a flow-event pair per SDF
    edge so token hand-offs render as arrows across CPU lanes) — open
    in chrome://tracing or Perfetto, next to a runtime profile from
    {!Umlfront_obs.Trace}.  Deterministic: derived entirely from the
    static timing model. *)

val gantt : ?width:int -> Sdf.t -> string
(** ASCII Gantt chart of one iteration per CPU, from the timing
    model's schedule — a quick visual for reports. *)
