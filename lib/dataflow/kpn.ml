module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Obs = Umlfront_obs

type 'a process =
  | Read of string * (float -> 'a process)
  | Write of string * float * (unit -> 'a process)
  | Done of 'a

type outcome = {
  results : (string * float) list;
  channel_residue : (string * int) list;
  steps : int;
}

exception Deadlock of string list
exception Out_of_fuel

type blocked = { b_actor : string; b_op : [ `Read | `Write ]; b_channel : string }

type stall = {
  stall_reason : [ `Deadlock | `No_completion of int | `Out_of_fuel ];
  stall_blocked : blocked list;
  stall_channels : (string * int) list;
  stall_steps : int;
}

exception Stalled of stall

let stall_to_string st =
  let reason =
    match st.stall_reason with
    | `Deadlock -> "deadlock"
    | `No_completion budget ->
        Printf.sprintf "no process completed within %d scheduler steps" budget
    | `Out_of_fuel -> "out of fuel"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "kpn stalled after %d steps: %s\n" st.stall_steps reason);
  Buffer.add_string buf "blocked actors:\n";
  if st.stall_blocked = [] then Buffer.add_string buf "  (none recorded)\n";
  List.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: blocked on %s %s\n" b.b_actor
           (match b.b_op with `Read -> "read" | `Write -> "write")
           b.b_channel))
    st.stall_blocked;
  Buffer.add_string buf "channel occupancy:\n";
  if st.stall_channels = [] then Buffer.add_string buf "  (all empty)\n";
  List.iter
    (fun (ch, n) -> Buffer.add_string buf (Printf.sprintf "  %s: %d token(s)\n" ch n))
    st.stall_channels;
  Buffer.contents buf

let stall_json st =
  Obs.Json.Obj
    [
      ( "reason",
        Obs.Json.String
          (match st.stall_reason with
          | `Deadlock -> "deadlock"
          | `No_completion _ -> "no_completion"
          | `Out_of_fuel -> "out_of_fuel") );
      ("steps", Obs.Json.Int st.stall_steps);
      ( "blocked",
        Obs.Json.List
          (List.map
             (fun b ->
               Obs.Json.Obj
                 [
                   ("actor", Obs.Json.String b.b_actor);
                   ( "op",
                     Obs.Json.String
                       (match b.b_op with `Read -> "read" | `Write -> "write") );
                   ("channel", Obs.Json.String b.b_channel);
                 ])
             st.stall_blocked) );
      ( "channels",
        Obs.Json.Obj
          (List.map (fun (ch, n) -> (ch, Obs.Json.Int n)) st.stall_channels) );
    ]

let run ?(fuel = 100_000) ?capacity ?watchdog ?ctx named =
  (match ctx with Some c -> Obs.Context.with_current c | None -> fun f -> f ())
  @@ fun () ->
  let channels : (string, float Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let channel name =
    match Hashtbl.find_opt channels name with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add channels name q;
        q
  in
  let live = ref (List.map (fun (name, p) -> (name, ref p)) named) in
  let results = ref [] in
  let steps = ref 0 in
  let progress = ref true in
  let last_completion = ref 0 in
  let telemetry = Obs.Telemetry.enabled () in
  let writes : (string, int) Hashtbl.t = Hashtbl.create 16 in
  (* Snapshot of who is blocked where and what every channel holds —
     the stall watchdog's report.  Only built on the failure paths. *)
  let snapshot reason =
    let blocked =
      List.filter_map
        (fun (name, cell) ->
          match !cell with
          | Read (ch, _) -> Some { b_actor = name; b_op = `Read; b_channel = ch }
          | Write (ch, _, _) -> Some { b_actor = name; b_op = `Write; b_channel = ch }
          | Done _ -> None)
        !live
      |> List.sort compare
    in
    {
      stall_reason = reason;
      stall_blocked = blocked;
      stall_channels =
        Hashtbl.fold (fun name q acc -> (name, Queue.length q) :: acc) channels []
        |> List.filter (fun (_, n) -> n > 0)
        |> List.sort compare;
      stall_steps = !steps;
    }
  in
  let stall reason =
    let st = snapshot reason in
    Obs.Journal.record "kpn.stall" ~fields:[ ("stall", stall_json st) ];
    raise (Stalled st)
  in
  while !live <> [] && !progress do
    progress := false;
    live :=
      List.filter
        (fun (name, cell) ->
          let rec advance p =
            cell := p;
            if !steps >= fuel then
              if watchdog <> None then stall `Out_of_fuel else raise Out_of_fuel;
            (match watchdog with
            | Some budget when !steps - !last_completion > budget ->
                stall (`No_completion budget)
            | _ -> ());
            match p with
            | Done v ->
                results := (name, v) :: !results;
                last_completion := !steps;
                false
            | Write (ch, v, k) ->
                let q = channel ch in
                let full =
                  match capacity with Some c -> Queue.length q >= c | None -> false
                in
                if full then true
                else (
                  incr steps;
                  progress := true;
                  Queue.push v q;
                  if telemetry then (
                    let n = 1 + Option.value (Hashtbl.find_opt writes name) ~default:0 in
                    Hashtbl.replace writes name n;
                    ignore (Obs.Telemetry.produce ~src:name ~firing:n ch));
                  advance (k ()))
            | Read (ch, k) ->
                let q = channel ch in
                if Queue.is_empty q then true
                else (
                  incr steps;
                  progress := true;
                  let v = Queue.pop q in
                  if telemetry then ignore (Obs.Telemetry.consume ~by:name ch);
                  advance (k v))
          in
          advance !cell)
        !live
  done;
  (* Sorted: the surviving-process order is a scheduling artifact, and
     the exception is part of error messages and test expectations. *)
  if !live <> [] then begin
    let victims = List.sort compare (List.map fst !live) in
    Obs.Journal.record "kpn.deadlock"
      ~fields:
        [ ("victims", Obs.Json.List (List.map (fun v -> Obs.Json.String v) victims)) ];
    if watchdog <> None then stall `Deadlock else raise (Deadlock victims)
  end;
  {
    results = List.rev !results;
    channel_residue =
      Hashtbl.fold (fun name q acc -> (name, Queue.length q) :: acc) channels []
      |> List.filter (fun (_, n) -> n > 0)
      |> List.sort compare;
    steps = !steps;
  }

let producer ~out samples =
  let rec go last = function
    | [] -> Done last
    | v :: rest -> Write (out, v, fun () -> go v rest)
  in
  go 0.0 samples

let consumer ~inp ~n =
  let rec go acc remaining =
    if remaining = 0 then Done acc else Read (inp, fun v -> go (acc +. v) (remaining - 1))
  in
  go 0.0 n

let map1 ~inp ~out ~n f =
  let rec go last remaining =
    if remaining = 0 then Done last
    else
      Read
        ( inp,
          fun v ->
            let r = f v in
            Write (out, r, fun () -> go r (remaining - 1)) )
  in
  go 0.0 n

let zip_with ~in1 ~in2 ~out ~n f =
  let rec go last remaining =
    if remaining = 0 then Done last
    else
      Read
        ( in1,
          fun a ->
            Read
              ( in2,
                fun b ->
                  let r = f a b in
                  Write (out, r, fun () -> go r (remaining - 1)) ) )
  in
  go 0.0 n

let channel_name = Sdf.channel_name

let param_float (blk : S.block) key fallback =
  match List.assoc_opt key blk.S.blk_params with
  | Some (B.P_float f) -> f
  | Some (B.P_int i) -> float_of_int i
  | Some _ | None -> fallback

let of_sdf_actor sdf (a : Sdf.actor) ~rounds ~sfunction =
  let ins = Sdf.preds sdf a.Sdf.actor_name in
  let outs = Sdf.succs sdf a.Sdf.actor_name in
  let read_all k =
    let values = Array.make (max a.Sdf.actor_inputs 1) 0.0 in
    let rec loop = function
      | [] -> k values
      | (e : Sdf.edge) :: rest ->
          Read
            ( channel_name e,
              fun v ->
                if e.edge_dst_port >= 1 && e.edge_dst_port <= Array.length values then
                  values.(e.edge_dst_port - 1) <- v;
                loop rest )
    in
    loop ins
  in
  let write_all outputs k =
    let rec loop = function
      | [] -> k ()
      | (e : Sdf.edge) :: rest ->
          let v =
            let idx = e.Sdf.edge_src_port - 1 in
            if idx >= 0 && idx < Array.length outputs then outputs.(idx) else 0.0
          in
          Write (channel_name e, v, fun () -> loop rest)
    in
    loop outs
  in
  let blk = a.Sdf.actor_block in
  let behave ins =
    match blk.S.blk_type with
    | B.Unit_delay -> [| (if Array.length ins > 0 then ins.(0) else 0.0) |]
    | B.Inport | B.Outport -> ins
    | _ ->
        Exec.behaviour
          ~sfunctions:(fun name -> Some (fun i -> sfunction name i a.Sdf.actor_outputs))
          a ins
  in
  let rec iteration last remaining =
    if remaining = 0 then Done last
    else
      read_all (fun ins ->
          let outputs = behave ins in
          let last =
            if Array.length outputs > 0 then outputs.(0)
            else if Array.length ins > 0 then ins.(0)
            else last
          in
          write_all outputs (fun () -> iteration last (remaining - 1)))
  in
  match blk.S.blk_type with
  | B.Unit_delay ->
      (* Prime the cycle with the initial condition, run one fewer
         write round so channels drain. *)
      let init = param_float blk "InitialCondition" 0.0 in
      write_all [| init |] (fun () ->
          let rec delay_loop last remaining =
            if remaining = 0 then Done last
            else
              read_all (fun ins ->
                  let v = if Array.length ins > 0 then ins.(0) else 0.0 in
                  if remaining = 1 then Done v
                  else write_all [| v |] (fun () -> delay_loop v (remaining - 1)))
          in
          delay_loop init rounds)
  | B.Inport when a.Sdf.actor_path = [] ->
      let stimulus round =
        let h = float_of_int (Hashtbl.hash a.Sdf.actor_name mod 10) in
        sin ((float_of_int round +. h) /. 5.0)
      in
      let rec src_loop round =
        if round = rounds then Done (stimulus (rounds - 1))
        else write_all [| stimulus round |] (fun () -> src_loop (round + 1))
      in
      src_loop 0
  | B.Outport when a.Sdf.actor_path = [] ->
      let rec sink_loop last remaining =
        if remaining = 0 then Done last
        else read_all (fun ins -> sink_loop ins.(0) (remaining - 1))
      in
      sink_loop 0.0 rounds
  | _ -> iteration 0.0 rounds

let of_sdf ?(sfunction = Exec.default_sfunction) ~rounds sdf =
  List.map
    (fun (a : Sdf.actor) ->
      (a.Sdf.actor_name, of_sdf_actor sdf a ~rounds ~sfunction))
    sdf.Sdf.actors
