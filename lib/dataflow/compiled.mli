(** Compiled flat-schedule execution of a flattened SDF graph.

    {!Exec.run} interprets the graph shape every firing: hashtable
    lookups per port, a fresh input array per actor, list walks over
    predecessor edges.  This module instead {e compiles} the static
    schedule once — actors and edges numbered densely, block parameters
    resolved to immediates, token storage preallocated as ring-buffer
    FIFOs sized from the Lee–Messerschmitt bounds (one slot per
    forward edge, two per UnitDelay edge — the single-rate repetition
    vector is all-ones, so the bound is the per-round token count plus
    the delay's initial token) — and then runs a steady-state loop
    that allocates nothing per round.

    With a real domain pool the level barriers of [Exec.run ?pool] are
    replaced by work-stealing over the precedence DAG: rounds are
    batched per synchronization point, every (actor, round) firing is
    a node whose in-degree counts its unsatisfied inputs, and workers
    pull ready nodes from per-worker {!Umlfront_parallel.Wsdeque}s,
    stealing when their own runs dry.  Ring capacities scale with the
    batch window so a producer can run ahead of a consumer within the
    batch without overwriting live tokens.

    Either way the outcome is bit-identical to {!Exec.run}: the same
    float operations in the same order per actor, the same default
    stimulus, S-function fallback and unconnected-port semantics, and
    the same deterministic token-telemetry stream (replayed in
    topological commit order at each synchronization point, exactly as
    the level-parallel executor records it). *)

(** Bounded single-producer single-consumer FIFOs over preallocated
    float rings — the compiled executor's token storage.  [push]/[pop]
    enforce the Lee–Messerschmitt capacity; the [_slot] accessors are
    the unchecked positional view the batched parallel engine uses,
    where the static schedule (not a runtime head/tail) proves every
    access in bounds. *)
module Fifo : sig
  type t

  exception Full
  exception Empty

  val create : capacity:int -> t
  (** @raise Invalid_argument when [capacity < 1].  The backing ring is
      rounded up to a power of two; [push]/[pop] still enforce the
      logical [capacity]. *)

  val capacity : t -> int
  val length : t -> int
  val is_empty : t -> bool
  val is_full : t -> bool

  val push : t -> float -> unit
  (** @raise Full at [capacity] tokens. *)

  val pop : t -> float
  (** Oldest token.  @raise Empty when none is buffered. *)

  val set_slot : t -> int -> float -> unit
  (** [set_slot t i v] writes ring slot [i mod ring-size] directly. *)

  val get_slot : t -> int -> float
end

type plan
(** A compiled graph: dense actor/edge numbering, per-actor opcodes
    with resolved parameters, the topological firing order, and the
    precedence-DAG shape.  Compile once, run many times. *)

val compile : Sdf.t -> plan
(** @raise Exec.Deadlock on a zero-delay dependency cycle (the same
    check as {!Exec.firing_order}). *)

val run_plan :
  ?sfunctions:(string -> (float array -> float array) option) ->
  ?stimulus:(string -> int -> float) ->
  ?pool:Umlfront_parallel.Pool.t ->
  ?ctx:Umlfront_obs.Context.t ->
  ?batch:int ->
  rounds:int ->
  plan ->
  Exec.outcome
(** Execute a compiled plan.  Same optional arguments and semantics as
    {!Exec.run}; [batch] (default 32, parallel mode only) is how many
    rounds each work-stealing phase covers between synchronization
    points. *)

val run :
  ?sfunctions:(string -> (float array -> float array) option) ->
  ?stimulus:(string -> int -> float) ->
  ?pool:Umlfront_parallel.Pool.t ->
  ?ctx:Umlfront_obs.Context.t ->
  ?batch:int ->
  rounds:int ->
  Sdf.t ->
  Exec.outcome
(** [compile] + {!run_plan}: the drop-in replacement for {!Exec.run}.
    With [pool] of size > 1 the batched work-stealing engine runs;
    otherwise the sequential flat interpreter does.  The outcome —
    traces, firings, rounds — is bit-identical to {!Exec.run} on the
    same inputs in both modes. *)
