(** Synchronous execution of a flattened SDF graph — the stand-in for
    running the generated model in Simulink.

    Each round, every actor fires once in topological order; [UnitDelay]
    actors output the value stored in the previous round (their initial
    condition in round 0), which is what lets cyclic models execute.  A
    dependency cycle with no UnitDelay on it is a deadlock and raises
    {!Deadlock} — mechanically validating the temporal-barrier
    insertion of §4.2.2. *)

exception Deadlock of string list
(** Actors along a zero-delay dependency cycle. *)

type outcome = {
  rounds : int;
  traces : (string * float array) list;
      (** per top-level Outport: one sample per round *)
  firings : (string * int) list;  (** per actor *)
}

val run :
  ?sfunctions:(string -> (float array -> float array) option) ->
  ?stimulus:(string -> int -> float) ->
  ?pool:Umlfront_parallel.Pool.t ->
  ?ctx:Umlfront_obs.Context.t ->
  rounds:int ->
  Sdf.t ->
  outcome
(** [sfunctions name] supplies the behaviour of S-Function blocks whose
    [FunctionName] is [name]; unknown S-Functions get a deterministic
    pseudo-behaviour derived from the name (an affine map of the input
    sum), so any generated model executes out of the box.  [stimulus
    inport round] feeds top-level Inports (default: [sin] of the round
    scaled per port).  Unconnected actor inputs read 0.

    When [pool] is a real (size > 1) domain pool, each round fires the
    actors level by level (see {!levels}): a level's combinational
    behaviours are computed across the pool, then its writes — channel
    outputs, UnitDelay state, Outport samples — are committed before
    the next level starts.  Delay semantics (§4.2.2) are preserved:
    UnitDelay consumers still read the previous round's snapshot, and
    {!Deadlock} is still raised on a zero-delay cycle.  The outcome is
    bit-identical to the sequential run. *)

val default_sfunction : string -> float array -> int -> float array
(** The pseudo-behaviour: [default_sfunction name inputs n_outputs]. *)

(** {1 Stepping}

    A [session] executes one round at a time with a caller-supplied
    stimulus per round, keeping delay state across rounds — what
    co-simulation and interactive drivers need. *)

type session

val start :
  ?sfunctions:(string -> (float array -> float array) option) -> Sdf.t -> session
(** @raise Deadlock on a zero-delay cycle. *)

val step : session -> stimulus:(string -> float) -> (string * float) list
(** Fire every actor once; returns the top-level output-port samples. *)

val rounds_executed : session -> int

val firing_order : Sdf.t -> string list
(** Topological firing order with UnitDelay outputs cut.
    @raise Deadlock on a zero-delay cycle. *)

val levels : Sdf.t -> string list list
(** The firing order partitioned into dependency levels: actors in
    level [l] only depend (through non-UnitDelay edges) on actors in
    levels [< l], so each level can fire in any order or in parallel.
    Concatenating the levels yields a valid firing order; within a
    level, actors keep their {!firing_order} relative order.
    @raise Deadlock on a zero-delay cycle. *)

val behaviour :
  sfunctions:(string -> (float array -> float array) option) ->
  Sdf.actor ->
  float array ->
  float array
(** Pure behaviour of a combinational actor: inputs to outputs
    (1-indexed port [p] at index [p-1]).  [UnitDelay], top-level
    [Inport]/[Outport] and structural blocks are the scheduler's
    business.
    @raise Invalid_argument on those stateful/structural kinds. *)

(** {1 Shared executor ingredients}

    Exported so alternative executors (notably {!Compiled}) replicate
    the reference semantics from the {e same} definitions instead of
    re-deriving them — any drift would show up as a conformance
    divergence, so there must be exactly one source of truth. *)

val param_float : Umlfront_simulink.System.block -> string -> float -> float
(** [param_float blk key fallback]: the block parameter as a float,
    with the reference executor's coercions (int and numeric-string
    parameters convert; anything else is [fallback]). *)

val sum_signs : Umlfront_simulink.System.block -> int -> float list
(** Per-input sign (+1.0/-1.0) of a [Sum] block from its ["Inputs"]
    spec, defaulting to all-plus when the spec is absent or does not
    match the input count. *)

val default_stimulus : string -> int -> float
(** The default Inport stimulus: [sin] of the round, phase-shifted per
    port name. *)

val channel_metrics : Sdf.t -> int -> unit
(** Record per-protocol channel occupancy gauges and token counters
    ([exec.channel_occupancy.*], [exec.tokens.*]) for [rounds] executed
    rounds of [sdf] — one token per edge per round. *)
