(** Flattening a (CAAM) Simulink model into a synchronous-dataflow
    graph of leaf actors.

    Subsystem boundaries (Inport/Outport pairs) and Channel blocks are
    dissolved into direct actor-to-actor edges; each edge remembers the
    channels it crossed so the timing model can charge the right
    protocol cost.  This is the executable stand-in for Simulink
    simulation. *)

type actor = {
  actor_name : string;  (** slash-joined hierarchy path, unique *)
  actor_path : string list;  (** enclosing subsystem blocks, root first *)
  actor_block : Umlfront_simulink.System.block;
  actor_inputs : int;
  actor_outputs : int;
}

type edge = {
  edge_src : string;  (** actor name *)
  edge_src_port : int;
  edge_dst : string;
  edge_dst_port : int;
  edge_channels : (string * string) list;
      (** (channel block name, protocol) crossed, outermost first *)
}

type t = {
  actors : actor list;
  edges : edge list;
  graph_inputs : (string * int) list;
      (** top-level Inport name -> fed actor count (diagnostic) *)
  graph_outputs : string list;  (** top-level Outport actor names *)
}

val destinations_of_line :
  Umlfront_simulink.Model.t ->
  path:string list ->
  Umlfront_simulink.System.line ->
  (string * int) list
(** Leaf actors (name, input port) ultimately fed by one concrete line
    of the system at [path].  Used by the loop breaker to locate the
    data link a temporal barrier must be spliced into. *)

val of_model : Umlfront_simulink.Model.t -> t
(** @raise Invalid_argument when a subsystem boundary port has no
    matching Inport/Outport block, or a Channel is wired to more than
    one producer/consumer. *)

val find_actor : t -> string -> actor option

val channel_name : edge -> string
(** Canonical ["src/p->dst/q"] identity of an edge's channel, shared by
    the KPN runtime, token telemetry and conformance reports. *)

val edge_protocols : edge -> string list
(** Protocols of the channel blocks the edge crossed, outermost first. *)

val preds : t -> string -> edge list
val succs : t -> string -> edge list

val cpu_of_actor : actor -> string option
(** First element of the path — the CPU-SS for CAAM models. *)

val thread_of_actor : actor -> string option

val to_taskgraph : t -> Umlfront_taskgraph.Graph.t
(** Project onto a task graph (actor = node, edge weight 1 per link),
    with edges out of UnitDelay actors {e dropped} — a UnitDelay breaks
    the dependency cycle within an iteration, which is precisely the
    paper's temporal-barrier semantics. *)

val pp : Format.formatter -> t -> unit
