module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module G = Umlfront_taskgraph.Graph
module Algo = Umlfront_taskgraph.Algo
module Pool = Umlfront_parallel.Pool
module Obs = Umlfront_obs

exception Deadlock of string list

type outcome = {
  rounds : int;
  traces : (string * float array) list;
  firings : (string * int) list;
}

let firing_order sdf =
  let g = Sdf.to_taskgraph sdf in
  match Algo.topological_sort g with
  | order -> order
  | exception Algo.Cycle cycle ->
      Obs.Journal.record "exec.deadlock"
        ~fields:
          [ ("victims", Obs.Json.List (List.map (fun v -> Obs.Json.String v) cycle)) ];
      raise (Deadlock cycle)

(* Dependency levels over the delay-cut dependence graph: an actor's
   level is 1 + the max level of its non-UnitDelay predecessors.  Two
   actors in the same level cannot depend on each other within a round
   (a non-delay edge forces a strictly larger level; a delay edge reads
   the previous round's snapshot), so a whole level may fire in any
   order — or in parallel. *)
let levels sdf =
  let order = firing_order sdf in
  let actor name =
    match Sdf.find_actor sdf name with
    | Some a -> a
    | None -> invalid_arg (Printf.sprintf "exec: unknown actor %s" name)
  in
  let level = Hashtbl.create 64 in
  let level_of n = Option.value (Hashtbl.find_opt level n) ~default:0 in
  List.iter
    (fun name ->
      let l =
        List.fold_left
          (fun acc (e : Sdf.edge) ->
            if (actor e.Sdf.edge_src).Sdf.actor_block.S.blk_type = B.Unit_delay then acc
            else max acc (1 + level_of e.Sdf.edge_src))
          0 (Sdf.preds sdf name)
      in
      Hashtbl.replace level name l)
    order;
  let max_level = List.fold_left (fun acc n -> max acc (level_of n)) 0 order in
  let buckets = Array.make (max_level + 1) [] in
  List.iter (fun n -> buckets.(level_of n) <- n :: buckets.(level_of n)) order;
  Array.to_list (Array.map List.rev buckets)

let default_sfunction name inputs n_outputs =
  let h = Hashtbl.hash name in
  let a = 0.25 +. (float_of_int (h mod 7) /. 8.0) in
  let b = float_of_int (h mod 13) /. 13.0 in
  let total = Array.fold_left ( +. ) 0.0 inputs in
  Array.init n_outputs (fun j -> (a *. total) +. b +. (0.1 *. float_of_int j))

let param_float (blk : S.block) key fallback =
  match List.assoc_opt key blk.S.blk_params with
  | Some (B.P_float f) -> f
  | Some (B.P_int i) -> float_of_int i
  | Some (B.P_string s) -> ( match float_of_string_opt s with Some f -> f | None -> fallback)
  | Some (B.P_bool _) | None -> fallback

let sum_signs (blk : S.block) n_inputs =
  match S.param_string blk "Inputs" with
  | Some signs when String.length signs = n_inputs ->
      List.init n_inputs (fun i -> if signs.[i] = '-' then -1.0 else 1.0)
  | Some _ | None -> List.init n_inputs (fun _ -> 1.0)

let behaviour ~sfunctions (a : Sdf.actor) ins =
  let blk = a.Sdf.actor_block in
  match blk.S.blk_type with
  | B.Constant -> [| param_float blk "Value" 0.0 |]
  | B.Ground -> [| 0.0 |]
  | B.Gain -> [| param_float blk "Gain" 1.0 *. ins.(0) |]
  | B.Product -> [| Array.fold_left ( *. ) 1.0 ins |]
  | B.Sum ->
      let signs = sum_signs blk a.Sdf.actor_inputs in
      [|
        List.fold_left2 (fun acc s x -> acc +. (s *. x)) 0.0 signs (Array.to_list ins);
      |]
  | B.Saturation ->
      let hi = param_float blk "UpperLimit" 1.0 in
      let lo = param_float blk "LowerLimit" (-1.0) in
      [| Float.min hi (Float.max lo ins.(0)) |]
  | B.Switch ->
      let threshold = param_float blk "Threshold" 0.0 in
      [| (if ins.(1) >= threshold then ins.(0) else ins.(2)) |]
  | B.Abs -> [| Float.abs ins.(0) |]
  | B.Sqrt -> [| sqrt ins.(0) |]
  | B.Trig ->
      let f =
        match S.param_string blk "Function" with
        | Some "cos" -> cos
        | Some "tan" -> tan
        | Some _ | None -> sin
      in
      [| f ins.(0) |]
  | B.Min_max ->
      let pick =
        if S.param_string blk "Function" = Some "min" then Float.min else Float.max
      in
      [| (match Array.to_list ins with [] -> 0.0 | x :: rest -> List.fold_left pick x rest) |]
  | B.Math ->
      let f =
        match S.param_string blk "Function" with
        | Some "log" -> log
        | Some _ | None -> exp
      in
      [| f ins.(0) |]
  | B.Mux -> [| (if a.Sdf.actor_inputs > 0 then ins.(0) else 0.0) |]
  | B.Demux ->
      Array.make a.Sdf.actor_outputs (if a.Sdf.actor_inputs > 0 then ins.(0) else 0.0)
  | B.Terminator -> [||]
  | B.S_function ->
      let fn_name =
        Option.value (S.param_string blk "FunctionName") ~default:blk.S.blk_name
      in
      (match sfunctions fn_name with
      | Some f -> f ins
      | None -> default_sfunction fn_name ins a.Sdf.actor_outputs)
  | B.Unit_delay | B.Inport | B.Outport | B.Subsystem | B.Channel ->
      invalid_arg
        (Printf.sprintf "exec: %s is not a combinational actor" a.Sdf.actor_name)

type session = {
  sess_sdf : Sdf.t;
  sess_order : string list;
  sess_sfunctions : string -> (float array -> float array) option;
  delay_state : (string, float) Hashtbl.t;
  delay_snapshot : (string, float) Hashtbl.t;
  outputs : (string * int, float) Hashtbl.t;
  firings : (string, int) Hashtbl.t;
  mutable round : int;
}

let start ?(sfunctions = fun _ -> None) sdf =
  let order = firing_order sdf in
  let delay_state = Hashtbl.create 8 in
  List.iter
    (fun (a : Sdf.actor) ->
      if a.Sdf.actor_block.S.blk_type = B.Unit_delay then
        Hashtbl.replace delay_state a.Sdf.actor_name
          (param_float a.Sdf.actor_block "InitialCondition" 0.0))
    sdf.Sdf.actors;
  {
    sess_sdf = sdf;
    sess_order = order;
    sess_sfunctions = sfunctions;
    delay_state;
    delay_snapshot = Hashtbl.create 8;
    outputs = Hashtbl.create 32;
    firings = Hashtbl.create 32;
    round = 0;
  }

let rounds_executed t = t.round

let session_actor t name =
  match Sdf.find_actor t.sess_sdf name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "exec: unknown actor %s" name)

let input_values t (a : Sdf.actor) =
  let values = Array.make a.Sdf.actor_inputs 0.0 in
  List.iter
    (fun (e : Sdf.edge) ->
      let src_actor = session_actor t e.Sdf.edge_src in
      let v =
        if src_actor.Sdf.actor_block.S.blk_type = B.Unit_delay then
          Hashtbl.find t.delay_snapshot e.Sdf.edge_src
        else
          match Hashtbl.find_opt t.outputs (e.Sdf.edge_src, e.Sdf.edge_src_port) with
          | Some v -> v
          | None -> 0.0
      in
      if e.Sdf.edge_dst_port >= 1 && e.Sdf.edge_dst_port <= a.Sdf.actor_inputs then
        values.(e.Sdf.edge_dst_port - 1) <- v)
    (Sdf.preds t.sess_sdf a.Sdf.actor_name);
  values

(* Token telemetry for one firing of [a]: consume the tokens waiting on
   its input channels, then produce one token per outgoing edge, stamped
   with the producing actor, its (1-based) firing index, the round and
   the protocols the edge crosses.  Callers invoke this in topological
   firing order — sequentially, or from the sequential commit phase of
   the level-parallel executor — so a producer always records before
   its same-round consumers and the FIFO match in the sink lines up
   with channel semantics. *)
let record_tokens t (a : Sdf.actor) =
  let name = a.Sdf.actor_name in
  let firing = Option.value (Hashtbl.find_opt t.firings name) ~default:1 in
  List.iter
    (fun (e : Sdf.edge) ->
      ignore (Obs.Telemetry.consume ~by:name (Sdf.channel_name e)))
    (Sdf.preds t.sess_sdf name);
  List.iter
    (fun (e : Sdf.edge) ->
      ignore
        (Obs.Telemetry.produce ~protocols:(Sdf.edge_protocols e) ~round:t.round
           ~dst:e.Sdf.edge_dst ~src:name ~firing (Sdf.channel_name e)))
    (Sdf.succs t.sess_sdf name)

let step t ~stimulus =
  Hashtbl.reset t.outputs;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.delay_snapshot k v) t.delay_state;
  let port_samples = ref [] in
  let tracing = Obs.Telemetry.enabled () in
  let fire (a : Sdf.actor) =
    let blk = a.Sdf.actor_block in
    let ins = input_values t a in
    let set port v = Hashtbl.replace t.outputs ((a.Sdf.actor_name, port) : string * int) v in
    (match blk.S.blk_type with
    | B.Unit_delay ->
        (* Consumers read the old state (snapshot, in input_values);
           store the new one for the next round. *)
        Hashtbl.replace t.delay_state a.Sdf.actor_name
          (if a.Sdf.actor_inputs > 0 then ins.(0) else 0.0)
    | B.Inport -> set 1 (stimulus a.Sdf.actor_name)
    | B.Outport ->
        let v = if a.Sdf.actor_inputs > 0 then ins.(0) else 0.0 in
        port_samples := (a.Sdf.actor_name, v) :: !port_samples
    | _ ->
        Array.iteri
          (fun j v -> set (j + 1) v)
          (behaviour ~sfunctions:t.sess_sfunctions a ins));
    Hashtbl.replace t.firings a.Sdf.actor_name
      (1 + Option.value (Hashtbl.find_opt t.firings a.Sdf.actor_name) ~default:0);
    if tracing then record_tokens t a
  in
  List.iter (fun name -> fire (session_actor t name)) t.sess_order;
  t.round <- t.round + 1;
  List.rev !port_samples

(* One round, level-parallel: each level's combinational behaviours are
   computed across the pool while the session tables are read-only,
   then all writes (outputs, delay state, firings, Outport samples) are
   committed sequentially before the next level starts.  Per actor this
   performs exactly the operations of the sequential [fire], on the
   same inputs, so every float is bit-identical to [step]'s — the
   levels only reorder independent actors. *)
let step_parallel t pool lvls ~stimulus ~observing =
  Hashtbl.reset t.outputs;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.delay_snapshot k v) t.delay_state;
  let port_samples = ref [] in
  let tracing = Obs.Telemetry.enabled () in
  let compute name =
    let a = session_actor t name in
    let ins = input_values t a in
    let outs =
      match a.Sdf.actor_block.S.blk_type with
      | B.Unit_delay | B.Inport | B.Outport -> [||] (* committed below *)
      | _ -> behaviour ~sfunctions:t.sess_sfunctions a ins
    in
    if observing then
      Obs.Metrics.incr (Printf.sprintf "exec.firings.d%d" (Domain.self () :> int));
    (a, ins, outs)
  in
  let commit ((a : Sdf.actor), ins, outs) =
    let set port v = Hashtbl.replace t.outputs ((a.Sdf.actor_name, port) : string * int) v in
    (match a.Sdf.actor_block.S.blk_type with
    | B.Unit_delay ->
        Hashtbl.replace t.delay_state a.Sdf.actor_name
          (if a.Sdf.actor_inputs > 0 then ins.(0) else 0.0)
    | B.Inport -> set 1 (stimulus a.Sdf.actor_name)
    | B.Outport ->
        let v = if a.Sdf.actor_inputs > 0 then ins.(0) else 0.0 in
        port_samples := (a.Sdf.actor_name, v) :: !port_samples
    | _ -> Array.iteri (fun j v -> set (j + 1) v) outs);
    Hashtbl.replace t.firings a.Sdf.actor_name
      (1 + Option.value (Hashtbl.find_opt t.firings a.Sdf.actor_name) ~default:0);
    if tracing then record_tokens t a
  in
  List.iter
    (fun level ->
      (* chunk so a wide level costs ~4 tasks per domain, not one per actor *)
      let chunk = max 1 (List.length level / (4 * Pool.size pool)) in
      List.iter commit (Pool.map ~chunk pool compute level))
    lvls;
  t.round <- t.round + 1;
  List.rev !port_samples

let default_stimulus name round =
  let h = float_of_int (Hashtbl.hash name mod 10) in
  sin ((float_of_int round +. h) /. 5.0)

(* Tokens crossing each channel protocol: in an SDF round every edge
   carries exactly one token, so per-round occupancy per protocol is
   the number of edges using it and the total traffic is that times
   the rounds executed.  This is what answers "how many tokens crossed
   each GFIFO channel?" without touching the per-firing hot loop. *)
let channel_metrics sdf rounds =
  let count proto =
    List.length
      (List.filter
         (fun (e : Sdf.edge) -> List.exists (fun (_, p) -> String.equal p proto) e.Sdf.edge_channels)
         sdf.Sdf.edges)
  in
  List.iter
    (fun proto ->
      let edges = count proto in
      if edges > 0 then (
        Obs.Metrics.set_gauge
          (Printf.sprintf "exec.channel_occupancy.%s" (String.lowercase_ascii proto))
          (float_of_int edges);
        Obs.Metrics.incr
          (Printf.sprintf "exec.tokens.%s" (String.lowercase_ascii proto))
          ~by:(edges * rounds)))
    [ "GFIFO"; "SWFIFO" ]

let run ?sfunctions ?stimulus ?pool ?ctx ~rounds sdf =
  (match ctx with Some c -> Obs.Context.with_current c | None -> fun f -> f ())
  @@ fun () ->
  Obs.Trace.with_span ~cat:"exec" "exec.run"
    ~args:(fun () ->
      [
        ("rounds", Obs.Json.Int rounds);
        ("actors", Obs.Json.Int (List.length sdf.Sdf.actors));
      ])
  @@ fun () ->
  let stimulus = Option.value stimulus ~default:default_stimulus in
  Obs.Journal.record "exec.run"
    ~fields:
      [
        ("rounds", Obs.Json.Int rounds);
        ("actors", Obs.Json.Int (List.length sdf.Sdf.actors));
        ("edges", Obs.Json.Int (List.length sdf.Sdf.edges));
      ];
  let session = start ?sfunctions sdf in
  (* Level-parallel mode: only when handed a pool that really has
     worker domains; [levels] shares [firing_order]'s Deadlock check. *)
  let level_mode =
    match pool with
    | Some p when Pool.size p > 1 ->
        let lvls = levels sdf in
        Obs.Metrics.set_gauge "exec.levels" (float_of_int (List.length lvls));
        Obs.Metrics.set_gauge "exec.level_width.max"
          (float_of_int
             (List.fold_left (fun acc l -> max acc (List.length l)) 0 lvls));
        Some (p, lvls)
    | Some _ | None -> None
  in
  let traces =
    List.map (fun name -> (name, Array.make rounds 0.0)) sdf.Sdf.graph_outputs
  in
  let observing = Obs.Trace.enabled () in
  for round = 0 to rounds - 1 do
    let t0 = if observing then Obs.Trace.now_us () else 0.0 in
    let round_stimulus name = stimulus name round in
    let samples =
      match level_mode with
      | Some (p, lvls) ->
          step_parallel session p lvls ~stimulus:round_stimulus ~observing
      | None -> step session ~stimulus:round_stimulus
    in
    if observing then Obs.Metrics.observe "exec.round_us" (Obs.Trace.now_us () -. t0);
    List.iter
      (fun (port, v) ->
        match List.assoc_opt port traces with
        | Some arr -> arr.(round) <- v
        | None -> ())
      samples
  done;
  let firings =
    List.map
      (fun (a : Sdf.actor) ->
        ( a.Sdf.actor_name,
          Option.value (Hashtbl.find_opt session.firings a.Sdf.actor_name) ~default:0 ))
      sdf.Sdf.actors
  in
  if level_mode <> None then Obs.Metrics.incr "exec.parallel_rounds" ~by:rounds;
  Obs.Metrics.incr "exec.rounds" ~by:rounds;
  Obs.Metrics.incr "exec.firings" ~by:(List.fold_left (fun acc (_, n) -> acc + n) 0 firings);
  List.iter
    (fun (name, n) -> if n > 0 then Obs.Metrics.incr ("exec.firings." ^ name) ~by:n)
    firings;
  channel_metrics sdf rounds;
  Obs.Journal.record "exec.done"
    ~fields:
      [
        ("rounds", Obs.Json.Int rounds);
        ( "firings",
          Obs.Json.Int (List.fold_left (fun acc (_, n) -> acc + n) 0 firings) );
        ("parallel", Obs.Json.Bool (level_mode <> None));
      ];
  (* With token tracing on, persist each channel's high-water mark in
     the journal — the part of the occupancy story worth keeping after
     the token ring has wrapped. *)
  if Obs.Telemetry.enabled () then
    List.iter
      (fun (s : Obs.Telemetry.channel_stat) ->
        Obs.Journal.record "channel.hwm"
          ~fields:
            [
              ("channel", Obs.Json.String s.Obs.Telemetry.chan_name);
              ("hwm", Obs.Json.Int s.Obs.Telemetry.chan_hwm);
              ("round", Obs.Json.Int s.Obs.Telemetry.chan_hwm_round);
            ])
      (Obs.Telemetry.channels ());
  { rounds; traces; firings }
