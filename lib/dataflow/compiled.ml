(* Compiled flat-schedule SDF execution.

   [Exec.run] is the semantic reference: hashtables keyed on names,
   fresh arrays per firing, list walks per actor.  Here the graph is
   compiled once into dense arrays — an opcode with resolved immediates
   per actor, ring-buffer FIFOs per edge, the topological order as an
   int array — and the steady-state loop touches only those.  The float
   operations per actor are replicated from [Exec.behaviour] operation
   for operation (same fold directions, same defaults), which is what
   makes the outcome bit-identical, a property the conformance engine
   and the qcheck suite enforce rather than assume.

   Buffer sizing (Lee–Messerschmitt): the flattened graph is
   single-rate — every actor fires exactly once per round — so the
   repetition vector is all-ones and the steady-state bound per edge is
   one in-flight token, plus one more on UnitDelay edges for the
   initial token that breaks the cycle (cf. Analysis.Sdf_rules
   .buffer_bounds, which computes the same 1/2 slots).  The sequential
   engine allocates exactly those capacities and exercises the FIFO
   discipline (push/pop with wraparound) every round.  The batched
   parallel engine widens each ring to the batch window (batch slots
   forward, batch+1 on delay edges, rounded to powers of two) so a
   producer may run ahead of a consumer within a batch: slot r mod cap
   holds round r's token, and within any window of batch consecutive
   rounds all live slots are distinct.

   Parallel scheduling: instead of [Exec]'s barrier per dependency
   level, rounds are batched per synchronization point and every
   (actor, round) pair becomes a node of a precedence DAG.  A node's
   in-degree counts its same-round non-delay input edges, plus — for
   rounds after the first of the batch — its delay input edges (the
   producer fired in the previous round) and one self-dependency that
   serializes the actor's own firings (the per-actor scratch buffers
   demand it).  Workers pull ready nodes from per-worker Chase–Lev
   deques ([Umlfront_parallel.Wsdeque]), steal when dry, spin briefly
   and then park on a condition variable; the worker that completes
   the batch broadcasts.  Determinism needs no commit phase for data
   (every token has exactly one writer and one tracked reader); token
   telemetry is replayed in topological order once per batch, exactly
   the stream the sequential engine records inline. *)

module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Pool = Umlfront_parallel.Pool
module Wsdeque = Umlfront_parallel.Wsdeque
module Obs = Umlfront_obs

(* --- token storage --------------------------------------------------- *)

module Fifo = struct
  type t = {
    buf : float array;
    mask : int;
    cap : int; (* logical capacity; buf is the next power of two *)
    mutable head : int; (* next pop; grows without wrapping *)
    mutable tail : int; (* next push *)
  }

  exception Full
  exception Empty

  let create ~capacity =
    if capacity < 1 then invalid_arg "Compiled.Fifo.create: capacity < 1";
    let rec pow2 k = if k >= capacity then k else pow2 (k * 2) in
    let size = pow2 1 in
    { buf = Array.make size 0.0; mask = size - 1; cap = capacity; head = 0; tail = 0 }

  let capacity t = t.cap
  let length t = t.tail - t.head
  let is_empty t = t.tail = t.head
  let is_full t = t.tail - t.head = t.cap

  let push t v =
    if is_full t then raise Full;
    t.buf.(t.tail land t.mask) <- v;
    t.tail <- t.tail + 1

  let pop t =
    if is_empty t then raise Empty;
    let v = t.buf.(t.head land t.mask) in
    t.head <- t.head + 1;
    v

  let set_slot t i v = t.buf.(i land t.mask) <- v
  let get_slot t i = t.buf.(i land t.mask)
end

(* --- compilation ----------------------------------------------------- *)

(* One opcode per actor, parameters resolved to immediates at compile
   time.  Each constructor's kernel replicates the corresponding arm of
   [Exec.behaviour] exactly. *)
type op =
  | Op_const of float (* Constant, Ground *)
  | Op_gain of float
  | Op_sum of float array (* per-input signs *)
  | Op_product
  | Op_saturation of float * float (* hi, lo *)
  | Op_switch of float (* threshold *)
  | Op_abs
  | Op_sqrt
  | Op_unary of (float -> float) (* Trig / Math, function resolved *)
  | Op_minmax of (float -> float -> float)
  | Op_mux
  | Op_demux
  | Op_terminator
  | Op_sfunction of string (* resolved per firing, like Exec *)
  | Op_delay
  | Op_inport
  | Op_outport

type plan = {
  p_sdf : Sdf.t;
  n : int;
  names : string array;
  ops : op array;
  n_outs : int array;
  n_prod : int array; (* statically produced ports; -1 = dynamic (S-function) *)
  is_delay : bool array;
  delay_init : float array;
  e_sp : int array; (* per edge: source port *)
  e_dp : int array; (* per edge: destination port *)
  e_dst_id : int array;
  e_delay : bool array; (* source actor is a UnitDelay *)
  in_edges : int array array; (* per actor, in Sdf.preds order *)
  out_edges : int array array; (* per actor, in Sdf.succs order *)
  order : int array; (* topological firing order *)
  nd_in : int array; (* non-delay in-edge count *)
  d_in : int array; (* delay in-edge count *)
  trace_of : int array; (* actor id -> graph_outputs index, or -1 *)
  outputs : string array; (* graph_outputs *)
  tele_in : string array array; (* per actor: pred channel names *)
  tele_out : (string * string list * string) array array;
      (* per actor: succ (channel, protocols, dst) *)
}

let op_of (a : Sdf.actor) =
  let blk = a.Sdf.actor_block in
  match blk.S.blk_type with
  | B.Constant -> Op_const (Exec.param_float blk "Value" 0.0)
  | B.Ground -> Op_const 0.0
  | B.Gain -> Op_gain (Exec.param_float blk "Gain" 1.0)
  | B.Product -> Op_product
  | B.Sum -> Op_sum (Array.of_list (Exec.sum_signs blk a.Sdf.actor_inputs))
  | B.Saturation ->
      Op_saturation
        (Exec.param_float blk "UpperLimit" 1.0, Exec.param_float blk "LowerLimit" (-1.0))
  | B.Switch -> Op_switch (Exec.param_float blk "Threshold" 0.0)
  | B.Abs -> Op_abs
  | B.Sqrt -> Op_sqrt
  | B.Trig ->
      Op_unary
        (match S.param_string blk "Function" with
        | Some "cos" -> cos
        | Some "tan" -> tan
        | Some _ | None -> sin)
  | B.Min_max ->
      Op_minmax (if S.param_string blk "Function" = Some "min" then Float.min else Float.max)
  | B.Math ->
      Op_unary
        (match S.param_string blk "Function" with
        | Some "log" -> log
        | Some _ | None -> exp)
  | B.Mux -> Op_mux
  | B.Demux -> Op_demux
  | B.Terminator -> Op_terminator
  | B.S_function ->
      Op_sfunction (Option.value (S.param_string blk "FunctionName") ~default:blk.S.blk_name)
  | B.Unit_delay -> Op_delay
  | B.Inport -> Op_inport
  | B.Outport -> Op_outport
  | B.Subsystem | B.Channel ->
      invalid_arg (Printf.sprintf "compiled: %s is structural, not an actor" a.Sdf.actor_name)

let produced_of (a : Sdf.actor) = function
  | Op_const _ | Op_gain _ | Op_sum _ | Op_product | Op_saturation _ | Op_switch _
  | Op_abs | Op_sqrt | Op_unary _ | Op_minmax _ | Op_mux | Op_inport -> 1
  | Op_demux -> a.Sdf.actor_outputs
  | Op_terminator | Op_outport | Op_delay -> 0
  | Op_sfunction _ -> -1

let compile (sdf : Sdf.t) =
  let order_names = Exec.firing_order sdf (* raises Deadlock like the reference *) in
  let actors = Array.of_list sdf.Sdf.actors in
  let n = Array.length actors in
  let ids = Hashtbl.create (2 * n) in
  Array.iteri (fun i (a : Sdf.actor) -> Hashtbl.replace ids a.Sdf.actor_name i) actors;
  let id_of name =
    match Hashtbl.find_opt ids name with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "compiled: unknown actor %s" name)
  in
  let ops = Array.map op_of actors in
  let is_delay = Array.map (fun o -> o = Op_delay) ops in
  let edges = Array.of_list sdf.Sdf.edges in
  let e_sp = Array.map (fun (e : Sdf.edge) -> e.Sdf.edge_src_port) edges in
  let e_dp = Array.map (fun (e : Sdf.edge) -> e.Sdf.edge_dst_port) edges in
  let e_dst_id = Array.map (fun (e : Sdf.edge) -> id_of e.Sdf.edge_dst) edges in
  let e_delay = Array.map (fun (e : Sdf.edge) -> is_delay.(id_of e.Sdf.edge_src)) edges in
  (* Positional scan over [sdf.edges] keeps each per-actor edge list in
     exactly Sdf.preds/succs order (they are order-preserving filters),
     duplicates included. *)
  let in_buf = Array.make n [] and out_buf = Array.make n [] in
  Array.iteri
    (fun j (e : Sdf.edge) ->
      in_buf.(id_of e.Sdf.edge_dst) <- j :: in_buf.(id_of e.Sdf.edge_dst);
      out_buf.(id_of e.Sdf.edge_src) <- j :: out_buf.(id_of e.Sdf.edge_src))
    edges;
  let in_edges = Array.map (fun l -> Array.of_list (List.rev l)) in_buf in
  let out_edges = Array.map (fun l -> Array.of_list (List.rev l)) out_buf in
  let nd_in = Array.make n 0 and d_in = Array.make n 0 in
  Array.iter
    (fun ie ->
      ignore
        (Array.iter
           (fun j ->
             if e_delay.(j) then d_in.(e_dst_id.(j)) <- d_in.(e_dst_id.(j)) + 1
             else nd_in.(e_dst_id.(j)) <- nd_in.(e_dst_id.(j)) + 1)
           ie))
    in_edges;
  let outputs = Array.of_list sdf.Sdf.graph_outputs in
  let trace_of = Array.make n (-1) in
  Array.iteri (fun k name -> trace_of.(id_of name) <- k) outputs;
  {
    p_sdf = sdf;
    n;
    names = Array.map (fun (a : Sdf.actor) -> a.Sdf.actor_name) actors;
    ops;
    n_outs = Array.map (fun (a : Sdf.actor) -> a.Sdf.actor_outputs) actors;
    n_prod = Array.mapi (fun i o -> produced_of actors.(i) o) ops;
    is_delay;
    delay_init =
      Array.map
        (fun (a : Sdf.actor) -> Exec.param_float a.Sdf.actor_block "InitialCondition" 0.0)
        actors;
    e_sp;
    e_dp;
    e_dst_id;
    e_delay;
    in_edges;
    out_edges;
    order = Array.of_list (List.map id_of order_names);
    nd_in;
    d_in;
    trace_of;
    outputs;
    tele_in =
      Array.map
        (fun (a : Sdf.actor) ->
          Array.of_list (List.map Sdf.channel_name (Sdf.preds sdf a.Sdf.actor_name)))
        actors;
    tele_out =
      Array.map
        (fun (a : Sdf.actor) ->
          Array.of_list
            (List.map
               (fun (e : Sdf.edge) ->
                 (Sdf.channel_name e, Sdf.edge_protocols e, e.Sdf.edge_dst))
               (Sdf.succs sdf a.Sdf.actor_name)))
        actors;
  }

(* --- execution ------------------------------------------------------- *)

(* Kernel for the fixed-arity combinational ops: writes [outs] from
   [ins] exactly as the matching [Exec.behaviour] arm would (same fold
   seeds, same fold direction, same out-of-range exceptions). *)
let compute_fixed op (ins : float array) (outs : float array) n_prod =
  match op with
  | Op_const v -> outs.(0) <- v
  | Op_gain g -> outs.(0) <- g *. ins.(0)
  | Op_sum signs ->
      let acc = ref 0.0 in
      for k = 0 to Array.length signs - 1 do
        acc := !acc +. (signs.(k) *. ins.(k))
      done;
      outs.(0) <- !acc
  | Op_product ->
      let acc = ref 1.0 in
      for k = 0 to Array.length ins - 1 do
        acc := !acc *. ins.(k)
      done;
      outs.(0) <- !acc
  | Op_saturation (hi, lo) -> outs.(0) <- Float.min hi (Float.max lo ins.(0))
  | Op_switch threshold -> outs.(0) <- (if ins.(1) >= threshold then ins.(0) else ins.(2))
  | Op_abs -> outs.(0) <- Float.abs ins.(0)
  | Op_sqrt -> outs.(0) <- sqrt ins.(0)
  | Op_unary f -> outs.(0) <- f ins.(0)
  | Op_minmax pick ->
      outs.(0) <-
        (if Array.length ins = 0 then 0.0
         else begin
           let acc = ref ins.(0) in
           for k = 1 to Array.length ins - 1 do
             acc := pick !acc ins.(k)
           done;
           !acc
         end)
  | Op_mux -> outs.(0) <- (if Array.length ins > 0 then ins.(0) else 0.0)
  | Op_demux ->
      let v = if Array.length ins > 0 then ins.(0) else 0.0 in
      Array.fill outs 0 n_prod v
  | Op_terminator -> ()
  | Op_sfunction _ | Op_delay | Op_inport | Op_outport -> assert false

let no_sfunctions : string -> (float array -> float array) option = fun _ -> None

let run_plan ?(sfunctions = no_sfunctions) ?stimulus ?pool ?ctx ?(batch = 32) ~rounds p =
  if batch < 1 then invalid_arg "Compiled.run: batch < 1";
  (match ctx with Some c -> Obs.Context.with_current c | None -> fun f -> f ())
  @@ fun () ->
  let par = match pool with Some pl when Pool.size pl > 1 -> Some pl | _ -> None in
  let domains = match par with Some pl -> Pool.size pl | None -> 1 in
  Obs.Trace.with_span ~cat:"exec" "compiled.run"
    ~args:(fun () ->
      [
        ("rounds", Obs.Json.Int rounds);
        ("actors", Obs.Json.Int p.n);
        ("domains", Obs.Json.Int domains);
      ])
  @@ fun () ->
  Obs.Journal.record "compiled.run"
    ~fields:
      [
        ("rounds", Obs.Json.Int rounds);
        ("actors", Obs.Json.Int p.n);
        ("edges", Obs.Json.Int (Array.length p.e_sp));
        ("domains", Obs.Json.Int domains);
        ("batch", Obs.Json.Int (if par = None then 1 else batch));
      ];
  let stimulus = Option.value stimulus ~default:Exec.default_stimulus in
  let rec pow2 k n = if k >= n then k else pow2 (k * 2) n in
  (* Sequential: the exact Lee–Messerschmitt capacities.  Parallel:
     widened to the batch window so in-flight rounds never share a
     slot (delay edges hold one extra, initial, token). *)
  let fwd_cap, delay_cap =
    match par with None -> (1, 2) | Some _ -> (pow2 1 batch, pow2 1 (batch + 1))
  in
  let rings =
    Array.map (fun d -> Fifo.create ~capacity:(if d then delay_cap else fwd_cap)) p.e_delay
  in
  (* Initial tokens: one per UnitDelay out-edge, readable in round 0. *)
  for i = 0 to p.n - 1 do
    if p.is_delay.(i) then
      Array.iter
        (fun e ->
          match par with
          | None -> Fifo.push rings.(e) p.delay_init.(i)
          | Some _ -> Fifo.set_slot rings.(e) 0 p.delay_init.(i))
        p.out_edges.(i)
  done;
  let ins_scratch =
    Array.init p.n (fun i ->
        Array.make
          (match Sdf.find_actor p.p_sdf p.names.(i) with
          | Some a -> a.Sdf.actor_inputs
          | None -> 0)
          0.0)
  in
  let outs_scratch = Array.init p.n (fun i -> Array.make (max p.n_prod.(i) 1) 0.0) in
  let trace_arrays = Array.map (fun _ -> Array.make rounds 0.0) p.outputs in
  let tracing = Obs.Telemetry.enabled () in
  let observing = Obs.Trace.enabled () in
  (* Deterministic token telemetry for one firing, identical to
     Exec.record_tokens: consume the pred channels, produce one stamped
     token per succ edge; the firing index equals round + 1 because the
     graph is single-rate. *)
  let replay_tokens i round =
    let name = p.names.(i) in
    let firing = round + 1 in
    let ti = p.tele_in.(i) in
    for k = 0 to Array.length ti - 1 do
      ignore (Obs.Telemetry.consume ~by:name ti.(k))
    done;
    let tl = p.tele_out.(i) in
    for k = 0 to Array.length tl - 1 do
      let chan, protocols, dst = tl.(k) in
      ignore (Obs.Telemetry.produce ~protocols ~round ~dst ~src:name ~firing chan)
    done
  in
  let resolve_sfunction fn ins n_outs =
    match sfunctions fn with Some f -> f ins | None -> Exec.default_sfunction fn ins n_outs
  in
  (* ---- sequential flat interpreter: FIFO push/pop discipline ---- *)
  let gather_seq i =
    let ins = ins_scratch.(i) in
    let ie = p.in_edges.(i) in
    for k = 0 to Array.length ie - 1 do
      let e = ie.(k) in
      let v = Fifo.pop rings.(e) in
      let dp = p.e_dp.(e) in
      if dp >= 1 && dp <= Array.length ins then ins.(dp - 1) <- v
    done;
    ins
  in
  let scatter_seq i produced (arr : float array) =
    let oe = p.out_edges.(i) in
    for k = 0 to Array.length oe - 1 do
      let e = oe.(k) in
      let sp = p.e_sp.(e) in
      Fifo.push rings.(e) (if sp >= 1 && sp <= produced then arr.(sp - 1) else 0.0)
    done
  in
  let fire_seq i round =
    let ins = gather_seq i in
    (match p.ops.(i) with
    | Op_delay ->
        (* The ring still holds this round's (older) token; pushing the
           new state behind it is the snapshot semantics. *)
        let v = if Array.length ins > 0 then ins.(0) else 0.0 in
        let oe = p.out_edges.(i) in
        for k = 0 to Array.length oe - 1 do
          Fifo.push rings.(oe.(k)) v
        done
    | Op_inport ->
        let outs = outs_scratch.(i) in
        outs.(0) <- stimulus p.names.(i) round;
        scatter_seq i 1 outs
    | Op_outport ->
        let v = if Array.length ins > 0 then ins.(0) else 0.0 in
        let t = p.trace_of.(i) in
        if t >= 0 then trace_arrays.(t).(round) <- v;
        scatter_seq i 0 ins
    | Op_sfunction fn ->
        let res = resolve_sfunction fn ins p.n_outs.(i) in
        scatter_seq i (Array.length res) res
    | op ->
        let outs = outs_scratch.(i) in
        compute_fixed op ins outs p.n_prod.(i);
        scatter_seq i p.n_prod.(i) outs);
    if tracing then replay_tokens i round
  in
  let run_sequential () =
    for round = 0 to rounds - 1 do
      let t0 = if observing then Obs.Trace.now_us () else 0.0 in
      let ord = p.order in
      for k = 0 to Array.length ord - 1 do
        fire_seq ord.(k) round
      done;
      if observing then Obs.Metrics.observe "compiled.round_us" (Obs.Trace.now_us () -. t0)
    done
  in
  (* ---- batched work-stealing parallel engine ---- *)
  let fire_par i gr =
    (* [gr] is the global round; ring slots are indexed by it. *)
    let ins = ins_scratch.(i) in
    let ie = p.in_edges.(i) in
    for k = 0 to Array.length ie - 1 do
      let e = ie.(k) in
      let v = Fifo.get_slot rings.(e) gr in
      let dp = p.e_dp.(e) in
      if dp >= 1 && dp <= Array.length ins then ins.(dp - 1) <- v
    done;
    let scatter produced (arr : float array) =
      let oe = p.out_edges.(i) in
      for k = 0 to Array.length oe - 1 do
        let e = oe.(k) in
        let sp = p.e_sp.(e) in
        Fifo.set_slot rings.(e) gr (if sp >= 1 && sp <= produced then arr.(sp - 1) else 0.0)
      done
    in
    match p.ops.(i) with
    | Op_delay ->
        let v = if Array.length ins > 0 then ins.(0) else 0.0 in
        let oe = p.out_edges.(i) in
        for k = 0 to Array.length oe - 1 do
          Fifo.set_slot rings.(oe.(k)) (gr + 1) v
        done
    | Op_inport ->
        let outs = outs_scratch.(i) in
        outs.(0) <- stimulus p.names.(i) gr;
        scatter 1 outs
    | Op_outport ->
        let v = if Array.length ins > 0 then ins.(0) else 0.0 in
        let t = p.trace_of.(i) in
        if t >= 0 then trace_arrays.(t).(gr) <- v;
        scatter 0 ins
    | Op_sfunction fn ->
        let res = resolve_sfunction fn ins p.n_outs.(i) in
        scatter (Array.length res) res
    | op ->
        let outs = outs_scratch.(i) in
        compute_fixed op ins outs p.n_prod.(i);
        scatter p.n_prod.(i) outs
  in
  let run_parallel pl =
    let w = Pool.size pl in
    let bsz = batch in
    let node_count = max 1 (p.n * bsz) in
    let deques = Array.init w (fun _ -> Wsdeque.create ~capacity:node_count) in
    let pending = Array.init (p.n * bsz) (fun _ -> Atomic.make 0) in
    let remaining = Atomic.make 0 in
    let sleepers = Atomic.make 0 in
    let idle_m = Mutex.create () in
    let idle_c = Condition.create () in
    let wake_all () =
      Mutex.lock idle_m;
      Condition.broadcast idle_c;
      Mutex.unlock idle_m
    in
    let exec_node wid base r_count node =
      let i = node / bsz and r = node mod bsz in
      fire_par i (base + r);
      let dq = deques.(wid) in
      let dec target =
        if Atomic.fetch_and_add pending.(target) (-1) = 1 then begin
          Wsdeque.push dq target;
          if Atomic.get sleepers > 0 then wake_all ()
        end
      in
      let oe = p.out_edges.(i) in
      if p.is_delay.(i) then begin
        (* a delay's token is read one round later *)
        if r + 1 < r_count then
          for k = 0 to Array.length oe - 1 do
            dec ((p.e_dst_id.(oe.(k)) * bsz) + r + 1)
          done
      end
      else
        for k = 0 to Array.length oe - 1 do
          dec ((p.e_dst_id.(oe.(k)) * bsz) + r)
        done;
      if r + 1 < r_count then dec (node + 1);
      if Atomic.fetch_and_add remaining (-1) = 1 then wake_all ()
    in
    let worker base r_count wid =
      let q = deques.(wid) in
      let steal_once () =
        let rec go k =
          if k >= w then None
          else
            match Wsdeque.steal deques.((wid + k) mod w) with
            | Some _ as r -> r
            | None -> go (k + 1)
        in
        go 1
      in
      let rec loop spin =
        if Atomic.get remaining > 0 then
          match Wsdeque.pop q with
          | Some node ->
              exec_node wid base r_count node;
              loop 0
          | None -> (
              match steal_once () with
              | Some node ->
                  exec_node wid base r_count node;
                  loop 0
              | None ->
                  if spin < 100 then begin
                    Domain.cpu_relax ();
                    loop (spin + 1)
                  end
                  else begin
                    (* Park until more work is published or the batch
                       drains; the remaining-check under the lock makes
                       the final broadcast impossible to miss. *)
                    Mutex.lock idle_m;
                    Atomic.incr sleepers;
                    if Atomic.get remaining > 0 then Condition.wait idle_c idle_m;
                    Atomic.decr sleepers;
                    Mutex.unlock idle_m;
                    loop 0
                  end)
      in
      loop 0
    in
    let nbatches = (rounds + bsz - 1) / bsz in
    for b = 0 to nbatches - 1 do
      let base = b * bsz in
      let r_count = min bsz (rounds - base) in
      Array.iter Wsdeque.reset deques;
      for i = 0 to p.n - 1 do
        let indeg_rest = p.nd_in.(i) + p.d_in.(i) + 1 in
        for r = 0 to r_count - 1 do
          Atomic.set pending.((i * bsz) + r) (if r = 0 then p.nd_in.(i) else indeg_rest)
        done
      done;
      Atomic.set remaining (p.n * r_count);
      let seed = ref 0 in
      for i = 0 to p.n - 1 do
        if p.nd_in.(i) = 0 then begin
          Wsdeque.push deques.(!seed mod w) (i * bsz);
          incr seed
        end
      done;
      let t0 = if observing then Obs.Trace.now_us () else 0.0 in
      Pool.parallel_for pl w (worker base r_count);
      if observing then begin
        Obs.Metrics.observe "compiled.batch_us" (Obs.Trace.now_us () -. t0);
        Obs.Metrics.incr "compiled.batches"
      end;
      if tracing then
        for r = base to base + r_count - 1 do
          let ord = p.order in
          for k = 0 to Array.length ord - 1 do
            replay_tokens ord.(k) r
          done
        done
    done
  in
  (match par with None -> run_sequential () | Some pl -> run_parallel pl);
  let firings = List.map (fun name -> (name, rounds)) (Array.to_list p.names) in
  Obs.Metrics.incr "compiled.rounds" ~by:rounds;
  Obs.Metrics.incr "compiled.firings" ~by:(p.n * rounds);
  Exec.channel_metrics p.p_sdf rounds;
  Obs.Journal.record "compiled.done"
    ~fields:
      [
        ("rounds", Obs.Json.Int rounds);
        ("firings", Obs.Json.Int (p.n * rounds));
        ("parallel", Obs.Json.Bool (par <> None));
      ];
  if Obs.Telemetry.enabled () then
    List.iter
      (fun (s : Obs.Telemetry.channel_stat) ->
        Obs.Journal.record "channel.hwm"
          ~fields:
            [
              ("channel", Obs.Json.String s.Obs.Telemetry.chan_name);
              ("hwm", Obs.Json.Int s.Obs.Telemetry.chan_hwm);
              ("round", Obs.Json.Int s.Obs.Telemetry.chan_hwm_round);
            ])
      (Obs.Telemetry.channels ());
  {
    Exec.rounds;
    traces =
      List.map2
        (fun name arr -> (name, arr))
        (Array.to_list p.outputs) (Array.to_list trace_arrays);
    firings;
  }

let run ?sfunctions ?stimulus ?pool ?ctx ?batch ~rounds sdf =
  run_plan ?sfunctions ?stimulus ?pool ?ctx ?batch ~rounds (compile sdf)
