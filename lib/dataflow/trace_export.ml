let traces_csv (o : Exec.outcome) =
  let buf = Buffer.create 512 in
  let ports = List.map fst o.Exec.traces in
  Buffer.add_string buf ("round," ^ String.concat "," ports ^ "\n");
  for round = 0 to o.Exec.rounds - 1 do
    Buffer.add_string buf (string_of_int round);
    List.iter
      (fun (_, samples) -> Buffer.add_string buf (Printf.sprintf ",%.9f" samples.(round)))
      o.Exec.traces;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* Rebuild the schedule the way Timing does, but keep per-actor rows. *)
let scheduled_rows sdf =
  let model = Timing.default_cost_model in
  let order = Exec.firing_order sdf in
  let finish = Hashtbl.create 32 in
  let cpu_free = Hashtbl.create 8 in
  List.filter_map
    (fun name ->
      let a = Option.get (Sdf.find_actor sdf name) in
      let cost =
        match a.Sdf.actor_block.Umlfront_simulink.System.blk_type with
        | Umlfront_simulink.Block.Inport | Umlfront_simulink.Block.Outport
          when a.Sdf.actor_path = [] ->
            0.0
        | _ -> model.Timing.default_actor_cost
      in
      let latency (e : Sdf.edge) =
        let protocols = List.map snd e.Sdf.edge_channels in
        if List.mem "GFIFO" protocols then model.Timing.gfifo_cost
        else if List.mem "SWFIFO" protocols then model.Timing.swfifo_cost
        else model.Timing.wire_cost
      in
      let ready =
        List.fold_left
          (fun acc e ->
            Float.max acc
              (Option.value (Hashtbl.find_opt finish e.Sdf.edge_src) ~default:0.0
              +. latency e))
          0.0 (Sdf.preds sdf name)
      in
      let cpu = Sdf.cpu_of_actor a in
      let start =
        match cpu with
        | Some c -> Float.max ready (Option.value (Hashtbl.find_opt cpu_free c) ~default:0.0)
        | None -> ready
      in
      let done_at = start +. cost in
      Hashtbl.replace finish name done_at;
      Option.iter (fun c -> Hashtbl.replace cpu_free c done_at) cpu;
      match cpu with
      | Some c -> Some (name, c, Sdf.thread_of_actor a, start, done_at)
      | None -> None)
    order

let schedule_csv sdf =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "actor,cpu,thread,start,finish\n";
  List.iter
    (fun (name, cpu, thread, start, done_at) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%.2f,%.2f\n" name cpu
           (Option.value thread ~default:"-")
           start done_at))
    (scheduled_rows sdf);
  Buffer.contents buf

(* The same static schedule as [gantt], exported as Chrome trace-event
   JSON: one pid per CPU, actors as Complete events, so the schedule
   can be inspected in Perfetto next to a runtime profile from
   Umlfront_obs.Trace.  Every SDF edge between two scheduled actors
   additionally exports a flow-event pair ("s" at the producer's
   finish, "f" at the consumer's start, bound by cat "token" and the
   edge index), so Perfetto draws the token hand-offs as arrows across
   CPU lanes.  All of it is derived from the static timing model, so
   the output is deterministic and golden-testable. *)
let chrome_json sdf =
  let module Json = Umlfront_obs.Json in
  let rows = scheduled_rows sdf in
  let cpus =
    List.fold_left
      (fun acc (_, cpu, _, _, _) -> if List.mem cpu acc then acc else acc @ [ cpu ])
      [] rows
  in
  let cpu_index c =
    let rec find i = function
      | [] -> 0
      | x :: rest -> if String.equal x c then i else find (i + 1) rest
    in
    find 0 cpus
  in
  let events =
    List.map
      (fun (name, cpu, thread, start, finish) ->
        Json.Obj
          [
            ("name", Json.String name);
            ("cat", Json.String "schedule");
            ("ph", Json.String "X");
            ("ts", Json.Float start);
            ("dur", Json.Float (finish -. start));
            ("pid", Json.Int (1 + cpu_index cpu));
            ("tid", Json.Int 1);
            ( "args",
              Json.Obj
                [
                  ("cpu", Json.String cpu);
                  ("thread", Json.String (Option.value thread ~default:"-"));
                ] );
          ])
      rows
  in
  let row name =
    List.find_opt (fun (n, _, _, _, _) -> String.equal n name) rows
  in
  let flow_events =
    List.concat
      (List.mapi
         (fun i (e : Sdf.edge) ->
           match (row e.Sdf.edge_src, row e.Sdf.edge_dst) with
           | ( Some (_, src_cpu, _, _, src_finish),
               Some (_, dst_cpu, _, dst_start, _) ) ->
               let base ph ts cpu =
                 [
                   ("name", Json.String (Sdf.channel_name e));
                   ("cat", Json.String "token");
                   ("ph", Json.String ph);
                   ("id", Json.Int i);
                   ("ts", Json.Float ts);
                   ("pid", Json.Int (1 + cpu_index cpu));
                   ("tid", Json.Int 1);
                 ]
               in
               [
                 Json.Obj
                   (base "s" src_finish src_cpu
                   @ [
                       ( "args",
                         Json.Obj
                           [
                             ( "protocols",
                               Json.List
                                 (List.map
                                    (fun p -> Json.String p)
                                    (Sdf.edge_protocols e)) );
                           ] );
                     ]);
                 Json.Obj
                   (base "f" dst_start dst_cpu @ [ ("bp", Json.String "e") ]);
               ]
           | _ -> [])
         sdf.Sdf.edges)
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (events @ flow_events));
         ("displayTimeUnit", Json.String "ms");
       ])

let gantt ?(width = 60) sdf =
  let rows = scheduled_rows sdf in
  let horizon = List.fold_left (fun acc (_, _, _, _, f) -> Float.max acc f) 1.0 rows in
  let cpus =
    List.fold_left
      (fun acc (_, cpu, _, _, _) -> if List.mem cpu acc then acc else acc @ [ cpu ])
      [] rows
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun cpu ->
      let lane = Bytes.make width '.' in
      List.iter
        (fun (_, c, _, start, finish) ->
          if String.equal c cpu then
            let from = int_of_float (start /. horizon *. float_of_int (width - 1)) in
            let till = int_of_float (finish /. horizon *. float_of_int (width - 1)) in
            for i = from to min till (width - 1) do
              Bytes.set lane i '#'
            done)
        rows;
      Buffer.add_string buf (Printf.sprintf "  %-8s |%s| 0..%.1f\n" cpu (Bytes.to_string lane) horizon))
    cpus;
  Buffer.contents buf
