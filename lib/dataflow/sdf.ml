module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Model = Umlfront_simulink.Model
module G = Umlfront_taskgraph.Graph

type actor = {
  actor_name : string;
  actor_path : string list;
  actor_block : S.block;
  actor_inputs : int;
  actor_outputs : int;
}

type edge = {
  edge_src : string;
  edge_src_port : int;
  edge_dst : string;
  edge_dst_port : int;
  edge_channels : (string * string) list;
}

type t = {
  actors : actor list;
  edges : edge list;
  graph_inputs : (string * int) list;
  graph_outputs : string list;
}

type frame = { fsys : S.t; fpath : string list }

let structural ~at_root (b : S.block) =
  match b.S.blk_type with
  | B.Subsystem | B.Channel -> true
  | B.Inport | B.Outport -> not at_root
  | _ -> false

let actor_name path (b : S.block) = String.concat "/" (path @ [ b.S.blk_name ])

let make_actor path (b : S.block) =
  let inputs, outputs = S.port_counts b in
  {
    actor_name = actor_name path b;
    actor_path = path;
    actor_block = b;
    actor_inputs = inputs;
    actor_outputs = outputs;
  }

let boundary_port sys ty index =
  let candidates = S.blocks_of_type sys ty in
  match List.find_opt (fun b -> S.inport_index b = index) candidates with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "sdf: system %s has no %s with Port %d" sys.S.sys_name
           (B.to_string ty) index)

(* Follow a destination endpoint through structural blocks down to leaf
   actor inputs.  [stack] is the chain of frames, innermost first. *)
let rec trace_dst stack (dst : S.port_ref) channels acc =
  match stack with
  | [] -> acc
  | frame :: outer -> (
      let sys = frame.fsys in
      let b = S.find_block_exn sys dst.S.block in
      let at_root = frame.fpath = [] in
      match b.S.blk_type with
      | B.Subsystem ->
          let inner =
            match b.S.blk_system with
            | Some i -> i
            | None -> invalid_arg (Printf.sprintf "sdf: subsystem %s is empty" b.S.blk_name)
          in
          let inport = boundary_port inner B.Inport dst.S.port in
          let inner_frame = { fsys = inner; fpath = frame.fpath @ [ b.S.blk_name ] } in
          List.fold_left
            (fun acc d -> trace_dst (inner_frame :: stack) d channels acc)
            acc
            (S.consumers inner inport.S.blk_name 1)
      | B.Outport when not at_root -> (
          match outer with
          | [] -> acc
          | parent :: _ ->
              let subsys_name =
                List.nth frame.fpath (List.length frame.fpath - 1)
              in
              let port = S.inport_index b in
              List.fold_left
                (fun acc d -> trace_dst outer d channels acc)
                acc
                (S.consumers parent.fsys subsys_name port))
      | B.Channel ->
          let protocol =
            Option.value (S.param_string b Umlfront_simulink.Caam.protocol_param)
              ~default:"WIRE"
          in
          let channels = channels @ [ (b.S.blk_name, protocol) ] in
          List.fold_left
            (fun acc d -> trace_dst stack d channels acc)
            acc
            (S.consumers sys b.S.blk_name 1)
      | _ ->
          (* Leaf actor (or root-level Outport). *)
          (actor_name frame.fpath b, dst.S.port, channels) :: acc)

let stack_for (m : Model.t) path =
  (* Frames from the system at [path] back to the root. *)
  let rec descend stack sys walked = function
    | [] -> { fsys = sys; fpath = walked } :: stack
    | name :: rest -> (
        let b = S.find_block_exn sys name in
        match b.S.blk_system with
        | Some inner ->
            descend
              ({ fsys = sys; fpath = walked } :: stack)
              inner (walked @ [ name ]) rest
        | None -> invalid_arg (Printf.sprintf "sdf: %s is not a subsystem" name))
  in
  descend [] m.Model.root [] path

let destinations_of_line (m : Model.t) ~path (l : S.line) =
  let stack = stack_for m path in
  trace_dst stack l.S.dst [] []
  |> List.map (fun (actor, port, _channels) -> (actor, port))

let of_model (m : Model.t) =
  let actors = ref [] in
  let edges = ref [] in
  (* Enumerate frames depth-first, keeping the stack to the root. *)
  let rec walk stack =
    match stack with
    | [] -> ()
    | frame :: _ ->
        let at_root = frame.fpath = [] in
        List.iter
          (fun (b : S.block) ->
            if not (structural ~at_root b) then
              actors := make_actor frame.fpath b :: !actors)
          (S.blocks frame.fsys);
        (* Origin lines: sources that are leaf actors here. *)
        List.iter
          (fun (l : S.line) ->
            let src_block = S.find_block_exn frame.fsys l.S.src.S.block in
            if not (structural ~at_root src_block) then
              let dests = trace_dst stack l.S.dst [] [] in
              List.iter
                (fun (dst_actor, dst_port, channels) ->
                  edges :=
                    {
                      edge_src = actor_name frame.fpath src_block;
                      edge_src_port = l.S.src.S.port;
                      edge_dst = dst_actor;
                      edge_dst_port = dst_port;
                      edge_channels = channels;
                    }
                    :: !edges)
                dests)
          (S.lines frame.fsys);
        List.iter
          (fun (b : S.block) ->
            match b.S.blk_system with
            | Some inner ->
                walk ({ fsys = inner; fpath = frame.fpath @ [ b.S.blk_name ] } :: stack)
            | None -> ())
          (S.blocks frame.fsys)
  in
  walk [ { fsys = m.Model.root; fpath = [] } ];
  let actors = List.rev !actors in
  let edges = List.rev !edges in
  let graph_inputs =
    actors
    |> List.filter (fun a ->
           a.actor_path = [] && a.actor_block.S.blk_type = B.Inport)
    |> List.map (fun a ->
           let fed =
             List.length (List.filter (fun e -> String.equal e.edge_src a.actor_name) edges)
           in
           (a.actor_name, fed))
  in
  let graph_outputs =
    actors
    |> List.filter (fun a ->
           a.actor_path = [] && a.actor_block.S.blk_type = B.Outport)
    |> List.map (fun a -> a.actor_name)
  in
  { actors; edges; graph_inputs; graph_outputs }

let find_actor t name = List.find_opt (fun a -> String.equal a.actor_name name) t.actors

(* Canonical channel identity for an edge — shared by the KPN runtime,
   the token-tracing executors and conformance reports, so a channel
   named in one shows up verbatim in the others. *)
let channel_name e =
  Printf.sprintf "%s/%d->%s/%d" e.edge_src e.edge_src_port e.edge_dst e.edge_dst_port

let edge_protocols e = List.map snd e.edge_channels
let preds t name = List.filter (fun e -> String.equal e.edge_dst name) t.edges
let succs t name = List.filter (fun e -> String.equal e.edge_src name) t.edges

let cpu_of_actor a = match a.actor_path with [] -> None | cpu :: _ -> Some cpu

let thread_of_actor a =
  match a.actor_path with _ :: thread :: _ -> Some thread | [ _ ] | [] -> None

let actor_cost a =
  match List.assoc_opt "Cost" a.actor_block.S.blk_params with
  | Some (B.P_float f) -> f
  | Some (B.P_int i) -> float_of_int i
  | Some _ | None -> 1.0

let to_taskgraph t =
  let g = G.create () in
  List.iter (fun a -> G.add_node g ~weight:(actor_cost a) a.actor_name) t.actors;
  List.iter
    (fun e ->
      let src = find_actor t e.edge_src in
      let is_delay =
        match src with
        | Some a -> a.actor_block.S.blk_type = B.Unit_delay
        | None -> false
      in
      if not is_delay then G.add_edge g e.edge_src e.edge_dst)
    t.edges;
  g

let pp ppf t =
  Format.fprintf ppf "@[<v>sdf (%d actors, %d edges)" (List.length t.actors)
    (List.length t.edges);
  List.iter
    (fun a ->
      Format.fprintf ppf "@,  %s [%d in, %d out]" a.actor_name a.actor_inputs
        a.actor_outputs)
    t.actors;
  List.iter
    (fun e ->
      Format.fprintf ppf "@,  %s/%d -> %s/%d%s" e.edge_src e.edge_src_port e.edge_dst
        e.edge_dst_port
        (match e.edge_channels with
        | [] -> ""
        | chs ->
            " via " ^ String.concat "," (List.map (fun (n, p) -> n ^ ":" ^ p) chs)))
    t.edges;
  Format.fprintf ppf "@]"
