(** Kahn process networks: the other dataflow MoC the paper names as a
    mapping target ("the proposed transformation approach can be
    extended to support mappings to other languages, such as ... KPN",
    §3).

    Processes are written in a resumption style: each step either reads
    a channel (blocking), writes a channel (unbounded FIFO, never
    blocks), or terminates.  The scheduler runs processes round-robin;
    if every live process is blocked on an empty channel, the network
    is deadlocked. *)

type 'a process =
  | Read of string * (float -> 'a process)
  | Write of string * float * (unit -> 'a process)
  | Done of 'a

type outcome = {
  results : (string * float) list;  (** per terminated process *)
  channel_residue : (string * int) list;  (** tokens left per channel *)
  steps : int;
}

exception Deadlock of string list
(** Names of the processes blocked when no progress was possible,
    sorted — deterministic regardless of scheduling order. *)

exception Out_of_fuel

type blocked = { b_actor : string; b_op : [ `Read | `Write ]; b_channel : string }
(** One blocked process: which actor, waiting to read or write, on
    which channel. *)

type stall = {
  stall_reason : [ `Deadlock | `No_completion of int | `Out_of_fuel ];
  stall_blocked : blocked list;  (** sorted by actor name *)
  stall_channels : (string * int) list;  (** non-empty channels, sorted *)
  stall_steps : int;
}
(** Snapshot the stall watchdog takes when the network stops making
    useful progress: who is blocked where, and what every channel
    holds.  [`No_completion budget] means no process reached [Done]
    within [budget] scheduler steps (livelock suspects). *)

exception Stalled of stall

val stall_to_string : stall -> string
val stall_json : stall -> Umlfront_obs.Json.t

val run :
  ?fuel:int -> ?capacity:int -> ?watchdog:int ->
  ?ctx:Umlfront_obs.Context.t ->
  (string * float process) list -> outcome
(** [fuel] bounds total scheduler steps (default 100_000); exceeding it
    raises {!Out_of_fuel} (e.g. a livelocked network).  [capacity]
    bounds every channel: writes to a full channel block, restoring the
    classic bounded-buffer KPN semantics in which artificial deadlocks
    become possible (and are detected).

    [watchdog] arms the stall watchdog with a progress budget: if no
    process completes within that many scheduler steps — or the network
    deadlocks or runs out of fuel — {!Stalled} is raised instead of the
    bare exceptions, carrying a full blocked-actor and channel-occupancy
    snapshot.  Without [watchdog] the classic exceptions are unchanged.

    Deadlock victims are recorded in the {!Umlfront_obs.Journal}; when
    {!Umlfront_obs.Telemetry} is enabled every token push/pop is traced
    with its producing process and write index.

    @raise Deadlock when all unfinished processes block (on empty reads
    or, with [capacity], on full writes). *)

(** {1 Combinators} *)

val producer : out:string -> float list -> float process
(** Writes the samples in order, then finishes with the last value (0
    when empty). *)

val consumer : inp:string -> n:int -> float process
(** Reads [n] tokens, finishes with their sum. *)

val map1 : inp:string -> out:string -> n:int -> (float -> float) -> float process
val zip_with :
  in1:string -> in2:string -> out:string -> n:int -> (float -> float -> float) ->
  float process

val of_sdf_actor :
  Sdf.t ->
  Sdf.actor ->
  rounds:int ->
  sfunction:(string -> float array -> int -> float array) ->
  float process
(** Wrap an SDF actor as a KPN process: each round it reads one token
    per incoming edge (channel name = ["src/port->dst/port"]), applies
    the block behaviour, writes one token per outgoing edge.  UnitDelay
    actors pre-write their initial condition, so cyclic CAAMs run. *)

val channel_name : Sdf.edge -> string

val of_sdf :
  ?sfunction:(string -> float array -> int -> float array) ->
  rounds:int ->
  Sdf.t ->
  (string * float process) list
(** The whole flattened model as a process network (top-level Inports
    produce a deterministic stimulus, Outports consume). *)
