(* Chase–Lev work-stealing deque (SPAA'05), fixed capacity, int items.

   [bottom] is owned by the single pushing/popping domain; [top] is
   shared with thieves.  The classic last-element race (owner popping
   the same item a thief is stealing) is resolved by a compare-and-set
   on [top] from both sides.  The buffer slots are atomics too: a slot
   written by [push] is published by the subsequent [Atomic.set] on
   [bottom], and making the slot itself atomic keeps every cross-domain
   access data-race-free under the OCaml memory model without leaning
   on array-element publication subtleties. *)

type t = {
  buf : int Atomic.t array;
  mask : int;
  top : int Atomic.t; (* next steal index *)
  bottom : int Atomic.t; (* next push index *)
}

exception Full

let create ~capacity =
  if capacity < 1 then invalid_arg "Wsdeque.create: capacity < 1";
  let rec pow2 k = if k >= capacity then k else pow2 (k * 2) in
  let size = pow2 1 in
  {
    buf = Array.init size (fun _ -> Atomic.make 0);
    mask = size - 1;
    top = Atomic.make 0;
    bottom = Atomic.make 0;
  }

let capacity t = t.mask + 1

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

let reset t =
  Atomic.set t.top 0;
  Atomic.set t.bottom 0

let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  if b - tp > t.mask then raise Full;
  Atomic.set t.buf.(b land t.mask) v;
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then (
    (* already empty: undo *)
    Atomic.set t.bottom tp;
    None)
  else if b > tp then Some (Atomic.get t.buf.(b land t.mask))
  else
    (* last element: race the thieves for it *)
    let v = Atomic.get t.buf.(b land t.mask) in
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    Atomic.set t.bottom (tp + 1);
    if won then Some v else None

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else
    let v = Atomic.get t.buf.(tp land t.mask) in
    if Atomic.compare_and_set t.top tp (tp + 1) then Some v else None
