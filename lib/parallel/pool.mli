(** A fixed-size domain pool for embarrassingly parallel sweeps.

    The pool is hand-rolled on [Domain], [Mutex] and [Condition] — no
    dependencies beyond the OCaml 5 standard library.  [create
    ~domains:n] spawns [n - 1] worker domains; the calling domain is
    the [n]-th worker and helps drain the task queue during {!map} and
    {!parallel_for}, so a pool of size [n] really computes on [n]
    domains.

    Determinism: {!map} returns results in input order, whatever order
    tasks actually complete in, and an exception raised by [f] is
    re-raised (with its backtrace) for the {e earliest} failing input —
    exactly what sequential [List.map] would have raised.  A pool with
    [domains <= 1] never spawns and runs everything sequentially in the
    caller, so [map pool f] is always observationally equivalent to
    [List.map f].

    Pools are not reentrant: calling {!map} from inside a task of the
    same pool would deadlock, so such calls (detected by domain id)
    degrade to sequential execution instead.

    The pool reports into the {!Umlfront_obs.Metrics} registry:
    [pool.domains] (gauge), [pool.maps] / [pool.tasks] (counters) and
    [pool.tasks.d<i>] (tasks executed by domain [i]), which is how pool
    occupancy shows up in [umlfront stats].

    Telemetry contexts: during a batch each participating domain
    records into a forked child of the submitter's current
    {!Umlfront_obs.Context}, and the children are merged back
    (commutatively, hence deterministically) when the batch completes.
    Worker spans are rooted under the span open at submission, so
    parallel runs export one coherent trace tree. *)

type t

val cpu_count : unit -> int
(** [Domain.recommended_domain_count ()] — what the hardware allows. *)

val create : ?domains:int -> unit -> t
(** Spawn a pool of [domains] total domains (default {!cpu_count}).
    [domains <= 1] creates a sequential pool with no worker domains. *)

val size : t -> int
(** Total domains the pool computes on (1 for a sequential pool). *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  Using the pool afterwards
    falls back to sequential execution. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)

val submit : t -> (unit -> unit) -> bool
(** Fire-and-forget: enqueue one task for the worker domains and return
    immediately — no completion barrier, no telemetry forking; the task
    owns its own synchronization and context.  Returns [false] (task
    not enqueued, caller should run it inline) when the pool has no
    workers or was shut down.  This is what lets a long-lived server
    ([umlfront serve]) use the pool as a request executor while {!map}
    keeps its batch semantics. *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  [chunk] (default 1) batches that
    many consecutive elements per task to amortize queue traffic on
    cheap [f]; any [chunk >= 1] yields the same result. *)

val map_array : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array

val parallel_for : ?chunk:int -> t -> int -> (int -> unit) -> unit
(** [parallel_for pool n f] runs [f 0 .. f (n-1)], in parallel across
    the pool.  Returns when all iterations have completed. *)
