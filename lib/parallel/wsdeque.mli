(** A fixed-capacity Chase–Lev work-stealing deque of [int] items.

    One domain — the {e owner} — pushes and pops at the bottom in LIFO
    order; any other domain may {!steal} from the top concurrently.
    This is the ready-queue primitive behind the compiled SDF
    executor's work-stealing scheduler: items are dense node ids, so
    the buffer is a preallocated array of atomics and the deque never
    allocates after {!create}.

    The capacity is fixed at creation (rounded up to a power of two);
    {!push} raises [Full] beyond it instead of growing.  Callers that
    can bound their total pushes (a static schedule can) never hit it. *)

type t

exception Full

val create : capacity:int -> t
(** A deque holding at most [capacity] items (rounded up to a power of
    two).  @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int

val push : t -> int -> unit
(** Owner only.  @raise Full at capacity. *)

val pop : t -> int option
(** Owner only: newest item, or [None] when empty. *)

val steal : t -> int option
(** Any domain: oldest item.  [None] means empty {e or} the steal lost
    a race — callers treat both as "try elsewhere / again". *)

val reset : t -> unit
(** Empty the deque.  Only safe when no other domain is accessing it
    (e.g. between synchronization points of a batched schedule). *)

val size : t -> int
(** Snapshot of the current item count (racy under concurrency;
    exact when quiescent). *)
