(* Fixed-size domain pool.  One shared FIFO of closures, [size - 1]
   spawned worker domains plus the owner domain helping during a batch;
   a mutex + two condition variables (task available / batch done) are
   the whole synchronization story.

   Results land in a per-batch array slot owned by exactly one task, and
   the owner only reads them after observing the batch counter hit zero
   under the mutex — so every slot write happens-before its read and the
   scheme is data-race free under the OCaml memory model. *)

module Obs = Umlfront_obs

type t = {
  requested : int; (* total domains asked for, incl. the owner *)
  owner : int; (* domain id of the creating domain *)
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  task_ready : Condition.t;
  batch_done : Condition.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let cpu_count () = Domain.recommended_domain_count ()

let domain_id () = (Domain.self () :> int)

let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.task_ready t.lock
  done;
  match Queue.take_opt t.queue with
  | None ->
      (* stop requested and the queue is drained *)
      Mutex.unlock t.lock
  | Some task ->
      Mutex.unlock t.lock;
      task ();
      worker_loop t

let create ?domains () =
  let requested = match domains with Some n -> n | None -> cpu_count () in
  let t =
    {
      requested;
      owner = domain_id ();
      queue = Queue.create ();
      lock = Mutex.create ();
      task_ready = Condition.create ();
      batch_done = Condition.create ();
      stop = false;
      workers = [];
    }
  in
  if requested > 1 then
    t.workers <- List.init (requested - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  Obs.Metrics.set_gauge "pool.domains" (float_of_int (max 1 requested));
  t

let size t = if t.workers = [] then 1 else t.requested

let shutdown t =
  let workers = t.workers in
  if workers <> [] then begin
    Mutex.lock t.lock;
    t.stop <- true;
    t.workers <- [];
    Condition.broadcast t.task_ready;
    Mutex.unlock t.lock;
    List.iter Domain.join workers
  end

(* Fire-and-forget: hand one closure to the workers and return.  The
   task must do its own synchronization/telemetry — unlike {!run_batch}
   there is no completion barrier and no context forking here.  With no
   workers (sequential pool, or already shut down) the task is NOT run:
   the caller finds out via [false] and runs it inline, which keeps the
   no-worker pool observationally sequential. *)
let submit t task =
  if t.workers = [] then false
  else begin
    Mutex.lock t.lock;
    let accepted = not t.stop in
    if accepted then begin
      Queue.add task t.queue;
      Condition.signal t.task_ready
    end;
    Mutex.unlock t.lock;
    accepted
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* The parallel core: run [n] indexed tasks across the pool, the owner
   helping, and return after all have finished.  [run_task i] must
   confine its effects to state owned by index [i].

   Telemetry: each participating domain gets a lazily-forked child of
   the submitter's current context, so workers record spans and
   counters without contending on (or interleaving into) the parent's
   sinks.  When the batch completes, the children are merged back —
   Context.merge is commutative, so the result is deterministic no
   matter which domains picked up which tasks.  Child spans are rooted
   under the span that was open at submission, giving `-j` runs one
   coherent trace tree. *)
let run_batch t n run_task =
  let parent_ctx = Obs.Context.current () in
  let root_parent = Obs.Trace.innermost () in
  let children : (int, Obs.Context.t) Hashtbl.t = Hashtbl.create 8 in
  let children_lock = Mutex.create () in
  let child_for_domain () =
    let d = domain_id () in
    Mutex.lock children_lock;
    let ctx =
      match Hashtbl.find_opt children d with
      | Some c -> c
      | None ->
          let c = Obs.Context.fork ~root_parent parent_ctx in
          Hashtbl.add children d c;
          c
    in
    Mutex.unlock children_lock;
    ctx
  in
  let remaining = ref n in (* guarded by t.lock *)
  let task i () =
    Obs.Context.with_current (child_for_domain ()) (fun () ->
        run_task i;
        Obs.Metrics.incr "pool.tasks";
        Obs.Metrics.incr (Printf.sprintf "pool.tasks.d%d" (domain_id ())));
    Mutex.lock t.lock;
    decr remaining;
    if !remaining = 0 then Condition.broadcast t.batch_done;
    Mutex.unlock t.lock
  in
  Mutex.lock t.lock;
  for i = 0 to n - 1 do
    Queue.add (task i) t.queue
  done;
  Condition.broadcast t.task_ready;
  Mutex.unlock t.lock;
  (* Owner helps drain the queue, then waits out in-flight tasks. *)
  let rec help () =
    Mutex.lock t.lock;
    match Queue.take_opt t.queue with
    | Some task ->
        Mutex.unlock t.lock;
        task ();
        help ()
    | None ->
        while !remaining > 0 do
          Condition.wait t.batch_done t.lock
        done;
        Mutex.unlock t.lock
  in
  help ();
  (* All tasks are done and their writes are visible (the remaining
     counter was observed under the mutex), so the children table is
     quiescent: fold the per-domain contexts back into the parent. *)
  let kids = Hashtbl.fold (fun d c acc -> (d, c) :: acc) children [] in
  let kids = List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) kids) in
  if kids <> [] then Obs.Context.merge ~into:parent_ctx kids

(* A batch is sequential when the pool has no workers (size <= 1 or
   already shut down) or when called from inside one of this pool's own
   tasks (owner check) — reentrant use would deadlock on the queue. *)
let sequential t = t.workers = [] || domain_id () <> t.owner

let chunk_bounds ~chunk n =
  let chunk = max 1 chunk in
  let chunks = (n + chunk - 1) / chunk in
  (chunk, chunks)

let map_array ?(chunk = 1) t f arr =
  let n = Array.length arr in
  if sequential t || n <= 1 then Array.map f arr
  else begin
    Obs.Metrics.incr "pool.maps";
    let results = Array.make n None in
    let chunk, chunks = chunk_bounds ~chunk n in
    run_batch t chunks (fun c ->
        let lo = c * chunk and hi = min n ((c + 1) * chunk) in
        for i = lo to hi - 1 do
          results.(i) <-
            Some
              (match f arr.(i) with
              | v -> Ok v
              | exception e -> Error (e, Printexc.get_raw_backtrace ()))
        done);
    (* Re-raise the earliest failure, as sequential Array.map would. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    Array.map
      (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
      results
  end

let map ?chunk t f xs = Array.to_list (map_array ?chunk t f (Array.of_list xs))

let parallel_for ?(chunk = 1) t n f =
  if n <= 0 then ()
  else if sequential t || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    Obs.Metrics.incr "pool.maps";
    let chunk, chunks = chunk_bounds ~chunk n in
    let failure = Atomic.make None in
    run_batch t chunks (fun c ->
        let lo = c * chunk and hi = min n ((c + 1) * chunk) in
        for i = lo to hi - 1 do
          match f i with
          | () -> ()
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              (* keep the earliest-index failure *)
              let rec put () =
                let cur = Atomic.get failure in
                let keep = match cur with Some (j, _, _) -> j < i | None -> false in
                if not keep then
                  if not (Atomic.compare_and_set failure cur (Some (i, e, bt))) then put ()
              in
              put ()
        done);
    match Atomic.get failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end
