(** Human-readable reports about a flow run: the numbers the paper's
    figures show (generated-model structure, clustering result, channel
    protocols), printed as aligned tables. *)

val model_summary : Umlfront_simulink.Model.t -> string
(** Block/line/subsystem counts and CAAM role inventory. *)

val flow_summary : Flow.output -> string
(** Allocation, channel, barrier and FSM statistics for a run. *)

val clustering_table :
  Umlfront_taskgraph.Graph.t -> Umlfront_taskgraph.Clustering.t -> string
(** Per-cluster membership and load plus the quality metrics
    (inter-cluster volume, parallel time, critical-path locality). *)

val metrics_table : ?snapshot:Umlfront_obs.Metrics.stat list -> unit -> string
(** The observability metrics registry (default: the process-global
    one) rendered as an aligned table, one row per metric. *)

val caam_tree : Umlfront_simulink.Model.t -> string
(** Indented CPU-SS / Thread-SS / channel hierarchy, the shape Fig. 8
    shows. *)
