(** The end-to-end design flow of Fig. 1/Fig. 2: UML model in,
    synthesizable Simulink CAAM (plus [.mdl] text, FSMs for the
    control-flow subsystems, and multithreaded code) out.

    Pipeline: validate → allocate threads (deployment diagram or the
    §4.2.3 optimization) → map (§4.1) → infer channels (§4.2.1) →
    insert temporal barriers (§4.2.2) → emit. *)

type allocation_strategy =
  | Use_deployment  (** require the deployment diagram *)
  | Prefer_deployment  (** use it when present, else infer *)
  | Infer_linear  (** ignore the diagram, one CPU per linear cluster *)
  | Infer_bounded of int

val strategy_name : allocation_strategy -> string
(** Stable spelling: ["deployment"], ["prefer-deployment"], ["linear"],
    ["bounded-N"] — the CLI's [--strategy] vocabulary (plus the [--cpus]
    bound), reused by the serving layer's query parameters. *)

val cache_material :
  ?style:Mapping.style ->
  ?strategy:allocation_strategy ->
  Umlfront_uml.Model.t ->
  string
(** The pure cache identity of a {!run}: canonical XMI bytes of the
    model prefixed with every option that steers the phases.  Equal
    material guarantees an equal flow output (the pipeline is
    deterministic), which is what lets [umlfront serve] key its
    content-hash response cache on a SHA-256 of this string plus the
    endpoint and its remaining options. *)

type output = {
  caam : Umlfront_simulink.Model.t;  (** after all optimization passes *)
  mdl : string;  (** the generated .mdl text *)
  allocation : (string * string) list;
  trace : Umlfront_metamodel.Trace.t;
  intra_channels : int;
  inter_channels : int;
  delays_inserted : int;
  broken_cycles : string list list;
  fsms : (string * Uml2fsm.generated) list;
}

val run :
  ?style:Mapping.style ->
  ?strategy:allocation_strategy ->
  ?gate:[ `Errors | `Warnings ] ->
  ?ctx:Umlfront_obs.Context.t ->
  Umlfront_uml.Model.t ->
  output
(** [gate] adds a lint phase after synthesis: the UML source and the
    generated CAAM are run through {!Umlfront_analysis.Lint.check},
    every finding is emitted as a structured event, and findings the
    policy denies ([`Errors], or also warnings with [`Warnings]) fail
    the run.  Default: no gate.

    [ctx] runs the flow inside an explicit telemetry context: all
    spans, metrics, journal entries and tokens land in [ctx] instead of
    the process-global sinks, so concurrent runs with distinct contexts
    observe fully disjoint telemetry.  Default: the current context.

    @raise Invalid_argument on a malformed model, [Use_deployment]
    without a deployment diagram, or a denied lint finding. *)

val ecore_xml : output -> string
(** The intermediate model-to-model artifact of Fig. 2: the generated
    CAAM serialized against the Simulink meta-model in E-core style XML
    (what the paper's step 2 hands to steps 3-4). *)

val c_code : ?rounds:int -> output -> Umlfront_codegen.Gen_threads.generated
val java_code : ?rounds:int -> ?class_name:string -> output -> string
