let log = Logs.Src.create "umlfront.flow" ~doc:"UML front-end design flow"

module Log = (val Logs.src_log log : Logs.LOG)
module Obs = Umlfront_obs

type allocation_strategy =
  | Use_deployment
  | Prefer_deployment
  | Infer_linear
  | Infer_bounded of int

let strategy_name = function
  | Use_deployment -> "deployment"
  | Prefer_deployment -> "prefer-deployment"
  | Infer_linear -> "linear"
  | Infer_bounded n -> Printf.sprintf "bounded-%d" n

(* The pure cache identity of a flow run: the canonical XMI bytes of
   the (parsed, re-serialized) model plus every input that steers the
   phases.  Two texts that parse to the same model — different
   whitespace, attribute order the writer normalizes — share material,
   so a serving cache keyed on (a hash of) this string deduplicates
   them; any model edit or option change produces different bytes.
   Purely a function of its arguments: no telemetry, no globals. *)
let cache_material ?(style = Mapping.Caam) ?(strategy = Prefer_deployment) uml =
  Printf.sprintf "style=%s\nstrategy=%s\n%s"
    (match style with Mapping.Caam -> "caam" | Mapping.Flat -> "flat")
    (strategy_name strategy)
    (Umlfront_uml.Xmi.to_string uml)

type output = {
  caam : Umlfront_simulink.Model.t;
  mdl : string;
  allocation : (string * string) list;
  trace : Umlfront_metamodel.Trace.t;
  intra_channels : int;
  inter_channels : int;
  delays_inserted : int;
  broken_cycles : string list list;
  fsms : (string * Uml2fsm.generated) list;
}

let choose_allocation strategy uml =
  match strategy with
  | Use_deployment -> (
      match Allocation.from_deployment uml with
      | Some a -> a
      | None -> invalid_arg "flow: no deployment diagram in the model")
  | Prefer_deployment -> (
      match Allocation.from_deployment uml with
      | Some a -> a
      | None -> Allocation.infer uml)
  | Infer_linear -> Allocation.infer uml
  | Infer_bounded n -> Allocation.infer ~strategy:(Allocation.Bounded n) uml

(* Each phase of §4.1–4.2.3 runs under its own span so a profile of a
   large model shows where the time goes; the span args are thunks and
   cost nothing when the sink is off.  Phase starts also land in the
   always-on run journal, so `umlfront journal` can replay the phase
   sequence of a run that never enabled profiling. *)
let phase name ?args f =
  Obs.Journal.record ("flow." ^ name);
  Obs.Trace.with_span ~cat:"flow" ("flow." ^ name) ?args f

(* The optional gate phase: lint the source and the synthesized CAAM,
   surface every finding as a structured event, fail the run on what
   the policy denies.  Kept after layout so the linted model is exactly
   the one the emitters see. *)
let lint_gate policy uml caam =
  let module A = Umlfront_analysis in
  let diagnostics = phase "lint" (fun () -> A.Lint.check ~uml caam) in
  List.iter
    (fun (d : A.Diagnostic.t) ->
      Obs.Events.emit
        ~level:
          (match d.A.Diagnostic.severity with
          | A.Diagnostic.Error -> Logs.Error
          | A.Diagnostic.Warning | A.Diagnostic.Info -> Logs.Warning)
        ~src:log
        ~fields:
          [
            ("code", Umlfront_obs.Json.String d.A.Diagnostic.code);
            ("path", Umlfront_obs.Json.String (A.Diagnostic.path_to_string d));
            ("message", Umlfront_obs.Json.String d.A.Diagnostic.message);
          ]
        "flow.lint.diagnostic")
    diagnostics;
  match A.Lint.deny policy diagnostics with
  | [] -> ()
  | denied ->
      invalid_arg
        (Printf.sprintf "flow: lint gate failed (%s): %s"
           (A.Diagnostic.summary diagnostics)
           (A.Diagnostic.to_line (List.hd denied)))

(* [?ctx] runs the whole flow inside an explicit telemetry context:
   spans, counters, journal entries and tokens all land in [ctx]
   instead of the process-global default, which is what makes
   concurrent flows observable in isolation.  Without it, the current
   (usually global) context is used — the historical behaviour. *)
let run ?(style = Mapping.Caam) ?(strategy = Prefer_deployment) ?gate ?ctx uml =
  (match ctx with Some c -> Obs.Context.with_current c | None -> fun f -> f ())
  @@ fun () ->
  if Obs.Trace.enabled () then
    Obs.Trace.set_process_name uml.Umlfront_uml.Model.model_name;
  phase "run"
    ~args:(fun () -> [ ("model", Umlfront_obs.Json.String uml.Umlfront_uml.Model.model_name) ])
  @@ fun () ->
  Log.info (fun m ->
      m "flow start: model %s, %d threads" uml.Umlfront_uml.Model.model_name
        (List.length (Umlfront_uml.Model.threads uml)));
  Obs.Metrics.incr "flow.runs";
  let issues = phase "validate" (fun () -> Umlfront_uml.Validate.check uml) in
  Obs.Metrics.incr "flow.validate.issues" ~by:(List.length issues);
  List.iter
    (fun (i : Umlfront_uml.Validate.issue) ->
      Obs.Events.emit ~level:Logs.Warning ~src:log
        ~fields:
          [
            ("where", Umlfront_obs.Json.String i.Umlfront_uml.Validate.where);
            ("what", Umlfront_obs.Json.String i.Umlfront_uml.Validate.what);
          ]
        "flow.validate.issue")
    issues;
  let allocation = phase "allocate" (fun () -> choose_allocation strategy uml) in
  Log.debug (fun m ->
      m "allocation: %s"
        (String.concat ", " (List.map (fun (t, c) -> t ^ "->" ^ c) allocation)));
  let mapped = phase "map" (fun () -> Mapping.run ~style ~allocation uml) in
  let channelized =
    phase "channels" @@ fun () ->
    match style with
    | Mapping.Caam -> Channel_inference.run mapped.Mapping.model
    | Mapping.Flat ->
        {
          Channel_inference.model = mapped.Mapping.model;
          intra_channels = 0;
          inter_channels = 0;
        }
  in
  Obs.Metrics.incr "flow.channels.intra" ~by:channelized.Channel_inference.intra_channels;
  Obs.Metrics.incr "flow.channels.inter" ~by:channelized.Channel_inference.inter_channels;
  Log.debug (fun m ->
      m "channels: %d intra, %d inter" channelized.Channel_inference.intra_channels
        channelized.Channel_inference.inter_channels);
  let barriered =
    phase "barriers" (fun () -> Loop_breaker.run channelized.Channel_inference.model)
  in
  Obs.Metrics.incr "flow.barriers.inserted" ~by:barriered.Loop_breaker.delays_inserted;
  if barriered.Loop_breaker.delays_inserted > 0 then
    Log.info (fun m ->
        m "inserted %d temporal barrier(s)" barriered.Loop_breaker.delays_inserted);
  let caam = phase "layout" (fun () -> Umlfront_simulink.Layout.run barriered.Loop_breaker.model) in
  Option.iter (fun policy -> lint_gate policy uml caam) gate;
  let mdl = phase "emit" (fun () -> Umlfront_simulink.Mdl_writer.to_string caam) in
  let fsms = phase "fsm" (fun () -> Uml2fsm.run uml) in
  let blocks = Umlfront_simulink.System.total_blocks caam.Umlfront_simulink.Model.root in
  Obs.Metrics.incr "flow.blocks" ~by:blocks;
  Log.info (fun m ->
      m "flow done: %d blocks, %d lines" blocks
        (Umlfront_simulink.System.total_lines caam.Umlfront_simulink.Model.root));
  {
    caam;
    mdl;
    allocation;
    trace = mapped.Mapping.trace;
    intra_channels = channelized.Channel_inference.intra_channels;
    inter_channels = channelized.Channel_inference.inter_channels;
    delays_inserted = barriered.Loop_breaker.delays_inserted;
    broken_cycles = barriered.Loop_breaker.broken_cycles;
    fsms;
  }

let ecore_xml output =
  Umlfront_metamodel.Ecore_io.to_string (Metamodels.simulink_to_mmodel output.caam)

let c_code ?rounds output = Umlfront_codegen.Gen_threads.generate ?rounds output.caam

let java_code ?rounds ?class_name output =
  Umlfront_codegen.Gen_java.generate ?rounds ?class_name output.caam
