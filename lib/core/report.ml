module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Model = Umlfront_simulink.Model
module Caam = Umlfront_simulink.Caam
module G = Umlfront_taskgraph.Graph
module Clustering = Umlfront_taskgraph.Clustering

let model_summary (m : Model.t) =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "model %s\n" m.Model.model_name;
  List.iter (fun (k, v) -> out "  %-12s %d\n" k v) (Model.stats m);
  let cpus = Caam.cpus m in
  if cpus <> [] then (
    out "  CAAM: %d CPU-SS\n" (List.length cpus);
    List.iter
      (fun cpu ->
        out "    %s: threads [%s]\n" cpu.S.blk_name
          (String.concat ", " (List.map (fun t -> t.S.blk_name) (Caam.threads_of_cpu cpu))))
      cpus);
  Buffer.contents buf

let flow_summary (o : Flow.output) =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "allocation:\n";
  List.iter (fun (th, cpu) -> out "  %-10s -> %s\n" th cpu) o.Flow.allocation;
  out "channels: %d intra-CPU (SWFIFO), %d inter-CPU (GFIFO)\n" o.Flow.intra_channels
    o.Flow.inter_channels;
  out "temporal barriers inserted: %d\n" o.Flow.delays_inserted;
  List.iter
    (fun cycle -> out "  broke cycle: %s\n" (String.concat " -> " cycle))
    o.Flow.broken_cycles;
  if o.Flow.fsms <> [] then
    out "FSMs generated: %s\n" (String.concat ", " (List.map fst o.Flow.fsms));
  out "%s" (model_summary o.Flow.caam);
  Buffer.contents buf

let clustering_table g clustering =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iteri
    (fun i group ->
      let load = List.fold_left (fun acc id -> acc +. G.node_weight g id) 0.0 group in
      out "  CPU%-3d load %6.1f  {%s}\n" i load (String.concat ", " group))
    (Clustering.groups clustering);
  out "  inter-cluster volume: %.1f\n" (Clustering.inter_cluster_volume g clustering);
  out "  parallel time: %.1f (sequential %.1f)\n"
    (Clustering.parallel_time g clustering)
    (Clustering.sequential_time g);
  out "  critical path on one CPU: %b\n" (Clustering.critical_path_cluster g clustering);
  Buffer.contents buf

(* Metrics snapshot from the observability registry, rendered the same
   way as the rest of the report family. *)
let metrics_table ?(snapshot = Umlfront_obs.Metrics.snapshot ()) () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "metrics:\n";
  if snapshot = [] then Buffer.add_string buf "  (no metrics recorded)\n"
  else Buffer.add_string buf (Umlfront_obs.Metrics.table snapshot);
  Buffer.contents buf

let caam_tree (m : Model.t) =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let describe (b : S.block) =
    match b.S.blk_type with
    | B.Channel ->
        Printf.sprintf "%s [channel %s]" b.S.blk_name
          (Option.value (Caam.protocol b) ~default:"?")
    | B.Unit_delay -> Printf.sprintf "%s [unit delay]" b.S.blk_name
    | B.S_function ->
        Printf.sprintf "%s [S-function %s]" b.S.blk_name
          (Option.value (S.param_string b "FunctionName") ~default:b.S.blk_name)
    | ty -> Printf.sprintf "%s [%s]" b.S.blk_name (B.to_string ty)
  in
  let rec walk indent sys =
    List.iter
      (fun (b : S.block) ->
        out "%s%s\n" indent (describe b);
        match b.S.blk_system with
        | Some inner -> walk (indent ^ "  ") inner
        | None -> ())
      (S.blocks sys)
  in
  out "%s\n" m.Model.model_name;
  walk "  " m.Model.root;
  Buffer.contents buf
