module U = Umlfront_uml
module Sdf = Umlfront_dataflow.Sdf
module Timing = Umlfront_dataflow.Timing
module Pool = Umlfront_parallel.Pool
module Obs = Umlfront_obs

type candidate = {
  cpus : int;
  allocation : (string * string) list;
  makespan : float;
  period : float;
  speedup : float;
  comm_cost : float;
  inter_tokens : int;
  intra_tokens : int;
  delays_inserted : int;
}

type result = {
  candidates : candidate list;
  best : candidate;
  pareto : candidate list;
}

let evaluate ?cost_model uml k =
  let out = Flow.run ~strategy:(Flow.Infer_bounded k) uml in
  let sdf = Sdf.of_model out.Flow.caam in
  let report = Timing.evaluate ?model:cost_model sdf in
  let distinct_cpus =
    out.Flow.allocation |> List.map snd |> List.sort_uniq compare |> List.length
  in
  {
    cpus = distinct_cpus;
    allocation = out.Flow.allocation;
    makespan = report.Timing.makespan;
    period = report.Timing.period;
    speedup = report.Timing.speedup;
    comm_cost = report.Timing.comm_cost;
    inter_tokens = report.Timing.inter_tokens;
    intra_tokens = report.Timing.intra_tokens;
    delays_inserted = out.Flow.delays_inserted;
  }

let explore ?max_cpus ?cost_model ?pool ?ctx uml =
  (match ctx with Some c -> Obs.Context.with_current c | None -> fun f -> f ())
  @@ fun () ->
  let n_threads = List.length (U.Model.threads uml) in
  if n_threads = 0 then invalid_arg "dse: model has no threads";
  let limit = Option.value max_cpus ~default:n_threads in
  let limit = max 1 (min limit n_threads) in
  (* Each candidate platform runs the whole synthesis + timing pipeline
     independently, so the sweep maps across the domain pool when one
     is supplied.  [evaluate] is deterministic and touches no shared
     state beyond the (mutex-guarded) obs sink, so the parallel sweep
     is bit-identical to the sequential one. *)
  let sweep f ks =
    match pool with
    | Some p when Pool.size p > 1 ->
        Obs.Metrics.incr "dse.parallel_sweeps";
        Pool.map p f ks
    | Some _ | None -> List.map f ks
  in
  (* Bounding to k CPUs can yield fewer distinct clusters; keep one
     candidate per distinct platform size. *)
  let candidates =
    sweep (fun k -> evaluate ?cost_model uml k) (List.init limit (fun i -> i + 1))
    |> List.sort_uniq (fun a b -> compare a.cpus b.cpus)
  in
  Obs.Metrics.incr "dse.candidates" ~by:(List.length candidates);
  let best =
    List.fold_left
      (fun acc c ->
        if c.makespan < acc.makespan -. 1e-9 then c
        else if Float.abs (c.makespan -. acc.makespan) < 1e-9 && c.cpus < acc.cpus then c
        else acc)
      (List.hd candidates) candidates
  in
  let dominated c =
    List.exists
      (fun other ->
        other != c
        && other.cpus <= c.cpus
        && other.makespan <= c.makespan +. 1e-9
        && (other.cpus < c.cpus || other.makespan < c.makespan -. 1e-9))
      candidates
  in
  let pareto = List.filter (fun c -> not (dominated c)) candidates in
  { candidates; best; pareto }

let summary r =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "  %-5s %-10s %-8s %-9s %-10s %-7s %-7s %s\n" "cpus" "makespan" "period" "speedup"
    "comm-cost" "inter" "intra" "";
  List.iter
    (fun c ->
      out "  %-5d %-10.2f %-8.2f %-9.2f %-10.2f %-7d %-7d %s%s\n" c.cpus c.makespan
        c.period c.speedup c.comm_cost c.inter_tokens c.intra_tokens
        (if List.memq c r.pareto then "pareto" else "")
        (if c == r.best then " <- best" else ""))
    r.candidates;
  Buffer.contents buf
