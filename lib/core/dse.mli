(** Design-space exploration — the estimation step the paper's future
    work calls for (§6): sweep the number of processors, run the whole
    synthesis flow for each candidate platform, estimate performance
    with the MPSoC timing model, and report the Pareto frontier of
    (CPU count, makespan), so the designer no longer has to fix the
    deployment by hand. *)

type candidate = {
  cpus : int;
  allocation : (string * string) list;
  makespan : float;  (** per-iteration latency *)
  period : float;  (** steady-state throughput bound *)
  speedup : float;
  comm_cost : float;
  inter_tokens : int;
  intra_tokens : int;
  delays_inserted : int;
}

type result = {
  candidates : candidate list;  (** one per CPU count, ascending *)
  best : candidate;  (** minimal makespan, ties broken by fewer CPUs *)
  pareto : candidate list;
      (** candidates not dominated in (cpus, makespan), ascending CPU count *)
}

val explore :
  ?max_cpus:int ->
  ?cost_model:Umlfront_dataflow.Timing.cost_model ->
  ?pool:Umlfront_parallel.Pool.t ->
  ?ctx:Umlfront_obs.Context.t ->
  Umlfront_uml.Model.t ->
  result
(** [max_cpus] defaults to the thread count (the finest platform linear
    clustering can use).  When [pool] is a real (size > 1) domain pool,
    the per-platform synthesis + timing evaluations run concurrently
    across it; the result is bit-identical to the sequential sweep.
    @raise Invalid_argument on a model without threads. *)

val summary : result -> string
(** A printable sweep table. *)
