(** A small line-based script format for co-simulation glue, so the
    CLI can run [umlfront cosim model.xml --script glue.cosim]:

    {v
    # comment
    fsm elevator_mode            # statechart to drive (default: all, composed)
    rounds 30                    # default round count
    init call = 1
    watch call_above when call > 0
    watch arrived when Height > 8
    on motor_on set powered = 1
    update Height = Height + 0.6 * powered
    v} *)

type t = {
  chart : string option;
  rounds : int option;
  watchers : Cosim.watcher list;
  setters : Cosim.setter list;
  updates : Cosim.update list;
  initial_store : (string * float) list;
}

val parse : string -> (t, string) result
(** The error names the offending line. *)

val parse_exn : string -> t
val load : string -> t

val print : t -> string
(** Scripts back as script text: [parse (print t)] yields a script
    equal to [t] up to float formatting (property-tested).  Directive
    order is normalized ([fsm], [rounds], [init]s, [watch]es, [on]s,
    [update]s); guard expressions print via
    {!Umlfront_fsm.Guard_expr.to_string}. *)

val configure : Umlfront_fsm.Fsm.t -> t -> Cosim.config
