type t = {
  chart : string option;
  rounds : int option;
  watchers : Cosim.watcher list;
  setters : Cosim.setter list;
  updates : Cosim.update list;
  initial_store : (string * float) list;
}

let empty =
  { chart = None; rounds = None; watchers = []; setters = []; updates = []; initial_store = [] }

let strip s = String.trim s

let split_first_space s =
  match String.index_opt s ' ' with
  | Some i ->
      (String.sub s 0 i, strip (String.sub s (i + 1) (String.length s - i - 1)))
  | None -> (s, "")

(* "lhs <keyword> rhs" for a known keyword surrounded by spaces. *)
let split_keyword keyword s =
  let pat = " " ^ keyword ^ " " in
  let n = String.length pat in
  let rec at i =
    if i + n > String.length s then None
    else if String.sub s i n = pat then
      Some (strip (String.sub s 0 i), strip (String.sub s (i + n) (String.length s - i - n)))
    else at (i + 1)
  in
  at 0

let parse_line acc line_number line =
  let fail what = Error (Printf.sprintf "line %d: %s" line_number what) in
  let line = match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = strip line in
  if line = "" then Ok acc
  else
    let keyword, rest = split_first_space line in
    match keyword with
    | "fsm" -> if rest = "" then fail "fsm needs a chart name" else Ok { acc with chart = Some rest }
    | "rounds" -> (
        match int_of_string_opt rest with
        | Some n when n > 0 -> Ok { acc with rounds = Some n }
        | Some _ | None -> fail "rounds needs a positive integer")
    | "init" -> (
        match split_keyword "=" rest with
        | Some (var, value) -> (
            match float_of_string_opt value with
            | Some v -> Ok { acc with initial_store = acc.initial_store @ [ (var, v) ] }
            | None -> fail "init needs a number")
        | None -> fail "init syntax: init <var> = <number>")
    | "watch" -> (
        match split_keyword "when" rest with
        | Some (event, expr) -> (
            match Umlfront_fsm.Guard_expr.parse expr with
            | Ok e ->
                Ok
                  {
                    acc with
                    watchers =
                      acc.watchers @ [ { Cosim.watch_event = event; watch_when = e } ];
                  }
            | Error msg -> fail msg)
        | None -> fail "watch syntax: watch <event> when <expr>")
    | "on" -> (
        match split_keyword "set" rest with
        | Some (action, assignment) -> (
            match split_keyword "=" assignment with
            | Some (var, expr) -> (
                match Umlfront_fsm.Guard_expr.parse expr with
                | Ok e ->
                    Ok
                      {
                        acc with
                        setters =
                          acc.setters
                          @ [ { Cosim.set_action = action; set_var = var; set_to = e } ];
                      }
                | Error msg -> fail msg)
            | None -> fail "on syntax: on <action> set <var> = <expr>")
        | None -> fail "on syntax: on <action> set <var> = <expr>")
    | "update" -> (
        match split_keyword "=" rest with
        | Some (var, expr) -> (
            match Umlfront_fsm.Guard_expr.parse expr with
            | Ok e ->
                Ok
                  {
                    acc with
                    updates = acc.updates @ [ { Cosim.update_var = var; update_to = e } ];
                  }
            | Error msg -> fail msg)
        | None -> fail "update syntax: update <var> = <expr>")
    | other -> fail (Printf.sprintf "unknown directive %S" other)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc n = function
    | [] -> Ok acc
    | line :: rest -> (
        match parse_line acc n line with
        | Ok acc -> go acc (n + 1) rest
        | Error _ as e -> e)
  in
  go empty 1 lines

let parse_exn text =
  match parse text with Ok t -> t | Error msg -> invalid_arg ("cosim script: " ^ msg)

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse_exn content

let print t =
  let module G = Umlfront_fsm.Guard_expr in
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  Option.iter (fun c -> line "fsm %s" c) t.chart;
  Option.iter (fun n -> line "rounds %d" n) t.rounds;
  List.iter (fun (var, v) -> line "init %s = %.12g" var v) t.initial_store;
  List.iter
    (fun (w : Cosim.watcher) ->
      line "watch %s when %s" w.Cosim.watch_event (G.to_string w.Cosim.watch_when))
    t.watchers;
  List.iter
    (fun (s : Cosim.setter) ->
      line "on %s set %s = %s" s.Cosim.set_action s.Cosim.set_var
        (G.to_string s.Cosim.set_to))
    t.setters;
  List.iter
    (fun (u : Cosim.update) ->
      line "update %s = %s" u.Cosim.update_var (G.to_string u.Cosim.update_to))
    t.updates;
  Buffer.contents b

let configure controller t =
  {
    Cosim.controller;
    watchers = t.watchers;
    setters = t.setters;
    updates = t.updates;
    initial_store = t.initial_store;
  }
