module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module B = Umlfront_simulink.Block
module D = Diagnostic

type rates = Sdf.edge -> int * int

let single_rate : rates = fun _ -> (1, 1)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Solve q_src * produced = q_dst * consumed over each weakly-connected
   component by propagating exact rationals from an arbitrary root.  A
   propagated value that disagrees with an already-assigned one is an
   inconsistent balance equation: the graph has no repetition vector
   and cannot execute periodically in bounded memory. *)
let repetition_vector ?(rates = single_rate) (g : Sdf.t) =
  let q : (string, int * int) Hashtbl.t = Hashtbl.create 64 in
  let adjacency = Hashtbl.create 64 in
  let add_adj a e = Hashtbl.replace adjacency a (e :: (Option.value ~default:[] (Hashtbl.find_opt adjacency a))) in
  List.iter
    (fun (e : Sdf.edge) ->
      add_adj e.edge_src e;
      add_adj e.edge_dst e)
    g.Sdf.edges;
  let conflicts = ref [] in
  let norm (n, d) =
    let f = gcd n d in
    if f = 0 then (0, 1) else (n / f, d / f)
  in
  let visit_component root =
    Hashtbl.replace q root (1, 1);
    let queue = Queue.create () in
    Queue.add root queue;
    while not (Queue.is_empty queue) do
      let a = Queue.pop queue in
      let na, da = Hashtbl.find q a in
      List.iter
        (fun (e : Sdf.edge) ->
          let produced, consumed = rates e in
          (* Solve for the far endpoint's rate as seen from [a]. *)
          let other, expected =
            if String.equal e.edge_src a then
              (e.edge_dst, norm (na * produced, da * consumed))
            else (e.edge_src, norm (na * consumed, da * produced))
          in
          match Hashtbl.find_opt q other with
          | None ->
              Hashtbl.replace q other expected;
              Queue.add other queue
          | Some assigned ->
              if assigned <> expected then
                conflicts :=
                  D.error ~code:"UF201"
                    ~path:[ "sdf"; Printf.sprintf "%s->%s" e.edge_src e.edge_dst ]
                    (Printf.sprintf
                       "balance equations are inconsistent at edge %s -> %s (rates \
                        %d/%d): no repetition vector exists"
                       e.edge_src e.edge_dst produced consumed)
                    ~hint:"fix the production/consumption rates so every undirected \
                           cycle balances"
                  :: !conflicts)
        (Option.value ~default:[] (Hashtbl.find_opt adjacency a))
    done
  in
  List.iter
    (fun (a : Sdf.actor) ->
      if not (Hashtbl.mem q a.actor_name) then visit_component a.actor_name)
    g.Sdf.actors;
  (* The BFS examines every edge from both endpoints, so a conflict is
     detected twice; report it once. *)
  match List.sort_uniq Stdlib.compare !conflicts with
  | _ :: _ as cs -> Error cs
  | [] ->
      (* Scale the rationals to the smallest integer vector. *)
      let denominators =
        List.map (fun (a : Sdf.actor) -> snd (Hashtbl.find q a.actor_name)) g.Sdf.actors
      in
      let lcm x y = if x = 0 || y = 0 then 0 else x * y / gcd x y in
      let scale = List.fold_left lcm 1 denominators in
      let counts =
        List.map
          (fun (a : Sdf.actor) ->
            let n, d = Hashtbl.find q a.actor_name in
            (a.actor_name, n * (scale / d)))
          g.Sdf.actors
      in
      let shrink =
        List.fold_left (fun acc (_, n) -> gcd acc n) 0 counts
      in
      Ok
        (if shrink > 1 then List.map (fun (a, n) -> (a, n / shrink)) counts
         else counts)

let deadlock (g : Sdf.t) =
  match Exec.firing_order g with
  | (_ : string list) -> []
  | exception Exec.Deadlock cycle ->
      [
        D.error ~code:"UF202"
          ~path:[ "sdf"; String.concat "->" cycle ]
          (Printf.sprintf "zero-delay dependency cycle: %s" (String.concat " -> " cycle))
          ~hint:"insert a UnitDelay temporal barrier (§4.2.2) on one link of the cycle";
      ]

(* A channel needs one slot for the in-round hand-off; when the
   producer fires at or after the consumer's dependency level (a
   feedback link closed by a UnitDelay) the token rests across the
   round boundary while the next one is produced, so budget two. *)
let buffer_bounds (g : Sdf.t) =
  match Exec.levels g with
  | exception Exec.Deadlock _ -> []
  | levels ->
      let level_of = Hashtbl.create 64 in
      List.iteri
        (fun i names -> List.iter (fun n -> Hashtbl.replace level_of n i) names)
        levels;
      let is_delay name =
        match Sdf.find_actor g name with
        | Some a -> a.Sdf.actor_block.Umlfront_simulink.System.blk_type = B.Unit_delay
        | None -> false
      in
      List.concat_map
        (fun (e : Sdf.edge) ->
          let bound =
            let back =
              match (Hashtbl.find_opt level_of e.edge_src, Hashtbl.find_opt level_of e.edge_dst) with
              | Some ls, Some ld -> ls >= ld
              | _ -> false
            in
            if back || is_delay e.edge_src then 2 else 1
          in
          List.map (fun (channel, _protocol) -> (channel, bound)) e.edge_channels)
        g.Sdf.edges

let check ?rates (g : Sdf.t) =
  let rank = match repetition_vector ?rates g with Ok _ -> [] | Error ds -> ds in
  rank @ deadlock g
