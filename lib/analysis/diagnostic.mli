(** Unified diagnostics for the static model-analysis passes.

    Every finding carries a stable rule code (["UF104"]), a severity, a
    slash-joinable location path and a human message, optionally with a
    fix hint.  Codes are part of the tool's contract: scripts grep for
    them and the metrics registry counts per-code occurrences, so codes
    are never renumbered (see [doc/analysis.md] for the catalog). *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;  (** stable rule code, e.g. ["UF104"] *)
  path : string list;  (** location, outermost element first *)
  message : string;
  hint : string option;  (** how to fix it, when the rule knows *)
}

val make : ?hint:string -> severity -> code:string -> path:string list -> string -> t
val error : ?hint:string -> code:string -> path:string list -> string -> t
val warning : ?hint:string -> code:string -> path:string list -> string -> t

val severity_to_string : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val compare : t -> t -> int
(** Order by code, then path, then message — the stable report order. *)

val errors : t list -> t list
val warnings : t list -> t list

val path_to_string : t -> string
(** The location path, slash-joined (["top/CPU1/ch_T1_T2"]). *)

val to_line : t -> string
(** One line, no trailing newline:
    ["error[UF104] top/ch_A_B: inter-CPU channel carries SWFIFO"]. *)

val summary : t list -> string
(** ["clean"], or ["2 errors, 1 warning"]. *)

val render : t list -> string
(** Text report: one {!to_line} per diagnostic (hint, when present, on
    an indented continuation line), then a {!summary} line.  Ends with
    a newline.  The empty list renders as ["clean\n"]. *)

val to_json : t -> Umlfront_obs.Json.t

val list_to_json : ?file:string -> t list -> Umlfront_obs.Json.t
(** [{"file": ..., "errors": n, "warnings": n, "diagnostics": [...]}];
    the [file] field is present only when given. *)

val severity_of_string : string -> severity option
(** Inverse of {!severity_to_string}. *)

val of_json : Umlfront_obs.Json.t -> (t, string) result
(** Inverse of {!to_json} — what lets a client of [umlfront serve]
    round-trip a diagnostic through the wire format.  Unknown members
    are ignored; missing required ones are an [Error]. *)

val list_of_json :
  Umlfront_obs.Json.t -> (string option * t list, string) result
(** Inverse of {!list_to_json}: the optional [file] plus the decoded
    diagnostics.  The [errors]/[warnings] counts are derivable and not
    returned. *)

val pp : Format.formatter -> t -> unit
