module D = Diagnostic
module Sdf = Umlfront_dataflow.Sdf
module S = Umlfront_simulink.System
module Caam = Umlfront_simulink.Caam
module Metrics = Umlfront_obs.Metrics

let rules =
  [
    ("UF001", D.Error, "sequence call to an undeclared object or operation");
    ("UF002", D.Warning, "Set* delivers a token the receiving thread never consumes");
    ("UF003", D.Warning, "Get* expects a token the source thread never produces");
    ("UF004", D.Error, "<<IO>> call outside the get*/set* port convention");
    ("UF005", D.Error, "thread deployed to no (or no <<SAengine>>) processor");
    ("UF101", D.Error, "block input port with no driving line");
    ("UF102", D.Warning, "block output port no line consumes");
    ("UF103", D.Error, "duplicate block names within one system");
    ("UF104", D.Error, "channel protocol contradicts its position (SWFIFO/GFIFO)");
    ("UF105", D.Error, "CAAM role structure broken (CPU-SS / Thread-SS)");
    ("UF106", D.Error, "channel not wired point-to-point");
    ("UF190", D.Error, "model cannot be flattened to a dataflow graph");
    ("UF201", D.Error, "SDF balance equations inconsistent (no repetition vector)");
    ("UF202", D.Error, "zero-delay cycle not broken by a UnitDelay");
    ("UF203", D.Warning, "channel Capacity below the buffer-bound estimate");
  ]

(* Count into the process-global registry and fix the report order. *)
let counted ds =
  let ds = List.sort D.compare ds in
  Metrics.incr "lint.runs";
  Metrics.incr "lint.diagnostics" ~by:(List.length ds);
  List.iter (fun (d : D.t) -> Metrics.incr ("lint." ^ d.D.code)) ds;
  ds

let check_uml uml = counted (Uml_rules.check uml)

(* UF203: a channel that declares a Capacity below the schedule's
   buffer-bound estimate will overflow (or block) at run time.
   Channels without the parameter are unbounded as far as the model is
   concerned, so they are exempt. *)
let capacity_rule (m : Umlfront_simulink.Model.t) (sdf : Sdf.t) =
  let bounds = Sdf_rules.buffer_bounds sdf in
  List.filter_map
    (fun (path, (b : S.block)) ->
      match S.param_int b "Capacity" with
      | None -> None
      | Some capacity -> (
          match List.assoc_opt b.S.blk_name bounds with
          | Some bound when bound > capacity ->
              Some
                (D.warning ~code:"UF203"
                   ~path:(("top" :: path) @ [ b.S.blk_name ])
                   (Printf.sprintf
                      "channel %s declares Capacity %d but the schedule needs %d \
                       slot%s"
                      b.S.blk_name capacity bound (if bound = 1 then "" else "s"))
                   ~hint:(Printf.sprintf "raise Capacity to at least %d" bound))
          | Some _ | None -> None))
    (Caam.channels m)

let caam_and_sdf (m : Umlfront_simulink.Model.t) =
  let structural = Caam_rules.check m in
  match Sdf.of_model m with
  | exception Invalid_argument reason ->
      D.error ~code:"UF190" ~path:[ "top" ]
        (Printf.sprintf "model cannot be flattened to a dataflow graph: %s" reason)
        ~hint:"fix the structural diagnostics first"
      :: structural
  | sdf -> structural @ Sdf_rules.check sdf @ capacity_rule m sdf

let check_caam m = counted (caam_and_sdf m)
let check ~uml caam = counted (Uml_rules.check uml @ caam_and_sdf caam)

let deny policy ds =
  match policy with
  | `Errors -> D.errors ds
  | `Warnings -> List.filter (fun (d : D.t) -> d.D.severity <> D.Info) ds
