(** CAAM-level lint rules (codes UF101-UF106) over the generated (or
    hand-edited / re-captured) Simulink model:

    - [UF101] (error): a block input port with no driving line;
    - [UF102] (warning): a block output port no line consumes;
    - [UF103] (error): duplicate block names within one system;
    - [UF104] (error): a channel whose [Protocol] contradicts its
      position — inter-CPU channels (top level) must carry [GFIFO],
      intra-CPU channels [SWFIFO] (paper §4.2.1) — or carries none;
    - [UF105] (error): CAAM role structure — a top-level subsystem
      that is not a CPU-SS, or a CPU-SS child subsystem that is not a
      Thread-SS;
    - [UF106] (error): a channel wired to more than (or fewer than)
      one producer or consumer. *)

val check : Umlfront_simulink.Model.t -> Diagnostic.t list
(** Unsorted; {!Lint} sorts and counts. *)
