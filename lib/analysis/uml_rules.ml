module U = Umlfront_uml
module D = Diagnostic

let message_site (sd : string) (m : U.Sequence.message) =
  [ sd; Printf.sprintf "%s->%s.%s" m.U.Sequence.msg_from m.U.Sequence.msg_to m.U.Sequence.msg_operation ]

(* UF001: calls must resolve to declared objects and operations.  The
   Platform pseudo-object stands for the whole block library, so any
   operation name on it is fair game. *)
let check_resolution model (sd : string) (m : U.Sequence.message) acc =
  let site = message_site sd m in
  let acc =
    if U.Model.find_instance model m.U.Sequence.msg_from = None then
      D.error ~code:"UF001" ~path:site
        (Printf.sprintf "caller object %s is not declared in the model" m.U.Sequence.msg_from)
        ~hint:"declare the object instance (or fix the lifeline name)"
      :: acc
    else acc
  in
  match U.Model.kind_of_instance model m.U.Sequence.msg_to with
  | None ->
      D.error ~code:"UF001" ~path:site
        (Printf.sprintf "callee object %s is not declared in the model" m.U.Sequence.msg_to)
        ~hint:"declare the object instance (or fix the lifeline name)"
      :: acc
  | Some U.Classifier.Platform -> acc
  | Some _ -> (
      match U.Model.operation_of_message model m with
      | Some _ -> acc
      | None ->
          D.error ~code:"UF001" ~path:site
            (Printf.sprintf "operation %s is not declared on the class of %s"
               m.U.Sequence.msg_operation m.U.Sequence.msg_to)
            ~hint:"declare the operation on the callee's class"
          :: acc)

(* UF004: the <<IO>> prefix convention — get*/set* is what the mapping
   turns into system-level ports; anything else is silently dropped. *)
let check_io model (sd : string) (m : U.Sequence.message) acc =
  if U.Model.kind_of_instance model m.U.Sequence.msg_to <> Some U.Classifier.Io_device then
    acc
  else
    let site = message_site sd m in
    if not (U.Sequence.is_io_read m || U.Sequence.is_io_write m) then
      D.error ~code:"UF004" ~path:site
        (Printf.sprintf "call to <<IO>> object %s must use the get*/set* prefix convention"
           m.U.Sequence.msg_to)
        ~hint:"rename the operation to get<Port> (read) or set<Port> (write)"
      :: acc
    else if U.Sequence.is_io_read m && m.U.Sequence.msg_result = None then
      D.warning ~code:"UF004" ~path:site
        "IO read binds no result token, so no system input port is generated"
        ~hint:"bind the return value to a data token"
      :: acc
    else acc

(* UF002/UF003: Set/Get pairing between threads.  A Set's payload must
   be consumed by the receiving thread; a Get's result must be produced
   by the thread it is addressed to (locally, or relayed to it by a
   Set) — otherwise the generated channel port dangles. *)
let check_set_get model behaviours acc =
  let is_thread o = U.Model.kind_of_instance model o = Some U.Classifier.Thread in
  let all =
    List.concat_map
      (fun (sd : U.Sequence.t) ->
        List.map (fun m -> (sd.U.Sequence.sd_name, m)) sd.U.Sequence.sd_messages)
      behaviours
  in
  let consumes thread token =
    List.exists
      (fun (_, (m : U.Sequence.message)) ->
        String.equal m.msg_from thread
        && List.exists (fun (a : U.Sequence.arg) -> String.equal a.arg_name token) m.msg_args)
      all
  in
  let produces thread token =
    List.exists
      (fun (_, (m : U.Sequence.message)) ->
        let binds =
          List.exists
            (fun (a : U.Sequence.arg) -> String.equal a.arg_name token)
            (Option.to_list m.msg_result @ m.msg_outs)
        in
        (String.equal m.msg_from thread && binds)
        || (String.equal m.msg_to thread && U.Sequence.is_send m
           && List.exists (fun (a : U.Sequence.arg) -> String.equal a.arg_name token) m.msg_args))
      all
  in
  List.fold_left
    (fun acc (sd, (m : U.Sequence.message)) ->
      if not (is_thread m.msg_from && is_thread m.msg_to) then acc
      else if U.Sequence.is_send m then
        List.fold_left
          (fun acc (a : U.Sequence.arg) ->
            if consumes m.msg_to a.arg_name then acc
            else
              D.warning ~code:"UF002" ~path:(message_site sd m)
                (Printf.sprintf "%s delivers token %s to %s, which never consumes it"
                   m.msg_operation a.arg_name m.msg_to)
                ~hint:"remove the Set, or use the token in the receiving thread"
              :: acc)
          acc m.msg_args
      else if U.Sequence.is_receive m then
        match m.msg_result with
        | None ->
            D.warning ~code:"UF003" ~path:(message_site sd m)
              (Printf.sprintf "%s binds no result token, so no channel is generated"
                 m.msg_operation)
              ~hint:"bind the Get's return value to a data token"
            :: acc
        | Some (a : U.Sequence.arg) ->
            if produces m.msg_to a.arg_name then acc
            else
              D.warning ~code:"UF003" ~path:(message_site sd m)
                (Printf.sprintf "%s expects token %s from %s, which never produces it"
                   m.msg_operation a.arg_name m.msg_to)
                ~hint:"produce the token in the source thread (result, out or Set delivery)"
              :: acc
      else acc)
    acc all

(* UF005: deployment discipline — every thread on exactly one
   <<SAengine>> node.  Silent when the model carries no deployment
   diagram (the flow then infers an allocation instead). *)
let check_deployment model acc =
  match U.Model.deployment model with
  | None -> acc
  | Some dep ->
      let site thread = [ dep.U.Deployment.dep_name; thread ] in
      let node_of name =
        List.find_opt
          (fun (n : U.Deployment.node) -> String.equal n.node_name name)
          dep.U.Deployment.dep_nodes
      in
      List.fold_left
        (fun acc thread ->
          match
            List.filter
              (fun (t, _) -> String.equal t thread)
              dep.U.Deployment.dep_allocation
          with
          | [] ->
              D.error ~code:"UF005" ~path:(site thread)
                (Printf.sprintf "thread %s is not deployed to any <<SAengine>> processor"
                   thread)
                ~hint:"add an allocation entry to the deployment diagram"
              :: acc
          | [ (_, node) ] -> (
              match node_of node with
              | None ->
                  D.error ~code:"UF005" ~path:(site thread)
                    (Printf.sprintf "thread %s is deployed to undeclared node %s" thread
                       node)
                    ~hint:"declare the node in the deployment diagram"
                  :: acc
              | Some n ->
                  if
                    List.exists
                      (U.Stereotype.equal U.Stereotype.Sa_engine)
                      n.U.Deployment.node_stereotypes
                  then acc
                  else
                    D.error ~code:"UF005" ~path:(site thread)
                      (Printf.sprintf "thread %s is deployed to %s, which is not an \
                                       <<SAengine>> processor"
                         thread node)
                      ~hint:"stereotype the node <<SAengine>>"
                    :: acc)
          | _ :: _ :: _ ->
              D.error ~code:"UF005" ~path:(site thread)
                (Printf.sprintf "thread %s is deployed more than once" thread)
                ~hint:"keep a single allocation entry per thread"
              :: acc)
        acc (U.Model.threads model)

let check model =
  let behaviours = U.Model.behaviours model in
  let acc =
    List.fold_left
      (fun acc (sd : U.Sequence.t) ->
        List.fold_left
          (fun acc m ->
            check_io model sd.U.Sequence.sd_name m
              (check_resolution model sd.U.Sequence.sd_name m acc))
          acc sd.U.Sequence.sd_messages)
      [] behaviours
  in
  let acc = check_set_get model behaviours acc in
  check_deployment model acc
