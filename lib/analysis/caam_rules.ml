module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Caam = Umlfront_simulink.Caam
module Model = Umlfront_simulink.Model
module D = Diagnostic

let site path name = ("top" :: path) @ [ name ]

(* UF103: duplicate block names make every by-name lookup (lines,
   traces, channel inference) ambiguous. *)
let check_duplicates path sys acc =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc (b : S.block) ->
      if Hashtbl.mem seen b.blk_name then
        if Hashtbl.find seen b.blk_name then (
          Hashtbl.replace seen b.blk_name false;
          D.error ~code:"UF103" ~path:(site path b.blk_name)
            (Printf.sprintf "block name %s is used more than once in this system"
               b.blk_name)
            ~hint:"rename one of the blocks"
          :: acc)
        else acc
      else (
        Hashtbl.add seen b.blk_name true;
        acc))
    acc (S.blocks sys)

(* UF101/UF102: every input port driven, every output port consumed.
   Top-level Outports are the model's external outputs and top-level
   Inports its stimuli, so their outer side is exempt by type (they
   have no outer ports); everything else dangling is a wiring bug in
   the generator or the hand edit. *)
let check_ports path sys acc =
  List.fold_left
    (fun acc (b : S.block) ->
      let inputs, outputs = S.port_counts b in
      let driven = List.map fst (S.drivers sys b.blk_name) in
      let acc = ref acc in
      for p = 1 to inputs do
        if not (List.mem p driven) then
          acc :=
            D.error ~code:"UF101" ~path:(site path b.blk_name)
              (Printf.sprintf "input port %d of %s block %s is not driven" p
                 (B.to_string b.blk_type) b.blk_name)
              ~hint:"connect a line to the port (or drive it from a Ground block)"
            :: !acc
      done;
      for p = 1 to outputs do
        if S.consumers sys b.blk_name p = [] then
          acc :=
            D.warning ~code:"UF102" ~path:(site path b.blk_name)
              (Printf.sprintf "output port %d of %s block %s is not consumed" p
                 (B.to_string b.blk_type) b.blk_name)
              ~hint:"connect the port (or terminate it with a Terminator block)"
            :: !acc
      done;
      !acc)
    acc (S.blocks sys)

(* UF106: channels are point-to-point by construction (§4.2.1). *)
let check_channel_wiring path sys acc =
  List.fold_left
    (fun acc (b : S.block) ->
      if b.blk_type <> B.Channel then acc
      else
        let producers = List.length (S.drivers sys b.blk_name) in
        let consumers = List.length (S.consumers sys b.blk_name 1) in
        let acc =
          if producers = 1 then acc
          else
            D.error ~code:"UF106" ~path:(site path b.blk_name)
              (Printf.sprintf "channel %s has %d producers, expected exactly 1"
                 b.blk_name producers)
              ~hint:"a channel carries one data link; split or remove it"
            :: acc
        in
        if consumers = 1 then acc
        else
          D.error ~code:"UF106" ~path:(site path b.blk_name)
            (Printf.sprintf "channel %s has %d consumers, expected exactly 1" b.blk_name
               consumers)
            ~hint:"a channel carries one data link; split or remove it"
          :: acc)
    acc (S.blocks sys)

(* UF104: protocol must match the channel's position in the hierarchy. *)
let check_protocols (m : Model.t) acc =
  List.fold_left
    (fun acc (path, (b : S.block)) ->
      let expected =
        match Caam.classify_channel ~path with
        | Caam.Inter_cpu -> "GFIFO"
        | Caam.Intra_cpu -> "SWFIFO"
      in
      match Caam.protocol b with
      | Some p when String.equal p expected -> acc
      | Some p ->
          D.error ~code:"UF104" ~path:(site path b.blk_name)
            (Printf.sprintf "%s channel %s carries protocol %s, expected %s"
               (match Caam.classify_channel ~path with
               | Caam.Inter_cpu -> "inter-CPU"
               | Caam.Intra_cpu -> "intra-CPU")
               b.blk_name p expected)
            ~hint:(Printf.sprintf "set the Protocol parameter to %s" expected)
          :: acc
      | None ->
          D.error ~code:"UF104" ~path:(site path b.blk_name)
            (Printf.sprintf "channel %s carries no Protocol parameter" b.blk_name)
            ~hint:(Printf.sprintf "set the Protocol parameter to %s" expected)
          :: acc)
    acc (Caam.channels m)

(* UF105: the two-level CPU-SS / Thread-SS discipline of the CAAM. *)
let check_roles (m : Model.t) acc =
  let acc =
    List.fold_left
      (fun acc (b : S.block) ->
        match (b.blk_type, Caam.role_of_block b) with
        | B.Subsystem, Some Caam.Cpu -> acc
        | B.Subsystem, _ ->
            D.error ~code:"UF105" ~path:(site [] b.blk_name)
              (Printf.sprintf "top-level subsystem %s lacks the cpu CAAM role"
                 b.blk_name)
              ~hint:"set the CAAMRole parameter to cpu"
            :: acc
        | _ -> acc)
      acc
      (S.blocks m.Model.root)
  in
  List.fold_left
    (fun acc (cpu : S.block) ->
      match cpu.blk_system with
      | None ->
          D.error ~code:"UF105" ~path:(site [] cpu.blk_name)
            (Printf.sprintf "CPU-SS %s has no nested system" cpu.blk_name)
          :: acc
      | Some sys ->
          List.fold_left
            (fun acc (b : S.block) ->
              match (b.blk_type, Caam.role_of_block b) with
              | B.Subsystem, Some Caam.Thread -> acc
              | B.Subsystem, _ ->
                  D.error ~code:"UF105"
                    ~path:(site [ cpu.blk_name ] b.blk_name)
                    (Printf.sprintf
                       "subsystem %s inside CPU-SS %s lacks the thread CAAM role"
                       b.blk_name cpu.blk_name)
                    ~hint:"set the CAAMRole parameter to thread"
                  :: acc
              | _ -> acc)
            acc (S.blocks sys))
    acc (Caam.cpus m)

let check (m : Model.t) =
  let acc = ref [] in
  S.iter_systems
    (fun path sys ->
      acc := check_duplicates path sys !acc;
      acc := check_ports path sys !acc;
      acc := check_channel_wiring path sys !acc)
    m.Model.root;
  check_roles m (check_protocols m !acc)
