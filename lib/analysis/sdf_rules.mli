(** SDF-level lint rules (codes UF201-UF203) over the flattened
    dataflow graph:

    - [UF201] (error): the balance equations are inconsistent — no
      repetition vector exists (the rank test of Lee & Messerschmitt).
      The flattened graphs this tool generates are single-rate, so the
      rule only fires through a caller-supplied [rates] function (e.g.
      when modelling multirate actors on top of the graph);
    - [UF202] (error): a zero-delay dependency cycle — the model
      deadlocks unless a [UnitDelay] temporal barrier (§4.2.2) breaks
      the cycle;
    - [UF203] (warning, applied by {!Lint}): a channel whose declared
      [Capacity] parameter is below the {!buffer_bounds} estimate. *)

type rates = Umlfront_dataflow.Sdf.edge -> int * int
(** (tokens produced per source firing, tokens consumed per destination
    firing).  The default is [fun _ -> (1, 1)] — homogeneous SDF. *)

val repetition_vector :
  ?rates:rates ->
  Umlfront_dataflow.Sdf.t ->
  ((string * int) list, Diagnostic.t list) result
(** Solve the balance equations per weakly-connected component.  [Ok]
    carries the smallest integer repetition vector (actor name to
    firing count, in actor order); [Error] carries one [UF201]
    diagnostic per inconsistent edge. *)

val deadlock : Umlfront_dataflow.Sdf.t -> Diagnostic.t list
(** [UF202] for the zero-delay cycle, when one exists. *)

val buffer_bounds : Umlfront_dataflow.Sdf.t -> (string * int) list
(** Per-channel buffer-bound estimate (channel block name to slots),
    in edge order: 1 slot for a forward link, 2 when the token rests
    across a round boundary (the producer fires at or after the
    consumer's level, or is a [UnitDelay]).  Empty when the graph
    deadlocks — fix [UF202] first. *)

val check : ?rates:rates -> Umlfront_dataflow.Sdf.t -> Diagnostic.t list
(** [UF201] and [UF202].  Unsorted; {!Lint} sorts and counts. *)
