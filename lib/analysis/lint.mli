(** The lint driver: runs every rule family, sorts the findings into
    the stable report order and counts per-rule occurrences into the
    {!Umlfront_obs.Metrics} registry ([lint.runs], [lint.diagnostics]
    and one [lint.<code>] counter per firing rule).

    The synthesizer is expected to keep all bundled and randomly
    generated models lint-clean — [test/test_analysis.ml] enforces
    this, and the [lint-examples] CI step enforces it on the bundled
    case studies via [umlfront lint --deny warnings]. *)

val rules : (string * Diagnostic.severity * string) list
(** The rule catalog: (code, severity, one-line title), sorted by
    code.  Documented in [doc/analysis.md]. *)

val check_uml : Umlfront_uml.Model.t -> Diagnostic.t list
(** UML-level rules (UF0xx) only — for models that have not been
    synthesized yet. *)

val check_caam : Umlfront_simulink.Model.t -> Diagnostic.t list
(** CAAM-level rules (UF1xx) plus, when the model flattens, the
    SDF-level rules (UF2xx) on the flattened graph and the per-channel
    capacity check (UF203).  A model that cannot be flattened at all
    yields a single UF190 error instead of the SDF rules. *)

val check : uml:Umlfront_uml.Model.t -> Umlfront_simulink.Model.t -> Diagnostic.t list
(** {!check_uml} plus {!check_caam} — the whole catalog, as run by
    [umlfront lint] and the {!Umlfront_core.Flow} gate phase. *)

val deny : [ `Errors | `Warnings ] -> Diagnostic.t list -> Diagnostic.t list
(** The findings that fail the run under the given policy: errors
    only, or errors and warnings ([--deny warnings]). *)
