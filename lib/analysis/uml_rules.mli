(** UML-level lint rules (codes UF001-UF005).

    These check the hand-written model {e before} synthesis — the
    conventions of paper §4.1 that the mapping assumes but only the
    well-formedness validator partially enforces:

    - [UF001] (error): a sequence message calls an operation the
      callee's class does not declare, or names an undeclared object;
    - [UF002] (warning): a thread-to-thread [Set*] delivers a token the
      receiving thread never consumes;
    - [UF003] (warning): a thread-to-thread [Get*] expects a token the
      source thread never produces, or binds no result token at all;
    - [UF004] (error/warning): a call to an [<<IO>>] object does not
      follow the [get*]/[set*] prefix convention (error), or an IO read
      binds no result token so no system port is generated (warning);
    - [UF005] (error): the deployment diagram leaves a thread
      undeployed, deploys it more than once, or deploys it to a node
      that is not an [<<SAengine>>] processor. *)

val check : Umlfront_uml.Model.t -> Diagnostic.t list
(** Unsorted; {!Lint} sorts and counts. *)
