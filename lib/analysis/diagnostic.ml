module Json = Umlfront_obs.Json

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;
  path : string list;
  message : string;
  hint : string option;
}

let make ?hint severity ~code ~path message = { severity; code; path; message; hint }
let error ?hint = make ?hint Error
let warning ?hint = make ?hint Warning

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Errors sort before warnings of the same rule only through the code;
   within a code the path keeps mutants of the same system together. *)
let compare a b =
  match String.compare a.code b.code with
  | 0 -> (
      match List.compare String.compare a.path b.path with
      | 0 -> String.compare a.message b.message
      | c -> c)
  | c -> c

let errors = List.filter (fun d -> d.severity = Error)
let warnings = List.filter (fun d -> d.severity = Warning)
let path_to_string d = String.concat "/" d.path

let to_line d =
  Printf.sprintf "%s[%s] %s: %s" (severity_to_string d.severity) d.code
    (path_to_string d) d.message

let count_label n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s")

let summary ds =
  if ds = [] then "clean"
  else
    Printf.sprintf "%s, %s"
      (count_label (List.length (errors ds)) "error")
      (count_label (List.length (warnings ds)) "warning")

let render ds =
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string buf (to_line d);
      Buffer.add_char buf '\n';
      Option.iter
        (fun h -> Buffer.add_string buf (Printf.sprintf "  hint: %s\n" h))
        d.hint)
    ds;
  Buffer.add_string buf (summary ds);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_json d =
  Json.Obj
    ([
       ("severity", Json.String (severity_to_string d.severity));
       ("code", Json.String d.code);
       ("path", Json.String (path_to_string d));
       ("message", Json.String d.message);
     ]
    @ match d.hint with None -> [] | Some h -> [ ("hint", Json.String h) ])

let list_to_json ?file ds =
  Json.Obj
    ((match file with None -> [] | Some f -> [ ("file", Json.String f) ])
    @ [
        ("errors", Json.Int (List.length (errors ds)));
        ("warnings", Json.Int (List.length (warnings ds)));
        ("diagnostics", Json.List (List.map to_json ds));
      ])

let pp ppf d = Format.pp_print_string ppf (to_line d)
