module Json = Umlfront_obs.Json

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;
  path : string list;
  message : string;
  hint : string option;
}

let make ?hint severity ~code ~path message = { severity; code; path; message; hint }
let error ?hint = make ?hint Error
let warning ?hint = make ?hint Warning

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Errors sort before warnings of the same rule only through the code;
   within a code the path keeps mutants of the same system together. *)
let compare a b =
  match String.compare a.code b.code with
  | 0 -> (
      match List.compare String.compare a.path b.path with
      | 0 -> String.compare a.message b.message
      | c -> c)
  | c -> c

let errors = List.filter (fun d -> d.severity = Error)
let warnings = List.filter (fun d -> d.severity = Warning)
let path_to_string d = String.concat "/" d.path

let to_line d =
  Printf.sprintf "%s[%s] %s: %s" (severity_to_string d.severity) d.code
    (path_to_string d) d.message

let count_label n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s")

let summary ds =
  if ds = [] then "clean"
  else
    Printf.sprintf "%s, %s"
      (count_label (List.length (errors ds)) "error")
      (count_label (List.length (warnings ds)) "warning")

let render ds =
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string buf (to_line d);
      Buffer.add_char buf '\n';
      Option.iter
        (fun h -> Buffer.add_string buf (Printf.sprintf "  hint: %s\n" h))
        d.hint)
    ds;
  Buffer.add_string buf (summary ds);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_json d =
  Json.Obj
    ([
       ("severity", Json.String (severity_to_string d.severity));
       ("code", Json.String d.code);
       ("path", Json.String (path_to_string d));
       ("message", Json.String d.message);
     ]
    @ match d.hint with None -> [] | Some h -> [ ("hint", Json.String h) ])

let list_to_json ?file ds =
  Json.Obj
    ((match file with None -> [] | Some f -> [ ("file", Json.String f) ])
    @ [
        ("errors", Json.Int (List.length (errors ds)));
        ("warnings", Json.Int (List.length (warnings ds)));
        ("diagnostics", Json.List (List.map to_json ds));
      ])

(* --- decoding ------------------------------------------------------- *)

(* The inverses of {!to_json}/{!list_to_json}, so a serving client (or
   a test) can round-trip diagnostics through the wire format and prove
   the CLI and the server speak the same JSON.  Decoding is strict
   about shape but ignores unknown members, leaving room to add fields
   without breaking old readers. *)

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let of_json json =
  let str key = Option.bind (Json.member key json) (function
    | Json.String s -> Some s
    | _ -> None)
  in
  match (str "severity", str "code", str "path", str "message") with
  | Some sev, Some code, Some path, Some message -> (
      match severity_of_string sev with
      | None -> Stdlib.Error (Printf.sprintf "unknown severity %S" sev)
      | Some severity ->
          Ok
            {
              severity;
              code;
              path = (if path = "" then [] else String.split_on_char '/' path);
              message;
              hint = str "hint";
            })
  | _ -> Stdlib.Error "diagnostic: missing severity/code/path/message"

let list_of_json json =
  let file =
    match Json.member "file" json with Some (Json.String f) -> Some f | _ -> None
  in
  match Json.member "diagnostics" json with
  | Some (Json.List ds) ->
      let rec decode acc = function
        | [] -> Ok (file, List.rev acc)
        | d :: rest -> (
            match of_json d with
            | Ok d -> decode (d :: acc) rest
            | Stdlib.Error msg -> Stdlib.Error msg)
      in
      decode [] ds
  | _ -> Stdlib.Error "diagnostic list: missing \"diagnostics\" array"

let pp ppf d = Format.pp_print_string ppf (to_line d)
