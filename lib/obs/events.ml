(* Structured events: one reporting path shared by every library.

   An event goes (a) to Logs, formatted "name key=value ...", under the
   caller's Logs source, (b) into the trace sink as an instant event
   when profiling is on, and (c) into the always-on run journal, so
   `umlfront journal` replays the event stream of any run without
   opting in beforehand.  Passes that already have a Logs source keep
   it; passes that do not can use [default_src]. *)

let default_src = Logs.Src.create "umlfront.obs" ~doc:"umlfront structured events"

let field_to_string = function
  | Json.String s -> s
  | Json.Int i -> string_of_int i
  | Json.Float f -> Printf.sprintf "%g" f
  | Json.Bool b -> string_of_bool b
  | Json.Null -> "null"
  | (Json.List _ | Json.Obj _) as v -> Json.to_string v

let emit ?(level = Logs.Info) ?(src = default_src) ?(fields = []) name =
  let module Log = (val Logs.src_log src : Logs.LOG) in
  Log.msg level (fun m ->
      m "%s%s" name
        (String.concat ""
           (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k (field_to_string v)) fields)));
  Trace.instant ~cat:"event" ~args:fields name;
  Journal.record ~fields name
