(* Process-global metrics registry: counters, gauges and histograms
   that any pass may register into by name.  Cheap enough to leave on
   unconditionally: recording is a hashtable lookup plus a couple of
   field writes.

   Histograms keep exact count/sum/min/max plus a bounded sample buffer
   (ring of the most recent [max_samples]) from which p50/p95/p99 are
   computed on snapshot.

   Every registry carries its own mutex: recordings arrive from worker
   domains (Umlfront_parallel pools running instrumented passes), so
   registration and mutation are serialized.  The uncontended lock cost
   is a few nanoseconds, well under the hashtable lookup it guards. *)

let max_samples = 8192

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_ring : float array;
  mutable h_next : int; (* next write slot in the ring *)
}

type metric =
  | Counter of { mutable c : int }
  | Gauge of { mutable g : float }
  | Histogram of histogram

type t = {
  table : (string, metric) Hashtbl.t;
  mutable names : string list; (* registration order, newest first *)
  lock : Mutex.t;
}

let create () = { table = Hashtbl.create 64; names = []; lock = Mutex.create () }

let locked r f =
  Mutex.lock r.lock;
  match f () with
  | v ->
      Mutex.unlock r.lock;
      v
  | exception e ->
      Mutex.unlock r.lock;
      raise e

(* The process-global registry that instrumented passes record into
   unless a Context has installed a different current registry on this
   domain (see context.ml). *)
let global = create ()

let current_key = Domain.DLS.new_key (fun () -> global)

let current () = Domain.DLS.get current_key

let set_current r = Domain.DLS.set current_key r

let registry = function Some r -> r | None -> current ()

let reset ?registry:r () =
  let r = registry r in
  locked r @@ fun () ->
  Hashtbl.reset r.table;
  r.names <- []

let find_or_add r name make =
  match Hashtbl.find_opt r.table name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.replace r.table name m;
      r.names <- name :: r.names;
      m

let incr ?registry:r ?(by = 1) name =
  let r = registry r in
  locked r @@ fun () ->
  match find_or_add r name (fun () -> Counter { c = 0 }) with
  | Counter c -> c.c <- c.c + by
  | Gauge _ | Histogram _ -> invalid_arg ("metrics: " ^ name ^ " is not a counter")

let set_gauge ?registry:r name v =
  let r = registry r in
  locked r @@ fun () ->
  match find_or_add r name (fun () -> Gauge { g = 0.0 }) with
  | Gauge g -> g.g <- v
  | Counter _ | Histogram _ -> invalid_arg ("metrics: " ^ name ^ " is not a gauge")

let observe ?registry:r name v =
  let make () =
    Histogram
      {
        h_count = 0;
        h_sum = 0.0;
        h_min = Float.infinity;
        h_max = Float.neg_infinity;
        h_ring = Array.make max_samples 0.0;
        h_next = 0;
      }
  in
  let r = registry r in
  locked r @@ fun () ->
  match find_or_add r name make with
  | Histogram h ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      h.h_ring.(h.h_next mod max_samples) <- v;
      h.h_next <- h.h_next + 1
  | Counter _ | Gauge _ -> invalid_arg ("metrics: " ^ name ^ " is not a histogram")

(* Merge [src] into [into]: counters add, gauges keep the max, and
   histograms combine exact count/sum/min/max while their sample rings
   are concatenated, sorted numerically and truncated to [max_samples].
   Every combination rule is commutative, so merging per-domain child
   registries back into a parent (Context.merge) is independent of the
   order the children arrive in — as long as the combined sample count
   stays within the ring, which per-batch forks comfortably do.  The
   source is snapshotted under its own lock before the destination is
   locked, so no two registry locks are ever held together. *)
let merge ~into src =
  if src != into then begin
    let entries =
      locked src (fun () ->
          List.rev_map
            (fun name -> (name, Hashtbl.find src.table name))
            src.names)
    in
    let copied =
      List.map
        (fun (name, m) ->
          match m with
          | Counter c -> (name, `C c.c)
          | Gauge g -> (name, `G g.g)
          | Histogram h ->
              let kept = min h.h_count max_samples in
              ( name,
                `H (h.h_count, h.h_sum, h.h_min, h.h_max, Array.sub h.h_ring 0 kept) ))
        entries
    in
    locked into @@ fun () ->
    List.iter
      (fun (name, payload) ->
        match payload with
        | `C n -> (
            match find_or_add into name (fun () -> Counter { c = 0 }) with
            | Counter c -> c.c <- c.c + n
            | Gauge _ | Histogram _ ->
                invalid_arg ("metrics: " ^ name ^ " is not a counter"))
        | `G v -> (
            match find_or_add into name (fun () -> Gauge { g = v }) with
            | Gauge g -> if v > g.g then g.g <- v
            | Counter _ | Histogram _ ->
                invalid_arg ("metrics: " ^ name ^ " is not a gauge"))
        | `H (count, sum, mn, mx, samples) -> (
            let make () =
              Histogram
                {
                  h_count = 0;
                  h_sum = 0.0;
                  h_min = Float.infinity;
                  h_max = Float.neg_infinity;
                  h_ring = Array.make max_samples 0.0;
                  h_next = 0;
                }
            in
            match find_or_add into name make with
            | Histogram h ->
                let kept = min h.h_count max_samples in
                let combined =
                  Array.append (Array.sub h.h_ring 0 kept) samples
                in
                Array.sort Float.compare combined;
                let stored = min (Array.length combined) max_samples in
                Array.blit combined 0 h.h_ring 0 stored;
                h.h_next <- stored;
                h.h_count <- h.h_count + count;
                h.h_sum <- h.h_sum +. sum;
                if mn < h.h_min then h.h_min <- mn;
                if mx > h.h_max then h.h_max <- mx
            | Counter _ | Gauge _ ->
                invalid_arg ("metrics: " ^ name ^ " is not a histogram")))
      copied
  end

(* Percentile with linear interpolation between closest ranks, over a
   sorted array.  Exposed for the test suite.  [p] is clamped to
   [0, 100]: an out-of-range request used to index outside the array,
   and with 0 or 1 samples the closest-rank formula degenerates — 0
   samples answer NaN, 1 sample answers that sample for every p. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else if n = 1 then sorted.(0)
  else
    let p = if Float.is_nan p then 50.0 else Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

type stat = {
  s_name : string;
  s_kind : string; (* "counter" | "gauge" | "histogram" *)
  s_count : int;
  s_value : float; (* counter value / gauge value / histogram mean *)
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
}

let stat_of r name =
  match Hashtbl.find_opt r.table name with
  | None -> None
  | Some (Counter c) ->
      Some
        {
          s_name = name;
          s_kind = "counter";
          s_count = c.c;
          s_value = float_of_int c.c;
          s_min = Float.nan;
          s_max = Float.nan;
          s_p50 = Float.nan;
          s_p95 = Float.nan;
          s_p99 = Float.nan;
        }
  | Some (Gauge g) ->
      Some
        {
          s_name = name;
          s_kind = "gauge";
          s_count = 1;
          s_value = g.g;
          s_min = Float.nan;
          s_max = Float.nan;
          s_p50 = Float.nan;
          s_p95 = Float.nan;
          s_p99 = Float.nan;
        }
  | Some (Histogram h) ->
      let kept = min h.h_count max_samples in
      let sorted = Array.sub h.h_ring 0 kept in
      Array.sort Float.compare sorted;
      Some
        {
          s_name = name;
          s_kind = "histogram";
          s_count = h.h_count;
          s_value = (if h.h_count = 0 then Float.nan else h.h_sum /. float_of_int h.h_count);
          s_min = h.h_min;
          s_max = h.h_max;
          s_p50 = percentile sorted 50.0;
          s_p95 = percentile sorted 95.0;
          s_p99 = percentile sorted 99.0;
        }

let snapshot ?registry:r () =
  let r = registry r in
  locked r @@ fun () -> List.filter_map (stat_of r) (List.sort String.compare r.names)

let stat_json (s : stat) =
  let base = [ ("name", Json.String s.s_name); ("kind", Json.String s.s_kind) ] in
  let rest =
    match s.s_kind with
    | "counter" -> [ ("value", Json.Int s.s_count) ]
    | "gauge" -> [ ("value", Json.Float s.s_value) ]
    | _ ->
        [
          ("count", Json.Int s.s_count);
          ("mean", Json.Float s.s_value);
          ("min", Json.Float s.s_min);
          ("max", Json.Float s.s_max);
          ("p50", Json.Float s.s_p50);
          ("p95", Json.Float s.s_p95);
          ("p99", Json.Float s.s_p99);
        ]
  in
  Json.Obj (base @ rest)

let to_json stats = Json.List (List.map stat_json stats)

let table stats =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "  %-36s %-10s %10s %12s %12s %12s %12s\n" "metric" "kind" "count" "value/mean"
    "p50" "p95" "p99";
  let cell v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" v in
  List.iter
    (fun s ->
      out "  %-36s %-10s %10d %12s %12s %12s %12s\n" s.s_name s.s_kind s.s_count
        (cell s.s_value) (cell s.s_p50) (cell s.s_p95) (cell s.s_p99))
    stats;
  Buffer.contents buf
