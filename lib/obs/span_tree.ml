(* Text rendering of the span tree: the parent/child linkage Trace
   events carry, folded into a forest and printed with per-span total
   time, self time (total minus direct span children — overlapping
   parallel children clamp to zero) and allocation attribution.  This
   is `umlfront stats --format tree` and the span section of the HTML
   run report.

   [~timings:false] scrubs every measured quantity (durations, bytes)
   and keeps only the structure — names, categories, nesting — which is
   what the golden test pins byte-for-byte: the tree's *shape* is
   deterministic for a given model, the numbers never are. *)

type node = {
  n_ev : Trace.event;
  mutable n_children : node list; (* reversed during build *)
}

let by_start a b =
  match Float.compare a.Trace.ev_ts b.Trace.ev_ts with
  | 0 -> compare a.Trace.ev_id b.Trace.ev_id
  | c -> c

(* Fold events into a forest.  An event whose parent id is not in the
   buffer (pruned, or -1) becomes a root.  Events are processed in
   (ts, id) order, so children lists come out oldest-first. *)
let forest events =
  let events = List.sort by_start events in
  let tbl = Hashtbl.create 64 in
  let nodes =
    List.map
      (fun ev ->
        let n = { n_ev = ev; n_children = [] } in
        Hashtbl.replace tbl ev.Trace.ev_id n;
        n)
      events
  in
  let roots =
    List.filter
      (fun n ->
        match Hashtbl.find_opt tbl n.n_ev.Trace.ev_parent with
        | Some parent when parent != n ->
            parent.n_children <- n :: parent.n_children;
            false
        | _ -> true)
      nodes
  in
  List.iter (fun n -> n.n_children <- List.rev n.n_children) nodes;
  roots

let alloc_bytes ev =
  match List.assoc_opt "alloc_bytes" ev.Trace.ev_args with
  | Some (Json.Float b) -> Some b
  | Some (Json.Int b) -> Some (float_of_int b)
  | _ -> None

let human_us us =
  if Float.abs us >= 1e6 then Printf.sprintf "%.2fs" (us /. 1e6)
  else if Float.abs us >= 1e3 then Printf.sprintf "%.2fms" (us /. 1e3)
  else Printf.sprintf "%.0fus" us

let human_bytes b =
  if Float.abs b >= 1048576.0 then Printf.sprintf "%.1fMB" (b /. 1048576.0)
  else if Float.abs b >= 1024.0 then Printf.sprintf "%.1fkB" (b /. 1024.0)
  else Printf.sprintf "%.0fB" b

let self_dur node =
  let children =
    List.fold_left
      (fun acc c ->
        if c.n_ev.Trace.ev_ph = 'X' then acc +. c.n_ev.Trace.ev_dur else acc)
      0.0 node.n_children
  in
  Float.max 0.0 (node.n_ev.Trace.ev_dur -. children)

(* Column width in codepoints, not bytes: the box-drawing glyphs are
   multi-byte UTF-8 but single-column, and Printf's %-*s pads by bytes,
   which would skew the timing columns of nested rows. *)
let display_width s =
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

let pad width s =
  let w = display_width s in
  if w >= width then s else s ^ String.make (width - w) ' '

let render ?(timings = true) events =
  let buf = Buffer.create 1024 in
  let rec emit prefix is_last node =
    let ev = node.n_ev in
    let branch, child_prefix =
      if prefix = "" && is_last = None then ("", "")
      else if is_last = Some true then (prefix ^ "└─ ", prefix ^ "   ")
      else (prefix ^ "├─ ", prefix ^ "│  ")
    in
    let label =
      if ev.Trace.ev_ph = 'i' then Printf.sprintf "· %s [%s]" ev.Trace.ev_name ev.Trace.ev_cat
      else Printf.sprintf "%s [%s]" ev.Trace.ev_name ev.Trace.ev_cat
    in
    if timings && ev.Trace.ev_ph = 'X' then begin
      let cells =
        [
          Printf.sprintf "total %s" (human_us ev.Trace.ev_dur);
          Printf.sprintf "self %s" (human_us (self_dur node));
        ]
        @
        match alloc_bytes ev with
        | Some b -> [ Printf.sprintf "alloc %s" (human_bytes b) ]
        | None -> []
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %s\n" (pad 48 (branch ^ label)) (String.concat "  " cells))
    end
    else Buffer.add_string buf (branch ^ label ^ "\n");
    let rec each = function
      | [] -> ()
      | [ last ] -> emit child_prefix (Some true) last
      | c :: rest ->
          emit child_prefix (Some false) c;
          each rest
    in
    each node.n_children
  in
  let roots = forest events in
  let rec each = function
    | [] -> ()
    | [ last ] -> emit "" (Some true) last
    | r :: rest ->
        emit "" (Some false) r;
        each rest
  in
  (match roots with [ one ] -> emit "" None one | _ -> each roots);
  Buffer.contents buf
