(* Causal token tracing: every token crossing a dataflow channel can
   carry an identity and a provenance — which block produced it, on
   which firing, over which channel, in which round.  The executors
   (Exec.run sequential and level-parallel, Kpn.run) report into this
   sink when it is enabled; everything here costs one branch per
   token when it is off, so the instrumentation lives in the hot
   paths permanently, like Trace.

   What the sink maintains:
   - a bounded ring of tokens (provenance + produce/consume
     timestamps), oldest dropped first;
   - per-channel statistics: produced/consumed counts, current
     occupancy, high-water mark (and the round it was reached), plus
     a bounded occupancy timeline for plotting;
   - FIFO pending queues so a consume matches the oldest outstanding
     token of its channel, mirroring FIFO channel semantics.

   Exports: Chrome trace "flow" events (ph "s"/"f" pairs bound by
   token id — open next to a Trace profile in Perfetto and the token
   arrows overlay the spans) and a DOT causal flow graph aggregated
   per (producer, consumer, channel). *)

type provenance = {
  token_id : int;
  token_channel : string; (* e.g. "src/1->dst/2" *)
  token_src : string; (* producing block/actor *)
  token_src_firing : int; (* 1-based firing index of the producer *)
  token_dst : string; (* consuming block/actor ("" when unknown) *)
  token_round : int; (* SDF round, -1 outside round-based execution *)
  token_protocols : string list; (* channel protocols crossed (GFIFO, ...) *)
}

type token = {
  prov : provenance;
  produced_us : float;
  mutable consumed_us : float; (* nan until consumed *)
}

type channel_stat = {
  chan_name : string;
  chan_produced : int;
  chan_consumed : int;
  chan_occupancy : int; (* produced - consumed right now *)
  chan_hwm : int; (* occupancy high-water mark *)
  chan_hwm_round : int; (* round in which the hwm was reached *)
  chan_protocols : string list;
}

let max_tokens = 65_536
let max_timeline = 512

type chan = {
  mutable c_produced : int;
  mutable c_consumed : int;
  mutable c_occ : int;
  mutable c_hwm : int;
  mutable c_hwm_round : int;
  mutable c_protocols : string list;
  c_pending : token Queue.t;
  mutable c_timeline : (float * int) list; (* newest first, bounded *)
  mutable c_timeline_len : int;
}

type sink = {
  mutable on : bool;
  ring : token option array;
  mutable next_id : int;
  mutable dropped : int;
  channels : (string, chan) Hashtbl.t;
  mutable channel_names : string list; (* registration order, newest first *)
  lock : Mutex.t;
}

let create ?(on = false) () =
  {
    on;
    ring = Array.make max_tokens None;
    next_id = 0;
    dropped = 0;
    channels = Hashtbl.create 64;
    channel_names = [];
    lock = Mutex.create ();
  }

(* The process-global sink; Context swaps the domain-local current sink
   so concurrent flows trace tokens independently. *)
let default = create ()

let current_key = Domain.DLS.new_key (fun () -> default)

let current () = Domain.DLS.get current_key

let set_current s = Domain.DLS.set current_key s

let with_sink f =
  let s = current () in
  Mutex.lock s.lock;
  match f s with
  | v ->
      Mutex.unlock s.lock;
      v
  | exception e ->
      Mutex.unlock s.lock;
      raise e

let enabled () = (current ()).on

let reset () =
  with_sink @@ fun sink ->
  Array.fill sink.ring 0 max_tokens None;
  sink.next_id <- 0;
  sink.dropped <- 0;
  Hashtbl.reset sink.channels;
  sink.channel_names <- []

let enable () =
  (current ()).on <- true;
  reset ()

let disable () = (current ()).on <- false

let chan_of sink name =
  match Hashtbl.find_opt sink.channels name with
  | Some c -> c
  | None ->
      let c =
        {
          c_produced = 0;
          c_consumed = 0;
          c_occ = 0;
          c_hwm = 0;
          c_hwm_round = -1;
          c_protocols = [];
          c_pending = Queue.create ();
          c_timeline = [];
          c_timeline_len = 0;
        }
      in
      Hashtbl.replace sink.channels name c;
      sink.channel_names <- name :: sink.channel_names;
      c

let timeline_push c ts occ =
  if c.c_timeline_len < max_timeline then (
    c.c_timeline <- (ts, occ) :: c.c_timeline;
    c.c_timeline_len <- c.c_timeline_len + 1)

(* [produce] returns the token id so a caller that knows its consumer
   eagerly (the SDF executor) can hand it straight to [consume]. *)
let produce ?(protocols = []) ?(round = -1) ?(dst = "") ~src ~firing channel =
  let ts = Trace.now_us () in
  with_sink @@ fun sink ->
  let id = sink.next_id in
  sink.next_id <- id + 1;
  let tok =
    {
      prov =
        {
          token_id = id;
          token_channel = channel;
          token_src = src;
          token_src_firing = firing;
          token_dst = dst;
          token_round = round;
          token_protocols = protocols;
        };
      produced_us = ts;
      consumed_us = Float.nan;
    }
  in
  let slot = id mod max_tokens in
  if sink.ring.(slot) <> None then sink.dropped <- sink.dropped + 1;
  sink.ring.(slot) <- Some tok;
  let c = chan_of sink channel in
  if protocols <> [] && c.c_protocols = [] then c.c_protocols <- protocols;
  c.c_produced <- c.c_produced + 1;
  c.c_occ <- c.c_occ + 1;
  if c.c_occ > c.c_hwm then (
    c.c_hwm <- c.c_occ;
    c.c_hwm_round <- round);
  timeline_push c ts c.c_occ;
  Queue.push tok c.c_pending;
  id

(* Consume the oldest outstanding token of [channel] (FIFO, like the
   channels themselves); returns its provenance when the sink knows
   one.  [by] names the consuming block for flow-graph edges whose
   producer did not know its destination. *)
let consume ?by channel =
  let ts = Trace.now_us () in
  with_sink @@ fun sink ->
  let c = chan_of sink channel in
  c.c_consumed <- c.c_consumed + 1;
  if c.c_occ > 0 then c.c_occ <- c.c_occ - 1;
  timeline_push c ts c.c_occ;
  match Queue.take_opt c.c_pending with
  | None -> None
  | Some tok ->
      tok.consumed_us <- ts;
      let prov =
        match by with
        | Some dst when tok.prov.token_dst = "" ->
            { tok.prov with token_dst = dst }
        | _ -> tok.prov
      in
      (* The ring holds the same token value; patch the recorded
         destination too so exports see it. *)
      let slot = tok.prov.token_id mod max_tokens in
      (match sink.ring.(slot) with
      | Some t when t.prov.token_id = tok.prov.token_id && t.prov <> prov ->
          sink.ring.(slot) <- Some { t with prov }
      | _ -> ());
      Some prov

(* Merge [src]'s per-channel statistics into [into]: produced/consumed
   counts and occupancy add, high-water marks keep the max (ties keep
   the earliest round, so merging is order-independent).  Token rings
   and pending FIFOs are not migrated — matching across sinks would
   fabricate causality the sinks never observed.  Physically-equal
   sinks are skipped: forked contexts alias their parent's token sink. *)
let merge ~into src =
  if src != into then begin
    let stats =
      Mutex.lock src.lock;
      let s =
        List.rev_map
          (fun name ->
            let c = Hashtbl.find src.channels name in
            ( name,
              c.c_produced,
              c.c_consumed,
              c.c_occ,
              c.c_hwm,
              c.c_hwm_round,
              c.c_protocols ))
          src.channel_names
      in
      Mutex.unlock src.lock;
      s
    in
    let drop =
      Mutex.lock src.lock;
      let d = src.dropped in
      Mutex.unlock src.lock;
      d
    in
    Mutex.lock into.lock;
    into.dropped <- into.dropped + drop;
    List.iter
      (fun (name, produced, consumed, occ, hwm, hwm_round, protocols) ->
        let c = chan_of into name in
        if protocols <> [] && c.c_protocols = [] then c.c_protocols <- protocols;
        c.c_produced <- c.c_produced + produced;
        c.c_consumed <- c.c_consumed + consumed;
        c.c_occ <- c.c_occ + occ;
        if hwm > c.c_hwm || (hwm = c.c_hwm && hwm_round < c.c_hwm_round) then (
          c.c_hwm <- hwm;
          c.c_hwm_round <- hwm_round))
      stats;
    Mutex.unlock into.lock
  end

let dropped () = with_sink (fun sink -> sink.dropped)

(* Oldest first. *)
let tokens () =
  with_sink @@ fun sink ->
  let start = sink.next_id mod max_tokens in
  let rec collect i acc =
    if i = max_tokens then List.rev acc
    else
      match sink.ring.((start + i) mod max_tokens) with
      | Some t -> collect (i + 1) (t :: acc)
      | None -> collect (i + 1) acc
  in
  collect 0 []

let channels () =
  with_sink @@ fun sink ->
  List.map
    (fun name ->
      let c = Hashtbl.find sink.channels name in
      {
        chan_name = name;
        chan_produced = c.c_produced;
        chan_consumed = c.c_consumed;
        chan_occupancy = c.c_occ;
        chan_hwm = c.c_hwm;
        chan_hwm_round = c.c_hwm_round;
        chan_protocols = c.c_protocols;
      })
    (List.sort String.compare sink.channel_names)

let occupancy_timeline channel =
  with_sink @@ fun sink ->
  match Hashtbl.find_opt sink.channels channel with
  | None -> []
  | Some c -> List.rev c.c_timeline

(* The earliest recorded token that crossed [channel] in [round] —
   what a conformance divergence report asks for. *)
let token_at ~channel ~round =
  List.find_map
    (fun t ->
      if String.equal t.prov.token_channel channel && t.prov.token_round = round
      then Some t.prov
      else None)
    (tokens ())

(* --- exports -------------------------------------------------------- *)

let provenance_json p =
  Json.Obj
    [
      ("id", Json.Int p.token_id);
      ("channel", Json.String p.token_channel);
      ("src", Json.String p.token_src);
      ("src_firing", Json.Int p.token_src_firing);
      ("dst", Json.String p.token_dst);
      ("round", Json.Int p.token_round);
      ("protocols", Json.List (List.map (fun s -> Json.String s) p.token_protocols));
    ]

(* Chrome trace flow events: a "s"(tart) at production, a "f"(inish,
   binding point "e"nclosing) at consumption, bound by (cat, id).
   Unconsumed tokens export only their start — Perfetto renders them
   as dangling arrows, which is exactly what an unconsumed token is. *)
let flow_events ?(pid = 1) () =
  List.concat_map
    (fun t ->
      let base ph ts =
        [
          ("name", Json.String t.prov.token_channel);
          ("cat", Json.String "token");
          ("ph", Json.String ph);
          ("id", Json.Int t.prov.token_id);
          ("ts", Json.Float ts);
          ("pid", Json.Int pid);
          ("tid", Json.Int 1);
        ]
      in
      let start =
        Json.Obj
          (base "s" t.produced_us
          @ [ ("args", provenance_json t.prov) ])
      in
      if Float.is_nan t.consumed_us then [ start ]
      else
        [
          start;
          Json.Obj (base "f" t.consumed_us @ [ ("bp", Json.String "e") ]);
        ])
    (tokens ())

let channel_json (s : channel_stat) =
  Json.Obj
    [
      ("channel", Json.String s.chan_name);
      ("produced", Json.Int s.chan_produced);
      ("consumed", Json.Int s.chan_consumed);
      ("occupancy", Json.Int s.chan_occupancy);
      ("high_water", Json.Int s.chan_hwm);
      ("high_water_round", Json.Int s.chan_hwm_round);
      ( "protocols",
        Json.List (List.map (fun p -> Json.String p) s.chan_protocols) );
    ]

let to_json () =
  let chans = channels () in
  Json.Obj
    [
      ("channels", Json.List (List.map channel_json chans));
      ( "timelines",
        Json.Obj
          (List.map
             (fun s ->
               ( s.chan_name,
                 Json.List
                   (List.map
                      (fun (ts, occ) -> Json.List [ Json.Float ts; Json.Int occ ])
                      (occupancy_timeline s.chan_name)) ))
             chans) );
      ("flowEvents", Json.List (flow_events ()));
      ("droppedTokens", Json.Int (dropped ()));
    ]

let quote_dot s =
  "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""

(* Causal flow graph: blocks as nodes, one edge per (producer,
   consumer, channel) with the token count as label.  Tokens whose
   consumer is unknown flow into a synthetic "?" sink. *)
let flow_dot () =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun t ->
      let dst = if t.prov.token_dst = "" then "?" else t.prov.token_dst in
      let key = (t.prov.token_src, dst, t.prov.token_channel, t.prov.token_protocols) in
      match Hashtbl.find_opt tbl key with
      | Some n -> Hashtbl.replace tbl key (n + 1)
      | None ->
          Hashtbl.replace tbl key 1;
          order := key :: !order)
    (tokens ());
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph token_flow {\n  rankdir=LR;\n  node [shape=box];\n";
  List.iter
    (fun ((src, dst, channel, protocols) as key) ->
      let n = Hashtbl.find tbl key in
      let label =
        Printf.sprintf "%s%s ×%d" channel
          (match protocols with [] -> "" | l -> " [" ^ String.concat "," l ^ "]")
          n
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [label=%s];\n" (quote_dot src) (quote_dot dst)
           (quote_dot label)))
    (List.rev !order);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
