(* Minimal JSON tree, serializer and parser, enough for Chrome
   trace-event files, metrics snapshots and the BENCH_*.json bench
   baselines that `umlfront bench-diff` reads back.  The repo
   deliberately has no third-party JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.6f" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  add buf v;
  Buffer.contents buf

(* Accessors used by tests and bench-diff to walk a tree. *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let items = function List l -> l | _ -> []

let number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Bool _ | String _ | List _ | Obj _ -> None

(* --- parsing -------------------------------------------------------- *)

(* Recursive-descent parser over the whole JSON grammar (numbers are
   parsed as [Int] when they carry no fraction/exponent and fit, else
   [Float]; \uXXXX escapes below 0x80 decode to the byte, others keep
   a '?' placeholder — the tool never emits them).  Errors carry the
   byte offset, which is enough to debug a hand-edited baseline. *)

exception Parse_error of { offset : int; message : string }

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail message = raise (Parse_error { offset = !pos; message }) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail (Printf.sprintf "expected %C, found %C" c d)
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      value)
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape"
            else
              let e = s.[!pos] in
              advance ();
              match e with
              | '"' | '\\' | '/' ->
                  Buffer.add_char buf e;
                  loop ()
              | 'n' ->
                  Buffer.add_char buf '\n';
                  loop ()
              | 'r' ->
                  Buffer.add_char buf '\r';
                  loop ()
              | 't' ->
                  Buffer.add_char buf '\t';
                  loop ()
              | 'b' ->
                  Buffer.add_char buf '\b';
                  loop ()
              | 'f' ->
                  Buffer.add_char buf '\012';
                  loop ()
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  (match int_of_string_opt ("0x" ^ hex) with
                  | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
                  | Some _ -> Buffer.add_char buf '?'
                  | None -> fail "invalid \\u escape");
                  loop ()
              | _ -> fail (Printf.sprintf "invalid escape \\%c" e))
        | c ->
            Buffer.add_char buf c;
            loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let fractional = ref false in
    let consume () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') -> advance (); true
      | Some ('.' | 'e' | 'E') ->
          fractional := true;
          advance ();
          true
      | _ -> false
    in
    while consume () do
      ()
    done;
    let text = String.sub s start (!pos - start) in
    if not !fractional then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "invalid number %S" text))
    else
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "invalid number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}' in object"
          in
          Obj (fields [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']' in array"
          in
          List (elements [])
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage after JSON value";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error { offset; message } ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" offset message)
