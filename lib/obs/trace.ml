(* Flow-wide spans with a process-global sink serializing to Chrome
   trace-event JSON (chrome://tracing / Perfetto "Complete" events).

   The sink is off by default; [with_span] costs one branch when it is
   disabled, so instrumentation can stay in hot paths permanently.
   Timestamps are microseconds relative to [enable ()], wall clock.
   Each span also records the bytes allocated on the OCaml heap while
   it was open ("alloc_bytes" arg), which is what "where does the time
   go" usually turns into on a 10k-block model.

   The sink is shared by every domain: instrumented passes now run on
   Umlfront_parallel worker domains, so all mutable sink state is
   guarded by one mutex.  Each event records the domain that emitted it
   and exports it as the Chrome-trace "tid", which gives per-domain
   lanes in Perfetto for free. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char; (* 'X' complete, 'i' instant *)
  ev_ts : float; (* microseconds since enable *)
  ev_dur : float; (* microseconds; 0 for instants *)
  ev_tid : int; (* 1 + emitting domain id; the main domain is tid 1 *)
  ev_args : (string * Json.t) list;
}

type sink = {
  mutable on : bool;
  mutable t0 : float; (* Unix time at enable, seconds *)
  mutable events : event list; (* newest first *)
  mutable stack : string list; (* open span names, innermost first *)
}

let sink = { on = false; t0 = 0.0; events = []; stack = [] }

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let tid () = 1 + (Domain.self () :> int)

let now_us () = (Unix.gettimeofday () -. sink.t0) *. 1e6

let enabled () = sink.on

let reset () =
  locked @@ fun () ->
  sink.events <- [];
  sink.stack <- []

let enable () =
  if not sink.on then (
    sink.on <- true;
    sink.t0 <- Unix.gettimeofday ());
  reset ()

let disable () = sink.on <- false

let depth () = locked (fun () -> List.length sink.stack)

let events () = locked (fun () -> List.rev sink.events)

let record ev = locked (fun () -> sink.events <- ev :: sink.events)

let instant ?(cat = "event") ?(args = []) name =
  if sink.on then
    record
      { ev_name = name; ev_cat = cat; ev_ph = 'i'; ev_ts = now_us (); ev_dur = 0.0;
        ev_tid = tid (); ev_args = args }

(* [args] is a thunk so that argument computation (block counts, etc.)
   costs nothing when the sink is disabled.  The body runs under
   [Fun.protect]: a raising phase still pops the span stack and records
   its Complete event (with an "error" arg), so the exported Chrome
   trace stays well-formed — no dangling open span, no depth drift.
   A raising [args] thunk must not leak the span either, so the pop is
   itself protected. *)
let with_span ?(cat = "span") ?args name f =
  if not sink.on then f ()
  else begin
    let ts = now_us () in
    let alloc0 = Gc.allocated_bytes () in
    locked (fun () -> sink.stack <- name :: sink.stack);
    let error = ref None in
    let close () =
      let extra =
        match !error with
        | Some e -> [ ("error", Json.String (Printexc.to_string e)) ]
        | None -> []
      in
      let alloc = Gc.allocated_bytes () -. alloc0 in
      Fun.protect
        ~finally:(fun () ->
          locked (fun () ->
              sink.stack <- (match sink.stack with _ :: rest -> rest | [] -> [])))
        (fun () ->
          let computed = match args with Some g -> g () | None -> [] in
          record
            {
              ev_name = name;
              ev_cat = cat;
              ev_ph = 'X';
              ev_ts = ts;
              ev_dur = now_us () -. ts;
              ev_tid = tid ();
              ev_args = (("alloc_bytes", Json.Float alloc) :: computed) @ extra;
            })
    in
    Fun.protect ~finally:close (fun () ->
        try f ()
        with e ->
          error := Some e;
          raise e)
  end

(* Duration of the most recent complete span with [name], in
   microseconds.  Used by the bench harness to pull per-phase timings
   back out of the sink. *)
let last_dur_us name =
  let rec find = function
    | [] -> None
    | ev :: rest ->
        if ev.ev_ph = 'X' && String.equal ev.ev_name name then Some ev.ev_dur else find rest
  in
  locked (fun () -> find sink.events)

let event_json ev =
  let base =
    [
      ("name", Json.String ev.ev_name);
      ("cat", Json.String ev.ev_cat);
      ("ph", Json.String (String.make 1 ev.ev_ph));
      ("ts", Json.Float ev.ev_ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.ev_tid);
    ]
  in
  let dur = if ev.ev_ph = 'X' then [ ("dur", Json.Float ev.ev_dur) ] else [] in
  let args = match ev.ev_args with [] -> [] | l -> [ ("args", Json.Obj l) ] in
  Json.Obj (base @ dur @ args)

(* Chrome trace "object format": the required traceEvents array plus
   otherData carrying a metrics snapshot, which Perfetto ignores and
   humans (and the bench harness) read. *)
let to_json ?(metrics = []) () =
  let sorted =
    List.sort (fun a b -> Float.compare a.ev_ts b.ev_ts)
      (locked (fun () -> List.rev sink.events))
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json sorted));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("tool", Json.String "umlfront");
            ("metrics", Metrics.to_json metrics);
          ] );
    ]

let to_string ?metrics () = Json.to_string (to_json ?metrics ())

let write ?metrics path =
  let oc = open_out path in
  output_string oc (to_string ?metrics ());
  output_char oc '\n';
  close_out oc
