(* Flow-wide spans serializing to Chrome trace-event JSON
   (chrome://tracing / Perfetto "Complete" events).

   Spans land in a [sink].  The process-global [default] sink keeps the
   historical behaviour; [Context] (see context.ml) swaps the
   domain-local *current* sink so concurrent flows each get their own
   isolated span buffer.  The sink is off by default; [with_span] costs
   one branch when it is disabled, so instrumentation can stay in hot
   paths permanently.  Timestamps are microseconds relative to
   [enable ()], wall clock.  Each span also records the bytes allocated
   on the OCaml heap while it was open ("alloc_bytes" arg), which is
   what "where does the time go" usually turns into on a 10k-block
   model.

   Every event carries a unique span id and the id of its parent span
   (the innermost span open *on the same domain* when it started), so
   consumers can rebuild the full trace tree instead of guessing from
   timestamps.  A sink may be shared by every domain: instrumented
   passes run on Umlfront_parallel worker domains, so all mutable sink
   state is guarded by a per-sink mutex, and the open-span stack is
   kept per domain.  Each event records the emitting domain and exports
   it as the Chrome-trace "tid", which gives per-domain lanes in
   Perfetto for free. *)

type event = {
  ev_id : int; (* unique span id, process-wide *)
  ev_parent : int; (* id of the enclosing span; -1 for roots *)
  ev_name : string;
  ev_cat : string;
  ev_ph : char; (* 'X' complete, 'i' instant *)
  ev_ts : float; (* microseconds since enable *)
  ev_dur : float; (* microseconds; 0 for instants *)
  ev_tid : int; (* 1 + emitting domain id; the main domain is tid 1 *)
  ev_args : (string * Json.t) list;
}

type sink = {
  mutable on : bool;
  mutable t0 : float; (* Unix time at enable, seconds *)
  mutable events : event list; (* newest first *)
  stacks : (int, int list) Hashtbl.t; (* domain id -> open span ids, innermost first *)
  mutable root_parent : int; (* parent id for otherwise-parentless spans; -1 at top level *)
  mutable process_name : string option; (* Chrome process_name metadata, if set *)
  mutable n_buffered : int;
  mutable buffer_hwm : int; (* high-water mark of buffered events, sink lifetime *)
  mutable nesting_hwm : int; (* high-water mark of span nesting depth *)
  lock : Mutex.t;
}

(* Span ids are drawn from one process-wide counter so events merged
   across sinks (per-domain forks, see Context.merge) keep unique ids
   and intact parent links. *)
let next_id = Atomic.make 1

let fresh_id () = Atomic.fetch_and_add next_id 1

let create ?(on = false) () =
  {
    on;
    t0 = (if on then Unix.gettimeofday () else 0.0);
    events = [];
    stacks = Hashtbl.create 8;
    root_parent = -1;
    process_name = None;
    n_buffered = 0;
    buffer_hwm = 0;
    nesting_hwm = 0;
    lock = Mutex.create ();
  }

(* The process-global sink: what every call lands in unless a Context
   has installed a different current sink on this domain. *)
let default = create ()

let current_key = Domain.DLS.new_key (fun () -> default)

let current () = Domain.DLS.get current_key

let set_current s = Domain.DLS.set current_key s

let locked s f =
  Mutex.lock s.lock;
  match f () with
  | v ->
      Mutex.unlock s.lock;
      v
  | exception e ->
      Mutex.unlock s.lock;
      raise e

let tid () = 1 + (Domain.self () :> int)

let now_us_in s = (Unix.gettimeofday () -. s.t0) *. 1e6

let now_us () = now_us_in (current ())

let enabled () = (current ()).on

let reset () =
  let s = current () in
  locked s @@ fun () ->
  s.events <- [];
  s.n_buffered <- 0;
  s.process_name <- None;
  Hashtbl.reset s.stacks

let enable () =
  let s = current () in
  if not s.on then (
    s.on <- true;
    s.t0 <- Unix.gettimeofday ());
  reset ()

let disable () = (current ()).on <- false

let set_process_name name = (current ()).process_name <- Some name

let stack_of s =
  match Hashtbl.find_opt s.stacks (Domain.self () :> int) with
  | Some st -> st
  | None -> []

let set_stack s st = Hashtbl.replace s.stacks (Domain.self () :> int) st

let depth () =
  let s = current () in
  locked s (fun () -> List.length (stack_of s))

(* Innermost open span id on this domain, or the sink's inherited root:
   the parent a new child span (or a forked child sink) should attach
   under. *)
let innermost () =
  let s = current () in
  locked s (fun () -> match stack_of s with id :: _ -> id | [] -> s.root_parent)

let events_in s = locked s (fun () -> List.rev s.events)

let events () = events_in (current ())

let buffer_hwm () = (current ()).buffer_hwm

let nesting_hwm () = (current ()).nesting_hwm

let record_in s ev =
  locked s (fun () ->
      s.events <- ev :: s.events;
      s.n_buffered <- s.n_buffered + 1;
      if s.n_buffered > s.buffer_hwm then s.buffer_hwm <- s.n_buffered)

let record ev = record_in (current ()) ev

let instant ?(cat = "event") ?(args = []) name =
  let s = current () in
  if s.on then
    let parent = locked s (fun () -> match stack_of s with id :: _ -> id | [] -> s.root_parent) in
    record_in s
      { ev_id = fresh_id (); ev_parent = parent; ev_name = name; ev_cat = cat;
        ev_ph = 'i'; ev_ts = now_us_in s; ev_dur = 0.0; ev_tid = tid (); ev_args = args }

(* [args] is a thunk so that argument computation (block counts, etc.)
   costs nothing when the sink is disabled.  The body runs under
   [Fun.protect]: a raising phase still pops the span stack and records
   its Complete event (with an "error" arg), so the exported Chrome
   trace stays well-formed — no dangling open span, no depth drift.
   A raising [args] thunk must not leak the span either, so the pop is
   itself protected.  The sink is captured at open so a context switch
   inside [f] cannot split a span across two sinks. *)
let with_span ?(cat = "span") ?args name f =
  let s = current () in
  if not s.on then f ()
  else begin
    let ts = now_us_in s in
    let alloc0 = Gc.allocated_bytes () in
    let id = fresh_id () in
    let parent =
      locked s (fun () ->
          let st = stack_of s in
          let parent = match st with p :: _ -> p | [] -> s.root_parent in
          set_stack s (id :: st);
          let d = List.length st + 1 in
          if d > s.nesting_hwm then s.nesting_hwm <- d;
          parent)
    in
    let error = ref None in
    let close () =
      let extra =
        match !error with
        | Some e -> [ ("error", Json.String (Printexc.to_string e)) ]
        | None -> []
      in
      let alloc = Gc.allocated_bytes () -. alloc0 in
      Fun.protect
        ~finally:(fun () ->
          locked s (fun () ->
              set_stack s (match stack_of s with _ :: rest -> rest | [] -> [])))
        (fun () ->
          let computed = match args with Some g -> g () | None -> [] in
          record_in s
            {
              ev_id = id;
              ev_parent = parent;
              ev_name = name;
              ev_cat = cat;
              ev_ph = 'X';
              ev_ts = ts;
              ev_dur = now_us_in s -. ts;
              ev_tid = tid ();
              ev_args = (("alloc_bytes", Json.Float alloc) :: computed) @ extra;
            })
    in
    Fun.protect ~finally:close (fun () ->
        try f ()
        with e ->
          error := Some e;
          raise e)
  end

(* A child sink for one worker domain of a pool batch: shares the
   parent's clock and on/off switch, and roots otherwise-parentless
   spans under the span that was open where the batch was submitted, so
   merged events form one tree. *)
let fork ~root_parent parent =
  let child = create () in
  child.on <- parent.on;
  child.t0 <- parent.t0;
  child.root_parent <- root_parent;
  child

let event_order a b =
  match Float.compare a.ev_ts b.ev_ts with 0 -> compare a.ev_id b.ev_id | c -> c

(* Merge child sinks' events into [into].  Physically-equal sinks and
   aliased buffers are skipped, so absorbing is idempotent per child.
   The combined buffer is re-sorted by (ts, id), which makes the merge
   independent of the order children are given in. *)
let absorb ~into children =
  let fresh =
    List.concat_map
      (fun c -> if c == into then [] else locked c (fun () -> c.events))
      children
  in
  if fresh <> [] then
    locked into (fun () ->
        into.events <- List.sort (fun a b -> event_order b a) (fresh @ into.events);
        into.n_buffered <- into.n_buffered + List.length fresh;
        if into.n_buffered > into.buffer_hwm then into.buffer_hwm <- into.n_buffered);
  List.iter
    (fun c ->
      if c != into then begin
        if c.nesting_hwm > into.nesting_hwm then into.nesting_hwm <- c.nesting_hwm
      end)
    children

(* Duration of the most recent complete span with [name], in
   microseconds.  Used by the bench harness to pull per-phase timings
   back out of the sink. *)
let last_dur_us name =
  let s = current () in
  let rec find = function
    | [] -> None
    | ev :: rest ->
        if ev.ev_ph = 'X' && String.equal ev.ev_name name then Some ev.ev_dur else find rest
  in
  locked s (fun () -> find s.events)

let event_json ev =
  let base =
    [
      ("name", Json.String ev.ev_name);
      ("cat", Json.String ev.ev_cat);
      ("ph", Json.String (String.make 1 ev.ev_ph));
      ("ts", Json.Float ev.ev_ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.ev_tid);
    ]
  in
  let dur = if ev.ev_ph = 'X' then [ ("dur", Json.Float ev.ev_dur) ] else [] in
  let args = match ev.ev_args with [] -> [] | l -> [ ("args", Json.Obj l) ] in
  Json.Obj (base @ dur @ args)

(* Chrome metadata events (ph "M") labeling the process track with the
   model name and each domain track with its domain id.  Only emitted
   when there is something to label — a process name was set, or spans
   ran on more than the main domain — so single-domain traces without a
   model name keep exactly their span events. *)
let metadata_json s sorted =
  let tids = List.sort_uniq compare (List.map (fun ev -> ev.ev_tid) sorted) in
  let meta name tid args =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", Json.Obj args);
      ]
  in
  let process =
    match s.process_name with
    | Some n -> [ meta "process_name" 1 [ ("name", Json.String n) ] ]
    | None -> []
  in
  let multi_domain = match tids with [] | [ 1 ] -> false | _ -> true in
  let threads =
    if process = [] && not multi_domain then []
    else
      List.map
        (fun tid ->
          let label = if tid = 1 then "main" else Printf.sprintf "domain %d" (tid - 1) in
          meta "thread_name" tid [ ("name", Json.String label) ])
        tids
  in
  process @ threads

(* Chrome trace "object format": the required traceEvents array plus
   otherData carrying a metrics snapshot, which Perfetto ignores and
   humans (and the bench harness) read. *)
let to_json ?(metrics = []) () =
  let s = current () in
  let sorted = List.sort event_order (locked s (fun () -> List.rev s.events)) in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (metadata_json s sorted @ List.map event_json sorted) );
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("tool", Json.String "umlfront");
            ("metrics", Metrics.to_json metrics);
          ] );
    ]

let to_string ?metrics () = Json.to_string (to_json ?metrics ())

let write ?metrics path =
  let oc = open_out path in
  output_string oc (to_string ?metrics ());
  output_char oc '\n';
  close_out oc
