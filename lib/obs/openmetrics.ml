(* OpenMetrics / Prometheus text exposition of a metrics snapshot.

   Counters render as `<name>_total`, gauges as plain samples,
   histograms as summaries (quantile series + _sum/_count), all under
   a `umlfront_` prefix with registry names sanitized to the metric
   charset ([a-zA-Z0-9_:]).  The output ends with `# EOF` as the
   OpenMetrics spec requires, so it can be served verbatim to a
   scraper or diffed in tests. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let metric_name s = "umlfront_" ^ sanitize s

(* OpenMetrics floats: finite decimal, NaN spelled "NaN". *)
let value v =
  if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render_stat buf (s : Metrics.stat) =
  let name = metric_name s.Metrics.s_name in
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match s.Metrics.s_kind with
  | "counter" ->
      line "# TYPE %s counter\n" name;
      line "%s_total %d\n" name s.Metrics.s_count
  | "gauge" ->
      line "# TYPE %s gauge\n" name;
      line "%s %s\n" name (value s.Metrics.s_value)
  | _ ->
      (* histogram: exported as a summary — the registry keeps exact
         count plus sampled quantiles, not cumulative buckets. *)
      line "# TYPE %s summary\n" name;
      List.iter
        (fun (q, v) -> line "%s{quantile=\"%s\"} %s\n" name q (value v))
        [
          ("0.5", s.Metrics.s_p50); ("0.95", s.Metrics.s_p95); ("0.99", s.Metrics.s_p99);
        ];
      line "%s_sum %s\n" name
        (value (s.Metrics.s_value *. float_of_int s.Metrics.s_count));
      line "%s_count %d\n" name s.Metrics.s_count

(* Optional sink-health series appended after the registry snapshot:
   journal ring drops (a counter — drops only ever grow) and the span
   buffer / nesting high-water marks (gauges).  Callers that only have
   a metrics snapshot (the historical [render stats] shape) get exactly
   the old exposition; `umlfront stats --format openmetrics` passes the
   current context's sink health alongside. *)
let render ?journal_dropped ?span_buffer_hwm ?span_nesting_hwm stats =
  let buf = Buffer.create 1024 in
  List.iter (render_stat buf) stats;
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Option.iter
    (fun n ->
      line "# TYPE umlfront_journal_dropped counter\n";
      line "umlfront_journal_dropped_total %d\n" n)
    journal_dropped;
  Option.iter
    (fun n ->
      line "# TYPE umlfront_trace_span_buffer_hwm gauge\n";
      line "umlfront_trace_span_buffer_hwm %d\n" n)
    span_buffer_hwm;
  Option.iter
    (fun n ->
      line "# TYPE umlfront_trace_span_nesting_hwm gauge\n";
      line "umlfront_trace_span_nesting_hwm %d\n" n)
    span_nesting_hwm;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
