(* OpenMetrics / Prometheus text exposition of a metrics snapshot.

   Counters render as `<name>_total`, gauges as plain samples,
   histograms as summaries (quantile series + _sum/_count), all under
   a `umlfront_` prefix with registry names sanitized to the metric
   charset ([a-zA-Z0-9_:]).  The output ends with `# EOF` as the
   OpenMetrics spec requires, so it can be served verbatim to a
   scraper or diffed in tests.

   A registry name may carry a label block built by {!labeled}:
   `serve.requests{endpoint="/api/lint",status="200"}`.  Such names
   render as proper labeled series of one family — the base name is
   sanitized, the label block passes through, and the `# TYPE` line is
   emitted once per family (the snapshot is sorted, so a family's
   points are adjacent).  Names without a label block follow exactly
   the historical path, byte for byte (pinned by the
   openmetrics.unlabeled.txt golden). *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let metric_name s = "umlfront_" ^ sanitize s

(* --- labels ---------------------------------------------------------- *)

(* Split `base{labels}` into the base name and the raw label block.
   Anything not shaped like a trailing `{...}` is treated as a plain
   (label-less) name and left to [sanitize]. *)
let split_labels name =
  let n = String.length name in
  match String.index_opt name '{' with
  | Some i when n > i + 1 && name.[n - 1] = '}' ->
      (String.sub name 0 i, Some (String.sub name (i + 1) (n - i - 2)))
  | Some _ | None -> (name, None)

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* [labeled "serve.requests" [("endpoint", "/api/lint")]] is the
   registry-name spelling of a labeled series; record into it with the
   ordinary {!Metrics} calls.  Label names are sanitized, values
   escaped per the OpenMetrics text format. *)
let labeled base labels =
  match labels with
  | [] -> base
  | _ ->
      base ^ "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> sanitize k ^ "=\"" ^ escape_label_value v ^ "\"")
             labels)
      ^ "}"

(* OpenMetrics floats: finite decimal, NaN spelled "NaN". *)
let value v =
  if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render_stat buf typed (s : Metrics.stat) =
  let base, labels = split_labels s.Metrics.s_name in
  let name = metric_name base in
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let type_line kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      line "# TYPE %s %s\n" name kind
    end
  in
  (* `suffix` goes before the label block (`_total`, `_sum`, ...);
     `extra` is spliced into it (the summary quantile label). *)
  let series ?(suffix = "") ?extra () =
    match (labels, extra) with
    | None, None -> name ^ suffix
    | None, Some e -> Printf.sprintf "%s%s{%s}" name suffix e
    | Some l, None -> Printf.sprintf "%s%s{%s}" name suffix l
    | Some l, Some e -> Printf.sprintf "%s%s{%s,%s}" name suffix l e
  in
  match s.Metrics.s_kind with
  | "counter" ->
      type_line "counter";
      line "%s %d\n" (series ~suffix:"_total" ()) s.Metrics.s_count
  | "gauge" ->
      type_line "gauge";
      line "%s %s\n" (series ()) (value s.Metrics.s_value)
  | _ ->
      (* histogram: exported as a summary — the registry keeps exact
         count plus sampled quantiles, not cumulative buckets. *)
      type_line "summary";
      List.iter
        (fun (q, v) ->
          line "%s %s\n"
            (series ~extra:(Printf.sprintf "quantile=\"%s\"" q) ())
            (value v))
        [
          ("0.5", s.Metrics.s_p50); ("0.95", s.Metrics.s_p95); ("0.99", s.Metrics.s_p99);
        ];
      line "%s %s\n" (series ~suffix:"_sum" ())
        (value (s.Metrics.s_value *. float_of_int s.Metrics.s_count));
      line "%s %d\n" (series ~suffix:"_count" ()) s.Metrics.s_count

(* Optional sink-health series appended after the registry snapshot:
   journal ring drops (a counter — drops only ever grow) and the span
   buffer / nesting high-water marks (gauges).  Callers that only have
   a metrics snapshot (the historical [render stats] shape) get exactly
   the old exposition; `umlfront stats --format openmetrics` passes the
   current context's sink health alongside. *)
let render ?journal_dropped ?span_buffer_hwm ?span_nesting_hwm stats =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  List.iter (render_stat buf typed) stats;
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Option.iter
    (fun n ->
      line "# TYPE umlfront_journal_dropped counter\n";
      line "umlfront_journal_dropped_total %d\n" n)
    journal_dropped;
  Option.iter
    (fun n ->
      line "# TYPE umlfront_trace_span_buffer_hwm gauge\n";
      line "umlfront_trace_span_buffer_hwm %d\n" n)
    span_buffer_hwm;
  Option.iter
    (fun n ->
      line "# TYPE umlfront_trace_span_nesting_hwm gauge\n";
      line "umlfront_trace_span_nesting_hwm %d\n" n)
    span_nesting_hwm;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
