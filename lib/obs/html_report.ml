(* The single-file HTML run report: one self-contained artifact
   carrying a run's whole observability story — the parented span tree,
   the metrics table, per-channel token occupancy timelines (inline
   SVG) and the journal tail.  No external scripts, stylesheets or
   fonts: the file works from a mail attachment or a CI artifact
   browser, which is the point. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {css|
  body { font-family: -apple-system, "Segoe UI", sans-serif; margin: 2rem auto;
         max-width: 70rem; color: #1a1a2e; padding: 0 1rem; }
  h1 { font-size: 1.4rem; border-bottom: 2px solid #4361ee; padding-bottom: .3rem; }
  h2 { font-size: 1.1rem; margin-top: 2rem; color: #3a0ca3; }
  pre.tree { background: #f6f8fa; border: 1px solid #d0d7de; border-radius: 6px;
             padding: 1rem; overflow-x: auto; font-size: .85rem; line-height: 1.45; }
  table { border-collapse: collapse; font-size: .85rem; width: 100%; }
  th, td { border: 1px solid #d0d7de; padding: .25rem .6rem; text-align: left; }
  th { background: #f6f8fa; }
  td.num { text-align: right; font-variant-numeric: tabular-nums; }
  .meta { color: #6e7781; font-size: .8rem; }
  svg.occ { background: #f6f8fa; border: 1px solid #d0d7de; border-radius: 4px; }
  .chan { margin-bottom: 1rem; }
|css}

let cell v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" v

let metrics_table stats =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "<table><tr><th>metric</th><th>kind</th><th>count</th><th>value/mean</th>\
     <th>p50</th><th>p95</th><th>p99</th></tr>\n";
  List.iter
    (fun (s : Metrics.stat) ->
      Buffer.add_string buf
        (Printf.sprintf
           "<tr><td>%s</td><td>%s</td><td class=num>%d</td><td class=num>%s</td>\
            <td class=num>%s</td><td class=num>%s</td><td class=num>%s</td></tr>\n"
           (escape s.Metrics.s_name) s.Metrics.s_kind s.Metrics.s_count
           (cell s.Metrics.s_value) (cell s.Metrics.s_p50) (cell s.Metrics.s_p95)
           (cell s.Metrics.s_p99)))
    stats;
  Buffer.add_string buf "</table>\n";
  Buffer.contents buf

(* A channel's occupancy timeline as an SVG step line, occupancy up,
   time rightwards, scaled into a fixed 640x80 box. *)
let occupancy_svg points =
  match points with
  | [] | [ _ ] -> "<span class=meta>no occupancy samples</span>"
  | points ->
      let w = 640.0 and h = 80.0 and pad = 4.0 in
      let ts = List.map fst points in
      let t0 = List.fold_left Float.min (List.hd ts) ts in
      let t1 = List.fold_left Float.max (List.hd ts) ts in
      let occ_max =
        float_of_int (List.fold_left (fun m (_, o) -> max m o) 1 points)
      in
      let span = if t1 -. t0 <= 0.0 then 1.0 else t1 -. t0 in
      let x t = pad +. ((t -. t0) /. span *. (w -. (2.0 *. pad))) in
      let y o =
        h -. pad -. (float_of_int o /. occ_max *. (h -. (2.0 *. pad)))
      in
      let buf = Buffer.create 512 in
      let started = ref false in
      let last_y = ref 0.0 in
      List.iter
        (fun (t, o) ->
          let px = x t and py = y o in
          if !started then
            (* step: horizontal to the new time, then vertical *)
            Buffer.add_string buf (Printf.sprintf "L%.1f,%.1f L%.1f,%.1f " px !last_y px py)
          else begin
            Buffer.add_string buf (Printf.sprintf "M%.1f,%.1f " px py);
            started := true
          end;
          last_y := py)
        points;
      Printf.sprintf
        "<svg class=occ width=%.0f height=%.0f viewBox=\"0 0 %.0f %.0f\">\
         <path d=\"%s\" fill=none stroke=\"#4361ee\" stroke-width=1.5/></svg>"
        w h w h (Buffer.contents buf)

let channels_section channels timeline =
  if channels = [] then "<p class=meta>no token telemetry recorded</p>"
  else begin
    let buf = Buffer.create 2048 in
    Buffer.add_string buf
      "<table><tr><th>channel</th><th>produced</th><th>consumed</th>\
       <th>occupancy</th><th>high water</th><th>hwm round</th><th>protocols</th></tr>\n";
    List.iter
      (fun (c : Telemetry.channel_stat) ->
        Buffer.add_string buf
          (Printf.sprintf
             "<tr><td>%s</td><td class=num>%d</td><td class=num>%d</td>\
              <td class=num>%d</td><td class=num>%d</td><td class=num>%d</td><td>%s</td></tr>\n"
             (escape c.Telemetry.chan_name) c.Telemetry.chan_produced
             c.Telemetry.chan_consumed c.Telemetry.chan_occupancy c.Telemetry.chan_hwm
             c.Telemetry.chan_hwm_round
             (escape (String.concat ", " c.Telemetry.chan_protocols))))
      channels;
    Buffer.add_string buf "</table>\n";
    List.iter
      (fun (c : Telemetry.channel_stat) ->
        Buffer.add_string buf
          (Printf.sprintf "<div class=chan><p class=meta>%s</p>%s</div>\n"
             (escape c.Telemetry.chan_name)
             (occupancy_svg (timeline c.Telemetry.chan_name))))
      channels;
    Buffer.contents buf
  end

let journal_tail ?(limit = 50) entries dropped =
  let n = List.length entries in
  let tail =
    if n <= limit then entries
    else
      List.filteri (fun i _ -> i >= n - limit) entries
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "<p class=meta>%d entries (%d dropped), showing the last %d</p>\n" n
       dropped (List.length tail));
  Buffer.add_string buf "<table><tr><th>seq</th><th>ts (us)</th><th>kind</th><th>fields</th></tr>\n";
  List.iter
    (fun (e : Journal.entry) ->
      let fields =
        match e.Journal.j_fields with
        | [] -> ""
        | l -> Json.to_string (Json.Obj l)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "<tr><td class=num>%d</td><td class=num>%.0f</td><td>%s</td><td>%s</td></tr>\n"
           e.Journal.j_seq e.Journal.j_ts_us (escape e.Journal.j_kind) (escape fields)))
    tail;
  Buffer.add_string buf "</table>\n";
  Buffer.contents buf

let render ~model_name ~events ~stats ~channels ~timeline ~journal ~dropped () =
  let span_section =
    match events with
    | [] -> "<p class=meta>no spans recorded (tracing was off)</p>"
    | evs -> "<pre class=tree>" ^ escape (Span_tree.render ~timings:true evs) ^ "</pre>"
  in
  String.concat ""
    [
      "<!DOCTYPE html>\n<html lang=en>\n<head>\n<meta charset=utf-8>\n<title>";
      escape model_name;
      " — umlfront run report</title>\n<style>";
      style;
      "</style>\n</head>\n<body>\n<h1>";
      escape model_name;
      " — run report</h1>\n<p class=meta>generated by umlfront; self-contained, share at will</p>\n";
      "<h2>Span tree</h2>\n";
      span_section;
      "\n<h2>Metrics</h2>\n";
      metrics_table stats;
      "\n<h2>Channel occupancy</h2>\n";
      channels_section channels timeline;
      "\n<h2>Journal tail</h2>\n";
      journal_tail journal dropped;
      "</body>\n</html>\n";
    ]
