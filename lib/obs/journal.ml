(* The run journal: an always-on, bounded, process-global event stream.

   Every notable runtime fact — flow phase boundaries, structured
   events, executor rounds, channel high-water marks, deadlock victims,
   stall reports — lands here as one entry, cheap enough to leave
   recording unconditionally: an append is a mutex plus an array write
   into a fixed ring.  When the ring wraps, the oldest entries are
   dropped and counted, so the journal of a crashed ten-minute run is
   still the *last* few thousand events, which is the end you want to
   read.

   Serialization is JSON Lines: one entry per line, grep-able, and
   `umlfront journal MODEL` replays/filters it from the CLI. *)

type entry = {
  j_seq : int; (* monotonically increasing, survives ring wrap *)
  j_ts_us : float; (* microseconds since process start (journal init) *)
  j_kind : string; (* dotted event name, e.g. "exec.round" *)
  j_fields : (string * Json.t) list;
}

let default_capacity = 4096

type sink = {
  mutable ring : entry option array;
  mutable next_seq : int;
  mutable dropped : int;
  t0 : float; (* Unix time at module init, seconds *)
}

let sink =
  {
    ring = Array.make default_capacity None;
    next_seq = 0;
    dropped = 0;
    t0 = Unix.gettimeofday ();
  }

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let now_us () = (Unix.gettimeofday () -. sink.t0) *. 1e6

let capacity () = locked (fun () -> Array.length sink.ring)

let reset () =
  locked @@ fun () ->
  Array.fill sink.ring 0 (Array.length sink.ring) None;
  sink.next_seq <- 0;
  sink.dropped <- 0

(* Resizing clears: the ring is bookkeeping, not data to migrate. *)
let set_capacity n =
  if n < 1 then invalid_arg "journal: capacity must be >= 1";
  locked @@ fun () ->
  sink.ring <- Array.make n None;
  sink.next_seq <- 0;
  sink.dropped <- 0

let record ?(fields = []) kind =
  let ts = now_us () in
  locked @@ fun () ->
  let slot = sink.next_seq mod Array.length sink.ring in
  if sink.ring.(slot) <> None then sink.dropped <- sink.dropped + 1;
  sink.ring.(slot) <-
    Some { j_seq = sink.next_seq; j_ts_us = ts; j_kind = kind; j_fields = fields };
  sink.next_seq <- sink.next_seq + 1

let dropped () = locked (fun () -> sink.dropped)

(* Oldest first; the ring is read starting at the slot the next append
   would overwrite. *)
let entries () =
  locked @@ fun () ->
  let cap = Array.length sink.ring in
  let start = sink.next_seq mod cap in
  let rec collect i acc =
    if i = cap then List.rev acc
    else
      match sink.ring.((start + i) mod cap) with
      | Some e -> collect (i + 1) (e :: acc)
      | None -> collect (i + 1) acc
  in
  collect 0 []

let filter ~kind es =
  List.filter
    (fun e ->
      String.equal e.j_kind kind
      || String.starts_with ~prefix:(kind ^ ".") e.j_kind)
    es

let entry_json e =
  Json.Obj
    ([
       ("seq", Json.Int e.j_seq);
       ("ts_us", Json.Float e.j_ts_us);
       ("kind", Json.String e.j_kind);
     ]
    @ match e.j_fields with [] -> [] | l -> [ ("fields", Json.Obj l) ])

let to_jsonl es =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (entry_json e));
      Buffer.add_char buf '\n')
    es;
  Buffer.contents buf

let write ?kind path =
  let es = entries () in
  let es = match kind with Some k -> filter ~kind:k es | None -> es in
  let oc = open_out path in
  output_string oc (to_jsonl es);
  close_out oc
