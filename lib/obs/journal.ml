(* The run journal: an always-on, bounded event stream.

   Every notable runtime fact — flow phase boundaries, structured
   events, executor rounds, channel high-water marks, deadlock victims,
   stall reports — lands here as one entry, cheap enough to leave
   recording unconditionally: an append is a mutex plus an array write
   into a fixed ring.  When the ring wraps, the oldest entries are
   dropped and counted, so the journal of a crashed ten-minute run is
   still the *last* few thousand events, which is the end you want to
   read.

   Entries land in a [sink]; the process-global [default] keeps the
   historical behaviour, and Context swaps the domain-local *current*
   sink so concurrent flows journal independently.

   Serialization is JSON Lines: one entry per line, grep-able, and
   `umlfront journal MODEL` replays/filters it from the CLI. *)

type entry = {
  j_seq : int; (* monotonically increasing, survives ring wrap *)
  j_ts_us : float; (* microseconds since process start (journal init) *)
  j_kind : string; (* dotted event name, e.g. "exec.round" *)
  j_fields : (string * Json.t) list;
}

let default_capacity = 4096

type sink = {
  mutable ring : entry option array;
  mutable next_seq : int;
  mutable dropped : int;
  t0 : float; (* Unix time at sink creation, seconds *)
  lock : Mutex.t;
}

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "journal: capacity must be >= 1";
  {
    ring = Array.make capacity None;
    next_seq = 0;
    dropped = 0;
    t0 = Unix.gettimeofday ();
    lock = Mutex.create ();
  }

let default = create ()

let current_key = Domain.DLS.new_key (fun () -> default)

let current () = Domain.DLS.get current_key

let set_current s = Domain.DLS.set current_key s

let locked s f =
  Mutex.lock s.lock;
  match f () with
  | v ->
      Mutex.unlock s.lock;
      v
  | exception e ->
      Mutex.unlock s.lock;
      raise e

let now_us_in s = (Unix.gettimeofday () -. s.t0) *. 1e6

let capacity () =
  let s = current () in
  locked s (fun () -> Array.length s.ring)

let reset () =
  let s = current () in
  locked s @@ fun () ->
  Array.fill s.ring 0 (Array.length s.ring) None;
  s.next_seq <- 0;
  s.dropped <- 0

(* Resizing clears: the ring is bookkeeping, not data to migrate. *)
let set_capacity n =
  if n < 1 then invalid_arg "journal: capacity must be >= 1";
  let s = current () in
  locked s @@ fun () ->
  s.ring <- Array.make n None;
  s.next_seq <- 0;
  s.dropped <- 0

(* Append directly into [s], bypassing the domain-local current sink —
   what a daemon uses to land access entries in its root journal from
   whichever worker domain handled the request. *)
let record_in s ?(fields = []) kind =
  let ts = now_us_in s in
  locked s @@ fun () ->
  let slot = s.next_seq mod Array.length s.ring in
  if s.ring.(slot) <> None then s.dropped <- s.dropped + 1;
  s.ring.(slot) <-
    Some { j_seq = s.next_seq; j_ts_us = ts; j_kind = kind; j_fields = fields };
  s.next_seq <- s.next_seq + 1

let record ?fields kind = record_in (current ()) ?fields kind

let dropped () =
  let s = current () in
  locked s (fun () -> s.dropped)

(* Oldest first; the ring is read starting at the slot the next append
   would overwrite. *)
let entries_in s =
  locked s @@ fun () ->
  let cap = Array.length s.ring in
  let start = s.next_seq mod cap in
  let rec collect i acc =
    if i = cap then List.rev acc
    else
      match s.ring.((start + i) mod cap) with
      | Some e -> collect (i + 1) (e :: acc)
      | None -> collect (i + 1) acc
  in
  collect 0 []

let entries () = entries_in (current ())

(* Merge [src]'s entries into [into], re-sequenced in timestamp order
   together with what [into] already holds.  Physically-equal sinks are
   skipped (forked contexts alias their parent's journal), and the
   (ts, kind) sort makes the merge order-independent. *)
let merge ~into src =
  if src != into then begin
    let incoming = entries_in src in
    let drop = locked src (fun () -> src.dropped) in
    locked into @@ fun () ->
    let cap = Array.length into.ring in
    let existing =
      let start = into.next_seq mod cap in
      let rec collect i acc =
        if i = cap then List.rev acc
        else
          match into.ring.((start + i) mod cap) with
          | Some e -> collect (i + 1) (e :: acc)
          | None -> collect (i + 1) acc
      in
      collect 0 []
    in
    let combined =
      List.sort
        (fun a b ->
          match Float.compare a.j_ts_us b.j_ts_us with
          | 0 -> String.compare a.j_kind b.j_kind
          | c -> c)
        (existing @ incoming)
    in
    Array.fill into.ring 0 cap None;
    into.next_seq <- 0;
    into.dropped <- into.dropped + drop;
    List.iter
      (fun e ->
        let slot = into.next_seq mod cap in
        if into.ring.(slot) <> None then into.dropped <- into.dropped + 1;
        into.ring.(slot) <- Some { e with j_seq = into.next_seq };
        into.next_seq <- into.next_seq + 1)
      combined
  end

let filter ~kind es =
  List.filter
    (fun e ->
      String.equal e.j_kind kind
      || String.starts_with ~prefix:(kind ^ ".") e.j_kind)
    es

let entry_json e =
  Json.Obj
    ([
       ("seq", Json.Int e.j_seq);
       ("ts_us", Json.Float e.j_ts_us);
       ("kind", Json.String e.j_kind);
     ]
    @ match e.j_fields with [] -> [] | l -> [ ("fields", Json.Obj l) ])

let to_jsonl es =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (entry_json e));
      Buffer.add_char buf '\n')
    es;
  Buffer.contents buf

let write ?kind path =
  let es = entries () in
  let es = match kind with Some k -> filter ~kind:k es | None -> es in
  let oc = open_out path in
  output_string oc (to_jsonl es);
  close_out oc
