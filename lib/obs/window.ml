(* Time-bucketed rolling aggregation: the "what is the service doing
   *right now*" counterpart to the process-lifetime {!Metrics} registry.

   A window is a ring of [buckets] buckets, each [bucket_s] seconds
   wide.  Events land in the bucket their timestamp falls in (bucket
   index = floor(now / bucket_s)); reading a window of W seconds sums
   the last ceil(W / bucket_s) buckets that are still *live* — a ring
   slot whose stored index is not the one the query expects belongs to
   a previous lap and is ignored, so expired data can never leak into a
   result, only be overwritten.  One ring serves every window up to
   [bucket_s * buckets] seconds: the default (5 s x 60) answers the
   10 s / 1 m / 5 m windows the serve dashboard wants.

   Two families of series share the ring: counters ([add], answering
   [sum]/[rate]) and value samples ([observe], answering
   [quantiles] via {!Metrics.percentile}).  Samples are bounded per
   bucket per name so a hot endpoint cannot grow a bucket without
   bound; excess samples are dropped and counted in [q_count] (the
   exact event count survives, the quantile just gets a cap on its
   sample base, same trade as the Metrics histogram ring).

   The clock is injectable ([create ?clock]) so rotation and expiry are
   deterministic under test; the default is [Unix.gettimeofday].  All
   state is guarded by one mutex — recording is a hashtable hit plus an
   array write, reading is a fold over at most [buckets] buckets. *)

let max_bucket_samples = 512

type samples = {
  mutable s_count : int; (* all observations, including dropped ones *)
  s_ring : float array;
  mutable s_next : int;
}

type bucket = {
  mutable b_index : int; (* absolute bucket index; -1 = never used *)
  b_counts : (string, int ref) Hashtbl.t;
  b_samples : (string, samples) Hashtbl.t;
}

type t = {
  clock : unit -> float;
  bucket_s : float;
  ring : bucket array;
  lock : Mutex.t;
}

let create ?(clock = Unix.gettimeofday) ?(bucket_s = 5.0) ?(buckets = 60) () =
  if bucket_s <= 0.0 then invalid_arg "window: bucket_s must be > 0";
  if buckets < 1 then invalid_arg "window: buckets must be >= 1";
  {
    clock;
    bucket_s;
    ring =
      Array.init buckets (fun _ ->
          {
            b_index = -1;
            b_counts = Hashtbl.create 8;
            b_samples = Hashtbl.create 8;
          });
    lock = Mutex.create ();
  }

let bucket_s t = t.bucket_s
let buckets t = Array.length t.ring
let max_window_s t = t.bucket_s *. float_of_int (Array.length t.ring)

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let index_at t now = int_of_float (Float.floor (now /. t.bucket_s))

(* The live bucket for [now], recycling the ring slot if it still holds
   a previous lap. *)
let live_bucket t now =
  let idx = index_at t now in
  let b = t.ring.(idx mod Array.length t.ring) in
  if b.b_index <> idx then begin
    Hashtbl.reset b.b_counts;
    Hashtbl.reset b.b_samples;
    b.b_index <- idx
  end;
  b

let add ?(by = 1) t name =
  let now = t.clock () in
  locked t @@ fun () ->
  let b = live_bucket t now in
  match Hashtbl.find_opt b.b_counts name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace b.b_counts name (ref by)

let observe t name v =
  let now = t.clock () in
  locked t @@ fun () ->
  let b = live_bucket t now in
  let s =
    match Hashtbl.find_opt b.b_samples name with
    | Some s -> s
    | None ->
        let s =
          { s_count = 0; s_ring = Array.make max_bucket_samples 0.0; s_next = 0 }
        in
        Hashtbl.replace b.b_samples name s;
        s
  in
  s.s_count <- s.s_count + 1;
  s.s_ring.(s.s_next mod max_bucket_samples) <- v;
  s.s_next <- s.s_next + 1

(* Fold [f] over the live buckets of the last [window_s] seconds.
   Clamped to the ring capacity: asking for more than
   [max_window_s] answers the whole ring. *)
let fold_window t ~window_s f init =
  let now = t.clock () in
  let span = int_of_float (Float.ceil (window_s /. t.bucket_s)) in
  let span = max 1 (min span (Array.length t.ring)) in
  let head = index_at t now in
  let acc = ref init in
  for o = 0 to span - 1 do
    let idx = head - o in
    if idx >= 0 then begin
      let b = t.ring.(idx mod Array.length t.ring) in
      if b.b_index = idx then acc := f !acc b
    end
  done;
  !acc

let sum t ~window_s name =
  locked t @@ fun () ->
  fold_window t ~window_s
    (fun acc b ->
      match Hashtbl.find_opt b.b_counts name with
      | Some r -> acc + !r
      | None -> acc)
    0

let rate t ~window_s name =
  float_of_int (sum t ~window_s name) /. window_s

type quantiles = {
  q_count : int; (* every observation in the window, dropped or kept *)
  q_p50 : float;
  q_p95 : float;
  q_p99 : float;
}

let quantiles t ~window_s name =
  let count, chunks =
    locked t @@ fun () ->
    fold_window t ~window_s
      (fun (count, chunks) b ->
        match Hashtbl.find_opt b.b_samples name with
        | Some s ->
            let kept = min s.s_count max_bucket_samples in
            (count + s.s_count, Array.sub s.s_ring 0 kept :: chunks)
        | None -> (count, chunks))
      (0, [])
  in
  let all = Array.concat chunks in
  Array.sort Float.compare all;
  {
    q_count = count;
    q_p50 = Metrics.percentile all 50.0;
    q_p95 = Metrics.percentile all 95.0;
    q_p99 = Metrics.percentile all 99.0;
  }

(* Every series name live anywhere in the window, sorted. *)
let names t ~window_s =
  let collect tbl acc = Hashtbl.fold (fun name _ acc -> name :: acc) tbl acc in
  locked t
    (fun () ->
      fold_window t ~window_s
        (fun acc b -> collect b.b_counts (collect b.b_samples acc))
        [])
  |> List.sort_uniq String.compare

let default_windows = [ 10.0; 60.0; 300.0 ]

(* One JSON document for every requested window: per-series counts,
   rates and quantiles — what [/api/windows], the SSE "window" frames
   and `umlfront top` all consume. *)
let to_json ?(windows = default_windows) t =
  let window_json window_s =
    let series =
      List.map
        (fun name ->
          let n = sum t ~window_s name in
          let q = quantiles t ~window_s name in
          ( name,
            Json.Obj
              ([
                 ("count", Json.Int n);
                 ("rate", Json.Float (float_of_int n /. window_s));
               ]
              @
              if q.q_count = 0 then []
              else
                [
                  ("samples", Json.Int q.q_count);
                  ("p50", Json.Float q.q_p50);
                  ("p95", Json.Float q.q_p95);
                  ("p99", Json.Float q.q_p99);
                ]) ))
        (names t ~window_s)
    in
    Json.Obj [ ("window_s", Json.Float window_s); ("series", Json.Obj series) ]
  in
  Json.Obj
    [
      ("bucket_s", Json.Float t.bucket_s);
      ("buckets", Json.Int (Array.length t.ring));
      ("windows", Json.List (List.map window_json windows));
    ]
