(* A reentrant telemetry context: one trace-id'd bundle of the four
   observability sinks — span buffer (Trace), metrics registry
   (Metrics), journal ring (Journal) and token sink (Telemetry).

   Historically all four were process-global singletons, which made
   Core.Flow a one-shot pipeline: a second concurrent run scribbled
   over the first one's counters and spans.  A context makes the whole
   bundle an explicit heap value.  The global singletons survive as
   [default], and every instrumented call site keeps writing through a
   domain-local *current* context, so existing CLI paths and tests see
   exactly the old behaviour until someone passes [?ctx].

   [with_current] installs a context for the extent of a callback
   (saving and restoring whatever was current, so nesting works);
   [fork] derives a cheap per-domain child for pool workers; [merge]
   folds children back into their parent deterministically — the trio
   the lib/parallel pool uses to give `-j` runs one coherent trace tree
   instead of interleaved globals. *)

type t = {
  id : int; (* trace id: unique per process, 0 is the default context *)
  trace : Trace.sink;
  metrics : Metrics.t;
  journal : Journal.sink;
  telemetry : Telemetry.sink;
}

let next_id = Atomic.make 1

let default =
  {
    id = 0;
    trace = Trace.default;
    metrics = Metrics.global;
    journal = Journal.default;
    telemetry = Telemetry.default;
  }

(* [trace]/[telemetry] arm the respective sinks at creation;
   [journal_capacity] sizes the journal ring. *)
let create ?(trace = false) ?(telemetry = false) ?journal_capacity () =
  {
    id = Atomic.fetch_and_add next_id 1;
    trace = Trace.create ~on:trace ();
    metrics = Metrics.create ();
    journal = Journal.create ?capacity:journal_capacity ();
    telemetry = Telemetry.create ~on:telemetry ();
  }

let current_key = Domain.DLS.new_key (fun () -> default)

let current () = Domain.DLS.get current_key

let install ctx =
  Domain.DLS.set current_key ctx;
  Trace.set_current ctx.trace;
  Metrics.set_current ctx.metrics;
  Journal.set_current ctx.journal;
  Telemetry.set_current ctx.telemetry

(* Make [ctx] the current context of this domain for the extent of
   [f], restoring whatever was current before — including after an
   exception, so a raising flow cannot leak its context into the
   caller's subsequent telemetry. *)
let with_current ctx f =
  let prev = current () in
  install ctx;
  Fun.protect ~finally:(fun () -> install prev) f

(* A child context for one pool worker domain: fresh span buffer and
   metrics registry (the two surfaces workers write concurrently), with
   the journal and token sink aliased to the parent — their recording
   happens in owner-side commit phases, and aliasing keeps forks cheap
   enough to take per batch.  [root_parent] is the span that was open
   where the batch was submitted; the child's spans attach under it so
   the merged buffer forms one tree. *)
let fork ?(root_parent = -1) parent =
  {
    id = Atomic.fetch_and_add next_id 1;
    trace = Trace.fork ~root_parent parent.trace;
    metrics = Metrics.create ();
    journal = parent.journal;
    telemetry = parent.telemetry;
  }

(* Fold child contexts back into [into], deterministically: counters
   sum, gauges keep the max, histograms combine, and span buffers are
   re-sorted by (timestamp, span id) after concatenation — every rule
   is commutative, so the result does not depend on the order the
   children are listed in.  Sinks a child aliases from the parent
   (forked journals and token sinks) are recognized by physical
   equality and skipped. *)
let merge ~into children =
  let seen_journals = ref [ into.journal ] in
  let seen_telemetry = ref [ into.telemetry ] in
  List.iter
    (fun child ->
      if child != into then begin
        Metrics.merge ~into:into.metrics child.metrics;
        if not (List.memq child.journal !seen_journals) then begin
          Journal.merge ~into:into.journal child.journal;
          seen_journals := child.journal :: !seen_journals
        end;
        if not (List.memq child.telemetry !seen_telemetry) then begin
          Telemetry.merge ~into:into.telemetry child.telemetry;
          seen_telemetry := child.telemetry :: !seen_telemetry
        end
      end)
    children;
  Trace.absorb ~into:into.trace (List.map (fun c -> c.trace) children)
