(* The bench regression gate: diff two BENCH_*.json documents (as
   written by bench/main.exe Parts 4 and 5) and decide which way each
   throughput metric moved.

   Comparison is schema-aware:
   - umlfront-bench-obs/1: per case (matched by name), blocks/s parsed
     and actor firings/s — higher is better;
   - umlfront-bench-parallel/1: per sweep point (matched by section and
     domain count), wall-clock ms — lower is better — and self-scaling
     speedup — higher is better — plus the parallel-determinism flag,
     which must not turn false;
   - umlfront-bench-exec-compiled/1: the compiled executor against the
     sequential reference — speedup_vs_seq per domain count (higher is
     better), wall-clock ms, and the bit-identity flag;
   - umlfront-bench-serve/1: per client count (matched by [clients]),
     req/s — higher is better — and p50/p95 latency ms — lower is
     better — plus the cache hit ratio, which is a counting property
     and is judged on any hardware; the observability A/B rows
     (matched by [mode]) gate the cost of the access log + trace
     retention pipeline the same way.

   Multi-domain timing findings are hardware-gated: both documents
   record [hardware_domains] (what the runner actually had), and a
   sweep point asking for more domains than either side could provide
   is skipped — an under-provisioned CI runner cannot demonstrate a
   speedup, so the gate must not fail it for the hardware it lacks.
   Bit-identity flags and 1-domain metrics are never skipped; documents
   written before [hardware_domains] existed are not gated at all.

   A metric regresses when it moves past [tolerance] percent in its
   bad direction.  Improvements and in-tolerance noise never fail:
   wall-clock benches on shared CI boxes are noisy, which is why the
   gate ships with a generous default. *)

type direction = Higher_better | Lower_better

type finding = {
  f_metric : string;
  f_base : float;
  f_current : float;
  f_delta_pct : float; (* (current - base) / base * 100 *)
  f_direction : direction;
  f_regression : bool;
}

let default_tolerance = 25.0

let finding ~tolerance ~direction metric base current =
  let delta =
    if base = 0.0 then 0.0 else (current -. base) /. Float.abs base *. 100.0
  in
  let regression =
    (not (Float.is_nan delta))
    &&
    match direction with
    | Higher_better -> delta < -.tolerance
    | Lower_better -> delta > tolerance
  in
  {
    f_metric = metric;
    f_base = base;
    f_current = current;
    f_delta_pct = delta;
    f_direction = direction;
    f_regression = regression;
  }

let member_num key doc = Option.bind (Json.member key doc) Json.number

let member_str key doc =
  match Json.member key doc with Some (Json.String s) -> Some s | _ -> None

(* --- umlfront-bench-obs/1 ------------------------------------------- *)

let obs_findings ~tolerance base current =
  let cases doc =
    List.filter_map
      (fun case -> Option.map (fun name -> (name, case)) (member_str "name" case))
      (match Json.member "cases" doc with Some l -> Json.items l | None -> [])
  in
  let base_cases = cases base in
  let case_findings =
    List.concat_map
      (fun (name, cur) ->
        match List.assoc_opt name base_cases with
        | None -> []
        | Some old ->
            List.filter_map
              (fun (key, label) ->
                match (member_num key old, member_num key cur) with
                | Some b, Some c ->
                    Some
                      (finding ~tolerance ~direction:Higher_better
                         (Printf.sprintf "%s.%s" name label) b c)
                | _ -> None)
              [
                ("blocks_per_s_parsed", "blocks_per_s");
                ("actor_firings_per_s", "firings_per_s");
              ])
      (cases current)
  in
  (* Telemetry-context plumbing cost: the slowdown factor of a traced
     flow run over a ?ctx:None run.  Lower is better; documents written
     before the series existed simply lack the member and are skipped. *)
  let ctx_factor doc =
    Option.bind (Json.member "context_overhead" doc) (member_num "factor")
  in
  let ctx_findings =
    match (ctx_factor base, ctx_factor current) with
    | Some b, Some c ->
        [ finding ~tolerance ~direction:Lower_better "context_overhead.factor" b c ]
    | _ -> []
  in
  case_findings @ ctx_findings

(* --- hardware gating ------------------------------------------------- *)

(* Can a sweep point at [domains] be judged on these two documents?
   Only when every side that records its hardware actually had that
   many domains — otherwise the measurement says nothing about the
   code.  1-domain points are always judged. *)
let provisioned ~base ~current domains =
  domains <= 1
  || List.for_all
       (fun doc ->
         match member_num "hardware_domains" doc with
         | Some hw -> int_of_float hw >= domains
         | None -> true (* pre-gating document: keep the old behaviour *))
       [ base; current ]

let identical_finding label old cur =
  match (Json.member "identical" old, Json.member "identical" cur) with
  | Some (Json.Bool true), Some (Json.Bool false) ->
      [
        {
          f_metric = label ^ ".identical";
          f_base = 1.0;
          f_current = 0.0;
          f_delta_pct = -100.0;
          f_direction = Higher_better;
          f_regression = true;
        };
      ]
  | _ -> []

let num_finding ~tolerance ~direction key label old cur =
  match (member_num key old, member_num key cur) with
  | Some b, Some c -> [ finding ~tolerance ~direction (label ^ "." ^ key) b c ]
  | _ -> []

let sweep_rows section doc =
  match Option.bind (Json.member section doc) (Json.member "sweeps") with
  | Some l ->
      List.filter_map
        (fun row ->
          Option.map (fun d -> (int_of_float d, row)) (member_num "domains" row))
        (Json.items l)
  | None -> []

(* --- umlfront-bench-parallel/1 -------------------------------------- *)

let parallel_findings ~tolerance base current =
  let per_section section =
    let base_rows = sweep_rows section base in
    List.concat_map
      (fun (domains, cur) ->
        match List.assoc_opt domains base_rows with
        | None -> []
        | Some old ->
            let label = Printf.sprintf "%s.%dd" section domains in
            (* Timing and speedup say nothing on a machine without the
               domains; bit-identity must hold on any machine. *)
            (if provisioned ~base ~current domains then
               num_finding ~tolerance ~direction:Lower_better "ms" label old cur
               @ num_finding ~tolerance ~direction:Higher_better "speedup" label old
                   cur
             else [])
            @ identical_finding label old cur)
      (sweep_rows section current)
  in
  per_section "dse" @ per_section "exec"

(* --- umlfront-bench-exec-compiled/1 ---------------------------------- *)

let exec_compiled_findings ~tolerance base current =
  let seq_ms =
    num_finding ~tolerance ~direction:Lower_better "exec_seq_ms" "exec" base current
  in
  let base_rows = sweep_rows "compiled" base in
  let rows =
    List.concat_map
      (fun (domains, cur) ->
        match List.assoc_opt domains base_rows with
        | None -> []
        | Some old ->
            let label = Printf.sprintf "compiled.%dd" domains in
            (* speedup_vs_seq at 1 domain is a hardware-independent
               ratio of two sequential runs — the compiled-beats-
               sequential gate proper — so it is never skipped. *)
            (if provisioned ~base ~current domains then
               num_finding ~tolerance ~direction:Lower_better "ms" label old cur
               @ num_finding ~tolerance ~direction:Higher_better "speedup" label old
                   cur
               @ num_finding ~tolerance ~direction:Higher_better "speedup_vs_seq"
                   label old cur
             else [])
            @ identical_finding label old cur)
      (sweep_rows "compiled" current)
  in
  seq_ms @ rows

(* --- umlfront-bench-serve/1 ------------------------------------------ *)

let serve_findings ~tolerance base current =
  let rows doc =
    match Json.member "rows" doc with
    | Some l ->
        List.filter_map
          (fun row ->
            Option.map (fun c -> (int_of_float c, row)) (member_num "clients" row))
          (Json.items l)
    | None -> []
  in
  let base_rows = rows base in
  List.concat_map
    (fun (clients, cur) ->
      match List.assoc_opt clients base_rows with
      | None -> []
      | Some old ->
          let label = Printf.sprintf "serve.%dc" clients in
          (* Latency and throughput under N concurrent clients say
             nothing about the code on a runner that cannot actually
             run N clients at once, so those findings are
             hardware-gated like the sweep points above.  The cache
             hit ratio is a counting property of the request mix and
             holds on any machine — never skipped. *)
          (if provisioned ~base ~current clients then
             num_finding ~tolerance ~direction:Higher_better "req_per_s" label old
               cur
             @ num_finding ~tolerance ~direction:Lower_better "p50_ms" label old cur
             @ num_finding ~tolerance ~direction:Lower_better "p95_ms" label old cur
           else [])
          @ num_finding ~tolerance ~direction:Higher_better "hit_ratio" label old
              cur)
    (rows current)
  @
  (* The observability A/B series (same row, watching on vs off):
     matched by mode, judged like any other load row. *)
  let obs_rows doc =
    match Json.member "observability" doc with
    | Some l ->
        List.filter_map
          (fun r -> Option.map (fun m -> (m, r)) (member_str "mode" r))
          (Json.items l)
    | None -> []
  in
  let base_obs = obs_rows base in
  List.concat_map
    (fun (mode, cur) ->
      match List.assoc_opt mode base_obs with
      | None -> []
      | Some old ->
          let clients =
            match member_num "clients" cur with Some c -> int_of_float c | None -> 1
          in
          if provisioned ~base ~current clients then
            let label = "serve.obs." ^ mode in
            num_finding ~tolerance ~direction:Higher_better "req_per_s" label old
              cur
            @ num_finding ~tolerance ~direction:Lower_better "p95_ms" label old cur
          else [])
    (obs_rows current)

(* --- entry points --------------------------------------------------- *)

let compare_docs ?(tolerance = default_tolerance) ~base ~current () =
  match (member_str "schema" base, member_str "schema" current) with
  | None, _ | _, None -> Error "missing \"schema\" member (not a BENCH_*.json?)"
  | Some bs, Some cs when bs <> cs ->
      Error (Printf.sprintf "schema mismatch: base %s vs current %s" bs cs)
  | Some "umlfront-bench-obs/1", _ -> Ok (obs_findings ~tolerance base current)
  | Some "umlfront-bench-parallel/1", _ ->
      Ok (parallel_findings ~tolerance base current)
  | Some "umlfront-bench-exec-compiled/1", _ ->
      Ok (exec_compiled_findings ~tolerance base current)
  | Some "umlfront-bench-serve/1", _ -> Ok (serve_findings ~tolerance base current)
  | Some other, _ -> Error (Printf.sprintf "unknown bench schema %S" other)

let regressions findings = List.filter (fun f -> f.f_regression) findings

let render ~tolerance findings =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "  %-36s %14s %14s %9s  %s\n" "metric" "base" "current" "delta" "verdict";
  List.iter
    (fun f ->
      out "  %-36s %14.2f %14.2f %+8.1f%%  %s\n" f.f_metric f.f_base f.f_current
        f.f_delta_pct
        (if f.f_regression then "REGRESSION"
         else
           match f.f_direction with
           | Higher_better when f.f_delta_pct > tolerance -> "improved"
           | Lower_better when f.f_delta_pct < -.tolerance -> "improved"
           | _ -> "ok"))
    findings;
  (match regressions findings with
  | [] -> out "  no regression beyond %.0f%% tolerance (%d metrics)\n" tolerance
            (List.length findings)
  | r ->
      out "  %d regression(s) beyond %.0f%% tolerance\n" (List.length r) tolerance);
  Buffer.contents buf
