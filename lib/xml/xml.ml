type t =
  | Element of string * (string * string) list * t list
  | Text of string
  | Comment of string

exception Parse_error of { line : int; column : int; message : string }

let element ?(attrs = []) tag children = Element (tag, attrs, children)
let text s = Text s

let tag = function
  | Element (tag, _, _) -> tag
  | Text _ | Comment _ -> invalid_arg "Xml.tag: not an element"

let attrs = function Element (_, attrs, _) -> attrs | Text _ | Comment _ -> []

let children = function
  | Element (_, _, children) -> children
  | Text _ | Comment _ -> []

let attr name node = List.assoc_opt name (attrs node)

let attr_exn name node =
  match attr name node with Some v -> v | None -> raise Not_found

let element_children node =
  let is_element = function Element _ -> true | Text _ | Comment _ -> false in
  List.filter is_element (children node)

let children_named name node =
  let matches = function
    | Element (tag, _, _) -> String.equal tag name
    | Text _ | Comment _ -> false
  in
  List.filter matches (children node)

let child name node =
  match children_named name node with [] -> None | first :: _ -> Some first

let text_content node =
  let buf = Buffer.create 64 in
  let rec collect = function
    | Text s -> Buffer.add_string buf s
    | Comment _ -> ()
    | Element (_, _, children) -> List.iter collect children
  in
  collect node;
  Buffer.contents buf

(* Escaping *)

let escape escape_quotes s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when escape_quotes -> Buffer.add_string buf "&quot;"
      | '\'' when escape_quotes -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attribute = escape true
let escape_text = escape false

(* Printing *)

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

let rec print_node buf step depth node =
  let pad () = Buffer.add_string buf (String.make (depth * step) ' ') in
  match node with
  | Text s ->
      pad ();
      Buffer.add_string buf (escape_text s);
      Buffer.add_char buf '\n'
  | Comment s ->
      pad ();
      Buffer.add_string buf "<!-- ";
      Buffer.add_string buf s;
      Buffer.add_string buf " -->\n"
  | Element (tag, attrs, children) ->
      pad ();
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_attribute v);
          Buffer.add_char buf '"')
        attrs;
      let significant =
        List.filter (function Text s -> not (is_blank s) | _ -> true) children
      in
      (match significant with
      | [] -> Buffer.add_string buf "/>\n"
      | [ Text s ] ->
          Buffer.add_char buf '>';
          Buffer.add_string buf (escape_text s);
          Buffer.add_string buf "</";
          Buffer.add_string buf tag;
          Buffer.add_string buf ">\n"
      | _ ->
          Buffer.add_string buf ">\n";
          List.iter (print_node buf step (depth + 1)) significant;
          pad ();
          Buffer.add_string buf "</";
          Buffer.add_string buf tag;
          Buffer.add_string buf ">\n")

let to_string ?(declaration = true) ?(indent = 2) node =
  let buf = Buffer.create 1024 in
  if declaration then
    Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  print_node buf indent 0 node;
  Buffer.contents buf

let pp ppf node = Format.pp_print_string ppf (to_string ~declaration:false node)

(* Parsing: a hand-written recursive-descent parser tracking line/column. *)

type parser_state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable column : int;
}

let fail st message =
  raise (Parse_error { line = st.line; column = st.column; message })

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.column <- 1
  | Some _ -> st.column <- st.column + 1
  | None -> ());
  st.pos <- st.pos + 1

let next st =
  match peek st with
  | Some c ->
      advance st;
      c
  | None -> fail st "unexpected end of input"

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = prefix

let expect_string st prefix =
  if looking_at st prefix then String.iter (fun _ -> advance st) prefix
  else fail st (Printf.sprintf "expected %S" prefix)

let skip_whitespace st =
  let rec loop () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let parse_name st =
  let start = st.pos in
  let rec loop () =
    match peek st with
    | Some c when is_name_char c ->
        advance st;
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  if st.pos = start then fail st "expected a name";
  String.sub st.input start (st.pos - start)

let decode_entity st =
  (* Called just after '&'. *)
  let semi =
    match String.index_from_opt st.input st.pos ';' with
    | Some i when i - st.pos <= 8 -> i
    | Some _ | None -> fail st "unterminated entity reference"
  in
  let name = String.sub st.input st.pos (semi - st.pos) in
  let value =
    match name with
    | "amp" -> "&"
    | "lt" -> "<"
    | "gt" -> ">"
    | "quot" -> "\""
    | "apos" -> "'"
    | _ when String.length name > 2 && name.[0] = '#' && name.[1] = 'x' ->
        let code = int_of_string ("0x" ^ String.sub name 2 (String.length name - 2)) in
        if code < 128 then String.make 1 (Char.chr code)
        else fail st "non-ASCII character reference unsupported"
    | _ when String.length name > 1 && name.[0] = '#' ->
        let code = int_of_string (String.sub name 1 (String.length name - 1)) in
        if code < 128 then String.make 1 (Char.chr code)
        else fail st "non-ASCII character reference unsupported"
    | _ -> fail st (Printf.sprintf "unknown entity &%s;" name)
  in
  while st.pos <= semi do
    advance st
  done;
  value

let parse_attribute_value st =
  let quote = next st in
  if quote <> '"' && quote <> '\'' then fail st "expected attribute quote";
  let buf = Buffer.create 16 in
  let rec loop () =
    match next st with
    | c when c = quote -> ()
    | '&' ->
        Buffer.add_string buf (decode_entity st);
        loop ()
    | c ->
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_attributes st =
  let rec loop acc =
    skip_whitespace st;
    match peek st with
    | Some c when is_name_char c ->
        let name = parse_name st in
        skip_whitespace st;
        expect_string st "=";
        skip_whitespace st;
        let value = parse_attribute_value st in
        loop ((name, value) :: acc)
    | Some _ | None -> List.rev acc
  in
  loop []

let skip_comment st =
  (* After "<!--". *)
  let rec loop () =
    if looking_at st "-->" then expect_string st "-->"
    else (
      ignore (next st);
      loop ())
  in
  loop ()

let skip_prolog st =
  let rec loop () =
    skip_whitespace st;
    if looking_at st "<?" then (
      let rec to_close () =
        if looking_at st "?>" then expect_string st "?>"
        else (
          ignore (next st);
          to_close ())
      in
      expect_string st "<?";
      to_close ();
      loop ())
    else if looking_at st "<!--" then (
      expect_string st "<!--";
      skip_comment st;
      loop ())
    else if looking_at st "<!DOCTYPE" then (
      let rec to_gt () = if next st = '>' then () else to_gt () in
      to_gt ();
      loop ())
  in
  loop ()

let parse_cdata st =
  (* After "<![CDATA[". *)
  let buf = Buffer.create 32 in
  let rec loop () =
    if looking_at st "]]>" then expect_string st "]]>"
    else (
      Buffer.add_char buf (next st);
      loop ())
  in
  loop ();
  Buffer.contents buf

let rec parse_element st =
  expect_string st "<";
  let name = parse_name st in
  let attrs = parse_attributes st in
  skip_whitespace st;
  if looking_at st "/>" then (
    expect_string st "/>";
    Element (name, attrs, []))
  else (
    expect_string st ">";
    let children = parse_children st name in
    Element (name, attrs, children))

and parse_children st parent =
  let rec loop acc =
    if looking_at st "</" then (
      expect_string st "</";
      let closing = parse_name st in
      skip_whitespace st;
      expect_string st ">";
      if closing <> parent then
        fail st (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing parent);
      List.rev acc)
    else if looking_at st "<!--" then (
      expect_string st "<!--";
      skip_comment st;
      loop acc)
    else if looking_at st "<![CDATA[" then (
      expect_string st "<![CDATA[";
      loop (Text (parse_cdata st) :: acc))
    else if looking_at st "<" then loop (parse_element st :: acc)
    else (
      let buf = Buffer.create 32 in
      let rec gather () =
        match peek st with
        | Some '<' | None -> ()
        | Some '&' ->
            advance st;
            Buffer.add_string buf (decode_entity st);
            gather ()
        | Some c ->
            advance st;
            Buffer.add_char buf c;
            gather ()
      in
      gather ();
      let s = Buffer.contents buf in
      (* EOF with the element still open: without this check a
         truncated document (e.g. "<a>") would loop here forever,
         gathering empty text. *)
      if peek st = None then
        fail st (Printf.sprintf "unexpected end of input inside <%s>" parent)
      else if is_blank s then loop acc
      else loop (Text s :: acc))
  in
  loop []

let parse_string input =
  let st = { input; pos = 0; line = 1; column = 1 } in
  skip_prolog st;
  skip_whitespace st;
  if not (looking_at st "<") then fail st "expected root element";
  let root = parse_element st in
  skip_whitespace st;
  if st.pos < String.length st.input then fail st "trailing content after root element";
  root

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse_string content

let rec equal a b =
  let significant nodes =
    List.filter
      (function Comment _ -> false | Text s -> not (is_blank s) | Element _ -> true)
      nodes
  in
  let sort_attrs l = List.sort compare l in
  match (a, b) with
  | Text s1, Text s2 -> String.equal s1 s2
  | Comment _, Comment _ -> true
  | Element (t1, a1, c1), Element (t2, a2, c2) ->
      String.equal t1 t2
      && sort_attrs a1 = sort_attrs a2
      &&
      let c1 = significant c1 and c2 = significant c2 in
      List.length c1 = List.length c2 && List.for_all2 equal c1 c2
  | (Element _ | Text _ | Comment _), _ -> false
