module Xml = Umlfront_xml.Xml

let parameter_to_xml (p : Operation.parameter) =
  Xml.element
    ~attrs:
      [
        ("name", p.param_name);
        ("direction", Operation.direction_to_string p.param_dir);
        ("type", Datatype.to_string p.param_type);
      ]
    "parameter" []

let operation_to_xml (op : Operation.t) =
  Xml.element
    ~attrs:[ ("name", op.op_name) ]
    "operation"
    (List.map parameter_to_xml op.op_params)

let class_to_xml (c : Classifier.cls) =
  let stereotypes =
    List.map
      (fun s -> Xml.element ~attrs:[ ("name", Stereotype.to_string s) ] "stereotype" [])
      c.cls_stereotypes
  in
  Xml.element
    ~attrs:[ ("name", c.cls_name); ("kind", Classifier.kind_to_string c.cls_kind) ]
    "class"
    (stereotypes @ List.map operation_to_xml c.cls_operations)

let arg_to_xml (a : Sequence.arg) =
  Xml.element
    ~attrs:[ ("name", a.arg_name); ("type", Datatype.to_string a.arg_type) ]
    "argument" []

let message_to_xml (m : Sequence.message) =
  let result_attrs =
    match m.msg_result with
    | Some r ->
        [ ("result", r.arg_name); ("resultType", Datatype.to_string r.arg_type) ]
    | None -> []
  in
  let out_to_xml (a : Sequence.arg) =
    Xml.element
      ~attrs:[ ("name", a.arg_name); ("type", Datatype.to_string a.arg_type) ]
      "out" []
  in
  Xml.element
    ~attrs:
      ([ ("from", m.msg_from); ("to", m.msg_to); ("operation", m.msg_operation) ]
      @ result_attrs)
    "message"
    (List.map arg_to_xml m.msg_args @ List.map out_to_xml m.msg_outs)

let sequence_to_xml (sd : Sequence.t) =
  Xml.element
    ~attrs:[ ("name", sd.sd_name) ]
    "sequence"
    (List.map message_to_xml sd.sd_messages)

let deployment_to_xml (d : Deployment.t) =
  let nodes =
    List.map
      (fun (n : Deployment.node) ->
        (* The stereotype list is written even when empty: an absent
           attribute means a legacy file, and the reader then falls
           back to the <<SAengine>> default of {!Deployment.node}. *)
        Xml.element
          ~attrs:
            [
              ("name", n.node_name);
              ( "stereotypes",
                String.concat " " (List.map Stereotype.to_string n.node_stereotypes) );
            ]
          "node" [])
      d.dep_nodes
  in
  let bus =
    match d.dep_bus with
    | Some b -> [ Xml.element ~attrs:[ ("name", b) ] "bus" [] ]
    | None -> []
  in
  let allocations =
    List.map
      (fun (thread, node) ->
        Xml.element ~attrs:[ ("thread", thread); ("node", node) ] "allocate" [])
      d.dep_allocation
  in
  Xml.element ~attrs:[ ("name", d.dep_name) ] "deployment" (nodes @ bus @ allocations)

let activity_node_to_xml (n : Activity.node) =
  match n with
  | Activity.Action a ->
      let result_attrs =
        match a.Activity.act_result with
        | Some (r : Sequence.arg) ->
            [ ("result", r.Sequence.arg_name);
              ("resultType", Datatype.to_string r.Sequence.arg_type) ]
        | None -> []
      in
      Xml.element
        ~attrs:
          ([ ("kind", "action"); ("name", a.Activity.act_name);
             ("target", a.Activity.act_target);
             ("operation", a.Activity.act_operation) ]
          @ result_attrs)
        "node"
        (List.map arg_to_xml a.Activity.act_args)
  | other ->
      let kind =
        match other with
        | Activity.Initial _ -> "initial"
        | Activity.Final _ -> "final"
        | Activity.Fork _ -> "fork"
        | Activity.Join _ -> "join"
        | Activity.Decision _ -> "decision"
        | Activity.Merge _ -> "merge"
        | Activity.Action _ -> assert false
      in
      Xml.element
        ~attrs:[ ("kind", kind); ("name", Activity.node_name other) ]
        "node" []

let activity_edge_to_xml (e : Activity.edge) =
  Xml.element
    ~attrs:
      ([ ("source", e.Activity.edge_source); ("target", e.Activity.edge_target) ]
      @ match e.Activity.edge_guard with Some g -> [ ("guard", g) ] | None -> [])
    "flow" []

let activity_to_xml (a : Activity.t) =
  Xml.element
    ~attrs:[ ("name", a.Activity.act_diagram_name); ("owner", a.Activity.act_owner) ]
    "activity"
    (List.map activity_node_to_xml a.Activity.act_nodes
    @ List.map activity_edge_to_xml a.Activity.act_edges)

let state_kind_to_string = function
  | Statechart.Simple -> "simple"
  | Statechart.Initial -> "initial"
  | Statechart.Final -> "final"
  | Statechart.Composite -> "composite"

let state_kind_of_string = function
  | "simple" -> Statechart.Simple
  | "initial" -> Statechart.Initial
  | "final" -> Statechart.Final
  | "composite" -> Statechart.Composite
  | s -> invalid_arg (Printf.sprintf "xmi: bad state kind %S" s)

let opt_attr name value = match value with Some v -> [ (name, v) ] | None -> []

let rec state_to_xml (s : Statechart.state) =
  Xml.element
    ~attrs:
      ([ ("name", s.st_name); ("kind", state_kind_to_string s.st_kind) ]
      @ opt_attr "entry" s.st_entry @ opt_attr "exit" s.st_exit
      @
      match s.st_history with
      | Statechart.No_history -> []
      | Statechart.Shallow -> [ ("history", "shallow") ]
      | Statechart.Deep -> [ ("history", "deep") ])
    "state"
    (List.map state_to_xml s.st_children)

let transition_to_xml (tr : Statechart.transition) =
  Xml.element
    ~attrs:
      ([ ("source", tr.tr_source); ("target", tr.tr_target) ]
      @ opt_attr "trigger" tr.tr_trigger
      @ opt_attr "guard" tr.tr_guard
      @ opt_attr "effect" tr.tr_effect)
    "transition" []

let statechart_to_xml (sc : Statechart.t) =
  Xml.element
    ~attrs:[ ("name", sc.sc_name) ]
    "statechart"
    (List.map state_to_xml sc.sc_states @ List.map transition_to_xml sc.sc_transitions)

let to_xml (m : Model.t) =
  Xml.element
    ~attrs:[ ("name", m.model_name) ]
    "uml:Model"
    (List.map class_to_xml m.classes
    @ List.map
        (fun (i : Classifier.instance) ->
          Xml.element
            ~attrs:[ ("name", i.inst_name); ("class", i.inst_class) ]
            "object" [])
        m.instances
    @ List.map deployment_to_xml m.deployments
    @ List.map sequence_to_xml m.sequences
    @ List.map activity_to_xml m.activities
    @ List.map statechart_to_xml m.statecharts)

let to_string m = Xml.to_string (to_xml m)

(* Parsing *)

let required node name =
  match Xml.attr name node with
  | Some v -> v
  | None ->
      invalid_arg (Printf.sprintf "xmi: <%s> missing attribute %s" (Xml.tag node) name)

let parameter_of_xml node =
  Operation.param
    ~dir:(Operation.direction_of_string (required node "direction"))
    (required node "name")
    (Datatype.of_string (required node "type"))

let operation_of_xml node =
  Operation.make
    ~params:(List.map parameter_of_xml (Xml.children_named "parameter" node))
    (required node "name")

let class_of_xml node =
  let kind = Classifier.kind_of_string (required node "kind") in
  let stereotypes =
    Xml.children_named "stereotype" node
    |> List.map (fun s -> Stereotype.of_string (required s "name"))
  in
  let operations = List.map operation_of_xml (Xml.children_named "operation" node) in
  Classifier.cls ~stereotypes ~operations kind (required node "name")

let arg_of_xml node =
  Sequence.arg (required node "name") (Datatype.of_string (required node "type"))

let message_of_xml node =
  let result =
    match Xml.attr "result" node with
    | Some name ->
        Some (Sequence.arg name (Datatype.of_string (required node "resultType")))
    | None -> None
  in
  Sequence.message
    ~args:(List.map arg_of_xml (Xml.children_named "argument" node))
    ?result
    ~outs:(List.map arg_of_xml (Xml.children_named "out" node))
    ~from:(required node "from") ~target:(required node "to")
    (required node "operation")

let sequence_of_xml node =
  Sequence.make (required node "name")
    (List.map message_of_xml (Xml.children_named "message" node))

let deployment_of_xml node =
  let nodes =
    Xml.children_named "node" node
    |> List.map (fun n ->
           match Xml.attr "stereotypes" n with
           | None -> Deployment.node (required n "name")
           | Some s ->
               {
                 Deployment.node_name = required n "name";
                 node_stereotypes =
                   String.split_on_char ' ' s
                   |> List.filter (fun x -> not (String.equal x ""))
                   |> List.map Stereotype.of_string;
               })
  in
  let bus = Option.map (fun b -> required b "name") (Xml.child "bus" node) in
  let allocation =
    Xml.children_named "allocate" node
    |> List.map (fun a -> (required a "thread", required a "node"))
  in
  Deployment.make ?bus ~name:(required node "name") ~nodes ~allocation ()

let activity_node_of_xml node =
  let name = required node "name" in
  match required node "kind" with
  | "initial" -> Activity.Initial name
  | "final" -> Activity.Final name
  | "fork" -> Activity.Fork name
  | "join" -> Activity.Join name
  | "decision" -> Activity.Decision name
  | "merge" -> Activity.Merge name
  | "action" ->
      let result =
        match Xml.attr "result" node with
        | Some r -> Some (Sequence.arg r (Datatype.of_string (required node "resultType")))
        | None -> None
      in
      Activity.action
        ~args:(List.map arg_of_xml (Xml.children_named "argument" node))
        ?result ~name ~target:(required node "target") (required node "operation")
  | other -> invalid_arg (Printf.sprintf "xmi: bad activity node kind %S" other)

let activity_edge_of_xml node =
  Activity.edge ?guard:(Xml.attr "guard" node) ~source:(required node "source")
    ~target:(required node "target") ()

let activity_of_xml node =
  Activity.make ~name:(required node "name") ~owner:(required node "owner")
    (List.map activity_node_of_xml (Xml.children_named "node" node))
    (List.map activity_edge_of_xml (Xml.children_named "flow" node))

let rec state_of_xml node =
  Statechart.state
    ~kind:(state_kind_of_string (required node "kind"))
    ?entry:(Xml.attr "entry" node) ?exit:(Xml.attr "exit" node)
    ~history:
      (match Xml.attr "history" node with
      | Some "shallow" -> Statechart.Shallow
      | Some "deep" -> Statechart.Deep
      | Some _ | None -> Statechart.No_history)
    ~children:(List.map state_of_xml (Xml.children_named "state" node))
    (required node "name")

let transition_of_xml node =
  Statechart.transition ?trigger:(Xml.attr "trigger" node)
    ?guard:(Xml.attr "guard" node) ?effect:(Xml.attr "effect" node)
    ~source:(required node "source") ~target:(required node "target") ()

let statechart_of_xml node =
  Statechart.make (required node "name")
    (List.map state_of_xml (Xml.children_named "state" node))
    (List.map transition_of_xml (Xml.children_named "transition" node))

let of_xml doc =
  if not (String.equal (Xml.tag doc) "uml:Model") then
    invalid_arg "xmi: root element must be <uml:Model>";
  let instances =
    Xml.children_named "object" doc
    |> List.map (fun n ->
           { Classifier.inst_name = required n "name"; inst_class = required n "class" })
  in
  Model.make
    ~classes:(List.map class_of_xml (Xml.children_named "class" doc))
    ~instances
    ~deployments:(List.map deployment_of_xml (Xml.children_named "deployment" doc))
    ~sequences:(List.map sequence_of_xml (Xml.children_named "sequence" doc))
    ~activities:(List.map activity_of_xml (Xml.children_named "activity" doc))
    ~statecharts:(List.map statechart_of_xml (Xml.children_named "statechart" doc))
    (required doc "name")

let of_string s = of_xml (Xml.parse_string s)

let save m path =
  let oc = open_out path in
  output_string oc (to_string m);
  close_out oc

let load path = of_xml (Xml.parse_file path)
