(* umlfront: command-line front-end for the UML -> heterogeneous code
   generation flow.

     umlfront map model.xml -o model.mdl     UML -> Simulink CAAM (.mdl)
     umlfront allocate model.xml             show the inferred thread allocation
     umlfront simulate model.xml -n 20       map + run on the SDF executor
     umlfront codegen model.xml -d out/      map + emit multithreaded C
     umlfront fsm model.xml -d out/          statecharts -> C FSMs
     umlfront dse model.xml                  design-space exploration sweep
     umlfront partition model.xml -o p.xml   split a 1-thread model into threads
     umlfront capture model.mdl -o model.xml reverse: CAAM .mdl -> UML XMI
     umlfront cosim model.xml -g glue.cosim  co-simulate FSM x dataflow
     umlfront example crane -o model.xml     dump a bundled case study as XMI
     umlfront report model.xml               full flow summary
     umlfront stats model.xml                run the flow instrumented, print metrics
     umlfront lint model.xml [more.xml...]   static analysis: UML, CAAM and SDF rules
     umlfront conform model.xml              diff every backend against the reference
     umlfront fuzz --seed 42 --count 50      conformance-fuzz random models
     umlfront journal model.xml              replay the run journal as JSON Lines
     umlfront bench-diff BASE NEW            perf regression gate over BENCH_*.json
     umlfront top 8080                       live rolling view of a serve daemon

   Any subcommand accepts a global `--profile FILE.json`: the run is
   traced (spans per flow phase, parser/executor metrics) and a Chrome
   trace-event file loadable in chrome://tracing or Perfetto is written
   on exit.  A global `--journal FILE.jsonl` likewise dumps the bounded
   run journal (phase starts, executor rounds, deadlocks) on exit.

   The input is the XMI-style XML of Umlfront_uml.Xmi. *)

module U = Umlfront_uml
module Core = Umlfront_core
module Dataflow = Umlfront_dataflow
module Codegen = Umlfront_codegen
module Obs = Umlfront_obs
module Pool = Umlfront_parallel.Pool
open Cmdliner

(* Convert the tool's failure exceptions into proper Cmdliner
   evaluation errors (message on stderr, exit code 124) instead of a
   raw [Failure] backtrace. *)
let protect f =
  try Ok (f ()) with
  | Failure m | Invalid_argument m | Sys_error m -> Error m
  | Umlfront_xml.Xml.Parse_error { line; column; message } ->
      Error (Printf.sprintf "XML parse error at %d:%d: %s" line column message)
  | Umlfront_simulink.Mdl_parser.Error { line; message } ->
      Error (Printf.sprintf ".mdl parse error at line %d: %s" line message)
  | Umlfront_dataflow.Exec.Deadlock cycle ->
      Error ("deadlock (zero-delay cycle): " ^ String.concat " -> " cycle)

let uml_arg =
  let doc = "UML model in umlfront XMI format." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL.xml" ~doc)

let strategy_arg =
  let strategies =
    [
      ("deployment", Core.Flow.Use_deployment);
      ("prefer-deployment", Core.Flow.Prefer_deployment);
      ("linear", Core.Flow.Infer_linear);
    ]
  in
  let doc =
    "Thread allocation strategy: deployment (use the deployment diagram), \
     prefer-deployment, or linear (infer by linear clustering)."
  in
  Arg.(
    value
    & opt (enum strategies) Core.Flow.Prefer_deployment
    & info [ "s"; "strategy" ] ~docv:"STRATEGY" ~doc)

let cpus_arg =
  let doc = "Fold the inferred allocation to at most $(docv) CPUs." in
  Arg.(value & opt (some int) None & info [ "cpus" ] ~docv:"N" ~doc)

let rounds_arg =
  let doc = "Number of execution rounds." in
  Arg.(value & opt int 10 & info [ "n"; "rounds" ] ~docv:"ROUNDS" ~doc)

let jobs_arg =
  let doc =
    "Compute on $(docv) domains (0 = all the hardware offers). 1 keeps the \
     run sequential; results are identical either way."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

(* `--engine seq|compiled`: which executor runs the SDF graph — the
   reference interpreter or the compiled flat-schedule one. *)
let engine_arg =
  let doc =
    "SDF execution engine: $(b,seq) (the reference interpreter) or \
     $(b,compiled) (the compiled flat-schedule executor; work-stealing \
     when -j > 1).  Results are bit-identical either way."
  in
  Arg.(
    value
    & opt (enum [ ("seq", `Seq); ("compiled", `Compiled) ]) `Seq
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

(* Run [f] with a domain pool of the requested size ([0] = hardware
   cores), shut down afterwards.  jobs <= 1 skips pool creation. *)
let with_jobs jobs f =
  if jobs = 1 then f None
  else
    let domains = if jobs <= 0 then Pool.cpu_count () else jobs in
    Pool.with_pool ~domains (fun pool -> f (Some pool))

let out_arg =
  let doc = "Output file." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let dir_arg =
  let doc = "Output directory." in
  Arg.(value & opt string "." & info [ "d"; "directory" ] ~docv:"DIR" ~doc)

let load path = U.Xmi.load path

let effective_strategy strategy cpus =
  match cpus with Some n -> Core.Flow.Infer_bounded n | None -> strategy

let run_flow path strategy cpus =
  Core.Flow.run ~strategy:(effective_strategy strategy cpus) (load path)

let example_cmd =
  let action name out =
    let model =
      match name with
      | "didactic" -> Umlfront_casestudies.Didactic.model ()
      | "crane" -> Umlfront_casestudies.Crane_system.model ()
      | "synthetic" -> Umlfront_casestudies.Synthetic_system.model ()
      | "mjpeg" -> Umlfront_casestudies.Mjpeg_system.model ()
      | "elevator" -> Umlfront_casestudies.Elevator_system.model ()
      | other -> failwith (Printf.sprintf "unknown example %S" other)
    in
    match out with
    | Some file ->
        U.Xmi.save model file;
        Printf.printf "wrote %s\n" file
    | None -> print_string (U.Xmi.to_string model)
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some (enum
                       [ ("didactic", "didactic"); ("crane", "crane");
                         ("synthetic", "synthetic"); ("mjpeg", "mjpeg");
                         ("elevator", "elevator") ])) None
      & info [] ~docv:"NAME" ~doc:"Case study: didactic, crane, synthetic, mjpeg or elevator.")
  in
  Cmd.v
    (Cmd.info "example" ~doc:"Dump a bundled case-study UML model as XMI")
    Term.(
      term_result'
        (const (fun name out -> protect (fun () -> action name out))
        $ name_arg $ out_arg))

let dse_cmd =
  let action path max_cpus jobs =
    let result =
      with_jobs jobs (fun pool -> Core.Dse.explore ?max_cpus ?pool (load path))
    in
    print_string (Core.Dse.summary result)
  in
  Cmd.v
    (Cmd.info "dse" ~doc:"Design-space exploration: sweep CPU counts, report Pareto set")
    Term.(
      term_result'
        (const (fun path cpus jobs -> protect (fun () -> action path cpus jobs))
        $ uml_arg $ cpus_arg $ jobs_arg))

let partition_cmd =
  let action path threads out =
    let r = Core.Partitioning.run ?threads (load path) in
    List.iter
      (fun (call, thread) -> Printf.printf "  %-40s -> %s\n" call thread)
      r.Core.Partitioning.thread_of_call;
    List.iter
      (fun (token, p, c) -> Printf.printf "  transfer %s: %s -> %s\n" token p c)
      r.Core.Partitioning.cut_tokens;
    match out with
    | Some file ->
        U.Xmi.save r.Core.Partitioning.partitioned file;
        Printf.printf "wrote %s\n" file
    | None -> ()
  in
  let threads_arg =
    Arg.(
      value & opt (some int) None
      & info [ "threads" ] ~docv:"N" ~doc:"Bound the number of threads.")
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Automatically partition a single-threaded model into threads")
    Term.(
      term_result'
        (const (fun path threads out -> protect (fun () -> action path threads out))
        $ uml_arg $ threads_arg $ out_arg))

let capture_cmd =
  let action path out =
    let caam = Umlfront_simulink.Mdl_parser.parse_file path in
    let uml = Core.Capture.run caam in
    match out with
    | Some file ->
        U.Xmi.save uml file;
        Printf.printf "wrote %s\n" file
    | None -> print_string (U.Xmi.to_string uml)
  in
  let mdl_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL.mdl" ~doc:"CAAM .mdl file.")
  in
  Cmd.v
    (Cmd.info "capture" ~doc:"Reverse mapping: capture a Simulink CAAM as a UML model")
    Term.(
      term_result'
        (const (fun path out -> protect (fun () -> action path out))
        $ mdl_arg $ out_arg))

let map_cmd =
  let action path strategy cpus out ecore =
    let output = run_flow path strategy cpus in
    let text = if ecore then Core.Flow.ecore_xml output else output.Core.Flow.mdl in
    match out with
    | Some file ->
        let oc = open_out file in
        output_string oc text;
        close_out oc;
        Printf.printf "wrote %s\n" file
    | None -> print_string text
  in
  let ecore_arg =
    Arg.(
      value & flag
      & info [ "ecore" ]
          ~doc:"Emit the intermediate E-core XML (Simulink meta-model) instead of .mdl.")
  in
  let blockdot_arg =
    Arg.(
      value & opt (some string) None
      & info [ "block-dot" ] ~docv:"FILE"
          ~doc:"Also write the generated block diagram as Graphviz.")
  in
  let with_blockdot action path strategy cpus out ecore blockdot =
    action path strategy cpus out ecore;
    match blockdot with
    | Some file ->
        let output = run_flow path strategy cpus in
        Umlfront_simulink.Block_dot.save output.Core.Flow.caam ~path:file;
        Printf.printf "wrote %s\n" file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "map" ~doc:"Map a UML model to a Simulink CAAM (.mdl or E-core XML)")
    Term.(
      term_result'
        (const (fun path strategy cpus out ecore blockdot ->
             protect (fun () -> with_blockdot action path strategy cpus out ecore blockdot))
        $ uml_arg $ strategy_arg $ cpus_arg $ out_arg $ ecore_arg $ blockdot_arg))

let allocate_cmd =
  let action path dot =
    let uml = load path in
    let g = Core.Allocation.task_graph uml in
    print_endline "task graph:";
    Format.printf "%a@." Umlfront_taskgraph.Graph.pp g;
    print_endline "linear clustering allocation:";
    List.iter
      (fun (th, cpu) -> Printf.printf "  %-12s -> %s\n" th cpu)
      (Core.Allocation.infer uml);
    match dot with
    | Some file ->
        let clustering =
          Umlfront_taskgraph.Linear_clustering.run
            (let open Umlfront_taskgraph in
             if Algo.is_acyclic g then g
             else
               let back = Algo.all_back_edges g in
               Graph.of_lists
                 ~nodes:(List.map (fun id -> (id, Graph.node_weight g id)) (Graph.nodes g))
                 ~edges:
                   (List.filter (fun (s, d, _) -> not (List.mem (s, d) back))
                      (Graph.edges g)))
        in
        Umlfront_taskgraph.Dot.save
          (Umlfront_taskgraph.Dot.clustered g clustering)
          ~path:file;
        Printf.printf "wrote %s\n" file
    | None -> ()
  in
  let dot_arg =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write the clustered task graph as Graphviz.")
  in
  Cmd.v
    (Cmd.info "allocate" ~doc:"Show the automatic thread allocation (§4.2.3)")
    Term.(
      term_result'
        (const (fun path dot -> protect (fun () -> action path dot))
        $ uml_arg $ dot_arg))

let simulate_cmd =
  let action path strategy cpus rounds csv gantt jobs engine token_json token_dot =
    if token_json <> None || token_dot <> None then Obs.Telemetry.enable ();
    let output = run_flow path strategy cpus in
    let sdf = Dataflow.Sdf.of_model output.Core.Flow.caam in
    let outcome =
      with_jobs jobs (fun pool ->
          match engine with
          | `Seq -> Dataflow.Exec.run ?pool ~rounds sdf
          | `Compiled -> Dataflow.Compiled.run ?pool ~rounds sdf)
    in
    if csv then print_string (Dataflow.Trace_export.traces_csv outcome)
    else
      List.iter
        (fun (port, samples) ->
          Printf.printf "%s:" port;
          Array.iter (fun v -> Printf.printf " %.6f" v) samples;
          print_newline ())
        outcome.Dataflow.Exec.traces;
    if gantt then print_string (Dataflow.Trace_export.gantt sdf);
    let write_to file text =
      let oc = open_out file in
      output_string oc text;
      close_out oc;
      Printf.eprintf "tokens: wrote %s\n%!" file
    in
    Option.iter
      (fun file ->
        write_to file (Obs.Json.to_string (Obs.Telemetry.to_json ()) ^ "\n"))
      token_json;
    Option.iter (fun file -> write_to file (Obs.Telemetry.flow_dot ())) token_dot;
    if not csv then
      Format.printf "%a@." Dataflow.Timing.pp_report (Dataflow.Timing.evaluate sdf)
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit the traces as CSV instead of text.")
  in
  let gantt_arg =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart of one iteration.")
  in
  let token_json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "tokens" ] ~docv:"FILE"
          ~doc:
            "Trace every token causally and write channel statistics, occupancy \
             timelines and Chrome-trace flow events as JSON to $(docv).")
  in
  let token_dot_arg =
    Arg.(
      value & opt (some string) None
      & info [ "token-dot" ] ~docv:"FILE"
          ~doc:"Write the causal token-flow graph (Graphviz) to $(docv).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Map and execute the CAAM on the SDF simulator")
    Term.(
      term_result'
        (const
           (fun path strategy cpus rounds csv gantt jobs engine token_json token_dot ->
             protect (fun () ->
                 action path strategy cpus rounds csv gantt jobs engine token_json
                   token_dot))
        $ uml_arg $ strategy_arg $ cpus_arg $ rounds_arg $ csv_arg $ gantt_arg
        $ jobs_arg $ engine_arg $ token_json_arg $ token_dot_arg))

let codegen_cmd =
  let action path strategy cpus rounds dir lang =
    let output = run_flow path strategy cpus in
    (match lang with
    | `C ->
        Codegen.Gen_threads.save ~rounds output.Core.Flow.caam ~dir;
        Printf.printf "wrote model.c, sfunctions.[ch], fifo.[ch] to %s\n" dir
    | `Java ->
        Codegen.Gen_java.save ~rounds output.Core.Flow.caam ~dir;
        Printf.printf "wrote GeneratedModel.java to %s\n" dir
    | `Systemc ->
        Codegen.Gen_systemc.save ~rounds output.Core.Flow.caam ~dir;
        Printf.printf "wrote model_sc.cpp to %s\n" dir
    | `Kpn ->
        Codegen.Gen_kpn.save ~rounds output.Core.Flow.caam ~dir;
        Printf.printf "wrote model_kpn.ml to %s\n" dir)
  in
  let lang_arg =
    Arg.(
      value
      & opt (enum [ ("c", `C); ("java", `Java); ("systemc", `Systemc); ("kpn", `Kpn) ]) `C
      & info [ "l"; "language" ] ~docv:"LANG"
          ~doc:"Target language: c, java, systemc or kpn.")
  in
  Cmd.v
    (Cmd.info "codegen" ~doc:"Generate multithreaded code from the CAAM")
    Term.(
      term_result'
        (const (fun path strategy cpus rounds dir lang ->
             protect (fun () -> action path strategy cpus rounds dir lang))
        $ uml_arg $ strategy_arg $ cpus_arg $ rounds_arg $ dir_arg $ lang_arg))

let fsm_cmd =
  let action path dir =
    let uml = load path in
    let generated = Core.Uml2fsm.run uml in
    if generated = [] then print_endline "model has no statecharts"
    else
      List.iter
        (fun (name, (g : Core.Uml2fsm.generated)) ->
          let write ext content =
            let file = Filename.concat dir (name ^ ext) in
            let oc = open_out file in
            output_string oc content;
            close_out oc;
            Printf.printf "wrote %s\n" file
          in
          write ".h" g.Core.Uml2fsm.c_header;
          write ".c" g.Core.Uml2fsm.c_source;
          write ".dot" g.Core.Uml2fsm.dot)
        generated
  in
  Cmd.v
    (Cmd.info "fsm" ~doc:"Generate C FSMs from the model's statecharts")
    Term.(
      term_result'
        (const (fun path dir -> protect (fun () -> action path dir))
        $ uml_arg $ dir_arg))

let audit_cmd =
  let action path strategy cpus =
    let uml = load path in
    let output = Core.Flow.run ~strategy:(effective_strategy strategy cpus) uml in
    print_string (Core.Consistency.audit_report uml output)
  in
  Cmd.v
    (Cmd.info "audit" ~doc:"Cross-check UML source, trace links and generated CAAM")
    Term.(
      term_result'
        (const (fun path strategy cpus -> protect (fun () -> action path strategy cpus))
        $ uml_arg $ strategy_arg $ cpus_arg))

let cosim_cmd =
  let action path script_path rounds strategy cpus =
    let uml = load path in
    let output = Core.Flow.run ~strategy:(effective_strategy strategy cpus) uml in
    let script = Umlfront_cosim.Script.load script_path in
    let charts = Core.Uml2fsm.run uml in
    let controller =
      match script.Umlfront_cosim.Script.chart with
      | Some name -> (
          match List.assoc_opt name charts with
          | Some g -> g.Core.Uml2fsm.fsm
          | None -> failwith (Printf.sprintf "no statechart %S in the model" name))
      | None -> (
          match charts with
          | [] -> failwith "model has no statecharts"
          | [ (_, g) ] -> g.Core.Uml2fsm.fsm
          | many ->
              Umlfront_fsm.Compose.product_list ~name:"composed"
                (List.map (fun (_, g) -> g.Core.Uml2fsm.fsm) many))
    in
    let rounds =
      match script.Umlfront_cosim.Script.rounds with Some n -> n | None -> rounds
    in
    let sdf = Dataflow.Sdf.of_model output.Core.Flow.caam in
    let outcome =
      Umlfront_cosim.Cosim.run ~rounds sdf
        (Umlfront_cosim.Script.configure controller script)
    in
    List.iter
      (fun (s : Umlfront_cosim.Cosim.step) ->
        if s.Umlfront_cosim.Cosim.events <> [] then
          Format.printf "%a@." Umlfront_cosim.Cosim.pp_step s)
      outcome.Umlfront_cosim.Cosim.steps;
    Printf.printf "final state: %s\n" outcome.Umlfront_cosim.Cosim.final_state
  in
  let script_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "g"; "glue" ] ~docv:"SCRIPT" ~doc:"Co-simulation glue script.")
  in
  Cmd.v
    (Cmd.info "cosim"
       ~doc:"Co-simulate the model's statechart(s) against its generated dataflow")
    Term.(
      term_result'
        (const (fun path script rounds strategy cpus ->
             protect (fun () -> action path script rounds strategy cpus))
        $ uml_arg $ script_arg $ rounds_arg $ strategy_arg $ cpus_arg))

let plantuml_cmd =
  let action path dir =
    let uml = load path in
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    U.Plantuml.save uml ~dir;
    List.iter
      (fun (base, _) -> Printf.printf "wrote %s.puml\n" (Filename.concat dir base))
      (U.Plantuml.model uml)
  in
  Cmd.v
    (Cmd.info "plantuml" ~doc:"Export the UML diagrams as PlantUML")
    Term.(
      term_result'
        (const (fun path dir -> protect (fun () -> action path dir))
        $ uml_arg $ dir_arg))

let report_cmd =
  let action path strategy cpus rounds jobs out =
    let uml = load path in
    let strategy = effective_strategy strategy cpus in
    match out with
    | None ->
        let output = Core.Flow.run ~strategy uml in
        print_string (U.Metrics.report uml);
        print_string (Core.Report.flow_summary output);
        print_string (Core.Report.caam_tree output.Core.Flow.caam)
    | Some file ->
        (* -o FILE: the single-file HTML run report.  The instrumented
           run happens inside its own telemetry context with spans and
           token tracing armed, so the report captures exactly this run
           — whatever the process-global sinks were doing (a
           surrounding --profile, say) is untouched. *)
        let ctx = Obs.Context.create ~trace:true ~telemetry:true () in
        let output = Core.Flow.run ~strategy ~ctx uml in
        let sdf = Dataflow.Sdf.of_model output.Core.Flow.caam in
        ignore (with_jobs jobs (fun pool -> Dataflow.Exec.run ?pool ~ctx ~rounds sdf));
        let html =
          Obs.Context.with_current ctx (fun () ->
              Obs.Html_report.render ~model_name:uml.U.Model.model_name
                ~events:(Obs.Trace.events ()) ~stats:(Obs.Metrics.snapshot ())
                ~channels:(Obs.Telemetry.channels ())
                ~timeline:Obs.Telemetry.occupancy_timeline
                ~journal:(Obs.Journal.entries ()) ~dropped:(Obs.Journal.dropped ()) ())
        in
        let oc = open_out file in
        output_string oc html;
        close_out oc;
        Printf.printf "wrote %s\n" file
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run the whole flow and print a summary, or with -o FILE write a \
          self-contained HTML run report (span tree, metrics, channel occupancy \
          timelines, journal tail)")
    Term.(
      term_result'
        (const (fun path strategy cpus rounds jobs out ->
             protect (fun () -> action path strategy cpus rounds jobs out))
        $ uml_arg $ strategy_arg $ cpus_arg $ rounds_arg $ jobs_arg $ out_arg))

let stats_cmd =
  let action path strategy cpus rounds jobs format metrics_out =
    (* Enable the span sink so per-round latency histograms populate;
       keep whatever a surrounding --profile already set up. *)
    if not (Obs.Trace.enabled ()) then Obs.Trace.enable ();
    let output = run_flow path strategy cpus in
    (* Exercise the rest of the pipeline so parser and executor
       metrics appear alongside the flow's; with --jobs the executor
       runs level-parallel, so pool occupancy and per-domain firings
       land in the registry too. *)
    ignore (Umlfront_simulink.Mdl_parser.parse_string output.Core.Flow.mdl);
    let sdf = Dataflow.Sdf.of_model output.Core.Flow.caam in
    ignore (with_jobs jobs (fun pool -> Dataflow.Exec.run ?pool ~rounds sdf));
    let snapshot = Obs.Metrics.snapshot () in
    let rendered =
      match format with
      | `Text -> Core.Report.metrics_table ~snapshot ()
      | `Json -> Obs.Json.to_string (Obs.Metrics.to_json snapshot) ^ "\n"
      | `Openmetrics ->
          Obs.Openmetrics.render ~journal_dropped:(Obs.Journal.dropped ())
            ~span_buffer_hwm:(Obs.Trace.buffer_hwm ())
            ~span_nesting_hwm:(Obs.Trace.nesting_hwm ()) snapshot
      | `Tree -> Obs.Span_tree.render (Obs.Trace.events ())
    in
    print_string rendered;
    match metrics_out with
    | Some file ->
        let oc = open_out file in
        output_string oc rendered;
        close_out oc;
        Printf.eprintf "stats: wrote %s\n%!" file
    | None -> ()
  in
  let format_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("text", `Text); ("json", `Json); ("openmetrics", `Openmetrics);
               ("tree", `Tree);
             ])
          `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Registry format: text (table), json, openmetrics \
             (Prometheus/OpenMetrics text exposition), or tree (the span tree \
             with per-phase self/total time and allocation attribution).")
  in
  let metrics_out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Also write the rendered registry to $(docv) (for scraping or CI artifacts).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the flow (map + reparse + simulate) under instrumentation and print \
          the metrics registry (text, JSON or OpenMetrics)")
    Term.(
      term_result'
        (const (fun path strategy cpus rounds jobs format metrics_out ->
             protect (fun () -> action path strategy cpus rounds jobs format metrics_out))
        $ uml_arg $ strategy_arg $ cpus_arg $ rounds_arg $ jobs_arg $ format_arg
        $ metrics_out_arg))

let journal_cmd =
  let action path strategy cpus rounds jobs kind limit tokens out =
    if tokens then Obs.Telemetry.enable ();
    let output = run_flow path strategy cpus in
    let sdf = Dataflow.Sdf.of_model output.Core.Flow.caam in
    ignore (with_jobs jobs (fun pool -> Dataflow.Exec.run ?pool ~rounds sdf));
    let es = Obs.Journal.entries () in
    let es = match kind with Some k -> Obs.Journal.filter ~kind:k es | None -> es in
    let es =
      match limit with
      | Some n when n >= 0 ->
          (* Keep the newest [n]: the end of a run is the end you read. *)
          let drop = max 0 (List.length es - n) in
          List.filteri (fun i _ -> i >= drop) es
      | _ -> es
    in
    (match out with
    | Some file ->
        let oc = open_out file in
        output_string oc (Obs.Journal.to_jsonl es);
        close_out oc;
        Printf.printf "wrote %s (%d entries)\n" file (List.length es)
    | None -> print_string (Obs.Journal.to_jsonl es));
    let dropped = Obs.Journal.dropped () in
    if dropped > 0 then
      Printf.eprintf "journal: ring wrapped, %d oldest entries dropped\n%!" dropped
  in
  let kind_arg =
    Arg.(
      value & opt (some string) None
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Only entries of $(docv) (exact, or a dotted prefix: \
             $(b,flow) matches $(b,flow.validate), ...).")
  in
  let limit_arg =
    Arg.(
      value & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"Only the newest $(docv) entries.")
  in
  let tokens_arg =
    Arg.(
      value & flag
      & info [ "tokens" ]
          ~doc:
            "Also enable causal token tracing, so per-channel high-water marks \
             land in the journal.")
  in
  Cmd.v
    (Cmd.info "journal"
       ~doc:
         "Run the flow and the SDF executor, then replay the bounded run journal \
          (phase starts, executor rounds, channel high-water marks, deadlocks) as \
          JSON Lines")
    Term.(
      term_result'
        (const (fun path strategy cpus rounds jobs kind limit tokens out ->
             protect (fun () ->
                 action path strategy cpus rounds jobs kind limit tokens out))
        $ uml_arg $ strategy_arg $ cpus_arg $ rounds_arg $ jobs_arg $ kind_arg
        $ limit_arg $ tokens_arg $ out_arg))

let bench_diff_cmd =
  let action base current tolerance =
    let parse p =
      let text = In_channel.with_open_bin p In_channel.input_all in
      match Obs.Json.parse text with
      | Ok v -> v
      | Error e -> failwith (Printf.sprintf "%s: %s" p e)
    in
    match
      Obs.Bench_diff.compare_docs ~tolerance ~base:(parse base)
        ~current:(parse current) ()
    with
    | Error e -> failwith e
    | Ok findings ->
        Printf.printf "bench-diff %s vs %s\n" base current;
        print_string (Obs.Bench_diff.render ~tolerance findings);
        if Obs.Bench_diff.regressions findings <> [] then exit 1
  in
  let base_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"BASE.json" ~doc:"Baseline BENCH_*.json (committed).")
  in
  let current_arg =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"NEW.json" ~doc:"Freshly measured BENCH_*.json.")
  in
  let tolerance_arg =
    Arg.(
      value & opt float Obs.Bench_diff.default_tolerance
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "Allowed movement in the bad direction, percent; beyond it the \
             metric is a regression and the exit code is 1.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two bench result files (BENCH_obs.json or BENCH_parallel.json \
          schema) and exit non-zero when a throughput metric regressed beyond \
          the tolerance")
    Term.(
      term_result'
        (const (fun base current tolerance ->
             protect (fun () -> action base current tolerance))
        $ base_arg $ current_arg $ tolerance_arg))

let lint_cmd =
  let module A = Umlfront_analysis in
  let action paths strategy cpus jobs format deny_warnings show_rules =
    if show_rules then
      List.iter
        (fun (code, severity, title) ->
          Printf.printf "%s  %-7s  %s\n" code
            (A.Diagnostic.severity_to_string severity)
            title)
        A.Lint.rules
    else if paths = [] then failwith "lint: no MODEL.xml given (or pass --rules)"
    else begin
      let lint_one path =
        let uml = load path in
        let output = Core.Flow.run ~strategy:(effective_strategy strategy cpus) uml in
        (path, A.Lint.check ~uml output.Core.Flow.caam)
      in
      let results =
        with_jobs jobs (fun pool ->
            match pool with
            | Some pool -> Pool.map pool lint_one paths
            | None -> List.map lint_one paths)
      in
      (match format with
      | `Text ->
          List.iter
            (fun (path, diagnostics) ->
              if diagnostics = [] then Printf.printf "%s: clean\n" path
              else (
                Printf.printf "%s:\n" path;
                print_string (A.Diagnostic.render diagnostics)))
            results
      | `Json ->
          print_endline
            (Obs.Json.to_string
               (Obs.Json.List
                  (List.map
                     (fun (path, ds) -> A.Diagnostic.list_to_json ~file:path ds)
                     results))));
      let policy = if deny_warnings then `Warnings else `Errors in
      if List.exists (fun (_, ds) -> A.Lint.deny policy ds <> []) results then exit 1
    end
  in
  let models_arg =
    let doc = "UML models in umlfront XMI format (one or more)." in
    Arg.(value & pos_all file [] & info [] ~docv:"MODEL.xml" ~doc)
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Report format: text or json.")
  in
  let deny_arg =
    (* `--deny warnings`: warnings fail the run like errors do. *)
    let level =
      Arg.(
        value
        & opt (some (enum [ ("warnings", `Warnings) ])) None
        & info [ "deny" ] ~docv:"LEVEL"
            ~doc:"Fail the run on diagnostics of $(docv) too (only $(b,warnings)).")
    in
    Term.(const (fun l -> l <> None) $ level)
  in
  let rules_arg =
    Arg.(
      value & flag
      & info [ "rules" ] ~doc:"Print the rule catalog (code, severity, title) and exit.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static model analysis (UML conventions, CAAM structure, SDF \
          consistency) and exit non-zero on errors")
    Term.(
      term_result'
        (const (fun paths strategy cpus jobs format deny rules ->
             protect (fun () -> action paths strategy cpus jobs format deny rules))
        $ models_arg $ strategy_arg $ cpus_arg $ jobs_arg $ format_arg $ deny_arg
        $ rules_arg))

let conform_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FORMAT" ~doc:"Report format: text or json.")

(* `--backends seq,par,kpn,c,kpn-src` (default: all). *)
let backends_arg =
  let doc =
    "Comma-separated backends to check: seq, par, compiled, kpn, c, kpn-src \
     (default: all)."
  in
  Arg.(value & opt (some string) None & info [ "backends" ] ~docv:"LIST" ~doc)

let parse_backends = function
  | None -> None
  | Some csv ->
      Some
        (List.map
           (fun name ->
             match Umlfront_conformance.Conform.backend_of_string (String.trim name) with
             | Ok b -> b
             | Error e -> failwith e)
           (String.split_on_char ',' csv))

let conform_cmd =
  let module Conf = Umlfront_conformance.Conform in
  let action path backends engine rounds strategy cpus jobs format =
    let backends = parse_backends backends in
    (* A .mdl input is checked as-is — that is how a fuzz-corpus
       minimized counterexample reproduces faithfully, without the
       flow resynthesizing anything. *)
    let caam =
      if Filename.check_suffix path ".mdl" then
        Umlfront_simulink.Mdl_parser.parse_file path
      else (run_flow path strategy cpus).Core.Flow.caam
    in
    let report =
      with_jobs jobs (fun pool -> Conf.check ?backends ~engine ~rounds ?pool caam)
    in
    (match format with
    | `Text -> print_string (Conf.render report)
    | `Json -> print_endline (Obs.Json.to_string (Conf.to_json report)));
    if not (Conf.agree report) then exit 1
  in
  let model_arg =
    let doc = "UML model (XMI) or Simulink CAAM ($(b,.mdl))." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL" ~doc)
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:
         "Differential conformance check: run the model through every backend \
          (sequential, parallel, compiled, KPN, generated C, emitted KPN source) \
          and diff the traces against the SDF reference executor; exit non-zero \
          on disagreement")
    Term.(
      term_result'
        (const (fun path backends engine rounds strategy cpus jobs format ->
             protect (fun () ->
                 action path backends engine rounds strategy cpus jobs format))
        $ model_arg $ backends_arg $ engine_arg $ rounds_arg $ strategy_arg $ cpus_arg
        $ jobs_arg $ conform_format_arg))

let serve_cmd =
  let module Server = Umlfront_serve.Server in
  let action port pool cache_mb max_inflight timeout access_log trace_sample =
    if trace_sample < 0. || trace_sample > 1. then
      failwith "serve: --trace-sample must be within 0..1";
    let config =
      {
        Server.default_config with
        Server.port;
        pool;
        cache_mb;
        max_inflight;
        timeout_s = timeout;
        access_log;
        trace_sample;
      }
    in
    let server = Server.start ~config () in
    (* The bound port on stdout first, so `--port 0` scripts can read
       it; everything after is human chatter. *)
    Printf.printf "listening on http://127.0.0.1:%d\n%!" (Server.port server);
    Printf.eprintf
      "serve: %d worker domain(s), %d MiB cache, %d in-flight max, %gs \
       timeout; Ctrl-C to stop\n\
       %!"
      pool cache_mb max_inflight timeout;
    let stop_requested = Atomic.make false in
    let request_stop _ = Atomic.set stop_requested true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    while not (Atomic.get stop_requested) do
      try Unix.sleepf 0.2
      with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    Printf.eprintf "serve: shutting down\n%!";
    Server.stop server
  in
  let port_arg =
    let doc = "Port to listen on (0 picks an ephemeral port, printed on stdout)." in
    Arg.(value & opt int 8080 & info [ "port"; "p" ] ~docv:"PORT" ~doc)
  in
  let pool_arg =
    let doc = "Worker domains handling requests (0 serves on the acceptor)." in
    Arg.(value & opt int 2 & info [ "pool" ] ~docv:"N" ~doc)
  in
  let cache_arg =
    let doc = "Response cache budget in MiB (0 disables caching)." in
    Arg.(value & opt int 32 & info [ "cache-mb" ] ~docv:"N" ~doc)
  in
  let inflight_arg =
    let doc =
      "Admission-control bound: beyond $(docv) open connections the server \
       answers 503 with Retry-After."
    in
    Arg.(value & opt int 64 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc = "Per-request compute deadline in seconds (503 beyond it)." in
    Arg.(value & opt float 30. & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let access_log_arg =
    let doc =
      "Append one JSON line per request to $(docv) (written off the request \
       path; a full writer queue drops lines and counts them)."
    in
    Arg.(value & opt (some string) None & info [ "access-log" ] ~docv:"FILE" ~doc)
  in
  let trace_sample_arg =
    let doc =
      "Fraction of requests (0..1) whose span tree is retained for \
       /api/trace/ID; ?trace=1 retains regardless."
    in
    Arg.(value & opt float 0. & info [ "trace-sample" ] ~docv:"RATE" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived compilation service: the whole flow as JSON-over-HTTP \
          endpoints (/api/lint, /api/transform, /api/simulate, /api/conform, \
          /api/generate/{c,java,kpn}) with a content-hash response cache, \
          admission control, OpenMetrics telemetry on /metrics, an SSE event \
          stream on /events and a live dashboard on /dashboard")
    Term.(
      term_result'
        (const (fun port pool cache_mb max_inflight timeout access_log trace_sample ->
             protect (fun () ->
                 action port pool cache_mb max_inflight timeout access_log
                   trace_sample))
        $ port_arg $ pool_arg $ cache_arg $ inflight_arg $ timeout_arg
        $ access_log_arg $ trace_sample_arg))

(* `umlfront top SERVER`: poll /healthz + /api/windows + /metrics and
   render a refreshing per-endpoint table — the terminal twin of the
   /dashboard page, built on the same rolling window. *)
let top_cmd =
  let module Client = Umlfront_serve.Serve_client in
  let module Json = Obs.Json in
  (* SERVER spellings: "8080", "127.0.0.1:8080", "http://127.0.0.1:8080/". *)
  let parse_server s =
    let s =
      match String.index_opt s '/' with
      | Some _ when String.length s > 7 && String.sub s 0 7 = "http://" ->
          let rest = String.sub s 7 (String.length s - 7) in
          (match String.index_opt rest '/' with
          | Some i -> String.sub rest 0 i
          | None -> rest)
      | _ -> s
    in
    let port_part =
      match String.rindex_opt s ':' with
      | Some i -> String.sub s (i + 1) (String.length s - i - 1)
      | None -> s
    in
    match int_of_string_opt port_part with
    | Some p when p > 0 && p < 65536 -> p
    | _ -> failwith (Printf.sprintf "top: cannot parse server %S (want PORT, HOST:PORT or a http://127.0.0.1:PORT URL)" s)
  in
  let metric_value body name =
    List.find_map
      (fun line ->
        match String.index_opt line ' ' with
        | Some i when String.sub line 0 i = name ->
            float_of_string_opt
              (String.sub line (i + 1) (String.length line - i - 1))
        | _ -> None)
      (String.split_on_char '\n' body)
  in
  let cell v d =
    if Float.is_nan v then "-" else Printf.sprintf "%.*f" d v
  in
  let render port =
    let health = Json.parse (Client.healthz ~port).Client.body in
    let windows = Json.parse (Client.windows ~port).Client.body in
    let metrics = (Client.metrics ~port).Client.body in
    let num path json =
      match Option.bind (Json.member path json) Json.number with
      | Some v -> v
      | None -> Float.nan
    in
    let buf = Buffer.create 1024 in
    let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    (match health with
    | Ok h ->
        out "umlfront top - 127.0.0.1:%d  uptime %ss  inflight %s  requests %s  pool %s\n"
          port
          (cell (num "uptime_s" h) 1)
          (cell (num "inflight" h) 0)
          (cell (num "requests" h) 0)
          (cell (num "pool" h) 0)
    | Error e -> out "umlfront top - 127.0.0.1:%d  (healthz unreadable: %s)\n" port e);
    (match
       ( metric_value metrics "umlfront_serve_cache_hit_total",
         metric_value metrics "umlfront_serve_cache_miss_total" )
     with
    | Some h, Some m -> out "cache: %.0f hit / %.0f miss\n" h m
    | _ -> ());
    out "\n  %-16s %10s %10s %10s %12s %12s %12s\n" "endpoint" "req/s 10s"
      "req/s 1m" "req/s 5m" "p50 ms 1m" "p95 ms 1m" "p99 ms 1m";
    (match windows with
    | Error e -> out "  (windows unreadable: %s)\n" e
    | Ok w ->
        let window_list = Json.items (Option.value ~default:(Json.List []) (Json.member "windows" w)) in
        let series_of idx =
          match List.nth_opt window_list idx with
          | Some wj -> (
              match Json.member "series" wj with
              | Some (Json.Obj fields) -> fields
              | _ -> [])
          | None -> []
        in
        let s10 = series_of 0 and s60 = series_of 1 and s300 = series_of 2 in
        let names =
          List.sort_uniq String.compare
            (List.concat_map (List.map fst) [ s10; s60; s300 ])
        in
        let field series name key =
          match List.assoc_opt name series with
          | Some s -> (
              match Option.bind (Json.member key s) Json.number with
              | Some v -> v
              | None -> Float.nan)
          | None -> Float.nan
        in
        if names = [] then out "  (no traffic in the last 5 minutes)\n"
        else
          List.iter
            (fun name ->
              out "  %-16s %10s %10s %10s %12s %12s %12s\n" name
                (cell (field s10 name "rate") 2)
                (cell (field s60 name "rate") 2)
                (cell (field s300 name "rate") 2)
                (cell (field s60 name "p50" /. 1000.) 2)
                (cell (field s60 name "p95" /. 1000.) 2)
                (cell (field s60 name "p99" /. 1000.) 2))
            names);
    Buffer.contents buf
  in
  let action server interval iterations =
    let port = parse_server server in
    let rec loop i =
      if iterations = 0 || i < iterations then begin
        let frame = render port in
        if i > 0 || iterations <> 1 then print_string "\027[2J\027[H";
        print_string frame;
        flush stdout;
        if iterations = 0 || i + 1 < iterations then begin
          (try Unix.sleepf interval
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          loop (i + 1)
        end
      end
    in
    loop 0
  in
  let server_arg =
    let doc = "Server to watch: PORT, HOST:PORT or a http:// URL." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SERVER" ~doc)
  in
  let interval_arg =
    let doc = "Refresh interval in seconds." in
    Arg.(value & opt float 2. & info [ "interval"; "i" ] ~docv:"SECONDS" ~doc)
  in
  let iterations_arg =
    let doc = "Stop after $(docv) refreshes (0 = run until interrupted)." in
    Arg.(value & opt int 0 & info [ "iterations"; "n" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live view of a running umlfront serve: rolling per-endpoint req/s \
          and latency quantiles (10s/1m/5m windows) polled from /api/windows \
          and /metrics, refreshed in place")
    Term.(
      term_result'
        (const (fun server interval iterations ->
             protect (fun () -> action server interval iterations))
        $ server_arg $ interval_arg $ iterations_arg))

let fuzz_cmd =
  let module Conf = Umlfront_conformance.Conform in
  let module Fuzz = Umlfront_conformance.Fuzz in
  let action seed count backends engine rounds shrink corpus =
    let backends = parse_backends backends in
    let progress (c : Fuzz.case) =
      let verdict =
        match Conf.disagreements c.Fuzz.report with
        | [] -> "agree"
        | ds ->
            "DISAGREE: "
            ^ String.concat ", " (List.map (fun (b, _) -> Conf.backend_name b) ds)
      in
      Printf.printf "case %3d  %-10s  seed %-8d  %s\n%!" c.Fuzz.index c.Fuzz.shape
        c.Fuzz.case_seed verdict
    in
    let outcome =
      Fuzz.run ?backends ~engine ~rounds ~shrink ~corpus ~progress ~seed ~count ()
    in
    Printf.printf "checked %d model(s), skipped %d, %d disagreement(s)\n"
      outcome.Fuzz.checked outcome.Fuzz.skipped
      (List.length outcome.Fuzz.failures);
    List.iter
      (fun (f : Fuzz.counterexample) ->
        let c = f.Fuzz.case in
        (match f.Fuzz.shrink_stats with
        | Some (s : Umlfront_conformance.Shrink.stats) ->
            Printf.printf "  %s (%s): shrunk %d -> %d blocks in %d attempts\n"
              c.Fuzz.report.Conf.model_name c.Fuzz.shape s.Umlfront_conformance.Shrink.initial_blocks
              s.Umlfront_conformance.Shrink.final_blocks
              s.Umlfront_conformance.Shrink.attempts
        | None ->
            Printf.printf "  %s (%s): shrinking disabled\n"
              c.Fuzz.report.Conf.model_name c.Fuzz.shape);
        Option.iter (Printf.printf "  counterexample written to %s\n") f.Fuzz.corpus_dir)
      outcome.Fuzz.failures;
    if outcome.Fuzz.failures <> [] then exit 1
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed for model generation.")
  in
  let count_arg =
    Arg.(
      value & opt int 25
      & info [ "count" ] ~docv:"N" ~doc:"Number of random models to check.")
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Minimize each counterexample by greedy deletion before writing it.")
  in
  let corpus_arg =
    Arg.(
      value & opt string "fuzz-corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Directory for counterexample artifacts (XMI, .mdl, repro commands).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Conformance-fuzz the backends: generate random UML models (pipelines, \
          scatter/gather, cyclic, multi-CPU, multi-rate), check every backend \
          against the reference executor, shrink and record any counterexample; \
          exit non-zero on disagreement")
    Term.(
      term_result'
        (const (fun seed count backends engine rounds shrink corpus ->
             protect (fun () -> action seed count backends engine rounds shrink corpus))
        $ seed_arg $ count_arg $ backends_arg $ engine_arg $ rounds_arg $ shrink_arg
        $ corpus_arg))

let () =
  (* -v/--verbose (repeatable) turns on Logs reporting to stderr. *)
  let verbosity =
    Array.fold_left
      (fun acc arg ->
        match arg with "-v" | "--verbose" -> acc + 1 | _ -> acc)
      0 Sys.argv
  in
  if verbosity > 0 then (
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some (if verbosity > 1 then Logs.Debug else Logs.Info)));
  let args =
    List.filter (fun a -> a <> "-v" && a <> "--verbose") (Array.to_list Sys.argv)
  in
  (* Global --profile FILE.json / --journal FILE.jsonl: strip the flag
     anywhere on the command line, arm an at_exit dump.  [strip_global]
     handles both the split ("--flag FILE") and joined ("--flag=FILE")
     spellings, matching Cmdliner's own error shape (message + help
     pointer, exit 124) when the argument is missing. *)
  let strip_global flag args =
    let prefix = flag ^ "=" in
    let rec strip acc value = function
      | [] -> (List.rev acc, value)
      | [ f ] when String.equal f flag ->
          Printf.eprintf "umlfront: option '%s' needs an argument\n" flag;
          prerr_endline "Try 'umlfront --help' for more information.";
          exit 124
      | f :: file :: rest when String.equal f flag -> strip acc (Some file) rest
      | arg :: rest when String.starts_with ~prefix arg ->
          strip acc
            (Some (String.sub arg (String.length prefix) (String.length arg - String.length prefix)))
            rest
      | arg :: rest -> strip (arg :: acc) value rest
    in
    strip [] None args
  in
  let args, profile = strip_global "--profile" args in
  let args, journal = strip_global "--journal" args in
  Option.iter
    (fun file ->
      Obs.Trace.enable ();
      at_exit (fun () ->
          try
            Obs.Trace.write ~metrics:(Obs.Metrics.snapshot ()) file;
            Printf.eprintf "profile: wrote %s (%d events)\n%!" file
              (List.length (Obs.Trace.events ()))
          with Sys_error m -> Printf.eprintf "profile: cannot write trace: %s\n%!" m))
    profile;
  Option.iter
    (fun file ->
      at_exit (fun () ->
          try
            Obs.Journal.write file;
            Printf.eprintf "journal: wrote %s (%d entries)\n%!" file
              (List.length (Obs.Journal.entries ()))
          with Sys_error m -> Printf.eprintf "journal: cannot write: %s\n%!" m))
    journal;
  let argv = Array.of_list args in
  let info =
    Cmd.info "umlfront" ~version:"1.0.0"
      ~doc:"UML front-end for heterogeneous software code generation"
  in
  exit
    (Cmd.eval ~argv
       (Cmd.group info
          [
            map_cmd; allocate_cmd; simulate_cmd; codegen_cmd; fsm_cmd; dse_cmd;
            partition_cmd; capture_cmd; example_cmd; audit_cmd; cosim_cmd;
            plantuml_cmd; report_cmd; stats_cmd; journal_cmd; bench_diff_cmd;
            lint_cmd; conform_cmd; fuzz_cmd; serve_cmd; top_cmd;
          ]))
