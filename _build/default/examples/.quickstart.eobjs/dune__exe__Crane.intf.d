examples/crane.mli:
