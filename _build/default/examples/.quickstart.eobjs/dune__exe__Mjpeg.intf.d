examples/mjpeg.mli:
