examples/quickstart.mli:
