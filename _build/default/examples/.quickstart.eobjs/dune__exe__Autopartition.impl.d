examples/autopartition.ml: Array Format List Printf String Umlfront_core Umlfront_dataflow Umlfront_taskgraph Umlfront_uml
