examples/autopartition.mli:
