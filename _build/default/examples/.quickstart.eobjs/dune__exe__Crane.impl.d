examples/crane.ml: Array Format List Printf String Umlfront_casestudies Umlfront_codegen Umlfront_core Umlfront_dataflow Umlfront_uml
