examples/quickstart.ml: Array Format List Printf String Umlfront_casestudies Umlfront_core Umlfront_dataflow Umlfront_uml
