examples/synthetic.mli:
