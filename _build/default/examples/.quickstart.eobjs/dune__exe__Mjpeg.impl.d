examples/mjpeg.ml: Array Filename Format Printf Sys Umlfront_casestudies Umlfront_codegen Umlfront_core Umlfront_dataflow Umlfront_uml
