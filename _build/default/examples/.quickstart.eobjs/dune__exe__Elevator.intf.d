examples/elevator.mli:
