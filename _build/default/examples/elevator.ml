(* Elevator: the heterogeneous system the paper's introduction argues
   for.  One UML model, two code generation strategies:

   - the event-based mode controller (a hierarchical statechart) takes
     the control-flow branch of Fig. 1: flattening, minimization, and
     switch-based C from the FSM generator — once through the typed
     pipeline (Uml2fsm) and once through the generic rule engine over
     explicit metamodels (M2m), with the two results compared;

   - the cabin position loop (threads described by *activity diagrams*,
     the §6 extension) takes the dataflow branch: allocation is chosen
     by design-space exploration (the other §6 extension), the CAAM is
     generated, executed, and emitted as .mdl, E-core XML, C and
     SystemC. *)

module U = Umlfront_uml
module Core = Umlfront_core
module Dataflow = Umlfront_dataflow
module Codegen = Umlfront_codegen
module Fsm = Umlfront_fsm.Fsm
module Cosim = Umlfront_cosim.Cosim
module Elevator = Umlfront_casestudies.Elevator_system

let () =
  let uml = Elevator.model () in
  print_endline "=== Elevator UML model (activities + statechart) ===";
  Format.printf "%a@." U.Model.pp uml;

  print_endline "=== Control-flow branch: statechart -> FSM -> C ===";
  let typed = Core.Uml2fsm.run uml in
  let generic = Core.M2m.run uml in
  List.iter
    (fun (name, (g : Core.Uml2fsm.generated)) ->
      Printf.printf "  %s: %d states flattened, %d after minimization\n" name
        (List.length g.Core.Uml2fsm.fsm.Fsm.states)
        (List.length g.Core.Uml2fsm.minimized.Fsm.states);
      let via_engine = List.assoc name generic in
      let traces =
        [ [ "call_above"; "arrived"; "timeout" ]; [ "call_below"; "reverse"; "arrived" ] ]
      in
      Printf.printf "  generic-engine result behaves identically: %b\n"
        (Fsm.simulate_equal g.Core.Uml2fsm.fsm via_engine traces);
      Printf.printf "  C header: %d lines, C source: %d lines\n"
        (List.length (String.split_on_char '\n' g.Core.Uml2fsm.c_header))
        (List.length (String.split_on_char '\n' g.Core.Uml2fsm.c_source)))
    typed;

  print_endline "=== Dataflow branch: design-space exploration (§6) ===";
  let dse = Core.Dse.explore uml in
  print_string (Core.Dse.summary dse);
  let cpus = dse.Core.Dse.best.Core.Dse.cpus in
  Printf.printf "  chosen platform: %d CPU(s)\n" cpus;

  let out = Core.Flow.run ~strategy:(Core.Flow.Infer_bounded cpus) uml in
  print_endline "=== Generated CAAM (activity-diagram threads) ===";
  print_string (Core.Report.flow_summary out);
  print_string (Core.Report.caam_tree out.Core.Flow.caam);

  print_endline "=== Execution + schedule ===";
  let sdf = Dataflow.Sdf.of_model out.Core.Flow.caam in
  let outcome = Dataflow.Exec.run ~rounds:10 sdf in
  List.iter
    (fun (port, samples) ->
      Printf.printf "%s:" port;
      Array.iter (fun v -> Printf.printf " %.4f" v) samples;
      print_newline ())
    outcome.Dataflow.Exec.traces;
  print_string (Dataflow.Trace_export.gantt sdf);

  print_endline "=== Emitted artifacts ===";
  let mdl_lines = List.length (String.split_on_char '\n' out.Core.Flow.mdl) in
  let ecore_lines =
    List.length (String.split_on_char '\n' (Core.Flow.ecore_xml out))
  in
  let c_files = (Core.Flow.c_code out).Codegen.Gen_threads.files in
  let sc = Codegen.Gen_systemc.generate out.Core.Flow.caam in
  Printf.printf "  model.mdl        %4d lines\n" mdl_lines;
  Printf.printf "  model.ecore.xml  %4d lines\n" ecore_lines;
  List.iter
    (fun (name, content) ->
      Printf.printf "  %-16s %4d lines\n" name
        (List.length (String.split_on_char '\n' content)))
    c_files;
  Printf.printf "  model_sc.cpp     %4d lines (SystemC)\n"
    (List.length (String.split_on_char '\n' sc));

  (* The two branches, co-simulated: the mode FSM supervises the
     dataflow cabin loop through a simple shaft environment (the
     integration strategy the paper's related work compares against). *)
  print_endline "=== Co-simulation: mode FSM x dataflow loop ===";
  let mode_fsm = Umlfront_fsm.Flatten.run Elevator.mode_chart in
  let cfg =
    {
      Cosim.controller = mode_fsm;
      watchers =
        [
          Cosim.watcher ~event:"call_above" "call > 0";
          Cosim.watcher ~event:"arrived" "Height > 8";
          Cosim.watcher ~event:"timeout" "door_timer > 3";
        ];
      setters =
        [
          Cosim.setter ~action:"motor_on" ~var:"powered" "1";
          Cosim.setter ~action:"motor_off" ~var:"powered" "0";
          Cosim.setter ~action:"doors_open" ~var:"door" "1";
          Cosim.setter ~action:"doors_close" ~var:"door" "0";
        ];
      updates =
        [
          Cosim.update ~var:"Height" "Height + 0.6 * powered";
          Cosim.update ~var:"door_timer" "(door_timer + 1) * door";
        ];
      initial_store =
        [ ("call", 1.0); ("powered", 0.0); ("Height", 0.0); ("door", 0.0);
          ("door_timer", 0.0) ];
    }
  in
  let outcome = Cosim.run ~rounds:30 sdf cfg in
  List.iter
    (fun (s : Cosim.step) ->
      if s.Cosim.events <> [] then Format.printf "  %a@." Cosim.pp_step s)
    outcome.Cosim.steps;
  Printf.printf "  final mode: %s, cabin height %.1f\n" outcome.Cosim.final_state
    (Option.value (List.assoc_opt "Height" outcome.Cosim.final_store) ~default:0.0)
