(* Crane control system case study (paper §5.1, after Moser & Nebel's
   DATE'99 crane model).

   Three threads on one processor:
   - Tsensor  samples the crane position from an <<IO>> device;
   - Tcontrol runs the feedback controller.  Its sequence diagram has a
     data cycle (the control command feeds back into the error
     computation), so the tool must insert a temporal barrier — the
     "Delay inserted" of paper Fig. 5;
   - Tactuator drives the motor through a system output port.

   The run prints the generated model for Tcontrol (one S-function, two
   library blocks standing for the paper's two subsystems, and the
   automatically inserted UnitDelay), then executes the CAAM. *)

module U = Umlfront_uml
module Core = Umlfront_core
module Dataflow = Umlfront_dataflow

let () =
  let uml = Umlfront_casestudies.Crane_system.model () in
  print_endline "=== Crane UML model ===";
  Format.printf "%a@." U.Model.pp uml;
  let output = Core.Flow.run ~strategy:Core.Flow.Use_deployment uml in
  print_endline "=== Flow summary (note the inserted temporal barrier) ===";
  print_string (Core.Report.flow_summary output);
  print_endline "=== Generated model, Tcontrol (paper Fig. 5) ===";
  print_string (Core.Report.caam_tree output.Core.Flow.caam);
  print_endline "=== SDF execution: the loop now runs deadlock-free ===";
  let sdf = Dataflow.Sdf.of_model output.Core.Flow.caam in
  let outcome = Dataflow.Exec.run ~rounds:12 sdf in
  List.iter
    (fun (port, samples) ->
      Printf.printf "%s:" port;
      Array.iter (fun v -> Printf.printf " %.4f" v) samples;
      print_newline ())
    outcome.Dataflow.Exec.traces;
  print_endline "=== Generated multithreaded C (file inventory) ===";
  let generated = Core.Flow.c_code ~rounds:12 output in
  List.iter
    (fun (name, content) ->
      Printf.printf "  %-14s %4d lines\n" name
        (List.length (String.split_on_char '\n' content)))
    generated.Umlfront_codegen.Gen_threads.files
