(* Quickstart: the didactic example of paper Fig. 3.

   Three threads on two CPUs.  T3 samples a sensor (an <<IO>> object)
   and T1 fetches the value over the bus (GetValue, inter-CPU); T1 runs
   an S-function chain plus a Platform `mult` (which becomes a Product
   block) and pushes its result to T2 (SetValue, intra-CPU); T2 filters
   and drives the actuator (system output port).

   Running this prints the UML model, the generated CAAM hierarchy with
   the inferred SWFIFO/GFIFO channels, the .mdl text, and an execution
   trace from the SDF simulator. *)

module U = Umlfront_uml
module Core = Umlfront_core
module Dataflow = Umlfront_dataflow

let () =
  let uml = Umlfront_casestudies.Didactic.model () in
  print_endline "=== UML model (front-end, single language) ===";
  Format.printf "%a@." U.Model.pp uml;
  let output = Core.Flow.run ~strategy:Core.Flow.Use_deployment uml in
  print_endline "=== Flow summary ===";
  print_string (Core.Report.flow_summary output);
  print_endline "=== Generated CAAM hierarchy ===";
  print_string (Core.Report.caam_tree output.Core.Flow.caam);
  print_endline "=== Generated .mdl (excerpt) ===";
  let mdl_lines = String.split_on_char '\n' output.Core.Flow.mdl in
  List.iteri (fun i l -> if i < 30 then print_endline l) mdl_lines;
  Printf.printf "... (%d lines total)\n" (List.length mdl_lines);
  print_endline "=== SDF execution (10 rounds) ===";
  let sdf = Dataflow.Sdf.of_model output.Core.Flow.caam in
  let outcome = Dataflow.Exec.run ~rounds:10 sdf in
  List.iter
    (fun (port, samples) ->
      Printf.printf "%s:" port;
      Array.iter (fun v -> Printf.printf " %.4f" v) samples;
      print_newline ())
    outcome.Dataflow.Exec.traces;
  print_endline "=== MPSoC timing estimate ===";
  Format.printf "%a@." Dataflow.Timing.pp_report (Dataflow.Timing.evaluate sdf)
