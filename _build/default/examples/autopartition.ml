(* Automatic thread partitioning + design-space exploration (§6).

   The designer writes a *single-threaded* audio pipeline: one thread
   reads a sample, runs three parallel filter bands, mixes them and
   writes the result.  The partitioner builds the call-level dataflow
   graph, linear-clusters it, splits the model into threads with Set
   transfers at the cut tokens, and DSE then picks the platform — no
   deployment diagram, no manual thread boundaries, as the paper's
   future work asks.  Behaviour preservation is demonstrated by
   executing both CAAMs. *)

module U = Umlfront_uml
module Core = Umlfront_core
module Dataflow = Umlfront_dataflow

let arg = U.Sequence.arg
let f32 = U.Datatype.D_float

let monolithic () =
  let b = U.Builder.create "equalizer" in
  U.Builder.thread b "Tdsp";
  U.Builder.platform b "Platform";
  U.Builder.io_device b "Audio";
  U.Builder.passive_object b ~cls:"Band" "band";
  U.Builder.call b ~from:"Tdsp" ~target:"Audio" "getSample" ~result:(arg "x" f32);
  (* Three parallel bands over the same input. *)
  List.iter
    (fun band ->
      U.Builder.call b ~from:"Tdsp" ~target:"band" (band ^ "_filter")
        ~args:[ arg "x" f32 ]
        ~result:(arg (band ^ "_y") f32);
      U.Builder.call b ~from:"Tdsp" ~target:"band" (band ^ "_shape")
        ~args:[ arg (band ^ "_y") f32 ]
        ~result:(arg (band ^ "_z") f32))
    [ "low"; "mid"; "high" ];
  U.Builder.call b ~from:"Tdsp" ~target:"band" "mix"
    ~args:[ arg "low_z" f32; arg "mid_z" f32; arg "high_z" f32 ]
    ~result:(arg "out" f32);
  U.Builder.call b ~from:"Tdsp" ~target:"Platform" "sin" ~args:[ arg "out" f32 ]
    ~result:(arg "shaped" f32);
  U.Builder.call b ~from:"Tdsp" ~target:"Audio" "setSample" ~args:[ arg "shaped" f32 ];
  U.Builder.finish b

let run_traces uml =
  let out = Core.Flow.run ~strategy:Core.Flow.Infer_linear uml in
  let sdf = Dataflow.Sdf.of_model out.Core.Flow.caam in
  (out, (Dataflow.Exec.run ~rounds:8 sdf).Dataflow.Exec.traces)

let () =
  let uml = monolithic () in
  print_endline "=== Single-threaded UML specification ===";
  Format.printf "%a@." U.Model.pp uml;

  print_endline "=== Call-level dataflow graph ===";
  Format.printf "%a@." Umlfront_taskgraph.Graph.pp (Core.Partitioning.call_graph uml);

  print_endline "=== Automatic partition ===";
  let r = Core.Partitioning.run uml in
  List.iter
    (fun (call, thread) -> Printf.printf "  %-28s -> %s\n" call thread)
    r.Core.Partitioning.thread_of_call;
  List.iter
    (fun (token, p, c) -> Printf.printf "  transfer %-8s %s -> %s\n" token p c)
    r.Core.Partitioning.cut_tokens;

  print_endline "=== DSE over the partitioned model ===";
  let dse = Core.Dse.explore r.Core.Partitioning.partitioned in
  print_string (Core.Dse.summary dse);

  print_endline "=== Behaviour preservation ===";
  let _, mono_traces = run_traces uml in
  let out, part_traces = run_traces r.Core.Partitioning.partitioned in
  List.iter
    (fun (port, samples) ->
      let samples' = List.assoc port part_traces in
      let same = samples = samples' in
      Printf.printf "  %s: monolithic and partitioned traces %s\n" port
        (if same then "IDENTICAL" else "DIFFER (bug!)");
      Printf.printf "    %s\n"
        (String.concat " "
           (Array.to_list (Array.map (Printf.sprintf "%.4f") samples))))
    mono_traces;

  print_endline "=== Partitioned CAAM ===";
  print_string (Core.Report.caam_tree out.Core.Flow.caam);
  print_string
    (Dataflow.Trace_export.gantt (Dataflow.Sdf.of_model out.Core.Flow.caam))
