(* Synthetic 12-thread example (paper §5.2, Figs. 6-8).

   Twelve communicating threads A..M (no K, as in the paper) specified
   purely by sequence diagrams — no deployment diagram.  The thread
   allocation optimization builds the task graph from the Set messages
   (edge weight = transferred bytes), runs linear clustering, and the
   mapping then emits a CAAM whose top level has one CPU-SS per cluster
   connected by inferred GFIFO channels (the shape of paper Fig. 8).
   See Umlfront_casestudies.Synthetic_system for the reconstruction
   notes. *)

module Core = Umlfront_core
module Taskgraph = Umlfront_taskgraph
module Dataflow = Umlfront_dataflow
module Synthetic = Umlfront_casestudies.Synthetic_system

let () =
  let uml = Synthetic.model () in
  print_endline "=== Task graph captured from the sequence diagram (Fig. 7a) ===";
  let g = Core.Allocation.task_graph uml in
  Format.printf "%a@." Taskgraph.Graph.pp g;
  print_endline "=== Linear clustering result (Fig. 7b) ===";
  let clustering = Taskgraph.Linear_clustering.run g in
  print_string (Core.Report.clustering_table g clustering);
  print_endline "=== Flow with inferred allocation ===";
  let output = Core.Flow.run ~strategy:Core.Flow.Infer_linear uml in
  print_string (Core.Report.flow_summary output);
  print_endline "=== CAAM top level (Fig. 8): CPU-SS + inter-CPU channels ===";
  print_string (Core.Report.caam_tree output.Core.Flow.caam);
  print_endline "=== Comparison with baseline allocations ===";
  let show name clustering =
    Printf.printf "  %-16s clusters %2d  inter-volume %7.1f  parallel time %7.1f\n" name
      (Taskgraph.Clustering.cluster_count clustering)
      (Taskgraph.Clustering.inter_cluster_volume g clustering)
      (Taskgraph.Clustering.parallel_time g clustering)
  in
  show "linear" clustering;
  show "single-cpu" (Taskgraph.Baselines.single_cluster g);
  show "one-per-thread" (Taskgraph.Baselines.one_per_node g);
  show "round-robin-4" (Taskgraph.Baselines.round_robin ~cpus:4 g);
  show "random-4" (Taskgraph.Baselines.random ~seed:42 ~cpus:4 g);
  print_endline "=== MPSoC timing of the generated CAAM ===";
  let sdf = Dataflow.Sdf.of_model output.Core.Flow.caam in
  Format.printf "%a@." Dataflow.Timing.pp_report (Dataflow.Timing.evaluate sdf)
