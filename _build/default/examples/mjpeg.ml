(* Motion-JPEG-style pipeline.

   The paper's target backend is the Simulink-based MPSoC flow of Huang
   et al. (DAC'07), whose case study is Motion-JPEG.  This example
   models a small M-JPEG encoder in UML: a capture thread splits the
   frame into a luma and a chroma plane, two plane pipelines run
   DCT -> quantization in parallel, and a VLC thread merges the
   bitstream.  No deployment diagram is drawn; the flow is run twice —
   once with unrestricted linear clustering and once folded onto a
   2-CPU platform — and the generated C code is written to a temporary
   directory ready for `gcc -pthread`. *)

module U = Umlfront_uml
module Core = Umlfront_core
module Dataflow = Umlfront_dataflow
module Codegen = Umlfront_codegen

let run_and_report name strategy uml =
  Printf.printf "=== %s ===\n" name;
  let output = Core.Flow.run ~strategy uml in
  print_string (Core.Report.flow_summary output);
  let sdf = Dataflow.Sdf.of_model output.Core.Flow.caam in
  Format.printf "%a@." Dataflow.Timing.pp_report (Dataflow.Timing.evaluate sdf);
  output

let () =
  let uml = Umlfront_casestudies.Mjpeg_system.model () in
  let unrestricted = run_and_report "Unrestricted linear clustering" Core.Flow.Infer_linear uml in
  let folded = run_and_report "Folded to a 2-CPU platform" (Core.Flow.Infer_bounded 2) uml in
  ignore unrestricted;
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "umlfront_mjpeg_c" in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  Codegen.Gen_threads.save ~rounds:8 folded.Core.Flow.caam ~dir;
  Printf.printf "=== Multithreaded C written to %s ===\n" dir;
  Array.iter (fun f -> Printf.printf "  %s\n" f) (Sys.readdir dir);
  print_endline "Compile with: gcc -pthread model.c sfunctions.c fifo.c -lm"
