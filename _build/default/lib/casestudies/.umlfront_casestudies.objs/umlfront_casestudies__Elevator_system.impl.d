lib/casestudies/elevator_system.ml: Umlfront_uml
