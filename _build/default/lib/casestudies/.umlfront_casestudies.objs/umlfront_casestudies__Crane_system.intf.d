lib/casestudies/crane_system.mli: Umlfront_uml
