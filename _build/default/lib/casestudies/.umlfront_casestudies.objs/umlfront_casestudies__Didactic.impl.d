lib/casestudies/didactic.ml: Umlfront_uml
