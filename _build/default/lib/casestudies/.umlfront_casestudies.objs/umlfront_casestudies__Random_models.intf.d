lib/casestudies/random_models.mli: Umlfront_uml
