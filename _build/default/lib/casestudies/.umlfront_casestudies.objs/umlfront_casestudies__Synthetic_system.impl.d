lib/casestudies/synthetic_system.ml: List Printf String Umlfront_uml
