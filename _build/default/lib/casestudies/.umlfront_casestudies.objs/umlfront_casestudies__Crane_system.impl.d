lib/casestudies/crane_system.ml: Umlfront_uml
