lib/casestudies/synthetic_system.mli: Umlfront_uml
