lib/casestudies/mjpeg_system.mli: Umlfront_uml
