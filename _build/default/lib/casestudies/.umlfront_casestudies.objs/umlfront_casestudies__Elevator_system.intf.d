lib/casestudies/elevator_system.mli: Umlfront_uml
