lib/casestudies/random_models.ml: Char List Printf Random Umlfront_uml
