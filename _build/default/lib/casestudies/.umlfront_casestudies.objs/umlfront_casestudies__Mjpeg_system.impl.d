lib/casestudies/mjpeg_system.ml: List Umlfront_uml
