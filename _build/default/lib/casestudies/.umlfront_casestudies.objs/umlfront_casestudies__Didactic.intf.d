lib/casestudies/didactic.mli: Umlfront_uml
