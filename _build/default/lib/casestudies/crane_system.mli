(** The crane control system case study (paper §5.1, after Moser &
    Nebel DATE'99): three threads on one CPU, a feedback loop in
    Tcontrol whose mapping requires an automatically-inserted temporal
    barrier (paper Fig. 5). *)

val model : unit -> Umlfront_uml.Model.t
