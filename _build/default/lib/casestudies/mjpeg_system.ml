module U = Umlfront_uml

let block8x8 = U.Datatype.D_named ("block8x8", 64)
let bits = U.Datatype.D_named ("bits", 32)

let model () =
  let b = U.Builder.create "mjpeg" in
  List.iter (fun th -> U.Builder.thread b th) [ "Tcap"; "Ty"; "Tc"; "Tvlc" ];
  U.Builder.io_device b "Camera";
  U.Builder.passive_object b ~cls:"ColorSplit" "splitter";
  U.Builder.passive_object b ~cls:"DctQ" "dctY";
  U.Builder.passive_object b ~cls:"DctQ2" "dctC";
  U.Builder.passive_object b ~cls:"Vlc" "vlc";
  let arg = U.Sequence.arg in
  U.Builder.call b ~from:"Tcap" ~target:"Camera" "getFrame" ~result:(arg "frame" block8x8);
  U.Builder.call b ~from:"Tcap" ~target:"splitter" "lumaOf" ~args:[ arg "frame" block8x8 ]
    ~result:(arg "yplane" block8x8);
  U.Builder.call b ~from:"Tcap" ~target:"splitter" "chromaOf"
    ~args:[ arg "frame" block8x8 ] ~result:(arg "cplane" block8x8);
  U.Builder.call b ~from:"Tcap" ~target:"Ty" "SetY" ~args:[ arg "yplane" block8x8 ];
  U.Builder.call b ~from:"Tcap" ~target:"Tc" "SetC" ~args:[ arg "cplane" block8x8 ];
  U.Builder.call b ~from:"Ty" ~target:"dctY" "dct" ~args:[ arg "yplane" block8x8 ]
    ~result:(arg "ydct" block8x8);
  U.Builder.call b ~from:"Ty" ~target:"dctY" "quant" ~args:[ arg "ydct" block8x8 ]
    ~result:(arg "yq" block8x8);
  U.Builder.call b ~from:"Ty" ~target:"Tvlc" "SetYq" ~args:[ arg "yq" block8x8 ];
  U.Builder.call b ~from:"Tc" ~target:"dctC" "dct" ~args:[ arg "cplane" block8x8 ]
    ~result:(arg "cdct" block8x8);
  U.Builder.call b ~from:"Tc" ~target:"dctC" "quant" ~args:[ arg "cdct" block8x8 ]
    ~result:(arg "cq" block8x8);
  U.Builder.call b ~from:"Tc" ~target:"Tvlc" "SetCq" ~args:[ arg "cq" block8x8 ];
  U.Builder.call b ~from:"Tvlc" ~target:"vlc" "encode"
    ~args:[ arg "yq" block8x8; arg "cq" block8x8 ]
    ~result:(arg "stream" bits);
  U.Builder.call b ~from:"Tvlc" ~target:"Camera" "setStream" ~args:[ arg "stream" bits ];
  U.Builder.finish b
