module U = Umlfront_uml

let thread_names = [ "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H"; "I"; "J"; "L"; "M" ]

let communications =
  [
    ("A", "B", 10); ("B", "C", 10); ("C", "D", 10); ("D", "F", 10); ("F", "J", 10);
    ("A", "E", 2); ("E", "I", 8); ("I", "J", 2);
    ("B", "H", 2); ("H", "L", 8); ("L", "J", 2);
    ("C", "G", 2); ("G", "M", 8); ("M", "J", 2);
  ]

let payload bytes = U.Datatype.D_named ("buf", bytes)

(* Each thread performs local work, packs one token per outgoing edge
   and Sets it to the receiver; the first thread reads the environment
   and the last writes it.  [sink] is the thread receiving the final
   result. *)
let build ~name ~threads ~comms ~source ~sink =
  let b = U.Builder.create name in
  List.iter (fun th -> U.Builder.thread b th) threads;
  U.Builder.io_device b "IODevice";
  List.iter (fun th -> U.Builder.passive_object b ~cls:("Work" ^ th) ("work" ^ th)) threads;
  let arg = U.Sequence.arg in
  let work_result th = arg ("w" ^ th) (payload 4) in
  let inputs_of th =
    List.filter_map
      (fun (src, dst, bytes) ->
        if String.equal dst th then Some (arg ("t" ^ src ^ "_" ^ dst) (payload bytes))
        else None)
      comms
  in
  U.Builder.call b ~from:source ~target:"IODevice" "getInput"
    ~result:(arg "seed" (payload 4));
  U.Builder.call b ~from:source ~target:("work" ^ source) "work"
    ~args:[ arg "seed" (payload 4) ]
    ~result:(work_result source);
  List.iter
    (fun th ->
      if not (String.equal th source) then
        U.Builder.call b ~from:th ~target:("work" ^ th) "work" ~args:(inputs_of th)
          ~result:(work_result th))
    threads;
  List.iter
    (fun (src, dst, bytes) ->
      U.Builder.call b ~from:src ~target:("work" ^ src)
        (Printf.sprintf "pack%s_%s" src dst)
        ~args:[ work_result src ]
        ~result:(arg ("t" ^ src ^ "_" ^ dst) (payload bytes));
      U.Builder.call b ~from:src ~target:dst
        (Printf.sprintf "Set%s_%s" src dst)
        ~args:[ arg ("t" ^ src ^ "_" ^ dst) (payload bytes) ])
    comms;
  U.Builder.call b ~from:sink ~target:"IODevice" "setResult" ~args:[ work_result sink ];
  U.Builder.finish b

let model () =
  build ~name:"synthetic" ~threads:thread_names ~comms:communications ~source:"A"
    ~sink:"J"

let scaled ~threads =
  if threads < 2 then invalid_arg "synthetic: threads < 2";
  let name i = Printf.sprintf "N%d" i in
  let all = List.init threads name in
  (* Heavy chain over the even-indexed threads, light feeders from the
     odd ones, mirroring the paper's shape at any size. *)
  let comms = ref [] in
  let chain = List.init ((threads + 1) / 2) (fun i -> name (2 * i)) in
  let rec chain_edges = function
    | a :: (b :: _ as rest) ->
        comms := (a, b, 10) :: !comms;
        chain_edges rest
    | [ _ ] | [] -> ()
  in
  chain_edges chain;
  List.iteri
    (fun i th ->
      if i mod 2 = 1 then
        let target = name (2 * (i / 2)) in
        comms := (target, th, 2) :: !comms)
    all;
  let last_chain = List.nth chain (List.length chain - 1) in
  build
    ~name:(Printf.sprintf "synthetic%d" threads)
    ~threads:all ~comms:(List.rev !comms) ~source:(name 0) ~sink:last_chain
