module U = Umlfront_uml

let f = U.Datatype.D_float
let arg = U.Sequence.arg

let mode_chart =
  U.Statechart.make "elevator_mode"
    [
      U.Statechart.state ~kind:U.Statechart.Initial "init";
      U.Statechart.state ~entry:"doors_close" "idle";
      U.Statechart.state ~entry:"motor_on" ~exit:"motor_off" "moving"
        ~children:
          [
            U.Statechart.state ~kind:U.Statechart.Initial "m_init";
            U.Statechart.state ~entry:"dir_up" "up";
            U.Statechart.state ~entry:"dir_down" "down";
          ];
      U.Statechart.state ~entry:"doors_open" "boarding";
    ]
    [
      U.Statechart.transition ~source:"init" ~target:"idle" ();
      U.Statechart.transition ~source:"m_init" ~target:"up" ();
      U.Statechart.transition ~trigger:"call_above" ~source:"idle" ~target:"up" ();
      U.Statechart.transition ~trigger:"call_below" ~source:"idle" ~target:"down" ();
      U.Statechart.transition ~trigger:"reverse" ~source:"up" ~target:"down" ();
      U.Statechart.transition ~trigger:"reverse" ~source:"down" ~target:"up" ();
      U.Statechart.transition ~trigger:"arrived" ~source:"moving" ~target:"boarding" ();
      U.Statechart.transition ~trigger:"timeout" ~source:"boarding" ~target:"idle" ();
    ]

(* The cabin position loop, drawn as one activity diagram per thread. *)
let model () =
  let b = U.Builder.create "elevator" in
  U.Builder.thread b "Tpos";
  U.Builder.thread b "Tctl";
  U.Builder.thread b "Tdrv";
  U.Builder.platform b "Platform";
  U.Builder.io_device b "Shaft";
  U.Builder.passive_object b ~cls:"PosFilter" "posFilter";
  U.Builder.passive_object b ~cls:"PidCtl" "pid";
  U.Builder.passive_object b ~cls:"MotorDrv" "motorDrv";
  (* Tpos: sample the shaft encoder and filter. *)
  U.Builder.activity b
    (U.Activity.make ~name:"act_pos" ~owner:"Tpos"
       [
         U.Activity.Initial "p0";
         U.Activity.action ~name:"p_read" ~target:"Shaft" ~result:(arg "h" f) "getHeight";
         U.Activity.action ~name:"p_filter" ~target:"posFilter"
           ~args:[ arg "h" f ] ~result:(arg "pos" f) "smooth";
         U.Activity.Final "p_end";
       ]
       [
         U.Activity.edge ~source:"p0" ~target:"p_read" ();
         U.Activity.edge ~source:"p_read" ~target:"p_filter" ();
         U.Activity.edge ~source:"p_filter" ~target:"p_end" ();
       ]);
  (* Tctl: fetch the position, run the PID with command feedback. *)
  U.Builder.activity b
    (U.Activity.make ~name:"act_ctl" ~owner:"Tctl"
       [
         U.Activity.Initial "c0";
         U.Activity.action ~name:"c_get" ~target:"Tpos" ~result:(arg "pos" f) "GetPos";
         U.Activity.action ~name:"c_err" ~target:"Platform"
           ~args:[ arg "pos" f; arg "cmd" f ]
           ~result:(arg "err" f) "sub";
         U.Activity.action ~name:"c_pid" ~target:"pid" ~args:[ arg "err" f ]
           ~result:(arg "raw" f) "correct";
         U.Activity.action ~name:"c_clip" ~target:"Platform" ~args:[ arg "raw" f ]
           ~result:(arg "cmd" f) "sat";
         U.Activity.action ~name:"c_send" ~target:"Tdrv" ~args:[ arg "cmd" f ] "SetCmd";
         U.Activity.Final "c_end";
       ]
       [
         U.Activity.edge ~source:"c0" ~target:"c_get" ();
         U.Activity.edge ~source:"c_get" ~target:"c_err" ();
         U.Activity.edge ~source:"c_err" ~target:"c_pid" ();
         U.Activity.edge ~source:"c_pid" ~target:"c_clip" ();
         U.Activity.edge ~source:"c_clip" ~target:"c_send" ();
         U.Activity.edge ~source:"c_send" ~target:"c_end" ();
       ]);
  (* Tdrv: convert the command into motor voltage. *)
  U.Builder.activity b
    (U.Activity.make ~name:"act_drv" ~owner:"Tdrv"
       [
         U.Activity.Initial "d0";
         U.Activity.action ~name:"d_amp" ~target:"motorDrv" ~args:[ arg "cmd" f ]
           ~result:(arg "volts" f) "amplify";
         U.Activity.action ~name:"d_out" ~target:"Shaft" ~args:[ arg "volts" f ]
           "setMotor";
         U.Activity.Final "d_end";
       ]
       [
         U.Activity.edge ~source:"d0" ~target:"d_amp" ();
         U.Activity.edge ~source:"d_amp" ~target:"d_out" ();
         U.Activity.edge ~source:"d_out" ~target:"d_end" ();
       ]);
  (* The mode controller rides along on the control-flow branch. *)
  U.Builder.statechart b mode_chart;
  U.Builder.finish b
