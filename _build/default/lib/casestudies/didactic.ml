module U = Umlfront_uml

let model () =
  let b = U.Builder.create "didactic" in
  U.Builder.thread b "T1";
  U.Builder.thread b "T2";
  U.Builder.thread b "T3";
  U.Builder.platform b "Platform";
  U.Builder.io_device b "IODevice";
  U.Builder.passive_object b ~cls:"Calc" "calcObj";
  U.Builder.passive_object b ~cls:"Dec" "decObj";
  U.Builder.passive_object b ~cls:"Filter" "filterObj";
  U.Builder.cpu b "CPU1";
  U.Builder.cpu b "CPU2";
  U.Builder.bus b "bus";
  U.Builder.allocate b ~thread:"T1" ~cpu:"CPU1";
  U.Builder.allocate b ~thread:"T2" ~cpu:"CPU1";
  U.Builder.allocate b ~thread:"T3" ~cpu:"CPU2";
  let arg = U.Sequence.arg in
  let f = U.Datatype.D_float in
  U.Builder.call b ~from:"T3" ~target:"IODevice" "getSensor" ~result:(arg "v" f);
  U.Builder.call b ~from:"T3" ~target:"Platform" "gain" ~args:[ arg "v" f ]
    ~result:(arg "a" f);
  U.Builder.call b ~from:"T1" ~target:"T3" "GetValue" ~result:(arg "a" f);
  U.Builder.call b ~from:"T1" ~target:"calcObj" "calc" ~args:[ arg "a" f ]
    ~result:(arg "r1" f);
  U.Builder.call b ~from:"T1" ~target:"decObj" "dec" ~args:[ arg "r1" f ]
    ~result:(arg "r2" f);
  U.Builder.call b ~from:"T1" ~target:"Platform" "mult" ~args:[ arg "r1" f; arg "r2" f ]
    ~result:(arg "r3" f);
  U.Builder.call b ~from:"T1" ~target:"T2" "SetValue" ~args:[ arg "r3" f ];
  U.Builder.call b ~from:"T2" ~target:"filterObj" "filter" ~args:[ arg "r3" f ]
    ~result:(arg "y" f);
  U.Builder.call b ~from:"T2" ~target:"IODevice" "setActuator" ~args:[ arg "y" f ];
  U.Builder.finish b
