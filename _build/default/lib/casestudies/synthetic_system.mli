(** The synthetic 12-thread example (paper §5.2, Figs. 6-8): threads
    A..M (no K, as in the paper) specified by sequence diagrams alone,
    exercising the automatic thread allocation.

    The paper's task-graph figure is partially garbled in the available
    text; this is a documented reconstruction: a heavy main chain
    A-B-C-D-F-J (the critical path) plus three lighter side chains
    E-I, G-M and H-L, which linear clustering maps to four CPUs — the
    four CPU-SS of paper Fig. 8. *)

val thread_names : string list

val communications : (string * string * int) list
(** (sender, receiver, bytes) — the reconstructed Fig. 7(a) edges. *)

val model : unit -> Umlfront_uml.Model.t

val scaled : threads:int -> Umlfront_uml.Model.t
(** A larger synthetic model of the same shape (one heavy chain plus
    side chains), for scalability benches.  [threads] >= 2. *)
