module U = Umlfront_uml

let model () =
  let b = U.Builder.create "crane" in
  U.Builder.thread b "Tsensor";
  U.Builder.thread b "Tcontrol";
  U.Builder.thread b "Tactuator";
  U.Builder.platform b "Platform";
  U.Builder.io_device b "IODevice";
  U.Builder.passive_object b ~cls:"SensorProc" "sensorProc";
  U.Builder.passive_object b ~cls:"Controller" "controller";
  U.Builder.passive_object b ~cls:"Motor" "motor";
  U.Builder.cpu b "CPU1";
  U.Builder.allocate b ~thread:"Tsensor" ~cpu:"CPU1";
  U.Builder.allocate b ~thread:"Tcontrol" ~cpu:"CPU1";
  U.Builder.allocate b ~thread:"Tactuator" ~cpu:"CPU1";
  let arg = U.Sequence.arg in
  let f = U.Datatype.D_float in
  U.Builder.call b ~from:"Tsensor" ~target:"IODevice" "getPosition" ~result:(arg "s" f);
  U.Builder.call b ~from:"Tsensor" ~target:"sensorProc" "sense" ~args:[ arg "s" f ]
    ~result:(arg "m" f);
  U.Builder.call b ~from:"Tcontrol" ~target:"Tsensor" "GetPos" ~result:(arg "m" f);
  (* The error uses the previous command u: a cyclic data dependency
     that the §4.2.2 optimization must break with a UnitDelay. *)
  U.Builder.call b ~from:"Tcontrol" ~target:"Platform" "sub"
    ~args:[ arg "m" f; arg "u" f ]
    ~result:(arg "e" f);
  U.Builder.call b ~from:"Tcontrol" ~target:"controller" "control" ~args:[ arg "e" f ]
    ~result:(arg "c" f);
  U.Builder.call b ~from:"Tcontrol" ~target:"Platform" "sat" ~args:[ arg "c" f ]
    ~result:(arg "u" f);
  U.Builder.call b ~from:"Tcontrol" ~target:"Tactuator" "SetCmd" ~args:[ arg "u" f ];
  U.Builder.call b ~from:"Tactuator" ~target:"motor" "drive" ~args:[ arg "u" f ]
    ~result:(arg "d" f);
  U.Builder.call b ~from:"Tactuator" ~target:"IODevice" "setVoltage" ~args:[ arg "d" f ];
  U.Builder.finish b
