(** A Motion-JPEG-style encoder pipeline, the application domain of the
    MPSoC backend the paper targets (Huang et al., DAC'07): capture
    splits a frame into two plane pipelines (DCT -> quantization) that
    rejoin in a VLC thread.  No deployment diagram: allocation is
    inferred. *)

val model : unit -> Umlfront_uml.Model.t
