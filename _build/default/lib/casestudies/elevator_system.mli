(** An elevator controller — the heterogeneous system the paper's
    introduction motivates: an event-based mode controller (state
    machine, mapped through the FSM branch of Fig. 1) next to a
    dataflow cabin-position loop (mapped through the Simulink branch).

    The dataflow threads are specified with {e activity diagrams}
    rather than sequence diagrams, exercising the future-work extension
    of §6. *)

val model : unit -> Umlfront_uml.Model.t

val mode_chart : Umlfront_uml.Statechart.t
(** The hierarchical mode controller (idle / moving{up,down} / doors). *)
