(** The didactic mapping example of paper Fig. 3: three threads on two
    CPUs, an S-function chain plus a Platform [mult] in T1, a GetValue
    over the bus, a SetValue within CPU1, and [<<IO>>] traffic. *)

val model : unit -> Umlfront_uml.Model.t
