(** Dynamic model instances conforming to a {!Meta} metamodel.

    Objects are identified by unique string ids and carry attribute
    slots and reference slots.  The model tracks containment so that
    serialization can nest contained objects. *)

type value = V_string of string | V_int of int | V_float of float | V_bool of bool

type obj
type t

val create : Meta.t -> t
(** Fresh empty model conforming to the given metamodel. *)

val metamodel : t -> Meta.t

(** {1 Objects} *)

val new_object : ?id:string -> t -> string -> obj
(** [new_object m cls] creates an instance of metaclass [cls].  A fresh
    id is generated when [id] is not supplied.
    @raise Invalid_argument for an unknown or abstract class, or a
    duplicate id. *)

val id : obj -> string
val class_of : obj -> string

val find : t -> string -> obj option
val find_exn : t -> string -> obj
val objects : t -> obj list
(** All objects, in creation order. *)

val all_of_class : t -> string -> obj list
(** Instances of the class or any subclass, in creation order. *)

val delete : t -> obj -> unit
(** Remove the object, its containment subtree, and all references to
    the removed objects. *)

(** {1 Attributes} *)

val set : t -> obj -> string -> value -> unit
(** @raise Invalid_argument for an unknown attribute or type mismatch. *)

val get : obj -> string -> value option
val get_string : obj -> string -> string option
val get_int : obj -> string -> int option
val get_bool : obj -> string -> bool option
val get_float : obj -> string -> float option

val set_string : t -> obj -> string -> string -> unit
val set_int : t -> obj -> string -> int -> unit
val set_bool : t -> obj -> string -> bool -> unit
val set_float : t -> obj -> string -> float -> unit

(** {1 References} *)

val add_ref : t -> src:obj -> string -> dst:obj -> unit
(** Append [dst] to the reference slot.  For single-valued references
    the previous target is replaced.
    @raise Invalid_argument for unknown reference, target class
    mismatch, or a containment violation (object already contained
    elsewhere). *)

val set_ref : t -> src:obj -> string -> dst:obj list -> unit
val refs : t -> obj -> string -> obj list
val ref1 : t -> obj -> string -> obj option
val remove_ref : t -> src:obj -> string -> dst:obj -> unit

val container : t -> obj -> obj option
(** The object containing this one, if any. *)

val roots : t -> obj list
(** Objects with no container, in creation order. *)

(** {1 Validation} *)

type violation = { object_id : string; complaint : string }

val validate : t -> violation list
(** Checks required attributes present, containment acyclic, and all
    reference targets alive.  Empty list means the model conforms. *)

val pp_violation : Format.formatter -> violation -> unit

(** {1 Statistics} *)

val size : t -> int
val pp : Format.formatter -> t -> unit
