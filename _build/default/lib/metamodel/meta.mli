(** Metamodel descriptions, in the spirit of (a small subset of) EMF
    Ecore.

    A metamodel declares metaclasses; each metaclass declares typed
    attributes and references.  References are either {e containment}
    (the target lives inside the source, forming a forest) or plain
    cross-references.  Dynamic instances of a metamodel are built with
    {!Mmodel}. *)

type attr_type =
  | T_string
  | T_int
  | T_float
  | T_bool
  | T_enum of string list  (** allowed literals *)

type attribute = {
  attr_name : string;
  attr_type : attr_type;
  attr_required : bool;
}

type reference = {
  ref_name : string;
  ref_target : string;  (** metaclass name *)
  ref_containment : bool;
  ref_many : bool;
}

type metaclass = {
  class_name : string;
  class_super : string option;
  class_abstract : bool;
  class_attributes : attribute list;
  class_references : reference list;
}

type t = { mm_name : string; mm_classes : metaclass list }

val attribute : ?required:bool -> string -> attr_type -> attribute
val reference : ?containment:bool -> ?many:bool -> string -> string -> reference

val metaclass :
  ?super:string ->
  ?abstract:bool ->
  ?attributes:attribute list ->
  ?references:reference list ->
  string ->
  metaclass

val create : name:string -> metaclass list -> t
(** @raise Invalid_argument on duplicate class names or a dangling
    super/reference target. *)

val find_class : t -> string -> metaclass option
val find_class_exn : t -> string -> metaclass

val is_subclass_of : t -> sub:string -> super:string -> bool
(** Reflexive-transitive subclass check. *)

val all_attributes : t -> string -> attribute list
(** Attributes including inherited ones, supers first. *)

val all_references : t -> string -> reference list

val find_attribute : t -> cls:string -> string -> attribute option
val find_reference : t -> cls:string -> string -> reference option

val concrete_classes : t -> string list

val pp : Format.formatter -> t -> unit
