(** Traceability links between source and target model elements,
    recorded by transformations so that later passes (and users) can
    resolve "what did this element become?". *)

type link = { rule : string; sources : string list; targets : string list }
type t

val create : unit -> t
val record : t -> rule:string -> sources:string list -> targets:string list -> unit
val links : t -> link list

val targets_of : ?rule:string -> t -> string -> string list
(** Targets produced from the given source id (optionally restricted to
    one rule), in recording order. *)

val sources_of : ?rule:string -> t -> string -> string list
val rules : t -> string list
val size : t -> int
val pp : Format.formatter -> t -> unit
