type link = { rule : string; sources : string list; targets : string list }
type t = { mutable entries : link list }

let create () = { entries = [] }

let record t ~rule ~sources ~targets =
  t.entries <- { rule; sources; targets } :: t.entries

let links t = List.rev t.entries

let matching ?rule t =
  links t
  |> List.filter (fun l ->
         match rule with Some r -> String.equal l.rule r | None -> true)

let targets_of ?rule t source =
  matching ?rule t
  |> List.filter (fun l -> List.mem source l.sources)
  |> List.concat_map (fun l -> l.targets)

let sources_of ?rule t target =
  matching ?rule t
  |> List.filter (fun l -> List.mem target l.targets)
  |> List.concat_map (fun l -> l.sources)

let rules t = links t |> List.map (fun l -> l.rule) |> List.sort_uniq compare
let size t = List.length t.entries

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun l ->
      Fmt.pf ppf "%s: [%s] -> [%s]@," l.rule (String.concat ", " l.sources)
        (String.concat ", " l.targets))
    (links t);
  Fmt.pf ppf "@]"
