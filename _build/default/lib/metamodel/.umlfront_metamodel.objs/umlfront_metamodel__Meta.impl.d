lib/metamodel/meta.ml: Fmt Hashtbl List Printf String
