lib/metamodel/ecore_io.ml: List Meta Mmodel Printf String Umlfront_xml
