lib/metamodel/meta.mli: Format
