lib/metamodel/trace.ml: Fmt List String
