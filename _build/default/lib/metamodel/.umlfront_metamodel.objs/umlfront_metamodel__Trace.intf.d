lib/metamodel/trace.mli: Format
