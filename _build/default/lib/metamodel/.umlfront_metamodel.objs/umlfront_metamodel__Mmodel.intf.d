lib/metamodel/mmodel.mli: Format Meta
