lib/metamodel/ecore_io.mli: Meta Mmodel Umlfront_xml
