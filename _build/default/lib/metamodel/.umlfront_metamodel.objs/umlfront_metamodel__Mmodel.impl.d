lib/metamodel/mmodel.ml: Fmt Hashtbl List Meta Printf String
