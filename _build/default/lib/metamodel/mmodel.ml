type value = V_string of string | V_int of int | V_float of float | V_bool of bool

type obj = {
  obj_id : string;
  obj_class : string;
  mutable slots : (string * value) list;
  mutable ref_slots : (string * string list) list;
}

type t = {
  mm : Meta.t;
  table : (string, obj) Hashtbl.t;
  mutable order : string list;  (* reverse creation order *)
  mutable counter : int;
}

let create mm = { mm; table = Hashtbl.create 64; order = []; counter = 0 }
let metamodel m = m.mm
let id o = o.obj_id
let class_of o = o.obj_class
let find m oid = Hashtbl.find_opt m.table oid

let find_exn m oid =
  match find m oid with
  | Some o -> o
  | None -> invalid_arg (Printf.sprintf "model: no object with id %s" oid)

let objects m = List.rev_map (fun oid -> find_exn m oid) m.order

let new_object ?id m cls =
  (match Meta.find_class m.mm cls with
  | None -> invalid_arg (Printf.sprintf "model: unknown class %s" cls)
  | Some c when c.Meta.class_abstract ->
      invalid_arg (Printf.sprintf "model: class %s is abstract" cls)
  | Some _ -> ());
  let oid =
    match id with
    | Some id ->
        if Hashtbl.mem m.table id then
          invalid_arg (Printf.sprintf "model: duplicate id %s" id);
        id
    | None ->
        let rec fresh () =
          m.counter <- m.counter + 1;
          let candidate = Printf.sprintf "%s_%d" cls m.counter in
          if Hashtbl.mem m.table candidate then fresh () else candidate
        in
        fresh ()
  in
  let o = { obj_id = oid; obj_class = cls; slots = []; ref_slots = [] } in
  Hashtbl.add m.table oid o;
  m.order <- oid :: m.order;
  o

let all_of_class m cls =
  objects m |> List.filter (fun o -> Meta.is_subclass_of m.mm ~sub:o.obj_class ~super:cls)

let value_matches ty v =
  match (ty, v) with
  | Meta.T_string, V_string _ | Meta.T_int, V_int _ -> true
  | Meta.T_float, V_float _ | Meta.T_bool, V_bool _ -> true
  | Meta.T_enum lits, V_string s -> List.mem s lits
  | (Meta.T_string | Meta.T_int | Meta.T_float | Meta.T_bool | Meta.T_enum _), _ ->
      false

let set m o name v =
  match Meta.find_attribute m.mm ~cls:o.obj_class name with
  | None ->
      invalid_arg (Printf.sprintf "model: class %s has no attribute %s" o.obj_class name)
  | Some a ->
      if not (value_matches a.Meta.attr_type v) then
        invalid_arg (Printf.sprintf "model: attribute %s.%s type mismatch" o.obj_class name);
      o.slots <- (name, v) :: List.remove_assoc name o.slots

let get o name = List.assoc_opt name o.slots

let get_string o name =
  match get o name with Some (V_string s) -> Some s | Some _ | None -> None

let get_int o name =
  match get o name with Some (V_int i) -> Some i | Some _ | None -> None

let get_bool o name =
  match get o name with Some (V_bool b) -> Some b | Some _ | None -> None

let get_float o name =
  match get o name with Some (V_float f) -> Some f | Some _ | None -> None

let set_string m o name s = set m o name (V_string s)
let set_int m o name i = set m o name (V_int i)
let set_bool m o name b = set m o name (V_bool b)
let set_float m o name f = set m o name (V_float f)

let ref_meta m o name =
  match Meta.find_reference m.mm ~cls:o.obj_class name with
  | None ->
      invalid_arg (Printf.sprintf "model: class %s has no reference %s" o.obj_class name)
  | Some r -> r

let container m o =
  let contains candidate =
    Meta.all_references m.mm candidate.obj_class
    |> List.exists (fun r ->
           r.Meta.ref_containment
           &&
           match List.assoc_opt r.Meta.ref_name candidate.ref_slots with
           | Some targets -> List.mem o.obj_id targets
           | None -> false)
  in
  objects m |> List.find_opt contains

let add_ref m ~src name ~dst =
  let r = ref_meta m src name in
  if not (Meta.is_subclass_of m.mm ~sub:dst.obj_class ~super:r.Meta.ref_target) then
    invalid_arg
      (Printf.sprintf "model: reference %s.%s expects %s, got %s" src.obj_class name
         r.Meta.ref_target dst.obj_class);
  if r.Meta.ref_containment then (
    match container m dst with
    | Some c when not (String.equal c.obj_id src.obj_id) ->
        invalid_arg
          (Printf.sprintf "model: object %s is already contained in %s" dst.obj_id c.obj_id)
    | Some _ | None -> ());
  let existing =
    match List.assoc_opt name src.ref_slots with Some l -> l | None -> []
  in
  let updated =
    if r.Meta.ref_many then
      if List.mem dst.obj_id existing then existing else existing @ [ dst.obj_id ]
    else [ dst.obj_id ]
  in
  src.ref_slots <- (name, updated) :: List.remove_assoc name src.ref_slots

let set_ref m ~src name ~dst =
  src.ref_slots <- List.remove_assoc name src.ref_slots;
  List.iter (fun d -> add_ref m ~src name ~dst:d) dst

let refs m o name =
  ignore (ref_meta m o name);
  match List.assoc_opt name o.ref_slots with
  | None -> []
  | Some ids -> List.filter_map (find m) ids

let ref1 m o name = match refs m o name with [] -> None | first :: _ -> Some first

let remove_ref m ~src name ~dst =
  ignore (ref_meta m src name);
  match List.assoc_opt name src.ref_slots with
  | None -> ()
  | Some ids ->
      let ids = List.filter (fun i -> not (String.equal i dst.obj_id)) ids in
      src.ref_slots <- (name, ids) :: List.remove_assoc name src.ref_slots

let contained_children m o =
  Meta.all_references m.mm o.obj_class
  |> List.filter (fun r -> r.Meta.ref_containment)
  |> List.concat_map (fun r -> refs m o r.Meta.ref_name)

let delete m o =
  let rec collect acc o =
    let acc = o.obj_id :: acc in
    List.fold_left collect acc (contained_children m o)
  in
  let doomed = collect [] o in
  List.iter (Hashtbl.remove m.table) doomed;
  m.order <- List.filter (fun oid -> not (List.mem oid doomed)) m.order;
  let purge survivor =
    survivor.ref_slots <-
      List.map
        (fun (name, ids) -> (name, List.filter (fun i -> not (List.mem i doomed)) ids))
        survivor.ref_slots
  in
  List.iter purge (objects m)

let roots m = objects m |> List.filter (fun o -> container m o = None)

type violation = { object_id : string; complaint : string }

let pp_violation ppf v = Fmt.pf ppf "%s: %s" v.object_id v.complaint

let validate m =
  let issues = ref [] in
  let blame o complaint = issues := { object_id = o.obj_id; complaint } :: !issues in
  let check_object o =
    List.iter
      (fun a ->
        if a.Meta.attr_required && get o a.Meta.attr_name = None then
          blame o (Printf.sprintf "missing required attribute %s" a.Meta.attr_name))
      (Meta.all_attributes m.mm o.obj_class);
    List.iter
      (fun (name, ids) ->
        List.iter
          (fun i ->
            if find m i = None then
              blame o (Printf.sprintf "reference %s targets dead object %s" name i))
          ids)
      o.ref_slots
  in
  List.iter check_object (objects m);
  (* Containment acyclicity: walk up from every object, bounded by size. *)
  let n = Hashtbl.length m.table in
  let check_cycle o =
    let rec up steps current =
      if steps > n then blame o "containment cycle"
      else
        match container m current with None -> () | Some c -> up (steps + 1) c
    in
    up 0 o
  in
  List.iter check_cycle (objects m);
  List.rev !issues

let size m = Hashtbl.length m.table

let pp_value ppf = function
  | V_string s -> Fmt.pf ppf "%S" s
  | V_int i -> Fmt.int ppf i
  | V_float f -> Fmt.float ppf f
  | V_bool b -> Fmt.bool ppf b

let pp ppf m =
  Fmt.pf ppf "@[<v>model (%d objects, metamodel %s)@," (size m) m.mm.Meta.mm_name;
  List.iter
    (fun o ->
      Fmt.pf ppf "  %s : %s@," o.obj_id o.obj_class;
      List.iter (fun (k, v) -> Fmt.pf ppf "    %s = %a@," k pp_value v) o.slots;
      List.iter
        (fun (k, ids) -> Fmt.pf ppf "    %s -> [%s]@," k (String.concat "; " ids))
        o.ref_slots)
    (objects m);
  Fmt.pf ppf "@]"
