module Xml = Umlfront_xml.Xml

let value_to_string = function
  | Mmodel.V_string s -> s
  | Mmodel.V_int i -> string_of_int i
  | Mmodel.V_float f -> Printf.sprintf "%.17g" f
  | Mmodel.V_bool b -> string_of_bool b

let value_of_string ty s =
  match ty with
  | Meta.T_string | Meta.T_enum _ -> Mmodel.V_string s
  | Meta.T_int -> Mmodel.V_int (int_of_string s)
  | Meta.T_float -> Mmodel.V_float (float_of_string s)
  | Meta.T_bool -> Mmodel.V_bool (bool_of_string s)

let rec object_to_xml m o =
  let mm = Mmodel.metamodel m in
  let cls = Mmodel.class_of o in
  let attr_pairs =
    Meta.all_attributes mm cls
    |> List.filter_map (fun a ->
           match Mmodel.get o a.Meta.attr_name with
           | Some v -> Some (a.Meta.attr_name, value_to_string v)
           | None -> None)
  in
  let cross_refs =
    Meta.all_references mm cls
    |> List.filter (fun r -> not r.Meta.ref_containment)
    |> List.filter_map (fun r ->
           match Mmodel.refs m o r.Meta.ref_name with
           | [] -> None
           | targets ->
               Some (r.Meta.ref_name, String.concat " " (List.map Mmodel.id targets)))
  in
  let children =
    Meta.all_references mm cls
    |> List.filter (fun r -> r.Meta.ref_containment)
    |> List.concat_map (fun r ->
           Mmodel.refs m o r.Meta.ref_name
           |> List.map (fun child ->
                  let node = object_to_xml m child in
                  Xml.Element
                    (Xml.tag node, ("role", r.Meta.ref_name) :: Xml.attrs node,
                     Xml.children node)))
  in
  Xml.element ~attrs:(("id", Mmodel.id o) :: (attr_pairs @ cross_refs)) cls children

let to_xml m =
  let mm = Mmodel.metamodel m in
  Xml.element
    ~attrs:[ ("metamodel", mm.Meta.mm_name) ]
    "model"
    (List.map (object_to_xml m) (Mmodel.roots m))

let to_string m = Xml.to_string (to_xml m)

let of_xml mm doc =
  if not (String.equal (Xml.tag doc) "model") then
    invalid_arg "ecore_io: root element must be <model>";
  let m = Mmodel.create mm in
  (* First pass: create every object so cross-refs can resolve. *)
  let pending = ref [] in
  let rec build_object node =
    let cls = Xml.tag node in
    let id =
      match Xml.attr "id" node with
      | Some id -> id
      | None -> invalid_arg (Printf.sprintf "ecore_io: <%s> missing id" cls)
    in
    let o = Mmodel.new_object ~id m cls in
    List.iter
      (fun (k, v) ->
        if String.equal k "id" || String.equal k "role" then ()
        else
          match Meta.find_attribute mm ~cls k with
          | Some a -> Mmodel.set m o k (value_of_string a.Meta.attr_type v)
          | None -> (
              match Meta.find_reference mm ~cls k with
              | Some _ -> pending := (o, k, v) :: !pending
              | None ->
                  invalid_arg
                    (Printf.sprintf "ecore_io: class %s has no feature %s" cls k)))
      (Xml.attrs node);
    List.iter
      (fun child_node ->
        let role =
          match Xml.attr "role" child_node with
          | Some r -> r
          | None ->
              invalid_arg
                (Printf.sprintf "ecore_io: nested <%s> missing role" (Xml.tag child_node))
        in
        let child = build_object child_node in
        Mmodel.add_ref m ~src:o role ~dst:child)
      (Xml.element_children node);
    o
  in
  List.iter (fun node -> ignore (build_object node)) (Xml.element_children doc);
  List.iter
    (fun (o, name, ids) ->
      String.split_on_char ' ' ids
      |> List.filter (fun s -> s <> "")
      |> List.iter (fun target -> Mmodel.add_ref m ~src:o name ~dst:(Mmodel.find_exn m target)))
    (List.rev !pending);
  m

let of_string mm s = of_xml mm (Xml.parse_string s)

let save m path =
  let oc = open_out path in
  output_string oc (to_string m);
  close_out oc

let load mm path = of_xml mm (Xml.parse_file path)
