type attr_type = T_string | T_int | T_float | T_bool | T_enum of string list

type attribute = {
  attr_name : string;
  attr_type : attr_type;
  attr_required : bool;
}

type reference = {
  ref_name : string;
  ref_target : string;
  ref_containment : bool;
  ref_many : bool;
}

type metaclass = {
  class_name : string;
  class_super : string option;
  class_abstract : bool;
  class_attributes : attribute list;
  class_references : reference list;
}

type t = { mm_name : string; mm_classes : metaclass list }

let attribute ?(required = false) attr_name attr_type =
  { attr_name; attr_type; attr_required = required }

let reference ?(containment = false) ?(many = false) ref_name ref_target =
  { ref_name; ref_target; ref_containment = containment; ref_many = many }

let metaclass ?super ?(abstract = false) ?(attributes = []) ?(references = [])
    class_name =
  {
    class_name;
    class_super = super;
    class_abstract = abstract;
    class_attributes = attributes;
    class_references = references;
  }

let find_class mm name =
  List.find_opt (fun c -> String.equal c.class_name name) mm.mm_classes

let find_class_exn mm name =
  match find_class mm name with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "metamodel %s: unknown class %s" mm.mm_name name)

let create ~name classes =
  let mm = { mm_name = name; mm_classes = classes } in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.class_name then
        invalid_arg (Printf.sprintf "metamodel %s: duplicate class %s" name c.class_name);
      Hashtbl.add seen c.class_name ())
    classes;
  List.iter
    (fun c ->
      (match c.class_super with
      | Some s when find_class mm s = None ->
          invalid_arg (Printf.sprintf "metamodel %s: %s extends unknown class %s" name c.class_name s)
      | Some _ | None -> ());
      List.iter
        (fun r ->
          if find_class mm r.ref_target = None then
            invalid_arg
              (Printf.sprintf "metamodel %s: %s.%s targets unknown class %s" name
                 c.class_name r.ref_name r.ref_target))
        c.class_references)
    classes;
  mm

let rec is_subclass_of mm ~sub ~super =
  String.equal sub super
  ||
  match find_class mm sub with
  | Some { class_super = Some s; _ } -> is_subclass_of mm ~sub:s ~super
  | Some { class_super = None; _ } | None -> false

let rec ancestry mm name =
  match find_class mm name with
  | None -> []
  | Some c -> (
      match c.class_super with
      | None -> [ c ]
      | Some s -> ancestry mm s @ [ c ])

let all_attributes mm name =
  List.concat_map (fun c -> c.class_attributes) (ancestry mm name)

let all_references mm name =
  List.concat_map (fun c -> c.class_references) (ancestry mm name)

let find_attribute mm ~cls name =
  List.find_opt (fun a -> String.equal a.attr_name name) (all_attributes mm cls)

let find_reference mm ~cls name =
  List.find_opt (fun r -> String.equal r.ref_name name) (all_references mm cls)

let concrete_classes mm =
  mm.mm_classes
  |> List.filter (fun c -> not c.class_abstract)
  |> List.map (fun c -> c.class_name)

let pp_attr_type ppf = function
  | T_string -> Fmt.string ppf "string"
  | T_int -> Fmt.string ppf "int"
  | T_float -> Fmt.string ppf "float"
  | T_bool -> Fmt.string ppf "bool"
  | T_enum lits -> Fmt.pf ppf "enum{%a}" Fmt.(list ~sep:(any "|") string) lits

let pp ppf mm =
  Fmt.pf ppf "@[<v>metamodel %s@," mm.mm_name;
  List.iter
    (fun c ->
      Fmt.pf ppf "  class %s%s%s@," c.class_name
        (match c.class_super with Some s -> " extends " ^ s | None -> "")
        (if c.class_abstract then " (abstract)" else "");
      List.iter
        (fun a -> Fmt.pf ppf "    attr %s : %a@," a.attr_name pp_attr_type a.attr_type)
        c.class_attributes;
      List.iter
        (fun r ->
          Fmt.pf ppf "    ref %s : %s%s%s@," r.ref_name r.ref_target
            (if r.ref_many then " [*]" else "")
            (if r.ref_containment then " (containment)" else ""))
        c.class_references)
    mm.mm_classes;
  Fmt.pf ppf "@]"
