(** XML (E-core style) serialization of dynamic models.

    Contained objects are nested inside their container element;
    cross-references are emitted as space-separated idref attributes,
    mirroring how EMF serializes resources. *)

val to_xml : Mmodel.t -> Umlfront_xml.Xml.t
val to_string : Mmodel.t -> string

val of_xml : Meta.t -> Umlfront_xml.Xml.t -> Mmodel.t
(** @raise Invalid_argument when the document does not conform to the
    metamodel. *)

val of_string : Meta.t -> string -> Mmodel.t

val save : Mmodel.t -> string -> unit
(** [save m path] writes the serialized model to [path]. *)

val load : Meta.t -> string -> Mmodel.t
