module Fsm = Umlfront_fsm.Fsm
module Guard_expr = Umlfront_fsm.Guard_expr
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec

type watcher = { watch_event : string; watch_when : Guard_expr.t }

type setter = {
  set_action : string;
  set_var : string;
  set_to : Guard_expr.t;
}

type update = { update_var : string; update_to : Guard_expr.t }

type config = {
  controller : Fsm.t;
  watchers : watcher list;
  setters : setter list;
  updates : update list;
  initial_store : (string * float) list;
}

let watcher ~event text = { watch_event = event; watch_when = Guard_expr.parse_exn text }

let setter ~action ~var text =
  { set_action = action; set_var = var; set_to = Guard_expr.parse_exn text }

let update ~var text = { update_var = var; update_to = Guard_expr.parse_exn text }

type step = {
  round : int;
  outputs : (string * float) list;
  events : string list;
  state_after : string;
  actions : string list;
  store_after : (string * float) list;
}

type outcome = {
  steps : step list;
  final_state : string;
  final_store : (string * float) list;
}

let run ?sfunctions ~rounds sdf config =
  let session = Exec.start ?sfunctions sdf in
  let store = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace store k v) config.initial_store;
  let watcher_was_true = Hashtbl.create 8 in
  let fsm_state = ref config.controller.Fsm.initial in
  let steps = ref [] in
  for round = 0 to rounds - 1 do
    (* 1. Dataflow round; inports read matching store variables. *)
    let stimulus name =
      match Hashtbl.find_opt store name with
      | Some v -> v
      | None ->
          let h = float_of_int (Hashtbl.hash name mod 10) in
          sin ((float_of_int round +. h) /. 5.0)
    in
    let outputs = Exec.step session ~stimulus in
    let env v =
      match List.assoc_opt v outputs with
      | Some value -> value
      | None -> Option.value (Hashtbl.find_opt store v) ~default:0.0
    in
    (* 2. Edge-triggered watchers. *)
    let events =
      List.filter_map
        (fun w ->
          let now = Guard_expr.eval ~env w.watch_when in
          let before =
            Option.value (Hashtbl.find_opt watcher_was_true w.watch_event) ~default:false
          in
          Hashtbl.replace watcher_was_true w.watch_event now;
          if now && not before then Some w.watch_event else None)
        config.watchers
    in
    (* 3. FSM consumes the events; guards see the same environment. *)
    let guard_eval text =
      match Guard_expr.parse text with
      | Ok e -> Guard_expr.eval ~env e
      | Error _ -> true
    in
    let fired_actions = ref [] in
    List.iter
      (fun event ->
        match Fsm.step ~guard_eval config.controller ~state:!fsm_state ~event with
        | Some s ->
            fsm_state := s.Fsm.after;
            fired_actions := !fired_actions @ s.Fsm.actions
        | None -> ())
      events;
    (* 4. Actions apply their setters. *)
    List.iter
      (fun action ->
        List.iter
          (fun s ->
            if String.equal s.set_action action then
              Hashtbl.replace store s.set_var (Guard_expr.eval_float ~env s.set_to))
          config.setters)
      !fired_actions;
    (* 5. Environment dynamics, committed simultaneously. *)
    let next_values =
      List.map (fun u -> (u.update_var, Guard_expr.eval_float ~env u.update_to)) config.updates
    in
    List.iter (fun (var, v) -> Hashtbl.replace store var v) next_values;
    let store_after =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) store [] |> List.sort compare
    in
    steps :=
      {
        round;
        outputs;
        events;
        state_after = !fsm_state;
        actions = !fired_actions;
        store_after;
      }
      :: !steps
  done;
  let steps = List.rev !steps in
  {
    steps;
    final_state = !fsm_state;
    final_store =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) store [] |> List.sort compare;
  }

let pp_step ppf s =
  Format.fprintf ppf "round %d: state %s%s%s" s.round s.state_after
    (match s.events with [] -> "" | es -> " events [" ^ String.concat "; " es ^ "]")
    (match s.actions with [] -> "" | acts -> " actions [" ^ String.concat "; " acts ^ "]")
