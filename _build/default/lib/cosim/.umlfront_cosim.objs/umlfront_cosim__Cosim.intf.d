lib/cosim/cosim.mli: Format Umlfront_dataflow Umlfront_fsm
