lib/cosim/script.ml: Cosim Printf String Umlfront_fsm
