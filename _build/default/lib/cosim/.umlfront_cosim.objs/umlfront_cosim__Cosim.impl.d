lib/cosim/cosim.ml: Format Hashtbl List Option String Umlfront_dataflow Umlfront_fsm
