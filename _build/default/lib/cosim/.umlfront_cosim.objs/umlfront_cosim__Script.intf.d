lib/cosim/script.mli: Cosim Umlfront_fsm
