(** Co-simulation of an event-based controller (FSM) with a dataflow
    model (SDF) — the {e alternative} integration strategy the paper's
    related work describes (§2: Exite couples Simulink with UML tools
    at simulation time, where this tool couples at the model level).
    Implemented here so the two strategies can be compared on the same
    system.

    Per round:
    + the dataflow model fires once; top-level [Inport]s read the
      variable {e store} when it holds a variable of the same name
      (otherwise the default stimulus);
    + {e watchers} are evaluated over (output-port values ∪ store);
      each watcher whose expression becomes true (edge-triggered)
      queues its event;
    + the FSM consumes the queued events in order — transition guards
      are evaluated with {!Umlfront_fsm.Guard_expr} over the same
      environment — and every fired action applies its {e setters},
      updating the store;
    + the updated store feeds the next round's inputs. *)

type watcher = { watch_event : string; watch_when : Umlfront_fsm.Guard_expr.t }

type setter = {
  set_action : string;  (** FSM action label that triggers it *)
  set_var : string;
  set_to : Umlfront_fsm.Guard_expr.t;  (** evaluated over env ∪ store *)
}

type update = { update_var : string; update_to : Umlfront_fsm.Guard_expr.t }
(** Environment dynamics: applied every round (after the FSM), all
    right-hand sides evaluated against the pre-update environment and
    committed simultaneously — a forward-Euler plant in the store. *)

type config = {
  controller : Umlfront_fsm.Fsm.t;
  watchers : watcher list;
  setters : setter list;
  updates : update list;
  initial_store : (string * float) list;
}

val watcher : event:string -> string -> watcher
(** [watcher ~event expr_text] — parses the expression.
    @raise Invalid_argument on a syntax error. *)

val setter : action:string -> var:string -> string -> setter
val update : var:string -> string -> update

type step = {
  round : int;
  outputs : (string * float) list;  (** top-level output ports *)
  events : string list;  (** fired this round, in order *)
  state_after : string;
  actions : string list;
  store_after : (string * float) list;
}

type outcome = { steps : step list; final_state : string; final_store : (string * float) list }

val run :
  ?sfunctions:(string -> (float array -> float array) option) ->
  rounds:int ->
  Umlfront_dataflow.Sdf.t ->
  config ->
  outcome
(** @raise Umlfront_dataflow.Exec.Deadlock on a zero-delay cycle. *)

val pp_step : Format.formatter -> step -> unit
