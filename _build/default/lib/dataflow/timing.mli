(** MPSoC timing model over a flattened CAAM: estimates one iteration's
    schedule when each CPU-SS runs on its own processor and
    communication costs depend on the channel protocol — the basis for
    the paper's claim that clustering threads with heavy data
    dependencies onto one CPU reduces communication cost (§4.2.3). *)

type cost_model = {
  default_actor_cost : float;  (** used when a block has no [Cost] param *)
  wire_cost : float;  (** same-thread data hand-off *)
  swfifo_cost : float;  (** intra-CPU channel, per token *)
  gfifo_cost : float;  (** inter-CPU (bus) channel, per token *)
  bus_serialized : bool;
      (** when true (default), inter-CPU transfers contend for the one
          shared bus of the paper's platform (Fig. 3a): each GFIFO
          token occupies the bus exclusively for [gfifo_cost] *)
}

val default_cost_model : cost_model
(** wire 0, SWFIFO 2, GFIFO 10 — intra much cheaper than inter, as the
    paper assumes. *)

type report = {
  makespan : float;  (** one iteration: latency *)
  period : float;
      (** steady-state initiation interval with perfect pipelining
          across iterations: the busiest CPU's total work (the
          throughput bound of a streaming MPSoC) *)
  sequential : float;  (** sum of actor costs: 1-CPU, zero-comm bound *)
  speedup : float;
  cpu_busy : (string * float) list;
  intra_tokens : int;  (** tokens crossing SWFIFO channels per iteration *)
  inter_tokens : int;
  comm_cost : float;  (** total communication latency charged *)
  bus_busy : float;  (** time the shared bus spends transferring *)
}

val evaluate : ?model:cost_model -> Sdf.t -> report
(** @raise Exec.Deadlock on a zero-delay cycle. *)

val pp_report : Format.formatter -> report -> unit
