module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block

type cost_model = {
  default_actor_cost : float;
  wire_cost : float;
  swfifo_cost : float;
  gfifo_cost : float;
  bus_serialized : bool;
}

let default_cost_model =
  {
    default_actor_cost = 1.0;
    wire_cost = 0.0;
    swfifo_cost = 2.0;
    gfifo_cost = 10.0;
    bus_serialized = true;
  }

type report = {
  makespan : float;
  period : float;
  sequential : float;
  speedup : float;
  cpu_busy : (string * float) list;
  intra_tokens : int;
  inter_tokens : int;
  comm_cost : float;
  bus_busy : float;
}

let actor_cost model (a : Sdf.actor) =
  match List.assoc_opt "Cost" a.Sdf.actor_block.S.blk_params with
  | Some (B.P_float f) -> f
  | Some (B.P_int i) -> float_of_int i
  | Some _ | None -> (
      (* Environment ports are free; real work costs the default. *)
      match a.Sdf.actor_block.S.blk_type with
      | B.Inport | B.Outport when a.Sdf.actor_path = [] -> 0.0
      | _ -> model.default_actor_cost)

let edge_class (e : Sdf.edge) =
  let protocols = List.map snd e.Sdf.edge_channels in
  if List.mem "GFIFO" protocols then `Inter
  else if List.mem "SWFIFO" protocols then `Intra
  else `Wire

let edge_latency model e =
  match edge_class e with
  | `Inter -> model.gfifo_cost
  | `Intra -> model.swfifo_cost
  | `Wire -> model.wire_cost

let evaluate ?(model = default_cost_model) sdf =
  let order = Exec.firing_order sdf in
  let finish = Hashtbl.create 32 in
  let cpu_free = Hashtbl.create 8 in
  let cpu_busy = Hashtbl.create 8 in
  let actor name = Option.get (Sdf.find_actor sdf name) in
  let comm_cost = ref 0.0 in
  let intra = ref 0 and inter = ref 0 in
  (* Count token traffic (delay edges included: data still moves). *)
  List.iter
    (fun e ->
      match edge_class e with
      | `Inter -> incr inter
      | `Intra -> incr intra
      | `Wire -> ())
    sdf.Sdf.edges;
  let makespan = ref 0.0 in
  let bus_free = ref 0.0 in
  let bus_busy = ref 0.0 in
  List.iter
    (fun name ->
      let a = actor name in
      let cost = actor_cost model a in
      let data_ready =
        List.fold_left
          (fun acc (e : Sdf.edge) ->
            let latency = edge_latency model e in
            if latency > 0.0 then comm_cost := !comm_cost +. latency;
            let producer_done =
              Option.value (Hashtbl.find_opt finish e.Sdf.edge_src) ~default:0.0
            in
            let arrival =
              if model.bus_serialized && edge_class e = `Inter && latency > 0.0 then (
                (* The transfer needs the shared bus exclusively. *)
                let start = Float.max producer_done !bus_free in
                bus_free := start +. latency;
                bus_busy := !bus_busy +. latency;
                start +. latency)
              else producer_done +. latency
            in
            Float.max acc arrival)
          0.0 (Sdf.preds sdf name)
      in
      let start, record_cpu =
        match Sdf.cpu_of_actor a with
        | Some cpu ->
            let free = Option.value (Hashtbl.find_opt cpu_free cpu) ~default:0.0 in
            (Float.max free data_ready, Some cpu)
        | None -> (data_ready, None)
      in
      let done_at = start +. cost in
      Hashtbl.replace finish name done_at;
      (match record_cpu with
      | Some cpu ->
          Hashtbl.replace cpu_free cpu done_at;
          Hashtbl.replace cpu_busy cpu
            (cost +. Option.value (Hashtbl.find_opt cpu_busy cpu) ~default:0.0)
      | None -> ());
      if done_at > !makespan then makespan := done_at)
    order;
  let sequential =
    List.fold_left (fun acc a -> acc +. actor_cost model a) 0.0 sdf.Sdf.actors
  in
  let period =
    Hashtbl.fold (fun _ busy acc -> Float.max acc busy) cpu_busy 0.0
  in
  {
    makespan = !makespan;
    period;
    sequential;
    speedup = (if !makespan > 0.0 then sequential /. !makespan else 1.0);
    cpu_busy =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) cpu_busy []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    intra_tokens = !intra;
    inter_tokens = !inter;
    comm_cost = !comm_cost;
    bus_busy = !bus_busy;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>makespan %.2f, period %.2f (sequential %.2f, speedup %.2fx)@,comm: %d intra + %d inter tokens, cost %.2f, bus busy %.2f@,%a@]"
    r.makespan r.period r.sequential r.speedup r.intra_tokens r.inter_tokens r.comm_cost
    r.bus_busy
    (Format.pp_print_list (fun ppf (cpu, busy) ->
         Format.fprintf ppf "%s busy %.2f" cpu busy))
    r.cpu_busy
