lib/dataflow/kpn.mli: Sdf
