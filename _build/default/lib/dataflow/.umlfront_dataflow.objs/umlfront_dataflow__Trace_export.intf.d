lib/dataflow/trace_export.mli: Exec Sdf
