lib/dataflow/sdf.ml: Format List Option Printf String Umlfront_simulink Umlfront_taskgraph
