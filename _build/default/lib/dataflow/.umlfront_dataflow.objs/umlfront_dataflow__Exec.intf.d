lib/dataflow/exec.mli: Sdf
