lib/dataflow/sdf.mli: Format Umlfront_simulink Umlfront_taskgraph
