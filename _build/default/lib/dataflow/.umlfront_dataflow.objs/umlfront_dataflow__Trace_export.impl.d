lib/dataflow/trace_export.ml: Array Buffer Bytes Exec Float Hashtbl List Option Printf Sdf String Timing Umlfront_simulink
