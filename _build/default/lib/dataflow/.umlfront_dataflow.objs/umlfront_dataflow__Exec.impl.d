lib/dataflow/exec.ml: Array Float Hashtbl List Option Printf Sdf String Umlfront_simulink Umlfront_taskgraph
