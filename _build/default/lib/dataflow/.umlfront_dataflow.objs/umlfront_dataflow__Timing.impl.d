lib/dataflow/timing.ml: Exec Float Format Hashtbl List Option Sdf Umlfront_simulink
