lib/dataflow/timing.mli: Format Sdf
