lib/dataflow/kpn.ml: Array Exec Hashtbl List Printf Queue Sdf Umlfront_simulink
