(** Export of simulation results for downstream plotting/inspection. *)

val traces_csv : Exec.outcome -> string
(** One row per round, one column per top-level output port:
    [round,portA,portB,...]. *)

val schedule_csv : Sdf.t -> string
(** The timing model's per-actor schedule:
    [actor,cpu,thread,start,finish]. *)

val gantt : ?width:int -> Sdf.t -> string
(** ASCII Gantt chart of one iteration per CPU, from the timing
    model's schedule — a quick visual for reports. *)
