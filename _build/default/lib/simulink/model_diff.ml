type change =
  | Block_added of string list * string
  | Block_removed of string list * string
  | Block_type_changed of string list * string * Block.t * Block.t
  | Param_changed of string list * string * string * Block.param option * Block.param option
  | Line_added of string list * System.line
  | Line_removed of string list * System.line

let diff ?(ignore_params = [ "Position" ]) (a : Model.t) (b : Model.t) =
  let changes = ref [] in
  let push c = changes := c :: !changes in
  let rec diff_system path (sa : System.t) (sb : System.t) =
    let names sys =
      List.map (fun (blk : System.block) -> blk.System.blk_name) (System.blocks sys)
    in
    List.iter
      (fun n -> if not (List.mem n (names sb)) then push (Block_removed (path, n)))
      (names sa);
    List.iter
      (fun n -> if not (List.mem n (names sa)) then push (Block_added (path, n)))
      (names sb);
    List.iter
      (fun (ba : System.block) ->
        match System.find_block sb ba.System.blk_name with
        | None -> ()
        | Some bb ->
            if ba.System.blk_type <> bb.System.blk_type then
              push
                (Block_type_changed
                   (path, ba.System.blk_name, ba.System.blk_type, bb.System.blk_type));
            let keys =
              List.map fst ba.System.blk_params @ List.map fst bb.System.blk_params
              |> List.sort_uniq compare
              |> List.filter (fun k -> not (List.mem k ignore_params))
            in
            List.iter
              (fun key ->
                let va = List.assoc_opt key ba.System.blk_params in
                let vb = List.assoc_opt key bb.System.blk_params in
                if va <> vb then
                  push (Param_changed (path, ba.System.blk_name, key, va, vb)))
              keys;
            (match (ba.System.blk_system, bb.System.blk_system) with
            | Some ia, Some ib -> diff_system (path @ [ ba.System.blk_name ]) ia ib
            | Some ia, None ->
                List.iter
                  (fun (blk : System.block) ->
                    push (Block_removed (path @ [ ba.System.blk_name ], blk.System.blk_name)))
                  (System.blocks ia)
            | None, Some ib ->
                List.iter
                  (fun (blk : System.block) ->
                    push (Block_added (path @ [ ba.System.blk_name ], blk.System.blk_name)))
                  (System.blocks ib)
            | None, None -> ()))
      (System.blocks sa);
    List.iter
      (fun l -> if not (List.mem l (System.lines sb)) then push (Line_removed (path, l)))
      (System.lines sa);
    List.iter
      (fun l -> if not (List.mem l (System.lines sa)) then push (Line_added (path, l)))
      (System.lines sb)
  in
  diff_system [] a.Model.root b.Model.root;
  List.rev !changes

let equivalent ?ignore_params a b = diff ?ignore_params a b = []

let pp_path ppf path =
  Format.pp_print_string ppf (String.concat "/" ("top" :: path))

let pp_param_opt ppf = function
  | Some p -> Format.pp_print_string ppf (Block.param_to_string p)
  | None -> Format.pp_print_string ppf "<absent>"

let pp_change ppf = function
  | Block_added (path, name) -> Format.fprintf ppf "+ block %a/%s" pp_path path name
  | Block_removed (path, name) -> Format.fprintf ppf "- block %a/%s" pp_path path name
  | Block_type_changed (path, name, was, now) ->
      Format.fprintf ppf "~ block %a/%s: %s -> %s" pp_path path name (Block.to_string was)
        (Block.to_string now)
  | Param_changed (path, name, key, was, now) ->
      Format.fprintf ppf "~ param %a/%s.%s: %a -> %a" pp_path path name key pp_param_opt
        was pp_param_opt now
  | Line_added (path, l) ->
      Format.fprintf ppf "+ line %a: %s/%d -> %s/%d" pp_path path l.System.src.System.block
        l.System.src.System.port l.System.dst.System.block l.System.dst.System.port
  | Line_removed (path, l) ->
      Format.fprintf ppf "- line %a: %s/%d -> %s/%d" pp_path path l.System.src.System.block
        l.System.src.System.port l.System.dst.System.block l.System.dst.System.port
