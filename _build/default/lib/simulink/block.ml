type t =
  | Inport
  | Outport
  | Subsystem
  | S_function
  | Product
  | Sum
  | Gain
  | Constant
  | Unit_delay
  | Mux
  | Demux
  | Saturation
  | Abs
  | Sqrt
  | Trig
  | Min_max
  | Math
  | Switch
  | Terminator
  | Ground
  | Channel

type param = P_string of string | P_int of int | P_float of float | P_bool of bool

let to_string = function
  | Inport -> "Inport"
  | Outport -> "Outport"
  | Subsystem -> "SubSystem"
  | S_function -> "S-Function"
  | Product -> "Product"
  | Sum -> "Sum"
  | Gain -> "Gain"
  | Constant -> "Constant"
  | Unit_delay -> "UnitDelay"
  | Mux -> "Mux"
  | Demux -> "Demux"
  | Saturation -> "Saturate"
  | Abs -> "Abs"
  | Sqrt -> "Sqrt"
  | Trig -> "Trigonometry"
  | Min_max -> "MinMax"
  | Math -> "Math"
  | Switch -> "Switch"
  | Terminator -> "Terminator"
  | Ground -> "Ground"
  | Channel -> "Channel"

let of_string = function
  | "Inport" -> Inport
  | "Outport" -> Outport
  | "SubSystem" -> Subsystem
  | "S-Function" -> S_function
  | "Product" -> Product
  | "Sum" -> Sum
  | "Gain" -> Gain
  | "Constant" -> Constant
  | "UnitDelay" -> Unit_delay
  | "Mux" -> Mux
  | "Demux" -> Demux
  | "Saturate" -> Saturation
  | "Abs" -> Abs
  | "Sqrt" -> Sqrt
  | "Trigonometry" -> Trig
  | "MinMax" -> Min_max
  | "Math" -> Math
  | "Switch" -> Switch
  | "Terminator" -> Terminator
  | "Ground" -> Ground
  | "Channel" -> Channel
  | s -> invalid_arg (Printf.sprintf "Block.of_string: unknown BlockType %S" s)

let default_ports = function
  | Inport -> (0, 1)
  | Outport -> (1, 0)
  | Subsystem -> (0, 0)
  | S_function -> (1, 1)
  | Product | Sum -> (2, 1)
  | Gain | Unit_delay | Saturation | Abs | Sqrt | Trig | Math -> (1, 1)
  | Min_max -> (2, 1)
  | Constant | Ground -> (0, 1)
  | Mux -> (2, 1)
  | Demux -> (1, 2)
  | Switch -> (3, 1)
  | Terminator -> (1, 0)
  | Channel -> (1, 1)

let param_to_string = function
  | P_string s -> s
  | P_int i -> string_of_int i
  | P_float f -> Printf.sprintf "%.17g" f
  | P_bool b -> if b then "on" else "off"

let pp_param ppf p = Format.pp_print_string ppf (param_to_string p)
let pp ppf t = Format.pp_print_string ppf (to_string t)
