(** Automatic block placement.

    Generated models need [Position] parameters to be readable when the
    [.mdl] is opened in a GUI.  Blocks are placed on a left-to-right
    layered grid: the layer is the longest dataflow distance from the
    system's sources (back edges of cyclic systems are ignored), and
    blocks within a layer stack vertically in declaration order. *)

val position_param : string

val run : Model.t -> Model.t
(** Assign a [Position] to every block of every (sub)system.  Existing
    positions are overwritten; all other parameters are preserved. *)

val position : System.block -> (int * int * int * int) option
(** Parsed [left, top, right, bottom] of a laid-out block. *)
