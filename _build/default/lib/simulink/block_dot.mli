(** Graphviz export of a (CAAM) block diagram: one Graphviz cluster per
    subsystem, blocks as record nodes, lines as edges — a quick visual
    of the generated hierarchy without Simulink. *)

val of_model : Model.t -> string
val save : Model.t -> path:string -> unit
