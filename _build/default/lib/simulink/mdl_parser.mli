(** Parser for the [.mdl] subset {!Mdl_writer} emits (round-trip
    tested), so generated models can be reloaded and inspected. *)

exception Error of { line : int; message : string }

(** Generic mdl section tree, exposed for tooling. *)
type node = {
  section : string;  (** e.g. ["Model"], ["Block"], ["Line"] *)
  fields : (string * string) list;  (** raw values, strings unquoted *)
  children : node list;
}

val parse_tree : string -> node
val parse_string : string -> Model.t
val parse_file : string -> Model.t
