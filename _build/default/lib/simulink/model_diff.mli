(** Structural diff of two Simulink models — regression tooling for a
    generator: after a flow change, [diff old new] states precisely
    which blocks/lines/parameters moved, instead of a textual mdl
    diff. *)

type change =
  | Block_added of string list * string  (** path, block name *)
  | Block_removed of string list * string
  | Block_type_changed of string list * string * Block.t * Block.t
  | Param_changed of string list * string * string * Block.param option * Block.param option
      (** path, block, key, old, new ([None] = absent) *)
  | Line_added of string list * System.line
  | Line_removed of string list * System.line

val diff : ?ignore_params:string list -> Model.t -> Model.t -> change list
(** Changes turning the first model into the second, outer systems
    first.  [ignore_params] (default [["Position"]]) filters parameter
    noise such as layout. *)

val equivalent : ?ignore_params:string list -> Model.t -> Model.t -> bool
val pp_change : Format.formatter -> change -> unit
