type entry = {
  method_name : string;
  block_type : Block.t;
  params : (string * Block.param) list;
  inputs : int;
  outputs : int;
}

let entry ?(params = []) ?(inputs = 1) ?(outputs = 1) method_name block_type =
  { method_name; block_type; params; inputs; outputs }

let entries =
  [
    entry "mult" Block.Product ~inputs:2;
    entry "add" Block.Sum ~inputs:2 ~params:[ ("Inputs", Block.P_string "++") ];
    entry "sub" Block.Sum ~inputs:2 ~params:[ ("Inputs", Block.P_string "+-") ];
    entry "gain" Block.Gain ~params:[ ("Gain", Block.P_float 1.0) ];
    entry "delay" Block.Unit_delay ~params:[ ("InitialCondition", Block.P_float 0.0) ];
    entry "const" Block.Constant ~inputs:0 ~params:[ ("Value", Block.P_float 0.0) ];
    entry "mux" Block.Mux ~inputs:2;
    entry "demux" Block.Demux ~outputs:2;
    entry "sat" Block.Saturation
      ~params:
        [ ("UpperLimit", Block.P_float 1.0); ("LowerLimit", Block.P_float (-1.0)) ];
    entry "switch" Block.Switch ~inputs:3;
    entry "abs" Block.Abs;
    entry "sqrt" Block.Sqrt;
    entry "sin" Block.Trig ~params:[ ("Function", Block.P_string "sin") ];
    entry "cos" Block.Trig ~params:[ ("Function", Block.P_string "cos") ];
    entry "tan" Block.Trig ~params:[ ("Function", Block.P_string "tan") ];
    entry "min" Block.Min_max ~inputs:2 ~params:[ ("Function", Block.P_string "min") ];
    entry "max" Block.Min_max ~inputs:2 ~params:[ ("Function", Block.P_string "max") ];
    entry "exp" Block.Math ~params:[ ("Function", Block.P_string "exp") ];
    entry "log" Block.Math ~params:[ ("Function", Block.P_string "log") ];
    entry "ground" Block.Ground ~inputs:0;
    entry "sink" Block.Terminator ~outputs:0;
  ]

let lookup name =
  let lowered = String.lowercase_ascii name in
  List.find_opt (fun e -> String.equal e.method_name lowered) entries

let is_library_method name = lookup name <> None
