type port_ref = { block : string; port : int }
type line = { src : port_ref; dst : port_ref }

type block = {
  blk_name : string;
  blk_type : Block.t;
  blk_params : (string * Block.param) list;
  blk_system : t option;
}

and t = { sys_name : string; sys_blocks : block list; sys_lines : line list }

let empty name = { sys_name = name; sys_blocks = []; sys_lines = [] }

let find_block sys name =
  List.find_opt (fun b -> String.equal b.blk_name name) sys.sys_blocks

let find_block_exn sys name =
  match find_block sys name with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "system %s: no block %s" sys.sys_name name)

let blocks sys = sys.sys_blocks
let lines sys = sys.sys_lines
let blocks_of_type sys ty = List.filter (fun b -> b.blk_type = ty) sys.sys_blocks

let add_block ?(params = []) ?system sys ty name =
  if find_block sys name <> None then
    invalid_arg (Printf.sprintf "system %s: duplicate block %s" sys.sys_name name);
  (match (ty, system) with
  | Block.Subsystem, _ -> ()
  | _, Some _ ->
      invalid_arg (Printf.sprintf "system %s: block %s is not a subsystem" sys.sys_name name)
  | _, None -> ());
  let system =
    match (ty, system) with
    | Block.Subsystem, None -> Some (empty name)
    | _, s -> s
  in
  let b = { blk_name = name; blk_type = ty; blk_params = params; blk_system = system } in
  { sys with sys_blocks = sys.sys_blocks @ [ b ] }

let param b key = List.assoc_opt key b.blk_params

let param_string b key =
  match param b key with Some (Block.P_string s) -> Some s | Some _ | None -> None

let param_int b key =
  match param b key with Some (Block.P_int i) -> Some i | Some _ | None -> None

let replace_block sys b =
  match find_block sys b.blk_name with
  | None -> invalid_arg (Printf.sprintf "system %s: no block %s" sys.sys_name b.blk_name)
  | Some _ ->
      {
        sys with
        sys_blocks =
          List.map
            (fun existing ->
              if String.equal existing.blk_name b.blk_name then b else existing)
            sys.sys_blocks;
      }

let rename_system sys name = { sys with sys_name = name }

let set_param sys block_name key value =
  let b = find_block_exn sys block_name in
  replace_block sys
    { b with blk_params = (key, value) :: List.remove_assoc key b.blk_params }

let inport_index b = match param_int b "Port" with Some i -> i | None -> 1

let port_counts b =
  match b.blk_type with
  | Block.Subsystem ->
      let count ty =
        match b.blk_system with
        | Some sys -> List.length (blocks_of_type sys ty)
        | None -> 0
      in
      (count Block.Inport, count Block.Outport)
  | ty ->
      let di, dout = Block.default_ports ty in
      let get key fallback = Option.value (param_int b key) ~default:fallback in
      (get "Inputs" di, get "Outputs" dout)

let add_line sys ~src ~dst =
  let check (p : port_ref) = ignore (find_block_exn sys p.block) in
  check src;
  check dst;
  let taken =
    List.exists
      (fun l -> String.equal l.dst.block dst.block && l.dst.port = dst.port)
      sys.sys_lines
  in
  if taken then
    invalid_arg
      (Printf.sprintf "system %s: input port %s/%d already driven" sys.sys_name dst.block
         dst.port);
  { sys with sys_lines = sys.sys_lines @ [ { src; dst } ] }

let remove_line sys ~src ~dst =
  { sys with sys_lines = List.filter (fun l -> l <> { src; dst }) sys.sys_lines }

let drivers sys block_name =
  sys.sys_lines
  |> List.filter_map (fun l ->
         if String.equal l.dst.block block_name then Some (l.dst.port, l.src) else None)

let consumers sys block_name port =
  sys.sys_lines
  |> List.filter_map (fun l ->
         if String.equal l.src.block block_name && l.src.port = port then Some l.dst
         else None)

let rec total_blocks sys =
  List.fold_left
    (fun acc b ->
      acc + 1 + match b.blk_system with Some s -> total_blocks s | None -> 0)
    0 sys.sys_blocks

let rec total_lines sys =
  List.length sys.sys_lines
  + List.fold_left
      (fun acc b -> acc + match b.blk_system with Some s -> total_lines s | None -> 0)
      0 sys.sys_blocks

let rec iter_systems f ?(path = []) sys =
  f path sys;
  List.iter
    (fun b ->
      match b.blk_system with
      | Some s -> iter_systems f ~path:(path @ [ b.blk_name ]) s
      | None -> ())
    sys.sys_blocks

let iter_systems f sys = iter_systems f sys

let rec map_systems f ?(path = []) sys =
  let sys =
    {
      sys with
      sys_blocks =
        List.map
          (fun b ->
            match b.blk_system with
            | Some s ->
                { b with blk_system = Some (map_systems f ~path:(path @ [ b.blk_name ]) s) }
            | None -> b)
          sys.sys_blocks;
    }
  in
  f path sys

let map_systems f sys = map_systems f sys

type complaint = { path : string; gripe : string }

let validate root =
  let complaints = ref [] in
  let blame path gripe =
    complaints := { path = String.concat "/" path; gripe } :: !complaints
  in
  let check path sys =
    let seen = Hashtbl.create 16 in
    List.iter
      (fun b ->
        if Hashtbl.mem seen b.blk_name then
          blame path (Printf.sprintf "duplicate block name %s" b.blk_name);
        Hashtbl.replace seen b.blk_name ())
      sys.sys_blocks;
    List.iter
      (fun l ->
        let endpoint role (p : port_ref) pick =
          match find_block sys p.block with
          | None -> blame path (Printf.sprintf "line %s block %s does not exist" role p.block)
          | Some b ->
              let inputs, outputs = port_counts b in
              let limit = pick (inputs, outputs) in
              if p.port < 1 || p.port > limit then
                blame path
                  (Printf.sprintf "line %s port %s/%d out of range (1..%d)" role p.block
                     p.port limit)
        in
        endpoint "source" l.src snd;
        endpoint "destination" l.dst fst)
      sys.sys_lines;
    let driven = Hashtbl.create 16 in
    List.iter
      (fun l ->
        let key = (l.dst.block, l.dst.port) in
        if Hashtbl.mem driven key then
          blame path
            (Printf.sprintf "input port %s/%d driven twice" l.dst.block l.dst.port);
        Hashtbl.replace driven key ())
      sys.sys_lines;
    let check_boundary ty =
      let ports =
        blocks_of_type sys ty |> List.map inport_index |> List.sort compare
      in
      List.iteri
        (fun i p ->
          if p <> i + 1 then
            blame path
              (Printf.sprintf "%s port numbering not contiguous (%s)" (Block.to_string ty)
                 (String.concat "," (List.map string_of_int ports))))
        ports
    in
    check_boundary Block.Inport;
    check_boundary Block.Outport
  in
  iter_systems check root;
  List.rev !complaints

let rec pp_system ppf indent sys =
  List.iter
    (fun b ->
      Format.fprintf ppf "%s%s : %s" indent b.blk_name (Block.to_string b.blk_type);
      List.iter
        (fun (k, v) -> Format.fprintf ppf " %s=%s" k (Block.param_to_string v))
        b.blk_params;
      Format.fprintf ppf "@,";
      match b.blk_system with
      | Some s -> pp_system ppf (indent ^ "  ") s
      | None -> ())
    sys.sys_blocks;
  List.iter
    (fun l ->
      Format.fprintf ppf "%s%s/%d -> %s/%d@," indent l.src.block l.src.port l.dst.block
        l.dst.port)
    sys.sys_lines

let pp ppf sys =
  Format.fprintf ppf "@[<v>system %s@," sys.sys_name;
  pp_system ppf "  " sys;
  Format.fprintf ppf "@]"
