type t = {
  model_name : string;
  solver : string;
  stop_time : float;
  root : System.t;
}

let make ?(solver = "FixedStepDiscrete") ?(stop_time = 10.0) ~name root =
  { model_name = name; solver; stop_time; root = System.rename_system root name }

let validate t = System.validate t.root

let count_type t ty =
  let n = ref 0 in
  System.iter_systems
    (fun _ sys -> n := !n + List.length (System.blocks_of_type sys ty))
    t.root;
  !n

let stats t =
  [
    ("blocks", System.total_blocks t.root);
    ("lines", System.total_lines t.root);
    ("subsystems", count_type t Block.Subsystem);
    ("s-functions", count_type t Block.S_function);
    ("unit delays", count_type t Block.Unit_delay);
    ("channels", count_type t Block.Channel);
    ("inports", count_type t Block.Inport);
    ("outports", count_type t Block.Outport);
  ]

let pp ppf t =
  Format.fprintf ppf "@[<v>model %s (solver %s, stop %.2f)@,%a@]" t.model_name t.solver
    t.stop_time System.pp t.root
