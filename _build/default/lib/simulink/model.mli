(** Top-level Simulink models: a named root system plus simulation
    parameters (solver, stop time), as stored in an [.mdl] file. *)

type t = {
  model_name : string;
  solver : string;
  stop_time : float;
  root : System.t;
}

val make : ?solver:string -> ?stop_time:float -> name:string -> System.t -> t
val validate : t -> System.complaint list
val stats : t -> (string * int) list
val pp : Format.formatter -> t -> unit
