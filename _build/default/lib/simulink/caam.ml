type role = Cpu | Thread | Comm

let role_param = "CAAMRole"
let protocol_param = "Protocol"

let role_to_string = function Cpu -> "cpu" | Thread -> "thread" | Comm -> "comm"

let role_of_block b =
  match System.param_string b role_param with
  | Some "cpu" -> Some Cpu
  | Some "thread" -> Some Thread
  | Some "comm" -> Some Comm
  | Some _ | None -> None

let mark sys name role =
  System.set_param sys name role_param (Block.P_string (role_to_string role))

let cpus (m : Model.t) =
  System.blocks m.Model.root |> List.filter (fun b -> role_of_block b = Some Cpu)

let threads_of_cpu (b : System.block) =
  match b.System.blk_system with
  | Some sys -> System.blocks sys |> List.filter (fun b -> role_of_block b = Some Thread)
  | None -> []

let channels (m : Model.t) =
  let acc = ref [] in
  System.iter_systems
    (fun path sys ->
      List.iter
        (fun b ->
          if b.System.blk_type = Block.Channel then acc := (path, b) :: !acc)
        (System.blocks sys))
    m.Model.root;
  List.rev !acc

let protocol b = System.param_string b protocol_param

type channel_class = Inter_cpu | Intra_cpu

let classify_channel ~path = match path with [] -> Inter_cpu | _ :: _ -> Intra_cpu

let thread_names (m : Model.t) =
  cpus m
  |> List.concat_map (fun cpu ->
         threads_of_cpu cpu
         |> List.map (fun t -> (t.System.blk_name, cpu.System.blk_name)))

let check (m : Model.t) =
  let gripes = ref [] in
  let blame fmt = Printf.ksprintf (fun s -> gripes := s :: !gripes) fmt in
  (* Top level: subsystems must be CPU-SS. *)
  List.iter
    (fun (b : System.block) ->
      match (b.System.blk_type, role_of_block b) with
      | Block.Subsystem, Some Cpu -> ()
      | Block.Subsystem, _ -> blame "top-level subsystem %s lacks the cpu role" b.System.blk_name
      | _, _ -> ())
    (System.blocks m.Model.root);
  (* CPU-SS children that are subsystems must be Thread-SS. *)
  List.iter
    (fun cpu ->
      match cpu.System.blk_system with
      | None -> blame "CPU-SS %s has no nested system" cpu.System.blk_name
      | Some sys ->
          List.iter
            (fun (b : System.block) ->
              match (b.System.blk_type, role_of_block b) with
              | Block.Subsystem, Some Thread -> ()
              | Block.Subsystem, _ ->
                  blame "subsystem %s inside CPU-SS %s lacks the thread role"
                    b.System.blk_name cpu.System.blk_name
              | _, _ -> ())
            (System.blocks sys))
    (cpus m);
  (* Channel protocols match their position. *)
  List.iter
    (fun (path, (b : System.block)) ->
      let expected =
        match classify_channel ~path with Inter_cpu -> "GFIFO" | Intra_cpu -> "SWFIFO"
      in
      match protocol b with
      | Some p when String.equal p expected -> ()
      | Some p ->
          blame "channel %s at %s has protocol %s, expected %s" b.System.blk_name
            (String.concat "/" ("top" :: path))
            p expected
      | None -> blame "channel %s has no protocol" b.System.blk_name)
    (channels m);
  (* Channels are point-to-point. *)
  System.iter_systems
    (fun _path sys ->
      List.iter
        (fun (b : System.block) ->
          if b.System.blk_type = Block.Channel then (
            let inbound = List.length (System.drivers sys b.System.blk_name) in
            let outbound = List.length (System.consumers sys b.System.blk_name 1) in
            if inbound <> 1 then
              blame "channel %s has %d producers" b.System.blk_name inbound;
            if outbound <> 1 then
              blame "channel %s has %d consumers" b.System.blk_name outbound))
        (System.blocks sys))
    m.Model.root;
  List.rev !gripes
