(** Model-to-text generation of Simulink [.mdl] files (step 4 of the
    paper's mapping flow, Fig. 2). *)

val to_string : Model.t -> string
val save : Model.t -> string -> unit
