let position_param = "Position"

let block_size (b : System.block) =
  match b.System.blk_type with
  | Block.Inport | Block.Outport -> (30, 14)
  | Block.Subsystem -> (140, 60)
  | Block.Channel -> (80, 30)
  | _ -> (60, 40)

(* Longest-path layering, DFS back edges ignored. *)
let layers sys =
  let names = List.map (fun (b : System.block) -> b.System.blk_name) (System.blocks sys) in
  let succs name =
    System.lines sys
    |> List.filter_map (fun (l : System.line) ->
           if String.equal l.System.src.System.block name then
             Some l.System.dst.System.block
           else None)
  in
  let state = Hashtbl.create 16 in
  let back = Hashtbl.create 4 in
  let rec dfs n =
    match Hashtbl.find_opt state n with
    | Some `Done | Some `Active -> ()
    | None ->
        Hashtbl.replace state n `Active;
        List.iter
          (fun s ->
            match Hashtbl.find_opt state s with
            | Some `Active -> Hashtbl.replace back (n, s) ()
            | Some `Done | None -> dfs s)
          (succs n);
        Hashtbl.replace state n `Done
  in
  List.iter dfs names;
  let rank = Hashtbl.create 16 in
  let rec compute n =
    match Hashtbl.find_opt rank n with
    | Some r -> r
    | None ->
        Hashtbl.replace rank n 0;
        let preds =
          System.lines sys
          |> List.filter_map (fun (l : System.line) ->
                 if
                   String.equal l.System.dst.System.block n
                   && not (Hashtbl.mem back (l.System.src.System.block, n))
                 then Some l.System.src.System.block
                 else None)
        in
        let r = List.fold_left (fun acc p -> max acc (compute p + 1)) 0 preds in
        Hashtbl.replace rank n r;
        r
  in
  List.iter (fun n -> ignore (compute n)) names;
  fun name -> Option.value (Hashtbl.find_opt rank name) ~default:0

let place sys =
  let rank_of = layers sys in
  let occupancy = Hashtbl.create 8 in
  let positioned =
    List.map
      (fun (b : System.block) ->
        let rank = rank_of b.System.blk_name in
        let slot = Option.value (Hashtbl.find_opt occupancy rank) ~default:0 in
        Hashtbl.replace occupancy rank (slot + 1);
        let width, height = block_size b in
        let left = 40 + (rank * 190) in
        let top = 40 + (slot * 90) in
        let value =
          Block.P_string (Printf.sprintf "[%d, %d, %d, %d]" left top (left + width) (top + height))
        in
        {
          b with
          System.blk_params =
            (position_param, value) :: List.remove_assoc position_param b.System.blk_params;
        })
      (System.blocks sys)
  in
  { sys with System.sys_blocks = positioned }

let run (m : Model.t) =
  let root = System.map_systems (fun _path sys -> place sys) m.Model.root in
  Model.make ~solver:m.Model.solver ~stop_time:m.Model.stop_time ~name:m.Model.model_name
    root

let position (b : System.block) =
  match System.param_string b position_param with
  | Some s -> (
      try
        Scanf.sscanf s "[%d, %d, %d, %d]" (fun a b c d -> Some (a, b, c, d))
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
  | None -> None
