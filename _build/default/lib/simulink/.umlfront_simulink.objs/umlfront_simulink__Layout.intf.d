lib/simulink/layout.mli: Model System
