lib/simulink/layout.ml: Block Hashtbl List Model Option Printf Scanf String System
