lib/simulink/model.ml: Block Format List System
