lib/simulink/mdl_parser.mli: Model
