lib/simulink/caam.mli: Model System
