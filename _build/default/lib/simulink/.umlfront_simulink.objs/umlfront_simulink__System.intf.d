lib/simulink/system.mli: Block Format
