lib/simulink/system.ml: Block Format Hashtbl List Option Printf String
