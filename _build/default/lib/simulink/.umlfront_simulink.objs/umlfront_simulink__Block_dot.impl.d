lib/simulink/block_dot.ml: Block Buffer List Model Option Printf String System
