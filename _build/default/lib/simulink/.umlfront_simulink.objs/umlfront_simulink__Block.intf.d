lib/simulink/block.mli: Format
