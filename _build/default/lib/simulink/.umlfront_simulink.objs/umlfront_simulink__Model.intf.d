lib/simulink/model.mli: Format System
