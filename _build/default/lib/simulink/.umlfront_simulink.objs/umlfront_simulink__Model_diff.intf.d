lib/simulink/model_diff.mli: Block Format Model System
