lib/simulink/mdl_parser.ml: Block Buffer List Model Option Printf String System
