lib/simulink/block_dot.mli: Model
