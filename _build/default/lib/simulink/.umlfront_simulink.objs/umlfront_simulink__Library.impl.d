lib/simulink/library.ml: Block List String
