lib/simulink/model_diff.ml: Block Format List Model String System
