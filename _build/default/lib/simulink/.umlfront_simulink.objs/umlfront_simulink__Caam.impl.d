lib/simulink/caam.ml: Block List Model Printf String System
