lib/simulink/mdl_writer.mli: Model
