lib/simulink/library.mli: Block
