lib/simulink/block.ml: Format Printf
