lib/simulink/mdl_writer.ml: Block Buffer List Model Printf String System
