(** Hierarchical Simulink systems: blocks wired by lines, subsystems
    containing nested systems.

    Values are immutable; construction functions return updated
    systems.  Port numbering is 1-based, as in Simulink.  A subsystem's
    boundary ports are defined by its [Inport]/[Outport] child blocks
    (their [Port] parameter gives the index). *)

type port_ref = { block : string; port : int }
type line = { src : port_ref; dst : port_ref }

type block = {
  blk_name : string;
  blk_type : Block.t;
  blk_params : (string * Block.param) list;
  blk_system : t option;  (** [Some _] iff the block is a [Subsystem] *)
}

and t = { sys_name : string; sys_blocks : block list; sys_lines : line list }

val empty : string -> t

val add_block :
  ?params:(string * Block.param) list -> ?system:t -> t -> Block.t -> string -> t
(** @raise Invalid_argument on duplicate names, or a [system] supplied
    for a non-subsystem. *)

val add_line : t -> src:port_ref -> dst:port_ref -> t
(** @raise Invalid_argument when an endpoint block does not exist in
    this system or the destination port is already driven. *)

val remove_line : t -> src:port_ref -> dst:port_ref -> t
val replace_block : t -> block -> t
val rename_system : t -> string -> t

val find_block : t -> string -> block option
val find_block_exn : t -> string -> block
val blocks : t -> block list
val lines : t -> line list
val blocks_of_type : t -> Block.t -> block list

val param : block -> string -> Block.param option
val param_string : block -> string -> string option
val param_int : block -> string -> int option
val set_param : t -> string -> string -> Block.param -> t
(** [set_param sys block_name key value]. *)

val port_counts : block -> int * int
(** (inputs, outputs) of the block: subsystem ports are counted from
    its [Inport]/[Outport] children; [Inputs]/[Outputs] integer
    parameters override the type default. *)

val inport_index : block -> int
(** The [Port] parameter of an [Inport]/[Outport] block (default 1). *)

val drivers : t -> string -> (int * port_ref) list
(** For each driven input port of the block: (port index, source). *)

val consumers : t -> string -> int -> port_ref list
(** Destinations fed by the given output port. *)

val total_blocks : t -> int
(** Blocks in this system and, recursively, all subsystems. *)

val total_lines : t -> int

val iter_systems : (string list -> t -> unit) -> t -> unit
(** Apply to this system and every nested one; the first argument is
    the path of subsystem block names from the root (empty for the
    root). *)

val map_systems : (string list -> t -> t) -> t -> t
(** Rebuild bottom-up: children are transformed before their parent
    sees them. *)

type complaint = { path : string; gripe : string }

val validate : t -> complaint list
(** Unique block names, line endpoints exist, port indices in range,
    single driver per input port, contiguous [Port] numbering of
    boundary ports — recursively. *)

val pp : Format.formatter -> t -> unit
