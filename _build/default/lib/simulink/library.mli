(** The predefined Simulink block library the Platform object stands
    for (§4.1): when a thread invokes [Platform.mult(...)], the mapping
    instantiates the corresponding library block; an unknown method
    name falls back to an S-Function. *)

type entry = {
  method_name : string;
  block_type : Block.t;
  params : (string * Block.param) list;
  inputs : int;
  outputs : int;
}

val lookup : string -> entry option
(** Case-insensitive lookup by method name ([mult], [add], [sub],
    [gain], [delay], [const], [mux], [demux], [sat], [switch], ...). *)

val entries : entry list
val is_library_method : string -> bool
