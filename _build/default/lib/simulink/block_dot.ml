let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let node_id path name = escape (String.concat "__" (path @ [ name ]))

let shape (b : System.block) =
  match b.System.blk_type with
  | Block.Inport | Block.Outport -> "cds"
  | Block.Unit_delay -> "square"
  | Block.Channel -> "parallelogram"
  | _ -> "box"

let of_model (m : Model.t) =
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph \"%s\" {\n  rankdir=LR;\n  compound=true;\n  node [fontsize=10];\n"
    (escape m.Model.model_name);
  let cluster_counter = ref 0 in
  let rec walk path sys =
    List.iter
      (fun (b : System.block) ->
        match b.System.blk_system with
        | Some inner ->
            incr cluster_counter;
            out "  subgraph cluster_%d {\n    label=\"%s\";\n    style=rounded;\n"
              !cluster_counter (escape b.System.blk_name);
            walk (path @ [ b.System.blk_name ]) inner;
            out "  }\n"
        | None ->
            out "  %s [label=\"%s\\n%s\" shape=%s];\n"
              (node_id path b.System.blk_name)
              (escape b.System.blk_name)
              (Block.to_string b.System.blk_type)
              (shape b))
      (System.blocks sys);
    (* Lines: endpoints on subsystem blocks attach to their boundary
       port blocks so edges stay between concrete nodes. *)
    let resolve (p : System.port_ref) boundary =
      match (System.find_block_exn sys p.System.block).System.blk_system with
      | Some inner ->
          let port_block = boundary inner p.System.port in
          node_id (path @ [ p.System.block ]) port_block
      | None -> node_id path p.System.block
    in
    let in_boundary inner port =
      System.blocks_of_type inner Block.Inport
      |> List.find_opt (fun b -> System.inport_index b = port)
      |> Option.fold ~none:"?" ~some:(fun b -> b.System.blk_name)
    in
    let out_boundary inner port =
      System.blocks_of_type inner Block.Outport
      |> List.find_opt (fun b -> System.inport_index b = port)
      |> Option.fold ~none:"?" ~some:(fun b -> b.System.blk_name)
    in
    List.iter
      (fun (l : System.line) ->
        out "  %s -> %s;\n" (resolve l.System.src out_boundary)
          (resolve l.System.dst in_boundary))
      (System.lines sys)
  in
  walk [] m.Model.root;
  out "}\n";
  Buffer.contents buf

let save m ~path =
  let oc = open_out path in
  output_string oc (of_model m);
  close_out oc
