(** CAAM (Combined Architecture Algorithm Model) structure over a
    Simulink model, as used by the Simulink-based MPSoC design flow the
    paper targets (Huang et al., DAC'07).

    A CAAM is a conventional Simulink model whose subsystem hierarchy
    is annotated with architecture roles:
    - top level: one {e CPU-SS} subsystem per processor, plus the
      inter-CPU {e communication units} (Channel blocks, GFIFO);
    - inside a CPU-SS: one {e Thread-SS} per thread plus intra-CPU
      channels (SWFIFO);
    - inside a Thread-SS: the functional blocks of the thread.

    Roles are carried by the [CAAMRole] block parameter, protocols by
    the channel's [Protocol] parameter. *)

type role = Cpu | Thread | Comm

val role_param : string
val protocol_param : string

val role_of_block : System.block -> role option
val mark : System.t -> string -> role -> System.t
(** Tag a block of the system with a CAAM role. *)

val cpus : Model.t -> System.block list
(** CPU-SS blocks at top level, in declaration order. *)

val threads_of_cpu : System.block -> System.block list
(** Thread-SS blocks inside a CPU-SS. *)

val channels : Model.t -> (string list * System.block) list
(** All Channel blocks with their subsystem path. *)

val protocol : System.block -> string option

type channel_class = Inter_cpu | Intra_cpu

val classify_channel : path:string list -> channel_class
(** Channels at top level are inter-CPU, channels nested in a CPU-SS
    are intra-CPU. *)

val thread_names : Model.t -> (string * string) list
(** (thread, cpu) pairs, in declaration order. *)

val check : Model.t -> string list
(** CAAM-specific well-formedness on top of {!Model.validate}:
    - every top-level subsystem is a CPU-SS; every CPU-SS child
      subsystem is a Thread-SS;
    - inter-CPU channels carry GFIFO, intra-CPU channels SWFIFO;
    - every channel connects exactly one producer and one consumer. *)
