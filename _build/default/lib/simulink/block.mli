(** Simulink block types and parameters.

    [Channel] is the CAAM communication-unit block: its [Protocol]
    parameter carries the protocol the paper's channel inference picks
    ([SWFIFO] for intra-CPU, [GFIFO] for inter-CPU, §4.2.1). *)

type t =
  | Inport
  | Outport
  | Subsystem
  | S_function  (** user-defined behaviour, [FunctionName] parameter *)
  | Product
  | Sum
  | Gain
  | Constant
  | Unit_delay  (** the temporal barrier of §4.2.2 *)
  | Mux
  | Demux
  | Saturation
  | Abs
  | Sqrt
  | Trig  (** [Function] parameter: sin, cos or tan *)
  | Min_max  (** [Function] parameter: min or max *)
  | Math  (** [Function] parameter: exp or log *)
  | Switch
  | Terminator
  | Ground
  | Channel  (** CAAM communication unit; [Protocol] parameter *)

type param = P_string of string | P_int of int | P_float of float | P_bool of bool

val to_string : t -> string
(** The Simulink [BlockType] name, e.g. ["UnitDelay"]. *)

val of_string : string -> t

val default_ports : t -> int * int
(** (inputs, outputs) a fresh block of this type exposes; [Subsystem]
    ports are instead derived from its [Inport]/[Outport] children, and
    blocks accepting an [Inputs] parameter (Product, Sum, Mux, ...) can
    be widened. *)

val param_to_string : param -> string
val pp_param : Format.formatter -> param -> unit
val pp : Format.formatter -> t -> unit
