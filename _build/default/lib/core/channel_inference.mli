(** Inference of communication channels (paper §4.2.1).

    Every data link between two Thread-SS blocks inside a CPU-SS gets
    an explicit intra-CPU channel with the [SWFIFO] protocol; every
    link between two CPU-SS blocks at top level gets an inter-CPU
    [GFIFO] channel.  Channels are point-to-point Channel blocks
    spliced into the existing line. *)

type outcome = {
  model : Umlfront_simulink.Model.t;
  intra_channels : int;
  inter_channels : int;
}

val run : Umlfront_simulink.Model.t -> outcome
